// Command hsrbench regenerates every table and figure of the paper from the
// synthetic measurement campaign and prints them as terminal tables and
// text plots.
//
// Usage:
//
//	hsrbench [-quick] [-seed N] [-duration 120s] [-flows N] [-jobs N]
//	         [-timeout D] [-run name,...] [-progress] [-metrics out.json]
//	         [-cpuprofile f] [-memprofile f] [-version]
//
// Experiment names: table1, fig1, fig2, fig3, fig4, fig6, fig10, fig12,
// window, scalars, delack, ablation, backupq, eifel, sensitivity, variants,
// speed, validation, faults, all (default).
//
// Experiments run on a dependency-aware parallel scheduler: -jobs N runs up
// to N independent experiments concurrently (default 1; 0 means GOMAXPROCS).
// Output ordering is deterministic — the rendered sections are printed in
// the canonical order above regardless of parallelism, so -jobs N produces
// output identical to a sequential run.
//
// Failures are isolated: an experiment that errors (or panics) only skips
// its dependents; every other section still renders, the failures are
// listed on stderr, and the exit code is nonzero. -timeout D cancels a
// running campaign cleanly after D of wall time, printing whatever
// completed. The hidden "panic" experiment deliberately panics (with a
// dependent that must be skipped) to exercise that isolation end to end.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hsrbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hsrbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced campaign (4 flows per Table I row, 45s flows)")
	seed := fs.Int64("seed", 1, "base seed for all campaigns")
	duration := fs.Duration("duration", 0, "override flow duration")
	flows := fs.Int("flows", 0, "override flows per Table I row (0 = paper counts)")
	jobs := fs.Int("jobs", 1, "concurrent experiments (0 = GOMAXPROCS); output order is deterministic")
	timeout := fs.Duration("timeout", 0, "cancel the campaign after this much wall time (0 = no deadline)")
	runList := fs.String("run", "all", "comma-separated experiments to run")
	csvDir := fs.String("csv", "", "also write figure series as CSV files into this directory")
	reportPath := fs.String("report", "", "write a markdown reproduction report to this file (runs the full suite)")
	progress := fs.Bool("progress", false, "print flow and experiment completion progress to stderr")
	cacheDir := fs.String("cache", "", "flow result cache directory: serve (scenario, seed, version)-keyed flow metrics from disk instead of re-simulating, and store every simulated flow")
	materialize := fs.Bool("materialize", false, "force the legacy materialize-then-analyze flow pipeline (cross-check mode; output must be byte-identical to the streaming default)")
	metricsPath := fs.String("metrics", "", "write a JSON telemetry report (kernel/TCP/link/fault counters, per-task resources) to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file (taken at exit, after a GC)")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.Line("hsrbench"))
		return nil
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hsrbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hsrbench: memprofile:", err)
			}
		}()
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	if *duration > 0 {
		cfg.FlowDuration = *duration
	}
	if *flows > 0 {
		cfg.FlowsPerRow = *flows
	}

	var camp *telemetry.Campaign
	if *metricsPath != "" {
		camp = telemetry.NewCampaign()
		cfg.Telemetry = camp
	}
	var cache *dataset.FlowCache
	if *cacheDir != "" {
		var err error
		cache, err = dataset.OpenFlowCache(*cacheDir)
		if err != nil {
			return err
		}
		cfg.Cache = cache
	}
	cfg.Materialize = *materialize
	if *progress {
		// Flow-level progress from the campaign workers: one line every ten
		// flows (and the last), mutex-guarded because workers run in parallel.
		var mu sync.Mutex
		cfg.Progress = func(done, total int) {
			if done%10 != 0 && done != total {
				return
			}
			mu.Lock()
			fmt.Fprintf(os.Stderr, "hsrbench: flows %d/%d\n", done, total)
			mu.Unlock()
		}
	}
	wallStart := time.Now()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	needCtx := all || *reportPath != "" || want["table1"] || want["fig3"] || want["fig4"] ||
		want["fig6"] || want["fig10"] || want["scalars"] || want["ablation"]
	needFig1 := sel("fig1") || sel("fig2") || sel("window")

	section := func(s string) string { return strings.Repeat("=", 90) + "\n" + s + "\n\n" }
	writeCSV := func(name string, t *export.Table) error {
		if *csvDir == "" {
			return nil
		}
		if err := experiments.WriteCSV(*csvDir, name, t); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s/%s.csv\n", *csvDir, name)
		return nil
	}

	// The experiment DAG. Shared state (the campaign Context, the exemplar
	// Figure-1 flow) is produced by dedicated tasks; the scheduler guarantees
	// each task's dependencies ran before it, for any -jobs value.
	var (
		ectx  *experiments.Context
		fig1  *experiments.Figure1Result
		tasks []experiments.Task
	)
	add := func(name string, deps []string, run func() (string, error)) {
		tasks = append(tasks, experiments.Task{Name: name, Deps: deps, Run: run})
	}

	var ctxDep, fig1Dep []string
	if needCtx {
		ctxDep = []string{"campaigns"}
		add("campaigns", nil, func() (string, error) {
			fmt.Fprintf(os.Stderr, "running campaigns (seed=%d, duration=%v, flowsPerRow=%d)...\n",
				cfg.Seed, cfg.FlowDuration, cfg.FlowsPerRow)
			start := time.Now()
			var err error
			ectx, err = experiments.NewContextWith(ctx, cfg)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(os.Stderr, "campaigns done in %v\n", time.Since(start).Round(time.Millisecond))
			return "", nil
		})
	}
	if needFig1 {
		fig1Dep = []string{"exemplar-flow"}
		add("exemplar-flow", nil, func() (string, error) {
			var err error
			fig1, err = experiments.Figure1(cfg)
			return "", err
		})
	}

	if sel("table1") {
		add("table1", ctxDep, func() (string, error) {
			return section("TABLE I") + experiments.Table1(ectx).Render() + "\n", nil
		})
	}
	if sel("fig1") {
		add("fig1", fig1Dep, func() (string, error) {
			if err := writeCSV("fig1_delivery", fig1.CSVTable()); err != nil {
				return "", err
			}
			return section("FIGURE 1") + fig1.Render() + "\n", nil
		})
	}
	if sel("fig2") {
		add("fig2", fig1Dep, func() (string, error) {
			f2, err := experiments.Figure2(fig1)
			if err != nil {
				return "", err
			}
			return section("FIGURE 2") + f2.Render() + "\n", nil
		})
	}
	if sel("window") {
		add("window", fig1Dep, func() (string, error) {
			w, err := experiments.WindowTrace(fig1)
			if err != nil {
				return "", err
			}
			return section("WINDOW EVOLUTION (the live Figs 7-9)") + w.Render() + "\n", nil
		})
	}
	if sel("fig3") {
		add("fig3", ctxDep, func() (string, error) {
			f3 := experiments.Figure3(ectx)
			if err := writeCSV("fig3_loss_rates", f3.CSVTable()); err != nil {
				return "", err
			}
			return section("FIGURE 3") + f3.Render() + "\n", nil
		})
	}
	if sel("fig4") {
		add("fig4", ctxDep, func() (string, error) {
			f4 := experiments.Figure4(ectx)
			if err := writeCSV("fig4_ack_vs_timeouts", f4.CSVTable()); err != nil {
				return "", err
			}
			return section("FIGURE 4") + f4.Render() + "\n", nil
		})
	}
	if sel("fig6") {
		add("fig6", ctxDep, func() (string, error) {
			f6 := experiments.Figure6(ectx)
			if err := writeCSV("fig6_ack_loss", f6.CSVTable()); err != nil {
				return "", err
			}
			return section("FIGURE 6") + f6.Render() + "\n", nil
		})
	}
	if sel("fig10") {
		add("fig10", ctxDep, func() (string, error) {
			f10, err := experiments.Figure10(ectx)
			if err != nil {
				return "", err
			}
			if err := writeCSV("fig10_model_fits", f10.CSVTable()); err != nil {
				return "", err
			}
			return section("FIGURE 10") + f10.Render() + "\n", nil
		})
	}
	if sel("fig12") {
		add("fig12", nil, func() (string, error) {
			f12, err := experiments.Figure12(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("fig12_mptcp", f12.CSVTable()); err != nil {
				return "", err
			}
			return section("FIGURE 12") + f12.Render() + "\n", nil
		})
	}
	if sel("scalars") {
		add("scalars", ctxDep, func() (string, error) {
			return section("HEADLINE CLAIMS") + experiments.Scalars(ectx).Render() + "\n", nil
		})
	}
	if sel("delack") {
		add("delack", nil, func() (string, error) {
			d, err := experiments.DelayedAck(cfg)
			if err != nil {
				return "", err
			}
			return section("DELAYED-ACK SWEEP (Section V-A)") + d.Render() + "\n", nil
		})
	}
	if sel("ablation") {
		add("ablation", ctxDep, func() (string, error) {
			a, err := experiments.ModelAblation(ectx)
			if err != nil {
				return "", err
			}
			return section("MODEL ABLATION") + a.Render() + "\n", nil
		})
	}
	if sel("backupq") {
		add("backupq", nil, func() (string, error) {
			bq, err := experiments.BackupQ(cfg)
			if err != nil {
				return "", err
			}
			return section("MPTCP BACKUP MODE (Section V-B)") + bq.Render() + "\n", nil
		})
	}
	if sel("eifel") {
		add("eifel", nil, func() (string, error) {
			e, err := experiments.Eifel(cfg)
			if err != nil {
				return "", err
			}
			return section("EIFEL-STYLE SPURIOUS-RTO RESPONSE") + e.Render() + "\n", nil
		})
	}
	if sel("sensitivity") {
		add("sensitivity", nil, func() (string, error) {
			s, err := experiments.ChannelSensitivity(cfg)
			if err != nil {
				return "", err
			}
			return section("CHANNEL ABLATION — HANDOFF DURATION SWEEP") + s.Render() + "\n", nil
		})
	}
	if sel("variants") {
		add("variants", nil, func() (string, error) {
			v, err := experiments.Variants(cfg)
			if err != nil {
				return "", err
			}
			return section("VARIANT COMPARISON — RENO VS NEWRENO") + v.Render() + "\n", nil
		})
	}
	if sel("speed") {
		add("speed", nil, func() (string, error) {
			sp, err := experiments.SpeedSweep(cfg)
			if err != nil {
				return "", err
			}
			return section("SPEED SWEEP — 0 TO 300 KM/H") + sp.Render() + "\n", nil
		})
	}
	if sel("validation") {
		add("validation", nil, func() (string, error) {
			v, err := experiments.ModelValidation(cfg)
			if err != nil {
				return "", err
			}
			return section("PIPELINE VALIDATION — STATIC BERNOULLI CHANNEL") + v.Render() + "\n", nil
		})
	}
	if sel("faults") {
		add("faults", nil, func() (string, error) {
			f, err := experiments.FaultSweep(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("fault_sweep", f.CSVTable()); err != nil {
				return "", err
			}
			return section("FAULT-INJECTION SEVERITY SWEEP") + f.Render() + "\n", nil
		})
	}
	if want["panic"] {
		// Hidden self-test (never part of "all"): a task that panics plus a
		// dependent that must be skipped, proving a crashing experiment
		// cannot take the campaign down.
		add("panic", nil, func() (string, error) {
			panic("deliberate self-test panic")
		})
		add("panic-dependent", []string{"panic"}, func() (string, error) {
			return "must never render\n", nil
		})
	}
	if *reportPath != "" {
		add("report", ctxDep, func() (string, error) {
			md, err := experiments.BuildReport(ectx)
			if err != nil {
				return "", err
			}
			if err := os.WriteFile(*reportPath, []byte(md), 0o644); err != nil {
				return "", fmt.Errorf("write report: %w", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *reportPath)
			return "", nil
		})
	}

	var onDone func(r experiments.TaskResult, completed, total int)
	if *progress {
		// Task-level progress runs on the scheduler's coordinator goroutine,
		// so no locking is needed against other onDone calls.
		onDone = func(r experiments.TaskResult, completed, total int) {
			status := "ok"
			switch {
			case r.Skipped:
				status = "skipped"
			case r.Err != nil:
				status = "failed"
			}
			fmt.Fprintf(os.Stderr, "hsrbench: [%d/%d] %s %s (%v)\n",
				completed, total, r.Name, status, r.Wall.Round(time.Millisecond))
		}
	}
	results, err := experiments.RunDAGProgress(ctx, tasks, *jobs, onDone)
	if err != nil {
		return err
	}
	// Partial results first: everything that completed renders in canonical
	// order even when other branches failed or the deadline hit.
	for _, r := range results {
		if r.Output != "" {
			fmt.Print(r.Output)
		}
	}
	var failed, skipped int
	for _, r := range results {
		switch {
		case r.Skipped:
			skipped++
			fmt.Fprintf(os.Stderr, "hsrbench: skipped %s: %v\n", r.Name, r.Err)
		case r.Err != nil:
			failed++
			var pe *experiments.PanicError
			if errors.As(r.Err, &pe) {
				fmt.Fprintf(os.Stderr, "hsrbench: task %s panicked: %v\n%s", r.Name, pe.Value, pe.Stack)
			} else {
				fmt.Fprintf(os.Stderr, "hsrbench: task %s failed: %v\n", r.Name, r.Err)
			}
		}
	}
	if cache != nil {
		cc := cache.Counters()
		fmt.Fprintf(os.Stderr, "hsrbench: cache: %d hits, %d misses, %d errors, %d B read, %d B written\n",
			cc.Hits, cc.Misses, cc.Errors, cc.BytesRead, cc.BytesWritten)
	}
	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath, cfg.Seed, camp, cache, results, wallStart); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsPath)
	}
	if failed > 0 || skipped > 0 {
		completed := len(results) - failed - skipped
		summary := fmt.Sprintf("%d task(s) completed, %d failed, %d skipped; partial results above",
			completed, failed, skipped)
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("campaign cancelled (%v): %s", err, summary)
		}
		return errors.New(summary)
	}
	return nil
}

// writeMetrics assembles and writes the -metrics JSON report: campaign
// counter totals (deterministic for a seed at any -jobs), per-task outcomes
// and process resource usage.
func writeMetrics(path string, seed int64, camp *telemetry.Campaign, cache *dataset.FlowCache, results []experiments.TaskResult, wallStart time.Time) error {
	rep := &telemetry.Report{
		Tool:    "hsrbench",
		Version: buildinfo.Version(),
		Seed:    seed,
	}
	if cache != nil {
		cc := cache.Counters()
		rep.Cache = &cc
	}
	// Only attach the campaign section when campaign flows actually ran
	// (e.g. -run fig1 alone never touches the shared campaigns).
	if camp != nil {
		if n, _, _, _, _ := camp.Counters(); n > 0 {
			rep.Campaign = camp
		}
	}
	for _, r := range results {
		tr := telemetry.TaskReport{
			Name:       r.Name,
			Status:     "ok",
			WallMS:     float64(r.Wall) / float64(time.Millisecond),
			Mallocs:    r.Mallocs,
			AllocBytes: r.AllocBytes,
		}
		switch {
		case r.Skipped:
			tr.Status = "skipped"
		case r.Err != nil:
			tr.Status = "failed"
		}
		if r.Err != nil {
			tr.Error = r.Err.Error()
		}
		rep.Tasks = append(rep.Tasks, tr)
	}
	wall := time.Since(wallStart)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep.Resources = telemetry.Resources{
		WallMS:          float64(wall) / float64(time.Millisecond),
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		NumGC:           ms.NumGC,
	}
	if camp != nil && wall > 0 {
		_, k, _, _, _ := camp.Counters()
		rep.Resources.VirtualPerWall = float64(k.VirtualNS) / float64(wall.Nanoseconds())
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	return nil
}
