// Command hsrbench regenerates every table and figure of the paper from the
// synthetic measurement campaign and prints them as terminal tables and
// text plots.
//
// Usage:
//
//	hsrbench [-quick] [-seed N] [-duration 120s] [-flows N] [-run name,...]
//
// Experiment names: table1, fig1, fig2, fig3, fig4, fig6, fig10, fig12,
// window, scalars, delack, ablation, backupq, eifel, sensitivity, variants,
// speed, validation, all (default).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/export"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hsrbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hsrbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced campaign (4 flows per Table I row, 45s flows)")
	seed := fs.Int64("seed", 1, "base seed for all campaigns")
	duration := fs.Duration("duration", 0, "override flow duration")
	flows := fs.Int("flows", 0, "override flows per Table I row (0 = paper counts)")
	runList := fs.String("run", "all", "comma-separated experiments to run")
	csvDir := fs.String("csv", "", "also write figure series as CSV files into this directory")
	reportPath := fs.String("report", "", "write a markdown reproduction report to this file (runs the full suite)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	if *duration > 0 {
		cfg.FlowDuration = *duration
	}
	if *flows > 0 {
		cfg.FlowsPerRow = *flows
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	needCtx := all || *reportPath != "" || want["table1"] || want["fig3"] || want["fig4"] ||
		want["fig6"] || want["fig10"] || want["scalars"] || want["ablation"]

	var ctx *experiments.Context
	if needCtx {
		fmt.Fprintf(os.Stderr, "running campaigns (seed=%d, duration=%v, flowsPerRow=%d)...\n",
			cfg.Seed, cfg.FlowDuration, cfg.FlowsPerRow)
		start := time.Now()
		var err error
		ctx, err = experiments.NewContext(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "campaigns done in %v\n\n", time.Since(start).Round(time.Millisecond))
	}

	section := func(s string) { fmt.Println(strings.Repeat("=", 90)); fmt.Println(s); fmt.Println() }
	writeCSV := func(name string, t *export.Table) error {
		if *csvDir == "" {
			return nil
		}
		if err := experiments.WriteCSV(*csvDir, name, t); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s/%s.csv\n", *csvDir, name)
		return nil
	}

	if sel("table1") {
		section("TABLE I")
		fmt.Println(experiments.Table1(ctx).Render())
	}
	var fig1 *experiments.Figure1Result
	if sel("fig1") || sel("fig2") || sel("window") {
		var err error
		fig1, err = experiments.Figure1(cfg)
		if err != nil {
			return err
		}
	}
	if sel("fig1") {
		section("FIGURE 1")
		fmt.Println(fig1.Render())
		if err := writeCSV("fig1_delivery", fig1.CSVTable()); err != nil {
			return err
		}
	}
	if sel("fig2") {
		section("FIGURE 2")
		f2, err := experiments.Figure2(fig1)
		if err != nil {
			return err
		}
		fmt.Println(f2.Render())
	}
	if sel("window") {
		section("WINDOW EVOLUTION (the live Figs 7-9)")
		w, err := experiments.WindowTrace(fig1)
		if err != nil {
			return err
		}
		fmt.Println(w.Render())
	}
	if sel("fig3") {
		section("FIGURE 3")
		f3 := experiments.Figure3(ctx)
		fmt.Println(f3.Render())
		if err := writeCSV("fig3_loss_rates", f3.CSVTable()); err != nil {
			return err
		}
	}
	if sel("fig4") {
		section("FIGURE 4")
		f4 := experiments.Figure4(ctx)
		fmt.Println(f4.Render())
		if err := writeCSV("fig4_ack_vs_timeouts", f4.CSVTable()); err != nil {
			return err
		}
	}
	if sel("fig6") {
		section("FIGURE 6")
		f6 := experiments.Figure6(ctx)
		fmt.Println(f6.Render())
		if err := writeCSV("fig6_ack_loss", f6.CSVTable()); err != nil {
			return err
		}
	}
	if sel("fig10") {
		section("FIGURE 10")
		f10, err := experiments.Figure10(ctx)
		if err != nil {
			return err
		}
		fmt.Println(f10.Render())
		if err := writeCSV("fig10_model_fits", f10.CSVTable()); err != nil {
			return err
		}
	}
	if sel("fig12") {
		section("FIGURE 12")
		f12, err := experiments.Figure12(cfg)
		if err != nil {
			return err
		}
		fmt.Println(f12.Render())
		if err := writeCSV("fig12_mptcp", f12.CSVTable()); err != nil {
			return err
		}
	}
	if sel("scalars") {
		section("HEADLINE CLAIMS")
		fmt.Println(experiments.Scalars(ctx).Render())
	}
	if sel("delack") {
		section("DELAYED-ACK SWEEP (Section V-A)")
		d, err := experiments.DelayedAck(cfg)
		if err != nil {
			return err
		}
		fmt.Println(d.Render())
	}
	if sel("ablation") {
		section("MODEL ABLATION")
		a, err := experiments.ModelAblation(ctx)
		if err != nil {
			return err
		}
		fmt.Println(a.Render())
	}
	if sel("backupq") {
		section("MPTCP BACKUP MODE (Section V-B)")
		bq, err := experiments.BackupQ(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bq.Render())
	}
	if sel("eifel") {
		section("EIFEL-STYLE SPURIOUS-RTO RESPONSE")
		e, err := experiments.Eifel(cfg)
		if err != nil {
			return err
		}
		fmt.Println(e.Render())
	}
	if sel("sensitivity") {
		section("CHANNEL ABLATION — HANDOFF DURATION SWEEP")
		s, err := experiments.ChannelSensitivity(cfg)
		if err != nil {
			return err
		}
		fmt.Println(s.Render())
	}
	if sel("variants") {
		section("VARIANT COMPARISON — RENO VS NEWRENO")
		v, err := experiments.Variants(cfg)
		if err != nil {
			return err
		}
		fmt.Println(v.Render())
	}
	if sel("speed") {
		section("SPEED SWEEP — 0 TO 300 KM/H")
		sp, err := experiments.SpeedSweep(cfg)
		if err != nil {
			return err
		}
		fmt.Println(sp.Render())
	}
	if sel("validation") {
		section("PIPELINE VALIDATION — STATIC BERNOULLI CHANNEL")
		v, err := experiments.ModelValidation(cfg)
		if err != nil {
			return err
		}
		fmt.Println(v.Render())
	}
	if *reportPath != "" {
		md, err := experiments.BuildReport(ctx)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*reportPath, []byte(md), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *reportPath)
	}
	return nil
}
