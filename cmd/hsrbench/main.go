// Command hsrbench regenerates every table and figure of the paper from the
// synthetic measurement campaign and prints them as terminal tables and
// text plots.
//
// Usage:
//
//	hsrbench [-quick] [-seed N] [-duration 120s] [-flows N] [-jobs N]
//	         [-timeout D] [-run name,...] [-list] [-progress]
//	         [-metrics out.json] [-cache DIR] [-cache-max-bytes N]
//	         [-bench-json out.json] [-trace-out trace.json]
//	         [-cpuprofile f] [-memprofile f] [-version]
//
// Experiment names: table1, fig1, fig2, fig3, fig4, fig6, fig10, fig12,
// window, scalars, delack, ablation, backupq, eifel, sensitivity, variants,
// speed, validation, faults, all (default), plus the opt-in shared-
// bottleneck experiments fairness and ccmix ("all" does not include them;
// request them by name). -list prints the catalog with descriptions.
//
// Experiments run on a dependency-aware parallel scheduler: -jobs N runs up
// to N independent experiments concurrently (default 1; 0 means GOMAXPROCS).
// Output ordering is deterministic — the rendered sections are printed in
// the canonical order above regardless of parallelism, so -jobs N produces
// output identical to a sequential run.
//
// Failures are isolated: an experiment that errors (or panics) only skips
// its dependents; every other section still renders, the failures are
// listed on stderr, and the exit code is nonzero. -timeout D cancels a
// running campaign cleanly after D of wall time, printing whatever
// completed. The hidden "panic" experiment deliberately panics (with a
// dependent that must be skipped) to exercise that isolation end to end.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hsrbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hsrbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced campaign (4 flows per Table I row, 45s flows)")
	seed := fs.Int64("seed", 1, "base seed for all campaigns")
	duration := fs.Duration("duration", 0, "override flow duration")
	flows := fs.Int("flows", 0, "override flows per Table I row (0 = paper counts)")
	jobs := fs.Int("jobs", 1, "concurrent experiments (0 = GOMAXPROCS); output order is deterministic")
	timeout := fs.Duration("timeout", 0, "cancel the campaign after this much wall time (0 = no deadline)")
	runList := fs.String("run", "all", "comma-separated experiments to run (\"all\" = the paper suite; opt-in experiments like fairness/ccmix must be named)")
	list := fs.Bool("list", false, "list every catalog experiment with its description and exit")
	csvDir := fs.String("csv", "", "also write figure series as CSV files into this directory")
	reportPath := fs.String("report", "", "write a markdown reproduction report to this file (runs the full suite)")
	progress := fs.Bool("progress", false, "print flow and experiment completion progress to stderr")
	cacheDir := fs.String("cache", "", "flow result cache directory: serve (scenario, seed, version)-keyed flow metrics from disk instead of re-simulating, and store every simulated flow")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "bound the cache directory's entry bytes, evicting oldest entries first (0 = unbounded)")
	materialize := fs.Bool("materialize", false, "force the legacy materialize-then-analyze flow pipeline (cross-check mode; output must be byte-identical to the streaming default)")
	metricsPath := fs.String("metrics", "", "write a JSON telemetry report (kernel/TCP/link/fault counters, per-task resources) to this file")
	benchJSON := fs.String("bench-json", "", "run the performance snapshot (cold/warm quick campaign, single-flow wall and allocations, kernel event rate), write it as JSON to this file, and exit without running experiments")
	traceOut := fs.String("trace-out", "", "write the run's span trace (task, campaign and flow spans with wall and virtual timelines) to this file in the Perfetto/Chrome trace-event format")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file (taken at exit, after a GC)")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.Line("hsrbench"))
		return nil
	}
	if *list {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		for _, e := range experiments.CatalogList() {
			note := ""
			if e.OptIn {
				note = " (opt-in: not part of -run all)"
			}
			fmt.Fprintf(w, "%s\t%s%s\n", e.Name, e.Description, note)
		}
		return w.Flush()
	}
	if *benchJSON != "" {
		snap, err := experiments.RunBenchSnapshot(experiments.BenchOptions{Seed: *seed})
		if err != nil {
			return err
		}
		f, err := os.Create(*benchJSON)
		if err != nil {
			return fmt.Errorf("bench-json: %w", err)
		}
		werr := snap.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("bench-json: %w", werr)
		}
		fmt.Fprintf(os.Stderr, "hsrbench: campaign %d flows cold %.0fms warm %.0fms; flow %.2fms, %.0f allocs, %.2fM events/s; wrote %s\n",
			snap.CampaignFlows, snap.ColdCampaignWallMS, snap.WarmCampaignWallMS,
			snap.SingleFlowWallMS, snap.AllocsPerFlow, snap.KernelEventsPerSec/1e6, *benchJSON)
		return nil
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hsrbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hsrbench: memprofile:", err)
			}
		}()
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	if *duration > 0 {
		cfg.FlowDuration = *duration
	}
	if *flows > 0 {
		cfg.FlowsPerRow = *flows
	}

	var camp *telemetry.Campaign
	if *metricsPath != "" {
		camp = telemetry.NewCampaign()
		cfg.Telemetry = camp
	}
	var cache *dataset.FlowCache
	if *cacheDir != "" {
		var err error
		cache, err = dataset.OpenFlowCache(*cacheDir)
		if err != nil {
			return err
		}
		if err := cache.SetMaxBytes(*cacheMaxBytes); err != nil {
			return err
		}
		cfg.Cache = cache
	}
	cfg.Materialize = *materialize
	// Tracing is host-side instrumentation only: it never perturbs seeds,
	// flow order or results, so output stays byte-identical with it on.
	var traceRoot *tracing.Span
	if *traceOut != "" {
		tr := tracing.New(fmt.Sprintf("hsrbench-%d", cfg.Seed))
		traceRoot = tr.StartSpan("", "run", "hsrbench")
		cfg.Trace = tr
		cfg.TraceParent = traceRoot.ID()
	}
	if *progress {
		// Flow-level progress from the campaign workers: one line every ten
		// flows (and the last), mutex-guarded because workers run in parallel.
		var mu sync.Mutex
		cfg.Progress = func(done, total int) {
			if done%10 != 0 && done != total {
				return
			}
			mu.Lock()
			fmt.Fprintf(os.Stderr, "hsrbench: flows %d/%d\n", done, total)
			mu.Unlock()
		}
	}
	wallStart := time.Now()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Resolve the -run list against the canonical catalog. Unknown names
	// simply select nothing (documented behaviour); "all" selects the paper
	// suite (opt-in experiments still need to be named); the hidden "panic"
	// self-test is handled below.
	want := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(name)] = true
	}
	if want["all"] {
		for _, name := range experiments.DefaultCatalogNames() {
			want[name] = true
		}
	}
	var names []string
	for _, name := range experiments.CatalogNames() {
		if want[name] {
			names = append(names, name)
		}
	}

	opt := experiments.CatalogOptions{
		ForceCampaigns: *reportPath != "",
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if *csvDir != "" {
		opt.WriteCSV = func(name string, t *export.Table) error {
			if err := experiments.WriteCSV(*csvDir, name, t); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s/%s.csv\n", *csvDir, name)
			return nil
		}
	}
	cat, err := experiments.NewCatalog(ctx, cfg, names, opt)
	if err != nil {
		return err
	}
	tasks := cat.Tasks
	if want["panic"] {
		// Hidden self-test (never part of "all"): a task that panics plus a
		// dependent that must be skipped, proving a crashing experiment
		// cannot take the campaign down.
		tasks = append(tasks, experiments.Task{Name: "panic", Run: func() (string, error) {
			panic("deliberate self-test panic")
		}})
		tasks = append(tasks, experiments.Task{Name: "panic-dependent", Deps: []string{"panic"},
			Run: func() (string, error) {
				return "must never render\n", nil
			}})
	}
	if *reportPath != "" {
		tasks = append(tasks, experiments.Task{Name: "report", Deps: []string{experiments.CampaignsTaskName},
			Run: func() (string, error) {
				md, err := experiments.BuildReport(cat.Context())
				if err != nil {
					return "", err
				}
				if err := os.WriteFile(*reportPath, []byte(md), 0o644); err != nil {
					return "", fmt.Errorf("write report: %w", err)
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", *reportPath)
				return "", nil
			}})
	}

	var onDone func(r experiments.TaskResult, completed, total int)
	if *progress {
		// Task-level progress runs on the scheduler's coordinator goroutine,
		// so no locking is needed against other onDone calls.
		onDone = func(r experiments.TaskResult, completed, total int) {
			status := "ok"
			switch {
			case r.Skipped:
				status = "skipped"
			case r.Err != nil:
				status = "failed"
			}
			fmt.Fprintf(os.Stderr, "hsrbench: [%d/%d] %s %s (%v)\n",
				completed, total, r.Name, status, r.Wall.Round(time.Millisecond))
		}
	}
	results, err := experiments.RunDAGProgress(ctx, tasks, *jobs, onDone)
	if err != nil {
		return err
	}
	if *traceOut != "" {
		traceRoot.End()
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		werr := tracing.WriteTrace(f, cfg.Trace.Spans())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("trace-out: %w", werr)
		}
		fmt.Fprintf(os.Stderr, "hsrbench: wrote %d spans to %s\n", cfg.Trace.Len(), *traceOut)
	}
	// Partial results first: everything that completed renders in canonical
	// order even when other branches failed or the deadline hit.
	for _, r := range results {
		if r.Output != "" {
			fmt.Print(r.Output)
		}
	}
	var failed, skipped int
	for _, r := range results {
		switch {
		case r.Skipped:
			skipped++
			fmt.Fprintf(os.Stderr, "hsrbench: skipped %s: %v\n", r.Name, r.Err)
		case r.Err != nil:
			failed++
			var pe *experiments.PanicError
			if errors.As(r.Err, &pe) {
				fmt.Fprintf(os.Stderr, "hsrbench: task %s panicked: %v\n%s", r.Name, pe.Value, pe.Stack)
			} else {
				fmt.Fprintf(os.Stderr, "hsrbench: task %s failed: %v\n", r.Name, r.Err)
			}
		}
	}
	if cache != nil {
		cc := cache.Counters()
		fmt.Fprintf(os.Stderr, "hsrbench: cache: %d hits, %d misses, %d dedups, %d errors, %d evictions, %d B read, %d B written\n",
			cc.Hits, cc.Misses, cc.Dedups, cc.Errors, cc.Evictions, cc.BytesRead, cc.BytesWritten)
	}
	if *metricsPath != "" {
		var cc *telemetry.Cache
		if cache != nil {
			c := cache.Counters()
			cc = &c
		}
		rep := experiments.MetricsReport("hsrbench", cfg.Seed, camp, cc, results, wallStart)
		rep.CC = cat.CCReport()
		f, err := os.Create(*metricsPath)
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("metrics: %w", werr)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsPath)
	}
	if failed > 0 || skipped > 0 {
		completed := len(results) - failed - skipped
		summary := fmt.Sprintf("%d task(s) completed, %d failed, %d skipped; partial results above",
			completed, failed, skipped)
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("campaign cancelled (%v): %s", err, summary)
		}
		return errors.New(summary)
	}
	return nil
}
