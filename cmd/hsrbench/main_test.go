package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunQuickSubset(t *testing.T) {
	// A tiny campaign exercising the context-dependent experiments.
	err := run([]string{"-quick", "-flows", "1", "-duration", "20s",
		"-run", "table1,scalars,fig3,fig4,fig6,fig10,ablation"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFigure1Only(t *testing.T) {
	// fig1/fig2 need no campaign context.
	err := run([]string{"-quick", "-duration", "30s", "-run", "fig1,fig2"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	// Unknown names simply select nothing (documented behaviour): the run
	// must not fail.
	if err := run([]string{"-quick", "-run", "doesnotexist"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-quick", "-flows", "1", "-duration", "20s",
		"-run", "fig3,fig4", "-csv", dir})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"fig3_loss_rates.csv", "fig4_ack_vs_timeouts.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

func TestRunPanicSelfTestIsIsolated(t *testing.T) {
	// The hidden "panic" experiment deliberately panics; run must survive it
	// (no crash), report a nonzero-exit error, and still render the
	// independent fig1 section — with the panicking task's dependent skipped.
	err := run([]string{"-quick", "-duration", "20s", "-run", "fig1,panic"})
	if err == nil {
		t.Fatal("run with a panicking task reported success")
	}
	if !strings.Contains(err.Error(), "failed") {
		t.Errorf("error %q does not summarize the failure", err)
	}
}

func TestRunTimeoutCancelsCleanly(t *testing.T) {
	// A deadline far too short for even the quick campaign: the run must
	// return an error promptly instead of finishing the full campaign or
	// hanging.
	start := time.Now()
	err := run([]string{"-quick", "-duration", "45s", "-timeout", "1ms",
		"-run", "table1,scalars"})
	if err == nil {
		t.Fatal("run under a 1ms deadline reported success")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Minute {
		t.Errorf("cancellation took %v; the deadline did not cut the campaign short", elapsed)
	}
}

func TestRunFaultSweep(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-quick", "-duration", "15s", "-run", "faults", "-csv", dir})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fault_sweep.csv")); err != nil {
		t.Errorf("missing fault_sweep.csv: %v", err)
	}
}
