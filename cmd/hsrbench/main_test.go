package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestRunQuickSubset(t *testing.T) {
	// A tiny campaign exercising the context-dependent experiments.
	err := run([]string{"-quick", "-flows", "1", "-duration", "20s",
		"-run", "table1,scalars,fig3,fig4,fig6,fig10,ablation"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFigure1Only(t *testing.T) {
	// fig1/fig2 need no campaign context.
	err := run([]string{"-quick", "-duration", "30s", "-run", "fig1,fig2"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	// Unknown names simply select nothing (documented behaviour): the run
	// must not fail.
	if err := run([]string{"-quick", "-run", "doesnotexist"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-quick", "-flows", "1", "-duration", "20s",
		"-run", "fig3,fig4", "-csv", dir})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"fig3_loss_rates.csv", "fig4_ack_vs_timeouts.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

func TestRunPanicSelfTestIsIsolated(t *testing.T) {
	// The hidden "panic" experiment deliberately panics; run must survive it
	// (no crash), report a nonzero-exit error, and still render the
	// independent fig1 section — with the panicking task's dependent skipped.
	err := run([]string{"-quick", "-duration", "20s", "-run", "fig1,panic"})
	if err == nil {
		t.Fatal("run with a panicking task reported success")
	}
	if !strings.Contains(err.Error(), "failed") {
		t.Errorf("error %q does not summarize the failure", err)
	}
}

func TestRunTimeoutCancelsCleanly(t *testing.T) {
	// A deadline far too short for even the quick campaign: the run must
	// return an error promptly instead of finishing the full campaign or
	// hanging.
	start := time.Now()
	err := run([]string{"-quick", "-duration", "45s", "-timeout", "1ms",
		"-run", "table1,scalars"})
	if err == nil {
		t.Fatal("run under a 1ms deadline reported success")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Minute {
		t.Errorf("cancellation took %v; the deadline did not cut the campaign short", elapsed)
	}
	// The partial-results summary must account for every task.
	if !strings.Contains(err.Error(), "completed") || !strings.Contains(err.Error(), "skipped") {
		t.Errorf("cancellation error %q lacks the completed/failed/skipped summary", err)
	}
}

func TestRunVersionFlag(t *testing.T) {
	if err := run([]string{"-version"}); err != nil {
		t.Fatalf("-version: %v", err)
	}
}

func TestRunWritesMetricsReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	err := run([]string{"-quick", "-flows", "1", "-duration", "20s",
		"-run", "table1", "-metrics", path})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("metrics file missing: %v", err)
	}
	defer f.Close()
	rep, err := telemetry.ReadReport(f)
	if err != nil {
		t.Fatalf("metrics file unparseable: %v", err)
	}
	if rep.Tool != "hsrbench" || rep.Version == "" || rep.Seed != 1 {
		t.Errorf("report header = %+v", rep)
	}
	if rep.Campaign == nil {
		t.Fatal("report has no campaign section after a campaign run")
	}
	if rep.Campaign.Kernel.Events == 0 || rep.Campaign.TCP.Flows == 0 {
		t.Errorf("campaign counters empty: kernel=%+v tcp flows=%d",
			rep.Campaign.Kernel, rep.Campaign.TCP.Flows)
	}
	byName := map[string]telemetry.TaskReport{}
	for _, tr := range rep.Tasks {
		byName[tr.Name] = tr
	}
	for _, name := range []string{"campaigns", "table1"} {
		tr, ok := byName[name]
		if !ok || tr.Status != "ok" {
			t.Errorf("task %q report = %+v (present %v)", name, tr, ok)
		}
	}
	if rep.Resources.WallMS <= 0 || rep.Resources.Mallocs == 0 {
		t.Errorf("resource section empty: %+v", rep.Resources)
	}
}

func TestRunProfilesAndProgress(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	err := run([]string{"-quick", "-duration", "20s", "-run", "fig1",
		"-progress", "-cpuprofile", cpu, "-memprofile", mem})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile %s missing: %v", p, err)
		} else if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunFaultSweep(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-quick", "-duration", "15s", "-run", "faults", "-csv", dir})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fault_sweep.csv")); err != nil {
		t.Errorf("missing fault_sweep.csv: %v", err)
	}
}
