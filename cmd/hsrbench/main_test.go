package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunQuickSubset(t *testing.T) {
	// A tiny campaign exercising the context-dependent experiments.
	err := run([]string{"-quick", "-flows", "1", "-duration", "20s",
		"-run", "table1,scalars,fig3,fig4,fig6,fig10,ablation"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFigure1Only(t *testing.T) {
	// fig1/fig2 need no campaign context.
	err := run([]string{"-quick", "-duration", "30s", "-run", "fig1,fig2"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	// Unknown names simply select nothing (documented behaviour): the run
	// must not fail.
	if err := run([]string{"-quick", "-run", "doesnotexist"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-quick", "-flows", "1", "-duration", "20s",
		"-run", "fig3,fig4", "-csv", dir})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"fig3_loss_rates.csv", "fig4_ack_vs_timeouts.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}
