package main

import "testing"

func TestRunDefaults(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("run with defaults: %v", err)
	}
}

func TestRunCustomParams(t *testing.T) {
	args := []string{"-rtt", "80ms", "-t", "600ms", "-b", "1", "-wm", "64",
		"-pd", "0.01", "-pa", "0.002", "-q", "0.4", "-w", "30", "-pburst", "0.01"}
	if err := run(args); err != nil {
		t.Fatalf("run custom: %v", err)
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	if err := run([]string{"-pd", "1.5"}); err == nil {
		t.Error("impossible loss rate accepted")
	}
	if err := run([]string{"-rtt", "0s"}); err == nil {
		t.Error("zero RTT accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunVersionFlag(t *testing.T) {
	if err := run([]string{"-version"}); err != nil {
		t.Fatalf("-version: %v", err)
	}
}
