// Command modelcalc evaluates the TCP throughput models for a given
// parameter set — a calculator for the paper's Eq. (21) and the Padhye
// baseline.
//
// Usage:
//
//	modelcalc -rtt 60ms -t 450ms -b 2 -wm 28 -pd 0.005 -pa 0.006 -q 0.3 -w 18
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/export"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "modelcalc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("modelcalc", flag.ContinueOnError)
	rtt := fs.Duration("rtt", 60_000_000, "mean round-trip time")
	t0 := fs.Duration("t", 450_000_000, "base retransmission timeout T")
	b := fs.Int("b", 2, "data packets acknowledged per ACK")
	wm := fs.Int("wm", 28, "receiver window limit (packets)")
	pd := fs.Float64("pd", 0.005, "data loss rate p_d")
	pa := fs.Float64("pa", 0.006, "ACK loss rate p_a")
	q := fs.Float64("q", core.DefaultQ, "recovery-phase retransmission loss rate q")
	w := fs.Float64("w", 18, "mean window size (for P_a = p_a^w)")
	paBurst := fs.Float64("pburst", 0, "measured ACK burst probability P_a (overrides p_a^w)")
	mss := fs.Int("mss", 1448, "segment size for Mbps conversion")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.Line("modelcalc"))
		return nil
	}

	prm := core.Params{
		RTT: *rtt, T: *t0, B: *b, Wm: *wm,
		PData: *pd, PAck: *pa, Q: *q, MeanWindow: *w, AckBurst: *paBurst,
	}
	if err := prm.Validate(); err != nil {
		return err
	}
	type model struct {
		name string
		eval func(core.Params) (float64, error)
	}
	table := export.NewTable("model", "pps", "Mbps")
	for _, m := range []model{
		{"Padhye (full)", core.Padhye},
		{"Padhye (sqrt approx)", core.PadhyeApprox},
		{"Enhanced (paper Eq. 21)", core.Enhanced},
		{"Enhanced (consistent Eq. 3)", core.EnhancedConsistent},
	} {
		pps, err := m.eval(prm)
		if err != nil {
			return fmt.Errorf("%s: %w", m.name, err)
		}
		table.AddRow(m.name, fmt.Sprintf("%.2f", pps), fmt.Sprintf("%.3f", pps*float64(*mss)*8/1e6))
	}
	fmt.Printf("parameters: RTT=%v T=%v b=%d Wm=%d p_d=%v p_a=%v q=%v w=%v P_a=%.3g\n",
		prm.RTT, prm.T, prm.B, prm.Wm, prm.PData, prm.PAck, prm.Q, prm.MeanWindow, prm.AckBurstProb())
	fmt.Println(table.Render())
	return nil
}
