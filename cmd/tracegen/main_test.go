package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestRunGeneratesBinaryTraces(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-flows", "2", "-duration", "10s", "-seed", "3"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.hsrt"))
	if err != nil || len(files) != 2 {
		t.Fatalf("generated files = %v (err %v), want 2", files, err)
	}
	f, err := os.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ft, err := trace.ReadBinary(f)
	if err != nil {
		t.Fatalf("generated trace unreadable: %v", err)
	}
	if len(ft.Events) == 0 {
		t.Error("generated trace is empty")
	}
	if err := ft.Validate(); err != nil {
		t.Errorf("generated trace invalid: %v", err)
	}
}

func TestRunGeneratesJSONL(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-flows", "1", "-duration", "5s",
		"-format", "jsonl", "-scenario", "stationary", "-operator", "telecom"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if len(files) != 1 {
		t.Fatalf("jsonl files = %v, want 1", files)
	}
	f, err := os.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ft, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatalf("generated jsonl unreadable: %v", err)
	}
	if ft.Meta.Operator != "China Telecom" || ft.Meta.Scenario != "stationary" {
		t.Errorf("meta = %+v", ft.Meta)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-operator", "nope"}); err == nil {
		t.Error("unknown operator accepted")
	}
	if err := run([]string{"-out", dir, "-scenario", "nope"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run([]string{"-out", dir, "-format", "nope"}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunWithFaultSchedule(t *testing.T) {
	dir := t.TempDir()
	err := runGuarded([]string{"-out", dir, "-flows", "1", "-duration", "15s",
		"-faults", "blackout@5s+1s; ackburst@8s+1s p=0.9"})
	if err != nil {
		t.Fatalf("run with fault schedule: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("generated %d traces (%v), want 1", len(entries), err)
	}
}

func TestRunVersionFlag(t *testing.T) {
	if err := run([]string{"-version"}); err != nil {
		t.Fatalf("-version: %v", err)
	}
}

func TestRunFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	// A blackout guarantees timeouts, so the recorder has transitions to keep.
	err := run([]string{"-out", dir, "-flows", "2", "-duration", "15s",
		"-faults", "blackout@5s+2s", "-flightrec", "64"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.flightrec.jsonl"))
	if len(files) != 2 {
		t.Fatalf("flight-recorder dumps = %v, want 2", files)
	}
	f, err := os.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ft, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatalf("flight-recorder dump unreadable by the JSONL codec: %v", err)
	}
	if len(ft.Events) == 0 {
		t.Fatal("flight-recorder dump is empty despite a blackout")
	}
	transition := map[trace.EventType]bool{
		trace.EvTimeout: true, trace.EvFastRetx: true, trace.EvRecovered: true,
		trace.EvDataDrop: true, trace.EvAckDrop: true,
	}
	for _, ev := range ft.Events {
		if !transition[ev.Type] {
			t.Errorf("non-transition event %v leaked into the flight recorder", ev.Type)
		}
	}
}

func TestRunRejectsNegativeFlightrec(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "-flightrec", "-1"}); err == nil {
		t.Error("negative -flightrec accepted")
	}
}

func TestRunRejectsBadFaultSchedule(t *testing.T) {
	err := runGuarded([]string{"-out", t.TempDir(), "-flows", "1", "-duration", "10s",
		"-faults", "meteorstrike@5s+1s"})
	if err == nil {
		t.Error("bad fault schedule accepted")
	}
}
