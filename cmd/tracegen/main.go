// Command tracegen generates synthetic packet traces — the stand-in for the
// paper's wireshark captures — and writes them to disk in the binary or
// JSONL trace format.
//
// Usage:
//
//	tracegen -out traces/ [-flows 8] [-duration 60s] [-seed 1]
//	         [-scenario hsr|stationary] [-operator mobile|unicom|telecom]
//	         [-format binary|jsonl] [-faults "blackout@30s+2s; ..."]
//	         [-flightrec N] [-version]
//
// -faults injects a deterministic fault schedule (blackouts, ACK burst
// loss, rate collapses, delay spikes, handoff storms) into every generated
// flow; the DSL is documented in docs/ROBUSTNESS.md.
//
// -flightrec N additionally runs a bounded flight recorder per flow: the
// last N state-transition events (timeouts, fast retransmits, recoveries,
// drops) are written next to the full trace as <id>.flightrec.jsonl, in the
// regular JSONL trace format traceanalyze reads.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cellular"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/railway"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	if err := runGuarded(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// runGuarded converts any panic escaping run into a one-line error, so bad
// inputs always yield exit code 1 and a readable message, never a crash
// stack.
func runGuarded(args []string) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("internal error: %v", v)
		}
	}()
	return run(args)
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	out := fs.String("out", "traces", "output directory")
	flows := fs.Int("flows", 8, "number of flows to generate")
	duration := fs.Duration("duration", 60*time.Second, "flow duration")
	seed := fs.Int64("seed", 1, "base seed")
	scenario := fs.String("scenario", "hsr", "hsr or stationary")
	operator := fs.String("operator", "mobile", "mobile, unicom or telecom")
	format := fs.String("format", "binary", "binary or jsonl")
	faultSpec := fs.String("faults", "", "fault schedule DSL injected into every flow (see docs/ROBUSTNESS.md)")
	flightrec := fs.Int("flightrec", 0, "also write the last N state-transition events per flow as <id>.flightrec.jsonl (0 = off)")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.Line("tracegen"))
		return nil
	}
	if *flightrec < 0 {
		return fmt.Errorf("-flightrec %d must be non-negative", *flightrec)
	}

	sched, err := faults.Parse(*faultSpec)
	if err != nil {
		return err
	}

	var op cellular.Operator
	switch *operator {
	case "mobile":
		op = cellular.ChinaMobileLTE
	case "unicom":
		op = cellular.ChinaUnicom3G
	case "telecom":
		op = cellular.ChinaTelecom3G
	default:
		return fmt.Errorf("unknown operator %q", *operator)
	}
	profile := railway.DefaultProfile
	switch *scenario {
	case "hsr":
	case "stationary":
		profile = railway.StationaryProfile
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	var ext string
	var write func(*os.File, *trace.FlowTrace) error
	switch *format {
	case "binary":
		ext = ".hsrt"
		write = func(f *os.File, ft *trace.FlowTrace) error { return trace.WriteBinary(f, ft) }
	case "jsonl":
		ext = ".jsonl"
		write = func(f *os.File, ft *trace.FlowTrace) error { return trace.WriteJSONL(f, ft) }
	default:
		return fmt.Errorf("unknown format %q", *format)
	}

	trip, err := railway.NewTrip(railway.BeijingTianjin, profile)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}

	var rec *telemetry.FlightRecorder
	if *flightrec > 0 {
		rec = telemetry.NewFlightRecorder(*flightrec)
	}
	start, end := trip.CruiseWindow()
	for i := 0; i < *flows; i++ {
		offset := time.Duration(0)
		if !trip.Stationary() {
			offset = start + time.Duration(i)*37*time.Second
			if offset+*duration > end {
				offset = start
			}
		}
		sc := dataset.Scenario{
			ID:           fmt.Sprintf("%s-%s-%03d", *operator, *scenario, i),
			Operator:     op,
			Trip:         trip,
			TripOffset:   offset,
			FlowDuration: *duration,
			Seed:         *seed*1009 + int64(i),
			TCP:          tcp.DefaultConfig(),
			Scenario:     *scenario,
			Faults:       sched,
		}
		if rec != nil {
			rec.Reset()
			sc.FlightRecorder = rec
		}
		ft, st, err := dataset.RunFlow(sc)
		if err != nil {
			return fmt.Errorf("flow %d: %w", i, err)
		}
		path := filepath.Join(*out, sc.ID+ext)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		if err := write(f, ft); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", path, err)
		}
		fmt.Printf("%s: %d events, %d segments delivered, %.1f pps\n",
			path, len(ft.Events), st.UniqueDelivered, st.ThroughputPps())
		if rec != nil {
			frPath := filepath.Join(*out, sc.ID+".flightrec.jsonl")
			ff, err := os.Create(frPath)
			if err != nil {
				return fmt.Errorf("create %s: %w", frPath, err)
			}
			if err := trace.WriteJSONL(ff, rec.Trace(ft.Meta)); err != nil {
				ff.Close()
				return fmt.Errorf("write %s: %w", frPath, err)
			}
			if err := ff.Close(); err != nil {
				return fmt.Errorf("close %s: %w", frPath, err)
			}
			fmt.Printf("%s: %d transition events retained (%d overwritten)\n",
				frPath, rec.Len(), rec.Overwritten())
		}
	}
	return nil
}
