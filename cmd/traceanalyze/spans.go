package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/export"
	"repro/internal/tracing"
)

// runSpans is the -spans mode: read span traces, print a critical-path
// summary — per-kind totals, the slowest units with their attempt
// waterfalls, and where the time went (queue wait vs compute).
func runSpans(files []string, topK int) error {
	var spans []tracing.SpanRecord
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		batch, err := tracing.ReadTrace(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		spans = append(spans, batch...)
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans in the given trace files")
	}
	if err := tracing.Validate(spans); err != nil {
		fmt.Fprintf(os.Stderr, "traceanalyze: warning: span tree is not well formed: %v\n", err)
	}

	byID := make(map[string]tracing.SpanRecord, len(spans))
	children := make(map[string][]tracing.SpanRecord)
	for _, s := range spans {
		byID[s.ID] = s
		if s.Parent != "" {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	for id := range children {
		tracing.ByStart(children[id])
	}

	durMS := func(s tracing.SpanRecord) float64 { return float64(s.EndNS-s.StartNS) / 1e6 }

	// Per-kind totals.
	type kindAgg struct {
		kind    string
		count   int
		totalMS float64
		maxMS   float64
	}
	agg := map[string]*kindAgg{}
	for _, s := range spans {
		a := agg[s.Kind]
		if a == nil {
			a = &kindAgg{kind: s.Kind}
			agg[s.Kind] = a
		}
		a.count++
		d := durMS(s)
		a.totalMS += d
		if d > a.maxMS {
			a.maxMS = d
		}
	}
	kinds := make([]*kindAgg, 0, len(agg))
	for _, a := range agg {
		kinds = append(kinds, a)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].totalMS > kinds[j].totalMS })
	kt := export.NewTable("kind", "spans", "total", "mean", "max")
	for _, a := range kinds {
		kt.AddRow(a.kind, fmt.Sprintf("%d", a.count),
			fmt.Sprintf("%.1fms", a.totalMS),
			fmt.Sprintf("%.1fms", a.totalMS/float64(a.count)),
			fmt.Sprintf("%.1fms", a.maxMS))
	}
	fmt.Printf("%d spans across %d kind(s)\n\n%s\n", len(spans), len(kinds), kt.Render())

	// Queue-wait vs compute breakdown: where the fleet's wall time went.
	// queue-wait and compute are leaf measurements; flow wall time minus its
	// compute children is cache/serialization overhead.
	var queueMS, computeMS, flowMS, cacheMS float64
	for _, s := range spans {
		switch s.Kind {
		case "queue-wait":
			queueMS += durMS(s)
		case "compute":
			computeMS += durMS(s)
		case "flow":
			flowMS += durMS(s)
		case "cache":
			cacheMS += durMS(s)
		}
	}
	if queueMS > 0 || computeMS > 0 {
		total := queueMS + computeMS
		pct := func(v float64) string {
			if total == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f%%", 100*v/total)
		}
		bt := export.NewTable("where", "total", "share")
		bt.AddRow("queue wait", fmt.Sprintf("%.1fms", queueMS), pct(queueMS))
		bt.AddRow("compute", fmt.Sprintf("%.1fms", computeMS), pct(computeMS))
		fmt.Printf("queue wait vs compute (of %.1fms accounted)\n%s\n", total, bt.Render())
		if flowMS > 0 {
			fmt.Printf("flow wall %.1fms, cache path %.1fms\n\n", flowMS, cacheMS)
		}
	}

	// Top-K slowest distributed units, with their attempt waterfalls —
	// retries and hedges appear as sibling attempts under one unit.
	var units []tracing.SpanRecord
	for _, s := range spans {
		if s.Kind == "unit" {
			units = append(units, s)
		}
	}
	if len(units) == 0 {
		return nil
	}
	sort.Slice(units, func(i, j int) bool {
		di, dj := units[i].EndNS-units[i].StartNS, units[j].EndNS-units[j].StartNS
		if di != dj {
			return di > dj
		}
		return units[i].ID < units[j].ID
	})
	if topK > len(units) {
		topK = len(units)
	}
	base := spans[0].StartNS
	for _, s := range spans {
		if s.StartNS < base {
			base = s.StartNS
		}
	}
	fmt.Printf("top %d slowest units (of %d)\n", topK, len(units))
	for _, u := range units[:topK] {
		attempts := children[u.ID]
		hedged := ""
		if u.Attrs["hedged"] == "true" {
			hedged = " hedged"
		}
		fmt.Printf("  %s  %.1fms  %d attempt(s)%s\n", u.Name, durMS(u), len(attempts), hedged)
		for _, a := range attempts {
			if a.Kind != "attempt" {
				continue
			}
			outcome := a.Attrs["outcome"]
			if outcome == "" {
				outcome = "?"
			}
			fmt.Printf("    +%8.1fms  %-10s %8.1fms  worker=%s outcome=%s\n",
				float64(a.StartNS-base)/1e6, a.Name, durMS(a), a.Attrs["worker"], outcome)
		}
	}
	// Waterfall of every retried or hedged unit not already shown above.
	var multi []tracing.SpanRecord
	for _, u := range units[topK:] {
		n := 0
		for _, a := range children[u.ID] {
			if a.Kind == "attempt" {
				n++
			}
		}
		if n >= 2 {
			multi = append(multi, u)
		}
	}
	if len(multi) > 0 {
		names := make([]string, len(multi))
		for i, u := range multi {
			names[i] = u.Name
		}
		fmt.Printf("  (%d more unit(s) with retried or hedged attempts: %s)\n",
			len(multi), strings.Join(names, ", "))
	}
	return nil
}
