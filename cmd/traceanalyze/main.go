// Command traceanalyze reads stored packet traces (binary .hsrt or .jsonl)
// and prints the paper's per-flow metrics, optionally with the throughput
// model predictions alongside the measured throughput.
//
// Usage:
//
//	traceanalyze [-models] trace1.hsrt trace2.jsonl ...
//	traceanalyze -spans [-top K] trace.json ...
//
// With -spans the inputs are span traces (from hsrbench -trace-out or
// GET /v1/jobs/{id}/trace) and the output is a critical-path summary:
// per-kind totals, the top-K slowest distributed units with their retry and
// hedge attempt waterfalls, and a queue-wait versus compute breakdown.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/trace"
)

func main() {
	if err := runGuarded(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
}

// runGuarded converts any panic escaping run into a one-line error: a
// truncated or hostile trace file must produce exit code 1 and a readable
// message, never a crash stack.
func runGuarded(args []string) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("internal error: %v", v)
		}
	}()
	return run(args)
}

func run(args []string) error {
	fs := flag.NewFlagSet("traceanalyze", flag.ContinueOnError)
	models := fs.Bool("models", false, "also evaluate the Padhye and enhanced models")
	gaps := fs.Bool("gaps", false, "also report ACK silences (the sender-side view of ACK burst loss)")
	events := fs.Int("events", 0, "print the first N packet events of each trace as a timeline")
	spans := fs.Bool("spans", false, "treat the inputs as span traces (hsrbench -trace-out / GET /v1/jobs/{id}/trace) and print a critical-path summary instead of packet metrics")
	topK := fs.Int("top", 5, "with -spans: how many slowest units to detail")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.Line("traceanalyze"))
		return nil
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("no trace files given")
	}
	if *spans {
		return runSpans(files, *topK)
	}

	t := export.NewTable("flow", "op", "scenario", "pps", "Mbps", "p_d", "p_a", "q", "RTT",
		"TO seqs", "spurious", "mean recovery")
	var mt *export.Table
	if *models {
		mt = export.NewTable("flow", "actual pps", "Padhye pps", "D", "enhanced pps", "D")
	}
	var gt *export.Table
	if *gaps {
		gt = export.NewTable("flow", "ack gaps", "per round", "mean gap", "ended in RTO")
	}
	for _, path := range files {
		ft, err := readTrace(path)
		if err != nil {
			return err
		}
		m, err := analysis.Analyze(ft)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		t.AddRow(m.Meta.ID, m.Meta.Operator, m.Meta.Scenario,
			fmt.Sprintf("%.1f", m.ThroughputPps), fmt.Sprintf("%.2f", m.ThroughputBps/1e6),
			export.Percent(m.DataLossRate), export.Percent(m.AckLossRate),
			export.Percent(m.RecoveryLossRate),
			fmt.Sprintf("%.0fms", float64(m.MeanRTT.Milliseconds())),
			fmt.Sprintf("%d", m.TimeoutSequences), fmt.Sprintf("%d", m.SpuriousTimeouts),
			fmt.Sprintf("%.2fs", m.MeanRecoveryDuration.Seconds()))
		if *events > 0 {
			fmt.Printf("-- %s: first %d events --\n", m.Meta.ID, *events)
			et := export.NewTable("t", "event", "seq", "ack", "tx#", "cwnd")
			for i, ev := range ft.Events {
				if i >= *events {
					break
				}
				et.AddRow(fmt.Sprintf("%.4fs", ev.At.Seconds()), ev.Type.String(),
					fmt.Sprintf("%d", ev.Seq), fmt.Sprintf("%d", ev.Ack),
					fmt.Sprintf("%d", ev.TransmitNo), fmt.Sprintf("%.1f", ev.Cwnd))
			}
			fmt.Println(et.Render())
		}
		if *gaps {
			gs, err := analysis.AckGaps(ft, m, 0)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			var total time.Duration
			rto := 0
			for _, g := range gs.Gaps {
				total += g.Duration()
				if g.EndedInTimeout {
					rto++
				}
			}
			mean := time.Duration(0)
			if len(gs.Gaps) > 0 {
				mean = total / time.Duration(len(gs.Gaps))
			}
			gt.AddRow(m.Meta.ID, fmt.Sprintf("%d", len(gs.Gaps)),
				fmt.Sprintf("%.4f", gs.PerRoundRate),
				fmt.Sprintf("%.2fs", mean.Seconds()), fmt.Sprintf("%d", rto))
		}
		if *models {
			prm := core.ParamsFromMetrics(m)
			pad, err := core.Padhye(prm)
			if err != nil {
				return fmt.Errorf("%s: padhye: %w", path, err)
			}
			enh, err := core.Enhanced(prm)
			if err != nil {
				return fmt.Errorf("%s: enhanced: %w", path, err)
			}
			mt.AddRow(m.Meta.ID, fmt.Sprintf("%.1f", m.ThroughputPps),
				fmt.Sprintf("%.1f", pad), export.Percent(core.Deviation(pad, m.ThroughputPps)),
				fmt.Sprintf("%.1f", enh), export.Percent(core.Deviation(enh, m.ThroughputPps)))
		}
	}
	fmt.Println(t.Render())
	if gt != nil {
		fmt.Println(gt.Render())
	}
	if mt != nil {
		fmt.Println(mt.Render())
	}
	return nil
}

// readTrace loads a trace, picking the codec from the file extension and
// falling back to trying both.
func readTrace(path string) (*trace.FlowTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		ft, err := trace.ReadJSONL(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return ft, nil
	}
	ft, err := trace.ReadBinary(f)
	if err == nil {
		return ft, nil
	}
	if _, seekErr := f.Seek(0, 0); seekErr != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	ft, jerr := trace.ReadJSONL(f)
	if jerr != nil {
		return nil, fmt.Errorf("%s: not a trace file (binary: %v; jsonl: %v)", path, err, jerr)
	}
	return ft, nil
}
