package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/dataset"
	"repro/internal/railway"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// writeTestTrace simulates a short flow and stores it in both formats.
func writeTestTrace(t *testing.T, dir string) (binPath, jsonlPath string) {
	t.Helper()
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		t.Fatal(err)
	}
	start, _ := trip.CruiseWindow()
	ft, _, err := dataset.RunFlow(dataset.Scenario{
		ID: "cmdtest", Operator: cellular.ChinaMobileLTE, Trip: trip,
		TripOffset: start, FlowDuration: 15 * time.Second,
		Seed: 9, TCP: tcp.DefaultConfig(), Scenario: "hsr",
	})
	if err != nil {
		t.Fatal(err)
	}
	binPath = filepath.Join(dir, "flow.hsrt")
	f, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(f, ft); err != nil {
		t.Fatal(err)
	}
	f.Close()
	jsonlPath = filepath.Join(dir, "flow.jsonl")
	f, err = os.Create(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(f, ft); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return binPath, jsonlPath
}

func TestRunAnalyzesBothFormats(t *testing.T) {
	dir := t.TempDir()
	binPath, jsonlPath := writeTestTrace(t, dir)
	if err := run([]string{binPath, jsonlPath}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithModels(t *testing.T) {
	dir := t.TempDir()
	binPath, _ := writeTestTrace(t, dir)
	if err := run([]string{"-models", binPath}); err != nil {
		t.Fatalf("run -models: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no files accepted")
	}
	if err := run([]string{"/does/not/exist.hsrt"}); err == nil {
		t.Error("missing file accepted")
	}
	garbage := filepath.Join(t.TempDir(), "garbage.bin")
	if err := os.WriteFile(garbage, []byte("not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{garbage}); err == nil {
		t.Error("garbage file accepted")
	}
}

func TestReadTraceFallback(t *testing.T) {
	dir := t.TempDir()
	_, jsonlPath := writeTestTrace(t, dir)
	// A JSONL trace with a non-jsonl extension exercises the binary-then-
	// jsonl fallback.
	odd := filepath.Join(dir, "flow.dat")
	data, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(odd, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ft, err := readTrace(odd)
	if err != nil {
		t.Fatalf("fallback read: %v", err)
	}
	if ft.Meta.ID != "cmdtest" {
		t.Errorf("meta = %+v", ft.Meta)
	}
}

func TestRunWithGapsAndEvents(t *testing.T) {
	dir := t.TempDir()
	binPath, _ := writeTestTrace(t, dir)
	if err := run([]string{"-gaps", "-events", "10", binPath}); err != nil {
		t.Fatalf("run -gaps -events: %v", err)
	}
}
