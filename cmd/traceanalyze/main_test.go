package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/dataset"
	"repro/internal/railway"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// writeTestTrace simulates a short flow and stores it in both formats.
func writeTestTrace(t *testing.T, dir string) (binPath, jsonlPath string) {
	t.Helper()
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		t.Fatal(err)
	}
	start, _ := trip.CruiseWindow()
	ft, _, err := dataset.RunFlow(dataset.Scenario{
		ID: "cmdtest", Operator: cellular.ChinaMobileLTE, Trip: trip,
		TripOffset: start, FlowDuration: 15 * time.Second,
		Seed: 9, TCP: tcp.DefaultConfig(), Scenario: "hsr",
	})
	if err != nil {
		t.Fatal(err)
	}
	binPath = filepath.Join(dir, "flow.hsrt")
	f, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(f, ft); err != nil {
		t.Fatal(err)
	}
	f.Close()
	jsonlPath = filepath.Join(dir, "flow.jsonl")
	f, err = os.Create(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(f, ft); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return binPath, jsonlPath
}

func TestRunAnalyzesBothFormats(t *testing.T) {
	dir := t.TempDir()
	binPath, jsonlPath := writeTestTrace(t, dir)
	if err := run([]string{binPath, jsonlPath}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithModels(t *testing.T) {
	dir := t.TempDir()
	binPath, _ := writeTestTrace(t, dir)
	if err := run([]string{"-models", binPath}); err != nil {
		t.Fatalf("run -models: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no files accepted")
	}
	if err := run([]string{"/does/not/exist.hsrt"}); err == nil {
		t.Error("missing file accepted")
	}
	garbage := filepath.Join(t.TempDir(), "garbage.bin")
	if err := os.WriteFile(garbage, []byte("not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{garbage}); err == nil {
		t.Error("garbage file accepted")
	}
}

func TestReadTraceFallback(t *testing.T) {
	dir := t.TempDir()
	_, jsonlPath := writeTestTrace(t, dir)
	// A JSONL trace with a non-jsonl extension exercises the binary-then-
	// jsonl fallback.
	odd := filepath.Join(dir, "flow.dat")
	data, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(odd, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ft, err := readTrace(odd)
	if err != nil {
		t.Fatalf("fallback read: %v", err)
	}
	if ft.Meta.ID != "cmdtest" {
		t.Errorf("meta = %+v", ft.Meta)
	}
}

func TestRunWithGapsAndEvents(t *testing.T) {
	dir := t.TempDir()
	binPath, _ := writeTestTrace(t, dir)
	if err := run([]string{"-gaps", "-events", "10", binPath}); err != nil {
		t.Fatalf("run -gaps -events: %v", err)
	}
}

// corruptFile writes raw bytes to a temp file and returns the path.
func corruptFile(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTruncatedInputsFailGracefully(t *testing.T) {
	dir := t.TempDir()
	binPath, jsonlPath := writeTestTrace(t, dir)
	binData, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	jsonlData, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty.hsrt":      {},
		"magic-only.hsrt": binData[:4],
		"mid-header.hsrt": binData[:8],
		"mid-events.hsrt": binData[:len(binData)-13],
		// A count field promising ~4 billion events on an otherwise truncated
		// file: the reader must error out, not allocate 200 GB.
		"huge-count.hsrt": append(append([]byte{}, binData[:10]...), 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff),
		"empty.jsonl":     {},
		"mid-line.jsonl":  jsonlData[:len(jsonlData)-7],
		"no-meta.jsonl":   []byte("{\"broken\": \n"),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			path := corruptFile(t, name, data)
			// runGuarded (the main entry point) must return a plain error —
			// never panic — for every corruption.
			if err := runGuarded([]string{path}); err == nil {
				t.Errorf("corrupt input %s accepted", name)
			}
		})
	}
}

func TestRunGuardedRecoversPanic(t *testing.T) {
	// Direct check of the guard itself: a panic from below becomes an error.
	err := func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				t.Fatalf("panic escaped runGuarded: %v", v)
			}
		}()
		return runGuarded([]string{"-events", "-1", "/does/not/exist.hsrt"})
	}()
	if err == nil {
		t.Error("want an error for a missing file")
	}
}

func TestRunVersionFlag(t *testing.T) {
	// -version must print and exit successfully without any trace files.
	if err := run([]string{"-version"}); err != nil {
		t.Fatalf("-version: %v", err)
	}
}
