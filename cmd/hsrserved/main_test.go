package main

import (
	"strings"
	"testing"
)

func TestVersionFlag(t *testing.T) {
	if err := run([]string{"-version"}); err != nil {
		t.Fatalf("-version: %v", err)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatalf("bad flag accepted")
	}
}

func TestBadCacheDir(t *testing.T) {
	// A cache path under an existing file cannot be created.
	err := run([]string{"-cache", "main_test.go/nope", "-addr", "127.0.0.1:0"})
	if err == nil || !strings.Contains(err.Error(), "cache") {
		t.Fatalf("bad cache dir: %v", err)
	}
}
