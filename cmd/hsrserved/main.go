// Command hsrserved serves the simulation suite over HTTP: submit flow,
// campaign and experiment jobs as JSON to POST /v1/jobs and read back an
// NDJSON stream of progress events ending in the same telemetry report
// hsrbench -metrics writes. Results are bit-identical to the CLI for the
// same seed and scale — both surfaces share the experiment catalog, the
// flow cache and the report builder.
//
// Usage:
//
//	hsrserved [-addr :8096] [-role single|worker|coordinator]
//	          [-fleet URL,URL,...] [-unit-flows N] [-unit-timeout D]
//	          [-unit-retries N] [-heartbeat-interval D] [-hedge-after D]
//	          [-workers N] [-queue N] [-flow-parallelism N]
//	          [-dag-jobs N] [-cache DIR] [-cache-max-bytes N]
//	          [-max-flow-duration D] [-job-timeout D] [-drain-timeout D]
//	          [-stream-write-timeout D] [-trace] [-trace-jobs N] [-pprof]
//	          [-log-level debug|info|warn|error] [-version]
//
// Endpoints: POST /v1/jobs (submit, streams NDJSON), GET /v1/experiments
// (the catalog), GET /healthz (JSON liveness + version), GET /readyz
// (readiness: 503 while draining; queue occupancy and worker-fleet health),
// GET /metrics (text exposition of server, cache, campaign and fleet
// counters), GET /v1/jobs/{id}/trace (with -trace: a completed job's span
// tree in the Perfetto/Chrome trace-event format) and, with -pprof, the
// net/http/pprof surface under /debug/pprof/.
//
// Roles: "single" (default) runs everything in-process. "worker" is the
// same server, conventionally pointed at by a coordinator, which sends it
// flow-range unit jobs. "coordinator" (-fleet required) fans campaign and
// experiment jobs out over the worker fleet and reassembles results
// byte-identically to a single-node run — with per-unit retries, worker
// health tracking, straggler hedging and a local fallback that finishes the
// campaign even with every worker lost (see docs/SERVICE.md).
//
// Admission control: at most -workers jobs run concurrently and at most
// -queue wait; beyond that, submissions fail fast with 429 + Retry-After.
// SIGINT/SIGTERM drain gracefully: admission stops (503), running jobs and
// their streams finish (up to -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/logging"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hsrserved:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hsrserved", flag.ContinueOnError)
	addr := fs.String("addr", ":8096", "listen address")
	role := fs.String("role", "single", "node role: single, worker or coordinator")
	fleet := fs.String("fleet", "", "comma-separated worker base URLs (coordinator role)")
	unitFlows := fs.Int("unit-flows", 16, "flows per distributed work unit (coordinator role)")
	unitTimeout := fs.Duration("unit-timeout", time.Minute, "per-unit remote deadline before retry (coordinator role)")
	unitRetries := fs.Int("unit-retries", 3, "remote attempts per unit before local fallback (coordinator role)")
	heartbeat := fs.Duration("heartbeat-interval", 2*time.Second, "worker health-probe period (coordinator role)")
	hedgeAfter := fs.Duration("hedge-after", 0, "duplicate straggler units after this long; 0 disables (coordinator role)")
	workers := fs.Int("workers", 2, "jobs executing concurrently")
	queue := fs.Int("queue", 8, "jobs accepted but not yet running before submissions get 429")
	flowPar := fs.Int("flow-parallelism", 0, "concurrent flow simulations per job (0 = GOMAXPROCS)")
	dagJobs := fs.Int("dag-jobs", 1, "concurrent experiment tasks per job")
	cacheDir := fs.String("cache", "", "flow result cache directory shared across all jobs")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "bound the cache directory's entry bytes, evicting oldest entries first (0 = unbounded)")
	maxFlowDur := fs.Duration("max-flow-duration", 10*time.Minute, "reject jobs asking for longer simulated flows")
	jobTimeout := fs.Duration("job-timeout", 15*time.Minute, "per-job deadline cap (and default when the job names none)")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "how long a shutdown signal waits for running jobs before exiting anyway")
	streamWriteTimeout := fs.Duration("stream-write-timeout", 30*time.Second, "per-write deadline on NDJSON streams; a slower client's stream aborts and its job is cancelled")
	trace := fs.Bool("trace", false, "record a span tree per job, served at GET /v1/jobs/{id}/trace (Perfetto-loadable; never perturbs results)")
	traceJobs := fs.Int("trace-jobs", 64, "completed-job traces retained for /v1/jobs/{id}/trace")
	pprofFlag := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in profiling surface)")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn or error")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.Line("hsrserved"))
		return nil
	}

	level, err := logging.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	log := logging.New(os.Stderr, level, "svc", "hsrserved")
	cfg := serve.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		FlowParallelism:    *flowPar,
		DAGJobs:            *dagJobs,
		StreamWriteTimeout: *streamWriteTimeout,
		Limits: serve.Limits{
			MaxFlowDuration: *maxFlowDur,
			MaxTimeout:      *jobTimeout,
		},
		Log:         log,
		Trace:       *trace,
		TraceJobs:   *traceJobs,
		EnablePprof: *pprofFlag,
	}
	if *cacheDir != "" {
		cache, err := dataset.OpenFlowCache(*cacheDir)
		if err != nil {
			return err
		}
		if err := cache.SetMaxBytes(*cacheMaxBytes); err != nil {
			return err
		}
		cfg.Cache = cache
	}

	switch *role {
	case "single", "worker":
		if *fleet != "" {
			return fmt.Errorf("-fleet requires -role coordinator")
		}
	case "coordinator":
		urls := splitFleet(*fleet)
		if len(urls) == 0 {
			return fmt.Errorf("-role coordinator needs -fleet with at least one worker URL")
		}
		coord, err := dist.New(dist.Config{
			Workers:           urls,
			UnitFlows:         *unitFlows,
			UnitTimeout:       *unitTimeout,
			MaxAttempts:       *unitRetries,
			HeartbeatInterval: *heartbeat,
			HedgeAfter:        *hedgeAfter,
			Seed:              time.Now().UnixNano(), // jitter only; never touches results
			Log:               log.With("comp", "dist"),
		})
		if err != nil {
			return err
		}
		defer coord.Close()
		cfg.Runner = coord.RunCampaign
		cfg.Fleet = coord.FleetHealth
		cfg.FleetCounters = coord.Counters
	default:
		return fmt.Errorf("unknown -role %q (single, worker or coordinator)", *role)
	}
	srv := serve.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Info("listening", "addr", ln.Addr(), "role", *role, "workers", *workers,
		"queue", *queue, "version", buildinfo.Version())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	log.Info("shutdown signal: draining", "timeout", *drainTimeout)
	srv.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Shutdown waits for the streaming handlers (and so the running jobs)
	// to finish before closing the listener's connections.
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	srv.Drain()
	// CI's distributed smoke greps for this exact message.
	log.Info("drained, exiting")
	return nil
}

// splitFleet parses the -fleet flag into worker URLs.
func splitFleet(s string) []string {
	var urls []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			urls = append(urls, strings.TrimRight(part, "/"))
		}
	}
	return urls
}
