// hsr_optimizations runs the same HSR flow under the transport-level
// optimizations this repository implements on top of the paper's findings:
//
//   - plain TCP Reno (the paper's baseline subject),
//   - NewReno partial-ACK recovery,
//   - a TCP-DCA-style adaptive delayed-ACK receiver (Section V-A future work),
//   - an Eifel-style spurious-RTO response (motivated by the 49% spurious
//     timeouts the paper measures),
//   - and all of the above combined,
//
// and prints a side-by-side comparison over a few paired seeds.
//
// Run with:
//
//	go run ./examples/hsr_optimizations
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cellular"
	"repro/internal/dataset"
	"repro/internal/railway"
	"repro/internal/tcp"
)

func main() {
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		log.Fatal(err)
	}
	start, _ := trip.CruiseWindow()

	type variant struct {
		name string
		cfg  func() tcp.Config
	}
	variants := []variant{
		{"plain Reno", func() tcp.Config { return tcp.DefaultConfig() }},
		{"NewReno", func() tcp.Config {
			c := tcp.DefaultConfig()
			c.Variant = tcp.VariantNewReno
			return c
		}},
		{"adaptive delack", func() tcp.Config {
			c := tcp.DefaultConfig()
			c.AdaptiveDelAck = true
			c.DelayedAckB = 4
			return c
		}},
		{"Eifel response", func() tcp.Config {
			c := tcp.DefaultConfig()
			c.SpuriousRTORecovery = true
			return c
		}},
		{"all combined", func() tcp.Config {
			c := tcp.DefaultConfig()
			c.Variant = tcp.VariantNewReno
			c.AdaptiveDelAck = true
			c.DelayedAckB = 4
			c.SpuriousRTORecovery = true
			return c
		}},
	}

	const seeds = 4
	fmt.Printf("%-16s %10s %10s %10s\n", "variant", "mean pps", "timeouts", "spurious-undone")
	for _, v := range variants {
		var pps float64
		var timeouts, undone int64
		for seed := int64(1); seed <= seeds; seed++ {
			sc := dataset.Scenario{
				ID:           "opt-" + v.name,
				Operator:     cellular.ChinaMobileLTE,
				Trip:         trip,
				TripOffset:   start + time.Duration(seed)*37*time.Second,
				FlowDuration: 60 * time.Second,
				Seed:         seed,
				TCP:          v.cfg(),
				Scenario:     "hsr",
			}
			_, st, err := dataset.RunFlow(sc)
			if err != nil {
				log.Fatal(err)
			}
			pps += st.ThroughputPps()
			timeouts += st.Timeouts
			undone += st.SpuriousRecoveries
		}
		fmt.Printf("%-16s %10.1f %10d %10d\n", v.name, pps/seeds, timeouts, undone)
	}
	fmt.Println("\nNo transport tweak recovers the handoff dead time itself — that needs")
	fmt.Println("multipath (see examples/mptcp_comparison), exactly the paper's conclusion.")
}
