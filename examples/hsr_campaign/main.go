// hsr_campaign replays a scaled-down version of the paper's measurement
// campaign (Table I: three carriers, HSR plus a stationary baseline) and
// prints the dataset summary and the headline claims of Section III.
//
// Run with:
//
//	go run ./examples/hsr_campaign           (quick, ~seconds)
//	go run ./examples/hsr_campaign -full     (the full 255-flow campaign)
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run the full 255-flow Table I campaign")
	flag.Parse()

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Default()
	}

	start := time.Now()
	ctx, err := experiments.NewContext(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d HSR + %d stationary flows in %v\n\n",
		len(ctx.HSR.Results), len(ctx.Stationary.Results), time.Since(start).Round(time.Millisecond))

	fmt.Println(experiments.Table1(ctx).Render())
	fmt.Println(experiments.Scalars(ctx).Render())
	fmt.Println(experiments.Figure6(ctx).Render())
}
