// mptcp_comparison reproduces the paper's Fig 12 experiment in miniature:
// move the same payload once over a single TCP flow and once over two
// concurrent MPTCP-style subflows, per carrier, and report the improvement.
// It also demonstrates backup-mode double retransmission (Section V-B).
//
// Run with:
//
//	go run ./examples/mptcp_comparison
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cellular"
	"repro/internal/dataset"
	"repro/internal/mptcp"
	"repro/internal/railway"
	"repro/internal/tcp"
)

func main() {
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		log.Fatal(err)
	}
	start, _ := trip.CruiseWindow()

	const segments = 3000 // ~4.3 MB at the default MSS
	fmt.Printf("transferring %d segments per run (single flow vs 2 subflows)\n\n", segments)

	for _, op := range cellular.Operators() {
		scenario := dataset.Scenario{
			ID:           "mptcp-" + op.Name,
			Operator:     op,
			Trip:         trip,
			TripOffset:   start,
			FlowDuration: 10 * time.Minute, // horizon, not target duration
			Seed:         7,
			TCP:          tcp.DefaultConfig(),
			Scenario:     "hsr",
		}
		single, duplex, improvement, err := mptcp.CompareSized(scenario, segments)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s single TCP %6.1f pps   MPTCP duplex %6.1f pps   improvement %+.1f%%\n",
			op.Name, single, duplex, improvement*100)
	}

	// Backup mode: the same primary flow, but every RTO retransmission is
	// duplicated over a second subflow.
	fmt.Println("\nbackup mode (double retransmission) on China Mobile:")
	scenario := dataset.Scenario{
		ID:           "backup-demo",
		Operator:     cellular.ChinaMobileLTE,
		Trip:         trip,
		TripOffset:   start,
		FlowDuration: 90 * time.Second,
		Seed:         7,
		TCP:          tcp.DefaultConfig(),
		Scenario:     "hsr",
	}
	plain, err := dataset.AnalyzeFlow(scenario)
	if err != nil {
		log.Fatal(err)
	}
	backup, err := mptcp.RunBackup(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  plain TCP : q = %5.1f%%, mean recovery %5.2f s, %6.1f pps\n",
		plain.RecoveryLossRate*100, plain.MeanRecoveryDuration.Seconds(), plain.ThroughputPps)
	fmt.Printf("  backup    : q = %5.1f%%, mean recovery %5.2f s, %6.1f pps (%d retransmissions duplicated)\n",
		backup.Metrics.RecoveryLossRate*100, backup.Metrics.MeanRecoveryDuration.Seconds(),
		backup.Metrics.ThroughputPps, backup.BackupRetransmits)
}
