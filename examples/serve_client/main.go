// Serve client: start hsrserved, then run this program to submit a
// fault-injection severity sweep as an experiment job and stream its
// progress. It demonstrates the full service round trip — admission,
// NDJSON progress events, and the final telemetry report — plus a cached
// single-flow job with a fault schedule.
//
// Run with:
//
//	go run ./cmd/hsrserved -addr :8096 -cache /tmp/flowcache &
//	go run ./examples/serve_client -addr http://localhost:8096
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "http://localhost:8096", "hsrserved base URL")
	flag.Parse()

	// What can this server run? The catalog is the same list hsrbench -run
	// accepts.
	resp, err := http.Get(*addr + "/v1/experiments")
	if err != nil {
		log.Fatalf("is hsrserved running? %v", err)
	}
	var catalog struct {
		Experiments []string `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&catalog); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("catalog: %v\n\n", catalog.Experiments)

	// Submit the fault-injection severity sweep — the "faults" experiment
	// runs escalating blackout/ACK-storm schedules against the quick
	// campaign scale and renders goodput vs severity.
	job := map[string]any{
		"kind":  "experiment",
		"run":   []string{"faults"},
		"quick": true,
		"seed":  7,
	}
	fmt.Println("submitting fault-severity sweep...")
	report := submit(*addr, job)

	// The terminal event carries the same telemetry report hsrbench
	// -metrics writes; the rendered section arrived in outputs.
	fmt.Printf("\nreport: tool=%s version=%s seed=%d tasks=%d\n",
		report.Report.Tool, report.Report.Version, report.Report.Seed, len(report.Report.Tasks))

	// A single faulted flow: 2 s blackout starting at t=10 s. Submitting it
	// twice shows the server-side flow cache (the second result is marked
	// cached and is byte-identical).
	flow := map[string]any{
		"kind":     "flow",
		"duration": "30s",
		"seed":     11,
		"faults":   "blackout@10s+2s",
	}
	fmt.Println("\nsubmitting faulted flow twice...")
	first := submit(*addr, flow)
	second := submit(*addr, flow)
	fmt.Printf("first cached=%v, second cached=%v\n", first.Cached, second.Cached)
	if first.Flow != nil && second.Flow != nil {
		a, _ := json.Marshal(first.Flow)
		b, _ := json.Marshal(second.Flow)
		fmt.Printf("flow results byte-identical: %v\n", bytes.Equal(a, b))
	}
}

// submit posts one job and streams its events, returning the terminal one.
func submit(addr string, job map[string]any) serve.Event {
	body, err := json.Marshal(job)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("job rejected (%d): %s", resp.StatusCode, e.Error)
	}
	var last serve.Event
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var ev serve.Event
		if err := dec.Decode(&ev); err != nil {
			log.Fatal(err)
		}
		switch ev.Event {
		case "accepted":
			fmt.Printf("  accepted as %s (queue depth %d)\n", ev.JobID, ev.QueueDepth)
		case "flows":
			fmt.Printf("  flows %d/%d\n", ev.Done, ev.Total)
		case "task":
			fmt.Printf("  [%d/%d] %s %s\n", ev.Completed, ev.Total, ev.Task, ev.Status)
		case "result":
			fmt.Printf("  %s done: status=%s in %.0f ms\n", ev.JobID, ev.Status, ev.ElapsedMS)
		case "error":
			log.Fatalf("job failed: %s", ev.Error)
		}
		last = ev
	}
	return last
}
