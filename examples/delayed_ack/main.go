// delayed_ack explores Section V-A of the paper: the delayed-ACK window b
// trades ACK traffic against vulnerability to ACK burst loss. On the HSR
// channel, fewer ACKs per round mean fewer chances for one "precious" ACK
// to survive a handoff, so spurious timeouts rise with b.
//
// Run with:
//
//	go run ./examples/delayed_ack
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	cfg := experiments.Quick()
	cfg.PairsPerOperator = 5 // 10 flows per b setting

	res, err := experiments.DelayedAck(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	fmt.Println("Interpretation: as b grows the receiver emits fewer, heavier ACKs; losing")
	fmt.Println("one round's worth of them stalls the sender into a (often spurious) RTO.")
	fmt.Println("The paper therefore suggests adapting the delayed-ACK window to mobility.")
}
