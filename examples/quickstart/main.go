// Quickstart: simulate one TCP flow on a phone riding the Beijing-Tianjin
// high-speed railway, analyze its packet trace the way the paper does, and
// compare the measured throughput with the Padhye baseline and the paper's
// enhanced model.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/analysis"
	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/railway"
	"repro/internal/tcp"
)

func main() {
	// The physical setting: the BTR line at 300 km/h cruise.
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		log.Fatal(err)
	}
	cruiseStart, _ := trip.CruiseWindow()

	// One 90-second bulk download over China Mobile's LTE network while the
	// train crosses cells every ~12 seconds.
	scenario := dataset.Scenario{
		ID:           "quickstart",
		Operator:     cellular.ChinaMobileLTE,
		Trip:         trip,
		TripOffset:   cruiseStart,
		FlowDuration: 90 * time.Second,
		Seed:         42,
		TCP:          tcp.DefaultConfig(),
		Scenario:     "hsr",
	}

	// Run the simulation and reduce the packet trace to the paper's metrics.
	flowTrace, _, err := dataset.RunFlow(scenario)
	if err != nil {
		log.Fatal(err)
	}
	m, err := analysis.Analyze(flowTrace)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== measured on the simulated train ==")
	fmt.Printf("throughput:            %.1f packets/s (%.2f Mbit/s)\n", m.ThroughputPps, m.ThroughputBps/1e6)
	fmt.Printf("data loss rate p_d:    %.4f%%\n", m.DataLossRate*100)
	fmt.Printf("ACK loss rate p_a:     %.4f%%\n", m.AckLossRate*100)
	fmt.Printf("mean RTT:              %v\n", m.MeanRTT.Round(time.Millisecond))
	fmt.Printf("timeout sequences:     %d (%d spurious)\n", m.TimeoutSequences, m.SpuriousTimeouts)
	fmt.Printf("mean timeout recovery: %.2f s\n", m.MeanRecoveryDuration.Seconds())
	fmt.Printf("recovery loss rate q:  %.1f%%\n", m.RecoveryLossRate*100)

	// Feed the measured parameters into both throughput models.
	params := core.ParamsFromMetrics(m)
	padhye, err := core.Padhye(params)
	if err != nil {
		log.Fatal(err)
	}
	enhanced, err := core.Enhanced(params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== model predictions vs reality ==")
	fmt.Printf("actual:         %.1f pps\n", m.ThroughputPps)
	fmt.Printf("Padhye model:   %.1f pps (deviation D = %.1f%%)\n",
		padhye, core.Deviation(padhye, m.ThroughputPps)*100)
	fmt.Printf("enhanced model: %.1f pps (deviation D = %.1f%%)\n",
		enhanced, core.Deviation(enhanced, m.ThroughputPps)*100)
	fmt.Println("\nThe enhanced model captures the ACK-burst-driven spurious timeouts and the")
	fmt.Println("lossy timeout recovery phases that the Padhye model cannot see.")
}
