package repro_test

// The benchmark harness: one benchmark per table/figure of the paper (see
// DESIGN.md's per-experiment index) plus micro-benchmarks of the hot
// substrate paths. Each experiment benchmark reports its headline
// reproduction metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both times the harness and prints the paper-vs-measured numbers.

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/railway"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

var (
	benchCtxOnce sync.Once
	benchCtx     *experiments.Context
	benchCtxErr  error
)

// benchContext builds one shared Quick-scale campaign context (not timed).
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchCtxOnce.Do(func() {
		benchCtx, benchCtxErr = experiments.NewContext(experiments.Quick())
	})
	if benchCtxErr != nil {
		b.Fatalf("NewContext: %v", benchCtxErr)
	}
	return benchCtx
}

// BenchmarkTable1Dataset regenerates the Table I dataset summary.
func BenchmarkTable1Dataset(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.Table1Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = experiments.Table1(ctx)
	}
	b.ReportMetric(float64(res.TotalFlows), "flows")
	b.ReportMetric(res.TotalSimGB*1000, "sim_MB")
}

// BenchmarkFigure1DeliveryScatter regenerates the per-packet delivery
// scatter of Fig 1 (one cruise-speed flow, full trace).
func BenchmarkFigure1DeliveryScatter(b *testing.B) {
	var res *experiments.Figure1Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure1(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Points)), "packets")
	b.ReportMetric(float64(len(res.Timeouts)), "timeout_seqs")
}

// BenchmarkFigure2RecoveryPhase extracts the Fig 2 recovery-phase timeline.
// The exemplar flow comes from the shared Context's cached Figure1 result,
// so setup neither re-simulates the flow nor counts against timed iterations.
func BenchmarkFigure2RecoveryPhase(b *testing.B) {
	fig1, err := benchContext(b).Figure1()
	if err != nil {
		b.Fatal(err)
	}
	var res *experiments.Figure2Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure2(fig1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Phase.Duration().Seconds(), "recovery_s")
	b.ReportMetric(float64(res.Phase.Timeouts), "timeouts")
}

// BenchmarkFigure3LossCDF regenerates the q vs p_d CDFs of Fig 3.
func BenchmarkFigure3LossCDF(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.Figure3Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = experiments.Figure3(ctx)
	}
	b.ReportMetric(res.MeanRecovery*100, "q_%")
	b.ReportMetric(res.MeanLifetime*100, "p_d_%")
}

// BenchmarkFigure4AckTimeoutCorrelation regenerates Fig 4's correlation.
func BenchmarkFigure4AckTimeoutCorrelation(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.Figure4Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = experiments.Figure4(ctx)
	}
	b.ReportMetric(res.Pearson, "pearson_r")
	b.ReportMetric(res.Spearman, "spearman_rho")
}

// BenchmarkFigure6AckLossCDF regenerates Fig 6's ACK-loss CDFs.
func BenchmarkFigure6AckLossCDF(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.Figure6Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = experiments.Figure6(ctx)
	}
	b.ReportMetric(res.MeanHSR*100, "hsr_ack_loss_%")
	b.ReportMetric(res.MeanStationary*100, "stationary_ack_loss_%")
}

// BenchmarkFigure10ModelAccuracy regenerates the paper's headline result:
// mean deviation D of the Padhye model vs the enhanced model (paper: 21.96%
// vs 5.66%).
func BenchmarkFigure10ModelAccuracy(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.Figure10Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure10(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanDPadhye*100, "D_padhye_%")
	b.ReportMetric(res.MeanDEnh*100, "D_enhanced_%")
	b.ReportMetric(res.ImprovePts*100, "improvement_pts")
}

// BenchmarkFigure12MPTCP regenerates the MPTCP-vs-TCP comparison (paper:
// +42.15% Mobile, +95.64% Unicom, +283.33% Telecom).
func BenchmarkFigure12MPTCP(b *testing.B) {
	var res *experiments.Figure12Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure12(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, op := range res.Operators {
		switch op.Name {
		case cellular.ChinaMobileLTE.Name:
			b.ReportMetric(op.MeanImprovement*100, "mobile_gain_%")
		case cellular.ChinaUnicom3G.Name:
			b.ReportMetric(op.MeanImprovement*100, "unicom_gain_%")
		case cellular.ChinaTelecom3G.Name:
			b.ReportMetric(op.MeanImprovement*100, "telecom_gain_%")
		}
	}
}

// BenchmarkScalarClaims regenerates the Section III headline numbers.
func BenchmarkScalarClaims(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.ScalarsResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = experiments.Scalars(ctx)
	}
	b.ReportMetric(res.MeanRecoveryHSR.Seconds(), "hsr_recovery_s")
	b.ReportMetric(res.MeanRecoveryStationary.Seconds(), "stationary_recovery_s")
	b.ReportMetric(res.SpuriousFraction*100, "spurious_%")
}

// BenchmarkDelayedAckSweep regenerates the Section V-A delayed-ACK study.
func BenchmarkDelayedAckSweep(b *testing.B) {
	var res *experiments.DelayedAckResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.DelayedAck(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	b.ReportMetric(float64(first.SpuriousTimeouts), "spurious_b1")
	b.ReportMetric(float64(last.SpuriousTimeouts), "spurious_b8")
}

// BenchmarkModelAblation regenerates the model-variant ablation.
func BenchmarkModelAblation(b *testing.B) {
	ctx := benchContext(b)
	var res *experiments.AblationResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = experiments.ModelAblation(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, v := range res.Variants {
		switch v.Name {
		case "Padhye (full)":
			b.ReportMetric(v.MeanD*100, "D_padhye_%")
		case "Enhanced (paper, Pa=p_a^w)":
			b.ReportMetric(v.MeanD*100, "D_enhanced_%")
		}
	}
}

// BenchmarkMptcpBackupQ regenerates the Section V-B backup-mode study.
func BenchmarkMptcpBackupQ(b *testing.B) {
	var res *experiments.BackupQResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.BackupQ(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	pq, bq, pr, br := res.Means()
	b.ReportMetric(pq*100, "plain_q_%")
	b.ReportMetric(bq*100, "backup_q_%")
	b.ReportMetric(pr.Seconds(), "plain_recovery_s")
	b.ReportMetric(br.Seconds(), "backup_recovery_s")
}

// BenchmarkEifelResponse regenerates the Eifel-style spurious-RTO study.
func BenchmarkEifelResponse(b *testing.B) {
	var res *experiments.EifelResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Eifel(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanGain*100, "gain_%")
	b.ReportMetric(float64(res.TotalUndo), "undone")
}

// BenchmarkChannelSensitivity regenerates the handoff-duration ablation.
func BenchmarkChannelSensitivity(b *testing.B) {
	var res *experiments.ChannelSensitivityResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.ChannelSensitivity(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := res.Levels[len(res.Levels)-1]
	b.ReportMetric(last.MeanDPadhye*100, "D_padhye_2x_%")
	b.ReportMetric(last.MeanDEnh*100, "D_enhanced_2x_%")
}

// BenchmarkVariants regenerates the Reno-vs-NewReno comparison.
func BenchmarkVariants(b *testing.B) {
	var res *experiments.VariantsResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Variants(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	if reno, ok := res.ByName("reno"); ok {
		b.ReportMetric(reno.MeanTputPps, "reno_pps")
	}
	if nr, ok := res.ByName("newreno"); ok {
		b.ReportMetric(nr.MeanTputPps, "newreno_pps")
	}
}

// BenchmarkSpeedSweep regenerates the 0-300 km/h premise sweep.
func BenchmarkSpeedSweep(b *testing.B) {
	var res *experiments.SpeedSweepResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.SpeedSweep(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Points[0].MeanTputPps, "pps_0kmh")
	b.ReportMetric(res.Points[len(res.Points)-1].MeanTputPps, "pps_300kmh")
}

// BenchmarkModelValidation regenerates the static-channel pipeline check.
func BenchmarkModelValidation(b *testing.B) {
	var res *experiments.ValidationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.ModelValidation(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanDPadhye*100, "D_padhye_static_%")
	b.ReportMetric(res.MeanDEnh*100, "D_enhanced_static_%")
}

// --- micro-benchmarks of the substrate ---

// BenchmarkSimulatorEvents measures raw event-loop throughput.
func BenchmarkSimulatorEvents(b *testing.B) {
	s := sim.New()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.Schedule(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	s.Schedule(time.Microsecond, tick)
	s.Run()
}

// BenchmarkScheduleFire measures the pooled fire-and-forget event path
// (sim.Handler + ScheduleFire): the per-packet delivery mechanism. After the
// free list warms up this path is allocation-free.
func BenchmarkScheduleFire(b *testing.B) {
	b.ReportAllocs()
	s := sim.New()
	h := &benchHandler{s: s}
	h.n = b.N
	b.ResetTimer()
	s.ScheduleFire(time.Microsecond, h)
	s.Run()
}

// benchHandler reschedules itself n times through the pooled event path.
type benchHandler struct {
	s *sim.Simulator
	n int
	i int
}

func (h *benchHandler) Fire() {
	h.i++
	if h.i < h.n {
		h.s.ScheduleFire(time.Microsecond, h)
	}
}

// BenchmarkTimerRescheduleChurn measures the sender.armTimer pattern: one
// long-lived timer rearmed on every ACK. Reschedule re-slots the timer in
// place — usually without even moving it between wheel slots — instead of
// allocating a replacement per rearm.
func BenchmarkTimerRescheduleChurn(b *testing.B) {
	b.ReportAllocs()
	s := sim.New()
	fired := 0
	t := s.Schedule(time.Second, func() { fired++ })
	drive := &rescheduleDriver{s: s, t: t, n: b.N}
	b.ResetTimer()
	s.ScheduleFire(time.Microsecond, drive)
	s.Run()
	if fired != 1 {
		b.Fatalf("RTO timer fired %d times, want 1", fired)
	}
}

// rescheduleDriver rearms the timer n times, then lets it expire.
type rescheduleDriver struct {
	s *sim.Simulator
	t *sim.Timer
	n int
	i int
}

func (d *rescheduleDriver) Fire() {
	d.t.Reschedule(time.Second)
	d.i++
	if d.i < d.n {
		d.s.ScheduleFire(time.Microsecond, d)
	}
}

// BenchmarkCancelHeavy measures the Stop-heavy workload: schedule a far-out
// timer, cancel it, repeat. Stop unlinks the timer from its wheel slot in
// O(1), so cancelled events never accumulate.
func BenchmarkCancelHeavy(b *testing.B) {
	b.ReportAllocs()
	s := sim.New()
	for i := 0; i < b.N; i++ {
		t := s.Schedule(time.Hour, func() {})
		t.Stop()
	}
	if got := s.Pending(); got != 0 {
		b.Fatalf("Pending() = %d after cancelling everything, want 0", got)
	}
	s.Run()
}

// nopHandler is an empty pooled-event callback for pure kernel benchmarks.
type nopHandler struct{}

func (*nopHandler) Fire() {}

// BenchmarkRunBatchDispatch measures dense batched dispatch: rounds of 256
// events submitted into one wheel tick and drained by RunBatch — the shape a
// window-sized TCP burst produces. After warmup the path is allocation-free.
func BenchmarkRunBatchDispatch(b *testing.B) {
	b.ReportAllocs()
	s := sim.New()
	h := &nopHandler{}
	const round = 256
	for i := 0; i < round; i++ {
		s.ScheduleFire(time.Millisecond, h) // warm the event pool
	}
	s.Run()
	b.ResetTimer()
	for done := 0; done < b.N; done += round {
		for i := 0; i < round; i++ {
			s.ScheduleFire(time.Millisecond, h)
		}
		for s.RunBatch() > 0 {
		}
	}
}

// BenchmarkCascadeFarFuture measures coarse-level placement plus cascade
// cost: each event is scheduled five minutes ahead, so it parks two wheel
// levels up and is redistributed twice before firing.
func BenchmarkCascadeFarFuture(b *testing.B) {
	b.ReportAllocs()
	s := sim.New()
	h := &farHandler{s: s, n: b.N}
	b.ResetTimer()
	s.ScheduleFire(5*time.Minute, h)
	s.Run()
}

// farHandler reschedules itself n times, five virtual minutes out each time.
type farHandler struct {
	s    *sim.Simulator
	n, i int
}

func (h *farHandler) Fire() {
	h.i++
	if h.i < h.n {
		h.s.ScheduleFire(5*time.Minute, h)
	}
}

// BenchmarkRunFlowStreaming measures one full 30-second HSR flow reduced
// straight to metrics through the pooled streaming analyzer — the same flow
// BenchmarkTCPFlowSimulation materializes as a trace, so the pair quantifies
// what skipping trace materialization saves (docs/PERFORMANCE.md cites both).
func BenchmarkRunFlowStreaming(b *testing.B) {
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		b.Fatal(err)
	}
	start, _ := trip.CruiseWindow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := dataset.Scenario{
			ID: "bench", Operator: cellular.ChinaMobileLTE, Trip: trip,
			TripOffset: start, FlowDuration: 30 * time.Second,
			Seed: int64(i), TCP: tcp.DefaultConfig(), Scenario: "hsr",
		}
		if _, _, err := dataset.RunFlowMetrics(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunFlowMaterialized is the legacy pipeline over the same flow as
// BenchmarkRunFlowStreaming: materialize the full event trace, then run the
// batch analyzer. Compare the two to see the streaming win.
func BenchmarkRunFlowMaterialized(b *testing.B) {
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		b.Fatal(err)
	}
	start, _ := trip.CruiseWindow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := dataset.Scenario{
			ID: "bench", Operator: cellular.ChinaMobileLTE, Trip: trip,
			TripOffset: start, FlowDuration: 30 * time.Second,
			Seed: int64(i), TCP: tcp.DefaultConfig(), Scenario: "hsr",
		}
		ft, _, err := dataset.RunFlow(sc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := analysis.Analyze(ft); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCampaign is the small campaign the cache benchmarks run: big enough
// to amortize fixed costs, small enough to keep the cold iterations sane.
func benchCampaign(cache *dataset.FlowCache) dataset.CampaignConfig {
	return dataset.CampaignConfig{
		Seed: 1, FlowDuration: 15 * time.Second, FlowsPerRow: 2,
		Parallelism: 1, Cache: cache,
	}
}

// BenchmarkCampaignColdCache runs a small campaign against an empty cache
// every iteration: full simulation plus entry write-back.
func BenchmarkCampaignColdCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		cache, err := dataset.OpenFlowCacheVersion(dir, "bench")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := dataset.RunCampaign(benchCampaign(cache)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignWarmCache runs the same campaign as
// BenchmarkCampaignColdCache against a pre-populated cache, so every flow is
// a hit and no simulation runs. The ratio of the two is the warm-cache
// speedup docs/PERFORMANCE.md quotes.
func BenchmarkCampaignWarmCache(b *testing.B) {
	dir := b.TempDir()
	cache, err := dataset.OpenFlowCacheVersion(dir, "bench")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dataset.RunCampaign(benchCampaign(cache)); err != nil {
		b.Fatal(err)
	}
	if c := cache.Counters(); c.Hits != 0 || c.Misses == 0 {
		b.Fatalf("warm-up campaign: %+v, want all misses", c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.RunCampaign(benchCampaign(cache)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if c := cache.Counters(); c.Errors > 0 {
		b.Fatalf("cache errors after warm runs: %+v", c)
	}
}

// BenchmarkTCPFlowSimulation measures one full 30-second HSR flow.
func BenchmarkTCPFlowSimulation(b *testing.B) {
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		b.Fatal(err)
	}
	start, _ := trip.CruiseWindow()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := dataset.Scenario{
			ID: "bench", Operator: cellular.ChinaMobileLTE, Trip: trip,
			TripOffset: start, FlowDuration: 30 * time.Second,
			Seed: int64(i), TCP: tcp.DefaultConfig(), Scenario: "hsr",
		}
		if _, _, err := dataset.RunFlow(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPFlowSimulationTelemetry is BenchmarkTCPFlowSimulation with a
// full telemetry bundle attached — the pair quantifies the instrumentation
// overhead (docs/OBSERVABILITY.md cites both numbers).
func BenchmarkTCPFlowSimulationTelemetry(b *testing.B) {
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		b.Fatal(err)
	}
	start, _ := trip.CruiseWindow()
	tel := telemetry.NewFlow()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := dataset.Scenario{
			ID: "bench", Operator: cellular.ChinaMobileLTE, Trip: trip,
			TripOffset: start, FlowDuration: 30 * time.Second,
			Seed: int64(i), TCP: tcp.DefaultConfig(), Scenario: "hsr",
			Telemetry: tel,
		}
		if _, _, err := dataset.RunFlow(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyze measures trace analysis over a realistic flow trace.
func BenchmarkAnalyze(b *testing.B) {
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		b.Fatal(err)
	}
	start, _ := trip.CruiseWindow()
	ft, _, err := dataset.RunFlow(dataset.Scenario{
		ID: "bench", Operator: cellular.ChinaMobileLTE, Trip: trip,
		TripOffset: start, FlowDuration: 60 * time.Second,
		Seed: 1, TCP: tcp.DefaultConfig(), Scenario: "hsr",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Analyze(ft); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ft.Events)), "events")
}

// BenchmarkModelEvaluation measures one enhanced-model evaluation.
func BenchmarkModelEvaluation(b *testing.B) {
	prm := core.Params{
		RTT: 60 * time.Millisecond, T: 450 * time.Millisecond,
		B: 2, Wm: 28, PData: 0.005, PAck: 0.006, Q: 0.3, MeanWindow: 18,
	}
	var tp float64
	for i := 0; i < b.N; i++ {
		var err error
		tp, err = core.Enhanced(prm)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tp, "pps")
}

// BenchmarkTraceCodec measures binary encode+decode of a realistic trace.
func BenchmarkTraceCodec(b *testing.B) {
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		b.Fatal(err)
	}
	start, _ := trip.CruiseWindow()
	ft, _, err := dataset.RunFlow(dataset.Scenario{
		ID: "bench", Operator: cellular.ChinaMobileLTE, Trip: trip,
		TripOffset: start, FlowDuration: 30 * time.Second,
		Seed: 1, TCP: tcp.DefaultConfig(), Scenario: "hsr",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, ft); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.ReadBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
