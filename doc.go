// Package repro is a from-scratch Go reproduction of "Measurement,
// Modeling, and Analysis of TCP in High-Speed Mobility Scenarios"
// (ICDCS 2016): a deterministic packet-level TCP Reno simulator over a
// synthetic high-speed-rail cellular channel, the paper's trace-analysis
// methodology, and its enhanced steady-state throughput model with the
// Padhye baseline.
//
// The public surface lives in the command-line tools (cmd/hsrbench,
// cmd/tracegen, cmd/traceanalyze, cmd/modelcalc), the runnable examples
// under examples/, and the benchmark harness in bench_test.go, which
// regenerates every table and figure of the paper's evaluation. See
// README.md for a tour and DESIGN.md for the system inventory.
package repro
