package repro_test

// The front-door test: one end-to-end pass through the whole reproduction
// pipeline asserting the paper's thesis — on a high-speed-rail channel,
// timeout recoveries are long and often spurious, and the enhanced
// throughput model (Eq. 21) predicts the measured throughput better than
// the Padhye baseline.

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/railway"
	"repro/internal/stats"
	"repro/internal/tcp"
)

func TestPaperThesisEndToEnd(t *testing.T) {
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		t.Fatal(err)
	}
	start, _ := trip.CruiseWindow()

	var padDs, enhDs []float64
	var spurious, sequences int
	var recovery time.Duration
	var recoveries int
	for seed := int64(1); seed <= 10; seed++ {
		sc := dataset.Scenario{
			ID:           "smoke",
			Operator:     cellular.ChinaMobileLTE,
			Trip:         trip,
			TripOffset:   start + time.Duration(seed)*29*time.Second,
			FlowDuration: 60 * time.Second,
			Seed:         seed,
			TCP:          tcp.DefaultConfig(),
			Scenario:     "hsr",
		}
		ft, _, err := dataset.RunFlow(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m, err := analysis.Analyze(ft)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prm := core.ParamsFromMetrics(m)
		pad, err := core.Padhye(prm)
		if err != nil {
			t.Fatalf("seed %d padhye: %v", seed, err)
		}
		enh, err := core.Enhanced(prm)
		if err != nil {
			t.Fatalf("seed %d enhanced: %v", seed, err)
		}
		padDs = append(padDs, core.Deviation(pad, m.ThroughputPps))
		enhDs = append(enhDs, core.Deviation(enh, m.ThroughputPps))
		spurious += m.SpuriousTimeouts
		sequences += m.TimeoutSequences
		if len(m.Recoveries) > 0 {
			recovery += m.MeanRecoveryDuration
			recoveries++
		}
	}

	// Finding 1: timeout recovery on the train takes seconds, not the
	// sub-second recoveries of a stationary network.
	if recoveries == 0 {
		t.Fatal("no timeout recoveries on the HSR channel")
	}
	if mean := recovery / time.Duration(recoveries); mean < 2*time.Second {
		t.Errorf("mean recovery = %v, want multi-second (paper: 5.05 s)", mean)
	}

	// Finding 2: a large share of the timeouts are spurious — the data had
	// arrived, the ACKs had not.
	if sequences == 0 || float64(spurious)/float64(sequences) < 0.3 {
		t.Errorf("spurious fraction = %d/%d, want substantial (paper: 49.24%%)", spurious, sequences)
	}

	// The headline: the enhanced model beats the Padhye baseline.
	meanPad, meanEnh := stats.Mean(padDs), stats.Mean(enhDs)
	if meanEnh >= meanPad {
		t.Errorf("enhanced mean D (%.1f%%) should beat Padhye (%.1f%%)", meanEnh*100, meanPad*100)
	}
}
