package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// campaignSpec is the reduced campaign the identity tests run: small enough
// to finish in seconds, large enough that every Table I row simulates flows.
const campaignSpec = `{"kind":"campaign","seed":3,"quick":true,"duration":"15s","flows_per_row":1}`

// directCampaignReport runs the same campaign the spec describes through the
// CLI's own code path (catalog + DAG + MetricsReport, exactly like hsrbench
// -metrics) and returns the report.
func directCampaignReport(t *testing.T, cache *dataset.FlowCache) *telemetry.Report {
	t.Helper()
	cfg := experiments.Quick()
	cfg.Seed = 3
	cfg.FlowDuration = 15 * time.Second
	cfg.FlowsPerRow = 1
	cfg.Cache = cache
	camp := telemetry.NewCampaign()
	cfg.Telemetry = camp
	cat, err := experiments.NewCatalog(context.Background(), cfg, nil,
		experiments.CatalogOptions{ForceCampaigns: true})
	if err != nil {
		t.Fatalf("catalog: %v", err)
	}
	results, err := experiments.RunDAGProgress(context.Background(), cat.Tasks, 1, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var cc *telemetry.Cache
	if cache != nil {
		c := cache.Counters()
		cc = &c
	}
	return experiments.MetricsReport("hsrbench", cfg.Seed, camp, cc, results, time.Now())
}

// serveCampaignReport submits the campaign spec to a server and returns the
// terminal event's report.
func serveCampaignReport(t *testing.T, srv *Server) (*telemetry.Report, time.Duration) {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	start := time.Now()
	resp := postJob(t, ts.Client(), ts.URL, campaignSpec)
	defer resp.Body.Close()
	last := terminal(t, readEvents(t, resp.Body))
	elapsed := time.Since(start)
	if last.Event != "result" || last.Status != "ok" {
		t.Fatalf("terminal %+v", last)
	}
	if last.Report == nil {
		t.Fatalf("no report in result")
	}
	return last.Report, elapsed
}

// campaignJSON marshals a report's deterministic campaign sections — the
// Counters() contract: everything except the wall-clock resource fields,
// which are host measurements by design (like task wall times and process
// resources elsewhere in the report).
func campaignJSON(t *testing.T, rep *telemetry.Report) []byte {
	t.Helper()
	flows, kernel, tcp, net, faults := rep.Campaign.Counters()
	raw, err := json.Marshal(struct {
		Flows  int64            `json:"flows"`
		Kernel telemetry.Kernel `json:"kernel"`
		TCP    telemetry.TCP    `json:"tcp"`
		Net    telemetry.Net    `json:"net"`
		Faults telemetry.Faults `json:"faults"`
	}{flows, kernel, tcp, net, faults})
	if err != nil {
		t.Fatalf("marshal campaign: %v", err)
	}
	return raw
}

// TestServeCampaignMatchesCLI is the service's reproducibility contract: a
// campaign job over HTTP reports campaign counters byte-identical to the
// same seed and scale run through the hsrbench code path — cold cache, warm
// cache, and at different worker-pool sizes.
func TestServeCampaignMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign")
	}
	direct := directCampaignReport(t, nil)
	if direct.Campaign == nil {
		t.Fatalf("direct run collected no campaign telemetry")
	}
	want := campaignJSON(t, direct)

	for _, workers := range []int{1, 4} {
		srv := New(Config{Workers: workers, QueueDepth: 4})
		rep, _ := serveCampaignReport(t, srv)
		srv.Drain()
		if rep.Tool != "hsrserved" {
			t.Fatalf("report tool %q", rep.Tool)
		}
		if rep.Seed != 3 {
			t.Fatalf("report seed %d", rep.Seed)
		}
		got := campaignJSON(t, rep)
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: campaign section differs from CLI run:\nCLI:  %s\nHTTP: %s",
				workers, want, got)
		}
	}
}

// TestServeCampaignWarmCache runs the same campaign job twice against one
// cached server: the second run must be served from the cache (every flow a
// hit, no campaign telemetry — matching a warm hsrbench run) and fast.
func TestServeCampaignWarmCache(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign")
	}
	dir := t.TempDir()
	cache, err := dataset.OpenFlowCache(dir)
	if err != nil {
		t.Fatalf("cache: %v", err)
	}
	srv := New(Config{Workers: 2, QueueDepth: 4, Cache: cache})
	defer srv.Drain()

	cold, _ := serveCampaignReport(t, srv)
	if cold.Campaign == nil {
		t.Fatalf("cold run collected no campaign telemetry")
	}
	if cold.Cache == nil || cold.Cache.Misses == 0 || cold.Cache.Hits != 0 {
		t.Fatalf("cold run cache counters %+v", cold.Cache)
	}

	warm, elapsed := serveCampaignReport(t, srv)
	// Cache hits skip the simulation entirely, so a warm run carries no
	// campaign telemetry — the same shape a warm `hsrbench -cache` run
	// reports. Flow results still come back bit-identical from disk.
	if warm.Campaign != nil {
		t.Fatalf("warm run re-simulated flows: %s", campaignJSON(t, warm))
	}
	if warm.Cache == nil || warm.Cache.Hits == 0 {
		t.Fatalf("warm run cache counters %+v", warm.Cache)
	}
	if warm.Cache.Misses != cold.Cache.Misses {
		t.Fatalf("warm run missed: cold %d misses, warm %d", cold.Cache.Misses, warm.Cache.Misses)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("warm campaign took %v, want < 100ms", elapsed)
	}

	// A warm direct (CLI-path) run against the same cache directory must
	// agree with the warm HTTP run: no campaign section on either surface.
	cliCache, err := dataset.OpenFlowCache(dir)
	if err != nil {
		t.Fatalf("cache reopen: %v", err)
	}
	direct := directCampaignReport(t, cliCache)
	if direct.Campaign != nil {
		t.Fatalf("warm CLI run re-simulated flows")
	}
}

// TestServeFlowJobCached verifies flow jobs share the server cache: the
// second identical submission is served from disk and marked cached, with
// identical metrics.
func TestServeFlowJobCached(t *testing.T) {
	cache, err := dataset.OpenFlowCache(t.TempDir())
	if err != nil {
		t.Fatalf("cache: %v", err)
	}
	srv := New(Config{Workers: 2, QueueDepth: 4, Cache: cache})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := `{"kind":"flow","duration":"5s","seed":11,"operator":"china-unicom","faults":"blackout@2s+1s"}`
	resp := postJob(t, ts.Client(), ts.URL, spec)
	first := terminal(t, readEvents(t, resp.Body))
	resp.Body.Close()
	if first.Cached {
		t.Fatalf("first submission reported cached")
	}

	resp = postJob(t, ts.Client(), ts.URL, spec)
	second := terminal(t, readEvents(t, resp.Body))
	resp.Body.Close()
	if !second.Cached {
		t.Fatalf("second submission not served from cache")
	}
	a, _ := json.Marshal(first.Flow)
	b, _ := json.Marshal(second.Flow)
	if !bytes.Equal(a, b) {
		t.Fatalf("cached flow differs:\nfirst:  %s\nsecond: %s", a, b)
	}
}
