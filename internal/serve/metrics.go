package serve

import (
	"net/http"

	"repro/internal/buildinfo"
	"repro/internal/telemetry"
)

// handleMetrics renders the server's counters in Prometheus text
// exposition: pool gauges, job lifecycle totals, the shared flow cache's
// counters, and the campaign aggregate merged over every completed job.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	x := telemetry.NewTextExposer(w, "hsrserved_")
	x.Comment("hsrserved server state")
	x.BuildInfo(buildinfo.Version())
	x.Int("workers", int64(s.cfg.Workers))
	x.Int("queue_depth", s.pl.depth())
	x.Int("queue_capacity", int64(s.cfg.QueueDepth))
	x.Int("jobs_running", s.pl.active())
	draining := int64(0)
	if s.draining.Load() {
		draining = 1
	}
	x.Int("draining", draining)
	x.Comment("job lifecycle totals")
	x.Int("jobs_submitted_total", s.submitted.Load())
	x.Int("jobs_accepted_total", s.accepted.Load())
	x.Int("jobs_rejected_total", s.rejected.Load())
	x.Int("jobs_completed_total", s.completed.Load())
	x.Int("jobs_failed_total", s.failed.Load())
	x.Int("streams_aborted_total", s.streamsAborted.Load())
	s.latMu.Lock()
	qw, ud := s.queueWait, s.unitDur
	s.latMu.Unlock()
	x.Comment("job latency summaries (ms)")
	x.Dist("job_queue_wait_ms", &qw)
	x.Dist("unit_duration_ms", &ud)
	if s.cfg.FleetCounters != nil {
		f := s.cfg.FleetCounters()
		x.Comment("distributed campaign fleet")
		x.Fleet(&f)
	}
	if s.cfg.Cache != nil {
		cc := s.cfg.Cache.Counters()
		x.Comment("shared flow-result cache")
		x.Cache(&cc)
	}
	if n, _, _, _, _ := s.agg.Counters(); n > 0 {
		x.Comment("campaign counters aggregated over all jobs")
		x.Campaign(s.agg)
	}
	if err := x.Flush(); err != nil {
		s.cfg.Log.Warn("metrics write failed", "err", err)
	}
}
