package serve

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/cellular"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/railway"
	"repro/internal/tcp"
)

// Duration is a time.Duration that unmarshals from Go duration strings
// ("45s", "800ms") as well as plain nanosecond numbers, so job specs read
// like the CLI flags they mirror.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(raw []byte) error {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		dd, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("serve: bad duration %q: %w", s, err)
		}
		*d = Duration(dd)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(raw, &ns); err != nil {
		return fmt.Errorf("serve: duration must be a string like \"45s\" or nanoseconds")
	}
	*d = Duration(ns)
	return nil
}

// MarshalJSON implements json.Marshaler (canonical string form).
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Job kinds.
const (
	KindFlow       = "flow"       // one simulated flow -> metrics + endpoint stats
	KindCampaign   = "campaign"   // the Table I HSR + stationary campaigns -> telemetry report
	KindExperiment = "experiment" // named catalog experiments -> rendered sections + report
	KindUnit       = "unit"       // one flow-range work unit of a distributed campaign
)

// JobSpec is the JSON body of a job submission. It mirrors the hsrbench
// flags: the same seeds, scales and fault DSL produce bit-identical results
// over HTTP and on the command line. Unknown fields are rejected so typos
// fail loudly instead of silently running a default.
type JobSpec struct {
	// Kind selects the job type: "flow", "campaign" or "experiment".
	Kind string `json:"kind"`
	// Seed is the base seed (default 1), exactly like hsrbench -seed.
	Seed int64 `json:"seed,omitempty"`
	// Quick selects the reduced campaign scale (hsrbench -quick).
	Quick bool `json:"quick,omitempty"`
	// Duration overrides the simulated flow duration (hsrbench -duration).
	Duration Duration `json:"duration,omitempty"`
	// FlowsPerRow overrides the Table I flow counts (hsrbench -flows).
	FlowsPerRow int `json:"flows_per_row,omitempty"`
	// Run names the catalog experiments an "experiment" job executes
	// (hsrbench -run); see GET /v1/experiments for the catalog.
	Run []string `json:"run,omitempty"`
	// TimeoutMS is the job's deadline in milliseconds, capped by the
	// server's -job-timeout; 0 means the server cap. A deadline that
	// expires mid-job skips the unstarted tasks and reports partial
	// results, exactly like hsrbench -timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Flow-job fields.

	// ID names the flow (cache-key relevant; default "http-flow").
	ID string `json:"id,omitempty"`
	// Operator is the flow's carrier: "china-mobile" (LTE), "china-unicom"
	// (3G) or "china-telecom" (3G). Default "china-mobile".
	Operator string `json:"operator,omitempty"`
	// Scenario is "hsr" (default) or "stationary".
	Scenario string `json:"scenario,omitempty"`
	// Faults is a fault-schedule DSL string (docs/ROBUSTNESS.md).
	Faults string `json:"faults,omitempty"`

	// Unit is the work-unit payload of a "unit" job (distributed campaign
	// execution; see internal/dist).
	Unit *UnitSpec `json:"unit,omitempty"`

	// Trace, when present, is the submitter's trace context: the server
	// records a span tree for the job under the given trace ID, parents the
	// job span beneath Parent (a span on the submitting node), and ships the
	// recorded spans back on the terminal event so the submitter can stitch
	// them into one cross-node trace. This is how a coordinator's unit
	// dispatch spans become the parents of worker-side job spans.
	Trace *TraceContext `json:"trace,omitempty"`
}

// TraceContext propagates distributed-trace identity over /v1/jobs.
type TraceContext struct {
	// ID is the trace every span of this job joins.
	ID string `json:"id"`
	// Parent is the submitter-side span the job span parents under.
	Parent string `json:"parent,omitempty"`
}

// UnitSpec describes one flow-range work unit of a campaign: the campaign
// parameters every node derives the identical flow plan from, plus the
// half-open [Start, End) range of plan indices this unit executes. Because
// the plan is a pure function of the parameters, the coordinator and every
// worker agree on which scenario each index names without shipping
// scenarios over the wire.
type UnitSpec struct {
	// Seed is the campaign base seed (used verbatim — no default, the
	// coordinator always sends it explicitly).
	Seed int64 `json:"seed"`
	// Duration is the simulated length of each flow.
	Duration Duration `json:"duration"`
	// FlowsPerRow overrides the Table I flow counts when positive.
	FlowsPerRow int `json:"flows_per_row,omitempty"`
	// Stationary selects the stationary baseline campaign.
	Stationary bool `json:"stationary,omitempty"`
	// Faults is the campaign's fault-schedule DSL string.
	Faults string `json:"faults,omitempty"`
	// Start and End bound the unit's plan indices, half-open.
	Start int `json:"start"`
	End   int `json:"end"`
}

// campaignConfig maps the unit's campaign parameters onto the dataset
// layer's config (execution knobs like Parallelism are the worker's own).
func (u *UnitSpec) campaignConfig() (dataset.CampaignConfig, error) {
	var sched *faults.Schedule
	if u.Faults != "" {
		var err error
		sched, err = faults.Parse(u.Faults)
		if err != nil {
			return dataset.CampaignConfig{}, err
		}
	}
	return dataset.CampaignConfig{
		Seed:         u.Seed,
		FlowDuration: time.Duration(u.Duration),
		FlowsPerRow:  u.FlowsPerRow,
		Stationary:   u.Stationary,
		Faults:       sched,
	}, nil
}

// Limits is the server's admission-control policy for job contents (the
// queue bounds live in Config): anything beyond them is rejected with 400
// before touching the worker pool.
type Limits struct {
	// MaxFlowDuration caps the simulated duration of any flow.
	MaxFlowDuration time.Duration
	// MaxFlowsPerRow caps the Table I per-row override.
	MaxFlowsPerRow int
	// MaxTimeout caps (and defaults) the per-job deadline.
	MaxTimeout time.Duration
}

// operatorByName maps the job-spec operator tokens to carriers.
func operatorByName(name string) (cellular.Operator, error) {
	switch name {
	case "", "china-mobile":
		return cellular.ChinaMobileLTE, nil
	case "china-unicom":
		return cellular.ChinaUnicom3G, nil
	case "china-telecom":
		return cellular.ChinaTelecom3G, nil
	}
	return cellular.Operator{}, fmt.Errorf("serve: unknown operator %q (known: china-mobile, china-unicom, china-telecom)", name)
}

// Validate checks the spec against the catalog, the shared scenario/TCP/
// fault schemas, and the server's limits.
func (s *JobSpec) Validate(lim Limits) error {
	if s.Kind != KindUnit && s.Unit != nil {
		return fmt.Errorf("serve: unit payload on a %s job", s.Kind)
	}
	switch s.Kind {
	case KindFlow:
		if len(s.Run) > 0 {
			return fmt.Errorf("serve: flow jobs take no experiment list")
		}
		if _, err := s.flowScenario(lim); err != nil {
			return err
		}
	case KindCampaign, KindExperiment:
		if s.Kind == KindExperiment && len(s.Run) == 0 {
			return fmt.Errorf("serve: experiment jobs need a non-empty run list (see /v1/experiments)")
		}
		if s.Kind == KindCampaign && len(s.Run) > 0 {
			return fmt.Errorf("serve: campaign jobs take no experiment list")
		}
		for _, name := range s.Run {
			if !experiments.IsCatalogName(name) {
				return fmt.Errorf("serve: unknown experiment %q (see /v1/experiments)", name)
			}
		}
		if s.Operator != "" || s.Scenario != "" || s.Faults != "" || s.ID != "" {
			return fmt.Errorf("serve: flow-only fields (id/operator/scenario/faults) on a %s job", s.Kind)
		}
		cfg := s.experimentsConfig()
		if err := cfg.Validate(); err != nil {
			return err
		}
		if lim.MaxFlowDuration > 0 && cfg.FlowDuration > lim.MaxFlowDuration {
			return fmt.Errorf("serve: duration %v exceeds the server limit %v", cfg.FlowDuration, lim.MaxFlowDuration)
		}
		if lim.MaxFlowsPerRow > 0 && cfg.FlowsPerRow > lim.MaxFlowsPerRow {
			return fmt.Errorf("serve: flows_per_row %d exceeds the server limit %d", cfg.FlowsPerRow, lim.MaxFlowsPerRow)
		}
	case KindUnit:
		if s.Unit == nil {
			return fmt.Errorf("serve: unit jobs need a unit payload")
		}
		if len(s.Run) > 0 || s.Operator != "" || s.Scenario != "" || s.Faults != "" || s.ID != "" {
			return fmt.Errorf("serve: unit jobs take only the unit payload")
		}
		u := s.Unit
		if u.Duration <= 0 {
			return fmt.Errorf("serve: unit duration %v must be positive", time.Duration(u.Duration))
		}
		if lim.MaxFlowDuration > 0 && time.Duration(u.Duration) > lim.MaxFlowDuration {
			return fmt.Errorf("serve: unit duration %v exceeds the server limit %v", time.Duration(u.Duration), lim.MaxFlowDuration)
		}
		if lim.MaxFlowsPerRow > 0 && u.FlowsPerRow > lim.MaxFlowsPerRow {
			return fmt.Errorf("serve: unit flows_per_row %d exceeds the server limit %d", u.FlowsPerRow, lim.MaxFlowsPerRow)
		}
		if u.Start < 0 || u.End <= u.Start {
			return fmt.Errorf("serve: unit range [%d, %d) must be non-empty and non-negative", u.Start, u.End)
		}
		if _, err := u.campaignConfig(); err != nil {
			return err
		}
	case "":
		return fmt.Errorf("serve: job needs a kind (flow, campaign, experiment or unit)")
	default:
		return fmt.Errorf("serve: unknown job kind %q", s.Kind)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("serve: timeout_ms must be non-negative")
	}
	if s.Trace != nil && s.Trace.ID == "" {
		return fmt.Errorf("serve: trace context needs a non-empty id")
	}
	return nil
}

// seed returns the effective base seed.
func (s *JobSpec) seed() int64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return 1
}

// experimentsConfig maps a campaign/experiment spec onto the same Config
// the CLI builds from its flags.
func (s *JobSpec) experimentsConfig() experiments.Config {
	cfg := experiments.Default()
	if s.Quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = s.seed()
	if s.Duration > 0 {
		cfg.FlowDuration = time.Duration(s.Duration)
	}
	if s.FlowsPerRow > 0 {
		cfg.FlowsPerRow = s.FlowsPerRow
	}
	return cfg
}

// flowScenario builds (and validates) the single-flow scenario a flow job
// simulates: the requested carrier on the Beijing-Tianjin trip, starting at
// the cruise window like the campaign flows, with an optional fault
// schedule parsed from the shared DSL.
func (s *JobSpec) flowScenario(lim Limits) (dataset.Scenario, error) {
	op, err := operatorByName(s.Operator)
	if err != nil {
		return dataset.Scenario{}, err
	}
	profile := railway.DefaultProfile
	scenario := s.Scenario
	switch scenario {
	case "", "hsr":
		scenario = "hsr"
	case "stationary":
		profile = railway.StationaryProfile
	default:
		return dataset.Scenario{}, fmt.Errorf("serve: unknown scenario %q (hsr or stationary)", s.Scenario)
	}
	trip, err := railway.NewTrip(railway.BeijingTianjin, profile)
	if err != nil {
		return dataset.Scenario{}, err
	}
	var offset time.Duration
	if !trip.Stationary() {
		offset, _ = trip.CruiseWindow()
	}
	dur := time.Duration(s.Duration)
	if dur == 0 {
		dur = 45 * time.Second
	}
	if lim.MaxFlowDuration > 0 && dur > lim.MaxFlowDuration {
		return dataset.Scenario{}, fmt.Errorf("serve: duration %v exceeds the server limit %v", dur, lim.MaxFlowDuration)
	}
	var sched *faults.Schedule
	if s.Faults != "" {
		sched, err = faults.Parse(s.Faults)
		if err != nil {
			return dataset.Scenario{}, err
		}
	}
	id := s.ID
	if id == "" {
		id = "http-flow"
	}
	sc := dataset.Scenario{
		ID:           id,
		Operator:     op,
		Trip:         trip,
		TripOffset:   offset,
		FlowDuration: dur,
		Seed:         s.seed(),
		TCP:          tcp.DefaultConfig(),
		Scenario:     scenario,
		Faults:       sched,
	}
	if err := sc.Validate(); err != nil {
		return dataset.Scenario{}, err
	}
	return sc, nil
}
