package serve

import (
	"net/http"
	"sync"

	"repro/internal/tracing"
)

// traceStore retains the span batches of recently-completed jobs for
// GET /v1/jobs/{id}/trace: a bounded FIFO keyed by job ID, oldest evicted
// first. It exists so an operator (or the CI smoke) can pull a finished
// job's trace without having negotiated anything at submission time.
type traceStore struct {
	mu    sync.Mutex
	cap   int
	order []string
	byJob map[string][]tracing.SpanRecord
}

func newTraceStore(capacity int) *traceStore {
	if capacity < 1 {
		capacity = 1
	}
	return &traceStore{cap: capacity, byJob: make(map[string][]tracing.SpanRecord)}
}

func (ts *traceStore) put(jobID string, spans []tracing.SpanRecord) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.byJob[jobID]; !ok {
		ts.order = append(ts.order, jobID)
		for len(ts.order) > ts.cap {
			delete(ts.byJob, ts.order[0])
			ts.order = ts.order[1:]
		}
	}
	ts.byJob[jobID] = spans
}

func (ts *traceStore) get(jobID string) ([]tracing.SpanRecord, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	spans, ok := ts.byJob[jobID]
	return spans, ok
}

// handleJobTrace serves a completed job's span trace in the Chrome/Perfetto
// trace event format (one event per line; load the file as-is in
// ui.perfetto.dev). 404 when the job is unknown, still running, was never
// traced, or has aged out of the bounded retention window.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	spans, ok := s.traces.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "serve: no trace for this job (unknown, still running, untraced, or aged out)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := tracing.WriteTrace(w, spans); err != nil {
		s.cfg.Log.Warn("trace write failed", "job", r.PathValue("id"), "err", err)
	}
}
