package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/buildinfo"
	"repro/internal/tracing"
)

// fetchTrace GETs a job's trace and parses it back into native spans.
func fetchTrace(t *testing.T, ts *httptest.Server, jobID string) []tracing.SpanRecord {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + jobID + "/trace")
	if err != nil {
		t.Fatalf("get trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("trace status %d: %s", resp.StatusCode, body)
	}
	spans, err := tracing.ReadTrace(resp.Body)
	if err != nil {
		t.Fatalf("parse trace: %v", err)
	}
	return spans
}

// kindSet buckets spans by kind.
func kindSet(spans []tracing.SpanRecord) map[string][]tracing.SpanRecord {
	byKind := map[string][]tracing.SpanRecord{}
	for _, s := range spans {
		byKind[s.Kind] = append(byKind[s.Kind], s)
	}
	return byKind
}

// TestServerUnitJobTrace runs a traced unit job and checks the span tree the
// trace endpoint serves: a job root, its queue wait, one flow span per unit
// flow (each with a compute child carrying the virtual-time interval), all
// well-formed.
func TestServerUnitJobTrace(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4, Trace: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	resp := postJob(t, ts.Client(), ts.URL,
		`{"kind":"unit","unit":{"seed":5,"duration":"2s","flows_per_row":1,"start":0,"end":2}}`)
	defer resp.Body.Close()
	jobID := resp.Header.Get("X-Job-Id")
	last := terminal(t, readEvents(t, resp.Body))
	if last.Status != "ok" {
		t.Fatalf("terminal %+v", last)
	}
	if last.Spans != nil {
		t.Fatalf("spans shipped on the stream without a submitted trace context")
	}

	spans := fetchTrace(t, ts, jobID)
	if err := tracing.Validate(spans); err != nil {
		t.Fatalf("trace not well formed: %v", err)
	}
	byKind := kindSet(spans)
	if n := len(byKind["job"]); n != 1 {
		t.Fatalf("%d job spans, want 1", n)
	}
	root := byKind["job"][0]
	if root.Parent != "" || root.Name != jobID || root.Attrs["kind"] != KindUnit {
		t.Fatalf("job root %+v", root)
	}
	if root.Attrs["status"] != "ok" || root.Attrs["unit"] != "[0,2)" {
		t.Fatalf("job root attrs %v", root.Attrs)
	}
	if n := len(byKind["queue-wait"]); n != 1 {
		t.Fatalf("%d queue-wait spans, want 1", n)
	}
	if byKind["queue-wait"][0].Parent != root.ID {
		t.Fatal("queue-wait not parented under the job root")
	}
	if n := len(byKind["flow"]); n != 2 {
		t.Fatalf("%d flow spans, want 2", n)
	}
	for _, f := range byKind["flow"] {
		if f.Parent != root.ID {
			t.Fatalf("flow span %s parented under %s, want job root", f.ID, f.Parent)
		}
		if !f.Virtual || f.VEndNS <= f.VStartNS {
			t.Fatalf("flow span without a virtual interval: %+v", f)
		}
		if f.Attrs["index"] == "" || f.Attrs["operator"] == "" {
			t.Fatalf("flow span attrs %v", f.Attrs)
		}
	}
	if n := len(byKind["compute"]); n != 2 {
		t.Fatalf("%d compute spans, want 2 (no cache: every flow computes)", n)
	}
	// Virtual time is monotone per flow: each flow's interval starts at the
	// simulated epoch and its compute child carries the same clock.
	for _, c := range byKind["compute"] {
		if !c.Virtual || c.VStartNS != 0 {
			t.Fatalf("compute span virtual interval %+v", c)
		}
	}
}

// TestServerTraceContextPropagation submits a job carrying a trace context,
// as the distributed coordinator does: the job's spans must join the
// caller's trace, parent under the caller's span, and ship back on the
// terminal event even though the server's own Trace flag is off.
func TestServerTraceContextPropagation(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4}) // Trace intentionally off
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	resp := postJob(t, ts.Client(), ts.URL,
		`{"kind":"flow","duration":"2s","seed":3,"trace":{"id":"campaign-9","parent":"coord-7"}}`)
	defer resp.Body.Close()
	last := terminal(t, readEvents(t, resp.Body))
	if last.Status != "ok" {
		t.Fatalf("terminal %+v", last)
	}
	if len(last.Spans) == 0 {
		t.Fatal("no spans shipped on the terminal event")
	}
	var root *tracing.SpanRecord
	for i := range last.Spans {
		if last.Spans[i].Kind == "job" {
			root = &last.Spans[i]
		}
		if got := last.Spans[i].TraceID; got != "campaign-9" {
			t.Fatalf("span trace ID %q, want the submitted one", got)
		}
	}
	if root == nil {
		t.Fatal("no job span in the shipped batch")
	}
	if root.Parent != "coord-7" {
		t.Fatalf("job root parent %q, want the submitted parent span", root.Parent)
	}
}

func TestServerTraceNotFound(t *testing.T) {
	srv := New(Config{Trace: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/job-999/trace")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestTraceStoreEviction pins the bounded FIFO retention.
func TestTraceStoreEviction(t *testing.T) {
	st := newTraceStore(2)
	for i := 1; i <= 3; i++ {
		st.put(fmt.Sprintf("job-%d", i), []tracing.SpanRecord{{ID: fmt.Sprintf("s%d", i)}})
	}
	if _, ok := st.get("job-1"); ok {
		t.Fatal("oldest trace not evicted")
	}
	for _, id := range []string{"job-2", "job-3"} {
		if _, ok := st.get(id); !ok {
			t.Fatalf("%s evicted early", id)
		}
	}
	// Re-putting an existing ID replaces without double-counting its slot.
	st.put("job-3", []tracing.SpanRecord{{ID: "s3b"}})
	if spans, ok := st.get("job-3"); !ok || spans[0].ID != "s3b" {
		t.Fatalf("re-put did not replace: %+v", spans)
	}
	if _, ok := st.get("job-2"); !ok {
		t.Fatal("re-put evicted a sibling")
	}
}

// TestServerPprofGate: the profiling surface exists only when asked for.
func TestServerPprofGate(t *testing.T) {
	on := httptest.NewServer(New(Config{EnablePprof: true}).Handler())
	defer on.Close()
	resp, err := on.Client().Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("get pprof: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d with -pprof on", resp.StatusCode)
	}
	resp, err = on.Client().Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("get cmdline: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", resp.StatusCode)
	}

	off := httptest.NewServer(New(Config{}).Handler())
	defer off.Close()
	resp, err = off.Client().Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("get pprof: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without the flag: status %d", resp.StatusCode)
	}
}

// TestServerMetricsLatencyAndBuildInfo checks the new exposition lines:
// build_info with the version label and the queue-wait/unit-duration
// summaries, populated after a unit job ran.
func TestServerMetricsLatencyAndBuildInfo(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	resp := postJob(t, ts.Client(), ts.URL,
		`{"kind":"unit","unit":{"seed":5,"duration":"2s","flows_per_row":1,"start":0,"end":1}}`)
	last := terminal(t, readEvents(t, resp.Body))
	resp.Body.Close()
	if last.Status != "ok" {
		t.Fatalf("terminal %+v", last)
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("get metrics: %v", err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	out := string(raw)
	for _, want := range []string{
		fmt.Sprintf("hsrserved_build_info{version=%q} 1\n", buildinfo.Version()),
		"hsrserved_job_queue_wait_ms_count 1\n",
		"hsrserved_unit_duration_ms_count 1\n",
		"hsrserved_unit_duration_ms_sum ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}
