// Package serve is the simulation-as-a-service layer: an HTTP server that
// accepts simulation jobs (single flows, the Table I campaigns, named
// catalog experiments) as JSON, validates them against the same schemas the
// CLIs use, executes them on a bounded worker pool with admission control,
// and streams progress plus a final telemetry report as NDJSON. Results are
// bit-identical to the same job run through cmd/hsrbench: both surfaces
// share the experiment catalog, the flow cache and the report builder.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/logging"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// Config configures a Server. The zero value is usable: one worker, a
// one-deep queue, no cache.
type Config struct {
	// Workers is the number of jobs executing concurrently (min 1).
	Workers int
	// QueueDepth bounds jobs accepted but not yet running (min 1); a full
	// queue rejects submissions with 429 + Retry-After.
	QueueDepth int
	// Cache, when non-nil, is the flow-result cache shared across every job
	// (identical flows across requests are served from disk, identical
	// in-flight computations are deduplicated).
	Cache *dataset.FlowCache
	// FlowParallelism bounds concurrent flow simulations inside one job
	// (0 = GOMAXPROCS). With several workers, set it so
	// Workers*FlowParallelism matches the machine.
	FlowParallelism int
	// DAGJobs bounds concurrent experiment tasks inside one job (min 1).
	DAGJobs int
	// Limits is the admission policy for job contents. Zero fields default
	// to MaxFlowDuration 10m, MaxTimeout 15m; MaxTimeout is also the
	// default per-job deadline when a spec names none.
	Limits Limits
	// Log, when non-nil, receives one structured line per job lifecycle
	// edge (job/trace IDs on every line). Nil logs nothing.
	Log *logging.Logger
	// Trace records a span tree for every job (job, queue-wait, task,
	// campaign, flow and cache spans), retained for TraceJobs completed jobs
	// and served by GET /v1/jobs/{id}/trace. Independently of this flag, a
	// job arriving with a trace context (JobSpec.Trace) is always traced and
	// its spans ship back on the terminal event. Tracing never perturbs
	// results — byte-identity holds with it on.
	Trace bool
	// TraceJobs bounds the per-job trace retention (default 64).
	TraceJobs int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (opt-in: the
	// profiling surface stays off unless the operator asks for it).
	EnablePprof bool
	// StreamWriteTimeout bounds each NDJSON response write: a client that
	// stops reading for longer aborts its stream (counted in
	// streams_aborted_total) and cancels its job, instead of pinning a
	// worker slot behind a dead socket. 0 means 30s.
	StreamWriteTimeout time.Duration
	// Runner, when non-nil, replaces dataset.RunCampaign for campaign and
	// experiment jobs — this is how a coordinator node routes the shared
	// campaigns through its worker fleet (internal/dist) while the job
	// surface stays identical to single-node.
	Runner experiments.CampaignRunner
	// Fleet, when non-nil, reports the coordinator's per-worker health for
	// /readyz. Nil means this node has no fleet (single or worker role).
	Fleet func() []FleetWorker
	// FleetCounters, when non-nil, snapshots the coordinator's distributed
	// execution counters for /metrics and for job reports.
	FleetCounters func() telemetry.Fleet
}

// FleetWorker is one worker's health as seen by a coordinator, rendered in
// /readyz.
type FleetWorker struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// ConsecutiveFails counts heartbeat failures since the last success.
	ConsecutiveFails int `json:"consecutive_fails,omitempty"`
	// UnitsDone counts units this worker completed successfully.
	UnitsDone int64 `json:"units_done"`
}

// Server is the HTTP service. Create with New, mount via Handler, stop with
// StartDrain + Drain.
type Server struct {
	cfg Config
	mux *http.ServeMux
	pl  *pool

	draining atomic.Bool
	jobSeq   atomic.Int64

	submitted      atomic.Int64
	accepted       atomic.Int64
	rejected       atomic.Int64
	completed      atomic.Int64
	failed         atomic.Int64
	streamsAborted atomic.Int64

	// agg accumulates every job's campaign counters into one server-wide
	// aggregate for /metrics.
	agg *telemetry.Campaign

	// traces retains completed jobs' span batches for /v1/jobs/{id}/trace.
	traces *traceStore

	// latMu guards the latency distributions scraped by /metrics.
	latMu     sync.Mutex
	queueWait telemetry.Dist // ms from admission to a worker picking the job up
	unitDur   telemetry.Dist // ms of unit-job execution (the fleet's work grain)
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	if cfg.DAGJobs < 1 {
		cfg.DAGJobs = 1
	}
	if cfg.Limits.MaxFlowDuration == 0 {
		cfg.Limits.MaxFlowDuration = 10 * time.Minute
	}
	if cfg.Limits.MaxTimeout == 0 {
		cfg.Limits.MaxTimeout = 15 * time.Minute
	}
	if cfg.StreamWriteTimeout <= 0 {
		cfg.StreamWriteTimeout = 30 * time.Second
	}
	if cfg.TraceJobs < 1 {
		cfg.TraceJobs = 64
	}
	s := &Server{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		pl:     newPool(cfg.Workers, cfg.QueueDepth),
		agg:    telemetry.NewCampaign(),
		traces: newTraceStore(cfg.TraceJobs),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.EnablePprof {
		// Opt-in profiling surface: the index route covers the named
		// profiles (heap, goroutine, block, mutex, ...); the four special
		// handlers need explicit routes. Registered without a method so the
		// pprof tool's POSTs (symbol) work too.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// StartDrain stops admitting jobs: new submissions get 503, /healthz flips
// to draining. Streaming responses for accepted jobs keep running.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Drain blocks until every accepted job has finished. Call after StartDrain
// (and typically after http.Server.Shutdown has drained the handlers).
func (s *Server) Drain() {
	s.draining.Store(true)
	s.pl.drain()
}

// healthzBody is the /healthz JSON document.
type healthzBody struct {
	Status        string `json:"status"` // "ok" or "draining"
	Version       string `json:"version"`
	Workers       int    `json:"workers"`
	QueueDepth    int64  `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	JobsRunning   int64  `json:"jobs_running"`
}

// handleHealthz is the liveness probe: it always answers 200 while the
// process is up — a draining server is still alive (it reports "draining"
// in the body for humans). Readiness lives at /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := healthzBody{
		Status:        "ok",
		Version:       buildinfo.Version(),
		Workers:       s.cfg.Workers,
		QueueDepth:    s.pl.depth(),
		QueueCapacity: s.cfg.QueueDepth,
		JobsRunning:   s.pl.active(),
	}
	if s.draining.Load() {
		body.Status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
}

// readyzBody is the /readyz JSON document.
type readyzBody struct {
	// Status is "ready", "degraded" (coordinator with no healthy workers —
	// still serving, via local fallback) or "draining".
	Status        string `json:"status"`
	QueueDepth    int64  `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	QueueFull     bool   `json:"queue_full"`
	JobsRunning   int64  `json:"jobs_running"`
	// Fleet is the coordinator's per-worker health; absent on single and
	// worker nodes.
	Fleet []FleetWorker `json:"fleet,omitempty"`
}

// handleReadyz is the readiness probe: 503 while draining (take the node
// out of rotation; in-flight streams finish), 200 otherwise. The body adds
// what a balancer or operator needs to weigh the node: queue occupancy and,
// on a coordinator, the worker fleet's health. A coordinator whose whole
// fleet is unhealthy is degraded, not unready — it still completes
// campaigns through its local fallback.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	body := readyzBody{
		Status:        "ready",
		QueueDepth:    s.pl.depth(),
		QueueCapacity: s.cfg.QueueDepth,
		JobsRunning:   s.pl.active(),
	}
	body.QueueFull = body.QueueDepth >= int64(s.cfg.QueueDepth)
	status := http.StatusOK
	if s.cfg.Fleet != nil {
		body.Fleet = s.cfg.Fleet()
		healthy := 0
		for _, wk := range body.Fleet {
			if wk.Healthy {
				healthy++
			}
		}
		if len(body.Fleet) > 0 && healthy == 0 {
			body.Status = "degraded"
		}
	}
	if s.draining.Load() {
		body.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Experiments []string                   `json:"experiments"`
		Catalog     []experiments.CatalogEntry `json:"catalog"`
	}{experiments.CatalogNames(), experiments.CatalogList()})
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.submitted.Add(1)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		s.rejected.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("serve: bad job body: %v", err))
		return
	}
	if err := spec.Validate(s.cfg.Limits); err != nil {
		s.rejected.Add(1)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.draining.Load() {
		s.rejected.Add(1)
		httpError(w, http.StatusServiceUnavailable, ErrDraining.Error())
		return
	}

	jobID := fmt.Sprintf("job-%d", s.jobSeq.Add(1))
	st := newStream()
	// meta carries the admission timestamp (queue-wait measurement) and,
	// when this job is traced, the trace collector plus the job root span —
	// which starts at admission, so queue wait is inside the job span.
	meta := &jobMeta{submitted: time.Now()}
	if s.cfg.Trace || spec.Trace != nil {
		traceID, parent := jobID, ""
		if spec.Trace != nil {
			traceID, parent = spec.Trace.ID, spec.Trace.Parent
		}
		meta.tr = tracing.New(traceID)
		meta.root = meta.tr.StartSpanAt(parent, "job", jobID, meta.submitted)
		meta.root.SetAttr("kind", spec.Kind)
		meta.root.SetAttr("seed", strconv.FormatInt(spec.seed(), 10))
	}
	// The job runs under the request context plus the job deadline: a gone
	// client or an expired deadline cancels the schedule, which skips
	// unstarted tasks and reports the completed prefix.
	timeout := s.cfg.Limits.MaxTimeout
	if spec.TimeoutMS > 0 {
		if d := time.Duration(spec.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	jobCtx, cancel := context.WithTimeout(r.Context(), timeout)
	if err := s.pl.submit(func() {
		defer cancel()
		defer st.close()
		s.runJob(jobCtx, jobID, &spec, st, meta)
	}); err != nil {
		cancel()
		s.rejected.Add(1)
		if err == ErrQueueFull {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.accepted.Add(1)
	kv := []any{"job", jobID, "kind", spec.Kind, "seed", spec.seed(), "queue", s.pl.depth()}
	if meta.tr != nil {
		kv = append(kv, "trace", meta.tr.ID())
	}
	s.cfg.Log.Info("job accepted", kv...)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Job-Id", jobID)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	alive := true
	writeEvent := func(e Event) {
		if !alive {
			return
		}
		// Each write runs under its own deadline: a client that stops
		// reading cannot hold this handler (and its worker slot) hostage —
		// after one timeout the stream aborts, the job's context is
		// cancelled, and the loop below keeps draining events so the worker
		// finishes promptly either way. SetWriteDeadline is best-effort
		// (test recorders don't support it); a plain write error means the
		// client is gone and aborts the same way.
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.StreamWriteTimeout))
		if err := enc.Encode(e); err != nil {
			alive = false
			s.streamsAborted.Add(1)
			st.abort()
			cancel()
			s.cfg.Log.Warn("stream aborted", "job", jobID, "err", err)
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeEvent(Event{
		Event:      "accepted",
		JobID:      jobID,
		Version:    buildinfo.Version(),
		QueueDepth: s.pl.depth(),
	})
	for e := range st.ch {
		writeEvent(e)
	}
}

// jobMeta carries per-job bookkeeping from admission to the worker
// goroutine: the submission time (queue-wait measurement) and the optional
// trace collector with the job's root span.
type jobMeta struct {
	submitted time.Time
	tr        *tracing.Trace
	root      *tracing.Span
}

// runJob executes one admitted job on a worker goroutine.
func (s *Server) runJob(ctx context.Context, jobID string, spec *JobSpec, st *stream, meta *jobMeta) {
	start := time.Now()
	queueWait := start.Sub(meta.submitted)
	s.latMu.Lock()
	s.queueWait.Add(float64(queueWait) / float64(time.Millisecond))
	s.latMu.Unlock()
	if meta.tr != nil {
		qw := meta.tr.StartSpanAt(meta.root.ID(), "queue-wait", "queue-wait", meta.submitted)
		qw.End()
	}
	var terminal Event
	switch spec.Kind {
	case KindFlow:
		terminal = s.runFlowJob(spec, meta)
	case KindUnit:
		terminal = s.runUnitJob(ctx, spec, st, meta)
	default:
		terminal = s.runScheduledJob(ctx, spec, st, start, meta)
	}
	terminal.JobID = jobID
	terminal.Version = buildinfo.Version()
	terminal.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	if spec.Kind == KindUnit {
		s.latMu.Lock()
		s.unitDur.Add(terminal.ElapsedMS)
		s.latMu.Unlock()
	}
	if terminal.Event == "error" {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	if meta.tr != nil {
		meta.root.SetAttr("status", terminal.Status)
		meta.root.End()
		spans := meta.tr.Spans()
		s.traces.put(jobID, spans)
		if spec.Trace != nil {
			// The submitter asked for this trace: ship the batch back on the
			// terminal event so the coordinator can stitch it.
			terminal.Spans = spans
		}
	}
	kv := []any{"job", jobID, "event", terminal.Event, "status", terminal.Status,
		"elapsed", time.Since(start).Round(time.Millisecond)}
	if meta.tr != nil {
		kv = append(kv, "trace", meta.tr.ID())
	}
	s.cfg.Log.Info("job finished", kv...)
	st.emit(terminal)
}

// runFlowJob simulates (or serves from cache) one flow.
func (s *Server) runFlowJob(spec *JobSpec, meta *jobMeta) Event {
	sc, err := spec.flowScenario(s.cfg.Limits)
	if err != nil {
		return Event{Event: "error", Status: "error", Error: err.Error()}
	}
	var sp *tracing.Span
	if meta.tr != nil {
		sp = meta.tr.StartSpan(meta.root.ID(), "flow", sc.ID)
	}
	var ent dataset.CachedFlow
	var shared bool
	if s.cfg.Cache != nil {
		ent, shared, err = s.cfg.Cache.GetOrCompute(sc, func() (dataset.CachedFlow, error) {
			m, stats, err := dataset.RunFlowMetrics(sc)
			return dataset.CachedFlow{Metrics: m, Stats: stats}, err
		})
	} else {
		ent.Metrics, ent.Stats, err = dataset.RunFlowMetrics(sc)
	}
	if sp != nil {
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.SetAttr("cached", strconv.FormatBool(shared))
		sp.End()
	}
	if err != nil {
		return Event{Event: "error", Status: "error", Error: err.Error()}
	}
	return Event{Event: "result", Status: "ok", Flow: &ent, Cached: shared}
}

// runUnitJob executes one flow-range work unit of a distributed campaign:
// it re-derives the campaign's flow plan from the unit's parameters (the
// plan is a pure function of them, so it matches the coordinator's), then
// simulates the unit's index range with telemetry attached to every flow.
// Results go through the telemetry-complete cache path when a cache is
// configured, so a reassigned or hedged duplicate of this unit re-serves
// bit-identical payloads from disk instead of simulating again.
func (s *Server) runUnitJob(ctx context.Context, spec *JobSpec, st *stream, meta *jobMeta) Event {
	cfg, err := spec.Unit.campaignConfig()
	if err != nil {
		return Event{Event: "error", Status: "error", Error: err.Error()}
	}
	plan, err := dataset.PlanCampaign(cfg)
	if err != nil {
		return Event{Event: "error", Status: "error", Error: err.Error()}
	}
	start, end := spec.Unit.Start, spec.Unit.End
	if end > len(plan) {
		return Event{Event: "error", Status: "error",
			Error: fmt.Sprintf("serve: unit range [%d, %d) exceeds the campaign's %d flows", start, end, len(plan))}
	}
	if meta.tr != nil {
		meta.root.SetAttr("unit", fmt.Sprintf("[%d,%d)", start, end))
		if spec.Unit.Faults != "" {
			meta.root.SetAttr("faults", spec.Unit.Faults)
		}
	}
	res := &UnitResult{Start: start, End: end, Flows: make([]UnitFlow, end-start)}
	errs := make([]error, end-start)
	par := s.cfg.FlowParallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	var done, hits atomic.Int64
	for i := start; i < end; i++ {
		if ctx.Err() != nil {
			errs[i-start] = fmt.Errorf("flow %s: %w", plan[i].Scenario.ID, ctx.Err())
			continue
		}
		j := plan[i]
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			var fsp *tracing.Span
			if meta.tr != nil {
				fsp = meta.tr.StartSpan(meta.root.ID(), "flow", j.Scenario.ID)
				fsp.SetAttr("index", strconv.Itoa(j.Index))
				fsp.SetAttr("operator", j.Row.Operator.Name)
			}
			var ent dataset.CachedFlow
			var hit bool
			var err error
			if s.cfg.Cache != nil {
				var csp *tracing.Span
				if fsp != nil {
					csp = meta.tr.StartSpan(fsp.ID(), "cache", j.Scenario.ID)
				}
				ent, hit, err = s.cfg.Cache.GetOrComputeFull(j.Scenario, func() (dataset.CachedFlow, error) {
					var ksp *tracing.Span
					if fsp != nil {
						ksp = meta.tr.StartSpan(csp.ID(), "compute", j.Scenario.ID)
					}
					full, err := dataset.RunFlowFull(j.Scenario)
					if ksp != nil {
						if err == nil && full.Telemetry != nil {
							ksp.SetVirtual(0, full.Telemetry.Kernel.VirtualNS)
						}
						ksp.End()
					}
					return full, err
				})
				if csp != nil {
					csp.SetAttr("hit", strconv.FormatBool(hit))
					csp.End()
				}
			} else {
				var ksp *tracing.Span
				if fsp != nil {
					ksp = meta.tr.StartSpan(fsp.ID(), "compute", j.Scenario.ID)
				}
				ent, err = dataset.RunFlowFull(j.Scenario)
				if ksp != nil {
					if err == nil && ent.Telemetry != nil {
						ksp.SetVirtual(0, ent.Telemetry.Kernel.VirtualNS)
					}
					ksp.End()
				}
			}
			if err != nil {
				if fsp != nil {
					fsp.SetAttr("error", err.Error())
					fsp.End()
				}
				errs[j.Index-start] = fmt.Errorf("flow %s: %w", j.Scenario.ID, err)
				return
			}
			if hit {
				hits.Add(1)
			}
			if fsp != nil {
				fsp.SetAttr("cached", strconv.FormatBool(hit))
				if ent.Telemetry != nil {
					fsp.SetVirtual(0, ent.Telemetry.Kernel.VirtualNS)
				}
				fsp.End()
			}
			res.Flows[j.Index-start] = UnitFlow{Index: j.Index, Flow: ent, Cached: hit}
			st.tryEmit(Event{Event: "flows", Done: int(done.Add(1)), Total: end - start})
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Event{Event: "error", Status: "error", Error: err.Error()}
		}
	}
	res.CacheHits = int(hits.Load())
	return Event{Event: "result", Status: "ok", Unit: res}
}

// runScheduledJob executes a campaign or experiment job through the shared
// catalog and reports exactly like hsrbench -metrics.
func (s *Server) runScheduledJob(ctx context.Context, spec *JobSpec, st *stream, start time.Time, meta *jobMeta) Event {
	cfg := spec.experimentsConfig()
	cfg.Parallelism = s.cfg.FlowParallelism
	cfg.Cache = s.cfg.Cache
	cfg.Runner = s.cfg.Runner
	if meta.tr != nil {
		cfg.Trace = meta.tr
		cfg.TraceParent = meta.root.ID()
	}
	camp := telemetry.NewCampaign()
	cfg.Telemetry = camp
	cfg.Progress = func(done, total int) {
		st.tryEmit(Event{Event: "flows", Done: done, Total: total})
	}

	cat, err := experiments.NewCatalog(ctx, cfg, spec.Run, experiments.CatalogOptions{
		ForceCampaigns: spec.Kind == KindCampaign,
	})
	if err != nil {
		return Event{Event: "error", Status: "error", Error: err.Error()}
	}
	results, err := experiments.RunDAGProgress(ctx, cat.Tasks, s.cfg.DAGJobs,
		func(res experiments.TaskResult, completed, total int) {
			status := "ok"
			switch {
			case res.Skipped:
				status = "skipped"
			case res.Err != nil:
				status = "failed"
			}
			st.tryEmit(Event{Event: "task", Task: res.Name, Status: status,
				Completed: completed, Total: total})
		})
	if err != nil {
		return Event{Event: "error", Status: "error", Error: err.Error()}
	}

	var cc *telemetry.Cache
	if s.cfg.Cache != nil {
		c := s.cfg.Cache.Counters()
		cc = &c
	}
	rep := experiments.MetricsReport("hsrserved", cfg.Seed, camp, cc, results, start)
	rep.CC = cat.CCReport()
	if s.cfg.FleetCounters != nil {
		f := s.cfg.FleetCounters()
		rep.Fleet = &f
	}
	s.agg.Merge(camp)

	sum := Summary{}
	var outputs []TaskOutput
	for _, r := range results {
		switch {
		case r.Skipped:
			sum.Skipped++
		case r.Err != nil:
			sum.Failed++
		default:
			sum.Completed++
			if r.Output != "" {
				outputs = append(outputs, TaskOutput{Name: r.Name, Output: r.Output})
			}
		}
	}
	status := "ok"
	if sum.Failed > 0 || sum.Skipped > 0 {
		status = "partial"
	}
	return Event{Event: "result", Status: status, Summary: &sum, Report: rep, Outputs: outputs}
}
