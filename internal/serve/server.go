// Package serve is the simulation-as-a-service layer: an HTTP server that
// accepts simulation jobs (single flows, the Table I campaigns, named
// catalog experiments) as JSON, validates them against the same schemas the
// CLIs use, executes them on a bounded worker pool with admission control,
// and streams progress plus a final telemetry report as NDJSON. Results are
// bit-identical to the same job run through cmd/hsrbench: both surfaces
// share the experiment catalog, the flow cache and the report builder.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// Config configures a Server. The zero value is usable: one worker, a
// one-deep queue, no cache.
type Config struct {
	// Workers is the number of jobs executing concurrently (min 1).
	Workers int
	// QueueDepth bounds jobs accepted but not yet running (min 1); a full
	// queue rejects submissions with 429 + Retry-After.
	QueueDepth int
	// Cache, when non-nil, is the flow-result cache shared across every job
	// (identical flows across requests are served from disk, identical
	// in-flight computations are deduplicated).
	Cache *dataset.FlowCache
	// FlowParallelism bounds concurrent flow simulations inside one job
	// (0 = GOMAXPROCS). With several workers, set it so
	// Workers*FlowParallelism matches the machine.
	FlowParallelism int
	// DAGJobs bounds concurrent experiment tasks inside one job (min 1).
	DAGJobs int
	// Limits is the admission policy for job contents. Zero fields default
	// to MaxFlowDuration 10m, MaxTimeout 15m; MaxTimeout is also the
	// default per-job deadline when a spec names none.
	Limits Limits
	// Logf, when non-nil, receives one line per job lifecycle edge.
	Logf func(format string, args ...any)
}

// Server is the HTTP service. Create with New, mount via Handler, stop with
// StartDrain + Drain.
type Server struct {
	cfg Config
	mux *http.ServeMux
	pl  *pool

	draining atomic.Bool
	jobSeq   atomic.Int64

	submitted atomic.Int64
	accepted  atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64

	// agg accumulates every job's campaign counters into one server-wide
	// aggregate for /metrics.
	agg *telemetry.Campaign
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	if cfg.DAGJobs < 1 {
		cfg.DAGJobs = 1
	}
	if cfg.Limits.MaxFlowDuration == 0 {
		cfg.Limits.MaxFlowDuration = 10 * time.Minute
	}
	if cfg.Limits.MaxTimeout == 0 {
		cfg.Limits.MaxTimeout = 15 * time.Minute
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg: cfg,
		mux: http.NewServeMux(),
		pl:  newPool(cfg.Workers, cfg.QueueDepth),
		agg: telemetry.NewCampaign(),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// StartDrain stops admitting jobs: new submissions get 503, /healthz flips
// to draining. Streaming responses for accepted jobs keep running.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Drain blocks until every accepted job has finished. Call after StartDrain
// (and typically after http.Server.Shutdown has drained the handlers).
func (s *Server) Drain() {
	s.draining.Store(true)
	s.pl.drain()
}

// healthzBody is the /healthz JSON document.
type healthzBody struct {
	Status        string `json:"status"` // "ok" or "draining"
	Version       string `json:"version"`
	Workers       int    `json:"workers"`
	QueueDepth    int64  `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	JobsRunning   int64  `json:"jobs_running"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := healthzBody{
		Status:        "ok",
		Version:       buildinfo.Version(),
		Workers:       s.cfg.Workers,
		QueueDepth:    s.pl.depth(),
		QueueCapacity: s.cfg.QueueDepth,
		JobsRunning:   s.pl.active(),
	}
	if s.draining.Load() {
		body.Status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Experiments []string `json:"experiments"`
	}{experiments.CatalogNames()})
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.submitted.Add(1)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		s.rejected.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("serve: bad job body: %v", err))
		return
	}
	if err := spec.Validate(s.cfg.Limits); err != nil {
		s.rejected.Add(1)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.draining.Load() {
		s.rejected.Add(1)
		httpError(w, http.StatusServiceUnavailable, ErrDraining.Error())
		return
	}

	jobID := fmt.Sprintf("job-%d", s.jobSeq.Add(1))
	st := newStream()
	// The job runs under the request context plus the job deadline: a gone
	// client or an expired deadline cancels the schedule, which skips
	// unstarted tasks and reports the completed prefix.
	timeout := s.cfg.Limits.MaxTimeout
	if spec.TimeoutMS > 0 {
		if d := time.Duration(spec.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	jobCtx, cancel := context.WithTimeout(r.Context(), timeout)
	if err := s.pl.submit(func() {
		defer cancel()
		defer st.close()
		s.runJob(jobCtx, jobID, &spec, st)
	}); err != nil {
		cancel()
		s.rejected.Add(1)
		if err == ErrQueueFull {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.accepted.Add(1)
	s.cfg.Logf("job %s accepted: kind=%s seed=%d queue=%d", jobID, spec.Kind, spec.seed(), s.pl.depth())

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Job-Id", jobID)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeEvent := func(e Event) {
		// A failed write means the client is gone; keep draining the stream
		// so the worker's sends never back up.
		_ = enc.Encode(e)
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeEvent(Event{
		Event:      "accepted",
		JobID:      jobID,
		Version:    buildinfo.Version(),
		QueueDepth: s.pl.depth(),
	})
	for e := range st.ch {
		writeEvent(e)
	}
}

// runJob executes one admitted job on a worker goroutine.
func (s *Server) runJob(ctx context.Context, jobID string, spec *JobSpec, st *stream) {
	start := time.Now()
	var terminal Event
	switch spec.Kind {
	case KindFlow:
		terminal = s.runFlowJob(spec)
	default:
		terminal = s.runScheduledJob(ctx, spec, st, start)
	}
	terminal.JobID = jobID
	terminal.Version = buildinfo.Version()
	terminal.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	if terminal.Event == "error" {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	s.cfg.Logf("job %s %s: status=%s elapsed=%v", jobID, terminal.Event, terminal.Status,
		time.Since(start).Round(time.Millisecond))
	st.emit(terminal)
}

// runFlowJob simulates (or serves from cache) one flow.
func (s *Server) runFlowJob(spec *JobSpec) Event {
	sc, err := spec.flowScenario(s.cfg.Limits)
	if err != nil {
		return Event{Event: "error", Status: "error", Error: err.Error()}
	}
	var ent dataset.CachedFlow
	var shared bool
	if s.cfg.Cache != nil {
		ent, shared, err = s.cfg.Cache.GetOrCompute(sc, func() (dataset.CachedFlow, error) {
			m, stats, err := dataset.RunFlowMetrics(sc)
			return dataset.CachedFlow{Metrics: m, Stats: stats}, err
		})
	} else {
		ent.Metrics, ent.Stats, err = dataset.RunFlowMetrics(sc)
	}
	if err != nil {
		return Event{Event: "error", Status: "error", Error: err.Error()}
	}
	return Event{Event: "result", Status: "ok", Flow: &ent, Cached: shared}
}

// runScheduledJob executes a campaign or experiment job through the shared
// catalog and reports exactly like hsrbench -metrics.
func (s *Server) runScheduledJob(ctx context.Context, spec *JobSpec, st *stream, start time.Time) Event {
	cfg := spec.experimentsConfig()
	cfg.Parallelism = s.cfg.FlowParallelism
	cfg.Cache = s.cfg.Cache
	camp := telemetry.NewCampaign()
	cfg.Telemetry = camp
	cfg.Progress = func(done, total int) {
		st.tryEmit(Event{Event: "flows", Done: done, Total: total})
	}

	cat, err := experiments.NewCatalog(ctx, cfg, spec.Run, experiments.CatalogOptions{
		ForceCampaigns: spec.Kind == KindCampaign,
	})
	if err != nil {
		return Event{Event: "error", Status: "error", Error: err.Error()}
	}
	results, err := experiments.RunDAGProgress(ctx, cat.Tasks, s.cfg.DAGJobs,
		func(res experiments.TaskResult, completed, total int) {
			status := "ok"
			switch {
			case res.Skipped:
				status = "skipped"
			case res.Err != nil:
				status = "failed"
			}
			st.tryEmit(Event{Event: "task", Task: res.Name, Status: status,
				Completed: completed, Total: total})
		})
	if err != nil {
		return Event{Event: "error", Status: "error", Error: err.Error()}
	}

	var cc *telemetry.Cache
	if s.cfg.Cache != nil {
		c := s.cfg.Cache.Counters()
		cc = &c
	}
	rep := experiments.MetricsReport("hsrserved", cfg.Seed, camp, cc, results, start)
	s.agg.Merge(camp)

	sum := Summary{}
	var outputs []TaskOutput
	for _, r := range results {
		switch {
		case r.Skipped:
			sum.Skipped++
		case r.Err != nil:
			sum.Failed++
		default:
			sum.Completed++
			if r.Output != "" {
				outputs = append(outputs, TaskOutput{Name: r.Name, Output: r.Output})
			}
		}
	}
	status := "ok"
	if sum.Failed > 0 || sum.Skipped > 0 {
		status = "partial"
	}
	return Event{Event: "result", Status: status, Summary: &sum, Report: rep, Outputs: outputs}
}
