package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/buildinfo"
)

// postJob submits a job spec and returns the response; the caller owns Body.
func postJob(t *testing.T, client *http.Client, url string, spec string) *http.Response {
	t.Helper()
	resp, err := client.Post(url+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("post job: %v", err)
	}
	return resp
}

// readEvents decodes the whole NDJSON stream.
func readEvents(t *testing.T, body io.Reader) []Event {
	t.Helper()
	var events []Event
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read stream: %v", err)
	}
	return events
}

// terminal returns the stream's last event after sanity-checking the first.
func terminal(t *testing.T, events []Event) Event {
	t.Helper()
	if len(events) < 2 {
		t.Fatalf("stream too short: %+v", events)
	}
	if events[0].Event != "accepted" {
		t.Fatalf("first event %q, want accepted", events[0].Event)
	}
	last := events[len(events)-1]
	if last.Event != "result" && last.Event != "error" {
		t.Fatalf("last event %q, want result or error", last.Event)
	}
	return last
}

func TestServerFlowJob(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	resp := postJob(t, ts.Client(), ts.URL, `{"kind":"flow","duration":"3s","seed":7}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	last := terminal(t, readEvents(t, resp.Body))
	if last.Event != "result" || last.Status != "ok" {
		t.Fatalf("terminal %+v", last)
	}
	if last.Flow == nil || last.Flow.Metrics == nil {
		t.Fatalf("flow result missing metrics: %+v", last)
	}
	if last.Version != buildinfo.Version() {
		t.Fatalf("result version %q, want %q", last.Version, buildinfo.Version())
	}
	if last.Cached {
		t.Fatalf("uncached flow reported cached")
	}
}

func TestServerValidationRejects(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	for _, spec := range []string{
		`{"kind":"nope"}`,
		`{}`,
		`{"kind":"flow","operator":"mars-telecom"}`,
		`{"kind":"flow","faults":"not a schedule"}`,
		`{"kind":"experiment"}`,
		`{"kind":"experiment","run":["unknown-exp"]}`,
		`{"kind":"campaign","run":["table1"]}`,
		`{"kind":"campaign","operator":"china-mobile"}`,
		`{"kind":"flow","duration":"45m"}`, // beyond MaxFlowDuration default
		`{"kind":"flow","unknown_field":1}`,
		`{"kind":"flow","timeout_ms":-5}`,
	} {
		resp := postJob(t, ts.Client(), ts.URL, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s: status %d, want 400", spec, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestServerQueueFullRetryAfter holds the pool full deterministically via a
// blocked job and asserts the 429 carries Retry-After.
func TestServerQueueFullRetryAfter(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	// Block the single worker from inside the pool, then fill the queue slot.
	if err := srv.pl.submit(func() { <-release }); err != nil {
		t.Fatalf("block worker: %v", err)
	}
	for srv.pl.active() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := srv.pl.submit(func() {}); err != nil {
		t.Fatalf("fill queue: %v", err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() { close(release); srv.Drain() }()

	resp := postJob(t, ts.Client(), ts.URL, `{"kind":"flow","duration":"1s"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want 1", ra)
	}
}

// TestServerDrain verifies graceful shutdown: once draining, new jobs get
// 503 while a job admitted before the drain runs to completion and its
// stream delivers the full result. The worker is held on a channel so the
// admitted job is deterministically in flight when the drain begins.
func TestServerDrain(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Hold the single worker so the HTTP job below stays queued (in flight,
	// not yet running) across the drain transition.
	release := make(chan struct{})
	if err := srv.pl.submit(func() { <-release }); err != nil {
		t.Fatalf("block worker: %v", err)
	}
	for srv.pl.active() == 0 {
		time.Sleep(time.Millisecond)
	}

	type outcome struct {
		status int
		last   Event
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"kind":"flow","duration":"6s","seed":42}`))
		if err != nil {
			done <- outcome{err: err}
			return
		}
		defer resp.Body.Close()
		var last Event
		dec := json.NewDecoder(resp.Body)
		for {
			var e Event
			if err := dec.Decode(&e); err == io.EOF {
				break
			} else if err != nil {
				done <- outcome{err: err}
				return
			}
			last = e
		}
		done <- outcome{status: resp.StatusCode, last: last}
	}()
	// Wait until the job is queued before draining.
	for srv.pl.depth() == 0 {
		time.Sleep(time.Millisecond)
	}
	srv.StartDrain()

	resp := postJob(t, ts.Client(), ts.URL, `{"kind":"flow","duration":"1s"}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}

	var hz healthzBody
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	hresp.Body.Close()
	if hz.Status != "draining" {
		t.Fatalf("healthz status %q, want draining", hz.Status)
	}

	// Release the worker: the queued job must still run to completion.
	close(release)
	out := <-done
	if out.err != nil {
		t.Fatalf("in-flight job: %v", out.err)
	}
	if out.status != http.StatusOK {
		t.Fatalf("in-flight job status %d", out.status)
	}
	if out.last.Event != "result" || out.last.Status != "ok" || out.last.Flow == nil {
		t.Fatalf("in-flight job terminal %+v", out.last)
	}
	srv.Drain() // must return promptly with nothing left running
	if n := srv.pl.active(); n != 0 {
		t.Fatalf("%d jobs active after drain", n)
	}
}

// TestServerDeadlinePartialResults submits an experiment job with a 1 ms
// deadline: the schedule cancels, unstarted tasks are skipped, and the
// terminal event still arrives with status partial plus a report naming the
// skipped tasks.
func TestServerDeadlinePartialResults(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	resp := postJob(t, ts.Client(), ts.URL,
		`{"kind":"experiment","run":["table1","scalars"],"quick":true,"timeout_ms":1}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	last := terminal(t, readEvents(t, resp.Body))
	if last.Event != "result" {
		t.Fatalf("terminal event %q: %+v", last.Event, last)
	}
	if last.Status != "partial" {
		t.Fatalf("status %q, want partial", last.Status)
	}
	if last.Summary == nil || last.Summary.Skipped+last.Summary.Failed == 0 {
		t.Fatalf("summary %+v, want skipped or failed tasks", last.Summary)
	}
	if last.Report == nil {
		t.Fatalf("no report on partial result")
	}
	var skipped int
	for _, tr := range last.Report.Tasks {
		if tr.Status == "skipped" || tr.Status == "failed" {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatalf("report tasks %+v, want skipped entries", last.Report.Tasks)
	}
}

func TestServerHealthzAndExperiments(t *testing.T) {
	srv := New(Config{Workers: 3, QueueDepth: 5})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var hz healthzBody
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if hz.Status != "ok" || hz.Workers != 3 || hz.QueueCapacity != 5 {
		t.Fatalf("healthz %+v", hz)
	}
	if hz.Version != buildinfo.Version() {
		t.Fatalf("healthz version %q, want %q", hz.Version, buildinfo.Version())
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatalf("experiments: %v", err)
	}
	var exps struct {
		Experiments []string `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&exps); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if len(exps.Experiments) == 0 {
		t.Fatalf("empty catalog")
	}
	seen := map[string]bool{}
	for _, name := range exps.Experiments {
		seen[name] = true
	}
	if !seen["table1"] || !seen["faults"] {
		t.Fatalf("catalog %v missing table1/faults", exps.Experiments)
	}
}

func TestServerMetricsExposition(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	// Run one flow job so the lifecycle counters move.
	resp := postJob(t, ts.Client(), ts.URL, `{"kind":"flow","duration":"2s"}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	body := string(raw)
	for _, want := range []string{
		"hsrserved_workers 1",
		"hsrserved_queue_capacity 1",
		"hsrserved_jobs_submitted_total 1",
		"hsrserved_jobs_accepted_total 1",
		"hsrserved_jobs_completed_total 1",
		"hsrserved_draining 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestPoolSubmitAfterDrain(t *testing.T) {
	p := newPool(2, 2)
	ran := make(chan struct{})
	if err := p.submit(func() { close(ran) }); err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-ran
	p.drain()
	if err := p.submit(func() {}); err != ErrDraining {
		t.Fatalf("submit after drain: %v, want ErrDraining", err)
	}
	p.drain() // second drain is a no-op
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"45s"`), &d); err != nil || time.Duration(d) != 45*time.Second {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`1000000000`), &d); err != nil || time.Duration(d) != time.Second {
		t.Fatalf("number form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &d); err == nil {
		t.Fatalf("bad duration accepted")
	}
	raw, err := json.Marshal(Duration(90 * time.Second))
	if err != nil || string(raw) != `"1m30s"` {
		t.Fatalf("marshal: %s %v", raw, err)
	}
}
