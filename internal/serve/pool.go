package serve

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Admission errors: the HTTP layer maps ErrQueueFull to 429 + Retry-After
// and ErrDraining to 503.
var (
	ErrQueueFull = errors.New("serve: job queue full")
	ErrDraining  = errors.New("serve: server draining")
)

// pool is a bounded worker pool with a bounded queue: admission control is
// the queue bound — a submit against a full queue fails immediately instead
// of blocking, so the HTTP handler can turn backpressure into a 429 while
// the accepted jobs keep their FIFO order.
type pool struct {
	queue   chan func()
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	queued  atomic.Int64
	running atomic.Int64
}

// newPool starts workers goroutines draining a queue of at most depth
// pending jobs (beyond the ones actively running).
func newPool(workers, depth int) *pool {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	p := &pool{queue: make(chan func(), depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.queue {
				p.queued.Add(-1)
				p.running.Add(1)
				fn()
				p.running.Add(-1)
			}
		}()
	}
	return p
}

// submit enqueues fn, failing with ErrQueueFull when the queue is at
// capacity and ErrDraining after drain began. fn runs exactly once on a
// worker goroutine when submit returns nil.
func (p *pool) submit(fn func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrDraining
	}
	select {
	case p.queue <- fn:
		p.queued.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// drain stops admission and waits until every accepted job has finished.
// Safe to call more than once.
func (p *pool) drain() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// depth returns the number of queued (not yet running) jobs.
func (p *pool) depth() int64 { return p.queued.Load() }

// active returns the number of jobs currently running on workers.
func (p *pool) active() int64 { return p.running.Load() }
