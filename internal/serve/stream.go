package serve

import (
	"sync"

	"repro/internal/dataset"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// Event is one NDJSON line of a job's response stream. The first line is
// always "accepted"; "flows" and "task" lines report progress while the job
// runs; exactly one terminal "result" or "error" line closes the stream.
type Event struct {
	// Event is the line type: accepted, flows, task, result, error.
	Event string `json:"event"`
	// JobID identifies the job on every line (assigned at admission).
	JobID string `json:"job_id,omitempty"`
	// Version is the server build (accepted + terminal lines).
	Version string `json:"version,omitempty"`
	// QueueDepth is the queue occupancy observed at admission.
	QueueDepth int64 `json:"queue_depth,omitempty"`

	// Flow progress (event=flows): Done of Total campaign flows finished.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`

	// Task progress (event=task): one DAG task completed.
	Task      string `json:"task,omitempty"`
	Status    string `json:"status,omitempty"` // ok, failed, skipped — and the terminal ok/partial/error
	Completed int    `json:"completed,omitempty"`

	// Terminal payload (event=result|error).
	Error string `json:"error,omitempty"`

	ElapsedMS float64             `json:"elapsed_ms,omitempty"`
	Summary   *Summary            `json:"summary,omitempty"`
	Report    *telemetry.Report   `json:"report,omitempty"`
	Outputs   []TaskOutput        `json:"outputs,omitempty"`
	Flow      *dataset.CachedFlow `json:"flow,omitempty"`
	// Cached reports that a flow job's result came from the shared cache or
	// a deduplicated concurrent computation.
	Cached bool `json:"cached,omitempty"`
	// Unit is a unit job's terminal payload: the executed flow range with
	// telemetry-complete per-flow results.
	Unit *UnitResult `json:"unit,omitempty"`
	// Spans is the job's recorded span batch, shipped on the terminal event
	// when the submitter sent a trace context (JobSpec.Trace) — the
	// coordinator stitches these under its own unit attempt spans.
	Spans []tracing.SpanRecord `json:"spans,omitempty"`
}

// UnitResult is the terminal payload of a unit job.
type UnitResult struct {
	// Start and End echo the executed plan range.
	Start int `json:"start"`
	End   int `json:"end"`
	// Flows holds one entry per plan index in [Start, End), in plan order.
	Flows []UnitFlow `json:"flows"`
	// CacheHits counts flows served from telemetry-complete cache entries
	// (or deduplicated against a concurrent identical computation).
	CacheHits int `json:"cache_hits,omitempty"`
}

// UnitFlow is one flow of a unit result: its global plan index and the full
// cache-entry payload (metrics, endpoint stats, exact telemetry state).
type UnitFlow struct {
	Index  int                `json:"index"`
	Flow   dataset.CachedFlow `json:"flow"`
	Cached bool               `json:"cached,omitempty"`
}

// Summary counts a scheduled job's task outcomes.
type Summary struct {
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Skipped   int `json:"skipped"`
}

// TaskOutput is one experiment's rendered section.
type TaskOutput struct {
	Name   string `json:"name"`
	Output string `json:"output"`
}

// stream carries a job's events from the worker goroutine to the HTTP
// handler. Progress events are best-effort (dropped when the reader lags);
// terminal events always land while the client is reading — and once the
// handler declares the client gone (abort), every send becomes a no-op so
// the worker can never wedge behind a dead stream.
type stream struct {
	ch        chan Event
	aborted   chan struct{}
	abortOnce sync.Once
}

func newStream() *stream {
	// 256 buffered events absorb any full catalog run (19 experiments + the
	// shared tasks + per-campaign flow batches) without the worker blocking.
	return &stream{ch: make(chan Event, 256), aborted: make(chan struct{})}
}

// abort marks the client gone: emit stops blocking, tryEmit keeps dropping.
// Called by the HTTP handler after a failed or timed-out response write;
// safe to call more than once and concurrently with sends.
func (s *stream) abort() {
	s.abortOnce.Do(func() { close(s.aborted) })
}

// tryEmit sends a progress event, dropping it when the buffer is full.
func (s *stream) tryEmit(e Event) {
	select {
	case s.ch <- e:
	default:
	}
}

// emit sends an event that must not be lost (terminal lines). The buffer
// outsizes any event sequence that can precede a terminal line, so this
// never blocks in practice; the send is still on the buffered channel, not
// the client socket. If the buffer ever were full — a stalled client whose
// handler is stuck inside a response write can stop draining for up to one
// write deadline — the abort path unblocks the worker.
func (s *stream) emit(e Event) {
	select {
	case s.ch <- e:
	case <-s.aborted:
	}
}

// close ends the stream; the handler's range loop terminates.
func (s *stream) close() { close(s.ch) }
