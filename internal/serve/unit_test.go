package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/telemetry"
)

// countersJSON marshals a campaign's deterministic counter sections (the
// Counters() contract — everything except wall-clock resource fields).
func countersJSON(t *testing.T, c *telemetry.Campaign) []byte {
	t.Helper()
	flows, kernel, tcp, net, faults := c.Counters()
	raw, err := json.Marshal(struct {
		Flows  int64            `json:"flows"`
		Kernel telemetry.Kernel `json:"kernel"`
		TCP    telemetry.TCP    `json:"tcp"`
		Net    telemetry.Net    `json:"net"`
		Faults telemetry.Faults `json:"faults"`
	}{flows, kernel, tcp, net, faults})
	if err != nil {
		t.Fatalf("marshal campaign counters: %v", err)
	}
	return raw
}

// TestUnitJobByteIdentity runs a campaign as unit jobs against a worker
// server and replays the shipped flows in plan order: the reassembled
// telemetry counters must be byte-identical to a local RunCampaign with
// telemetry attached (the Counters() contract — wall time is a host
// measurement), and the metrics must match flow for flow. This is the
// worker half of the distributed contract; internal/dist tests the
// coordinator.
func TestUnitJobByteIdentity(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 4})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg := dataset.CampaignConfig{Seed: 7, FlowDuration: 2 * time.Second, FlowsPerRow: 2}
	plan, err := dataset.PlanCampaign(cfg)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}

	// Reference: a plain local campaign with telemetry.
	ref := telemetry.NewCampaign()
	refCfg := cfg
	refCfg.Telemetry = ref
	refCamp, err := dataset.RunCampaign(refCfg)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	refBytes := countersJSON(t, ref)

	// Distributed: three uneven units over the worker's HTTP surface.
	bounds := []int{0, 3, 4, len(plan)}
	flows := make([]UnitFlow, 0, len(plan))
	for u := 0; u+1 < len(bounds); u++ {
		spec := fmt.Sprintf(`{"kind":"unit","unit":{"seed":7,"duration":"2s","flows_per_row":2,"start":%d,"end":%d}}`,
			bounds[u], bounds[u+1])
		resp := postJob(t, ts.Client(), ts.URL, spec)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("unit job status %d", resp.StatusCode)
		}
		last := terminal(t, readEvents(t, resp.Body))
		resp.Body.Close()
		if last.Event != "result" || last.Unit == nil {
			t.Fatalf("unit terminal %+v", last)
		}
		if got, want := len(last.Unit.Flows), bounds[u+1]-bounds[u]; got != want {
			t.Fatalf("unit [%d,%d): %d flows, want %d", bounds[u], bounds[u+1], got, want)
		}
		flows = append(flows, last.Unit.Flows...)
	}

	// Reassemble exactly like the coordinator: AddFlow in plan order.
	merged := telemetry.NewCampaign()
	for i, uf := range flows {
		if uf.Index != i {
			t.Fatalf("flow %d shipped with index %d", i, uf.Index)
		}
		if uf.Flow.Telemetry == nil {
			t.Fatalf("flow %d shipped without telemetry", i)
		}
		merged.AddFlow(uf.Flow.Telemetry.Restore())
		if a, _ := json.Marshal(uf.Flow.Metrics); true {
			b, _ := json.Marshal(refCamp.Results[i].Metrics)
			if string(a) != string(b) {
				t.Fatalf("flow %d metrics diverged:\n%s\nvs\n%s", i, a, b)
			}
		}
	}
	gotBytes := countersJSON(t, merged)
	if string(refBytes) != string(gotBytes) {
		t.Fatalf("distributed telemetry not byte-identical:\n%s\nvs\n%s", refBytes, gotBytes)
	}
}

// TestUnitJobCachedReplayIdentical re-runs a unit against a shared cache:
// the second run must be served from telemetry-complete entries and carry
// byte-identical flow payloads — the property reassignment and hedging
// lean on for their at-most-once effect.
func TestUnitJobCachedReplayIdentical(t *testing.T) {
	cache, err := dataset.OpenFlowCacheVersion(t.TempDir(), "test")
	if err != nil {
		t.Fatalf("open cache: %v", err)
	}
	srv := New(Config{Workers: 1, QueueDepth: 2, Cache: cache})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := `{"kind":"unit","unit":{"seed":3,"duration":"2s","flows_per_row":1,"start":0,"end":2}}`
	run := func() *UnitResult {
		resp := postJob(t, ts.Client(), ts.URL, spec)
		defer resp.Body.Close()
		last := terminal(t, readEvents(t, resp.Body))
		if last.Unit == nil {
			t.Fatalf("no unit payload: %+v", last)
		}
		return last.Unit
	}
	first, second := run(), run()
	if second.CacheHits != 2 {
		t.Fatalf("replayed unit hit %d of 2 cached flows", second.CacheHits)
	}
	for i := range first.Flows {
		a, _ := json.Marshal(first.Flows[i].Flow)
		b, _ := json.Marshal(second.Flows[i].Flow)
		if string(a) != string(b) {
			t.Fatalf("cached replay of flow %d diverged:\n%s\nvs\n%s", i, a, b)
		}
	}
}

// TestReadyz covers the readiness probe's three answers: ready, degraded
// (coordinator with a fully-unhealthy fleet) and draining (503).
func TestReadyz(t *testing.T) {
	fleet := []FleetWorker{{URL: "http://w1", Healthy: false, ConsecutiveFails: 3}}
	srv := New(Config{Workers: 1, QueueDepth: 1, Fleet: func() []FleetWorker { return fleet }})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(wantStatus int) readyzBody {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatalf("readyz: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("readyz status %d, want %d", resp.StatusCode, wantStatus)
		}
		var body readyzBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("readyz decode: %v", err)
		}
		return body
	}

	if body := get(http.StatusOK); body.Status != "degraded" || len(body.Fleet) != 1 {
		t.Fatalf("unhealthy fleet: %+v", body)
	}
	fleet[0].Healthy = true
	if body := get(http.StatusOK); body.Status != "ready" {
		t.Fatalf("healthy fleet: %+v", body)
	}
	srv.StartDrain()
	if body := get(http.StatusServiceUnavailable); body.Status != "draining" {
		t.Fatalf("draining: %+v", body)
	}
}

// TestStreamAbortUnblocksEmit is the backpressure fix at the stream level:
// once the handler declares the client gone, even must-deliver emits on a
// full buffer return immediately instead of wedging the worker goroutine.
func TestStreamAbortUnblocksEmit(t *testing.T) {
	st := newStream()
	for i := 0; i < cap(st.ch); i++ {
		st.emit(Event{Event: "flows"})
	}
	st.abort()
	done := make(chan struct{})
	go func() {
		st.emit(Event{Event: "result"}) // buffer full + aborted: must not block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("emit blocked on a full, aborted stream")
	}
}
