package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5*time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("simultaneous events fired out of scheduling order: %v", order)
		}
	}
}

func TestZeroDelayFiresAfterEarlierSameTimeEvents(t *testing.T) {
	s := New()
	var order []string
	s.Schedule(0, func() {
		order = append(order, "first")
		s.Schedule(0, func() { order = append(order, "nested") })
	})
	s.Schedule(0, func() { order = append(order, "second") })
	s.Run()
	want := []string{"first", "second", "nested"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Schedule with negative delay did not panic")
		}
	}()
	New().Schedule(-time.Millisecond, func() {})
}

func TestAtPastPanics(t *testing.T) {
	s := New()
	s.Schedule(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("At in the past did not panic")
		}
	}()
	s.At(500*time.Millisecond, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At with nil callback did not panic")
		}
	}()
	New().Schedule(time.Second, nil)
}

func TestTimerStop(t *testing.T) {
	s := New()
	fired := false
	tm := s.Schedule(time.Second, func() { fired = true })
	if !tm.Active() {
		t.Error("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Error("Stop on active timer should return true")
	}
	if tm.Stop() {
		t.Error("second Stop should return false")
	}
	if tm.Active() {
		t.Error("stopped timer should not be active")
	}
	s.Run()
	if fired {
		t.Error("stopped timer fired anyway")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := New()
	tm := s.Schedule(time.Millisecond, func() {})
	s.Run()
	if tm.Stop() {
		t.Error("Stop after firing should return false")
	}
	if tm.Active() {
		t.Error("fired timer should not be active")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	// RunUntil past a gap advances the clock to the deadline even with no
	// events there.
	s.RunUntil(10 * time.Second)
	if s.Now() != 10*time.Second || len(fired) != 3 {
		t.Errorf("Now = %v fired = %v", s.Now(), fired)
	}
}

func TestRunUntilDoesNotFireLaterEvents(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(5*time.Second, func() { fired = true })
	s.RunUntil(4 * time.Second)
	if fired {
		t.Error("event after the deadline fired")
	}
}

func TestPendingSkipsCancelled(t *testing.T) {
	s := New()
	tm := s.Schedule(time.Second, func() {})
	s.Schedule(2*time.Second, func() {})
	tm.Stop()
	if got := s.Pending(); got != 1 {
		t.Errorf("Pending = %d, want 1", got)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Error("Step on empty simulator returned true")
	}
	tm := s.Schedule(time.Second, func() {})
	tm.Stop()
	if s.Step() {
		t.Error("Step with only cancelled events returned true")
	}
}

func TestEventsCanScheduleMoreEvents(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			s.Schedule(time.Millisecond, tick)
		}
	}
	s.Schedule(time.Millisecond, tick)
	s.Run()
	if count != 100 {
		t.Errorf("count = %d, want 100", count)
	}
	if s.Now() != 100*time.Millisecond {
		t.Errorf("Now = %v, want 100ms", s.Now())
	}
}

// Property: whatever the (non-negative) delays, events fire in nondecreasing
// time order and the clock never runs backwards.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		s := New()
		var fireTimes []time.Duration
		for _, d := range raw {
			delay := time.Duration(d%1_000_000) * time.Microsecond
			s.Schedule(delay, func() { fireTimes = append(fireTimes, s.Now()) })
		}
		s.Run()
		if len(fireTimes) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// fireCounter is a Handler that counts its firings.
type fireCounter struct{ n int }

func (h *fireCounter) Fire() { h.n++ }

func TestPendingCounter(t *testing.T) {
	s := New()
	if s.Pending() != 0 {
		t.Fatalf("Pending on empty simulator = %d", s.Pending())
	}
	var tms []*Timer
	for i := 1; i <= 10; i++ {
		tms = append(tms, s.Schedule(time.Duration(i)*time.Millisecond, func() {}))
	}
	h := &fireCounter{}
	s.ScheduleFire(time.Millisecond, h)
	if got := s.Pending(); got != 11 {
		t.Fatalf("Pending = %d, want 11", got)
	}
	tms[3].Stop()
	tms[4].Stop()
	if got := s.Pending(); got != 9 {
		t.Fatalf("Pending after 2 stops = %d, want 9", got)
	}
	s.Step() // fires one of the t=1ms events
	s.Step()
	if got := s.Pending(); got != 7 {
		t.Fatalf("Pending after 2 steps = %d, want 7", got)
	}
	tms[4].Reschedule(time.Second) // revive a stopped timer
	if got := s.Pending(); got != 8 {
		t.Fatalf("Pending after revival = %d, want 8", got)
	}
	s.Run()
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after Run = %d, want 0", got)
	}
	if h.n != 1 {
		t.Errorf("handler fired %d times, want 1", h.n)
	}
}

func TestCancelledEventsDoNotAccumulate(t *testing.T) {
	// The cancelled-event leak regression test: stopping far-future timers
	// over and over must not grow the queue — a stopped wheel timer is
	// unlinked from its slot immediately, so only the survivor remains.
	s := New()
	keep := s.Schedule(time.Hour, func() {})
	const churn = 100_000
	for i := 0; i < churn; i++ {
		s.Schedule(time.Hour, func() {}).Stop()
	}
	if got := s.queuedLen(); got != 1 {
		t.Fatalf("queue holds %d entries after %d cancels, want 1", got, churn)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	if !keep.Active() {
		t.Fatal("surviving timer lost by cancellation churn")
	}
}

func TestCancelChurnPreservesOrder(t *testing.T) {
	s := New()
	var order []int
	var cancel []*Timer
	for i := 0; i < 500; i++ {
		i := i
		s.Schedule(time.Duration(i)*time.Millisecond, func() { order = append(order, i) })
		// Interleave doomed timers so every slot sees mid-build unlinks.
		cancel = append(cancel, s.Schedule(time.Duration(i)*time.Millisecond, func() { t.Error("cancelled timer fired") }))
	}
	for _, tm := range cancel {
		tm.Stop()
	}
	s.Run()
	if len(order) != 500 {
		t.Fatalf("fired %d events, want 500", len(order))
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("order[%d] = %d after cancellation churn", i, order[i])
		}
	}
}

func TestRescheduleActiveTimer(t *testing.T) {
	s := New()
	var at time.Duration
	tm := s.Schedule(10*time.Millisecond, func() { at = s.Now() })
	tm.Reschedule(30 * time.Millisecond)
	s.Schedule(20*time.Millisecond, func() {})
	s.Run()
	if at != 30*time.Millisecond {
		t.Errorf("rescheduled timer fired at %v, want 30ms", at)
	}
}

func TestRescheduleFiredTimer(t *testing.T) {
	s := New()
	n := 0
	tm := s.Schedule(time.Millisecond, func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("fired %d times, want 1", n)
	}
	if tm.Active() {
		t.Fatal("fired timer still active")
	}
	tm.Reschedule(time.Millisecond)
	if !tm.Active() {
		t.Fatal("rescheduled fired timer not active")
	}
	s.Run()
	if n != 2 {
		t.Errorf("fired %d times after revival, want 2", n)
	}
}

func TestRescheduleStoppedTimer(t *testing.T) {
	s := New()
	n := 0
	tm := s.Schedule(time.Millisecond, func() { n++ })
	tm.Stop()
	tm.Reschedule(5 * time.Millisecond)
	s.Run()
	if n != 1 {
		t.Errorf("revived stopped timer fired %d times, want 1", n)
	}
	if s.Now() != 5*time.Millisecond {
		t.Errorf("Now = %v, want 5ms", s.Now())
	}
}

func TestRescheduleStoppedTimerAfterChurn(t *testing.T) {
	// Stop a timer, churn the queue with unrelated schedule/stop cycles,
	// then revive it: Reschedule must re-place the unlinked timer cleanly.
	s := New()
	n := 0
	tm := s.Schedule(time.Millisecond, func() { n++ })
	tm.Stop()
	for i := 0; i < 256; i++ {
		s.Schedule(time.Hour, func() {}).Stop()
	}
	tm.Reschedule(2 * time.Millisecond)
	s.RunUntil(3 * time.Millisecond)
	if n != 1 {
		t.Errorf("revived timer fired %d times, want 1", n)
	}
}

func TestRescheduleIsFIFOStamped(t *testing.T) {
	// A rescheduled timer landing on an occupied timestamp fires after the
	// events already scheduled there, like a fresh Schedule would.
	s := New()
	var order []string
	tm := s.Schedule(time.Millisecond, func() { order = append(order, "moved") })
	s.Schedule(5*time.Millisecond, func() { order = append(order, "existing") })
	tm.Reschedule(5 * time.Millisecond)
	s.Run()
	if len(order) != 2 || order[0] != "existing" || order[1] != "moved" {
		t.Errorf("order = %v, want [existing moved]", order)
	}
}

func TestRescheduleNegativeDelayPanics(t *testing.T) {
	s := New()
	tm := s.Schedule(time.Second, func() {})
	defer func() {
		if recover() == nil {
			t.Error("Reschedule with negative delay did not panic")
		}
	}()
	tm.Reschedule(-time.Millisecond)
}

func TestScheduleFirePooledEventsAreRecycled(t *testing.T) {
	s := New()
	h := &fireCounter{}
	const rounds = 1000
	for i := 0; i < rounds; i++ {
		s.ScheduleFire(time.Microsecond, h)
		if !s.Step() {
			t.Fatal("Step found no event")
		}
	}
	if h.n != rounds {
		t.Fatalf("fired %d, want %d", h.n, rounds)
	}
	// Steady state keeps exactly one pooled event on the free list.
	free := 0
	for ev := s.free; ev != nil; ev = ev.freeNext {
		free++
	}
	if free != 1 {
		t.Errorf("free list holds %d events, want 1", free)
	}
}

func TestScheduleFireOrderingMatchesSchedule(t *testing.T) {
	s := New()
	var order []int
	record := func(i int) Handler { return &orderHandler{order: &order, i: i} }
	s.ScheduleFire(time.Millisecond, record(1))
	s.Schedule(time.Millisecond, func() { order = append(order, 2) })
	s.ScheduleFire(time.Millisecond, record(3))
	s.Run()
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order = %v, want [1 2 3]", order)
		}
	}
}

type orderHandler struct {
	order *[]int
	i     int
}

func (h *orderHandler) Fire() { *h.order = append(*h.order, h.i) }

func TestScheduleFireNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ScheduleFire with nil handler did not panic")
		}
	}()
	New().ScheduleFire(time.Second, nil)
}

func TestNewRandDeterministic(t *testing.T) {
	a := NewRand(42, StreamDataLoss)
	b := NewRand(42, StreamDataLoss)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, stream) produced different sequences")
		}
	}
}

func TestNewRandStreamsIndependent(t *testing.T) {
	a := NewRand(42, StreamDataLoss)
	b := NewRand(42, StreamAckLoss)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams collided on %d of 64 draws", same)
	}
}

func TestNewRandSeedsDiffer(t *testing.T) {
	a := NewRand(1, StreamDelay)
	b := NewRand(2, StreamDelay)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Error("adjacent seeds produced identical draws")
	}
}

func TestNewRandUniformity(t *testing.T) {
	// Crude uniformity check: mean of many Float64 draws near 0.5.
	r := NewRand(7, StreamWorkload)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.48 || mean > 0.52 {
		t.Errorf("mean of uniform draws = %v, want ~0.5", mean)
	}
}

func TestBudgetMaxEventsStopsRunawayLoop(t *testing.T) {
	s := New()
	s.SetBudget(Budget{MaxEvents: 1000})
	// A pathological workload: every event reschedules itself with zero
	// delay, so without the budget Run would spin forever.
	var fired int
	var loop func()
	loop = func() {
		fired++
		s.Schedule(0, loop)
	}
	s.Schedule(0, loop)
	s.Run()
	if !s.Exhausted() {
		t.Fatal("runaway loop did not exhaust the budget")
	}
	if fired != 1000 {
		t.Fatalf("executed %d events, want exactly the 1000 budget", fired)
	}
	if got := s.Executed(); got != 1000 {
		t.Fatalf("Executed() = %d, want 1000", got)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want the refused event still queued", s.Pending())
	}
}

func TestBudgetRunUntilTerminates(t *testing.T) {
	// The regression this guards: RunUntil must stop when Step refuses an
	// event, not keep peeking at it forever.
	s := New()
	s.SetBudget(Budget{MaxEvents: 10})
	var loop func()
	loop = func() { s.Schedule(0, loop) }
	s.Schedule(0, loop)
	done := make(chan struct{})
	go func() {
		s.RunUntil(time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RunUntil spun past an exhausted budget")
	}
	if !s.Exhausted() {
		t.Fatal("budget not exhausted")
	}
}

func TestBudgetMaxVirtualTimeLeavesEventsQueued(t *testing.T) {
	s := New()
	s.SetBudget(Budget{MaxVirtualTime: 50 * time.Millisecond})
	var fired []time.Duration
	for _, at := range []time.Duration{10 * time.Millisecond, 40 * time.Millisecond, 100 * time.Millisecond} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.Run()
	if len(fired) != 2 {
		t.Fatalf("fired %v, want the two events inside the horizon", fired)
	}
	if !s.Exhausted() {
		t.Fatal("event beyond the horizon should exhaust the budget")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want the refused event preserved", s.Pending())
	}
	if s.Now() != 40*time.Millisecond {
		t.Fatalf("clock at %v, want it left at the last executed event", s.Now())
	}
	// Raising the budget lets the run continue where it stopped.
	s.SetBudget(Budget{})
	s.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %v after lifting the budget, want all three", fired)
	}
}

func TestSetBudgetClearsExhaustion(t *testing.T) {
	s := New()
	s.SetBudget(Budget{MaxEvents: 1})
	s.Schedule(0, func() {})
	s.Schedule(0, func() {})
	s.Run()
	if !s.Exhausted() {
		t.Fatal("want exhausted")
	}
	s.SetBudget(Budget{MaxEvents: 100})
	if s.Exhausted() {
		t.Fatal("SetBudget should clear the exhausted flag")
	}
	s.Run()
	if s.Exhausted() || s.Pending() != 0 {
		t.Fatal("run should complete under the raised budget")
	}
}

// fireFunc adapts a closure to the Handler interface for tests.
type fireFunc func()

func (f fireFunc) Fire() { f() }

func TestInvariantChecksPassOnNormalWorkload(t *testing.T) {
	// Self-check mode must be silent on a healthy kernel, across scheduling,
	// cancellation, rescheduling and pooled fire-and-forget events — enough
	// churn to cross the periodic full-audit boundary.
	s := New()
	s.SetInvariantChecks(true)
	rng := NewRand(3, StreamWorkload)
	var timers []*Timer
	n := 0
	for i := 0; i < 3*invariantAuditPeriod; i++ {
		d := time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
		switch i % 4 {
		case 0:
			timers = append(timers, s.Schedule(d, func() { n++ }))
		case 1:
			s.ScheduleFire(d, fireFunc(func() { n++ }))
		case 2:
			if len(timers) > 0 {
				timers[len(timers)-1].Stop()
				timers = timers[:len(timers)-1]
			}
		case 3:
			if len(timers) > 0 && timers[0].Active() {
				timers[0].Reschedule(d)
			}
		}
		// Drain periodically so the wheel sees advances interleaved with
		// insertions.
		if i%64 == 63 {
			for j := 0; j < 32; j++ {
				if !s.Step() {
					break
				}
			}
		}
	}
	s.Run()
	if n == 0 {
		t.Fatal("workload fired nothing")
	}
}
