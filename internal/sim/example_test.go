package sim_test

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// ExampleSimulator shows the discrete-event kernel: schedule, cancel, run.
func ExampleSimulator() {
	s := sim.New()
	s.Schedule(10*time.Millisecond, func() {
		fmt.Println("first event at", s.Now())
		s.Schedule(5*time.Millisecond, func() {
			fmt.Println("nested event at", s.Now())
		})
	})
	cancelled := s.Schedule(20*time.Millisecond, func() {
		fmt.Println("never printed")
	})
	cancelled.Stop()
	s.Run()
	// Output:
	// first event at 10ms
	// nested event at 15ms
}
