package sim

import "math/rand"

// Stream identifies an independent random-number stream within one
// experiment. Separate streams keep stochastic processes decoupled: adding
// draws to one (say, the data-path loss process) does not perturb another
// (the ACK-path loss process), which keeps A/B comparisons paired.
type Stream uint64

// Well-known streams used across the repository. Experiments may define
// additional streams above StreamUser.
const (
	StreamDataLoss Stream = iota + 1
	StreamAckLoss
	StreamDelay
	StreamHandoff
	StreamWorkload
	StreamFaultData         // fault-injected data-direction loss draws
	StreamFaultAck          // fault-injected ACK-direction loss draws
	StreamFaultStorm        // fault-injected handoff-storm outage placement
	StreamUser       Stream = 1000
)

// NewRand derives a deterministic *rand.Rand for (seed, stream) using
// SplitMix64 over the combined key, so nearby seeds still yield well-mixed,
// independent sequences.
func NewRand(seed int64, stream Stream) *rand.Rand {
	return rand.New(rand.NewSource(int64(splitmix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(stream)))))
}

// splitmix64 is the SplitMix64 finalizer, a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
