package sim

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

// countingHandler reschedules itself n times through the pooled
// fire-and-forget path.
type countingHandler struct {
	s     *Simulator
	left  int
	fired int
}

func (h *countingHandler) Fire() {
	h.fired++
	if h.left > 0 {
		h.left--
		h.s.ScheduleFire(time.Millisecond, h)
	}
}

func TestKernelTelemetryCounters(t *testing.T) {
	s := New()
	var k telemetry.Kernel
	s.SetTelemetry(&k)

	h := &countingHandler{s: s, left: 9}
	s.ScheduleFire(time.Millisecond, h)

	timer := s.Schedule(time.Hour, func() {})
	timer.Reschedule(2 * time.Hour)
	timer.Stop()

	s.Run()

	if h.fired != 10 {
		t.Fatalf("handler fired %d times, want 10", h.fired)
	}
	if k.Events != s.Executed() {
		t.Errorf("Events = %d, want Executed() = %d", k.Events, s.Executed())
	}
	// 10 fire-and-forget schedules + 1 timer schedule; the Reschedule is
	// counted separately.
	if k.Scheduled != 11 {
		t.Errorf("Scheduled = %d, want 11", k.Scheduled)
	}
	if k.TimerReschedules != 1 {
		t.Errorf("TimerReschedules = %d, want 1", k.TimerReschedules)
	}
	if k.TimerStops != 1 {
		t.Errorf("TimerStops = %d, want 1", k.TimerStops)
	}
	// The first fire-and-forget schedule allocates its event object; all nine
	// self-reschedules reuse it from the free list.
	if k.PoolMisses != 1 || k.PoolHits != 9 {
		t.Errorf("PoolMisses/PoolHits = %d/%d, want 1/9", k.PoolMisses, k.PoolHits)
	}
	if k.MaxPending < 1 {
		t.Errorf("MaxPending = %d, want >= 1", k.MaxPending)
	}
	if k.Batches < 1 || k.BatchEvents < k.Batches || k.MaxBatch < 1 {
		t.Errorf("batch counters = %d/%d/%d, want all positive", k.Batches, k.BatchEvents, k.MaxBatch)
	}
	if rate := k.PoolHitRate(); rate != 0.9 {
		t.Errorf("PoolHitRate = %v, want 0.9", rate)
	}
}

func TestTelemetryDoesNotChangeExecution(t *testing.T) {
	run := func(k *telemetry.Kernel) (int64, time.Duration) {
		s := New()
		if k != nil {
			s.SetTelemetry(k)
		}
		h := &countingHandler{s: s, left: 99}
		s.ScheduleFire(time.Millisecond, h)
		s.Run()
		return s.Executed(), s.Now()
	}
	offEvents, offNow := run(nil)
	var k telemetry.Kernel
	onEvents, onNow := run(&k)
	if offEvents != onEvents || offNow != onNow {
		t.Fatalf("telemetry changed execution: off=(%d, %v) on=(%d, %v)",
			offEvents, offNow, onEvents, onNow)
	}
}

// TestScheduleFireZeroAlloc is the CI zero-alloc gate: the warmed
// fire-and-forget path must not allocate, with telemetry off AND on.
func TestScheduleFireZeroAlloc(t *testing.T) {
	for _, tel := range []bool{false, true} {
		name := "telemetry-off"
		if tel {
			name = "telemetry-on"
		}
		t.Run(name, func(t *testing.T) {
			s := New()
			var k telemetry.Kernel
			if tel {
				s.SetTelemetry(&k)
			}
			h := &countingHandler{s: s}
			// Warm the event free list.
			s.ScheduleFire(time.Millisecond, h)
			s.Run()
			allocs := testing.AllocsPerRun(1000, func() {
				s.ScheduleFire(time.Millisecond, h)
				s.Run()
			})
			if allocs != 0 {
				t.Fatalf("warmed ScheduleFire+Run allocates %v allocs/op, want 0", allocs)
			}
		})
	}
}
