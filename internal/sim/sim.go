// Package sim implements a deterministic discrete-event simulation kernel:
// a virtual clock, an event heap with stable FIFO ordering for simultaneous
// events, cancellable timers, and seeded random-number streams.
//
// Every other substrate (link emulation, TCP endpoints, mobility) is driven
// by a Simulator so that a whole experiment is a single-threaded,
// reproducible computation: the same seed always produces the same packet
// trace.
//
// The kernel is allocation-conscious. Fire-and-forget events scheduled
// through ScheduleFire/AtFire draw their event objects from a per-simulator
// free list and return them after firing, so the per-packet hot path
// (link deliveries) allocates nothing in steady state. Cancelled timers are
// removed lazily: Stop only marks the entry dead, and the heap is compacted
// once dead entries outnumber live ones, so cancel-heavy workloads (RTO
// timers that almost never fire) stay O(live) rather than accumulating
// garbage until the dead entries' deadlines pass. Long-lived timers avoid
// the Stop+Schedule churn entirely via Timer.Reschedule, which moves the
// existing heap entry in place.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Handler is the callback interface of pooled fire-and-forget events
// (ScheduleFire/AtFire). Using a small struct that implements Handler —
// instead of a closure — lets callers pool their callback state and makes
// the schedule/fire path allocation-free.
type Handler interface {
	Fire()
}

// compactMinHeap is the heap size below which lazy-deletion compaction is
// not worth the bookkeeping.
const compactMinHeap = 64

// Simulator owns the virtual clock and the pending event queue. The zero
// value is not usable; create one with New.
type Simulator struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	live   int    // non-cancelled entries currently in the heap
	free   *Timer // free list of recycled fire-and-forget events
}

// New returns a Simulator with the clock at zero and no pending events.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Pending returns the number of scheduled, not-yet-fired, not-cancelled
// events. It is O(1): the kernel maintains a live-event counter.
func (s *Simulator) Pending() int { return s.live }

// heapLen returns the raw heap size including lazily-deleted entries
// (diagnostics and tests).
func (s *Simulator) heapLen() int { return len(s.events) }

// Schedule runs fn after delay of virtual time. A zero delay fires the event
// at the current time but strictly after all previously scheduled events for
// that time (stable FIFO order). Schedule panics on a negative delay: the
// simulation has a single arrow of time and scheduling into the past is
// always a programming error.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at absolute virtual time t (which must not be in the past).
func (s *Simulator) At(t time.Duration, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: At(%v) is before current time %v", t, s.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	ev := &Timer{s: s, at: t, fn: fn}
	s.push(ev)
	return ev
}

// ScheduleFire schedules h.Fire after delay of virtual time as a
// fire-and-forget event: no handle is returned, the event cannot be
// cancelled, and the kernel's event object is recycled after firing, so the
// call is allocation-free in steady state. Ordering rules match Schedule.
func (s *Simulator) ScheduleFire(delay time.Duration, h Handler) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleFire with negative delay %v", delay))
	}
	s.AtFire(s.now+delay, h)
}

// AtFire schedules h.Fire at absolute virtual time t as a fire-and-forget
// event (see ScheduleFire).
func (s *Simulator) AtFire(t time.Duration, h Handler) {
	if t < s.now {
		panic(fmt.Sprintf("sim: AtFire(%v) is before current time %v", t, s.now))
	}
	if h == nil {
		panic("sim: AtFire with nil handler")
	}
	ev := s.free
	if ev == nil {
		ev = &Timer{s: s}
	} else {
		s.free = ev.freeNext
		ev.freeNext = nil
	}
	ev.at = t
	ev.h = h
	ev.fired = false
	ev.cancelled = false
	s.push(ev)
}

// push inserts an event, stamping the FIFO tiebreaker.
func (s *Simulator) push(ev *Timer) {
	ev.seq = s.seq
	s.seq++
	s.live++
	heap.Push(&s.events, ev)
}

// recycle returns a pooled fire-and-forget event to the free list.
func (s *Simulator) recycle(ev *Timer) {
	ev.h = nil
	ev.fn = nil
	ev.index = -1
	ev.freeNext = s.free
	s.free = ev
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed (false means the
// queue is empty).
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*Timer)
		ev.index = -1
		if ev.cancelled {
			// Lazily-deleted entry: it was uncounted at Stop time; drain it.
			continue
		}
		s.now = ev.at
		s.live--
		ev.fired = true
		if h := ev.h; h != nil {
			// Fire-and-forget event: recycle before invoking so the handler
			// can immediately reuse the slot for follow-up events.
			s.recycle(ev)
			h.Fire()
		} else {
			ev.fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to exactly deadline. Events scheduled after the deadline remain
// queued.
func (s *Simulator) RunUntil(deadline time.Duration) {
	for {
		ev := s.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// peek returns the earliest live event without removing it, or nil.
func (s *Simulator) peek() *Timer {
	for len(s.events) > 0 {
		if !s.events[0].cancelled {
			return s.events[0]
		}
		ev := heap.Pop(&s.events).(*Timer)
		ev.index = -1
	}
	return nil
}

// maybeCompact rebuilds the heap without its lazily-deleted entries once
// they outnumber the live ones. Amortized O(1) per Stop: each compaction is
// O(n) but halves the heap, and at least n/2 Stops separate compactions.
func (s *Simulator) maybeCompact() {
	if len(s.events) < compactMinHeap || len(s.events)-s.live <= s.live {
		return
	}
	kept := s.events[:0]
	for _, ev := range s.events {
		if ev.cancelled {
			ev.index = -1
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(s.events); i++ {
		s.events[i] = nil
	}
	s.events = kept
	for i, ev := range s.events {
		ev.index = i
	}
	heap.Init(&s.events)
}

// Timer is a handle to a scheduled event. It can be cancelled before firing
// with Stop and moved to a new deadline — before or after firing — with
// Reschedule.
type Timer struct {
	s         *Simulator
	at        time.Duration
	seq       uint64
	fn        func()
	h         Handler
	index     int // heap index, maintained by eventHeap; -1 when not queued
	cancelled bool
	fired     bool
	freeNext  *Timer // free-list link (pooled fire-and-forget events only)
}

// At returns the virtual time the timer is (or was) scheduled to fire.
func (t *Timer) At() time.Duration { return t.at }

// Stop cancels the timer. It reports whether the cancellation prevented the
// timer from firing (false if it already fired or was already stopped).
// The heap entry is deleted lazily; the callback is retained so the timer
// can be revived with Reschedule.
func (t *Timer) Stop() bool {
	if t.fired || t.cancelled {
		return false
	}
	t.cancelled = true
	t.s.live--
	t.s.maybeCompact()
	return true
}

// Active reports whether the timer is still scheduled to fire.
func (t *Timer) Active() bool { return !t.fired && !t.cancelled }

// Reschedule moves the timer to fire at now+delay, reusing its callback
// and, when possible, its existing heap entry. It works on active timers
// (the entry is moved in place), on stopped ones, and on fired ones (both
// are revived), so periodic timers avoid the Stop+Schedule allocate-per-arm
// churn entirely. Reschedule panics on a negative delay.
func (t *Timer) Reschedule(delay time.Duration) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Reschedule with negative delay %v", delay))
	}
	if t.fn == nil && t.h == nil {
		panic("sim: Reschedule on a timer without a callback")
	}
	s := t.s
	t.at = s.now + delay
	t.seq = s.seq
	s.seq++
	switch {
	case t.index >= 0 && !t.cancelled:
		// Active and queued: move the existing entry.
		heap.Fix(&s.events, t.index)
	case t.index >= 0:
		// Stopped but its lazily-deleted entry still occupies a heap slot:
		// revive it in place.
		t.cancelled = false
		s.live++
		heap.Fix(&s.events, t.index)
	default:
		// Fired, or stopped and already compacted away: reinsert.
		t.cancelled = false
		t.fired = false
		s.live++
		heap.Push(&s.events, t)
	}
	t.fired = false
}

// eventHeap orders timers by (at, seq) so simultaneous events fire in
// scheduling order.
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Timer)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
