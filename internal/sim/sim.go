// Package sim implements a deterministic discrete-event simulation kernel:
// a virtual clock, a hierarchical timing wheel with stable FIFO ordering for
// simultaneous events, cancellable timers, and seeded random-number streams.
//
// Every other substrate (link emulation, TCP endpoints, mobility) is driven
// by a Simulator so that a whole experiment is a single-threaded,
// reproducible computation: the same seed always produces the same packet
// trace.
//
// The scheduler is a four-level timing wheel over tick-quantized virtual
// time (2^20 ns ≈ 1.05 ms per tick at the finest level, each coarser level
// 256× wider). Events keep their exact nanosecond timestamps; the wheel only
// buckets them, and each advance drains the earliest occupied slot into a
// dense, (at, seq)-sorted due batch, so the global fire order is exactly the
// order a comparison-based queue would produce. Insertion, cancellation and
// rescheduling are O(1) — timers live on intrusive per-slot lists and are
// unlinked directly — and the per-tick batches feed RunBatch, the dense
// dispatch loop the hot simulation paths run on.
//
// The kernel is allocation-conscious. Fire-and-forget events scheduled
// through ScheduleFire/AtFire draw their event objects from a per-simulator
// free list and return them after firing, so the per-packet hot path
// (link deliveries) allocates nothing in steady state. Long-lived timers
// avoid Stop+Schedule churn via Timer.Reschedule, which re-slots the timer
// in place — usually without even moving it between wheel slots.
package sim

import (
	"fmt"
	"math/bits"
	"slices"
	"time"

	"repro/internal/telemetry"
)

// Handler is the callback interface of pooled fire-and-forget events
// (ScheduleFire/AtFire). Using a small struct that implements Handler —
// instead of a closure — lets callers pool their callback state and makes
// the schedule/fire path allocation-free.
type Handler interface {
	Fire()
}

// Timing-wheel geometry. The finest tick is 2^tickShift nanoseconds; each of
// the wheelLevels levels spans wheelSlots ticks of the level below, so the
// wheel directly addresses 2^(tickShift+levels*bits) ns ≈ 52 days of virtual
// time. Events beyond that are parked in the farthest top-level slot and
// re-cascade when reached (their exact timestamp lives on the Timer).
const (
	tickShift   = 20 // 2^20 ns ≈ 1.05 ms per finest-level tick
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
)

// Timer placement states, stored in Timer.level: >= 0 is a wheel level.
const (
	timerUnqueued = -1 // fired, stopped, or never scheduled
	timerInDue    = -2 // sitting in the sorted due batch
)

// dueEntry is one slot of the dense due batch: the timers of the tick being
// dispatched, sorted by (at, seq). The gen snapshot detects entries
// invalidated by Stop/Reschedule after the batch was formed; they are
// skipped lazily at dispatch.
type dueEntry struct {
	at  time.Duration
	seq uint64
	gen uint64
	t   *Timer
}

// Simulator owns the virtual clock and the pending event queue. The zero
// value is not usable; create one with New.
type Simulator struct {
	now  time.Duration
	seq  uint64
	live int    // scheduled, not-yet-fired, not-cancelled events
	free *Timer // free list of recycled fire-and-forget events

	// cursor is the wheel's current tick: every event with a due tick at or
	// before it has been moved into the due batch (or fired); everything in
	// the wheel is strictly ahead of it. It can run ahead of now>>tickShift —
	// the clock advances to exact event timestamps, the cursor to drained
	// slot boundaries.
	cursor     int64
	wheelCount int // timers linked into wheel slots
	due        []dueEntry
	dueHead    int  // next due entry to dispatch
	draining   bool // advance() is redistributing a slot (defer due sorting)

	budget    Budget
	executed  int64
	exhausted bool
	selfCheck bool

	// tel is the optional kernel telemetry sink. It is nil by default and
	// every update below is guarded by one nil check, so the disabled path
	// costs a predictable branch and zero allocations.
	tel *telemetry.Kernel

	levelCount [wheelLevels]int
	occupied   [wheelLevels][wheelSlots / 64]uint64
	wheel      [wheelLevels][wheelSlots]*Timer
}

// SetTelemetry attaches a kernel metrics sink (nil detaches). Updates are
// plain integer increments into the caller-owned struct; the kernel never
// allocates for telemetry.
func (s *Simulator) SetTelemetry(k *telemetry.Kernel) { s.tel = k }

// Budget is a runaway-loop guard: it bounds how much work a simulation run
// may do before Step refuses to execute further events. A pathological
// workload (e.g. a fault schedule that provokes a zero-delay reschedule
// loop) then stops gracefully — the clock and queue stay intact and
// Exhausted reports the refusal — instead of spinning forever. Zero fields
// mean unlimited.
type Budget struct {
	// MaxEvents caps the total number of events executed.
	MaxEvents int64
	// MaxVirtualTime refuses events with timestamps beyond this horizon
	// (they remain queued).
	MaxVirtualTime time.Duration
}

// SetBudget installs the run budget and clears any previous exhaustion.
func (s *Simulator) SetBudget(b Budget) {
	s.budget = b
	s.exhausted = false
}

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() int64 { return s.executed }

// Exhausted reports whether the kernel refused to execute an event because
// the budget ran out. Pending events are preserved.
func (s *Simulator) Exhausted() bool { return s.exhausted }

// SetInvariantChecks toggles the kernel's self-check mode: after every
// executed event the clock and live-event counter are verified, and the
// whole wheel (slot placement, occupancy bitmaps, live accounting, due-batch
// ordering) is audited periodically. Violations panic — the mode exists to
// turn silent kernel corruption into an immediate, attributable failure
// during stress campaigns, not to be recovered from.
func (s *Simulator) SetInvariantChecks(on bool) { s.selfCheck = on }

// New returns a Simulator with the clock at zero and no pending events.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Pending returns the number of scheduled, not-yet-fired, not-cancelled
// events. It is O(1): the kernel maintains a live-event counter.
func (s *Simulator) Pending() int { return s.live }

// queuedLen returns the number of physically queued entries — wheel timers
// plus undispatched due entries, including ones invalidated by Stop — for
// diagnostics and tests. Unlike the lazy-deletion heap this kernel replaced,
// stopped timers are unlinked immediately, so queuedLen can only exceed
// Pending by stale due entries of the tick currently being dispatched.
func (s *Simulator) queuedLen() int { return s.wheelCount + len(s.due) - s.dueHead }

// Schedule runs fn after delay of virtual time. A zero delay fires the event
// at the current time but strictly after all previously scheduled events for
// that time (stable FIFO order). Schedule panics on a negative delay: the
// simulation has a single arrow of time and scheduling into the past is
// always a programming error.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at absolute virtual time t (which must not be in the past).
func (s *Simulator) At(t time.Duration, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: At(%v) is before current time %v", t, s.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	ev := &Timer{s: s, at: t, fn: fn, level: timerUnqueued}
	s.push(ev)
	return ev
}

// ScheduleFire schedules h.Fire after delay of virtual time as a
// fire-and-forget event: no handle is returned, the event cannot be
// cancelled, and the kernel's event object is recycled after firing, so the
// call is allocation-free in steady state. Ordering rules match Schedule.
func (s *Simulator) ScheduleFire(delay time.Duration, h Handler) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleFire with negative delay %v", delay))
	}
	s.AtFire(s.now+delay, h)
}

// AtFire schedules h.Fire at absolute virtual time t as a fire-and-forget
// event (see ScheduleFire).
func (s *Simulator) AtFire(t time.Duration, h Handler) {
	if t < s.now {
		panic(fmt.Sprintf("sim: AtFire(%v) is before current time %v", t, s.now))
	}
	if h == nil {
		panic("sim: AtFire with nil handler")
	}
	ev := s.free
	if ev == nil {
		ev = &Timer{s: s, level: timerUnqueued}
		if s.tel != nil {
			s.tel.PoolMisses++
		}
	} else {
		s.free = ev.freeNext
		ev.freeNext = nil
		if s.tel != nil {
			s.tel.PoolHits++
		}
	}
	ev.at = t
	ev.h = h
	ev.fired = false
	ev.cancelled = false
	s.push(ev)
}

// push inserts a new event, stamping the FIFO tiebreaker.
func (s *Simulator) push(ev *Timer) {
	ev.seq = s.seq
	s.seq++
	s.live++
	s.place(ev)
	if s.tel != nil {
		s.tel.Scheduled++
		if d := int64(s.live); d > s.tel.MaxPending {
			s.tel.MaxPending = d
		}
	}
}

// tickOf quantizes a timestamp to a wheel tick.
func tickOf(t time.Duration) int64 { return int64(t) >> tickShift }

// placement returns the wheel coordinates for an event due at dueTick,
// which must be strictly after the cursor. Levels are compared in
// tick-number space shifted to the level's granularity — not by raw tick
// distance — so two events a full rotation apart can never alias into one
// slot. Far-future events park in the farthest top-level slot and re-cascade
// when the cursor reaches it.
func (s *Simulator) placement(dueTick int64) (level, slot int) {
	for l := 0; ; l++ {
		shift := uint(l * wheelBits)
		diff := (dueTick >> shift) - (s.cursor >> shift)
		if diff < wheelSlots || l == wheelLevels-1 {
			if diff > wheelMask {
				diff = wheelMask
			}
			return l, int(((s.cursor >> shift) + diff) & wheelMask)
		}
	}
}

// place files a (seq-stamped) timer: into the due batch when its tick is not
// ahead of the cursor, into a wheel slot otherwise.
func (s *Simulator) place(t *Timer) {
	if tick := tickOf(t.at); tick > s.cursor {
		level, slot := s.placement(tick)
		s.link(t, level, slot)
		return
	}
	s.dueAdd(t)
}

// link puts t at the head of a wheel slot's intrusive list. Order within a
// slot is irrelevant: the slot is sorted by (at, seq) when drained.
func (s *Simulator) link(t *Timer, level, slot int) {
	head := s.wheel[level][slot]
	t.next = head
	t.prev = nil
	if head != nil {
		head.prev = t
	}
	s.wheel[level][slot] = t
	t.level, t.slot = int16(level), int16(slot)
	s.occupied[level][slot>>6] |= 1 << (uint(slot) & 63)
	s.levelCount[level]++
	s.wheelCount++
}

// unlink removes t from its wheel slot in O(1).
func (s *Simulator) unlink(t *Timer) {
	level, slot := int(t.level), int(t.slot)
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		s.wheel[level][slot] = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	}
	t.next, t.prev = nil, nil
	if s.wheel[level][slot] == nil {
		s.occupied[level][slot>>6] &^= 1 << (uint(slot) & 63)
	}
	s.levelCount[level]--
	s.wheelCount--
	t.level = timerUnqueued
}

// dueAdd appends t to the due batch. While a slot is draining the batch is
// sorted once at the end; outside a drain (an event scheduled for the
// current tick, e.g. zero delay) the entry is placed by binary search so the
// batch stays dispatchable in (at, seq) order. The freshly stamped seq is
// larger than every queued one, so equal timestamps land after their elders.
func (s *Simulator) dueAdd(t *Timer) {
	t.level = timerInDue
	e := dueEntry{at: t.at, seq: t.seq, gen: t.gen, t: t}
	if s.draining {
		s.due = append(s.due, e)
		return
	}
	pending := s.due[s.dueHead:]
	i, _ := slices.BinarySearchFunc(pending, e, cmpDue)
	s.due = append(s.due, dueEntry{})
	pos := s.dueHead + i
	copy(s.due[pos+1:], s.due[pos:])
	s.due[pos] = e
}

func cmpDue(a, b dueEntry) int {
	switch {
	case a.at != b.at:
		if a.at < b.at {
			return -1
		}
		return 1
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	}
	return 0
}

// nextOccupied returns the circular distance (>= lo) from slot `from` to the
// nearest occupied slot on level l, or -1 when the level is empty in that
// range. The occupancy bitmaps make this a handful of word scans.
func (s *Simulator) nextOccupied(l, from, lo int) int {
	occ := &s.occupied[l]
	start := (from + lo) & wheelMask
	if w := occ[start>>6] >> (uint(start) & 63); w != 0 {
		return (start + bits.TrailingZeros64(w) - from) & wheelMask
	}
	for i := 1; i <= wheelSlots/64; i++ {
		idx := ((start >> 6) + i) & (wheelSlots/64 - 1)
		if w := occ[idx]; w != 0 {
			return (idx<<6 + bits.TrailingZeros64(w) - from) & wheelMask
		}
	}
	return -1
}

// advance moves the cursor to the earliest occupied slot boundary and drains
// every slot that begins there, top level first: coarse slots redistribute
// into finer ones (a cascade), finest-level and current-tick events join the
// due batch, which is then sorted into dispatch order.
func (s *Simulator) advance() {
	best := int64(-1)
	for l := wheelLevels - 1; l >= 0; l-- {
		if s.levelCount[l] == 0 {
			continue
		}
		shift := uint(l * wheelBits)
		coarse := s.cursor >> shift
		lo := 1
		if l == 0 {
			// The cursor's own finest slot can hold events placed before a
			// coarse jump landed exactly on it; distance 0 finds them.
			lo = 0
		}
		d := s.nextOccupied(l, int(coarse&wheelMask), lo)
		if d < 0 {
			continue
		}
		if base := (coarse + int64(d)) << shift; best < 0 || base < best {
			best = base
		}
	}
	if best < 0 {
		panic("sim: internal: advance on an empty wheel")
	}
	s.cursor = best
	s.draining = true
	var maxSlot int
	for l := wheelLevels - 1; l >= 0; l-- {
		shift := uint(l * wheelBits)
		slot := int((s.cursor >> shift) & wheelMask)
		head := s.wheel[l][slot]
		if head == nil {
			continue
		}
		// A non-empty slot at the cursor's own coordinates always begins at
		// the cursor (coarse levels only become current via an aligned jump),
		// so everything in it is due for redistribution now.
		s.wheel[l][slot] = nil
		s.occupied[l][slot>>6] &^= 1 << (uint(slot) & 63)
		n := 0
		for t := head; t != nil; {
			next := t.next
			t.next, t.prev = nil, nil
			t.level = timerUnqueued
			n++
			s.place(t)
			t = next
		}
		s.levelCount[l] -= n
		s.wheelCount -= n
		if n > maxSlot {
			maxSlot = n
		}
		if s.tel != nil && l > 0 {
			s.tel.Cascades += int64(n)
		}
	}
	s.draining = false
	if len(s.due) > 1 {
		slices.SortFunc(s.due, cmpDue)
	}
	if s.tel != nil {
		if int64(maxSlot) > s.tel.MaxSlot {
			s.tel.MaxSlot = int64(maxSlot)
		}
		if n := int64(len(s.due)); n > 0 {
			s.tel.Batches++
			s.tel.BatchEvents += n
			if n > s.tel.MaxBatch {
				s.tel.MaxBatch = n
			}
		}
	}
}

// refill returns the earliest live event without consuming it, advancing the
// wheel as needed, or nil when the queue is empty. Stale due entries
// (stopped or rescheduled after the batch formed) are skipped here.
func (s *Simulator) refill() *Timer {
	for {
		for s.dueHead < len(s.due) {
			e := &s.due[s.dueHead]
			if e.t.gen == e.gen {
				return e.t
			}
			s.dueHead++
		}
		if s.dueHead > 0 {
			s.due = s.due[:0]
			s.dueHead = 0
		}
		if s.wheelCount == 0 {
			return nil
		}
		s.advance()
	}
}

// fire executes one event, advancing the clock to its timestamp.
func (s *Simulator) fire(t *Timer) {
	t.gen++
	t.level = timerUnqueued
	s.now = t.at
	s.live--
	s.executed++
	if s.tel != nil {
		s.tel.Events++
	}
	t.fired = true
	if h := t.h; h != nil {
		// Fire-and-forget event: recycle before invoking so the handler
		// can immediately reuse the slot for follow-up events.
		s.recycle(t)
		h.Fire()
	} else {
		t.fn()
	}
	if s.selfCheck {
		s.checkInvariants()
	}
}

// refuses reports (and records) whether the budget refuses to execute an
// event with timestamp at.
func (s *Simulator) refuses(at time.Duration) bool {
	if s.budget.MaxEvents > 0 && s.executed >= s.budget.MaxEvents {
		s.exhausted = true
		return true
	}
	if s.budget.MaxVirtualTime > 0 && at > s.budget.MaxVirtualTime {
		s.exhausted = true
		return true
	}
	return false
}

// recycle returns a pooled fire-and-forget event to the free list.
func (s *Simulator) recycle(ev *Timer) {
	ev.h = nil
	ev.fn = nil
	ev.freeNext = s.free
	s.free = ev
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed (false means the
// queue is empty, or the run budget is exhausted — see Exhausted).
func (s *Simulator) Step() bool {
	t := s.refill()
	if t == nil {
		return false
	}
	if s.refuses(t.at) {
		return false
	}
	s.dueHead++
	s.fire(t)
	return true
}

// RunBatch executes the next dense batch of due events — one wheel tick's
// worth, in (at, seq) order, including events their handlers schedule back
// into the same tick — and returns how many fired. Zero means the queue is
// empty or the budget refused (see Exhausted). The batch loop dispatches
// straight off the sorted due array, so per-event scheduling overhead is a
// bounds check and a generation compare; Run is a loop over RunBatch.
func (s *Simulator) RunBatch() int {
	if s.refill() == nil {
		return 0
	}
	n := 0
	for s.dueHead < len(s.due) {
		e := &s.due[s.dueHead]
		t := e.t
		if t.gen != e.gen {
			s.dueHead++
			continue
		}
		if s.refuses(t.at) {
			break
		}
		s.dueHead++
		s.fire(t)
		n++
	}
	return n
}

// Run executes events until the queue is empty or the budget is exhausted.
func (s *Simulator) Run() {
	for s.RunBatch() > 0 {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to exactly deadline. Events scheduled after the deadline remain
// queued. An exhausted budget stops the run early without advancing the
// clock past the last executed event.
func (s *Simulator) RunUntil(deadline time.Duration) {
	for {
		t := s.refill()
		if t == nil || t.at > deadline {
			break
		}
		if s.refuses(t.at) {
			return // budget exhausted; leave the clock where it stopped
		}
		s.dueHead++
		s.fire(t)
	}
	if s.now < deadline {
		s.now = deadline
	}
	if s.wheelCount == 0 && s.dueHead >= len(s.due) {
		// Nothing queued: fast-forward the cursor so post-deadline schedules
		// slot at fine granularity instead of cascading up from tick zero.
		s.cursor = tickOf(s.now)
	}
}

// invariantAuditPeriod is how many executed events separate full-wheel
// audits in self-check mode; the cheap per-event checks run every Step.
const invariantAuditPeriod = 4096

// checkInvariants verifies kernel state in self-check mode. Every event it
// bounds the live counter; every invariantAuditPeriod events it audits the
// whole wheel: slot placement, occupancy bitmaps, level counters, due-batch
// ordering, live accounting, and that no queued event predates the clock.
func (s *Simulator) checkInvariants() {
	if s.live < 0 || s.live > s.queuedLen() {
		panic(fmt.Sprintf("sim: invariant violation: live counter %d outside [0, %d]", s.live, s.queuedLen()))
	}
	if s.executed%invariantAuditPeriod != 0 {
		return
	}
	live := 0
	for l := 0; l < wheelLevels; l++ {
		shift := uint(l * wheelBits)
		count := 0
		for slot := 0; slot < wheelSlots; slot++ {
			n := 0
			for t := s.wheel[l][slot]; t != nil; t = t.next {
				n++
				if t.cancelled || t.fired {
					panic(fmt.Sprintf("sim: invariant violation: dead timer linked at level %d slot %d", l, slot))
				}
				if int(t.level) != l || int(t.slot) != slot {
					panic(fmt.Sprintf("sim: invariant violation: timer coordinates (%d,%d) linked at (%d,%d)", t.level, t.slot, l, slot))
				}
				tick := tickOf(t.at)
				if tick <= s.cursor {
					panic(fmt.Sprintf("sim: invariant violation: wheel timer due tick %d not ahead of cursor %d", tick, s.cursor))
				}
				if t.at < s.now {
					panic(fmt.Sprintf("sim: invariant violation: live event at %v predates clock %v", t.at, s.now))
				}
				if l < wheelLevels-1 && int((tick>>shift)&wheelMask) != slot {
					panic(fmt.Sprintf("sim: invariant violation: due tick %d misfiled in level %d slot %d", tick, l, slot))
				}
				live++
			}
			if occupied := s.occupied[l][slot>>6]&(1<<(uint(slot)&63)) != 0; occupied != (n > 0) {
				panic(fmt.Sprintf("sim: invariant violation: occupancy bit for level %d slot %d is %v with %d timers", l, slot, occupied, n))
			}
			count += n
		}
		if count != s.levelCount[l] {
			panic(fmt.Sprintf("sim: invariant violation: level %d counter %d but %d timers linked", l, s.levelCount[l], count))
		}
	}
	prev := -1
	for i := s.dueHead; i < len(s.due); i++ {
		e := &s.due[i]
		if prev >= 0 && cmpDue(s.due[prev], *e) > 0 {
			panic(fmt.Sprintf("sim: invariant violation: due batch order broken between entries %d and %d", prev, i))
		}
		prev = i
		if e.t.gen != e.gen {
			continue // stale: invalidated by Stop/Reschedule
		}
		if e.at < s.now {
			panic(fmt.Sprintf("sim: invariant violation: due event at %v predates clock %v", e.at, s.now))
		}
		live++
	}
	if live != s.live {
		panic(fmt.Sprintf("sim: invariant violation: live counter %d but %d live events queued", s.live, live))
	}
}

// Timer is a handle to a scheduled event. It can be cancelled before firing
// with Stop and moved to a new deadline — before or after firing — with
// Reschedule.
type Timer struct {
	s          *Simulator
	at         time.Duration
	seq        uint64
	gen        uint64 // bumped on every placement change; validates due entries
	fn         func()
	h          Handler
	next, prev *Timer // intrusive wheel-slot list links
	level      int16  // wheel level, timerInDue, or timerUnqueued
	slot       int16
	cancelled  bool
	fired      bool
	freeNext   *Timer // free-list link (pooled fire-and-forget events only)
}

// At returns the virtual time the timer is (or was) scheduled to fire.
func (t *Timer) At() time.Duration { return t.at }

// Stop cancels the timer. It reports whether the cancellation prevented the
// timer from firing (false if it already fired or was already stopped).
// Cancellation is O(1): a wheel timer is unlinked from its slot directly, a
// due-batch entry is invalidated and skipped at dispatch. The callback is
// retained so the timer can be revived with Reschedule.
func (t *Timer) Stop() bool {
	if t.fired || t.cancelled {
		return false
	}
	t.cancelled = true
	s := t.s
	s.live--
	if s.tel != nil {
		s.tel.TimerStops++
	}
	if t.level >= 0 {
		s.unlink(t)
	} else if t.level == timerInDue {
		t.gen++
		t.level = timerUnqueued
	}
	return true
}

// Active reports whether the timer is still scheduled to fire.
func (t *Timer) Active() bool { return !t.fired && !t.cancelled }

// Reschedule moves the timer to fire at now+delay, reusing its callback and
// its kernel state. It works on active timers (re-slotted in place — when
// the new deadline maps to the timer's current wheel slot not even that),
// on stopped ones, and on fired ones (both are revived), so periodic timers
// avoid the Stop+Schedule allocate-per-arm churn entirely. Reschedule panics
// on a negative delay.
func (t *Timer) Reschedule(delay time.Duration) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Reschedule with negative delay %v", delay))
	}
	if t.fn == nil && t.h == nil {
		panic("sim: Reschedule on a timer without a callback")
	}
	s := t.s
	t.at = s.now + delay
	t.seq = s.seq
	s.seq++
	if s.tel != nil {
		s.tel.TimerReschedules++
	}
	switch {
	case t.fired || t.cancelled:
		// Revive: fire/Stop left the timer unqueued.
		t.fired = false
		t.cancelled = false
		s.live++
		if s.tel != nil && int64(s.live) > s.tel.MaxPending {
			s.tel.MaxPending = int64(s.live)
		}
		s.place(t)
	case t.level == timerInDue:
		// Invalidate the sorted entry and re-place under the new stamp.
		t.gen++
		s.place(t)
	default:
		// Active in a wheel slot: skip the relink when the new deadline
		// lands in the same slot (the common per-ACK RTO rearm).
		if tick := tickOf(t.at); tick > s.cursor {
			if level, slot := s.placement(tick); level == int(t.level) && slot == int(t.slot) {
				if s.tel != nil {
					s.tel.RearmsInPlace++
				}
				return
			}
		}
		s.unlink(t)
		s.place(t)
	}
}
