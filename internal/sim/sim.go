// Package sim implements a deterministic discrete-event simulation kernel:
// a virtual clock, an event heap with stable FIFO ordering for simultaneous
// events, cancellable timers, and seeded random-number streams.
//
// Every other substrate (link emulation, TCP endpoints, mobility) is driven
// by a Simulator so that a whole experiment is a single-threaded,
// reproducible computation: the same seed always produces the same packet
// trace.
//
// The kernel is allocation-conscious. Fire-and-forget events scheduled
// through ScheduleFire/AtFire draw their event objects from a per-simulator
// free list and return them after firing, so the per-packet hot path
// (link deliveries) allocates nothing in steady state. Cancelled timers are
// removed lazily: Stop only marks the entry dead, and the heap is compacted
// once dead entries outnumber live ones, so cancel-heavy workloads (RTO
// timers that almost never fire) stay O(live) rather than accumulating
// garbage until the dead entries' deadlines pass. Long-lived timers avoid
// the Stop+Schedule churn entirely via Timer.Reschedule, which moves the
// existing heap entry in place.
package sim

import (
	"container/heap"
	"fmt"
	"time"

	"repro/internal/telemetry"
)

// Handler is the callback interface of pooled fire-and-forget events
// (ScheduleFire/AtFire). Using a small struct that implements Handler —
// instead of a closure — lets callers pool their callback state and makes
// the schedule/fire path allocation-free.
type Handler interface {
	Fire()
}

// compactMinHeap is the heap size below which lazy-deletion compaction is
// not worth the bookkeeping.
const compactMinHeap = 64

// Simulator owns the virtual clock and the pending event queue. The zero
// value is not usable; create one with New.
type Simulator struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	live   int    // non-cancelled entries currently in the heap
	free   *Timer // free list of recycled fire-and-forget events

	budget    Budget
	executed  int64
	exhausted bool
	selfCheck bool

	// tel is the optional kernel telemetry sink. It is nil by default and
	// every update below is guarded by one nil check, so the disabled path
	// costs a predictable branch and zero allocations.
	tel *telemetry.Kernel
}

// SetTelemetry attaches a kernel metrics sink (nil detaches). Updates are
// plain integer increments into the caller-owned struct; the kernel never
// allocates for telemetry.
func (s *Simulator) SetTelemetry(k *telemetry.Kernel) { s.tel = k }

// Budget is a runaway-loop guard: it bounds how much work a simulation run
// may do before Step refuses to execute further events. A pathological
// workload (e.g. a fault schedule that provokes a zero-delay reschedule
// loop) then stops gracefully — the clock and queue stay intact and
// Exhausted reports the refusal — instead of spinning forever. Zero fields
// mean unlimited.
type Budget struct {
	// MaxEvents caps the total number of events executed.
	MaxEvents int64
	// MaxVirtualTime refuses events with timestamps beyond this horizon
	// (they remain queued).
	MaxVirtualTime time.Duration
}

// SetBudget installs the run budget and clears any previous exhaustion.
func (s *Simulator) SetBudget(b Budget) {
	s.budget = b
	s.exhausted = false
}

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() int64 { return s.executed }

// Exhausted reports whether the kernel refused to execute an event because
// the budget ran out. Pending events are preserved.
func (s *Simulator) Exhausted() bool { return s.exhausted }

// SetInvariantChecks toggles the kernel's self-check mode: after every
// executed event the clock and live-event counter are verified, and the
// whole heap (ordering, index fields, live accounting) is audited
// periodically. Violations panic — the mode exists to turn silent kernel
// corruption into an immediate, attributable failure during stress
// campaigns, not to be recovered from.
func (s *Simulator) SetInvariantChecks(on bool) { s.selfCheck = on }

// New returns a Simulator with the clock at zero and no pending events.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Pending returns the number of scheduled, not-yet-fired, not-cancelled
// events. It is O(1): the kernel maintains a live-event counter.
func (s *Simulator) Pending() int { return s.live }

// heapLen returns the raw heap size including lazily-deleted entries
// (diagnostics and tests).
func (s *Simulator) heapLen() int { return len(s.events) }

// Schedule runs fn after delay of virtual time. A zero delay fires the event
// at the current time but strictly after all previously scheduled events for
// that time (stable FIFO order). Schedule panics on a negative delay: the
// simulation has a single arrow of time and scheduling into the past is
// always a programming error.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at absolute virtual time t (which must not be in the past).
func (s *Simulator) At(t time.Duration, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: At(%v) is before current time %v", t, s.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	ev := &Timer{s: s, at: t, fn: fn}
	s.push(ev)
	return ev
}

// ScheduleFire schedules h.Fire after delay of virtual time as a
// fire-and-forget event: no handle is returned, the event cannot be
// cancelled, and the kernel's event object is recycled after firing, so the
// call is allocation-free in steady state. Ordering rules match Schedule.
func (s *Simulator) ScheduleFire(delay time.Duration, h Handler) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleFire with negative delay %v", delay))
	}
	s.AtFire(s.now+delay, h)
}

// AtFire schedules h.Fire at absolute virtual time t as a fire-and-forget
// event (see ScheduleFire).
func (s *Simulator) AtFire(t time.Duration, h Handler) {
	if t < s.now {
		panic(fmt.Sprintf("sim: AtFire(%v) is before current time %v", t, s.now))
	}
	if h == nil {
		panic("sim: AtFire with nil handler")
	}
	ev := s.free
	if ev == nil {
		ev = &Timer{s: s}
		if s.tel != nil {
			s.tel.PoolMisses++
		}
	} else {
		s.free = ev.freeNext
		ev.freeNext = nil
		if s.tel != nil {
			s.tel.PoolHits++
		}
	}
	ev.at = t
	ev.h = h
	ev.fired = false
	ev.cancelled = false
	s.push(ev)
}

// push inserts an event, stamping the FIFO tiebreaker.
func (s *Simulator) push(ev *Timer) {
	ev.seq = s.seq
	s.seq++
	s.live++
	heap.Push(&s.events, ev)
	if s.tel != nil {
		s.tel.Scheduled++
		if d := int64(len(s.events)); d > s.tel.MaxHeapDepth {
			s.tel.MaxHeapDepth = d
		}
	}
}

// recycle returns a pooled fire-and-forget event to the free list.
func (s *Simulator) recycle(ev *Timer) {
	ev.h = nil
	ev.fn = nil
	ev.index = -1
	ev.freeNext = s.free
	s.free = ev
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed (false means the
// queue is empty, or the run budget is exhausted — see Exhausted).
func (s *Simulator) Step() bool {
	ev := s.peek() // drains lazily-deleted entries off the top
	if ev == nil {
		return false
	}
	if s.budget.MaxEvents > 0 && s.executed >= s.budget.MaxEvents {
		s.exhausted = true
		return false
	}
	if s.budget.MaxVirtualTime > 0 && ev.at > s.budget.MaxVirtualTime {
		s.exhausted = true
		return false
	}
	heap.Pop(&s.events)
	ev.index = -1
	s.now = ev.at
	s.live--
	s.executed++
	if s.tel != nil {
		s.tel.Events++
	}
	ev.fired = true
	if h := ev.h; h != nil {
		// Fire-and-forget event: recycle before invoking so the handler
		// can immediately reuse the slot for follow-up events.
		s.recycle(ev)
		h.Fire()
	} else {
		ev.fn()
	}
	if s.selfCheck {
		s.checkInvariants()
	}
	return true
}

// Run executes events until the queue is empty or the budget is exhausted.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to exactly deadline. Events scheduled after the deadline remain
// queued. An exhausted budget stops the run early without advancing the
// clock past the last executed event.
func (s *Simulator) RunUntil(deadline time.Duration) {
	for {
		ev := s.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		if !s.Step() {
			return // budget exhausted; leave the clock where it stopped
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// invariantAuditPeriod is how many executed events separate full-heap
// audits in self-check mode; the cheap per-event checks run every Step.
const invariantAuditPeriod = 4096

// checkInvariants verifies kernel state in self-check mode. Every event it
// bounds the live counter; every invariantAuditPeriod events it audits the
// whole heap: index fields, (at, seq) heap ordering, live accounting, and
// that no queued event predates the clock.
func (s *Simulator) checkInvariants() {
	if s.live < 0 || s.live > len(s.events) {
		panic(fmt.Sprintf("sim: invariant violation: live counter %d outside [0, %d]", s.live, len(s.events)))
	}
	if s.executed%invariantAuditPeriod != 0 {
		return
	}
	live := 0
	for i, ev := range s.events {
		if ev.index != i {
			panic(fmt.Sprintf("sim: invariant violation: event at heap slot %d has index %d", i, ev.index))
		}
		if !ev.cancelled {
			live++
			if ev.at < s.now {
				panic(fmt.Sprintf("sim: invariant violation: live event at %v predates clock %v", ev.at, s.now))
			}
		}
		if parent := (i - 1) / 2; i > 0 && s.events.Less(i, parent) {
			panic(fmt.Sprintf("sim: invariant violation: heap order broken between slots %d and %d", parent, i))
		}
	}
	if live != s.live {
		panic(fmt.Sprintf("sim: invariant violation: live counter %d but %d live events queued", s.live, live))
	}
}

// peek returns the earliest live event without removing it, or nil.
func (s *Simulator) peek() *Timer {
	for len(s.events) > 0 {
		if !s.events[0].cancelled {
			return s.events[0]
		}
		ev := heap.Pop(&s.events).(*Timer)
		ev.index = -1
	}
	return nil
}

// maybeCompact rebuilds the heap without its lazily-deleted entries once
// they outnumber the live ones. Amortized O(1) per Stop: each compaction is
// O(n) but halves the heap, and at least n/2 Stops separate compactions.
func (s *Simulator) maybeCompact() {
	if len(s.events) < compactMinHeap || len(s.events)-s.live <= s.live {
		return
	}
	if s.tel != nil {
		s.tel.Compactions++
	}
	kept := s.events[:0]
	for _, ev := range s.events {
		if ev.cancelled {
			ev.index = -1
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(s.events); i++ {
		s.events[i] = nil
	}
	s.events = kept
	for i, ev := range s.events {
		ev.index = i
	}
	heap.Init(&s.events)
}

// Timer is a handle to a scheduled event. It can be cancelled before firing
// with Stop and moved to a new deadline — before or after firing — with
// Reschedule.
type Timer struct {
	s         *Simulator
	at        time.Duration
	seq       uint64
	fn        func()
	h         Handler
	index     int // heap index, maintained by eventHeap; -1 when not queued
	cancelled bool
	fired     bool
	freeNext  *Timer // free-list link (pooled fire-and-forget events only)
}

// At returns the virtual time the timer is (or was) scheduled to fire.
func (t *Timer) At() time.Duration { return t.at }

// Stop cancels the timer. It reports whether the cancellation prevented the
// timer from firing (false if it already fired or was already stopped).
// The heap entry is deleted lazily; the callback is retained so the timer
// can be revived with Reschedule.
func (t *Timer) Stop() bool {
	if t.fired || t.cancelled {
		return false
	}
	t.cancelled = true
	t.s.live--
	if t.s.tel != nil {
		t.s.tel.TimerStops++
	}
	t.s.maybeCompact()
	return true
}

// Active reports whether the timer is still scheduled to fire.
func (t *Timer) Active() bool { return !t.fired && !t.cancelled }

// Reschedule moves the timer to fire at now+delay, reusing its callback
// and, when possible, its existing heap entry. It works on active timers
// (the entry is moved in place), on stopped ones, and on fired ones (both
// are revived), so periodic timers avoid the Stop+Schedule allocate-per-arm
// churn entirely. Reschedule panics on a negative delay.
func (t *Timer) Reschedule(delay time.Duration) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Reschedule with negative delay %v", delay))
	}
	if t.fn == nil && t.h == nil {
		panic("sim: Reschedule on a timer without a callback")
	}
	s := t.s
	t.at = s.now + delay
	t.seq = s.seq
	s.seq++
	if s.tel != nil {
		s.tel.TimerReschedules++
	}
	switch {
	case t.index >= 0 && !t.cancelled:
		// Active and queued: move the existing entry.
		heap.Fix(&s.events, t.index)
	case t.index >= 0:
		// Stopped but its lazily-deleted entry still occupies a heap slot:
		// revive it in place.
		t.cancelled = false
		s.live++
		heap.Fix(&s.events, t.index)
	default:
		// Fired, or stopped and already compacted away: reinsert.
		t.cancelled = false
		t.fired = false
		s.live++
		heap.Push(&s.events, t)
	}
	t.fired = false
}

// eventHeap orders timers by (at, seq) so simultaneous events fire in
// scheduling order.
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Timer)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
