// Package sim implements a deterministic discrete-event simulation kernel:
// a virtual clock, an event heap with stable FIFO ordering for simultaneous
// events, cancellable timers, and seeded random-number streams.
//
// Every other substrate (link emulation, TCP endpoints, mobility) is driven
// by a Simulator so that a whole experiment is a single-threaded,
// reproducible computation: the same seed always produces the same packet
// trace.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Simulator owns the virtual clock and the pending event queue. The zero
// value is not usable; create one with New.
type Simulator struct {
	now    time.Duration
	events eventHeap
	seq    uint64
}

// New returns a Simulator with the clock at zero and no pending events.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Pending returns the number of scheduled, not-yet-fired, not-cancelled
// events.
func (s *Simulator) Pending() int {
	n := 0
	for _, ev := range s.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Schedule runs fn after delay of virtual time. A zero delay fires the event
// at the current time but strictly after all previously scheduled events for
// that time (stable FIFO order). Schedule panics on a negative delay: the
// simulation has a single arrow of time and scheduling into the past is
// always a programming error.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at absolute virtual time t (which must not be in the past).
func (s *Simulator) At(t time.Duration, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: At(%v) is before current time %v", t, s.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	ev := &Timer{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return ev
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed (false means the
// queue is empty).
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*Timer)
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		ev.fired = true
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to exactly deadline. Events scheduled after the deadline remain
// queued.
func (s *Simulator) RunUntil(deadline time.Duration) {
	for {
		ev := s.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// peek returns the earliest live event without removing it, or nil.
func (s *Simulator) peek() *Timer {
	for len(s.events) > 0 {
		if !s.events[0].cancelled {
			return s.events[0]
		}
		heap.Pop(&s.events)
	}
	return nil
}

// Timer is a handle to a scheduled event. It can be cancelled before firing.
type Timer struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int // heap index, maintained by eventHeap
	cancelled bool
	fired     bool
}

// At returns the virtual time the timer is (or was) scheduled to fire.
func (t *Timer) At() time.Duration { return t.at }

// Stop cancels the timer. It reports whether the cancellation prevented the
// timer from firing (false if it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t.fired || t.cancelled {
		return false
	}
	t.cancelled = true
	t.fn = nil // release references for GC
	return true
}

// Active reports whether the timer is still scheduled to fire.
func (t *Timer) Active() bool { return !t.fired && !t.cancelled }

// eventHeap orders timers by (at, seq) so simultaneous events fire in
// scheduling order.
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Timer)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
