package sim

// Differential testing of the timing-wheel kernel against a comparison-based
// reference scheduler. The reference is the binary heap the wheel replaced,
// reduced to its ordering essence: a (at, seq) min-heap with lazy deletion.
// Both kernels consume the same randomized schedule of operations —
// Schedule/ScheduleFire (including zero delays and handler-chained events),
// Stop, Reschedule, Step, RunBatch, RunUntil, and budget exhaustion — and
// must produce the identical global fire order and identical accounting.
// Any wheel bug that reorders, drops, duplicates, or resurrects an event
// shows up as a log divergence.

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refEvent is one schedulable event in the reference model.
type refEvent struct {
	at        time.Duration
	seq       uint64
	gen       uint64 // bumped on Stop/Reschedule; validates heap entries
	id        int
	fired     bool
	cancelled bool
}

// refEntry is a heap cell; stale cells (gen mismatch) are skipped at pop.
type refEntry struct {
	at  time.Duration
	seq uint64
	gen uint64
	e   *refEvent
}

type refHeap []refEntry

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEntry)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// refSched is the reference scheduler: same public semantics as Simulator,
// implemented the obviously-correct way.
type refSched struct {
	now       time.Duration
	seq       uint64
	live      int
	h         refHeap
	budget    Budget
	executed  int64
	exhausted bool
	fire      func(*refEvent) // harness hook: logs and chain-schedules
}

func (r *refSched) push(e *refEvent) {
	e.seq = r.seq
	r.seq++
	r.live++
	heap.Push(&r.h, refEntry{at: e.at, seq: e.seq, gen: e.gen, e: e})
}

func (r *refSched) schedule(delay time.Duration, id int) *refEvent {
	e := &refEvent{at: r.now + delay, id: id}
	r.push(e)
	return e
}

func (r *refSched) stop(e *refEvent) bool {
	if e.fired || e.cancelled {
		return false
	}
	e.cancelled = true
	e.gen++
	r.live--
	return true
}

func (r *refSched) reschedule(e *refEvent, delay time.Duration) {
	e.at = r.now + delay
	e.gen++
	if e.fired || e.cancelled {
		e.fired, e.cancelled = false, false
		r.live++
	}
	e.seq = r.seq
	r.seq++
	heap.Push(&r.h, refEntry{at: e.at, seq: e.seq, gen: e.gen, e: e})
}

// peek returns the earliest live event without consuming it, or nil.
func (r *refSched) peek() *refEvent {
	for len(r.h) > 0 {
		top := r.h[0]
		if top.e.gen == top.gen {
			return top.e
		}
		heap.Pop(&r.h)
	}
	return nil
}

func (r *refSched) refuses(at time.Duration) bool {
	if r.budget.MaxEvents > 0 && r.executed >= r.budget.MaxEvents {
		r.exhausted = true
		return true
	}
	if r.budget.MaxVirtualTime > 0 && at > r.budget.MaxVirtualTime {
		r.exhausted = true
		return true
	}
	return false
}

func (r *refSched) step() bool {
	e := r.peek()
	if e == nil {
		return false
	}
	if r.refuses(e.at) {
		return false
	}
	heap.Pop(&r.h)
	e.gen++
	e.fired = true
	r.now = e.at
	r.live--
	r.executed++
	r.fire(e)
	return true
}

func (r *refSched) run() {
	for r.step() {
	}
}

func (r *refSched) runUntil(deadline time.Duration) {
	for {
		e := r.peek()
		if e == nil || e.at > deadline {
			break
		}
		if r.refuses(e.at) {
			return
		}
		heap.Pop(&r.h)
		e.gen++
		e.fired = true
		r.now = e.at
		r.live--
		r.executed++
		r.fire(e)
	}
	if r.now < deadline {
		r.now = deadline
	}
}

// fireRec is one entry of a fire log: which event fired and when.
type fireRec struct {
	id int
	at time.Duration
}

// fireLogger implements Handler for the wheel side's fire-and-forget events.
type fireLogger struct {
	h  *diffHarness
	id int
}

func (f *fireLogger) Fire() { f.h.realFired(f.id) }

// diffHarness drives the wheel kernel and the reference scheduler through
// one operation schedule and collects both fire logs.
type diffHarness struct {
	t *testing.T

	s *Simulator
	r *refSched

	// Stoppable timers, parallel by index. Fire-and-forget events are not
	// listed: they have no handle.
	realTimers []*Timer
	refEvents  []*refEvent

	realLog []fireRec
	refLog  []fireRec

	// Per-side chain state: fired events with id%3==0 schedule a follow-up
	// while chain budget remains, exercising scheduling from inside dispatch
	// (including zero delays into the tick being drained).
	realChain, refChain   int
	realNextID, refNextID int
}

// chainDelay derives a deterministic follow-up delay from the firing event's
// id; id%5==0 yields zero (a same-tick event born mid-batch).
func chainDelay(id int) time.Duration {
	return time.Duration(id%5) * 300 * time.Microsecond
}

func (h *diffHarness) realFired(id int) {
	h.realLog = append(h.realLog, fireRec{id: id, at: h.s.Now()})
	if id%3 == 0 && h.realChain > 0 {
		h.realChain--
		nid := h.realNextID
		h.realNextID++
		tm := h.s.Schedule(chainDelay(id), func() { h.realFired(nid) })
		h.realTimers = append(h.realTimers, tm)
	}
}

func (h *diffHarness) refFired(e *refEvent) {
	h.refLog = append(h.refLog, fireRec{id: e.id, at: h.r.now})
	if e.id%3 == 0 && h.refChain > 0 {
		h.refChain--
		nid := h.refNextID
		h.refNextID++
		h.refEvents = append(h.refEvents, h.r.schedule(chainDelay(e.id), nid))
	}
}

// checkState compares the cheap invariants after every op so a divergence is
// attributed to the op that introduced it, not to the final drain.
func (h *diffHarness) checkState(op string) {
	h.t.Helper()
	if h.s.Pending() != h.r.live {
		h.t.Fatalf("after %s: Pending() = %d, reference = %d", op, h.s.Pending(), h.r.live)
	}
	if h.s.Now() != h.r.now {
		h.t.Fatalf("after %s: Now() = %v, reference = %v", op, h.s.Now(), h.r.now)
	}
	if h.s.Executed() != h.r.executed {
		h.t.Fatalf("after %s: Executed() = %d, reference = %d", op, h.s.Executed(), h.r.executed)
	}
	if h.s.Exhausted() != h.r.exhausted {
		h.t.Fatalf("after %s: Exhausted() = %v, reference = %v", op, h.s.Exhausted(), h.r.exhausted)
	}
	if len(h.realLog) != len(h.refLog) {
		h.t.Fatalf("after %s: %d fires on wheel, %d on reference", op, len(h.realLog), len(h.refLog))
	}
}

func (h *diffHarness) checkLogs() {
	h.t.Helper()
	n := len(h.realLog)
	if len(h.refLog) < n {
		n = len(h.refLog)
	}
	for i := 0; i < n; i++ {
		if h.realLog[i] != h.refLog[i] {
			h.t.Fatalf("fire %d diverged: wheel fired id=%d at %v, reference id=%d at %v",
				i, h.realLog[i].id, h.realLog[i].at, h.refLog[i].id, h.refLog[i].at)
		}
	}
	if len(h.realLog) != len(h.refLog) {
		h.t.Fatalf("fire counts diverged: wheel %d, reference %d", len(h.realLog), len(h.refLog))
	}
}

// decodeDelay maps two schedule bytes to a delay spanning several wheel
// levels: the common case stays within the finest two levels (up to ~5.7 s),
// and every seventh value is stretched ~4096x to land in the coarse levels
// and force multi-hop cascades.
func decodeDelay(hi, lo byte) time.Duration {
	v := int64(hi)<<8 | int64(lo)
	d := time.Duration(v) * 87 * time.Microsecond
	if v%7 == 0 {
		d *= 4096
	}
	return d
}

// runDifferential interprets ops as an operation schedule against both
// kernels. It is the shared body of the seeded randomized test and the fuzz
// target.
func runDifferential(t *testing.T, ops []byte) {
	if len(ops) > 4096 {
		ops = ops[:4096]
	}
	h := &diffHarness{
		t:         t,
		s:         New(),
		realChain: 256,
		refChain:  256,
	}
	h.r = &refSched{fire: h.refFired}
	h.s.SetInvariantChecks(true)

	i := 0
	next := func() byte {
		if i < len(ops) {
			b := ops[i]
			i++
			return b
		}
		return 0
	}
	for i < len(ops) {
		op := next()
		switch op % 9 {
		case 0: // Schedule a stoppable timer
			d := decodeDelay(next(), next())
			id := h.realNextID
			h.realNextID++
			tm := h.s.Schedule(d, func() { h.realFired(id) })
			h.realTimers = append(h.realTimers, tm)
			rid := h.refNextID
			h.refNextID++
			h.refEvents = append(h.refEvents, h.r.schedule(d, rid))
			h.checkState("schedule")
		case 1: // ScheduleFire through the pooled fire-and-forget path
			d := decodeDelay(next(), next())
			id := h.realNextID
			h.realNextID++
			h.s.ScheduleFire(d, &fireLogger{h: h, id: id})
			rid := h.refNextID
			h.refNextID++
			h.r.schedule(d, rid)
			h.checkState("schedulefire")
		case 2: // Zero-delay schedule: fires after everything already due now
			id := h.realNextID
			h.realNextID++
			tm := h.s.Schedule(0, func() { h.realFired(id) })
			h.realTimers = append(h.realTimers, tm)
			rid := h.refNextID
			h.refNextID++
			h.refEvents = append(h.refEvents, h.r.schedule(0, rid))
			h.checkState("zero-delay")
		case 3: // Stop a random timer; the return values must agree
			if len(h.realTimers) != len(h.refEvents) {
				t.Fatalf("timer lists diverged: %d vs %d", len(h.realTimers), len(h.refEvents))
			}
			if n := len(h.realTimers); n > 0 {
				k := int(next()) % n
				rs := h.realTimers[k].Stop()
				fs := h.r.stop(h.refEvents[k])
				if rs != fs {
					t.Fatalf("Stop(timer %d) = %v on wheel, %v on reference", k, rs, fs)
				}
			}
			h.checkState("stop")
		case 4: // Reschedule a random timer (active, stopped, or fired)
			if n := len(h.realTimers); n > 0 {
				k := int(next()) % n
				d := decodeDelay(next(), next())
				ra := h.realTimers[k].Active()
				fa := !h.refEvents[k].fired && !h.refEvents[k].cancelled
				if ra != fa {
					t.Fatalf("Active(timer %d) = %v on wheel, %v on reference", k, ra, fa)
				}
				h.realTimers[k].Reschedule(d)
				h.r.reschedule(h.refEvents[k], d)
			}
			h.checkState("reschedule")
		case 5: // Step one event on each
			rs := h.s.Step()
			fs := h.r.step()
			if rs != fs {
				t.Fatalf("Step() = %v on wheel, %v on reference", rs, fs)
			}
			h.checkState("step")
		case 6: // RunBatch a tick's worth; the reference replays the count
			n := h.s.RunBatch()
			for j := 0; j < n; j++ {
				if !h.r.step() {
					t.Fatalf("RunBatch fired %d events but reference drained after %d", n, j)
				}
			}
			h.checkState("runbatch")
		case 7: // RunUntil a nearby deadline
			d := decodeDelay(next(), next())
			h.s.RunUntil(h.s.Now() + d)
			h.r.runUntil(h.r.now + d)
			h.checkState("rununtil")
		case 8: // Budget exhaustion: cap events a little past the current count
			k := int64(next() % 8)
			if h.s.Executed() != h.r.executed {
				t.Fatalf("pre-budget Executed diverged: %d vs %d", h.s.Executed(), h.r.executed)
			}
			b := Budget{MaxEvents: h.s.Executed() + k}
			h.s.SetBudget(b)
			h.r.budget, h.r.exhausted = b, false
			h.s.Run()
			h.r.run()
			h.checkState("budget-run")
			h.s.SetBudget(Budget{})
			h.r.budget, h.r.exhausted = Budget{}, false
		}
		h.checkLogs()
	}

	// Drain both completely and compare the full histories.
	h.s.SetBudget(Budget{})
	h.r.budget, h.r.exhausted = Budget{}, false
	h.s.Run()
	h.r.run()
	h.checkState("final-drain")
	h.checkLogs()
	if h.s.Pending() != 0 {
		t.Fatalf("wheel kernel left %d events pending after full drain", h.s.Pending())
	}
}

// TestKernelDifferentialRandom feeds seeded random op schedules through the
// differential harness: the wheel kernel must match the reference heap on
// every one.
func TestKernelDifferentialRandom(t *testing.T) {
	iters := 150
	if testing.Short() {
		iters = 25
	}
	rng := rand.New(rand.NewSource(0x1CDC5))
	for it := 0; it < iters; it++ {
		ops := make([]byte, 40+rng.Intn(360))
		rng.Read(ops)
		t.Run("", func(t *testing.T) {
			runDifferential(t, ops)
		})
	}
}

// FuzzKernelDifferential lets the fuzzer search for op schedules on which
// the wheel kernel and the reference heap disagree.
func FuzzKernelDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	// A schedule mixing coarse-level placements (delay values divisible by 7
	// are stretched into the upper wheel levels), cancellation, reschedule
	// churn, and budget stops.
	f.Add([]byte{
		0, 0, 7, 1, 0, 14, 0, 255, 255, 2, 2, 2,
		3, 1, 4, 0, 0, 49, 5, 5, 6, 7, 0, 28,
		8, 3, 0, 0, 0, 1, 7, 0, 8, 6, 5,
	})
	f.Add([]byte{2, 2, 2, 2, 5, 5, 5, 5, 3, 0, 4, 0, 0, 0, 5})
	f.Fuzz(func(t *testing.T, ops []byte) {
		runDifferential(t, ops)
	})
}
