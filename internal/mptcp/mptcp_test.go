package mptcp

import (
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/dataset"
	"repro/internal/railway"
	"repro/internal/tcp"
)

func hsrScenario(t *testing.T, op cellular.Operator, seed int64, d time.Duration) dataset.Scenario {
	t.Helper()
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		t.Fatalf("NewTrip: %v", err)
	}
	start, _ := trip.CruiseWindow()
	return dataset.Scenario{
		ID: "mptcp-test", Operator: op, Trip: trip, TripOffset: start,
		FlowDuration: d, Seed: seed, TCP: tcp.DefaultConfig(), Scenario: "hsr",
	}
}

func TestRunDuplexAggregates(t *testing.T) {
	sc := hsrScenario(t, cellular.ChinaMobileLTE, 3, 40*time.Second)
	res, err := RunDuplex(sc, 2)
	if err != nil {
		t.Fatalf("RunDuplex: %v", err)
	}
	if len(res.Subflows) != 2 {
		t.Fatalf("subflows = %d, want 2", len(res.Subflows))
	}
	var sum int64
	for i, s := range res.Subflows {
		if s.Stats.UniqueDelivered == 0 {
			t.Errorf("subflow %d delivered nothing", i)
		}
		if s.Metrics == nil {
			t.Fatalf("subflow %d has nil metrics", i)
		}
		sum += s.Stats.UniqueDelivered
	}
	want := float64(sum) / 40.0
	if res.ThroughputPps != want {
		t.Errorf("aggregate pps = %v, want %v", res.ThroughputPps, want)
	}
}

func TestDuplexBeatsSingleOnHSR(t *testing.T) {
	// Average over a few seeds: subflow outages are independent, so the
	// aggregate should comfortably exceed one flow (the paper's Fig 12).
	var single, duplex float64
	for seed := int64(1); seed <= 3; seed++ {
		sc := hsrScenario(t, cellular.ChinaUnicom3G, seed, 45*time.Second)
		s, d, _, err := CompareDuplex(sc, 2)
		if err != nil {
			t.Fatalf("CompareDuplex: %v", err)
		}
		single += s
		duplex += d
	}
	if duplex <= single*1.2 {
		t.Errorf("duplex %v not clearly above single %v", duplex, single)
	}
}

func TestDuplexSubflowsDiffer(t *testing.T) {
	sc := hsrScenario(t, cellular.ChinaMobileLTE, 9, 30*time.Second)
	res, err := RunDuplex(sc, 2)
	if err != nil {
		t.Fatalf("RunDuplex: %v", err)
	}
	a, b := res.Subflows[0].Stats, res.Subflows[1].Stats
	if a.UniqueDelivered == b.UniqueDelivered && a.DataDropped == b.DataDropped {
		t.Error("subflows look identical; channel seeds not independent")
	}
}

func TestRunDuplexValidation(t *testing.T) {
	sc := hsrScenario(t, cellular.ChinaMobileLTE, 1, 10*time.Second)
	if _, err := RunDuplex(sc, 0); err == nil {
		t.Error("zero subflows accepted")
	}
	sc.FlowDuration = 0
	if _, err := RunDuplex(sc, 2); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestBackupModeReducesRecoveryImpact(t *testing.T) {
	// Compare plain TCP and backup-mode MPTCP on identical primary channels
	// over several seeds. The paper's claim is about reliability of the
	// retransmission process: double retransmission must shorten the
	// timeout recovery phases. Throughput is allowed to move only a little
	// in either direction — recovering early into a primary channel that is
	// still in outage restarts slow start, so the big throughput gains need
	// duplex mode (data on both subflows), which the paper also observes.
	var plainTput, backupTput float64
	var plainRec, backupRec time.Duration
	var backupUsed int
	for seed := int64(1); seed <= 3; seed++ {
		sc := hsrScenario(t, cellular.ChinaMobileLTE, seed, 45*time.Second)
		plain, err := dataset.AnalyzeFlow(sc)
		if err != nil {
			t.Fatalf("AnalyzeFlow: %v", err)
		}
		backup, err := RunBackup(sc)
		if err != nil {
			t.Fatalf("RunBackup: %v", err)
		}
		plainTput += plain.ThroughputPps
		backupTput += backup.Metrics.ThroughputPps
		plainRec += plain.MeanRecoveryDuration
		backupRec += backup.Metrics.MeanRecoveryDuration
		backupUsed += backup.BackupRetransmits
	}
	if backupUsed == 0 {
		t.Fatal("backup subflow never used despite HSR timeouts")
	}
	if backupRec >= plainRec {
		t.Errorf("backup mean recovery %v not below plain %v", backupRec, plainRec)
	}
	if backupRec > plainRec*85/100 {
		t.Errorf("backup recovery %v should be clearly below plain %v", backupRec, plainRec)
	}
	if backupTput < plainTput*0.85 {
		t.Errorf("backup throughput %v dropped more than 15%% below plain %v", backupTput, plainTput)
	}
}

func TestBackupCountersConsistent(t *testing.T) {
	sc := hsrScenario(t, cellular.ChinaTelecom3G, 5, 40*time.Second)
	res, err := RunBackup(sc)
	if err != nil {
		t.Fatalf("RunBackup: %v", err)
	}
	if res.BackupDelivered > res.BackupRetransmits {
		t.Errorf("backup delivered %d > sent %d", res.BackupDelivered, res.BackupRetransmits)
	}
	if res.Metrics == nil || res.Stats.UniqueDelivered == 0 {
		t.Error("backup run produced no data")
	}
	if res.BackupAcksDelivered == 0 {
		t.Error("no ACKs mirrored over the backup path")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(150, 100); got != 0.5 {
		t.Errorf("Improvement = %v, want 0.5", got)
	}
	if got := Improvement(50, 100); got != -0.5 {
		t.Errorf("Improvement = %v, want -0.5", got)
	}
	if got := Improvement(10, 0); got != 0 {
		t.Errorf("Improvement with zero baseline = %v, want 0", got)
	}
}

func TestTelecomGainsMostFromDuplex(t *testing.T) {
	// The paper's Fig 12: Telecom (poor coverage) gains far more from
	// multipath than Mobile. Average over seeds to damp noise.
	gain := func(op cellular.Operator) float64 {
		var single, duplex float64
		for seed := int64(1); seed <= 3; seed++ {
			sc := hsrScenario(t, op, seed, 45*time.Second)
			s, d, _, err := CompareDuplex(sc, 2)
			if err != nil {
				t.Fatalf("CompareDuplex(%s): %v", op.Name, err)
			}
			single += s
			duplex += d
		}
		return Improvement(duplex, single)
	}
	mobile := gain(cellular.ChinaMobileLTE)
	telecom := gain(cellular.ChinaTelecom3G)
	if telecom <= mobile {
		t.Errorf("Telecom duplex gain (%v) should exceed Mobile's (%v)", telecom, mobile)
	}
}
