// Package mptcp models the two multipath-TCP deployments discussed in
// Section V-B of the paper:
//
//   - Duplex mode: the sender stripes data over several subflows. The paper
//     itself evaluates this by running two concurrent single-path TCP flows
//     whose paths share no bottleneck and summing their throughput (Fig 12);
//     RunDuplex reproduces exactly that methodology, giving each subflow an
//     independently seeded radio channel.
//   - Backup mode: data flows on one subflow, but when a retransmission
//     timeout fires, the lost segment is retransmitted on both the original
//     subflow and the backup subflow, and acknowledgements are mirrored on
//     the backup return path. This double-retransmission is the paper's
//     proposed mechanism for reducing q, the recovery-phase retransmission
//     loss rate.
package mptcp

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// SubflowResult carries one subflow's endpoint counters and trace metrics.
type SubflowResult struct {
	Stats   tcp.Stats
	Metrics *analysis.FlowMetrics
}

// DuplexResult is the outcome of a duplex-mode run.
type DuplexResult struct {
	Subflows []SubflowResult
	// ThroughputPps is the aggregate delivery rate over all subflows.
	ThroughputPps float64
}

// RunDuplex runs n concurrent subflows, each a full TCP connection over an
// independently seeded channel of the same operator and trip, inside one
// simulation. It mirrors the paper's Fig 12 methodology (two flows with no
// shared bottleneck treated as MPTCP subflows).
func RunDuplex(base dataset.Scenario, n int) (*DuplexResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("mptcp: subflow count %d must be >= 1", n)
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	simulator := sim.New()
	res := &DuplexResult{}
	type sub struct {
		conn *tcp.Conn
		ft   *trace.FlowTrace
	}
	// All subflows belong to one phone in one cell: they share the air
	// interface capacity but see independent loss/outage processes.
	sharedDown, sharedUp := dataset.BuildSharedCell(simulator, base.Operator)
	subs := make([]sub, 0, n)
	for i := 0; i < n; i++ {
		sc := base
		sc.ID = fmt.Sprintf("%s-sub%d", base.ID, i)
		sc.Seed = base.Seed*7919 + int64(i)*104729
		path, err := dataset.BuildSubflowPath(simulator, sc, sharedDown, sharedUp)
		if err != nil {
			return nil, err
		}
		ft := &trace.FlowTrace{Meta: trace.FlowMeta{
			ID: sc.ID, Operator: sc.Operator.Name, Tech: sc.Operator.Tech.String(),
			Scenario: sc.Scenario, Seed: sc.Seed, MSS: sc.TCP.MSS,
			DelayedAckB: sc.TCP.DelayedAckB, WindowLimit: sc.TCP.WindowLimit,
			Duration: sc.FlowDuration,
		}}
		ft.Grow(int(sc.FlowDuration/time.Second+1) * 1200)
		conn, err := tcp.New(simulator, path, sc.TCP, ft)
		if err != nil {
			return nil, err
		}
		if err := conn.Start(sc.FlowDuration); err != nil {
			return nil, err
		}
		subs = append(subs, sub{conn: conn, ft: ft})
	}
	simulator.RunUntil(base.FlowDuration)

	var total int64
	for _, s := range subs {
		m, err := analysis.Analyze(s.ft)
		if err != nil {
			return nil, err
		}
		st := s.conn.Stats()
		total += st.UniqueDelivered
		res.Subflows = append(res.Subflows, SubflowResult{Stats: st, Metrics: m})
	}
	res.ThroughputPps = float64(total) / base.FlowDuration.Seconds()
	return res, nil
}

// BackupResult is the outcome of a backup-mode run.
type BackupResult struct {
	Stats   tcp.Stats
	Metrics *analysis.FlowMetrics
	// BackupRetransmits counts segments duplicated onto the backup subflow
	// after an RTO; BackupDelivered counts how many of those copies reached
	// the receiver.
	BackupRetransmits int
	BackupDelivered   int
	// BackupAcksDelivered counts cumulative ACKs that reached the sender via
	// the backup return path.
	BackupAcksDelivered int
}

// RunBackup runs one TCP flow on the primary path with a backup subflow used
// exclusively for reliability: every RTO retransmission is duplicated on the
// backup path and every cumulative ACK is mirrored on the backup return
// path. The retransmission succeeds if either copy (and either ACK path)
// survives, which is how MPTCP's double retransmission reduces the paper's
// q.
func RunBackup(base dataset.Scenario) (*BackupResult, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	simulator := sim.New()
	primary, _, err := dataset.BuildPath(simulator, base)
	if err != nil {
		return nil, err
	}
	backupSc := base
	backupSc.Seed = base.Seed*6700417 + 1
	backup, _, err := dataset.BuildPath(simulator, backupSc)
	if err != nil {
		return nil, err
	}

	ft := &trace.FlowTrace{Meta: trace.FlowMeta{
		ID: base.ID + "-backup", Operator: base.Operator.Name, Tech: base.Operator.Tech.String(),
		Scenario: base.Scenario, Seed: base.Seed, MSS: base.TCP.MSS,
		DelayedAckB: base.TCP.DelayedAckB, WindowLimit: base.TCP.WindowLimit,
		Duration: base.FlowDuration,
	}}
	ft.Grow(int(base.FlowDuration/time.Second+1) * 1200)
	conn, err := tcp.New(simulator, primary, base.TCP, ft)
	if err != nil {
		return nil, err
	}
	res := &BackupResult{}
	segSize := base.TCP.MSS + base.TCP.HeaderBytes
	conn.SetRetransmitHook(func(seq int64) {
		txNo := conn.LastTransmitNo(seq)
		if txNo < 1 {
			txNo = 1
		}
		res.BackupRetransmits++
		backup.Forward.Send(segSize, netem.HandlerFunc(func() {
			res.BackupDelivered++
			conn.DeliverData(seq, txNo)
		}))
	})
	conn.SetAckSendHook(func(ackNo int64) {
		// Mirror ACKs only while the sender is stuck in timeout recovery:
		// mirroring every ACK would make the later primary copy register as
		// a duplicate ACK and provoke needless fast retransmits.
		if !conn.InTimeoutRecovery() {
			return
		}
		backup.Reverse.Send(base.TCP.HeaderBytes, netem.HandlerFunc(func() {
			res.BackupAcksDelivered++
			conn.InjectAck(ackNo)
		}))
	})
	if err := conn.Start(base.FlowDuration); err != nil {
		return nil, err
	}
	simulator.RunUntil(base.FlowDuration)

	res.Stats = conn.Stats()
	m, err := analysis.Analyze(ft)
	if err != nil {
		return nil, err
	}
	res.Metrics = m
	return res, nil
}

// Improvement returns the relative throughput gain of a multipath run over
// a single-path baseline, e.g. 0.42 for the paper's 42.15% China Mobile
// duplex improvement.
func Improvement(multipath, single float64) float64 {
	if single <= 0 {
		return 0
	}
	return (multipath - single) / single
}

// CompareDuplex runs the single-flow baseline and an n-subflow duplex run on
// the same scenario and returns (single pps, duplex pps, improvement).
func CompareDuplex(base dataset.Scenario, n int) (single, duplex, improvement float64, err error) {
	m, err := dataset.AnalyzeFlow(base)
	if err != nil {
		return 0, 0, 0, err
	}
	d, err := RunDuplex(base, n)
	if err != nil {
		return 0, 0, 0, err
	}
	single = m.ThroughputPps
	duplex = d.ThroughputPps
	return single, duplex, Improvement(duplex, single), nil
}
