package mptcp

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// SizedResult describes a fixed-size flow (or flow set): how fast it moved
// its bytes. This is the paper's Fig 12 quantity — the large flow and the
// two concurrent half-size flows carry the same total payload, and each
// flow's throughput is size divided by its own completion time.
type SizedResult struct {
	Segments      int64
	Completed     bool
	Duration      time.Duration // completion time, or the horizon if incomplete
	ThroughputPps float64
}

// RunSizedSingle transfers exactly segments data segments over one TCP flow;
// the scenario's FlowDuration acts as the simulation horizon.
func RunSizedSingle(base dataset.Scenario, segments int64) (SizedResult, error) {
	if err := base.Validate(); err != nil {
		return SizedResult{}, err
	}
	if segments <= 0 {
		return SizedResult{}, fmt.Errorf("mptcp: segments %d must be positive", segments)
	}
	simulator := sim.New()
	path, _, err := dataset.BuildPath(simulator, base)
	if err != nil {
		return SizedResult{}, err
	}
	conn, err := tcp.New(simulator, path, base.TCP, trace.Nop{})
	if err != nil {
		return SizedResult{}, err
	}
	if err := conn.StartSized(segments, base.FlowDuration); err != nil {
		return SizedResult{}, err
	}
	simulator.RunUntil(base.FlowDuration)
	return sizedResult(conn, segments, base.FlowDuration), nil
}

// RunSizedDuplex transfers the same total payload as RunSizedSingle but
// split over two concurrent subflows of segments/2 each, with independently
// seeded channels (the paper's "no shared bottleneck" assumption). The
// aggregate throughput is the sum of the two flows' individual throughputs,
// exactly as the paper computes its MPTCP estimate.
func RunSizedDuplex(base dataset.Scenario, segments int64) (SizedResult, error) {
	if err := base.Validate(); err != nil {
		return SizedResult{}, err
	}
	if segments < 2 {
		return SizedResult{}, fmt.Errorf("mptcp: segments %d must be >= 2 for two subflows", segments)
	}
	simulator := sim.New()
	half := segments / 2
	sizes := [2]int64{half, segments - half}
	conns := make([]*tcp.Conn, 2)
	sharedDown, sharedUp := dataset.BuildSharedCell(simulator, base.Operator)
	for i := 0; i < 2; i++ {
		sc := base
		sc.Seed = base.Seed*7919 + int64(i)*104729
		path, err := dataset.BuildSubflowPath(simulator, sc, sharedDown, sharedUp)
		if err != nil {
			return SizedResult{}, err
		}
		conn, err := tcp.New(simulator, path, sc.TCP, trace.Nop{})
		if err != nil {
			return SizedResult{}, err
		}
		if err := conn.StartSized(sizes[i], base.FlowDuration); err != nil {
			return SizedResult{}, err
		}
		conns[i] = conn
	}
	simulator.RunUntil(base.FlowDuration)

	out := SizedResult{Segments: segments, Completed: true}
	for i, conn := range conns {
		r := sizedResult(conn, sizes[i], base.FlowDuration)
		out.ThroughputPps += r.ThroughputPps
		if !r.Completed {
			out.Completed = false
		}
		if r.Duration > out.Duration {
			out.Duration = r.Duration // makespan of the pair
		}
	}
	return out, nil
}

// sizedResult reduces a finished (or timed-out) sized connection.
func sizedResult(conn *tcp.Conn, segments int64, horizon time.Duration) SizedResult {
	r := SizedResult{Segments: segments}
	if at, ok := conn.Completed(); ok {
		r.Completed = true
		r.Duration = at
	} else {
		r.Duration = horizon
	}
	if r.Duration > 0 {
		if r.Completed {
			r.ThroughputPps = float64(segments) / r.Duration.Seconds()
		} else {
			r.ThroughputPps = float64(conn.Stats().UniqueDelivered) / r.Duration.Seconds()
		}
	}
	return r
}

// CompareSized runs the paper's Fig 12 comparison on one scenario: a large
// flow of the given size against two concurrent half-size flows, returning
// both throughputs and the relative improvement.
func CompareSized(base dataset.Scenario, segments int64) (single, duplex, improvement float64, err error) {
	s, err := RunSizedSingle(base, segments)
	if err != nil {
		return 0, 0, 0, err
	}
	d, err := RunSizedDuplex(base, segments)
	if err != nil {
		return 0, 0, 0, err
	}
	return s.ThroughputPps, d.ThroughputPps, Improvement(d.ThroughputPps, s.ThroughputPps), nil
}
