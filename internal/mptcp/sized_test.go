package mptcp

import (
	"testing"
	"time"

	"repro/internal/cellular"
)

func TestRunSizedSingleCompletes(t *testing.T) {
	sc := hsrScenario(t, cellular.ChinaMobileLTE, 3, 5*time.Minute)
	res, err := RunSizedSingle(sc, 2000)
	if err != nil {
		t.Fatalf("RunSizedSingle: %v", err)
	}
	if !res.Completed {
		t.Fatal("sized flow did not complete within a generous horizon")
	}
	if res.Segments != 2000 {
		t.Errorf("Segments = %d, want 2000", res.Segments)
	}
	if res.ThroughputPps <= 0 || res.Duration <= 0 {
		t.Errorf("result = %+v", res)
	}
	// Throughput must equal segments / completion time.
	want := 2000 / res.Duration.Seconds()
	if diff := res.ThroughputPps - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("ThroughputPps = %v, want %v", res.ThroughputPps, want)
	}
}

func TestRunSizedSingleHorizonCutoff(t *testing.T) {
	sc := hsrScenario(t, cellular.ChinaTelecom3G, 5, 3*time.Second)
	res, err := RunSizedSingle(sc, 500000) // cannot finish in 3 s
	if err != nil {
		t.Fatalf("RunSizedSingle: %v", err)
	}
	if res.Completed {
		t.Error("impossible transfer reported complete")
	}
	if res.Duration != 3*time.Second {
		t.Errorf("Duration = %v, want the 3s horizon", res.Duration)
	}
}

func TestRunSizedDuplexSplitsOddSizes(t *testing.T) {
	sc := hsrScenario(t, cellular.ChinaMobileLTE, 7, 5*time.Minute)
	res, err := RunSizedDuplex(sc, 1001) // odd: 500 + 501
	if err != nil {
		t.Fatalf("RunSizedDuplex: %v", err)
	}
	if res.Segments != 1001 {
		t.Errorf("Segments = %d, want 1001", res.Segments)
	}
	if !res.Completed {
		t.Error("duplex transfer did not complete")
	}
	if res.ThroughputPps <= 0 {
		t.Error("no aggregate throughput")
	}
}

func TestSizedValidation(t *testing.T) {
	sc := hsrScenario(t, cellular.ChinaMobileLTE, 1, time.Minute)
	if _, err := RunSizedSingle(sc, 0); err == nil {
		t.Error("zero segments accepted")
	}
	if _, err := RunSizedDuplex(sc, 1); err == nil {
		t.Error("one segment for two subflows accepted")
	}
	bad := sc
	bad.FlowDuration = 0
	if _, err := RunSizedSingle(bad, 10); err == nil {
		t.Error("invalid scenario accepted by RunSizedSingle")
	}
	if _, err := RunSizedDuplex(bad, 10); err == nil {
		t.Error("invalid scenario accepted by RunSizedDuplex")
	}
}

func TestCompareSizedImprovementConsistent(t *testing.T) {
	sc := hsrScenario(t, cellular.ChinaUnicom3G, 2, 5*time.Minute)
	single, duplex, imp, err := CompareSized(sc, 1500)
	if err != nil {
		t.Fatalf("CompareSized: %v", err)
	}
	if single <= 0 || duplex <= 0 {
		t.Fatalf("throughputs = %v / %v", single, duplex)
	}
	want := (duplex - single) / single
	if diff := imp - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("improvement = %v, want %v", imp, want)
	}
}
