package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The fault-schedule DSL (documented in docs/ROBUSTNESS.md):
//
//	schedule := episode (';' episode)*
//	episode  := kind '@' start '+' dur {param}
//	kind     := blackout | ackburst | ratecollapse | delayspike | storm
//	param    := 'p=' float      (ackburst drop probability, required)
//	          | 'x' float       (ratecollapse rate factor, required)
//	          | 'd=' duration   (delayspike extra delay, required)
//	          | 'n=' int        (storm outage count, required)
//	          | 'o=' duration   (storm outage length, default 5s)
//
// Durations use Go syntax ("30s", "800ms"). Example:
//
//	blackout@30s+2s; ackburst@50s+1s p=0.85; ratecollapse@60s+5s x0.2;
//	delayspike@80s+2s d=400ms; storm@20s+80s n=4 o=6s

// defaultStormOutage is the per-outage length when a storm omits o=.
const defaultStormOutage = 5 * time.Second

// Parse builds a Schedule from its DSL form. An empty or all-whitespace
// spec parses to an empty schedule.
func Parse(spec string) (*Schedule, error) {
	var episodes []Episode
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		e, err := parseEpisode(part)
		if err != nil {
			return nil, err
		}
		episodes = append(episodes, e)
	}
	return New(episodes...)
}

func parseEpisode(part string) (Episode, error) {
	fields := strings.Fields(part)
	head := fields[0]
	kindStr, window, ok := strings.Cut(head, "@")
	if !ok {
		return Episode{}, fmt.Errorf("faults: episode %q: missing '@start+dur'", part)
	}
	var e Episode
	switch kindStr {
	case "blackout":
		e.Kind = Blackout
	case "ackburst":
		e.Kind = AckBurst
	case "ratecollapse":
		e.Kind = RateCollapse
	case "delayspike":
		e.Kind = DelaySpike
	case "storm":
		e.Kind = Storm
		e.Outage = defaultStormOutage
	default:
		return Episode{}, fmt.Errorf("faults: unknown episode kind %q", kindStr)
	}
	startStr, durStr, ok := strings.Cut(window, "+")
	if !ok {
		return Episode{}, fmt.Errorf("faults: episode %q: window %q is not 'start+dur'", part, window)
	}
	var err error
	if e.Start, err = time.ParseDuration(startStr); err != nil {
		return Episode{}, fmt.Errorf("faults: episode %q: bad start: %v", part, err)
	}
	if e.Dur, err = time.ParseDuration(durStr); err != nil {
		return Episode{}, fmt.Errorf("faults: episode %q: bad duration: %v", part, err)
	}
	for _, param := range fields[1:] {
		if err := applyParam(&e, param); err != nil {
			return Episode{}, fmt.Errorf("faults: episode %q: %v", part, err)
		}
	}
	if err := e.Validate(); err != nil {
		return Episode{}, err
	}
	return e, nil
}

func applyParam(e *Episode, param string) error {
	switch {
	case strings.HasPrefix(param, "p="):
		p, err := strconv.ParseFloat(param[2:], 64)
		if err != nil {
			return fmt.Errorf("bad probability %q", param)
		}
		e.P = p
	case strings.HasPrefix(param, "x"):
		f, err := strconv.ParseFloat(param[1:], 64)
		if err != nil {
			return fmt.Errorf("bad rate factor %q", param)
		}
		e.Factor = f
	case strings.HasPrefix(param, "d="):
		d, err := time.ParseDuration(param[2:])
		if err != nil {
			return fmt.Errorf("bad delay %q", param)
		}
		e.Delay = d
	case strings.HasPrefix(param, "n="):
		n, err := strconv.Atoi(param[2:])
		if err != nil {
			return fmt.Errorf("bad count %q", param)
		}
		e.Count = n
	case strings.HasPrefix(param, "o="):
		o, err := time.ParseDuration(param[2:])
		if err != nil {
			return fmt.Errorf("bad outage length %q", param)
		}
		e.Outage = o
	default:
		return fmt.Errorf("unknown parameter %q", param)
	}
	return nil
}

// String renders the schedule in its canonical DSL form; Parse(s.String())
// round-trips.
func (s *Schedule) String() string {
	if s.Empty() {
		return ""
	}
	parts := make([]string, 0, len(s.Episodes))
	for _, e := range s.Episodes {
		head := fmt.Sprintf("%s@%v+%v", e.Kind, e.Start, e.Dur)
		switch e.Kind {
		case AckBurst:
			head += fmt.Sprintf(" p=%v", e.P)
		case RateCollapse:
			head += fmt.Sprintf(" x%v", e.Factor)
		case DelaySpike:
			head += fmt.Sprintf(" d=%v", e.Delay)
		case Storm:
			head += fmt.Sprintf(" n=%d o=%v", e.Count, e.Outage)
		}
		parts = append(parts, head)
	}
	return strings.Join(parts, "; ")
}
