package faults

import (
	"strings"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
)

func mustParse(t *testing.T, spec string) *Schedule {
	t.Helper()
	s, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return s
}

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"blackout@30s+2s",
		"ackburst@50s+1s p=0.85",
		"ratecollapse@1m0s+5s x0.2",
		"delayspike@1m20s+2s d=400ms",
		"storm@20s+1m20s n=4 o=6s",
		"blackout@30s+2s; storm@40s+10s n=2 o=5s; delayspike@1m0s+1s d=100ms",
	}
	for _, spec := range specs {
		s := mustParse(t, spec)
		got := s.String()
		s2 := mustParse(t, got)
		if got2 := s2.String(); got2 != got {
			t.Errorf("round-trip of %q unstable: %q then %q", spec, got, got2)
		}
	}
}

func TestParseSortsByStart(t *testing.T) {
	s := mustParse(t, "delayspike@80s+2s d=1ms; blackout@30s+2s; ackburst@50s+1s p=0.5")
	for i := 1; i < len(s.Episodes); i++ {
		if s.Episodes[i].Start < s.Episodes[i-1].Start {
			t.Fatalf("episodes not sorted by start: %v", s)
		}
	}
	if s.Episodes[0].Kind != Blackout {
		t.Fatalf("first episode = %v, want blackout", s.Episodes[0].Kind)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"blackout",                    // no window
		"blackout@30s",                // no +dur
		"blackout@bogus+2s",           // bad start
		"blackout@30s+bogus",          // bad duration
		"blackout@-5s+2s",             // negative start
		"blackout@30s+0s",             // zero duration
		"meteorstrike@30s+2s",         // unknown kind
		"ackburst@30s+2s",             // missing p=
		"ackburst@30s+2s p=1.5",       // p out of range
		"ackburst@30s+2s p=zero",      // unparsable p
		"ratecollapse@30s+2s",         // missing factor
		"ratecollapse@30s+2s x1.5",    // factor >= 1
		"delayspike@30s+2s",           // missing d=
		"storm@30s+2s",                // missing n=
		"storm@30s+2s n=0",            // zero count
		"storm@30s+2s n=2 o=0s",       // zero outage length
		"blackout@30s+2s frobnicate9", // unknown parameter
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	for _, spec := range []string{"", "   ", " ; ; "} {
		s := mustParse(t, spec)
		if !s.Empty() {
			t.Errorf("Parse(%q) not empty: %v", spec, s)
		}
	}
	var nilSched *Schedule
	if !nilSched.Empty() {
		t.Error("nil schedule should be Empty")
	}
	if nilSched.String() != "" {
		t.Error("nil schedule should render empty")
	}
}

func TestScale(t *testing.T) {
	s := mustParse(t, "blackout@30s+2s; ackburst@50s+1s p=0.6; ratecollapse@60s+5s x0.25; delayspike@80s+2s d=200ms; storm@20s+40s n=4 o=6s")

	if !s.Scale(0).Empty() {
		t.Error("Scale(0) should be empty")
	}
	if !s.Scale(-1).Empty() {
		t.Error("Scale(negative) should be empty")
	}

	one := s.Scale(1)
	if got, want := one.String(), s.String(); got != want {
		t.Errorf("Scale(1) changed the schedule:\n got %q\nwant %q", got, want)
	}

	double := s.Scale(2)
	byKind := map[Kind]Episode{}
	for _, e := range double.Episodes {
		byKind[e.Kind] = e
	}
	if got := byKind[Blackout].Dur; got != 4*time.Second {
		t.Errorf("Scale(2) blackout dur = %v, want 4s", got)
	}
	if got := byKind[AckBurst].P; got != 1 {
		t.Errorf("Scale(2) ackburst p = %v, want clamp to 1", got)
	}
	if got := byKind[RateCollapse].Factor; got != minRateFactor {
		// 1 - 2*(1-0.25) = -0.5, floored at the trickle minimum.
		t.Errorf("Scale(2) ratecollapse factor = %v, want floor %v", got, minRateFactor)
	}
	if got := byKind[DelaySpike].Delay; got != 400*time.Millisecond {
		t.Errorf("Scale(2) delayspike delay = %v, want 400ms", got)
	}
	if got := byKind[Storm].Count; got != 8 {
		t.Errorf("Scale(2) storm count = %d, want 8", got)
	}

	// A gentle severity relaxes the rate collapse toward factor 1 and can
	// drop it entirely when it reaches 1.
	half := s.Scale(0.5)
	for _, e := range half.Episodes {
		if e.Kind == RateCollapse {
			if want := 1 - 0.5*(1-0.25); e.Factor != want {
				t.Errorf("Scale(0.5) ratecollapse factor = %v, want %v", e.Factor, want)
			}
		}
	}
	// Severity small enough to round the storm count to zero drops the storm.
	tiny := mustParse(t, "storm@20s+40s n=1 o=6s").Scale(0.2)
	if !tiny.Empty() {
		t.Errorf("storm scaled to zero count should be dropped, got %v", tiny)
	}
}

func TestQueryFunctions(t *testing.T) {
	s := mustParse(t, "blackout@10s+2s; ackburst@20s+2s p=0.7; ratecollapse@30s+2s x0.5; ratecollapse@31s+2s x0.5; delayspike@40s+2s d=100ms; delayspike@41s+2s d=50ms")

	// Blackout kills both directions, at either transit epoch.
	if got := s.DataLossProb(11*time.Second, 11*time.Second); got != 1 {
		t.Errorf("DataLossProb inside blackout = %v, want 1", got)
	}
	if got := s.DataLossProb(9*time.Second, 11*time.Second); got != 1 {
		t.Errorf("DataLossProb arriving into blackout = %v, want 1", got)
	}
	if got := s.DataLossProb(5*time.Second, 6*time.Second); got != 0 {
		t.Errorf("DataLossProb outside = %v, want 0", got)
	}
	// Episode windows are half-open: [Start, Start+Dur).
	if got := s.DataLossProb(12*time.Second, 12*time.Second); got != 0 {
		t.Errorf("DataLossProb at blackout end = %v, want 0 (half-open window)", got)
	}

	// AckBurst applies only to the ACK direction.
	if got := s.DataLossProb(21*time.Second, 21*time.Second); got != 0 {
		t.Errorf("DataLossProb during ackburst = %v, want 0", got)
	}
	if got := s.AckLossProb(21*time.Second, 21*time.Second); got != 0.7 {
		t.Errorf("AckLossProb during ackburst = %v, want 0.7", got)
	}
	if got := s.AckLossProb(11*time.Second, 11*time.Second); got != 1 {
		t.Errorf("AckLossProb during blackout = %v, want 1", got)
	}

	// Overlapping rate collapses multiply; disjoint times are unaffected.
	if got := s.RateScale(31500 * time.Millisecond); got != 0.25 {
		t.Errorf("RateScale in overlap = %v, want 0.25", got)
	}
	if got := s.RateScale(30500 * time.Millisecond); got != 0.5 {
		t.Errorf("RateScale in single episode = %v, want 0.5", got)
	}
	if got := s.RateScale(5 * time.Second); got != 1 {
		t.Errorf("RateScale outside = %v, want 1", got)
	}

	// Overlapping delay spikes sum.
	if got := s.ExtraDelay(41500 * time.Millisecond); got != 150*time.Millisecond {
		t.Errorf("ExtraDelay in overlap = %v, want 150ms", got)
	}
	if got := s.ExtraDelay(5 * time.Second); got != 0 {
		t.Errorf("ExtraDelay outside = %v, want 0", got)
	}
}

func TestStormOutagesDeterministic(t *testing.T) {
	s := mustParse(t, "storm@20s+60s n=5 o=6s")
	a := s.StormOutages(42)
	b := s.StormOutages(42)
	if len(a) != 5 {
		t.Fatalf("got %d outages, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different outages: %v vs %v", a, b)
		}
		if a[i].Start < 20*time.Second || a[i].Start >= 80*time.Second {
			t.Errorf("outage %d starts at %v, outside the storm window", i, a[i].Start)
		}
		if a[i].End-a[i].Start != 6*time.Second {
			t.Errorf("outage %d length = %v, want 6s", i, a[i].End-a[i].Start)
		}
	}
	c := s.StormOutages(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical outage placement")
	}
	var nilSched *Schedule
	if nilSched.StormOutages(1) != nil {
		t.Error("nil schedule should produce no outages")
	}
}

// countingLoss records how many times Drop was consulted.
type countingLoss struct {
	calls int
	drop  bool
}

func (c *countingLoss) Drop(_, _ time.Duration) bool { c.calls++; return c.drop }

func TestWrapLoss(t *testing.T) {
	s := mustParse(t, "blackout@10s+2s; ackburst@20s+2s p=1")
	inner := &countingLoss{}
	rng := sim.NewRand(1, sim.StreamFaultData)
	wrapped := s.WrapDataLoss(inner, rng)

	// Outside every episode the inner model decides.
	if wrapped.Drop(5*time.Second, 5*time.Second) {
		t.Error("drop outside episodes with passing inner model")
	}
	// Inside a blackout the packet is lost — but the inner model must still
	// have been consulted so its burst state advances identically.
	if !wrapped.Drop(11*time.Second, 11*time.Second) {
		t.Error("no drop inside blackout")
	}
	if inner.calls != 2 {
		t.Errorf("inner model consulted %d times, want 2 (once per packet)", inner.calls)
	}

	// Ack direction sees the p=1 burst; data direction does not.
	ackWrapped := s.WrapAckLoss(&countingLoss{}, sim.NewRand(1, sim.StreamFaultAck))
	if !ackWrapped.Drop(21*time.Second, 21*time.Second) {
		t.Error("no ACK drop inside p=1 ackburst")
	}
	if wrapped.Drop(21*time.Second, 21*time.Second) {
		t.Error("data drop inside ackburst")
	}

	// Empty schedules wrap to the inner model itself: zero overhead, and
	// byte-identical baseline behaviour.
	var empty *Schedule
	if got := empty.WrapDataLoss(inner, rng); got != netem.LossModel(inner) {
		t.Error("empty schedule should return the inner loss model unchanged")
	}
	if got := empty.WrapAckLoss(inner, rng); got != netem.LossModel(inner) {
		t.Error("empty schedule should return the inner ACK loss model unchanged")
	}
}

func TestWrapDelay(t *testing.T) {
	s := mustParse(t, "delayspike@10s+2s d=100ms")
	inner := netem.FixedDelay(20 * time.Millisecond)
	wrapped := s.WrapDelay(inner)
	if got := wrapped.Sample(11 * time.Second); got != 120*time.Millisecond {
		t.Errorf("Sample inside spike = %v, want 120ms", got)
	}
	if got := wrapped.Sample(5 * time.Second); got != 20*time.Millisecond {
		t.Errorf("Sample outside spike = %v, want 20ms", got)
	}
	var empty *Schedule
	if got := empty.WrapDelay(inner); got != netem.DelayModel(inner) {
		t.Error("empty schedule should return the inner delay model unchanged")
	}
}

// sinkSender counts deliveries and always succeeds.
type sinkSender struct{ sent int }

func (s *sinkSender) Send(size int, deliver netem.Handler) (bool, netem.DropKind) {
	s.sent++
	return true, 0
}

func TestStage(t *testing.T) {
	simulator := sim.New()
	s := mustParse(t, "blackout@10s+2s")
	inner := &sinkSender{}
	stage := NewStage(simulator, inner, s, Data, sim.NewRand(1, sim.StreamFaultData))

	if ok, _ := stage.Send(1500, nil); !ok {
		t.Fatal("send at t=0 should pass")
	}
	simulator.Schedule(11*time.Second, func() {
		if ok, kind := stage.Send(1500, nil); ok || kind != netem.DropChannel {
			t.Errorf("send inside blackout: ok=%v kind=%v, want channel drop", ok, kind)
		}
	})
	simulator.Run()
	if inner.sent != 1 {
		t.Errorf("inner sender saw %d sends, want 1", inner.sent)
	}
}

func TestStressSchedule(t *testing.T) {
	s := Stress(120 * time.Second)
	if err := s.Validate(); err != nil {
		t.Fatalf("Stress schedule invalid: %v", err)
	}
	kinds := map[Kind]bool{}
	for _, e := range s.Episodes {
		kinds[e.Kind] = true
		if e.End() > 120*time.Second {
			t.Errorf("%s episode ends at %v, past the flow", e.Kind, e.End())
		}
	}
	for _, k := range []Kind{Blackout, AckBurst, RateCollapse, DelaySpike, Storm} {
		if !kinds[k] {
			t.Errorf("Stress schedule missing a %s episode", k)
		}
	}
	// Round-trips through the DSL.
	s2 := mustParse(t, s.String())
	if s2.String() != s.String() {
		t.Errorf("Stress schedule does not round-trip: %q vs %q", s.String(), s2.String())
	}
	if !Stress(0).Empty() {
		t.Error("Stress(0) should be empty")
	}
}

func TestKindString(t *testing.T) {
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind renders %q", got)
	}
}
