// Package faults is a deterministic, seed-driven fault-injection layer for
// the emulated network stack. A Schedule is a script of timed fault
// episodes — extended coverage blackouts, handoff storms, ACK-direction
// burst-loss episodes, link-rate collapses, delay spikes — expressed in
// flow-local virtual time. Schedules compose with the existing substrate
// instead of replacing it:
//
//   - Schedule.WrapDataLoss / WrapAckLoss layer episode-driven loss over any
//     netem.LossModel;
//   - Schedule.WrapDelay adds episode delay inflation to any netem.DelayModel;
//   - Schedule.RateScale plugs into netem.LinkConfig.RateScale to collapse
//     the line rate during an episode;
//   - Schedule.StormOutages expands handoff-storm episodes into extra bearer
//     outages for cellular.Channel.AddOutages, so injected handoffs carry the
//     full semantics of real ones (probe loss, ACK loss, delay inflation);
//   - NewStage wraps any netem.Sender so chained stages (e.g. the MPTCP
//     shared cell) can be fault-injected too.
//
// All randomness is drawn from rngs derived from the flow seed on dedicated
// sim streams, so the same seed and schedule always produce the same packet
// trace, and an empty schedule perturbs nothing. Schedule severity can be
// swept with Scale, which is how campaigns verify the enhanced throughput
// model degrades gracefully where Padhye's diverges.
package faults

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cellular"
	"repro/internal/sim"
)

// Kind is the class of a fault episode.
type Kind int

// Fault kinds.
const (
	// Blackout is a total outage: both directions lose every packet for the
	// episode's duration (an extended coverage gap, e.g. a tunnel).
	Blackout Kind = iota + 1
	// AckBurst drops uplink ACKs with probability P for the duration — the
	// paper's ACK burst loss P_a, the driver of spurious RTOs.
	AckBurst
	// RateCollapse multiplies the line rate by Factor for the duration
	// (cell congestion, deep fade).
	RateCollapse
	// DelaySpike adds Delay of one-way latency in both directions for the
	// duration (RAN-internal rerouting, bufferbloat transients).
	DelaySpike
	// Storm injects Count extra handoff outages of length Outage each,
	// placed seed-deterministically inside the episode window — the handover
	// storms real HSR measurements report near dense cell deployments.
	Storm
)

// String implements fmt.Stringer; the names double as the DSL keywords.
func (k Kind) String() string {
	switch k {
	case Blackout:
		return "blackout"
	case AckBurst:
		return "ackburst"
	case RateCollapse:
		return "ratecollapse"
	case DelaySpike:
		return "delayspike"
	case Storm:
		return "storm"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// minRateFactor is the floor of RateCollapse factors: a collapsed link still
// trickles rather than dividing by zero, and the bounded queue converts the
// stall into tail drops exactly like a real dead cell.
const minRateFactor = 1e-3

// Episode is one timed fault: Kind decides which parameter fields apply.
type Episode struct {
	Kind  Kind
	Start time.Duration // flow-local virtual time the fault begins
	Dur   time.Duration // how long it stays active

	P      float64       // AckBurst: per-ACK drop probability in (0, 1]
	Factor float64       // RateCollapse: rate multiplier in [minRateFactor, 1)
	Delay  time.Duration // DelaySpike: extra one-way delay, positive
	Count  int           // Storm: number of injected outages, positive
	Outage time.Duration // Storm: duration of each injected outage, positive
}

// End returns the first instant after the episode.
func (e Episode) End() time.Duration { return e.Start + e.Dur }

// active reports whether flow time t falls inside the episode window.
func (e Episode) active(t time.Duration) bool { return t >= e.Start && t < e.End() }

// Validate checks the episode's window and kind-specific parameters.
func (e Episode) Validate() error {
	if e.Start < 0 {
		return fmt.Errorf("faults: %s episode starts at negative time %v", e.Kind, e.Start)
	}
	if e.Dur <= 0 {
		return fmt.Errorf("faults: %s episode at %v has non-positive duration %v", e.Kind, e.Start, e.Dur)
	}
	switch e.Kind {
	case Blackout:
	case AckBurst:
		if e.P <= 0 || e.P > 1 {
			return fmt.Errorf("faults: ackburst at %v has probability %v outside (0,1]", e.Start, e.P)
		}
	case RateCollapse:
		if e.Factor < minRateFactor || e.Factor >= 1 {
			return fmt.Errorf("faults: ratecollapse at %v has factor %v outside [%v,1)", e.Start, e.Factor, minRateFactor)
		}
	case DelaySpike:
		if e.Delay <= 0 {
			return fmt.Errorf("faults: delayspike at %v has non-positive delay %v", e.Start, e.Delay)
		}
	case Storm:
		if e.Count <= 0 {
			return fmt.Errorf("faults: storm at %v has non-positive outage count %d", e.Start, e.Count)
		}
		if e.Outage <= 0 {
			return fmt.Errorf("faults: storm at %v has non-positive outage duration %v", e.Start, e.Outage)
		}
	default:
		return fmt.Errorf("faults: unknown episode kind %d", int(e.Kind))
	}
	return nil
}

// Schedule is a validated script of fault episodes, sorted by start time.
// The zero-value and nil Schedules are valid and inject nothing.
type Schedule struct {
	Episodes []Episode
}

// New builds a Schedule from episodes, validating each and sorting by start
// time (ties keep the given order, so schedules render deterministically).
func New(episodes ...Episode) (*Schedule, error) {
	s := &Schedule{Episodes: append([]Episode(nil), episodes...)}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sort.SliceStable(s.Episodes, func(i, j int) bool {
		return s.Episodes[i].Start < s.Episodes[j].Start
	})
	return s, nil
}

// Validate checks every episode.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for _, e := range s.Episodes {
		if err := e.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Empty reports whether the schedule injects nothing. It is nil-safe, so
// callers can hold a *Schedule field and never branch on nil.
func (s *Schedule) Empty() bool { return s == nil || len(s.Episodes) == 0 }

// Counts reports how many episodes the schedule scripts and how many
// individual bearer outages its storm episodes expand into — the
// fault-schedule activation counters telemetry reports per flow. Nil-safe.
func (s *Schedule) Counts() (episodes, stormOutages int) {
	if s.Empty() {
		return 0, 0
	}
	for _, e := range s.Episodes {
		episodes++
		if e.Kind == Storm {
			stormOutages += e.Count
		}
	}
	return episodes, stormOutages
}

// Scale returns a copy with every episode's severity multiplied by sev:
// blackout durations, burst-loss probabilities, delay-spike magnitudes and
// storm outage counts scale linearly, and rate-collapse factors move from 1
// (sev 0) through the configured factor (sev 1) toward the trickle floor.
// Episodes scaled to nothing are dropped, so Scale(0) is Empty; sev > 1
// intensifies the schedule beyond its scripted values.
func (s *Schedule) Scale(sev float64) *Schedule {
	if s.Empty() || sev < 0 {
		return &Schedule{}
	}
	out := &Schedule{Episodes: make([]Episode, 0, len(s.Episodes))}
	for _, e := range s.Episodes {
		switch e.Kind {
		case Blackout:
			e.Dur = time.Duration(float64(e.Dur) * sev)
		case AckBurst:
			e.P = math.Min(e.P*sev, 1)
		case RateCollapse:
			e.Factor = math.Max(1-sev*(1-e.Factor), minRateFactor)
			if e.Factor >= 1 {
				continue
			}
		case DelaySpike:
			e.Delay = time.Duration(float64(e.Delay) * sev)
		case Storm:
			e.Count = int(float64(e.Count)*sev + 0.5)
		}
		if e.Validate() != nil {
			continue // scaled to nothing
		}
		out.Episodes = append(out.Episodes, e)
	}
	return out
}

// DataLossProb returns the episode-driven loss probability for a downlink
// packet sent at flow time sent and arriving at arrival: a blackout at
// either transit epoch is certain loss (the packet either leaves into or
// lands in a dead zone). Overlapping episodes combine by the worst case.
func (s *Schedule) DataLossProb(sent, arrival time.Duration) float64 {
	if s.Empty() {
		return 0
	}
	for _, e := range s.Episodes {
		if e.Kind == Blackout && (e.active(sent) || e.active(arrival)) {
			return 1
		}
	}
	return 0
}

// AckLossProb returns the episode-driven loss probability for an uplink ACK
// with the given transit epochs: blackouts are certain loss, and AckBurst
// episodes contribute their P (the worst active one wins).
func (s *Schedule) AckLossProb(sent, arrival time.Duration) float64 {
	if s.Empty() {
		return 0
	}
	p := 0.0
	for _, e := range s.Episodes {
		switch e.Kind {
		case Blackout:
			if e.active(sent) || e.active(arrival) {
				return 1
			}
		case AckBurst:
			if e.active(sent) && e.P > p {
				p = e.P
			}
		}
	}
	return p
}

// RateScale returns the line-rate multiplier at flow time now: the product
// of all active rate-collapse factors, floored at the trickle minimum. It
// has the signature netem.LinkConfig.RateScale expects.
func (s *Schedule) RateScale(now time.Duration) float64 {
	f := 1.0
	if s.Empty() {
		return f
	}
	for _, e := range s.Episodes {
		if e.Kind == RateCollapse && e.active(now) {
			f *= e.Factor
		}
	}
	return math.Max(f, minRateFactor)
}

// ExtraDelay returns the summed one-way delay inflation of all delay-spike
// episodes active at flow time now.
func (s *Schedule) ExtraDelay(now time.Duration) time.Duration {
	if s.Empty() {
		return 0
	}
	var d time.Duration
	for _, e := range s.Episodes {
		if e.Kind == DelaySpike && e.active(now) {
			d += e.Delay
		}
	}
	return d
}

// StormOutages expands the schedule's storm episodes into concrete bearer
// outages for cellular.Channel.AddOutages. Outage starts are placed
// uniformly inside each storm window by an rng derived from (seed,
// sim.StreamFaultStorm), so placement is deterministic per flow and
// independent of every other random stream in the simulation.
func (s *Schedule) StormOutages(seed int64) []cellular.Outage {
	if s.Empty() {
		return nil
	}
	var out []cellular.Outage
	rng := sim.NewRand(seed, sim.StreamFaultStorm)
	for _, e := range s.Episodes {
		if e.Kind != Storm {
			continue
		}
		for i := 0; i < e.Count; i++ {
			at := e.Start + time.Duration(rng.Int63n(int64(e.Dur)))
			out = append(out, cellular.Outage{Start: at, End: at + e.Outage})
		}
	}
	return out
}

// Stress returns the canonical stress schedule campaigns sweep: a handoff
// storm across the cruise phase, an extended blackout, an ACK burst-loss
// episode, a rate collapse and a delay spike, placed at fixed fractions of
// the flow duration so the same script scales to any campaign length. Scale
// it to sweep severity; Scale(1) is the scripted intensity below.
func Stress(flowDuration time.Duration) *Schedule {
	if flowDuration <= 0 {
		return &Schedule{}
	}
	frac := func(f float64) time.Duration { return time.Duration(float64(flowDuration) * f) }
	s, err := New(
		Episode{Kind: Storm, Start: frac(0.10), Dur: frac(0.70), Count: 4, Outage: 6 * time.Second},
		Episode{Kind: Blackout, Start: frac(0.30), Dur: 3 * time.Second},
		Episode{Kind: AckBurst, Start: frac(0.50), Dur: 2 * time.Second, P: 0.85},
		Episode{Kind: RateCollapse, Start: frac(0.65), Dur: frac(0.08), Factor: 0.25},
		Episode{Kind: DelaySpike, Start: frac(0.80), Dur: 3 * time.Second, Delay: 350 * time.Millisecond},
	)
	if err != nil {
		panic(fmt.Sprintf("faults: Stress schedule invalid: %v", err)) // unreachable for positive durations
	}
	return s
}
