package faults

import (
	"math/rand"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
)

// lossInjector layers schedule-driven loss over an inner LossModel. The
// inner model is consulted first on every packet so its burst state advances
// identically whether or not a fault fires, keeping faulted and unfaulted
// runs of the same seed comparable packet for packet.
type lossInjector struct {
	inner netem.LossModel
	prob  func(sent, arrival time.Duration) float64
	rng   *rand.Rand
	// drops, when non-nil, counts packets the schedule killed that the inner
	// model would have let through (fault-drop attribution for telemetry).
	// Counting never changes rng consumption, so counted and uncounted runs
	// of the same seed stay packet-identical.
	drops *int64
}

// Drop implements netem.LossModel.
func (li *lossInjector) Drop(sent, arrival time.Duration) bool {
	dropped := li.inner.Drop(sent, arrival)
	if p := li.prob(sent, arrival); p > 0 && (p >= 1 || li.rng.Float64() < p) {
		if !dropped && li.drops != nil {
			*li.drops++
		}
		dropped = true
	}
	return dropped
}

// WrapDataLoss layers the schedule's data-direction faults (blackouts) over
// inner. The rng should be derived from the flow seed on
// sim.StreamFaultData so fault draws perturb no other stream.
func (s *Schedule) WrapDataLoss(inner netem.LossModel, rng *rand.Rand) netem.LossModel {
	return s.WrapDataLossCounted(inner, rng, nil)
}

// WrapDataLossCounted is WrapDataLoss with fault-drop attribution: every
// packet the schedule (and not the inner model) kills increments *drops.
// A nil drops counts nothing and behaves exactly like WrapDataLoss.
func (s *Schedule) WrapDataLossCounted(inner netem.LossModel, rng *rand.Rand, drops *int64) netem.LossModel {
	if s.Empty() {
		return inner
	}
	return &lossInjector{inner: inner, prob: s.DataLossProb, rng: rng, drops: drops}
}

// WrapAckLoss layers the schedule's ACK-direction faults (blackouts and ACK
// burst-loss episodes) over inner; use an rng on sim.StreamFaultAck.
func (s *Schedule) WrapAckLoss(inner netem.LossModel, rng *rand.Rand) netem.LossModel {
	return s.WrapAckLossCounted(inner, rng, nil)
}

// WrapAckLossCounted is WrapAckLoss with fault-drop attribution into *drops;
// nil drops counts nothing.
func (s *Schedule) WrapAckLossCounted(inner netem.LossModel, rng *rand.Rand, drops *int64) netem.LossModel {
	if s.Empty() {
		return inner
	}
	return &lossInjector{inner: inner, prob: s.AckLossProb, rng: rng, drops: drops}
}

// delayInjector adds the schedule's delay spikes to an inner DelayModel.
type delayInjector struct {
	inner netem.DelayModel
	s     *Schedule
}

// Sample implements netem.DelayModel.
func (di *delayInjector) Sample(now time.Duration) time.Duration {
	return di.inner.Sample(now) + di.s.ExtraDelay(now)
}

// WrapDelay adds the schedule's delay-spike inflation to inner.
func (s *Schedule) WrapDelay(inner netem.DelayModel) netem.DelayModel {
	if s.Empty() {
		return inner
	}
	return &delayInjector{inner: inner, s: s}
}

// Direction selects which side of the schedule a wrapped stage applies.
type Direction int

// Stage directions.
const (
	Data Direction = iota + 1 // downlink: blackouts
	Ack                       // uplink: blackouts and ACK bursts
)

// Stage wraps any netem.Sender with schedule-driven loss at the packet's
// entry epoch, so whole chain stages (the MPTCP shared cell, a backbone
// segment) can be fault-injected without rebuilding them. Drops are
// reported synchronously as channel drops, like a Link's own loss model.
type Stage struct {
	inner netem.Sender
	s     *Schedule
	dir   Direction
	clock *sim.Simulator
	rng   *rand.Rand
}

// NewStage wraps inner with the schedule's dir-side faults.
func NewStage(simulator *sim.Simulator, inner netem.Sender, s *Schedule, dir Direction, rng *rand.Rand) *Stage {
	if simulator == nil || inner == nil {
		panic("faults: NewStage requires a simulator and an inner sender")
	}
	if dir != Data && dir != Ack {
		panic("faults: NewStage with unknown direction")
	}
	return &Stage{inner: inner, s: s, dir: dir, clock: simulator, rng: rng}
}

// Send implements netem.Sender.
func (st *Stage) Send(size int, deliver netem.Handler) (bool, netem.DropKind) {
	now := st.clock.Now()
	var p float64
	if st.dir == Data {
		p = st.s.DataLossProb(now, now)
	} else {
		p = st.s.AckLossProb(now, now)
	}
	if p > 0 && (p >= 1 || st.rng.Float64() < p) {
		return false, netem.DropChannel
	}
	return st.inner.Send(size, deliver)
}

var _ netem.Sender = (*Stage)(nil)
