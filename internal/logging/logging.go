// Package logging is a tiny leveled, structured (key=value) logger for the
// service and the distributed layer. Lines are one-per-event, machine-
// greppable and joinable against trace IDs:
//
//	time=2026-08-08T09:15:04.112Z level=info msg="job accepted" job=job-3 kind=unit trace=job-17
//
// A nil *Logger is a valid no-op sink — callers log unconditionally and the
// nil receiver swallows everything, the same gating discipline as
// internal/telemetry and internal/tracing. Loggers are safe for concurrent
// use; derived loggers (With) share the parent's writer and mutex.
package logging

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int

const (
	Debug Level = iota
	Info
	Warn
	Error
)

// String returns the lowercase level token used on the wire.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel maps a token ("debug", "info", "warn", "error") to its Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return Debug, nil
	case "info", "":
		return Info, nil
	case "warn", "warning":
		return Warn, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("logging: unknown level %q (debug, info, warn, error)", s)
}

// Logger writes leveled key=value lines. Create with New; derive scoped
// loggers with With. The zero value is not usable — but a nil *Logger is,
// as a no-op.
type Logger struct {
	mu   *sync.Mutex
	w    io.Writer
	min  Level
	base string // preformatted " k=v" pairs bound by With/New
	now  func() time.Time
}

// New builds a Logger writing to w, dropping lines below min. The optional
// kv pairs are bound to every line (e.g. "svc", "hsrserved").
func New(w io.Writer, min Level, kv ...any) *Logger {
	l := &Logger{mu: &sync.Mutex{}, w: w, min: min, now: time.Now}
	l.base = appendKV(nil, kv)
	return l
}

// With returns a derived logger with extra key=value pairs bound to every
// line. It shares the parent's writer, mutex and level. Nil-safe.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	d := *l
	d.base = l.base + appendKV(nil, kv)
	return &d
}

// Enabled reports whether lines at lv would be written. Nil-safe (false).
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.min }

// Debug logs at debug level. Nil-safe.
func (l *Logger) Debug(msg string, kv ...any) { l.log(Debug, msg, kv) }

// Info logs at info level. Nil-safe.
func (l *Logger) Info(msg string, kv ...any) { l.log(Info, msg, kv) }

// Warn logs at warn level. Nil-safe.
func (l *Logger) Warn(msg string, kv ...any) { l.log(Warn, msg, kv) }

// Error logs at error level. Nil-safe.
func (l *Logger) Error(msg string, kv ...any) { l.log(Error, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	b.WriteString("time=")
	b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(lv.String())
	b.WriteString(" msg=")
	b.WriteString(quote(msg))
	b.WriteString(l.base)
	b.WriteString(appendKV(nil, kv))
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// appendKV renders kv pairs as " k=v" runs. An odd trailing value is kept
// under the key "!MISSING" rather than dropped.
func appendKV(_ []byte, kv []any) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		key, ok := "", false
		if s, isStr := kv[i].(string); isStr {
			key, ok = s, true
		}
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		var val any = "!MISSING"
		if i+1 < len(kv) {
			val = kv[i+1]
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(formatValue(val))
	}
	return b.String()
}

// formatValue renders one value, quoting strings that would break the
// key=value grammar.
func formatValue(v any) string {
	var s string
	switch x := v.(type) {
	case string:
		s = x
	case error:
		s = x.Error()
	case fmt.Stringer:
		s = x.String()
	default:
		s = fmt.Sprint(x)
	}
	return quote(s)
}

// quote wraps s in Go quotes when it contains spaces, quotes, '=' or
// control characters; plain tokens stay bare for readability.
func quote(s string) string {
	if s == "" {
		return `""`
	}
	for _, r := range s {
		if r <= ' ' || r == '"' || r == '=' || r == 0x7f {
			return strconv.Quote(s)
		}
	}
	return s
}
