package logging

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixed pins the timestamp so line assertions are exact.
func fixed(l *Logger) *Logger {
	l.now = func() time.Time {
		return time.Date(2026, 8, 8, 9, 15, 4, 112e6, time.UTC)
	}
	return l
}

func TestLineFormat(t *testing.T) {
	var b strings.Builder
	l := fixed(New(&b, Info, "svc", "hsrserved"))
	l.Info("job accepted", "job", "job-3", "kind", "unit", "trace", "job-17")
	want := `time=2026-08-08T09:15:04.112Z level=info msg="job accepted" svc=hsrserved job=job-3 kind=unit trace=job-17` + "\n"
	if b.String() != want {
		t.Fatalf("line:\n%q\nwant\n%q", b.String(), want)
	}
}

func TestLevels(t *testing.T) {
	var b strings.Builder
	l := New(&b, Warn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	out := b.String()
	if strings.Contains(out, "level=debug") || strings.Contains(out, "level=info") {
		t.Fatalf("below-min lines written:\n%s", out)
	}
	if !strings.Contains(out, "level=warn") || !strings.Contains(out, "level=error") {
		t.Fatalf("warn/error lines missing:\n%s", out)
	}
	if l.Enabled(Info) || !l.Enabled(Error) {
		t.Fatal("Enabled disagrees with the min level")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": Debug, "info": Info, "": Info, "WARN": Warn,
		"warning": Warn, " error ": Error,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("unknown level accepted")
	}
}

func TestWith(t *testing.T) {
	var b strings.Builder
	l := New(&b, Info, "svc", "x")
	d := l.With("comp", "dist")
	d.Info("hello")
	l.Info("parent untouched")
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if !strings.Contains(lines[0], "svc=x comp=dist") {
		t.Fatalf("derived line missing bound pairs: %q", lines[0])
	}
	if strings.Contains(lines[1], "comp=dist") {
		t.Fatalf("parent logger inherited the child's pairs: %q", lines[1])
	}
}

func TestNilLogger(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x", "k", "v")
	l.Warn("x")
	l.Error("x")
	if l.Enabled(Error) {
		t.Fatal("nil logger claims to be enabled")
	}
	if l.With("k", "v") != nil {
		t.Fatal("With on nil must stay nil")
	}
}

func TestValueFormatting(t *testing.T) {
	var b strings.Builder
	l := New(&b, Info)
	l.Info("m",
		"err", errors.New("boom: it = broke"),
		"dur", 1500*time.Millisecond,
		"n", 42,
		"empty", "",
		"odd")
	out := b.String()
	for _, want := range []string{
		`err="boom: it = broke"`, // quoted: spaces and '='
		"dur=1.5s",               // Stringer
		"n=42",
		`empty=""`,
		"odd=!MISSING",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("line %q missing %q", out, want)
		}
	}
}

// TestConcurrentUse exercises the shared mutex across a parent and a derived
// logger; run with -race this pins the locking contract.
func TestConcurrentUse(t *testing.T) {
	var b strings.Builder
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	l := New(w, Info)
	d := l.With("comp", "x")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Info("a")
				d.Info("b")
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	mu.Unlock()
	if len(lines) != 8*50*2 {
		t.Fatalf("%d lines, want %d", len(lines), 8*50*2)
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "time=") {
			t.Fatalf("interleaved line: %q", ln)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
