package tracing

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteTrace renders spans in the Chrome trace event format (the JSON array
// flavor), one event per line, so the output is simultaneously:
//
//   - a valid single JSON document (jq '.' parses it),
//   - line-oriented (grep/wc work on it like JSONL),
//   - loadable as-is in Perfetto (ui.perfetto.dev) and chrome://tracing.
//
// Each node of the run becomes one "process" on the wall-clock timeline,
// with one track per span kind; spans carrying a virtual-time interval are
// additionally drawn on a separate per-node "virtual time" process whose
// clock is the simulated one. Every wall event embeds its full native
// SpanRecord under args.span, so ReadTrace round-trips losslessly.
func WriteTrace(w io.Writer, spans []SpanRecord) error {
	bw := bufio.NewWriter(w)

	// Wall timestamps are emitted relative to the earliest span so the
	// viewer opens at t=0 regardless of Unix epoch nanoseconds.
	var base int64
	for i, s := range spans {
		if i == 0 || s.StartNS < base {
			base = s.StartNS
		}
	}

	// Deterministic process/track assignment: nodes in first-seen order,
	// wall tracks per (node, kind) in first-seen order, one virtual track
	// per virtual span.
	nodePID := map[string]int{}
	trackTID := map[string]int{}
	var events []chromeEvent
	meta := func(name string, pid, tid int, args map[string]any) {
		events = append(events, chromeEvent{Name: name, Ph: "M", PID: pid, TID: tid, Args: args})
	}
	for i := range spans {
		s := &spans[i]
		pid, ok := nodePID[s.Node]
		if !ok {
			pid = 1 + len(nodePID)*2
			nodePID[s.Node] = pid
			meta("process_name", pid, 0, map[string]any{"name": fmt.Sprintf("node %s — wall clock", s.Node)})
		}
		tk := s.Node + "\x00" + s.Kind
		tid, ok := trackTID[tk]
		if !ok {
			tid = 1 + len(trackTID)
			trackTID[tk] = tid
			meta("thread_name", pid, tid, map[string]any{"name": s.Kind})
		}
		dur := float64(s.EndNS-s.StartNS) / 1e3
		events = append(events, chromeEvent{
			Name: s.Name, Cat: s.Kind, Ph: "X",
			TS: float64(s.StartNS-base) / 1e3, Dur: &dur,
			PID: pid, TID: tid,
			Args: map[string]any{"span": s},
		})
		if s.Virtual {
			// The virtual timeline lives on a sibling process whose clock is
			// simulated time; each span gets its own track since flow clocks
			// all start at zero and would otherwise overlap on one track.
			vpid := pid + 1
			if _, ok := nodePID[s.Node+"\x00virtual"]; !ok {
				nodePID[s.Node+"\x00virtual"] = vpid
				meta("process_name", vpid, 0, map[string]any{"name": fmt.Sprintf("node %s — virtual time", s.Node)})
			}
			vtid := 1 + len(trackTID)
			trackTID[s.ID+"\x00virtual"] = vtid
			meta("thread_name", vpid, vtid, map[string]any{"name": s.Name})
			vdur := float64(s.VEndNS-s.VStartNS) / 1e3
			events = append(events, chromeEvent{
				Name: s.Name + " (virtual)", Cat: "virtual", Ph: "X",
				TS: float64(s.VStartNS) / 1e3, Dur: &vdur,
				PID: vpid, TID: vtid,
				Args: map[string]any{"span_id": s.ID},
			})
		}
	}

	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		raw, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(raw); err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := bw.WriteString(sep); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadTrace parses a WriteTrace document back into its native spans,
// skipping metadata events and the virtual-timeline duplicates. The
// round trip WriteTrace → ReadTrace is lossless span for span.
func ReadTrace(r io.Reader) ([]SpanRecord, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("tracing: trace file: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return nil, fmt.Errorf("tracing: trace file must be a JSON array of events, got %v", tok)
	}
	var spans []SpanRecord
	for dec.More() {
		var ev struct {
			Ph   string `json:"ph"`
			Args struct {
				Span *SpanRecord `json:"span"`
			} `json:"args"`
		}
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("tracing: trace event: %w", err)
		}
		if ev.Ph == "X" && ev.Args.Span != nil {
			spans = append(spans, *ev.Args.Span)
		}
	}
	return spans, nil
}

// chromeEvent is one line of the Chrome trace event format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ByStart orders spans by wall start time (then ID, for determinism when
// starts tie). Used by the analyzers; WriteTrace preserves recording order.
func ByStart(spans []SpanRecord) {
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].StartNS != spans[j].StartNS {
			return spans[i].StartNS < spans[j].StartNS
		}
		return spans[i].ID < spans[j].ID
	})
}
