package tracing

import (
	"errors"
	"fmt"
	"time"
)

// wallSlack absorbs clock reads taken microseconds apart on either side of
// a parent/child boundary (and coarse clocks on some platforms) when
// checking same-node interval nesting.
const wallSlack = int64(2 * time.Millisecond)

// Validate checks a span set for structural well-formedness:
//
//   - IDs are present and unique;
//   - every non-empty parent reference resolves within the set;
//   - every wall interval is ordered (start <= end);
//   - same-node children nest inside their parent's wall interval (within
//     wallSlack) — cross-node edges are exempt (clocks are not comparable),
//     as are "attempt" spans, which by design outlive their unit span when
//     a hedged or reassigned duplicate loses the first-result-wins race;
//   - virtual intervals are monotone (vstart <= vend) and nest inside the
//     parent's virtual interval when both carry one.
//
// It returns nil for a well-formed set, or an error joining every violation.
func Validate(spans []SpanRecord) error {
	byID := make(map[string]*SpanRecord, len(spans))
	var errs []error
	for i := range spans {
		s := &spans[i]
		if s.ID == "" {
			errs = append(errs, fmt.Errorf("span %d (%s %q) has no ID", i, s.Kind, s.Name))
			continue
		}
		if _, dup := byID[s.ID]; dup {
			errs = append(errs, fmt.Errorf("duplicate span ID %s", s.ID))
			continue
		}
		byID[s.ID] = s
	}
	for i := range spans {
		s := &spans[i]
		if s.StartNS > s.EndNS {
			errs = append(errs, fmt.Errorf("span %s (%s %q): wall interval inverted (%d > %d)",
				s.ID, s.Kind, s.Name, s.StartNS, s.EndNS))
		}
		if s.Virtual && s.VStartNS > s.VEndNS {
			errs = append(errs, fmt.Errorf("span %s (%s %q): virtual interval inverted (%d > %d)",
				s.ID, s.Kind, s.Name, s.VStartNS, s.VEndNS))
		}
		if s.Parent == "" {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			errs = append(errs, fmt.Errorf("span %s (%s %q): parent %s not in trace",
				s.ID, s.Kind, s.Name, s.Parent))
			continue
		}
		if p.Node == s.Node && s.Kind != "attempt" {
			if s.StartNS < p.StartNS-wallSlack || s.EndNS > p.EndNS+wallSlack {
				errs = append(errs, fmt.Errorf("span %s (%s %q): wall interval [%d, %d] escapes parent %s [%d, %d]",
					s.ID, s.Kind, s.Name, s.StartNS, s.EndNS, p.ID, p.StartNS, p.EndNS))
			}
		}
		if s.Virtual && p.Virtual {
			if s.VStartNS < p.VStartNS || s.VEndNS > p.VEndNS {
				errs = append(errs, fmt.Errorf("span %s (%s %q): virtual interval [%d, %d] escapes parent %s [%d, %d]",
					s.ID, s.Kind, s.Name, s.VStartNS, s.VEndNS, p.ID, p.VStartNS, p.VEndNS))
			}
		}
	}
	return errors.Join(errs...)
}
