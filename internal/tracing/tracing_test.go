package tracing

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestNilSafety pins the zero-overhead-when-off contract: every operation on
// a nil *Trace and nil *Span must be a safe no-op.
func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Node() != "" || tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil trace accessors not zero-valued")
	}
	tr.Add(SpanRecord{ID: "x"})
	sp := tr.StartSpan("", "flow", "f")
	if sp != nil {
		t.Fatal("nil trace must return a nil span")
	}
	if sp.ID() != "" {
		t.Fatal("nil span ID must be empty")
	}
	sp.SetAttr("k", "v")
	sp.SetVirtual(0, 1)
	sp.End()
	sp.End() // double End on nil is fine too
}

func TestSpanRecording(t *testing.T) {
	tr := New("trace-1")
	if tr.ID() != "trace-1" {
		t.Fatalf("trace ID %q", tr.ID())
	}
	if tr.Node() == "" {
		t.Fatal("node nonce empty")
	}
	root := tr.StartSpan("", "job", "job-1")
	child := tr.StartSpan(root.ID(), "flow", "flow-a")
	child.SetAttr("index", "0")
	child.SetVirtual(0, 5e9)
	child.End()
	child.SetAttr("late", "dropped") // after End: must not land
	root.SetAttr("status", "ok")
	root.End()
	root.End() // idempotent

	spans := tr.Spans()
	if len(spans) != 2 || tr.Len() != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Completion order: the child ended first.
	c, r := spans[0], spans[1]
	if c.Kind != "flow" || r.Kind != "job" {
		t.Fatalf("completion order wrong: %s, %s", c.Kind, r.Kind)
	}
	if c.Parent != r.ID {
		t.Fatalf("child parent %q, want %q", c.Parent, r.ID)
	}
	if c.TraceID != "trace-1" || r.TraceID != "trace-1" {
		t.Fatal("trace ID not stamped on spans")
	}
	if !strings.HasPrefix(c.ID, tr.Node()+"-") {
		t.Fatalf("span ID %q not node-prefixed", c.ID)
	}
	if c.Attrs["index"] != "0" {
		t.Fatalf("attrs %v", c.Attrs)
	}
	if _, ok := c.Attrs["late"]; ok {
		t.Fatal("attribute set after End was recorded")
	}
	if !c.Virtual || c.VStartNS != 0 || c.VEndNS != int64(5e9) {
		t.Fatalf("virtual interval %v [%d, %d]", c.Virtual, c.VStartNS, c.VEndNS)
	}
	if c.StartNS > c.EndNS || r.StartNS > r.EndNS {
		t.Fatal("wall interval inverted")
	}
}

func TestStartSpanAt(t *testing.T) {
	tr := New("t")
	start := time.Now().Add(-time.Second)
	sp := tr.StartSpanAt("", "queue-wait", "queue-wait", start)
	sp.End()
	got := tr.Spans()[0]
	if got.StartNS != start.UnixNano() {
		t.Fatalf("start %d, want %d", got.StartNS, start.UnixNano())
	}
	if got.EndNS-got.StartNS < int64(time.Second) {
		t.Fatalf("span shorter than its backdated start: %dns", got.EndNS-got.StartNS)
	}
}

// TestNodeNonceUnique pins the cross-node stitching property: two collectors
// for the same trace ID produce non-colliding span IDs.
func TestNodeNonceUnique(t *testing.T) {
	a, b := New("same"), New("same")
	if a.Node() == b.Node() {
		t.Skip("4-byte nonces collided (1 in 4 billion); rerun")
	}
	sa := a.StartSpan("", "job", "x")
	sb := b.StartSpan("", "job", "x")
	sa.End()
	sb.End()
	if sa.ID() == sb.ID() {
		t.Fatalf("span IDs collided across collectors: %s", sa.ID())
	}
}

// TestWriteReadRoundTrip pins losslessness and the dual format properties:
// the output is one valid JSON document, line-oriented, and ReadTrace
// returns the native spans exactly.
func TestWriteReadRoundTrip(t *testing.T) {
	tr := New("rt")
	a := tr.StartSpan("", "unit", "unit[0,4)")
	a.SetAttr("flows", "4")
	b := tr.StartSpan(a.ID(), "flow", "flow-x")
	b.SetVirtual(0, 2e9)
	b.End()
	a.End()
	in := tr.Spans()

	var buf bytes.Buffer
	if err := WriteTrace(&buf, in); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("trace is not one valid JSON document:\n%s", buf.String())
	}
	// Line-oriented: one event per line between the brackets.
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if lines[0] != "[" || lines[len(lines)-1] != "]" {
		t.Fatalf("not bracketed one-event-per-line: first %q last %q", lines[0], lines[len(lines)-1])
	}
	for _, ln := range lines[1 : len(lines)-1] {
		var ev map[string]any
		if err := json.Unmarshal([]byte(strings.TrimSuffix(ln, ",")), &ev); err != nil {
			t.Fatalf("line not a JSON event: %q: %v", ln, err)
		}
	}

	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip lossy:\n%+v\nvs\n%+v", in, out)
	}
}

func TestWriteTraceVirtualTimeline(t *testing.T) {
	tr := New("v")
	sp := tr.StartSpan("", "flow", "f")
	sp.SetVirtual(0, 3e9)
	sp.End()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr.Spans()); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	s := buf.String()
	if !strings.Contains(s, "virtual time") {
		t.Fatalf("no virtual-time process metadata:\n%s", s)
	}
	if !strings.Contains(s, "f (virtual)") {
		t.Fatalf("no virtual duplicate event:\n%s", s)
	}
	// The virtual duplicate must not be double-counted by ReadTrace.
	spans, err := ReadTrace(strings.NewReader(s))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(spans) != 1 {
		t.Fatalf("ReadTrace returned %d spans, want 1 (virtual duplicate skipped)", len(spans))
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader(`{"not":"an array"}`)); err == nil {
		t.Fatal("non-array input must error")
	}
	if _, err := ReadTrace(strings.NewReader(`[{"ph":"X","args":{"span":`)); err == nil {
		t.Fatal("truncated input must error")
	}
}

func TestValidate(t *testing.T) {
	tr := New("ok")
	p := tr.StartSpan("", "job", "j")
	c := tr.StartSpan(p.ID(), "flow", "f")
	c.SetVirtual(0, 1e9)
	c.End()
	p.End()
	if err := Validate(tr.Spans()); err != nil {
		t.Fatalf("well-formed trace rejected: %v", err)
	}

	bad := []struct {
		name  string
		spans []SpanRecord
		want  string
	}{
		{"missing ID", []SpanRecord{{Kind: "job", Name: "x", EndNS: 1}}, "has no ID"},
		{"duplicate ID", []SpanRecord{
			{ID: "a", EndNS: 1}, {ID: "a", EndNS: 1},
		}, "duplicate span ID"},
		{"dangling parent", []SpanRecord{
			{ID: "a", Parent: "ghost", EndNS: 1},
		}, "parent ghost not in trace"},
		{"inverted wall", []SpanRecord{
			{ID: "a", StartNS: 10, EndNS: 5},
		}, "wall interval inverted"},
		{"inverted virtual", []SpanRecord{
			{ID: "a", EndNS: 1, Virtual: true, VStartNS: 9, VEndNS: 3},
		}, "virtual interval inverted"},
		{"child escapes parent", []SpanRecord{
			{ID: "p", Node: "n", StartNS: 0, EndNS: int64(time.Millisecond)},
			{ID: "c", Node: "n", Parent: "p", Kind: "flow",
				StartNS: 0, EndNS: int64(time.Second)},
		}, "escapes parent"},
		{"virtual escapes parent", []SpanRecord{
			{ID: "p", Node: "n", StartNS: 0, EndNS: 100, Virtual: true, VStartNS: 0, VEndNS: 10},
			{ID: "c", Node: "n", Parent: "p", Kind: "flow",
				StartNS: 0, EndNS: 50, Virtual: true, VStartNS: 0, VEndNS: 99},
		}, "virtual interval"},
	}
	for _, tc := range bad {
		err := Validate(tc.spans)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// Exemptions: a losing attempt span outlives its unit on the same node,
	// and a cross-node child is never interval-checked against its parent.
	exempt := []SpanRecord{
		{ID: "u", Node: "n", Kind: "unit", StartNS: 0, EndNS: 100},
		{ID: "a2", Node: "n", Kind: "attempt", Parent: "u", StartNS: 50, EndNS: 900},
		{ID: "w", Node: "other", Kind: "job", Parent: "a2", StartNS: 1e15, EndNS: 2e15},
	}
	if err := Validate(exempt); err != nil {
		t.Fatalf("exempt shapes rejected: %v", err)
	}
}

func TestByStart(t *testing.T) {
	spans := []SpanRecord{
		{ID: "b", StartNS: 5},
		{ID: "a", StartNS: 5},
		{ID: "c", StartNS: 1},
	}
	ByStart(spans)
	if spans[0].ID != "c" || spans[1].ID != "a" || spans[2].ID != "b" {
		t.Fatalf("order %s %s %s", spans[0].ID, spans[1].ID, spans[2].ID)
	}
}
