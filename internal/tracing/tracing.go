// Package tracing records causally-linked span trees for distributed
// campaign runs: coordinator → unit dispatch/retry/hedge attempts → worker
// jobs → per-flow simulations → cache lookups, each span carrying a
// wall-clock interval, an optional virtual-time (simulated) interval, and
// free-form attributes.
//
// The package follows the same zero-overhead-when-off gating discipline as
// internal/telemetry: components hold a *Trace that may be nil, every method
// on a nil *Trace or nil *Span is a safe no-op, and span recording is
// strictly host-side — it never draws from simulation RNGs, never reorders
// flows, and therefore never perturbs results (the byte-identity tests run
// with tracing on).
//
// Span IDs are globally unique across nodes: every collector prefixes its
// IDs with a per-process random nonce, so a coordinator can stitch span
// batches shipped back by workers (whose job IDs would otherwise collide
// with its own) into one well-formed tree. Export is Chrome-trace /
// Perfetto-compatible; see WriteTrace.
package tracing

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// SpanRecord is one finished span in wire form. Wall-clock times are Unix
// nanoseconds from the recording node's clock; the virtual interval (present
// when Virtual is true) is simulated time in nanoseconds from the flow's own
// clock, which always starts at zero.
type SpanRecord struct {
	// TraceID groups every span of one traced run.
	TraceID string `json:"trace"`
	// ID is the span's globally-unique identifier (node nonce + sequence).
	ID string `json:"id"`
	// Parent is the parent span's ID; empty on a root span. Parents may live
	// on another node (a worker job span's parent is a coordinator attempt
	// span).
	Parent string `json:"parent,omitempty"`
	// Node identifies the recording process (the collector's nonce).
	Node string `json:"node,omitempty"`
	// Kind is the span taxonomy bucket: run, job, queue-wait, task,
	// campaign, unit, attempt, flow, cache, compute.
	Kind string `json:"kind"`
	// Name is the human-facing label (job ID, flow ID, "attempt 2", ...).
	Name string `json:"name"`
	// StartNS and EndNS bound the wall-clock interval (Unix nanoseconds).
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// Virtual marks spans that also carry a simulated-time interval.
	Virtual  bool  `json:"virtual,omitempty"`
	VStartNS int64 `json:"vstart_ns,omitempty"`
	VEndNS   int64 `json:"vend_ns,omitempty"`
	// Attrs carries span attributes (worker URL, attempt number, cache
	// hit/miss, flow index, fault schedule, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Trace collects the spans of one traced run. Create with New; a nil *Trace
// is a valid no-op collector. Safe for concurrent use.
type Trace struct {
	id   string
	node string

	mu    sync.Mutex
	seq   uint64
	spans []SpanRecord
}

// New creates a collector for one traced run. The trace ID groups the run's
// spans; the collector's node nonce makes its span IDs unique across every
// process participating in the run.
func New(traceID string) *Trace {
	var nonce [4]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		// Fall back to the only entropy left; uniqueness degrades gracefully
		// to per-process wall time, which is what the nonce protects anyway.
		now := time.Now().UnixNano()
		for i := range nonce {
			nonce[i] = byte(now >> (8 * i))
		}
	}
	return &Trace{id: traceID, node: hex.EncodeToString(nonce[:])}
}

// ID returns the trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Node returns the collector's node nonce ("" on nil).
func (t *Trace) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// StartSpan opens a span starting now. parent may be empty (root span) or a
// span ID from any node. Nil-safe: a nil receiver returns a nil *Span, on
// which every method is a no-op.
func (t *Trace) StartSpan(parent, kind, name string) *Span {
	return t.StartSpanAt(parent, kind, name, time.Now())
}

// StartSpanAt is StartSpan with an explicit start time, for spans whose
// interval began before the recording code ran (queue wait measured from
// submission).
func (t *Trace) StartSpanAt(parent, kind, name string, start time.Time) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.seq++
	id := fmt.Sprintf("%s-%d", t.node, t.seq)
	t.mu.Unlock()
	return &Span{
		t: t,
		rec: SpanRecord{
			TraceID: t.id,
			ID:      id,
			Parent:  parent,
			Node:    t.node,
			Kind:    kind,
			Name:    name,
			StartNS: start.UnixNano(),
		},
	}
}

// Add appends externally-recorded spans (a worker's batch shipped back on
// the unit result stream) to the collection verbatim. Nil-safe.
func (t *Trace) Add(spans ...SpanRecord) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, spans...)
	t.mu.Unlock()
}

// Spans snapshots every finished span recorded so far, in completion order.
// Nil-safe (nil slice).
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of finished spans. Nil-safe (0).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Span is an in-flight span handle. It records into its Trace on End; all
// methods are nil-safe no-ops and safe for concurrent use (the hedging
// timer may set attributes while the dispatch goroutine ends the span).
type Span struct {
	t    *Trace
	mu   sync.Mutex
	done bool
	rec  SpanRecord
}

// ID returns the span's ID ("" on nil, so a nil span parents children at
// the root).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.rec.ID
}

// SetAttr sets one attribute. Attributes set after End are dropped.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		if s.rec.Attrs == nil {
			s.rec.Attrs = make(map[string]string, 4)
		}
		s.rec.Attrs[key] = value
	}
	s.mu.Unlock()
}

// SetVirtual attaches a simulated-time interval (nanoseconds on the flow's
// virtual clock) to the span.
func (s *Span) SetVirtual(startNS, endNS int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.rec.Virtual = true
		s.rec.VStartNS, s.rec.VEndNS = startNS, endNS
	}
	s.mu.Unlock()
}

// End closes the span at now and records it. Safe to call at most once;
// later calls (and calls on nil) are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.rec.EndNS = time.Now().UnixNano()
	rec := s.rec
	s.mu.Unlock()
	s.t.Add(rec)
}
