package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleTrace() *FlowTrace {
	return &FlowTrace{
		Meta: FlowMeta{
			ID:          "flow-001",
			Operator:    "China Mobile",
			Tech:        "LTE",
			Scenario:    "hsr",
			Seed:        42,
			MSS:         1448,
			DelayedAckB: 2,
			WindowLimit: 64,
			Duration:    90 * time.Second,
		},
		Events: []Event{
			{At: 0, Type: EvDataSend, Seq: 0, Ack: -1, TransmitNo: 1, Cwnd: 1},
			{At: 30 * time.Millisecond, Type: EvDataRecv, Seq: 0, Ack: -1, TransmitNo: 1},
			{At: 31 * time.Millisecond, Type: EvAckSend, Seq: -1, Ack: 1},
			{At: 60 * time.Millisecond, Type: EvAckRecv, Seq: -1, Ack: 1},
			{At: 61 * time.Millisecond, Type: EvDataSend, Seq: 1, Ack: -1, TransmitNo: 1, Cwnd: 2},
			{At: 80 * time.Millisecond, Type: EvDataDrop, Seq: 1, Ack: -1, TransmitNo: 1},
			{At: 1 * time.Second, Type: EvTimeout, Seq: 1, Ack: -1, Backoff: 1},
			{At: 1 * time.Second, Type: EvDataSend, Seq: 1, Ack: -1, TransmitNo: 2, Cwnd: 1},
			{At: 2 * time.Second, Type: EvRecovered, Seq: -1, Ack: -1},
		},
	}
}

func TestEventTypeString(t *testing.T) {
	names := map[EventType]string{
		EvDataSend: "data-send", EvDataRecv: "data-recv", EvDataDrop: "data-drop",
		EvAckSend: "ack-send", EvAckRecv: "ack-recv", EvAckDrop: "ack-drop",
		EvTimeout: "timeout", EvFastRetx: "fast-retx", EvRecovered: "recovered",
	}
	for et, want := range names {
		if got := et.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", et, got, want)
		}
	}
	if got := EventType(99).String(); got != "EventType(99)" {
		t.Errorf("unknown EventType.String = %q", got)
	}
}

func TestRecorderImplementations(t *testing.T) {
	var ft FlowTrace
	ft.Record(Event{Type: EvDataSend, Seq: 0, TransmitNo: 1})
	if len(ft.Events) != 1 {
		t.Fatal("FlowTrace.Record did not append")
	}
	Nop{}.Record(Event{}) // must not panic

	var a, b FlowTrace
	tee := Tee{&a, &b}
	tee.Record(Event{Type: EvAckSend, Ack: 5})
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Error("Tee did not fan out")
	}
}

func TestValidate(t *testing.T) {
	ft := sampleTrace()
	if err := ft.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}

	bad := sampleTrace()
	bad.Events[3].At = 0 // time goes backwards
	if err := bad.Validate(); err == nil {
		t.Error("out-of-order trace accepted")
	}

	bad = sampleTrace()
	bad.Events[0].Seq = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative data seq accepted")
	}

	bad = sampleTrace()
	bad.Events[0].TransmitNo = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero TransmitNo accepted")
	}

	bad = sampleTrace()
	bad.Events[2].Ack = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative ack accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	ft := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ft); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(got.Meta, ft.Meta) {
		t.Errorf("meta round-trip mismatch:\n got %+v\nwant %+v", got.Meta, ft.Meta)
	}
	if !reflect.DeepEqual(got.Events, ft.Events) {
		t.Errorf("events round-trip mismatch:\n got %+v\nwant %+v", got.Events, ft.Events)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	ft := sampleTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, ft); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if !reflect.DeepEqual(got.Meta, ft.Meta) {
		t.Errorf("meta round-trip mismatch:\n got %+v\nwant %+v", got.Meta, ft.Meta)
	}
	if len(got.Events) != len(ft.Events) {
		t.Fatalf("event count = %d, want %d", len(got.Events), len(ft.Events))
	}
	for i := range ft.Events {
		if got.Events[i] != ft.Events[i] {
			t.Errorf("event %d mismatch:\n got %+v\nwant %+v", i, got.Events[i], ft.Events[i])
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("this is not a trace file")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	// Valid magic, bad version.
	var buf bytes.Buffer
	buf.WriteString("HSRT")
	buf.Write([]byte{0xFF, 0xFF})
	if _, err := ReadBinary(&buf); err == nil {
		t.Error("bad version accepted")
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	ft := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ft); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated input at %d bytes accepted", cut)
		}
	}
}

func TestJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"meta":{}}` + "\n" + `{"at": "bogus"}` + "\n")); err == nil {
		t.Error("bad event line accepted")
	}
}

func TestEmptyTraceRoundTrips(t *testing.T) {
	ft := &FlowTrace{Meta: FlowMeta{ID: "empty"}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ft); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if got.Meta.ID != "empty" || len(got.Events) != 0 {
		t.Errorf("empty trace round trip = %+v", got)
	}
}

// Property: any randomly generated trace survives both codecs bit-exactly.
func TestCodecRoundTripProperty(t *testing.T) {
	gen := func(r *rand.Rand) *FlowTrace {
		n := r.Intn(50)
		ft := &FlowTrace{Meta: FlowMeta{
			ID:       "prop",
			Operator: "Op",
			Seed:     r.Int63(),
			MSS:      1448,
			Duration: time.Duration(r.Int63n(int64(time.Hour))),
		}}
		at := time.Duration(0)
		for i := 0; i < n; i++ {
			at += time.Duration(r.Int63n(int64(time.Second)))
			ft.Events = append(ft.Events, Event{
				At:         at,
				Type:       EventType(r.Intn(9) + 1),
				Seq:        r.Int63n(1 << 30),
				Ack:        r.Int63n(1 << 30),
				TransmitNo: r.Intn(10) + 1,
				Cwnd:       r.Float64() * 100,
				Backoff:    r.Intn(7),
			})
		}
		return ft
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ft := gen(r)
		var bin, jsonl bytes.Buffer
		if err := WriteBinary(&bin, ft); err != nil {
			return false
		}
		fromBin, err := ReadBinary(&bin)
		if err != nil {
			return false
		}
		if err := WriteJSONL(&jsonl, ft); err != nil {
			return false
		}
		fromJSON, err := ReadJSONL(&jsonl)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(fromBin.Meta, ft.Meta) || !reflect.DeepEqual(fromJSON.Meta, ft.Meta) {
			return false
		}
		if len(fromBin.Events) != len(ft.Events) || len(fromJSON.Events) != len(ft.Events) {
			return false
		}
		for i := range ft.Events {
			if fromBin.Events[i] != ft.Events[i] || fromJSON.Events[i] != ft.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
