package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// The binary format:
//
//	magic "HSRT" | uint16 version | uint32 metaLen | meta JSON |
//	uint32 eventCount | eventCount * fixed 50-byte records
//
// Each event record is little-endian:
//
//	int64 at | uint8 type | int64 seq | int64 ack | int32 txno |
//	float64 cwnd | int32 backoff
const (
	binaryMagic   = "HSRT"
	binaryVersion = 1
	eventSize     = 8 + 1 + 8 + 8 + 4 + 8 + 4

	// maxPreallocEvents caps the initial event-slice allocation of ReadBinary:
	// a declared count is only trusted up to this many events (~3 MiB) before
	// any record has actually been read.
	maxPreallocEvents = 1 << 16
)

// ErrBadFormat reports a corrupt or foreign input to a trace reader.
var ErrBadFormat = errors.New("trace: bad format")

// WriteBinary serializes the trace in the compact binary format.
func WriteBinary(w io.Writer, f *FlowTrace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("trace: write magic: %w", err)
	}
	meta, err := json.Marshal(f.Meta)
	if err != nil {
		return fmt.Errorf("trace: marshal meta: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(binaryVersion)); err != nil {
		return fmt.Errorf("trace: write version: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(meta))); err != nil {
		return fmt.Errorf("trace: write meta length: %w", err)
	}
	if _, err := bw.Write(meta); err != nil {
		return fmt.Errorf("trace: write meta: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(f.Events))); err != nil {
		return fmt.Errorf("trace: write event count: %w", err)
	}
	var buf [eventSize]byte
	for _, ev := range f.Events {
		encodeEvent(&buf, ev)
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("trace: write event: %w", err)
		}
	}
	return bw.Flush()
}

func encodeEvent(buf *[eventSize]byte, ev Event) {
	le := binary.LittleEndian
	le.PutUint64(buf[0:], uint64(ev.At))
	buf[8] = byte(ev.Type)
	le.PutUint64(buf[9:], uint64(ev.Seq))
	le.PutUint64(buf[17:], uint64(ev.Ack))
	le.PutUint32(buf[25:], uint32(ev.TransmitNo))
	le.PutUint64(buf[29:], math.Float64bits(ev.Cwnd))
	le.PutUint32(buf[37:], uint32(ev.Backoff))
}

func decodeEvent(buf *[eventSize]byte) Event {
	le := binary.LittleEndian
	return Event{
		At:         time.Duration(int64(le.Uint64(buf[0:]))),
		Type:       EventType(buf[8]),
		Seq:        int64(le.Uint64(buf[9:])),
		Ack:        int64(le.Uint64(buf[17:])),
		TransmitNo: int(int32(le.Uint32(buf[25:]))),
		Cwnd:       math.Float64frombits(le.Uint64(buf[29:])),
		Backoff:    int(int32(le.Uint32(buf[37:]))),
	}
}

// ReadBinary parses a trace in the compact binary format.
func ReadBinary(r io.Reader) (*FlowTrace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("trace: read version: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	var metaLen uint32
	if err := binary.Read(br, binary.LittleEndian, &metaLen); err != nil {
		return nil, fmt.Errorf("trace: read meta length: %w", err)
	}
	if metaLen > 1<<20 {
		return nil, fmt.Errorf("%w: meta length %d too large", ErrBadFormat, metaLen)
	}
	metaBuf := make([]byte, metaLen)
	if _, err := io.ReadFull(br, metaBuf); err != nil {
		return nil, fmt.Errorf("trace: read meta: %w", err)
	}
	out := &FlowTrace{}
	if err := json.Unmarshal(metaBuf, &out.Meta); err != nil {
		return nil, fmt.Errorf("%w: meta: %v", ErrBadFormat, err)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: read event count: %w", err)
	}
	// The count field is attacker-controlled in a corrupt or truncated file:
	// pre-allocate at most maxPreallocEvents and let append grow beyond that,
	// so a bogus 4-billion count costs an error, not gigabytes.
	prealloc := count
	if prealloc > maxPreallocEvents {
		prealloc = maxPreallocEvents
	}
	out.Events = make([]Event, 0, prealloc)
	var buf [eventSize]byte
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: read event %d: %w", i, err)
		}
		out.Events = append(out.Events, decodeEvent(&buf))
	}
	return out, nil
}

// WriteJSONL writes the trace as JSON Lines: one meta object on the first
// line, then one event object per line.
func WriteJSONL(w io.Writer, f *FlowTrace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	header := struct {
		Meta FlowMeta `json:"meta"`
	}{Meta: f.Meta}
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("trace: encode meta: %w", err)
	}
	for i, ev := range f.Events {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("trace: encode event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace in the JSON Lines format.
func ReadJSONL(r io.Reader) (*FlowTrace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var header struct {
		Meta FlowMeta `json:"meta"`
	}
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("%w: meta line: %v", ErrBadFormat, err)
	}
	out := &FlowTrace{Meta: header.Meta}
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("%w: event %d: %v", ErrBadFormat, len(out.Events), err)
		}
		out.Events = append(out.Events, ev)
	}
	return out, nil
}
