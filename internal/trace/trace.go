// Package trace defines the packet-event records produced by the simulated
// TCP endpoints and consumed by the analyzer — the equivalent of the paper's
// two-sided wireshark/shark captures. A FlowTrace carries flow metadata plus
// a time-ordered event list; codecs serialize traces as JSON Lines and as a
// compact binary format.
package trace

import (
	"fmt"
	"time"
)

// EventType enumerates the packet-level events recorded during a flow.
type EventType int

// Event types. Send/Recv events are what a real capture would contain;
// Drop events are ground truth from the emulated link (a luxury the paper's
// authors inferred from two-sided captures — our analyzer uses the same
// two-sided inference and the drops only for test assertions). Timeout and
// FastRetx mark sender congestion-control transitions.
const (
	EvDataSend  EventType = iota + 1 // sender transmitted a data segment
	EvDataRecv                       // receiver got a data segment
	EvDataDrop                       // channel dropped a data segment
	EvAckSend                        // receiver emitted an ACK
	EvAckRecv                        // sender got an ACK
	EvAckDrop                        // channel dropped an ACK
	EvTimeout                        // retransmission timer expired at the sender
	EvFastRetx                       // triple-duplicate-ACK fast retransmit
	EvRecovered                      // sender left the timeout-recovery phase (slow start begins)
)

// String implements fmt.Stringer.
func (e EventType) String() string {
	switch e {
	case EvDataSend:
		return "data-send"
	case EvDataRecv:
		return "data-recv"
	case EvDataDrop:
		return "data-drop"
	case EvAckSend:
		return "ack-send"
	case EvAckRecv:
		return "ack-recv"
	case EvAckDrop:
		return "ack-drop"
	case EvTimeout:
		return "timeout"
	case EvFastRetx:
		return "fast-retx"
	case EvRecovered:
		return "recovered"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// Event is one packet-level occurrence in a flow.
type Event struct {
	At         time.Duration `json:"at"`
	Type       EventType     `json:"type"`
	Seq        int64         `json:"seq"`            // data segment index (0-based); -1 when not applicable
	Ack        int64         `json:"ack"`            // cumulative ACK: next expected segment; -1 when not applicable
	TransmitNo int           `json:"txno,omitempty"` // 1 = original transmission, 2+ = retransmission
	Cwnd       float64       `json:"cwnd,omitempty"` // sender congestion window (packets) at the event
	Backoff    int           `json:"backoff,omitempty"`
}

// FlowMeta describes one captured flow.
type FlowMeta struct {
	ID          string        `json:"id"`
	Operator    string        `json:"operator"`
	Tech        string        `json:"tech"`
	Scenario    string        `json:"scenario"` // "hsr" or "stationary"
	Seed        int64         `json:"seed"`
	MSS         int           `json:"mss"`
	DelayedAckB int           `json:"b"`  // data packets acknowledged per ACK
	WindowLimit int           `json:"wm"` // receiver advertised window, packets
	Duration    time.Duration `json:"duration"`
}

// FlowTrace is a complete capture of one flow.
type FlowTrace struct {
	Meta   FlowMeta `json:"meta"`
	Events []Event  `json:"-"`
}

// Record implements Recorder by appending to the event list.
func (f *FlowTrace) Record(ev Event) {
	f.Events = append(f.Events, ev)
}

// Grow reserves capacity for at least n further events. Materializing
// callers that can estimate the event count from the flow length use it to
// avoid repeated append doublings over multi-megabyte event lists; capacity
// never affects the recorded contents.
func (f *FlowTrace) Grow(n int) {
	if n <= cap(f.Events)-len(f.Events) {
		return
	}
	grown := make([]Event, len(f.Events), len(f.Events)+n)
	copy(grown, f.Events)
	f.Events = grown
}

// Recorder receives packet events as the simulation produces them.
type Recorder interface {
	Record(Event)
}

// Nop is a Recorder that discards all events, for runs where only endpoint
// counters matter (e.g. benchmarks of raw simulation speed).
type Nop struct{}

// Record implements Recorder.
func (Nop) Record(Event) {}

// Tee fans events out to multiple recorders.
type Tee []Recorder

// Record implements Recorder.
func (t Tee) Record(ev Event) {
	for _, r := range t {
		r.Record(ev)
	}
}

var (
	_ Recorder = (*FlowTrace)(nil)
	_ Recorder = Nop{}
	_ Recorder = Tee(nil)
)

// Validate performs structural checks on a trace: events must be in
// nondecreasing time order and sequence numbers must be sane.
func (f *FlowTrace) Validate() error {
	var prev time.Duration
	for i, ev := range f.Events {
		if err := ValidateEvent(i, ev, prev); err != nil {
			return err
		}
		prev = ev.At
	}
	return nil
}

// ValidateEvent checks one event against the structural rules Validate
// enforces: i is the event's position in the stream and prev the timestamp
// of the event before it (zero for the first). Streaming consumers apply the
// same checks incrementally that Validate applies to a materialized trace,
// so both paths reject a malformed stream with identical errors.
func ValidateEvent(i int, ev Event, prev time.Duration) error {
	if ev.At < prev {
		return fmt.Errorf("trace: event %d at %v precedes previous event at %v", i, ev.At, prev)
	}
	switch ev.Type {
	case EvDataSend, EvDataRecv, EvDataDrop:
		if ev.Seq < 0 {
			return fmt.Errorf("trace: event %d (%v) has negative seq", i, ev.Type)
		}
		if ev.TransmitNo < 1 {
			return fmt.Errorf("trace: event %d (%v) has TransmitNo %d < 1", i, ev.Type, ev.TransmitNo)
		}
	case EvAckSend, EvAckRecv, EvAckDrop:
		if ev.Ack < 0 {
			return fmt.Errorf("trace: event %d (%v) has negative ack", i, ev.Type)
		}
	}
	return nil
}
