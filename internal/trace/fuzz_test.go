package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// seedCorpus returns serialized traces used as fuzz seeds.
func seedCorpus(t testing.TB) (bin, jsonl []byte) {
	t.Helper()
	ft := sampleTrace()
	var b, j bytes.Buffer
	if err := WriteBinary(&b, ft); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&j, ft); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), j.Bytes()
}

// FuzzReadBinary checks the binary decoder never panics and that whatever
// it accepts round-trips through the encoder byte-identically at the
// event level.
func FuzzReadBinary(f *testing.F) {
	bin, _ := seedCorpus(f)
	f.Add(bin)
	f.Add([]byte("HSRT"))
	f.Add([]byte{})
	f.Add([]byte("garbage input that is not a trace"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, ft); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		back, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(back.Meta, ft.Meta) || len(back.Events) != len(ft.Events) {
			t.Fatal("binary round-trip mismatch")
		}
	})
}

// FuzzReadJSONL checks the JSONL decoder never panics on arbitrary input.
func FuzzReadJSONL(f *testing.F) {
	_, jsonl := seedCorpus(f)
	f.Add(jsonl)
	f.Add([]byte(`{"meta":{}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"meta":{"id":"x"}}` + "\n" + `{"at":1,"type":1,"seq":0,"ack":-1,"txno":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteJSONL(&out, ft); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		if _, err := ReadJSONL(&out); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
