package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// seedCorpus returns serialized traces used as fuzz seeds.
func seedCorpus(t testing.TB) (bin, jsonl []byte) {
	t.Helper()
	ft := sampleTrace()
	var b, j bytes.Buffer
	if err := WriteBinary(&b, ft); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&j, ft); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), j.Bytes()
}

// checkedInCorpus loads the hand-crafted hostile inputs under
// testdata/corpus: truncated headers, bogus event counts, oversized meta
// lengths — one file per historical bounds check. Returned as name→bytes.
func checkedInCorpus(t testing.TB) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "corpus", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("testdata/corpus is empty; the checked-in seed corpus is missing")
	}
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = data
	}
	return out
}

// TestCorpusRegression replays the checked-in corpus on every normal go
// test run: each hostile input must be rejected with an error — quickly,
// without a panic, and without the decoder trusting the declared sizes.
func TestCorpusRegression(t *testing.T) {
	for name, data := range checkedInCorpus(t) {
		t.Run(name, func(t *testing.T) {
			if strings.HasSuffix(name, ".jsonl") {
				if _, err := ReadJSONL(bytes.NewReader(data)); err == nil {
					t.Error("corrupt JSONL input accepted")
				}
				return
			}
			if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
				t.Error("corrupt binary input accepted")
			}
		})
	}
}

// TestReadBinaryCapsPreallocation feeds a well-formed header whose count
// field promises ~4 billion events: the reader must fail on the missing
// records instead of pre-allocating gigabytes up front.
func TestReadBinaryCapsPreallocation(t *testing.T) {
	var b bytes.Buffer
	b.WriteString(binaryMagic)
	b.Write([]byte{binaryVersion, 0}) // uint16 LE version
	b.Write([]byte{2, 0, 0, 0})       // metaLen 2
	b.WriteString("{}")
	b.Write([]byte{0xff, 0xff, 0xff, 0xff}) // count 2^32-1, no records follow
	if _, err := ReadBinary(&b); err == nil {
		t.Fatal("truncated 4-billion-event trace accepted")
	}
}

// FuzzReadBinary checks the binary decoder never panics and that whatever
// it accepts round-trips through the encoder byte-identically at the
// event level.
func FuzzReadBinary(f *testing.F) {
	bin, _ := seedCorpus(f)
	f.Add(bin)
	f.Add([]byte("HSRT"))
	f.Add([]byte{})
	f.Add([]byte("garbage input that is not a trace"))
	for name, data := range checkedInCorpus(f) {
		if strings.HasSuffix(name, ".hsrt") {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, ft); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		back, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(back.Meta, ft.Meta) || len(back.Events) != len(ft.Events) {
			t.Fatal("binary round-trip mismatch")
		}
	})
}

// FuzzReadJSONL checks the JSONL decoder never panics on arbitrary input.
func FuzzReadJSONL(f *testing.F) {
	_, jsonl := seedCorpus(f)
	f.Add(jsonl)
	f.Add([]byte(`{"meta":{}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"meta":{"id":"x"}}` + "\n" + `{"at":1,"type":1,"seq":0,"ack":-1,"txno":1}`))
	for name, data := range checkedInCorpus(f) {
		if strings.HasSuffix(name, ".jsonl") {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteJSONL(&out, ft); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		if _, err := ReadJSONL(&out); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
