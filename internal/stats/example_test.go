package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExampleCDF builds an empirical distribution and queries it.
func ExampleCDF() {
	c := stats.NewCDF([]float64{1, 2, 3, 4})
	fmt.Printf("P(X <= 2.5) = %.2f\n", c.At(2.5))
	fmt.Printf("median = %.1f\n", c.Quantile(0.5))
	// Output:
	// P(X <= 2.5) = 0.50
	// median = 2.5
}

// ExamplePearson correlates two paired samples.
func ExamplePearson() {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	fmt.Printf("r = %.0f\n", stats.Pearson(x, y))
	// Output:
	// r = 1
}
