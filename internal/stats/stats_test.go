package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= eps
}

func TestSum(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3.5}, 3.5},
		{"several", []float64{1, 2, 3, 4}, 10},
		{"negatives", []float64{-1, 1, -2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Sum(tt.xs); got != tt.want {
				t.Errorf("Sum(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %v, want NaN", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v, want 4", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	if got := Variance([]float64{1}); !math.IsNaN(got) {
		t.Errorf("Variance of single sample = %v, want NaN", got)
	}
	// Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sum of squared deviations 32,
	// unbiased variance 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(want))
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if got := Min(nil); !math.IsNaN(got) {
		t.Errorf("Min(nil) = %v, want NaN", got)
	}
	if got := Max(nil); !math.IsNaN(got) {
		t.Errorf("Max(nil) = %v, want NaN", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
		{0.125, 1.5}, // interpolated halfway between 1 and 2
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.p); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(p=%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Quantile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("Quantile(nil) = %v, want NaN", got)
	}
	if got := Quantile(xs, -0.1); !math.IsNaN(got) {
		t.Errorf("Quantile(p<0) = %v, want NaN", got)
	}
	if got := Quantile(xs, 1.1); !math.IsNaN(got) {
		t.Errorf("Quantile(p>1) = %v, want NaN", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Median = %v, want 2.5", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}

// Property: for any sample, Min <= Quantile(p) <= Max and Quantile is
// monotone in p.
func TestQuantileProperties(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		frac := func(p float64) float64 { return math.Abs(p) - math.Floor(math.Abs(p)) }
		a, b := frac(p1), frac(p2)
		if a > b {
			a, b = b, a
		}
		qa, qb := Quantile(xs, a), Quantile(xs, b)
		return qa >= Min(xs) && qb <= Max(xs) && qa <= qb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the running accumulator agrees with the batch formulas.
func TestRunningMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		var r Running
		for _, x := range xs {
			r.Add(x)
		}
		if r.N() != len(xs) {
			return false
		}
		if len(xs) == 0 {
			return math.IsNaN(r.Mean()) && math.IsNaN(r.Min()) && math.IsNaN(r.Max())
		}
		scale := math.Max(1, math.Abs(Mean(xs)))
		if !almostEqual(r.Mean(), Mean(xs), 1e-9*scale) {
			return false
		}
		if r.Min() != Min(xs) || r.Max() != Max(xs) {
			return false
		}
		if len(xs) >= 2 {
			v := Variance(xs)
			if !almostEqual(r.Variance(), v, 1e-6*math.Max(1, v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Variance()) {
		t.Error("empty Running should report NaN moments")
	}
	if r.Sum() != 0 {
		t.Errorf("empty Running Sum = %v, want 0", r.Sum())
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Pearson perfect positive = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Pearson perfect negative = %v, want -1", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if got := Pearson([]float64{1, 2}, []float64{1}); !math.IsNaN(got) {
		t.Errorf("Pearson mismatched lengths = %v, want NaN", got)
	}
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); !math.IsNaN(got) {
		t.Errorf("Pearson zero-variance x = %v, want NaN", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform has Spearman correlation exactly 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // x^3: nonlinear but monotone
	if got := Spearman(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Spearman(x, x^3) = %v, want 1", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{1, 2, 2, 3}
	if got := Spearman(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Spearman with ties = %v, want 1", got)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1 exactly
	fit := LinearFit(xs, ys)
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Errorf("LinearFit = %+v, want slope 2 intercept 1", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("LinearFit R2 = %v, want 1", fit.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	fit := LinearFit([]float64{1, 1}, []float64{2, 3})
	if !math.IsNaN(fit.Slope) {
		t.Errorf("LinearFit zero-variance x slope = %v, want NaN", fit.Slope)
	}
	fit = LinearFit([]float64{1}, []float64{2})
	if !math.IsNaN(fit.Slope) {
		t.Errorf("LinearFit single point slope = %v, want NaN", fit.Slope)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := r.Float64() * 10
		xs = append(xs, x)
		ys = append(ys, 3*x-2+r.NormFloat64()*0.01)
	}
	fit := LinearFit(xs, ys)
	if !almostEqual(fit.Slope, 3, 0.01) || !almostEqual(fit.Intercept, -2, 0.02) {
		t.Errorf("noisy LinearFit = %+v, want approx slope 3 intercept -2", fit)
	}
	if fit.R2 < 0.999 {
		t.Errorf("noisy LinearFit R2 = %v, want > 0.999", fit.R2)
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{2.5, 0.5},
		{4, 1},
		{10, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("CDF.At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if c.Len() != 4 {
		t.Errorf("CDF.Len = %d, want 4", c.Len())
	}
	if got := c.Mean(); got != 2.5 {
		t.Errorf("CDF.Mean = %v, want 2.5", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if got := c.At(1); !math.IsNaN(got) {
		t.Errorf("empty CDF.At = %v, want NaN", got)
	}
	if got := c.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty CDF.Quantile = %v, want NaN", got)
	}
	if pts := c.Points(10); pts != nil {
		t.Errorf("empty CDF.Points = %v, want nil", pts)
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	c := NewCDF(xs)
	pts := c.Points(20)
	if len(pts) != 20 {
		t.Fatalf("Points length = %d, want 20", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].P <= pts[i-1].P {
			t.Errorf("Points not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
}

// Property: CDF.At is a valid distribution function — within [0,1],
// monotone, and consistent with Quantile.
func TestCDFProperties(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		if a > b {
			a, b = b, a
		}
		pa, pb := c.At(a), c.At(b)
		if pa < 0 || pa > 1 || pb < 0 || pb > 1 || pa > pb {
			return false
		}
		below := math.Nextafter(Min(xs), math.Inf(-1))
		return c.At(Max(xs)) == 1 && c.At(below) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCDFValuesIsCopy(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2})
	v := c.Values()
	v[0] = 99
	if c.Quantile(0) != 1 {
		t.Error("mutating Values() result affected the CDF")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2", h.Over)
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, want := range wantCounts {
		if h.Counts[i] != want {
			t.Errorf("Counts[%d] = %d, want %d", i, h.Counts[i], want)
		}
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.Fraction(0); got != 0.25 {
		t.Errorf("Fraction(0) = %v, want 0.25", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("zero bins", func() { NewHistogram(0, 1, 0) })
	assertPanics("inverted range", func() { NewHistogram(1, 0, 4) })
}

func TestHistogramEmptyFraction(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if got := h.Fraction(0); !math.IsNaN(got) {
		t.Errorf("empty histogram Fraction = %v, want NaN", got)
	}
}
