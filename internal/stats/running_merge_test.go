package stats

import (
	"math"
	"testing"
)

func TestRunningMergeMatchesDirectAdds(t *testing.T) {
	xs := []float64{3, -1, 4, 1, -5, 9, 2.5, 6, -5.3, 5}
	for split := 0; split <= len(xs); split++ {
		var a, b, direct Running
		for i, x := range xs {
			if i < split {
				a.Add(x)
			} else {
				b.Add(x)
			}
			direct.Add(x)
		}
		a.Merge(&b)
		if a.N() != direct.N() {
			t.Fatalf("split %d: N = %d, want %d", split, a.N(), direct.N())
		}
		if math.Abs(a.Mean()-direct.Mean()) > 1e-12 {
			t.Errorf("split %d: mean = %v, want %v", split, a.Mean(), direct.Mean())
		}
		if math.Abs(a.Variance()-direct.Variance()) > 1e-10 {
			t.Errorf("split %d: variance = %v, want %v", split, a.Variance(), direct.Variance())
		}
		if a.Min() != direct.Min() || a.Max() != direct.Max() {
			t.Errorf("split %d: min/max = %v/%v, want %v/%v",
				split, a.Min(), a.Max(), direct.Min(), direct.Max())
		}
		if math.Abs(a.Sum()-direct.Sum()) > 1e-12 {
			t.Errorf("split %d: sum = %v, want %v", split, a.Sum(), direct.Sum())
		}
	}
}

func TestRunningMergeEmptyCases(t *testing.T) {
	// empty <- empty stays empty.
	var a, b Running
	a.Merge(&b)
	if a.N() != 0 || !math.IsNaN(a.Mean()) {
		t.Fatalf("empty merge produced samples: n=%d mean=%v", a.N(), a.Mean())
	}

	// non-empty <- empty is a no-op.
	a.Add(2)
	a.Add(4)
	before := a
	a.Merge(&b)
	if a != before {
		t.Errorf("merging an empty accumulator changed the receiver: %+v -> %+v", before, a)
	}

	// empty <- non-empty copies.
	var c Running
	c.Merge(&a)
	if c.N() != 2 || c.Mean() != 3 || c.Min() != 2 || c.Max() != 4 {
		t.Errorf("copy merge = %+v", c)
	}
}

func TestRunningMergeSingleSamples(t *testing.T) {
	// Two single-sample accumulators: variance must transition NaN -> defined.
	var a, b Running
	a.Add(1)
	b.Add(5)
	if !math.IsNaN(a.Variance()) {
		t.Fatalf("single-sample variance = %v, want NaN", a.Variance())
	}
	a.Merge(&b)
	if a.N() != 2 || a.Mean() != 3 {
		t.Fatalf("merged = n=%d mean=%v", a.N(), a.Mean())
	}
	if got, want := a.Variance(), 8.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("merged variance = %v, want %v", got, want)
	}
}

func TestRunningNaNSamples(t *testing.T) {
	// NaN samples poison mean/variance (as with direct adds) but must not
	// corrupt the count, and merging propagates the poisoning deterministically.
	var a Running
	a.Add(1)
	a.Add(math.NaN())
	if a.N() != 2 {
		t.Fatalf("N = %d, want 2", a.N())
	}
	if !math.IsNaN(a.Mean()) {
		t.Errorf("mean after NaN sample = %v, want NaN", a.Mean())
	}
	var b Running
	b.Add(7)
	b.Merge(&a)
	if b.N() != 3 {
		t.Errorf("merged N = %d, want 3", b.N())
	}
	if !math.IsNaN(b.Mean()) || !math.IsNaN(b.Variance()) {
		t.Errorf("NaN did not propagate through merge: mean=%v var=%v", b.Mean(), b.Variance())
	}
}
