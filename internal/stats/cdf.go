package stats

import (
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution function built from a sample.
// The zero value is an empty distribution; use NewCDF to build one.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// Len returns the number of samples backing the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples less than or equal to x.
// An empty CDF returns NaN.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	// sort.SearchFloat64s returns the first index with sorted[i] >= x, so we
	// search for the first strictly-greater element instead.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-quantile of the sample (inverse CDF), using linear
// interpolation. It returns NaN for an empty CDF or p outside [0, 1].
func (c *CDF) Quantile(p float64) float64 {
	if len(c.sorted) == 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	return quantileSorted(c.sorted, p)
}

// Mean returns the mean of the backing sample, or NaN if empty.
func (c *CDF) Mean() float64 { return Mean(c.sorted) }

// Point is one (X, P) coordinate of a CDF curve.
type Point struct {
	X float64 // sample value
	P float64 // cumulative probability P(X <= x)
}

// Points returns n evenly spaced points of the CDF curve suitable for
// plotting: the p-grid is {1/n, 2/n, ..., 1}. It returns nil for an empty
// CDF or n <= 0.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	pts := make([]Point, 0, n)
	for i := 1; i <= n; i++ {
		p := float64(i) / float64(n)
		pts = append(pts, Point{X: quantileSorted(c.sorted, p), P: p})
	}
	return pts
}

// Values returns a copy of the sorted backing sample.
func (c *CDF) Values() []float64 {
	out := make([]float64, len(c.sorted))
	copy(out, c.sorted)
	return out
}
