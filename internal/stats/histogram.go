package stats

import (
	"fmt"
	"math"
)

// Histogram counts samples into equal-width bins over [Lo, Hi). Samples
// outside the range are counted in Under/Over. Use NewHistogram to build one.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
// It panics if bins <= 0 or hi <= lo, since these are programming errors in
// experiment definitions rather than runtime conditions.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: NewHistogram bins must be positive, got %d", bins))
	}
	if hi <= lo || math.IsNaN(lo) || math.IsNaN(hi) {
		panic(fmt.Sprintf("stats: NewHistogram invalid range [%v, %v)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add counts x into its bin.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard against FP rounding at the top edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples added, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of all samples that landed in bin i,
// or NaN when the histogram is empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return float64(h.Counts[i]) / float64(h.total)
}
