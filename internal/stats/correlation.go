package stats

import (
	"math"
	"sort"
)

// Pearson returns the Pearson product-moment correlation coefficient of the
// paired samples (xs[i], ys[i]). It returns NaN when the slices differ in
// length, have fewer than two pairs, or either sample has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns Spearman's rank correlation coefficient: the Pearson
// correlation of the ranks, with ties assigned their average rank.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns the average-rank transform of xs (ranks start at 1).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// Regression holds the result of a simple least-squares linear fit
// y = Slope*x + Intercept.
type Regression struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
}

// LinearFit fits y = a*x + b by ordinary least squares. It returns a zero
// Regression with NaN fields when the fit is undefined (mismatched lengths,
// fewer than two points, or zero variance in x).
func LinearFit(xs, ys []float64) Regression {
	nan := Regression{Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	if len(xs) != len(ys) || len(xs) < 2 {
		return nan
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return nan
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := math.NaN()
	if syy > 0 {
		r := sxy / math.Sqrt(sxx*syy)
		r2 = r * r
	}
	return Regression{Slope: slope, Intercept: intercept, R2: r2}
}
