// Package stats provides the descriptive statistics used by the trace
// analyzer and the experiment harness: moments, quantiles, empirical CDFs,
// correlation coefficients, linear regression and histograms.
//
// All functions operate on float64 slices, never mutate their inputs unless
// documented, and return NaN (not an error) for undefined quantities such as
// the mean of an empty sample, mirroring the conventions of the math package.
package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs. The sum of an empty slice is 0.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or NaN if xs has
// fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs, or NaN if xs
// has fewer than two elements.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element of xs, or NaN if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (type-7 estimator, the default in
// most statistics packages). It returns NaN if xs is empty or p is outside
// [0, 1]. The input slice is not modified.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

// quantileSorted is Quantile on an already-sorted slice.
func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}
