package stats

import "math"

// Running accumulates streaming statistics with Welford's online algorithm.
// The zero value is an empty accumulator ready for use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.sum += x
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// Merge folds other into r, as if every sample added to other had been
// added to r directly (the Chan et al. parallel combine of Welford
// accumulators). Mean and variance are preserved up to floating-point
// rounding, so merge order must be fixed when bit-identical aggregates
// matter. Merging an empty accumulator is a no-op; merging into an empty
// accumulator copies.
func (r *Running) Merge(other *Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *other
		return
	}
	n := r.n + other.n
	delta := other.mean - r.mean
	r.mean += delta * float64(other.n) / float64(n)
	r.m2 += other.m2 + delta*delta*float64(r.n)*float64(other.n)/float64(n)
	r.n = n
	r.sum += other.sum
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
}

// RunningState is the exact internal state of a Running accumulator, with
// JSON tags for wire transport. Go's encoding/json renders float64 values in
// their shortest round-trippable form, so a state marshalled to JSON and
// parsed back restores the accumulator bit for bit — unlike the summarized
// (mean, std) form, whose inverse mappings round. Distributed campaign
// execution ships per-flow accumulators across workers in this form so the
// merged aggregates stay byte-identical to a single-node run.
type RunningState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Sum  float64 `json:"sum"`
}

// State returns the accumulator's exact internal state.
func (r *Running) State() RunningState {
	return RunningState{N: r.n, Mean: r.mean, M2: r.m2, Min: r.min, Max: r.max, Sum: r.sum}
}

// RestoreRunning reconstructs an accumulator from a State snapshot, bit for
// bit: Restore(State(r)) behaves exactly like r for every further Add and
// Merge.
func RestoreRunning(s RunningState) Running {
	return Running{n: s.N, mean: s.Mean, m2: s.M2, min: s.Min, max: s.Max, sum: s.Sum}
}

// N returns the number of samples added.
func (r *Running) N() int { return r.n }

// Sum returns the running sum.
func (r *Running) Sum() float64 { return r.sum }

// Mean returns the running mean, or NaN if empty.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the unbiased sample variance, or NaN with fewer than two
// samples.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest sample, or NaN if empty.
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest sample, or NaN if empty.
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}
