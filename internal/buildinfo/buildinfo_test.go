package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestVersionNonEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version returned an empty string")
	}
}

func TestVersionFrom(t *testing.T) {
	cases := []struct {
		name string
		bi   *debug.BuildInfo
		want string
	}{
		{
			name: "tagged module",
			bi:   &debug.BuildInfo{Main: debug.Module{Version: "v1.2.3"}},
			want: "v1.2.3",
		},
		{
			name: "devel module falls back to revision",
			bi: &debug.BuildInfo{
				Main: debug.Module{Version: "(devel)"},
				Settings: []debug.BuildSetting{
					{Key: "vcs.revision", Value: "0123456789abcdef0123"},
				},
			},
			want: "0123456789ab",
		},
		{
			name: "dirty tree",
			bi: &debug.BuildInfo{
				Settings: []debug.BuildSetting{
					{Key: "vcs.revision", Value: "abc123"},
					{Key: "vcs.modified", Value: "true"},
				},
			},
			want: "abc123+dirty",
		},
		{
			name: "no info at all",
			bi:   &debug.BuildInfo{},
			want: "devel",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := versionFrom(tc.bi); got != tc.want {
				t.Fatalf("versionFrom = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestLine(t *testing.T) {
	line := Line("hsrbench")
	if !strings.HasPrefix(line, "hsrbench ") {
		t.Fatalf("Line = %q, want prefix %q", line, "hsrbench ")
	}
	if !strings.Contains(line, "(") || !strings.HasSuffix(line, ")") {
		t.Fatalf("Line = %q, want trailing parenthesized toolchain", line)
	}
}
