// Package buildinfo derives a version string for the command-line tools
// from the build metadata the Go toolchain embeds, so every binary answers
// -version without a hand-maintained constant or linker flags.
package buildinfo

import (
	"fmt"
	"runtime/debug"
)

// Version returns the best version identifier available from the embedded
// build info: the module version when the binary was built from a tagged
// module, otherwise the VCS revision (suffixed with "+dirty" for modified
// trees), otherwise "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	return versionFrom(bi)
}

// versionFrom extracts the identifier from parsed build info (split out so
// tests can feed synthetic values).
func versionFrom(bi *debug.BuildInfo) string {
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// Line renders the one-line -version output for a tool: name, version, and
// the Go toolchain that built the binary.
func Line(tool string) string {
	goVersion := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	return fmt.Sprintf("%s %s (%s)", tool, Version(), goVersion)
}
