package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/tracing"
)

// runUnitOn executes one unit on one worker: a unit job POSTed to the
// worker's /v1/jobs, the NDJSON stream read to its terminal line, the
// unit payload returned. The whole exchange runs under the per-unit
// deadline — a worker that stalls mid-stream (accepted the job, stopped
// making progress) times out the same as one that never answered.
//
// When the campaign is traced, parentSpanID (the coordinator-side attempt
// span) rides along as the job's trace context; the worker then records its
// own job/flow/cache spans into the same trace and ships the batch back on
// the terminal event — returned here for stitching, and empty on error
// (a failed or timed-out exchange has no batch to ship).
func (c *Coordinator) runUnitOn(r *run, w *worker, u *unit, parentSpanID string) ([]serve.UnitFlow, []tracing.SpanRecord, error) {
	ctx, cancel := context.WithTimeout(r.ctx, c.cfg.UnitTimeout)
	defer cancel()

	spec := serve.JobSpec{
		Kind: serve.KindUnit,
		Unit: &serve.UnitSpec{
			Seed:        r.cfg.Seed,
			Duration:    serve.Duration(r.cfg.FlowDuration),
			FlowsPerRow: r.cfg.FlowsPerRow,
			Stationary:  r.cfg.Stationary,
			Faults:      faultsDSL(r.cfg.Faults),
			Start:       u.start,
			End:         u.end,
		},
		TimeoutMS: c.cfg.UnitTimeout.Milliseconds(),
	}
	if r.tr != nil {
		spec.Trace = &serve.TraceContext{ID: r.tr.ID(), Parent: parentSpanID}
	}
	body, err := json.Marshal(&spec)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return nil, nil, fmt.Errorf("dist: worker %s: status %d: %s", w.url, resp.StatusCode, bytes.TrimSpace(msg))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var terminal *serve.Event
	for sc.Scan() {
		var e serve.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, nil, fmt.Errorf("dist: worker %s: bad event line: %w", w.url, err)
		}
		if e.Event == "result" || e.Event == "error" {
			terminal = &e
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("dist: worker %s: stream: %w", w.url, err)
	}
	if terminal == nil {
		return nil, nil, fmt.Errorf("dist: worker %s: stream ended without a terminal event", w.url)
	}
	if terminal.Event == "error" {
		return nil, terminal.Spans, fmt.Errorf("dist: worker %s: %s", w.url, terminal.Error)
	}
	if terminal.Unit == nil || len(terminal.Unit.Flows) != u.end-u.start {
		return nil, terminal.Spans, fmt.Errorf("dist: worker %s: malformed unit result for [%d, %d)", w.url, u.start, u.end)
	}
	return terminal.Unit.Flows, terminal.Spans, nil
}

// faultsDSL renders a campaign's fault schedule back to the wire DSL the
// unit spec carries (empty when none).
func faultsDSL(s *faults.Schedule) string {
	if s == nil {
		return ""
	}
	return s.String()
}
