package chaostest

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// TestByteIdentityWithTracingUnderChaos turns tracing on under a kill-heavy
// schedule: the campaign's counters and per-flow metrics must stay
// byte-identical to the single-node reference, and the stitched span tree —
// retries, ejections, local fallback and all — must still validate.
func TestByteIdentityWithTracingUnderChaos(t *testing.T) {
	cfg := dataset.CampaignConfig{Seed: 33, FlowDuration: 2 * time.Second, FlowsPerRow: 2}

	ref := telemetry.NewCampaign()
	refCfg := cfg
	refCfg.Telemetry = ref
	refCamp, err := dataset.RunCampaign(refCfg)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	refBytes := countersJSON(t, ref)

	var servers []*httptest.Server
	for j := 0; j < 2; j++ {
		srv := serve.New(serve.Config{Workers: 2, QueueDepth: 8})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Drain() })
		servers = append(servers, ts)
	}
	sched := Schedule{Seed: 6, KillP: 0.35}
	chaos := &Transport{Sched: &sched}
	c, err := dist.New(dist.Config{
		Workers:           []string{servers[0].URL, servers[1].URL},
		UnitFlows:         1,
		UnitTimeout:       time.Second,
		MaxAttempts:       3,
		BackoffBase:       5 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
		FailAfter:         3,
		HedgeAfter:        2 * time.Second,
		Seed:              sched.Seed,
		HTTPClient:        &http.Client{Transport: chaos},
	})
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	defer c.Close()

	trc := tracing.New("chaos-trace")
	root := trc.StartSpan("", "campaign", "campaign:chaos")
	got := telemetry.NewCampaign()
	dcfg := cfg
	dcfg.Telemetry = got
	dcfg.Trace = trc
	dcfg.TraceParent = root.ID()
	camp, err := c.RunCampaign(dcfg)
	if err != nil {
		t.Fatalf("traced campaign under %s: %v", sched.describe(), err)
	}
	root.End()

	if a, b := refBytes, countersJSON(t, got); string(a) != string(b) {
		t.Fatalf("counters diverged with tracing on under chaos:\n%s\nvs\n%s", a, b)
	}
	for i := range camp.Results {
		a, _ := json.Marshal(camp.Results[i].Metrics)
		b, _ := json.Marshal(refCamp.Results[i].Metrics)
		if string(a) != string(b) {
			t.Fatalf("flow %d metrics diverged with tracing on under chaos", i)
		}
	}

	spans := trc.Spans()
	if err := tracing.Validate(spans); err != nil {
		t.Fatalf("stitched trace under chaos not well formed: %v", err)
	}
	units, attempts := 0, 0
	for _, s := range spans {
		switch s.Kind {
		case "unit":
			units++
		case "attempt":
			attempts++
		}
	}
	f := c.Counters()
	if int64(units) != f.Units {
		t.Fatalf("%d unit spans for %d units", units, f.Units)
	}
	if attempts < units {
		t.Fatalf("%d attempt spans for %d units", attempts, units)
	}
	t.Logf("chaos+tracing: injected=%d spans=%d fleet=%+v", chaos.Injected(), len(spans), f)
}
