package chaostest

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// countersJSON marshals a campaign's deterministic counter sections.
func countersJSON(t *testing.T, c *telemetry.Campaign) []byte {
	t.Helper()
	flows, kernel, tcp, net, faults := c.Counters()
	raw, err := json.Marshal(struct {
		Flows  int64            `json:"flows"`
		Kernel telemetry.Kernel `json:"kernel"`
		TCP    telemetry.TCP    `json:"tcp"`
		Net    telemetry.Net    `json:"net"`
		Faults telemetry.Faults `json:"faults"`
	}{flows, kernel, tcp, net, faults})
	if err != nil {
		t.Fatalf("marshal counters: %v", err)
	}
	return raw
}

// TestScheduleDeterministic pins the harness's replay property: the same
// seed yields the same action for every (worker, ordinal).
func TestScheduleDeterministic(t *testing.T) {
	a := &Schedule{Seed: 9, KillP: 0.2, StallP: 0.2, TruncateP: 0.2, SlowP: 0.2}
	b := &Schedule{Seed: 9, KillP: 0.2, StallP: 0.2, TruncateP: 0.2, SlowP: 0.2}
	seen := map[Action]bool{}
	for w := 0; w < 3; w++ {
		for n := 0; n < 200; n++ {
			x, y := a.Action(w, n), b.Action(w, n)
			if x != y {
				t.Fatalf("schedule not deterministic at (%d, %d): %v vs %v", w, n, x, y)
			}
			seen[x] = true
		}
	}
	for _, want := range []Action{Pass, Kill, Stall, Truncate, Slow} {
		if !seen[want] {
			t.Fatalf("schedule never produced %v over 600 draws", want)
		}
	}
}

// TestCampaignByteIdentityUnderChaos is the harness's reason to exist:
// every failure schedule — kill-heavy, stall-heavy, truncating responses
// mid-stream, and a mixed storm — must leave the distributed campaign's
// counters and per-flow metrics byte-identical to the single-node run.
func TestCampaignByteIdentityUnderChaos(t *testing.T) {
	cfg := dataset.CampaignConfig{Seed: 21, FlowDuration: 2 * time.Second, FlowsPerRow: 2}

	// Single-node reference, computed once.
	ref := telemetry.NewCampaign()
	refCfg := cfg
	refCfg.Telemetry = ref
	refCamp, err := dataset.RunCampaign(refCfg)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	refBytes := countersJSON(t, ref)

	schedules := []Schedule{
		{Seed: 1, KillP: 0.4},
		{Seed: 2, StallP: 0.25},
		// Seed 27 truncates ordinal 0 on both workers, so the injected>0
		// sanity check below holds however few requests a fast campaign
		// makes (heartbeat count scales with wall time, and flows are now
		// quick enough that a campaign can finish inside one interval).
		{Seed: 27, TruncateP: 0.4},
		{Seed: 4, KillP: 0.15, StallP: 0.1, TruncateP: 0.15, SlowP: 0.3},
		{Seed: 5, KillP: 0.7}, // heavy enough to exhaust retries into local fallback
	}
	for i := range schedules {
		sched := schedules[i]
		t.Run(sched.describe(), func(t *testing.T) {
			t.Parallel()
			var servers []*httptest.Server
			for j := 0; j < 2; j++ {
				srv := serve.New(serve.Config{Workers: 2, QueueDepth: 8})
				ts := httptest.NewServer(srv.Handler())
				t.Cleanup(func() { ts.Close(); srv.Drain() })
				servers = append(servers, ts)
			}
			tr := &Transport{
				Sched:     &sched,
				SlowDelay: func() { time.Sleep(20 * time.Millisecond) },
			}
			c, err := dist.New(dist.Config{
				Workers:           []string{servers[0].URL, servers[1].URL},
				UnitFlows:         1,
				UnitTimeout:       time.Second,
				MaxAttempts:       3,
				BackoffBase:       5 * time.Millisecond,
				BackoffMax:        50 * time.Millisecond,
				HeartbeatInterval: 50 * time.Millisecond,
				FailAfter:         3,
				HedgeAfter:        2 * time.Second,
				Seed:              sched.Seed,
				HTTPClient:        &http.Client{Transport: tr},
			})
			if err != nil {
				t.Fatalf("new coordinator: %v", err)
			}
			defer c.Close()

			got := telemetry.NewCampaign()
			dcfg := cfg
			dcfg.Telemetry = got
			camp, err := c.RunCampaign(dcfg)
			if err != nil {
				t.Fatalf("campaign under %s: %v", sched.describe(), err)
			}
			if a, b := refBytes, countersJSON(t, got); string(a) != string(b) {
				t.Fatalf("counters diverged under %s:\n%s\nvs\n%s", sched.describe(), a, b)
			}
			for i := range camp.Results {
				a, _ := json.Marshal(camp.Results[i].Metrics)
				b, _ := json.Marshal(refCamp.Results[i].Metrics)
				if string(a) != string(b) {
					t.Fatalf("flow %d metrics diverged under %s", i, sched.describe())
				}
			}
			if tr.Injected() == 0 {
				t.Fatalf("schedule %s injected nothing — harness is not exercising failure paths", sched.describe())
			}
			t.Logf("schedule %s: injected=%d fleet=%+v", sched.describe(), tr.Injected(), c.Counters())
		})
	}
}
