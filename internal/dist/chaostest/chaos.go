// Package chaostest is a deterministic failure-injection harness for the
// distributed campaign layer. A seeded Schedule decides, per worker and per
// request ordinal, whether that request passes, dies before reaching the
// worker (kill), hangs until the caller's deadline (stall), loses its
// response mid-stream (truncate), or is merely delayed (slow). The decisions
// are a pure function of (seed, worker, ordinal), so a failing schedule
// replays exactly; the interleavings they provoke are timing-dependent by
// nature, which is precisely the point — the coordinator's output must be
// byte-identical under every one of them.
package chaostest

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
)

// Action is what the chaos transport does to one request.
type Action int

const (
	Pass     Action = iota // deliver untouched
	Kill                   // fail immediately, as a dropped connection would
	Stall                  // hang until the request context expires
	Truncate               // deliver headers, then break the body mid-stream
	Slow                   // deliver after a short fixed delay
)

func (a Action) String() string {
	switch a {
	case Pass:
		return "pass"
	case Kill:
		return "kill"
	case Stall:
		return "stall"
	case Truncate:
		return "truncate"
	case Slow:
		return "slow"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Schedule maps (worker, request ordinal) to an Action, deterministically
// from Seed and the probability knobs. Probabilities are evaluated in
// order kill, stall, truncate, slow; the remainder passes.
type Schedule struct {
	Seed                     int64
	KillP, StallP, TruncateP float64
	SlowP                    float64
}

// describe names the schedule for subtests and failure messages.
func (s *Schedule) describe() string {
	return fmt.Sprintf("seed=%d-kill=%v-stall=%v-trunc=%v-slow=%v",
		s.Seed, s.KillP, s.StallP, s.TruncateP, s.SlowP)
}

// splitmix64 is the usual 64-bit finalizer-based generator step.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Action decides what happens to worker w's n-th request.
func (s *Schedule) Action(w, n int) Action {
	h := splitmix64(uint64(s.Seed)*0x9e3779b97f4a7c15 + uint64(w)<<32 + uint64(n))
	u := float64(h>>11) / float64(1<<53) // uniform in [0, 1)
	for _, c := range []struct {
		p float64
		a Action
	}{{s.KillP, Kill}, {s.StallP, Stall}, {s.TruncateP, Truncate}, {s.SlowP, Slow}} {
		if u < c.p {
			return c.a
		}
		u -= c.p
	}
	return Pass
}

// Transport injects the schedule's failures into a coordinator's HTTP
// client. Worker identity is the request host; ordinals count that host's
// requests (heartbeats included — a chaotic network does not spare health
// probes).
type Transport struct {
	Inner http.RoundTripper
	Sched *Schedule
	// SlowDelay is the Slow action's added latency; the zero value means
	// no artificial delay (Slow degenerates to Pass).
	SlowDelay func()

	mu      sync.Mutex
	workers map[string]int
	counts  map[string]*atomic.Int64

	injected atomic.Int64
}

// Injected counts requests that did not pass untouched.
func (t *Transport) Injected() int64 { return t.injected.Load() }

// decide assigns the request its action.
func (t *Transport) decide(host string) Action {
	t.mu.Lock()
	if t.workers == nil {
		t.workers = make(map[string]int)
		t.counts = make(map[string]*atomic.Int64)
	}
	w, ok := t.workers[host]
	if !ok {
		w = len(t.workers)
		t.workers[host] = w
		t.counts[host] = &atomic.Int64{}
	}
	n := t.counts[host]
	t.mu.Unlock()
	return t.Sched.Action(w, int(n.Add(1)-1))
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	switch t.decide(req.URL.Host) {
	case Kill:
		t.injected.Add(1)
		return nil, fmt.Errorf("chaostest: connection to %s killed", req.URL.Host)
	case Stall:
		t.injected.Add(1)
		<-req.Context().Done()
		return nil, fmt.Errorf("chaostest: request to %s stalled: %w", req.URL.Host, req.Context().Err())
	case Truncate:
		t.injected.Add(1)
		resp, err := inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedBody{inner: resp.Body}
		return resp, nil
	case Slow:
		t.injected.Add(1)
		if t.SlowDelay != nil {
			t.SlowDelay()
		}
		return inner.RoundTrip(req)
	}
	return inner.RoundTrip(req)
}

// truncatedBody delivers a little of the response, then fails the stream —
// the shape of a worker dying mid-answer.
type truncatedBody struct {
	inner io.ReadCloser
	read  int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	const keep = 64 // enough for a partial first line, never a full result
	if b.read >= keep {
		return 0, fmt.Errorf("chaostest: response truncated mid-stream")
	}
	if len(p) > keep-b.read {
		p = p[:keep-b.read]
	}
	n, err := b.inner.Read(p)
	b.read += n
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }
