package dist

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// testWorker spins up one in-process hsrserved worker.
func testWorker(t *testing.T) (*httptest.Server, *serve.Server) {
	t.Helper()
	srv := serve.New(serve.Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Drain() })
	return ts, srv
}

// reference runs the campaign single-node (no cache: every flow simulates
// and contributes telemetry) and returns its counters JSON plus results.
func reference(t *testing.T, cfg dataset.CampaignConfig) ([]byte, *dataset.Campaign) {
	t.Helper()
	ref := telemetry.NewCampaign()
	rcfg := cfg
	rcfg.Telemetry = ref
	camp, err := dataset.RunCampaign(rcfg)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	return countersJSON(t, ref), camp
}

// countersJSON marshals a campaign's deterministic counter sections.
func countersJSON(t *testing.T, c *telemetry.Campaign) []byte {
	t.Helper()
	flows, kernel, tcp, net, faults := c.Counters()
	raw, err := json.Marshal(struct {
		Flows  int64            `json:"flows"`
		Kernel telemetry.Kernel `json:"kernel"`
		TCP    telemetry.TCP    `json:"tcp"`
		Net    telemetry.Net    `json:"net"`
		Faults telemetry.Faults `json:"faults"`
	}{flows, kernel, tcp, net, faults})
	if err != nil {
		t.Fatalf("marshal counters: %v", err)
	}
	return raw
}

// assertIdentical runs the campaign through the coordinator and compares
// counters and per-flow metrics against the single-node reference.
func assertIdentical(t *testing.T, c *Coordinator, cfg dataset.CampaignConfig) {
	t.Helper()
	refBytes, refCamp := reference(t, cfg)
	got := telemetry.NewCampaign()
	dcfg := cfg
	dcfg.Telemetry = got
	camp, err := c.RunCampaign(dcfg)
	if err != nil {
		t.Fatalf("distributed campaign: %v", err)
	}
	if a, b := refBytes, countersJSON(t, got); string(a) != string(b) {
		t.Fatalf("distributed counters not byte-identical:\n%s\nvs\n%s", a, b)
	}
	if len(camp.Results) != len(refCamp.Results) {
		t.Fatalf("result count %d, want %d", len(camp.Results), len(refCamp.Results))
	}
	for i := range camp.Results {
		a, _ := json.Marshal(camp.Results[i].Metrics)
		b, _ := json.Marshal(refCamp.Results[i].Metrics)
		if string(a) != string(b) {
			t.Fatalf("flow %d metrics diverged:\n%s\nvs\n%s", i, a, b)
		}
		if camp.Results[i].Row != refCamp.Results[i].Row {
			t.Fatalf("flow %d row diverged", i)
		}
	}
}

func quickCampaign(seed int64) dataset.CampaignConfig {
	return dataset.CampaignConfig{Seed: seed, FlowDuration: 2 * time.Second, FlowsPerRow: 2}
}

// TestCoordinatorByteIdentity is the acceptance criterion in miniature: a
// two-worker distributed run is byte-identical (counters and per-flow
// metrics) to single-node, with small units forcing plenty of dispatch.
func TestCoordinatorByteIdentity(t *testing.T) {
	w1, _ := testWorker(t)
	w2, _ := testWorker(t)
	c, err := New(Config{
		Workers:           []string{w1.URL, w2.URL},
		UnitFlows:         3,
		UnitTimeout:       30 * time.Second,
		HeartbeatInterval: 100 * time.Millisecond,
		Seed:              1,
	})
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	defer c.Close()

	assertIdentical(t, c, quickCampaign(11))

	f := c.Counters()
	if f.Units == 0 || f.UnitsCompleted != f.Units || f.UnitsLocal != 0 {
		t.Fatalf("fleet counters after clean run: %+v", f)
	}
}

// TestCoordinatorWorkerKilledMidCampaign closes one of two workers while
// the campaign runs: its in-flight and queued units must be retried onto
// the survivor (or locally) and the output must stay byte-identical.
func TestCoordinatorWorkerKilledMidCampaign(t *testing.T) {
	w1, _ := testWorker(t)
	w2, _ := testWorker(t)
	c, err := New(Config{
		Workers:           []string{w1.URL, w2.URL},
		UnitFlows:         1, // many small units: the kill always lands mid-campaign
		UnitTimeout:       30 * time.Second,
		MaxAttempts:       4,
		BackoffBase:       10 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
		FailAfter:         2,
		Seed:              2,
	})
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	defer c.Close()

	cfg := quickCampaign(13)
	var killed atomic.Bool
	cfg.Progress = func(done, total int) {
		if done >= total/4 && killed.CompareAndSwap(false, true) {
			w2.CloseClientConnections()
			w2.Close()
		}
	}
	assertIdentical(t, c, cfg)
	if !killed.Load() {
		t.Fatal("worker was never killed mid-campaign")
	}
	if f := c.Counters(); f.Retries == 0 && f.UnitsLocal == 0 && f.Reassignments == 0 {
		t.Fatalf("no failure handling recorded after a worker kill: %+v", f)
	}
}

// TestCoordinatorDegradedMode takes the whole fleet down before the
// campaign: heartbeats eject every worker, the degraded watchdog finishes
// the campaign locally, and output is still byte-identical.
func TestCoordinatorDegradedMode(t *testing.T) {
	w1, _ := testWorker(t)
	c, err := New(Config{
		Workers:           []string{w1.URL},
		UnitFlows:         2,
		UnitTimeout:       2 * time.Second,
		MaxAttempts:       2,
		BackoffBase:       10 * time.Millisecond,
		HeartbeatInterval: 30 * time.Millisecond,
		FailAfter:         2,
		Seed:              3,
	})
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	defer c.Close()

	w1.CloseClientConnections()
	w1.Close()
	// Let the heartbeats eject the worker first, so the run exercises the
	// nobody-is-pulling path rather than per-request retries.
	deadline := time.Now().Add(5 * time.Second)
	for c.healthyWorkers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never ejected")
		}
		time.Sleep(10 * time.Millisecond)
	}

	assertIdentical(t, c, quickCampaign(17))
	f := c.Counters()
	if f.Degraded == 0 {
		t.Fatalf("degraded mode not recorded: %+v", f)
	}
	if f.WorkersLost == 0 {
		t.Fatalf("worker loss not recorded: %+v", f)
	}
	if f.UnitsLocal == 0 {
		t.Fatalf("no local units in degraded mode: %+v", f)
	}
	fh := c.FleetHealth()
	if len(fh) != 1 || fh[0].Healthy {
		t.Fatalf("fleet health after loss: %+v", fh)
	}
}

// TestCoordinatorReadmission ejects a worker, revives it at the same
// address, and expects the heartbeat to readmit it into dispatch.
func TestCoordinatorReadmission(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1, QueueDepth: 4})
	defer srv.Drain()
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Start()
	addr := ts.URL

	c, err := New(Config{
		Workers:           []string{addr},
		HeartbeatInterval: 25 * time.Millisecond,
		FailAfter:         2,
		Seed:              4,
	})
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	defer c.Close()

	waitHealthy := func(want bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for (c.healthyWorkers() != 0) != want {
			if time.Now().After(deadline) {
				t.Fatalf("worker health never became %v", want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	lst := ts.Listener
	ts.CloseClientConnections()
	lst.Close()
	waitHealthy(false)

	// Revive on the same address.
	srv2 := serve.New(serve.Config{Workers: 1, QueueDepth: 4})
	defer srv2.Drain()
	ts2 := httptest.NewUnstartedServer(srv2.Handler())
	ts2.Listener.Close()
	l, err := listenOn(addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	ts2.Listener = l
	ts2.Start()
	defer ts2.Close()
	waitHealthy(true)

	if f := c.Counters(); f.WorkersLost != 1 || f.WorkersReadmitted != 1 {
		t.Fatalf("lost/readmit counters: %+v", f)
	}
}

// listenOn rebinds a listener on the host:port of a previously-used URL.
func listenOn(url string) (net.Listener, error) {
	return net.Listen("tcp", strings.TrimPrefix(url, "http://"))
}
