// Package dist is the distributed-campaign layer: a coordinator that splits
// a synthetic measurement campaign into flow-range work units, dispatches
// them to hsrserved worker nodes over the existing HTTP/NDJSON job protocol,
// and reassembles the per-flow results into output byte-identical to a
// single-node run — at any worker count, under worker loss, stalls, retries,
// reassignment and hedging.
//
// Identity holds by construction, not by luck. The flow plan is a pure
// function of the campaign config, so coordinator and workers agree on what
// every flow index means without shipping scenarios. Workers always simulate
// with telemetry attached and ship each flow's exact accumulator state over
// a lossless wire form (telemetry.FlowState). The coordinator replays
// AddFlow strictly in global flow order — the same call sequence a
// single-node campaign makes — so even the order-sensitive floating-point
// aggregates land bit for bit. Retries and duplicated (hedged or reassigned)
// executions are harmless: flows are deterministic for their key, duplicate
// unit results are discarded first-result-wins, and workers' content-
// addressed caches turn re-execution into a disk read.
//
// Robustness: per-unit deadlines with exponential backoff plus seeded
// jitter, bounded remote attempts per unit with a local-execution fallback,
// heartbeat-based worker health with ejection and readmission, straggler
// hedging, and a degraded mode where a coordinator that has lost every
// worker finishes the campaign locally and says so.
package dist

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/logging"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// Config configures a Coordinator. Workers is required; every other field
// has a serviceable default.
type Config struct {
	// Workers is the fleet's base URLs (e.g. "http://10.0.0.2:8080").
	Workers []string
	// UnitFlows is the number of flows per work unit (default 16). Smaller
	// units lose less on a worker failure; larger units amortize dispatch.
	UnitFlows int
	// UnitTimeout is the per-unit deadline for one remote attempt (default
	// 60s). A unit that misses it is retried, elsewhere or locally.
	UnitTimeout time.Duration
	// MaxAttempts bounds remote attempts per unit before the coordinator
	// executes it locally (default 3).
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential retry backoff
	// (defaults 100ms and 5s); actual delays are jittered from Seed.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// WorkerSlots is the number of units one worker executes concurrently
	// (default 2) — keep Workers*FlowParallelism on the worker in mind.
	WorkerSlots int
	// HeartbeatInterval is the worker health-probe period (default 2s);
	// 0 < FailAfter consecutive probe failures eject a worker (default 2),
	// the next success readmits it.
	HeartbeatInterval time.Duration
	FailAfter         int
	// HedgeAfter duplicates a unit still in flight after this long onto
	// another worker (straggler hedging); 0 disables hedging.
	HedgeAfter time.Duration
	// Seed seeds the retry jitter (timing only — results never depend on
	// it).
	Seed int64
	// Log, when non-nil, receives one structured line per dispatch edge
	// (unit range, worker URL, attempt and trace IDs as fields). Nil logs
	// nothing.
	Log *logging.Logger
	// HTTPClient, when non-nil, overrides the fleet transport (tests inject
	// chaos here).
	HTTPClient *http.Client
}

// worker is one fleet member's live state.
type worker struct {
	url       string
	healthy   atomic.Bool
	fails     atomic.Int32
	wasLost   atomic.Bool
	unitsDone atomic.Int64
}

// Coordinator fans campaigns out over a worker fleet. Create with New,
// stop with Close. Safe for concurrent campaigns.
type Coordinator struct {
	cfg     Config
	client  *http.Client
	workers []*worker

	jitterMu sync.Mutex
	jitter   *rand.Rand

	units             atomic.Int64
	unitsDispatched   atomic.Int64
	unitsCompleted    atomic.Int64
	unitsLocal        atomic.Int64
	retries           atomic.Int64
	reassignments     atomic.Int64
	hedges            atomic.Int64
	duplicateResults  atomic.Int64
	workersLost       atomic.Int64
	workersReadmitted atomic.Int64
	degraded          atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	hbWG     sync.WaitGroup
}

// New builds a Coordinator over the given fleet and starts its heartbeat
// monitors.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("dist: coordinator needs at least one worker URL")
	}
	if cfg.UnitFlows <= 0 {
		cfg.UnitFlows = 16
	}
	if cfg.UnitTimeout <= 0 {
		cfg.UnitTimeout = 60 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.WorkerSlots <= 0 {
		cfg.WorkerSlots = 2
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 2 * time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	c := &Coordinator{
		cfg:    cfg,
		client: cfg.HTTPClient,
		jitter: rand.New(rand.NewSource(cfg.Seed)),
		stop:   make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	for _, u := range cfg.Workers {
		w := &worker{url: u}
		w.healthy.Store(true)
		c.workers = append(c.workers, w)
	}
	for _, w := range c.workers {
		c.hbWG.Add(1)
		go c.heartbeat(w)
	}
	return c, nil
}

// Close stops the heartbeat monitors. In-flight campaigns finish on their
// own; Close does not cancel them.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.hbWG.Wait()
}

// Runner adapts the coordinator to the experiments layer's pluggable
// campaign runner.
func (c *Coordinator) Runner() func(dataset.CampaignConfig) (*dataset.Campaign, error) {
	return c.RunCampaign
}

// FleetHealth snapshots per-worker health for /readyz.
func (c *Coordinator) FleetHealth() []serve.FleetWorker {
	out := make([]serve.FleetWorker, len(c.workers))
	for i, w := range c.workers {
		out[i] = serve.FleetWorker{
			URL:              w.url,
			Healthy:          w.healthy.Load(),
			ConsecutiveFails: int(w.fails.Load()),
			UnitsDone:        w.unitsDone.Load(),
		}
	}
	return out
}

// Counters snapshots the coordinator's distributed-execution counters.
func (c *Coordinator) Counters() telemetry.Fleet {
	healthy := int64(0)
	for _, w := range c.workers {
		if w.healthy.Load() {
			healthy++
		}
	}
	return telemetry.Fleet{
		Workers:           healthy,
		Units:             c.units.Load(),
		UnitsDispatched:   c.unitsDispatched.Load(),
		UnitsCompleted:    c.unitsCompleted.Load(),
		UnitsLocal:        c.unitsLocal.Load(),
		Retries:           c.retries.Load(),
		Reassignments:     c.reassignments.Load(),
		Hedges:            c.hedges.Load(),
		DuplicateResults:  c.duplicateResults.Load(),
		WorkersLost:       c.workersLost.Load(),
		WorkersReadmitted: c.workersReadmitted.Load(),
		Degraded:          c.degraded.Load(),
	}
}

// heartbeat probes one worker's /readyz until Close: FailAfter consecutive
// failures eject it from dispatch, the next success readmits it.
func (c *Coordinator) heartbeat(w *worker) {
	defer c.hbWG.Done()
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		ok := c.probe(w)
		if ok {
			w.fails.Store(0)
			if !w.healthy.Swap(true) {
				c.workersReadmitted.Add(1)
				w.wasLost.Store(false)
				c.cfg.Log.Info("worker readmitted", "worker", w.url)
			}
			continue
		}
		if int(w.fails.Add(1)) >= c.cfg.FailAfter {
			if w.healthy.Swap(false) {
				c.workersLost.Add(1)
				w.wasLost.Store(true)
				c.cfg.Log.Warn("worker ejected", "worker", w.url, "fails", w.fails.Load())
			}
		}
	}
}

// probe is one readiness check.
func (c *Coordinator) probe(w *worker) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HeartbeatInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// backoff returns the jittered delay before a unit's next attempt.
func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase << uint(attempt)
	if d <= 0 || d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	c.jitterMu.Lock()
	f := 0.5 + c.jitter.Float64()/2 // [0.5, 1.0): full delay is the ceiling
	c.jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

// unit is one flow-range work item and its completion state.
type unit struct {
	start, end int
	// state: 0 open, 1 done. The first finisher (remote, hedged duplicate,
	// or local fallback) wins the CAS; later results are discarded — they
	// are bit-identical by determinism, so dropping them is safe.
	state    atomic.Int32
	attempts atomic.Int32
	hedged   atomic.Bool
	// lastWorker is the URL of the most recent dispatch target, for the
	// reassignment counter. Guarded by the dispatch loop (benign racing:
	// it only feeds a counter).
	lastWorker atomic.Value // string
	flows      []serve.UnitFlow
	err        error
	mu         sync.Mutex // guards flows/err writes before the CAS publishes
	// span is the unit's trace span (nil when the campaign is untraced),
	// opened at planning and ended by the winning complete().
	span *tracing.Span
}

// run is one campaign's dispatch state.
type run struct {
	cfg     dataset.CampaignConfig
	plan    []dataset.PlannedFlow
	units   []*unit
	pending chan *unit
	// remaining counts open units; allDone closes when it reaches zero.
	remaining atomic.Int64
	allDone   chan struct{}
	doneFlows atomic.Int64
	ctx       context.Context
	// tr collects the campaign's spans (nil when untraced); worker-side span
	// batches shipped on unit results are stitched into it.
	tr *tracing.Trace
}

// complete publishes a unit result (first writer wins) and unblocks the
// campaign when it was the last open unit.
func (c *Coordinator) complete(r *run, u *unit, flows []serve.UnitFlow, err error) bool {
	u.mu.Lock()
	if !u.state.CompareAndSwap(0, 1) {
		u.mu.Unlock()
		c.duplicateResults.Add(1)
		return false
	}
	u.flows, u.err = flows, err
	u.mu.Unlock()
	if u.span != nil {
		if err != nil {
			u.span.SetAttr("error", err.Error())
		}
		u.span.SetAttr("attempts", fmt.Sprintf("%d", u.attempts.Load()))
		u.span.End()
	}
	c.unitsCompleted.Add(1)
	if r.cfg.Progress != nil {
		r.cfg.Progress(int(r.doneFlows.Add(int64(u.end-u.start))), len(r.plan))
	}
	if r.remaining.Add(-1) == 0 {
		close(r.allDone)
	}
	return true
}

// RunCampaign executes the campaign over the worker fleet. It satisfies
// experiments.CampaignRunner and honors the full CampaignConfig contract:
// results and telemetry (merged in global flow order) are byte-identical in
// the Counters() sense to dataset.RunCampaign without a cache — every flow
// simulates exactly once logically, wherever it physically ran, and
// wall-clock resource fields are host measurements by design. Materialize
// runs are a local cross-check pipeline and stay local.
func (c *Coordinator) RunCampaign(cfg dataset.CampaignConfig) (*dataset.Campaign, error) {
	if cfg.Materialize {
		return dataset.RunCampaign(cfg)
	}
	plan, err := dataset.PlanCampaign(cfg)
	if err != nil {
		return nil, err
	}
	r := &run{cfg: cfg, plan: plan, allDone: make(chan struct{}), ctx: cfg.Ctx, tr: cfg.Trace}
	if r.ctx == nil {
		r.ctx = context.Background()
	}
	for start := 0; start < len(plan); start += c.cfg.UnitFlows {
		end := start + c.cfg.UnitFlows
		if end > len(plan) {
			end = len(plan)
		}
		u := &unit{start: start, end: end}
		u.lastWorker.Store("")
		if r.tr != nil {
			u.span = r.tr.StartSpan(cfg.TraceParent, "unit", fmt.Sprintf("unit[%d,%d)", start, end))
			u.span.SetAttr("flows", fmt.Sprintf("%d", end-start))
		}
		r.units = append(r.units, u)
	}
	c.units.Add(int64(len(r.units)))
	r.remaining.Store(int64(len(r.units)))
	// Capacity covers every retry and hedge requeue, so enqueues never
	// block or drop.
	r.pending = make(chan *unit, len(r.units)*(c.cfg.MaxAttempts+2))
	for _, u := range r.units {
		r.pending <- u
	}
	if len(r.units) == 0 {
		close(r.allDone)
	}

	var wg sync.WaitGroup
	for _, w := range c.workers {
		for slot := 0; slot < c.cfg.WorkerSlots; slot++ {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				c.dispatchLoop(r, w)
			}(w)
		}
	}

	// Degraded-mode watchdog: when every worker is ejected, the coordinator
	// drains pending units itself so the campaign always finishes. The
	// MaxAttempts local fallback already covers workers that fail requests
	// while still passing heartbeats; this covers a fully-lost fleet, where
	// nobody is pulling at all.
	watchdogDone := make(chan struct{})
	go func() {
		defer close(watchdogDone)
		t := time.NewTicker(c.cfg.HeartbeatInterval)
		defer t.Stop()
		sawDegraded := false
		for {
			select {
			case <-r.allDone:
				return
			case <-r.ctx.Done():
				return
			case <-t.C:
			}
			if c.healthyWorkers() > 0 {
				continue
			}
			if !sawDegraded {
				sawDegraded = true
				c.degraded.Add(1)
				c.cfg.Log.Warn("no healthy workers; finishing campaign locally", "mode", "degraded")
			}
			draining := true
			for draining {
				select {
				case u := <-r.pending:
					if u.state.Load() == 0 {
						c.runUnitLocal(r, u)
					}
				default:
					draining = false
				}
			}
		}
	}()

	select {
	case <-r.allDone:
	case <-r.ctx.Done():
	}
	wg.Wait()
	<-watchdogDone
	if err := r.ctx.Err(); err != nil {
		return nil, fmt.Errorf("dist: campaign: %w", err)
	}

	// Reassemble in global flow order — the coordinator's half of the
	// byte-identity contract.
	results := make([]dataset.FlowResult, len(plan))
	var flows []*telemetry.Flow
	if cfg.Telemetry != nil {
		flows = make([]*telemetry.Flow, len(plan))
	}
	for _, u := range r.units {
		if u.err != nil {
			return nil, u.err
		}
		for i, uf := range u.flows {
			idx := u.start + i
			if uf.Index != idx {
				return nil, fmt.Errorf("dist: unit [%d, %d) shipped index %d at offset %d", u.start, u.end, uf.Index, i)
			}
			if uf.Flow.Telemetry == nil {
				return nil, fmt.Errorf("dist: flow %d arrived without telemetry", idx)
			}
			results[idx] = dataset.FlowResult{Row: plan[idx].Row, Metrics: uf.Flow.Metrics}
			if flows != nil {
				flows[idx] = uf.Flow.Telemetry.Restore()
			}
		}
	}
	if cfg.Telemetry != nil {
		for _, f := range flows {
			cfg.Telemetry.AddFlow(f)
		}
	}
	return &dataset.Campaign{Config: cfg, Results: results}, nil
}

// healthyWorkers counts workers currently in dispatch rotation.
func (c *Coordinator) healthyWorkers() int {
	n := 0
	for _, w := range c.workers {
		if w.healthy.Load() {
			n++
		}
	}
	return n
}

// dispatchLoop is one worker slot: pull open units, execute them remotely,
// retry with backoff on failure, fall back to local execution once a unit
// exhausts its remote attempts. Unhealthy workers stop pulling (their
// queued share is picked up by the rest of the fleet — that is the
// reassignment path) and resume when readmitted.
func (c *Coordinator) dispatchLoop(r *run, w *worker) {
	for {
		if !w.healthy.Load() {
			select {
			case <-r.allDone:
				return
			case <-r.ctx.Done():
				return
			case <-time.After(c.cfg.HeartbeatInterval):
			}
			continue
		}
		var u *unit
		select {
		case <-r.allDone:
			return
		case <-r.ctx.Done():
			return
		case u = <-r.pending:
		}
		if u.state.Load() != 0 {
			continue // stale retry/hedge of a finished unit
		}
		if prev := u.lastWorker.Load().(string); prev != "" && prev != w.url {
			c.reassignments.Add(1)
		}
		u.lastWorker.Store(w.url)
		c.unitsDispatched.Add(1)
		attempt := int(u.attempts.Add(1))

		// Straggler hedging: once, per unit, arm a timer that re-enqueues
		// it if this attempt is still in flight after HedgeAfter — another
		// worker races it, first result wins.
		if c.cfg.HedgeAfter > 0 && u.hedged.CompareAndSwap(false, true) {
			hu := u
			time.AfterFunc(c.cfg.HedgeAfter, func() {
				if hu.state.Load() == 0 {
					c.hedges.Add(1)
					// Attrs on an ended span are dropped, so this is safe to
					// race against complete().
					hu.span.SetAttr("hedged", "true")
					c.cfg.Log.Info("hedging straggler unit", "unit", unitRange(hu))
					select {
					case r.pending <- hu:
					default:
					}
				}
			})
		}

		var asp *tracing.Span
		if r.tr != nil {
			asp = r.tr.StartSpan(u.span.ID(), "attempt", fmt.Sprintf("attempt %d", attempt))
			asp.SetAttr("worker", w.url)
			asp.SetAttr("attempt", fmt.Sprintf("%d", attempt))
		}
		flows, spans, err := c.runUnitOn(r, w, u, asp.ID())
		// Stitch the worker's span batch even when this attempt lost the
		// race: a duplicate execution is real work worth seeing.
		r.tr.Add(spans...)
		if err == nil {
			asp.SetAttr("outcome", "ok")
			asp.End()
			if c.complete(r, u, flows, nil) {
				w.unitsDone.Add(1)
			}
			continue
		}
		asp.SetAttr("outcome", "failed")
		asp.SetAttr("error", err.Error())
		asp.End()
		if r.ctx.Err() != nil {
			return
		}
		c.cfg.Log.Warn("unit attempt failed", "unit", unitRange(u), "attempt", attempt,
			"worker", w.url, "err", err)
		if attempt >= c.cfg.MaxAttempts {
			// Remote budget exhausted: the coordinator guarantees progress
			// by executing the unit itself.
			c.runUnitLocal(r, u)
			continue
		}
		c.retries.Add(1)
		ru := u
		time.AfterFunc(c.backoff(attempt), func() {
			if ru.state.Load() == 0 {
				select {
				case r.pending <- ru:
				default:
				}
			}
		})
	}
}

// runUnitLocal executes a unit in-process, telemetry attached, exactly like
// a worker would — the degraded-mode and retry-exhaustion fallback.
func (c *Coordinator) runUnitLocal(r *run, u *unit) {
	if u.state.Load() != 0 {
		return
	}
	c.unitsLocal.Add(1)
	var asp *tracing.Span
	if r.tr != nil {
		asp = r.tr.StartSpan(u.span.ID(), "attempt", "attempt local")
		asp.SetAttr("worker", "local")
		asp.SetAttr("local", "true")
	}
	flows := make([]serve.UnitFlow, 0, u.end-u.start)
	for i := u.start; i < u.end; i++ {
		if r.ctx.Err() != nil {
			asp.SetAttr("outcome", "canceled")
			asp.End()
			return
		}
		var fsp *tracing.Span
		if asp != nil {
			fsp = r.tr.StartSpan(asp.ID(), "flow", r.plan[i].Scenario.ID)
			fsp.SetAttr("index", fmt.Sprintf("%d", i))
		}
		ent, err := dataset.RunFlowFull(r.plan[i].Scenario)
		if err != nil {
			fsp.SetAttr("error", err.Error())
			fsp.End()
			asp.SetAttr("outcome", "failed")
			asp.End()
			c.complete(r, u, nil, fmt.Errorf("dist: local flow %s: %w", r.plan[i].Scenario.ID, err))
			return
		}
		if fsp != nil && ent.Telemetry != nil {
			fsp.SetVirtual(0, ent.Telemetry.Kernel.VirtualNS)
		}
		fsp.End()
		flows = append(flows, serve.UnitFlow{Index: i, Flow: ent})
	}
	asp.SetAttr("outcome", "ok")
	asp.End()
	c.complete(r, u, flows, nil)
}

// unitRange renders a unit's flow range for log fields: "[start,end)".
func unitRange(u *unit) string { return fmt.Sprintf("[%d,%d)", u.start, u.end) }
