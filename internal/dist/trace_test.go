package dist

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// failFirstUnit kills the first N /v1/jobs requests at the transport, so
// the campaign is guaranteed to retry units while heartbeats stay clean.
type failFirstUnit struct {
	n     int64
	seen  atomic.Int64
	inner http.RoundTripper
}

func (f *failFirstUnit) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.HasSuffix(req.URL.Path, "/v1/jobs") && f.seen.Add(1) <= f.n {
		return nil, fmt.Errorf("failFirstUnit: connection killed")
	}
	inner := f.inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	return inner.RoundTrip(req)
}

// TestCoordinatorTraceStitching is the tentpole acceptance test in
// miniature: a two-worker distributed campaign with one unit forced to
// retry, traced end to end. The stitched trace must be one well-formed tree
// where worker-side job spans parent under coordinator-side attempt spans,
// the retried unit shows sibling attempts, and — the invariant everything
// else rests on — campaign counters stay byte-identical to the untraced
// single-node reference.
func TestCoordinatorTraceStitching(t *testing.T) {
	w1, _ := testWorker(t)
	w2, _ := testWorker(t)
	c, err := New(Config{
		Workers:           []string{w1.URL, w2.URL},
		UnitFlows:         3,
		UnitTimeout:       30 * time.Second,
		MaxAttempts:       4,
		BackoffBase:       5 * time.Millisecond,
		HeartbeatInterval: 10 * time.Second, // no probes mid-test: the kill must hit a unit POST
		Seed:              6,
		HTTPClient:        &http.Client{Transport: &failFirstUnit{n: 1}},
	})
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	defer c.Close()

	cfg := quickCampaign(11)
	refBytes, refCamp := reference(t, cfg)

	tr := tracing.New("campaign-trace-test")
	root := tr.StartSpan("", "campaign", "campaign:test")
	got := telemetry.NewCampaign()
	dcfg := cfg
	dcfg.Telemetry = got
	dcfg.Trace = tr
	dcfg.TraceParent = root.ID()
	camp, err := c.RunCampaign(dcfg)
	if err != nil {
		t.Fatalf("traced distributed campaign: %v", err)
	}
	root.End()

	// Byte-identity with tracing on: the whole point of host-side spans.
	if a, b := refBytes, countersJSON(t, got); string(a) != string(b) {
		t.Fatalf("counters diverged with tracing on:\n%s\nvs\n%s", a, b)
	}
	for i := range camp.Results {
		a, _ := json.Marshal(camp.Results[i].Metrics)
		b, _ := json.Marshal(refCamp.Results[i].Metrics)
		if string(a) != string(b) {
			t.Fatalf("flow %d metrics diverged with tracing on:\n%s\nvs\n%s", i, a, b)
		}
	}

	spans := tr.Spans()
	if err := tracing.Validate(spans); err != nil {
		t.Fatalf("stitched trace not well formed: %v", err)
	}
	byID := map[string]tracing.SpanRecord{}
	byKind := map[string][]tracing.SpanRecord{}
	for _, s := range spans {
		byID[s.ID] = s
		byKind[s.Kind] = append(byKind[s.Kind], s)
	}
	f := c.Counters()
	if got, want := int64(len(byKind["unit"])), f.Units; got != want {
		t.Fatalf("%d unit spans, want %d", got, want)
	}
	for _, u := range byKind["unit"] {
		if u.Parent != root.ID() {
			t.Fatalf("unit span %s not parented under the campaign span", u.ID)
		}
	}
	if len(byKind["attempt"]) <= len(byKind["unit"]) {
		t.Fatalf("%d attempt spans over %d units — the forced retry left no sibling attempt",
			len(byKind["attempt"]), len(byKind["unit"]))
	}
	// Every attempt parents under a unit span; the retried unit has >= 2.
	perUnit := map[string]int{}
	for _, a := range byKind["attempt"] {
		p, ok := byID[a.Parent]
		if !ok || p.Kind != "unit" {
			t.Fatalf("attempt span %s parent %q is not a unit span", a.ID, a.Parent)
		}
		perUnit[a.Parent]++
	}
	retried := 0
	for _, n := range perUnit {
		if n >= 2 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("no unit with sibling attempt spans")
	}
	// Worker-side job spans join the same trace, parented under
	// coordinator-side attempt spans — the cross-node propagation contract.
	if len(byKind["job"]) == 0 {
		t.Fatal("no worker-side job spans stitched into the trace")
	}
	coordNode := tr.Node()
	for _, j := range byKind["job"] {
		if j.Node == coordNode {
			t.Fatalf("job span %s recorded on the coordinator node", j.ID)
		}
		if j.TraceID != tr.ID() {
			t.Fatalf("job span trace ID %q, want %q", j.TraceID, tr.ID())
		}
		p, ok := byID[j.Parent]
		if !ok || p.Kind != "attempt" {
			t.Fatalf("worker job span %s parent %q is not an attempt span", j.ID, j.Parent)
		}
	}
	// Worker queue-wait and flow spans made the trip too, flows carrying
	// their virtual-time intervals.
	if len(byKind["queue-wait"]) == 0 {
		t.Fatal("no worker queue-wait spans in the stitched trace")
	}
	if len(byKind["flow"]) < len(refCamp.Results) {
		t.Fatalf("%d flow spans for %d flows", len(byKind["flow"]), len(refCamp.Results))
	}
	for _, fl := range byKind["flow"] {
		if !fl.Virtual || fl.VEndNS <= fl.VStartNS {
			t.Fatalf("flow span without virtual interval: %+v", fl)
		}
	}
	if f.Retries == 0 {
		t.Fatalf("forced kill produced no retry: %+v", f)
	}
}

// TestCoordinatorUntracedCampaignShipsNoContext pins the off switch: with no
// Trace on the campaign config, unit jobs carry no trace context and the
// coordinator records nothing.
func TestCoordinatorUntracedCampaignShipsNoContext(t *testing.T) {
	w1, srv := testWorker(t)
	c, err := New(Config{
		Workers:           []string{w1.URL},
		UnitFlows:         8,
		HeartbeatInterval: 10 * time.Second,
		Seed:              7,
	})
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	defer c.Close()
	assertIdentical(t, c, quickCampaign(19))
	_ = srv
}
