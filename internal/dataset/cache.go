package dataset

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/buildinfo"
	"repro/internal/cellular"
	"repro/internal/faults"
	"repro/internal/railway"
	"repro/internal/tcp"
	"repro/internal/telemetry"
)

// cacheSchema names the on-disk entry layout. It participates in the
// content-addressed key, so bumping it orphans (never corrupts) every entry
// written under the previous layout. Schema 2 added the congestion-control
// variant name to the key.
const cacheSchema = 2

// entryMagic is the first token of every cache entry file.
const entryMagic = "hsrflowcache"

// FlowCache is a content-addressed, on-disk store of per-flow results: the
// key is a stable hash of everything that determines a flow's outcome (the
// full scenario configuration, the seed, and the model-relevant code
// version), the value its FlowMetrics and endpoint Stats. Campaigns and
// sweeps consult it before simulating, so repeated and overlapping runs
// skip simulation entirely on a hit — and because the simulation is
// deterministic for a key, a hit is byte-equivalent to re-running it.
//
// Entries are written atomically (temp file + rename) and carry a SHA-256
// checksum of their payload; a truncated, corrupted or stale-schema entry is
// detected on read, counted in Errors, deleted best-effort, and treated as a
// miss — the flow simply simulates again and rewrites the entry. All methods
// are safe for concurrent use by campaign workers.
type FlowCache struct {
	dir     string
	version string

	hits         atomic.Int64
	misses       atomic.Int64
	dedups       atomic.Int64
	errors       atomic.Int64
	evictions    atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64

	// maxBytes bounds the on-disk entry total (0 = unbounded); diskBytes is
	// the running estimate that triggers an eviction scan, and evictMu
	// serializes scans so concurrent writers cannot double-evict.
	maxBytes  atomic.Int64
	diskBytes atomic.Int64
	evictMu   sync.Mutex

	// flightMu/flight deduplicate concurrent computations of the same key:
	// the first caller of GetOrCompute for a missing key simulates, everyone
	// else waits for its result.
	flightMu sync.Mutex
	flight   map[string]*flightCall
}

// flightCall is one in-flight computation shared by concurrent misses.
type flightCall struct {
	done chan struct{} // closed when ent/err are final
	ent  CachedFlow
	err  error
}

// OpenFlowCache opens (creating if needed) a flow result cache rooted at
// dir, keyed with the current build's version (buildinfo.Version): a new
// model-relevant code version makes every old entry unreachable. Note that
// builds without VCS stamping report "devel" — when iterating on model code
// with such builds, point -cache at a fresh directory.
func OpenFlowCache(dir string) (*FlowCache, error) {
	return OpenFlowCacheVersion(dir, buildinfo.Version())
}

// OpenFlowCacheVersion is OpenFlowCache with an explicit version string in
// the key, for tests and for callers that version the model themselves.
func OpenFlowCacheVersion(dir, version string) (*FlowCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("dataset: cache directory must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: cache: %w", err)
	}
	return &FlowCache{dir: dir, version: version}, nil
}

// CachedFlow is one cache entry's payload: everything a metrics-only run
// needs from a flow simulation. Telemetry optionally carries the flow's
// exact telemetry bundle in wire form — entries written by distributed
// work-unit execution include it so a re-executed unit restores the same
// campaign counters bit for bit; entries written by plain flow runs omit it
// (and decode compatibly either way).
type CachedFlow struct {
	Metrics   *analysis.FlowMetrics `json:"metrics"`
	Stats     tcp.Stats             `json:"stats"`
	Telemetry *telemetry.FlowState  `json:"telemetry,omitempty"`
}

// cacheKey is the canonical serialization hashed into an entry's address.
// Every field that can change a flow's outcome appears here; the struct is
// marshalled with encoding/json, whose output is deterministic for a given
// binary, and the schema and version fields fence off layout and model
// changes. Telemetry and FlightRecorder sinks deliberately do not
// participate: they observe a flow, they never alter it.
type cacheKey struct {
	Schema       int               `json:"schema"`
	Version      string            `json:"version"`
	ID           string            `json:"id"`
	Operator     cellular.Operator `json:"operator"`
	Trip         railway.Trip      `json:"trip"`
	TripOffset   time.Duration     `json:"trip_offset"`
	FlowDuration time.Duration     `json:"flow_duration"`
	Seed         int64             `json:"seed"`
	TCP          tcp.Config        `json:"tcp"`
	// CC is the congestion-control variant name. The numeric Variant inside
	// TCP already distinguishes variants, but the name participates on its
	// own so a renumbering of the enum can never silently alias two
	// variants' entries.
	CC       string           `json:"cc"`
	Scenario string           `json:"scenario"`
	Faults   *faults.Schedule `json:"faults,omitempty"`
}

// key computes the scenario's content address under this cache's version.
func (c *FlowCache) key(sc Scenario) (string, error) {
	k := cacheKey{
		Schema:       cacheSchema,
		Version:      c.version,
		ID:           sc.ID,
		Operator:     sc.Operator,
		Trip:         sc.Trip,
		TripOffset:   sc.TripOffset,
		FlowDuration: sc.FlowDuration,
		Seed:         sc.Seed,
		TCP:          sc.TCP,
		CC:           sc.TCP.Variant.String(),
		Scenario:     sc.Scenario,
		Faults:       sc.Faults,
	}
	h := sha256.New()
	if err := json.NewEncoder(h).Encode(k); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// path maps a key to its entry file.
func (c *FlowCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get looks the scenario up, returning its cached result and true on a hit.
// Corrupt or truncated entries are detected by checksum, removed, counted
// in Errors, and reported as a miss.
func (c *FlowCache) Get(sc Scenario) (CachedFlow, bool) {
	key, err := c.key(sc)
	if err != nil {
		c.errors.Add(1)
		return CachedFlow{}, false
	}
	return c.getKey(key)
}

// getKey is Get below the key computation.
func (c *FlowCache) getKey(key string) (CachedFlow, bool) {
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return CachedFlow{}, false
	}
	ent, err := decodeEntry(raw)
	if err != nil {
		// Detected corruption: drop the bad entry so the rewrite after the
		// fallback simulation starts clean.
		os.Remove(c.path(key))
		c.errors.Add(1)
		c.misses.Add(1)
		return CachedFlow{}, false
	}
	c.bytesRead.Add(int64(len(raw)))
	c.hits.Add(1)
	return ent, true
}

// GetOrCompute returns the scenario's result, serving it from disk when
// cached and computing (then storing) it otherwise — with concurrent
// computations of the same key collapsed onto one: the first caller runs
// compute, every simultaneous caller for the same key blocks on that result
// instead of simulating it again (counted in Dedups). shared reports that
// the result came from the cache or another caller's computation rather
// than this call's own compute — callers that attach telemetry to the
// computation can use it exactly like a cache hit (no simulation work of
// their own happened). A compute error is returned to the leader and every
// waiter, and nothing is stored.
func (c *FlowCache) GetOrCompute(sc Scenario, compute func() (CachedFlow, error)) (CachedFlow, bool, error) {
	key, err := c.key(sc)
	if err != nil {
		// Unkeyable scenario: fall back to a plain computation.
		c.errors.Add(1)
		ent, cerr := compute()
		return ent, false, cerr
	}
	if ent, ok := c.getKey(key); ok {
		return ent, true, nil
	}
	c.flightMu.Lock()
	if call, inflight := c.flight[key]; inflight {
		c.flightMu.Unlock()
		<-call.done
		if call.err != nil {
			return CachedFlow{}, false, call.err
		}
		c.dedups.Add(1)
		return call.ent, true, nil
	}
	call := &flightCall{done: make(chan struct{})}
	if c.flight == nil {
		c.flight = make(map[string]*flightCall)
	}
	c.flight[key] = call
	c.flightMu.Unlock()

	call.ent, call.err = compute()
	if call.err == nil {
		c.putKey(key, call.ent)
	}
	c.flightMu.Lock()
	delete(c.flight, key)
	c.flightMu.Unlock()
	close(call.done)
	return call.ent, false, call.err
}

// GetOrComputeFull is GetOrCompute for callers that need a telemetry-bearing
// entry (distributed work-unit execution): a cached entry without a Telemetry
// section is treated as a miss — compute runs and its (telemetry-complete)
// result overwrites the thinner entry, upgrading it for future unit runs.
// Because entries are content-addressed over everything that determines the
// flow's outcome, the recompute is bit-identical to the original, so the
// overwrite changes nothing a metrics-only reader can observe. In-flight
// dedup is namespaced apart from GetOrCompute's so a full computation never
// adopts a concurrent metrics-only result (which would lack telemetry).
func (c *FlowCache) GetOrComputeFull(sc Scenario, compute func() (CachedFlow, error)) (CachedFlow, bool, error) {
	key, err := c.key(sc)
	if err != nil {
		c.errors.Add(1)
		ent, cerr := compute()
		return ent, false, cerr
	}
	if ent, ok := c.getKey(key); ok && ent.Telemetry != nil {
		return ent, true, nil
	}
	flightKey := "full:" + key
	c.flightMu.Lock()
	if call, inflight := c.flight[flightKey]; inflight {
		c.flightMu.Unlock()
		<-call.done
		if call.err != nil {
			return CachedFlow{}, false, call.err
		}
		c.dedups.Add(1)
		return call.ent, true, nil
	}
	call := &flightCall{done: make(chan struct{})}
	if c.flight == nil {
		c.flight = make(map[string]*flightCall)
	}
	c.flight[flightKey] = call
	c.flightMu.Unlock()

	call.ent, call.err = compute()
	if call.err == nil {
		c.putKey(key, call.ent)
	}
	c.flightMu.Lock()
	delete(c.flight, flightKey)
	c.flightMu.Unlock()
	close(call.done)
	return call.ent, false, call.err
}

// Put stores the flow's result under the scenario's key. Writes are atomic
// (unique temp file, then rename), so concurrent writers of the same key —
// which, by construction, carry identical payloads — cannot interleave into
// a torn entry. Storage failures are counted and otherwise ignored: the
// cache is an accelerator, never a correctness dependency.
func (c *FlowCache) Put(sc Scenario, m *analysis.FlowMetrics, st tcp.Stats) {
	key, err := c.key(sc)
	if err != nil {
		c.errors.Add(1)
		return
	}
	c.putKey(key, CachedFlow{Metrics: m, Stats: st})
}

// putKey is Put below the key computation.
func (c *FlowCache) putKey(key string, ent CachedFlow) {
	raw, err := encodeEntry(ent)
	if err != nil {
		c.errors.Add(1)
		return
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		c.errors.Add(1)
		return
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		c.errors.Add(1)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		c.errors.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		c.errors.Add(1)
		return
	}
	c.bytesWritten.Add(int64(len(raw)))
	if max := c.maxBytes.Load(); max > 0 && c.diskBytes.Add(int64(len(raw))) > max {
		c.evict(max)
	}
}

// SetMaxBytes bounds the cache's on-disk entry total: after every write that
// pushes the total past max, the oldest entries (by modification time) are
// evicted until the total fits again, so a long-running server's cache
// directory cannot grow without bound. max <= 0 removes the bound. The
// current total is measured from the directory when the bound is installed
// (and re-measured on every eviction scan), so a pre-populated or externally
// shared directory is bounded correctly too; an over-budget directory is
// trimmed immediately.
func (c *FlowCache) SetMaxBytes(max int64) error {
	if max <= 0 {
		c.maxBytes.Store(0)
		return nil
	}
	c.maxBytes.Store(max)
	total, err := c.scanDiskBytes()
	if err != nil {
		return fmt.Errorf("dataset: cache: %w", err)
	}
	c.diskBytes.Store(total)
	if total > max {
		c.evict(max)
	}
	return nil
}

// scanDiskBytes sums the sizes of every entry file in the cache directory.
func (c *FlowCache) scanDiskBytes() (int64, error) {
	ents, err := c.entries()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range ents {
		total += e.size
	}
	return total, nil
}

// cacheEntryInfo is one on-disk entry's eviction-relevant metadata.
type cacheEntryInfo struct {
	path  string
	size  int64
	mtime time.Time
}

// entries lists the cache directory's entry files (temp files excluded).
func (c *FlowCache) entries() ([]cacheEntryInfo, error) {
	dirents, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	ents := make([]cacheEntryInfo, 0, len(dirents))
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with a concurrent removal
		}
		ents = append(ents, cacheEntryInfo{
			path:  filepath.Join(c.dir, name),
			size:  info.Size(),
			mtime: info.ModTime(),
		})
	}
	return ents, nil
}

// evict removes the oldest entries (by mtime, ties broken by name for
// determinism) until the directory total is back under max. It re-scans the
// directory for an accurate total — the running estimate drifts when several
// processes share the directory — and tolerates entries vanishing mid-scan
// (another process may be evicting too). Failures are counted and otherwise
// ignored: eviction is bookkeeping, never a correctness dependency.
func (c *FlowCache) evict(max int64) {
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	ents, err := c.entries()
	if err != nil {
		c.errors.Add(1)
		return
	}
	var total int64
	for _, e := range ents {
		total += e.size
	}
	if total > max {
		sort.Slice(ents, func(i, j int) bool {
			if !ents[i].mtime.Equal(ents[j].mtime) {
				return ents[i].mtime.Before(ents[j].mtime)
			}
			return ents[i].path < ents[j].path
		})
		for _, e := range ents {
			if total <= max {
				break
			}
			if err := os.Remove(e.path); err != nil {
				if !os.IsNotExist(err) {
					c.errors.Add(1)
					continue
				}
			}
			total -= e.size
			c.evictions.Add(1)
		}
	}
	c.diskBytes.Store(total)
}

// Counters returns a snapshot of the cache's activity counters in telemetry
// form.
func (c *FlowCache) Counters() telemetry.Cache {
	return telemetry.Cache{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Dedups:       c.dedups.Load(),
		Errors:       c.errors.Load(),
		Evictions:    c.evictions.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
	}
}

// encodeEntry renders an entry file: a header line carrying the magic and
// the SHA-256 of the payload, then the JSON payload.
func encodeEntry(ent CachedFlow) ([]byte, error) {
	payload, err := json.Marshal(ent)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %s\n", entryMagic, hex.EncodeToString(sum[:]))
	buf.Write(payload)
	return buf.Bytes(), nil
}

// decodeEntry parses and checksum-verifies an entry file.
func decodeEntry(raw []byte) (CachedFlow, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return CachedFlow{}, fmt.Errorf("dataset: cache entry: missing header")
	}
	header, payload := raw[:nl], raw[nl+1:]
	fields := bytes.Fields(header)
	if len(fields) != 2 || string(fields[0]) != entryMagic {
		return CachedFlow{}, fmt.Errorf("dataset: cache entry: bad header")
	}
	want, err := hex.DecodeString(string(fields[1]))
	if err != nil || len(want) != sha256.Size {
		return CachedFlow{}, fmt.Errorf("dataset: cache entry: bad checksum encoding")
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], want) {
		return CachedFlow{}, fmt.Errorf("dataset: cache entry: checksum mismatch (truncated or corrupted)")
	}
	var ent CachedFlow
	if err := json.Unmarshal(payload, &ent); err != nil {
		return CachedFlow{}, fmt.Errorf("dataset: cache entry: %w", err)
	}
	if ent.Metrics == nil {
		return CachedFlow{}, fmt.Errorf("dataset: cache entry: missing metrics")
	}
	return ent, nil
}
