package dataset

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/buildinfo"
	"repro/internal/cellular"
	"repro/internal/faults"
	"repro/internal/railway"
	"repro/internal/tcp"
	"repro/internal/telemetry"
)

// cacheSchema names the on-disk entry layout. It participates in the
// content-addressed key, so bumping it orphans (never corrupts) every entry
// written under the previous layout.
const cacheSchema = 1

// entryMagic is the first token of every cache entry file.
const entryMagic = "hsrflowcache"

// FlowCache is a content-addressed, on-disk store of per-flow results: the
// key is a stable hash of everything that determines a flow's outcome (the
// full scenario configuration, the seed, and the model-relevant code
// version), the value its FlowMetrics and endpoint Stats. Campaigns and
// sweeps consult it before simulating, so repeated and overlapping runs
// skip simulation entirely on a hit — and because the simulation is
// deterministic for a key, a hit is byte-equivalent to re-running it.
//
// Entries are written atomically (temp file + rename) and carry a SHA-256
// checksum of their payload; a truncated, corrupted or stale-schema entry is
// detected on read, counted in Errors, deleted best-effort, and treated as a
// miss — the flow simply simulates again and rewrites the entry. All methods
// are safe for concurrent use by campaign workers.
type FlowCache struct {
	dir     string
	version string

	hits         atomic.Int64
	misses       atomic.Int64
	errors       atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
}

// OpenFlowCache opens (creating if needed) a flow result cache rooted at
// dir, keyed with the current build's version (buildinfo.Version): a new
// model-relevant code version makes every old entry unreachable. Note that
// builds without VCS stamping report "devel" — when iterating on model code
// with such builds, point -cache at a fresh directory.
func OpenFlowCache(dir string) (*FlowCache, error) {
	return OpenFlowCacheVersion(dir, buildinfo.Version())
}

// OpenFlowCacheVersion is OpenFlowCache with an explicit version string in
// the key, for tests and for callers that version the model themselves.
func OpenFlowCacheVersion(dir, version string) (*FlowCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("dataset: cache directory must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: cache: %w", err)
	}
	return &FlowCache{dir: dir, version: version}, nil
}

// CachedFlow is one cache entry's payload: everything a metrics-only run
// needs from a flow simulation.
type CachedFlow struct {
	Metrics *analysis.FlowMetrics `json:"metrics"`
	Stats   tcp.Stats             `json:"stats"`
}

// cacheKey is the canonical serialization hashed into an entry's address.
// Every field that can change a flow's outcome appears here; the struct is
// marshalled with encoding/json, whose output is deterministic for a given
// binary, and the schema and version fields fence off layout and model
// changes. Telemetry and FlightRecorder sinks deliberately do not
// participate: they observe a flow, they never alter it.
type cacheKey struct {
	Schema       int               `json:"schema"`
	Version      string            `json:"version"`
	ID           string            `json:"id"`
	Operator     cellular.Operator `json:"operator"`
	Trip         railway.Trip      `json:"trip"`
	TripOffset   time.Duration     `json:"trip_offset"`
	FlowDuration time.Duration     `json:"flow_duration"`
	Seed         int64             `json:"seed"`
	TCP          tcp.Config        `json:"tcp"`
	Scenario     string            `json:"scenario"`
	Faults       *faults.Schedule  `json:"faults,omitempty"`
}

// key computes the scenario's content address under this cache's version.
func (c *FlowCache) key(sc Scenario) (string, error) {
	k := cacheKey{
		Schema:       cacheSchema,
		Version:      c.version,
		ID:           sc.ID,
		Operator:     sc.Operator,
		Trip:         sc.Trip,
		TripOffset:   sc.TripOffset,
		FlowDuration: sc.FlowDuration,
		Seed:         sc.Seed,
		TCP:          sc.TCP,
		Scenario:     sc.Scenario,
		Faults:       sc.Faults,
	}
	h := sha256.New()
	if err := json.NewEncoder(h).Encode(k); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// path maps a key to its entry file.
func (c *FlowCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get looks the scenario up, returning its cached result and true on a hit.
// Corrupt or truncated entries are detected by checksum, removed, counted
// in Errors, and reported as a miss.
func (c *FlowCache) Get(sc Scenario) (CachedFlow, bool) {
	key, err := c.key(sc)
	if err != nil {
		c.errors.Add(1)
		return CachedFlow{}, false
	}
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return CachedFlow{}, false
	}
	ent, err := decodeEntry(raw)
	if err != nil {
		// Detected corruption: drop the bad entry so the rewrite after the
		// fallback simulation starts clean.
		os.Remove(c.path(key))
		c.errors.Add(1)
		c.misses.Add(1)
		return CachedFlow{}, false
	}
	c.bytesRead.Add(int64(len(raw)))
	c.hits.Add(1)
	return ent, true
}

// Put stores the flow's result under the scenario's key. Writes are atomic
// (unique temp file, then rename), so concurrent writers of the same key —
// which, by construction, carry identical payloads — cannot interleave into
// a torn entry. Storage failures are counted and otherwise ignored: the
// cache is an accelerator, never a correctness dependency.
func (c *FlowCache) Put(sc Scenario, m *analysis.FlowMetrics, st tcp.Stats) {
	key, err := c.key(sc)
	if err != nil {
		c.errors.Add(1)
		return
	}
	raw, err := encodeEntry(CachedFlow{Metrics: m, Stats: st})
	if err != nil {
		c.errors.Add(1)
		return
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		c.errors.Add(1)
		return
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		c.errors.Add(1)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		c.errors.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		c.errors.Add(1)
		return
	}
	c.bytesWritten.Add(int64(len(raw)))
}

// Counters returns a snapshot of the cache's activity counters in telemetry
// form.
func (c *FlowCache) Counters() telemetry.Cache {
	return telemetry.Cache{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Errors:       c.errors.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
	}
}

// encodeEntry renders an entry file: a header line carrying the magic and
// the SHA-256 of the payload, then the JSON payload.
func encodeEntry(ent CachedFlow) ([]byte, error) {
	payload, err := json.Marshal(ent)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %s\n", entryMagic, hex.EncodeToString(sum[:]))
	buf.Write(payload)
	return buf.Bytes(), nil
}

// decodeEntry parses and checksum-verifies an entry file.
func decodeEntry(raw []byte) (CachedFlow, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return CachedFlow{}, fmt.Errorf("dataset: cache entry: missing header")
	}
	header, payload := raw[:nl], raw[nl+1:]
	fields := bytes.Fields(header)
	if len(fields) != 2 || string(fields[0]) != entryMagic {
		return CachedFlow{}, fmt.Errorf("dataset: cache entry: bad header")
	}
	want, err := hex.DecodeString(string(fields[1]))
	if err != nil || len(want) != sha256.Size {
		return CachedFlow{}, fmt.Errorf("dataset: cache entry: bad checksum encoding")
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], want) {
		return CachedFlow{}, fmt.Errorf("dataset: cache entry: checksum mismatch (truncated or corrupted)")
	}
	var ent CachedFlow
	if err := json.Unmarshal(payload, &ent); err != nil {
		return CachedFlow{}, fmt.Errorf("dataset: cache entry: %w", err)
	}
	if ent.Metrics == nil {
		return CachedFlow{}, fmt.Errorf("dataset: cache entry: missing metrics")
	}
	return ent, nil
}
