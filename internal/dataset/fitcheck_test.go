package dataset

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/railway"
	"repro/internal/stats"
	"repro/internal/tcp"
)

// TestReportModelFit prints per-operator mean deviations (run with -v).
func TestReportModelFit(t *testing.T) {
	if testing.Short() {
		t.Skip("reporting test")
	}
	hsr, _ := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	var allPad, allEnh []float64
	for _, op := range cellular.Operators() {
		var padD, enhD []float64
		for seed := int64(1); seed <= 16; seed++ {
			start, _ := hsr.CruiseWindow()
			m, err := AnalyzeFlow(Scenario{
				ID: "fit", Operator: op, Trip: hsr, TripOffset: start + time.Duration(seed)*29*time.Second,
				FlowDuration: 120 * time.Second, Seed: seed, TCP: tcp.DefaultConfig(), Scenario: "hsr",
			})
			if err != nil {
				t.Fatal(err)
			}
			prm := core.ParamsFromMetrics(m)
			pad, _ := core.Padhye(prm)
			enh, _ := core.Enhanced(prm)
			padD = append(padD, core.Deviation(pad, m.ThroughputPps))
			enhD = append(enhD, core.Deviation(enh, m.ThroughputPps))
		}
		fmt.Printf("%-14s MEAN D: padhye=%5.1f%% enhanced=%5.1f%%\n", op.Name, stats.Mean(padD)*100, stats.Mean(enhD)*100)
		allPad = append(allPad, padD...)
		allEnh = append(allEnh, enhD...)
	}
	fmt.Printf("OVERALL MEAN D: padhye=%5.1f%% enhanced=%5.1f%%\n", stats.Mean(allPad)*100, stats.Mean(allEnh)*100)
}
