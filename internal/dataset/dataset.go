// Package dataset assembles complete measurement scenarios — a railway
// trip, a carrier's cellular channel, the emulated links and a TCP flow —
// and runs whole measurement campaigns shaped like the paper's Table I
// dataset (255 flows across China Mobile LTE, China Unicom 3G and China
// Telecom 3G, January and October 2015), plus the stationary baseline the
// paper compares against.
//
// Real HSR rides obviously cannot be re-run; the campaign synthesizes the
// same structure (trips x carriers x flows) with deterministic per-flow
// seeds so every experiment is reproducible bit for bit.
package dataset

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/cellular"
	"repro/internal/faults"
	"repro/internal/netem"
	"repro/internal/railway"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Scenario is the full environment of one simulated flow.
type Scenario struct {
	ID           string
	Operator     cellular.Operator
	Trip         railway.Trip
	TripOffset   time.Duration // where in the trip the flow starts
	FlowDuration time.Duration
	Seed         int64
	TCP          tcp.Config
	Scenario     string // "hsr" or "stationary" (trace metadata)
	// Faults, when non-empty, injects the schedule's fault episodes into the
	// flow's path: storms become extra channel outages, blackouts and ACK
	// bursts layer onto the loss models, rate collapses scale the line rate,
	// delay spikes inflate latency. All fault randomness derives from Seed
	// on dedicated streams, so faulted flows stay bit-for-bit reproducible.
	Faults *faults.Schedule
	// Telemetry, when non-nil, collects the flow's full metrics bundle
	// (kernel, endpoint, link and fault counters). Attaching it never
	// changes the packet trace: live instrumentation is nil-gated integer
	// increments and everything else is harvested after the run.
	Telemetry *telemetry.Flow
	// FlightRecorder, when non-nil, additionally records the flow's events
	// into a bounded ring (state transitions only by default) that can be
	// dumped as a JSONL trace after the run.
	FlightRecorder *telemetry.FlightRecorder
}

// Validate checks the scenario.
func (sc Scenario) Validate() error {
	if sc.FlowDuration <= 0 {
		return fmt.Errorf("dataset: flow duration %v must be positive", sc.FlowDuration)
	}
	if sc.TripOffset < 0 {
		return fmt.Errorf("dataset: trip offset %v must be non-negative", sc.TripOffset)
	}
	if err := sc.Operator.Validate(); err != nil {
		return err
	}
	if err := sc.Faults.Validate(); err != nil {
		return err
	}
	return sc.TCP.Validate()
}

// BuildPath constructs the emulated path (downlink data + uplink ACK) for a
// scenario on the given simulator, layering the scenario's fault schedule
// (if any) over the cellular channel and both links. It is exported so the
// MPTCP experiments can wire several paths into one simulation.
func BuildPath(simulator *sim.Simulator, sc Scenario) (*netem.Path, *cellular.Channel, error) {
	horizon := sc.FlowDuration + time.Minute // slack for in-flight cleanup
	ch, err := cellular.NewChannel(sc.Operator, sc.Trip, sc.TripOffset, horizon, sim.NewRand(sc.Seed, sim.StreamHandoff))
	if err != nil {
		return nil, nil, err
	}
	faulted := !sc.Faults.Empty()
	if faulted {
		ch.AddOutages(sc.Faults.StormOutages(sc.Seed))
	}
	op := sc.Operator
	// Each per-packet consumer gets its own timeline cursor (bit-identical
	// to the span-based Channel methods, O(1) amortized for the mostly
	// monotone query series a flow produces).
	dataLoss := netem.LossModel(netem.NewTransitLossFunc(ch.DataLossCursor(), sim.NewRand(sc.Seed, sim.StreamDataLoss)))
	ackLoss := netem.LossModel(netem.NewTransitLossFunc(ch.AckLossCursor(), sim.NewRand(sc.Seed, sim.StreamAckLoss)))
	fwdDelay := netem.DelayModel(netem.NewSumDelay(
		netem.NewUniformDelay(op.DownDelay, op.Jitter, sim.NewRand(sc.Seed, sim.StreamDelay)),
		netem.DelayFunc{Fn: ch.DelayCursor()},
	))
	revDelay := netem.DelayModel(netem.NewSumDelay(
		netem.NewUniformDelay(op.UpDelay, op.Jitter, sim.NewRand(sc.Seed, sim.StreamDelay+1000)),
		netem.DelayFunc{Fn: ch.DelayCursor()},
	))
	var rateScale func(time.Duration) float64
	if faulted {
		var dataDrops, ackDrops *int64
		if sc.Telemetry != nil {
			dataDrops = &sc.Telemetry.Faults.DataDrops
			ackDrops = &sc.Telemetry.Faults.AckDrops
		}
		dataLoss = sc.Faults.WrapDataLossCounted(dataLoss, sim.NewRand(sc.Seed, sim.StreamFaultData), dataDrops)
		ackLoss = sc.Faults.WrapAckLossCounted(ackLoss, sim.NewRand(sc.Seed, sim.StreamFaultAck), ackDrops)
		fwdDelay = sc.Faults.WrapDelay(fwdDelay)
		revDelay = sc.Faults.WrapDelay(revDelay)
		rateScale = sc.Faults.RateScale
	}
	fwd := netem.NewLink(simulator, netem.LinkConfig{
		Rate:      op.DownlinkRate,
		RateScale: rateScale,
		MaxQueue:  op.QueuePackets,
		Delay:     fwdDelay,
		Loss:      dataLoss,
	})
	rev := netem.NewLink(simulator, netem.LinkConfig{
		Rate:      op.UplinkRate,
		RateScale: rateScale,
		MaxQueue:  op.QueuePackets,
		Delay:     revDelay,
		Loss:      ackLoss,
	})
	return netem.NewPath(fwd, rev), ch, nil
}

// BuildSharedCell creates the shared air-interface capacity stage of one
// cell: a downlink and an uplink that only model line rate and queueing.
// Several subflows of the same phone chained through these stages compete
// for the same radio capacity (used by the MPTCP duplex experiments).
func BuildSharedCell(simulator *sim.Simulator, op cellular.Operator) (down, up *netem.Link) {
	down = netem.NewLink(simulator, netem.LinkConfig{
		Rate: op.DownlinkRate, MaxQueue: op.QueuePackets, Delay: netem.FixedDelay(0),
	})
	up = netem.NewLink(simulator, netem.LinkConfig{
		Rate: op.UplinkRate, MaxQueue: op.QueuePackets, Delay: netem.FixedDelay(0),
	})
	return down, up
}

// BuildSubflowPath builds a per-subflow path whose loss and delay are
// independent (own cellular channel, own seed) but whose capacity is the
// shared cell stage: packets traverse the subflow's channel link first
// (synchronous loss verdict, so traces stay exact) and then queue on the
// shared air interface.
func BuildSubflowPath(simulator *sim.Simulator, sc Scenario, sharedDown, sharedUp *netem.Link) (*netem.Path, error) {
	horizon := sc.FlowDuration + time.Minute
	ch, err := cellular.NewChannel(sc.Operator, sc.Trip, sc.TripOffset, horizon, sim.NewRand(sc.Seed, sim.StreamHandoff))
	if err != nil {
		return nil, err
	}
	faulted := !sc.Faults.Empty()
	if faulted {
		ch.AddOutages(sc.Faults.StormOutages(sc.Seed))
	}
	op := sc.Operator
	dataLoss := netem.LossModel(netem.NewTransitLossFunc(ch.DataLossCursor(), sim.NewRand(sc.Seed, sim.StreamDataLoss)))
	ackLoss := netem.LossModel(netem.NewTransitLossFunc(ch.AckLossCursor(), sim.NewRand(sc.Seed, sim.StreamAckLoss)))
	fwdDelay := netem.DelayModel(netem.NewSumDelay(
		netem.NewUniformDelay(op.DownDelay, op.Jitter, sim.NewRand(sc.Seed, sim.StreamDelay)),
		netem.DelayFunc{Fn: ch.DelayCursor()},
	))
	revDelay := netem.DelayModel(netem.NewSumDelay(
		netem.NewUniformDelay(op.UpDelay, op.Jitter, sim.NewRand(sc.Seed, sim.StreamDelay+1000)),
		netem.DelayFunc{Fn: ch.DelayCursor()},
	))
	if faulted {
		dataLoss = sc.Faults.WrapDataLoss(dataLoss, sim.NewRand(sc.Seed, sim.StreamFaultData))
		ackLoss = sc.Faults.WrapAckLoss(ackLoss, sim.NewRand(sc.Seed, sim.StreamFaultAck))
		fwdDelay = sc.Faults.WrapDelay(fwdDelay)
		revDelay = sc.Faults.WrapDelay(revDelay)
	}
	fwd := netem.NewLink(simulator, netem.LinkConfig{Delay: fwdDelay, Loss: dataLoss})
	rev := netem.NewLink(simulator, netem.LinkConfig{Delay: revDelay, Loss: ackLoss})
	return netem.NewPath(
		netem.NewChain(fwd, sharedDown),
		netem.NewChain(rev, sharedUp),
	), nil
}

// simEventBudgetPerSecond is the kernel event budget granted per simulated
// second (plus a minute of slack). Real flows execute a few thousand events
// per simulated second; two million leaves three orders of magnitude of
// headroom while still catching a pathological schedule that spins at
// constant virtual time.
const simEventBudgetPerSecond = 2_000_000

// FlowMeta returns the trace metadata describing the scenario's flow.
func (sc Scenario) FlowMeta() trace.FlowMeta {
	return trace.FlowMeta{
		ID:          sc.ID,
		Operator:    sc.Operator.Name,
		Tech:        sc.Operator.Tech.String(),
		Scenario:    sc.Scenario,
		Seed:        sc.Seed,
		MSS:         sc.TCP.MSS,
		DelayedAckB: sc.TCP.DelayedAckB,
		WindowLimit: sc.TCP.WindowLimit,
		Duration:    sc.FlowDuration,
	}
}

// runScenario simulates one scenario end to end, streaming every packet
// event into rec, and returns the endpoint counters. This is the single
// simulation core under both the materializing RunFlow and the streaming
// RunFlowMetrics: the sink is the only difference between the two, so their
// simulations are bit-identical. The kernel runs under an event budget so a
// runaway schedule fails loudly instead of hanging the campaign.
func runScenario(sc Scenario, rec trace.Recorder) (tcp.Stats, error) {
	if err := sc.Validate(); err != nil {
		return tcp.Stats{}, err
	}
	tel := sc.Telemetry
	var wallStart time.Time
	if tel != nil {
		wallStart = time.Now()
	}
	simulator := sim.New()
	budget := int64((sc.FlowDuration+time.Minute)/time.Second) * simEventBudgetPerSecond
	simulator.SetBudget(sim.Budget{MaxEvents: budget})
	if tel != nil {
		simulator.SetTelemetry(&tel.Kernel)
	}
	path, ch, err := BuildPath(simulator, sc)
	if err != nil {
		return tcp.Stats{}, err
	}
	if sc.FlightRecorder != nil {
		rec = trace.Tee{rec, sc.FlightRecorder}
	}
	conn, err := tcp.New(simulator, path, sc.TCP, rec)
	if err != nil {
		return tcp.Stats{}, err
	}
	if tel != nil {
		conn.SetTelemetry(&tel.TCP)
	}
	if err := conn.Start(sc.FlowDuration); err != nil {
		return tcp.Stats{}, err
	}
	simulator.RunUntil(sc.FlowDuration)
	if simulator.Exhausted() {
		return tcp.Stats{}, fmt.Errorf("dataset: flow %s exhausted its %d-event kernel budget at t=%v (runaway schedule?)",
			sc.ID, budget, simulator.Now())
	}
	if tel != nil {
		harvestFlow(tel, sc, simulator, path, ch, conn, budget, wallStart)
	}
	return conn.Stats(), nil
}

// RunFlow simulates one scenario end to end and returns its complete packet
// trace and the endpoint counters. Use it when the events themselves are the
// product (CSV export, tracegen, figure rendering); campaigns that only need
// metrics should use RunFlowMetrics, which never materializes the event
// list.
func RunFlow(sc Scenario) (*trace.FlowTrace, tcp.Stats, error) {
	ft := &trace.FlowTrace{Meta: sc.FlowMeta()}
	// A materialized flow produces on the order of a thousand events per
	// flow-second (four per delivered packet, operator-dependent); reserving
	// that up front replaces log2(n) append doublings — each a full copy of
	// a multi-megabyte list — with at most one growth.
	ft.Grow(int(sc.FlowDuration/time.Second+1) * 1200)
	st, err := runScenario(sc, ft)
	if err != nil {
		return nil, tcp.Stats{}, err
	}
	return ft, st, nil
}

// RunFlowMetrics simulates one scenario and reduces it to FlowMetrics
// online: packet events stream into a pooled incremental analyzer as the
// simulation produces them, so peak memory is independent of flow length
// and the analyzer's tables are reused across flows. The metrics are
// identical to analyzing the materialized trace of the same scenario.
func RunFlowMetrics(sc Scenario) (*analysis.FlowMetrics, tcp.Stats, error) {
	inc := analysis.AcquireIncremental(sc.FlowMeta())
	defer inc.Release()
	st, err := runScenario(sc, inc)
	if err != nil {
		return nil, tcp.Stats{}, err
	}
	m, err := inc.Finish()
	if err != nil {
		return nil, tcp.Stats{}, err
	}
	return m, st, nil
}

// harvestFlow fills the telemetry bundle's end-of-run sections: kernel time
// and budget, link counters (read once from the links instead of per-packet
// instrumentation), fault-schedule activity, and the endpoint flush.
func harvestFlow(tel *telemetry.Flow, sc Scenario, simulator *sim.Simulator, path *netem.Path, ch *cellular.Channel, conn *tcp.Conn, budget int64, wallStart time.Time) {
	tel.Kernel.VirtualNS = int64(simulator.Now())
	tel.Kernel.BudgetEvents = budget
	if l, ok := path.Forward.(*netem.Link); ok {
		harvestLink(&tel.Net.Data, l.Stats())
	}
	if l, ok := path.Reverse.(*netem.Link); ok {
		harvestLink(&tel.Net.Ack, l.Stats())
	}
	if ch != nil {
		st := ch.Stats()
		tel.Channel.Compiles += st.Compiles
		tel.Channel.Segments += st.Segments
		tel.Channel.CursorQueries += st.CursorQueries
		tel.Channel.CursorAdvances += st.CursorAdvances
		tel.Channel.CursorFallbacks += st.CursorFallbacks
	}
	if !sc.Faults.Empty() {
		tel.Faults.Schedules++
		episodes, storms := sc.Faults.Counts()
		tel.Faults.Episodes += int64(episodes)
		tel.Faults.StormOutages += int64(storms)
	}
	conn.FlushTelemetry()
	tel.WallNS = time.Since(wallStart).Nanoseconds()
}

// harvestLink copies one direction's netem.LinkStats into telemetry form.
func harvestLink(dst *telemetry.LinkCounters, st netem.LinkStats) {
	dst.Offered += int64(st.Offered)
	dst.Delivered += int64(st.Delivered)
	dst.ChannelDrops += int64(st.ChannelDrops)
	dst.QueueDrops += int64(st.QueueDrops)
	if pb := int64(st.PeakBacklog); pb > dst.PeakBacklog {
		dst.PeakBacklog = pb
	}
	dst.VectorBursts += int64(st.VectorBursts)
	dst.VectorPackets += int64(st.VectorPackets)
}

// AnalyzeFlow runs a scenario and reduces it to metrics through the
// streaming pipeline (campaigns over hundreds of flows would otherwise hold
// gigabytes of events).
func AnalyzeFlow(sc Scenario) (*analysis.FlowMetrics, error) {
	m, _, err := RunFlowMetrics(sc)
	return m, err
}

// RunOptions selects how a flow's metrics are produced: through the result
// cache (skip simulation on a hit, populate on a miss), and through which
// analysis pipeline.
type RunOptions struct {
	// Cache, when non-nil, is consulted before simulating and populated
	// after; nil always simulates.
	Cache *FlowCache
	// Materialize forces the legacy materialize-then-analyze path (the full
	// event list is built and handed to the batch analyzer). It exists to
	// cross-check the streaming pipeline — output must be byte-identical —
	// and bypasses the cache entirely.
	Materialize bool
}

// AnalyzeFlowOpts is AnalyzeFlow with pipeline options. Cache hits skip the
// simulation; the scenario's Telemetry bundle (if any) is then left
// untouched, since no simulation work happened (the cache's own counters
// record the hit).
func AnalyzeFlowOpts(opt RunOptions, sc Scenario) (*analysis.FlowMetrics, error) {
	if opt.Materialize {
		ft, _, err := RunFlow(sc)
		if err != nil {
			return nil, err
		}
		return analysis.Analyze(ft)
	}
	if opt.Cache != nil {
		// GetOrCompute additionally deduplicates concurrent misses of the
		// same key (e.g. identical jobs racing in a server): the flow
		// simulates once and every caller shares the result.
		ent, _, err := opt.Cache.GetOrCompute(sc, func() (CachedFlow, error) {
			m, st, err := RunFlowMetrics(sc)
			if err != nil {
				return CachedFlow{}, err
			}
			return CachedFlow{Metrics: m, Stats: st}, nil
		})
		if err != nil {
			return nil, err
		}
		return ent.Metrics, nil
	}
	m, _, err := RunFlowMetrics(sc)
	if err != nil {
		return nil, err
	}
	return m, nil
}
