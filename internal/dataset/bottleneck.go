package dataset

import (
	"fmt"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ContendedConfig describes a shared-bottleneck group: N flows, each with
// its own cellular channel, fault schedule and congestion-control variant,
// multiplexed over one emulated cell (a netem.Bottleneck).
type ContendedConfig struct {
	// Flows are the contending scenarios. Every flow must use the same
	// Operator (they share its cell); per-flow Seed, TCP.Variant, Faults
	// and Telemetry are free.
	Flows []Scenario
}

// ContendedResult is one flow's outcome in a shared-bottleneck run.
type ContendedResult struct {
	ID    string
	CC    string
	Stats tcp.Stats
}

// ThroughputPps returns the flow's delivered unique segments per second.
func (r ContendedResult) ThroughputPps() float64 { return r.Stats.ThroughputPps() }

// JainIndex computes Jain's fairness index (sum x)^2 / (n * sum x^2) over
// per-flow throughputs: 1 is perfectly fair, 1/n is maximally unfair.
// Empty or all-zero inputs return 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// RunContended simulates every flow of the group inside ONE simulator over
// one shared bottleneck, so the flows' packets genuinely contend for the
// same FIFO queue and transmitter. Results are returned in the order the
// flows were given. The whole group is single-threaded by construction, so
// its outcome is bit-identical at any -jobs or worker count; determinism
// only requires the caller to keep the flow list (and seeds) fixed.
func RunContended(cfg ContendedConfig) ([]ContendedResult, error) {
	if len(cfg.Flows) == 0 {
		return nil, fmt.Errorf("dataset: RunContended requires at least one flow")
	}
	op := cfg.Flows[0].Operator
	var maxDur time.Duration
	for i := range cfg.Flows {
		if err := cfg.Flows[i].Validate(); err != nil {
			return nil, err
		}
		if cfg.Flows[i].Operator.Name != op.Name {
			return nil, fmt.Errorf("dataset: contended flows must share one operator (%s vs %s)",
				op.Name, cfg.Flows[i].Operator.Name)
		}
		if d := cfg.Flows[i].FlowDuration; d > maxDur {
			maxDur = d
		}
	}

	simulator := sim.New()
	budget := int64((maxDur+time.Minute)/time.Second) * simEventBudgetPerSecond * int64(len(cfg.Flows))
	simulator.SetBudget(sim.Budget{MaxEvents: budget})

	bn, err := netem.NewBottleneck(simulator, netem.BottleneckConfig{
		DownRate: op.DownlinkRate,
		UpRate:   op.UplinkRate,
		Queue:    op.QueuePackets,
	})
	if err != nil {
		return nil, err
	}

	conns := make([]*tcp.Conn, len(cfg.Flows))
	for i := range cfg.Flows {
		sc := cfg.Flows[i]
		// BuildSubflowPath gives each flow its private loss/delay stage
		// (own channel, own seed streams) chained into the shared cell.
		path, err := BuildSubflowPath(simulator, sc, bn.Down, bn.Up)
		if err != nil {
			return nil, err
		}
		conn, err := tcp.New(simulator, path, sc.TCP, trace.Nop{})
		if err != nil {
			return nil, err
		}
		if sc.Telemetry != nil {
			conn.SetTelemetry(&sc.Telemetry.TCP)
		}
		if err := conn.Start(sc.FlowDuration); err != nil {
			return nil, err
		}
		conns[i] = conn
	}

	simulator.RunUntil(maxDur)
	if simulator.Exhausted() {
		return nil, fmt.Errorf("dataset: contended group exhausted its %d-event kernel budget at t=%v",
			budget, simulator.Now())
	}

	results := make([]ContendedResult, len(cfg.Flows))
	for i, conn := range conns {
		conn.FlushTelemetry()
		results[i] = ContendedResult{
			ID:    cfg.Flows[i].ID,
			CC:    conn.CC(),
			Stats: conn.Stats(),
		}
	}
	return results, nil
}

// ContendedTelemetry folds the groups' per-flow bundles into one campaign
// collector in flow order (the fixed-order contract Dist merges need).
func ContendedTelemetry(camp *telemetry.Campaign, flows []Scenario) {
	if camp == nil {
		return
	}
	for i := range flows {
		if flows[i].Telemetry != nil {
			camp.AddFlow(flows[i].Telemetry)
		}
	}
}
