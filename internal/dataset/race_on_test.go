//go:build race

package dataset

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation inflates allocation counts and would trip
// the allocation gates spuriously.
const raceEnabled = true
