package dataset

import (
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// TestTelemetryDoesNotPerturbFlow verifies the nil-sink contract end to end:
// attaching a full telemetry bundle (and a flight recorder) must leave the
// packet trace byte-identical to an uninstrumented run of the same seed.
func TestTelemetryDoesNotPerturbFlow(t *testing.T) {
	base := hsrScenario(t, cellular.ChinaMobileLTE, 42, 20*time.Second)
	base.Faults = faults.Stress(base.FlowDuration)

	plain, plainStats, err := RunFlow(base)
	if err != nil {
		t.Fatalf("RunFlow (plain): %v", err)
	}

	instrumented := base
	instrumented.Telemetry = telemetry.NewFlow()
	instrumented.FlightRecorder = telemetry.NewFlightRecorder(256)
	traced, tracedStats, err := RunFlow(instrumented)
	if err != nil {
		t.Fatalf("RunFlow (instrumented): %v", err)
	}

	if plainStats != tracedStats {
		t.Errorf("stats differ:\nplain: %+v\ninstr: %+v", plainStats, tracedStats)
	}
	if !reflect.DeepEqual(plain.Events, traced.Events) {
		t.Fatalf("event streams differ: %d vs %d events", len(plain.Events), len(traced.Events))
	}
}

// TestFlowTelemetryConsistency checks the harvested bundle against the
// flow's own counters and basic cross-section invariants.
func TestFlowTelemetryConsistency(t *testing.T) {
	sc := hsrScenario(t, cellular.ChinaMobileLTE, 7, 30*time.Second)
	// Hand-placed, non-overlapping episodes: under faults.Stress a storm
	// outage can cover the blackout window, in which case the inner channel
	// model (consulted first) claims every drop and no drop is attributable
	// to the schedule.
	sched, err := faults.New(
		faults.Episode{Kind: faults.Blackout, Start: 10 * time.Second, Dur: 3 * time.Second},
		faults.Episode{Kind: faults.AckBurst, Start: 20 * time.Second, Dur: 2 * time.Second, P: 0.9},
		faults.Episode{Kind: faults.Storm, Start: 25 * time.Second, Dur: 4 * time.Second, Count: 1, Outage: 2 * time.Second},
	)
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	sc.Faults = sched
	tel := telemetry.NewFlow()
	sc.Telemetry = tel
	_, st, runErr := RunFlow(sc)
	if runErr != nil {
		t.Fatalf("RunFlow: %v", runErr)
	}

	if tel.TCP.Flows != 1 {
		t.Errorf("TCP.Flows = %d, want 1", tel.TCP.Flows)
	}
	if tel.TCP.DataSent != st.DataSent || tel.TCP.Timeouts != st.Timeouts ||
		tel.TCP.AcksDropped != st.AcksDropped {
		t.Errorf("TCP telemetry diverges from Stats:\ntel: %+v\nstats: %+v", tel.TCP, st)
	}
	if tel.TCP.Cwnd.N() != int(st.AcksReceived) {
		t.Errorf("Cwnd samples = %d, want one per received ACK (%d)", tel.TCP.Cwnd.N(), st.AcksReceived)
	}
	if tel.TCP.CwndHist.Total() != int64(tel.TCP.Cwnd.N()) {
		t.Errorf("CwndHist total %d != Cwnd samples %d", tel.TCP.CwndHist.Total(), tel.TCP.Cwnd.N())
	}
	if tel.TCP.BackoffHist.Total() != st.Timeouts {
		t.Errorf("BackoffHist total %d != timeouts %d", tel.TCP.BackoffHist.Total(), st.Timeouts)
	}
	if tel.TCP.RecoveryPhases == 0 || tel.TCP.RecoveryNS <= 0 {
		t.Errorf("stressed flow recorded no recovery phases (%d, %dns)",
			tel.TCP.RecoveryPhases, tel.TCP.RecoveryNS)
	}

	if tel.Kernel.Events == 0 || tel.Kernel.Scheduled == 0 {
		t.Errorf("kernel counters empty: %+v", tel.Kernel)
	}
	if tel.Kernel.VirtualNS <= 0 || tel.Kernel.BudgetEvents <= 0 {
		t.Errorf("kernel run totals missing: %+v", tel.Kernel)
	}
	if tel.Kernel.BudgetHeadroom() <= 0.9 {
		t.Errorf("BudgetHeadroom = %v; a normal flow should barely touch the budget", tel.Kernel.BudgetHeadroom())
	}

	if tel.Net.Data.Offered != st.DataSent {
		t.Errorf("Net.Data.Offered = %d, want DataSent %d", tel.Net.Data.Offered, st.DataSent)
	}
	if drops := tel.Net.Data.ChannelDrops + tel.Net.Data.QueueDrops; drops != st.DataDropped {
		t.Errorf("data drops %d != Stats.DataDropped %d", drops, st.DataDropped)
	}
	if tel.Net.Ack.Offered != st.AcksSent {
		t.Errorf("Net.Ack.Offered = %d, want AcksSent %d", tel.Net.Ack.Offered, st.AcksSent)
	}

	if tel.Faults.Schedules != 1 {
		t.Errorf("Faults.Schedules = %d, want 1", tel.Faults.Schedules)
	}
	episodes, storms := sc.Faults.Counts()
	if tel.Faults.Episodes != int64(episodes) || tel.Faults.StormOutages != int64(storms) {
		t.Errorf("Faults counts = %+v, want %d episodes / %d storm outages", tel.Faults, episodes, storms)
	}
	if tel.Faults.DataDrops == 0 {
		t.Errorf("blackout episode attributed no data drops")
	}
	if tel.Faults.AckDrops == 0 {
		t.Errorf("ACK-burst episode attributed no ACK drops")
	}
	if tel.WallNS <= 0 {
		t.Errorf("WallNS = %d, want > 0", tel.WallNS)
	}
}

// TestCampaignTelemetryReproducibleAcrossParallelism is the acceptance
// criterion for deterministic aggregation: the counter sections must be
// bit-identical between -jobs 1 and -jobs 8 runs of the same seed.
func TestCampaignTelemetryReproducibleAcrossParallelism(t *testing.T) {
	run := func(par int) *telemetry.Campaign {
		camp := telemetry.NewCampaign()
		_, err := RunCampaign(CampaignConfig{
			Seed: 3, FlowDuration: 10 * time.Second, FlowsPerRow: 2,
			Parallelism: par, Telemetry: camp,
		})
		if err != nil {
			t.Fatalf("RunCampaign(par=%d): %v", par, err)
		}
		return camp
	}
	seq := run(1)
	par := run(8)
	n1, k1, t1, net1, f1 := seq.Counters()
	n8, k8, t8, net8, f8 := par.Counters()
	if n1 != n8 {
		t.Fatalf("flow counts differ: %d vs %d", n1, n8)
	}
	if k1 != k8 {
		t.Errorf("kernel counters differ:\njobs=1: %+v\njobs=8: %+v", k1, k8)
	}
	if !reflect.DeepEqual(t1, t8) {
		t.Errorf("tcp counters differ:\njobs=1: %+v\njobs=8: %+v", t1, t8)
	}
	if net1 != net8 {
		t.Errorf("net counters differ:\njobs=1: %+v\njobs=8: %+v", net1, net8)
	}
	if f1 != f8 {
		t.Errorf("fault counters differ:\njobs=1: %+v\njobs=8: %+v", f1, f8)
	}
}

// TestCampaignProgressCallback checks the per-flow progress stream: every
// flow reports exactly once and the final call carries done == total.
func TestCampaignProgressCallback(t *testing.T) {
	var mu sync.Mutex
	var calls []int
	total := -1
	_, err := RunCampaign(CampaignConfig{
		Seed: 1, FlowDuration: 5 * time.Second, FlowsPerRow: 1, Parallelism: 4,
		Progress: func(done, tot int) {
			mu.Lock()
			calls = append(calls, done)
			total = tot
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	want := 4 // one flow per Table I row
	if total != want || len(calls) != want {
		t.Fatalf("progress calls = %d (total %d), want %d", len(calls), total, want)
	}
	sort.Ints(calls)
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress done values = %v, want a permutation of 1..%d", calls, want)
		}
	}
}
