package dataset

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/cellular"
	"repro/internal/faults"
)

// TestStreamingMatchesBatchFlows runs the same scenarios through the
// materialized pipeline (full trace, batch Analyze) and the streaming one
// (RunFlowMetrics) and requires bit-identical metrics and endpoint stats —
// the per-flow half of the byte-identity guarantee hsrbench -materialize
// cross-checks end to end.
func TestStreamingMatchesBatchFlows(t *testing.T) {
	scenarios := []Scenario{
		hsrScenario(t, cellular.ChinaMobileLTE, 1, 45*time.Second),
		hsrScenario(t, cellular.ChinaUnicom3G, 2, 30*time.Second),
		hsrScenario(t, cellular.ChinaTelecom3G, 3, 30*time.Second),
	}
	stat := hsrScenario(t, cellular.ChinaMobileLTE, 4, 30*time.Second)
	stat.Trip = stationaryTrip(t)
	stat.TripOffset = 0
	stat.Scenario = "stationary"
	scenarios = append(scenarios, stat)
	faulty := hsrScenario(t, cellular.ChinaMobileLTE, 5, 30*time.Second)
	sched, err := faults.New(
		faults.Episode{Kind: faults.Blackout, Start: 5 * time.Second, Dur: 2 * time.Second},
		faults.Episode{Kind: faults.AckBurst, Start: 12 * time.Second, Dur: 3 * time.Second, P: 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	faulty.Faults = sched
	scenarios = append(scenarios, faulty)

	for _, sc := range scenarios {
		ft, wantStats, err := RunFlow(sc)
		if err != nil {
			t.Fatalf("%s: RunFlow: %v", sc.ID, err)
		}
		want, err := analysis.Analyze(ft)
		if err != nil {
			t.Fatalf("%s: Analyze: %v", sc.ID, err)
		}
		got, gotStats, err := RunFlowMetrics(sc)
		if err != nil {
			t.Fatalf("%s: RunFlowMetrics: %v", sc.ID, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s seed %d: streaming metrics diverged:\nbatch:     %+v\nstreaming: %+v",
				sc.ID, sc.Seed, want, got)
		}
		if wantStats != gotStats {
			t.Errorf("%s seed %d: endpoint stats diverged:\nbatch:     %+v\nstreaming: %+v",
				sc.ID, sc.Seed, wantStats, gotStats)
		}
	}
}

// campaignMetrics flattens a campaign's per-flow metrics for comparison.
func campaignMetrics(t *testing.T, cfg CampaignConfig) []*analysis.FlowMetrics {
	t.Helper()
	camp, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	return camp.Metrics()
}

// TestCampaignPipelineEquivalence runs one small campaign through all three
// pipelines — streaming (default), materialized, and cache-backed (cold then
// warm) — at two parallelism levels and requires identical per-flow metrics
// everywhere.
func TestCampaignPipelineEquivalence(t *testing.T) {
	base := CampaignConfig{Seed: 9, FlowDuration: 10 * time.Second, FlowsPerRow: 2}

	streaming := base
	streaming.Parallelism = 1
	want := campaignMetrics(t, streaming)

	streaming.Parallelism = 8
	if got := campaignMetrics(t, streaming); !reflect.DeepEqual(want, got) {
		t.Error("streaming campaign diverged across parallelism")
	}

	mat := base
	mat.Materialize = true
	if got := campaignMetrics(t, mat); !reflect.DeepEqual(want, got) {
		t.Error("materialized campaign diverged from streaming")
	}

	cache, err := OpenFlowCacheVersion(t.TempDir(), "test")
	if err != nil {
		t.Fatal(err)
	}
	cached := base
	cached.Cache = cache
	if got := campaignMetrics(t, cached); !reflect.DeepEqual(want, got) {
		t.Error("cold-cache campaign diverged from streaming")
	}
	if c := cache.Counters(); c.Hits != 0 || c.Misses != int64(len(want)) {
		t.Errorf("cold-run counters %+v, want 0 hits / %d misses", c, len(want))
	}
	cached.Parallelism = 8
	if got := campaignMetrics(t, cached); !reflect.DeepEqual(want, got) {
		t.Error("warm-cache campaign diverged from streaming")
	}
	if c := cache.Counters(); c.Hits != int64(len(want)) {
		t.Errorf("warm-run counters %+v, want %d hits", c, len(want))
	}
}

// TestDefaultCampaignPipelineEquivalence is the full-scale version of the
// equivalence check: the complete Default() Table I campaign (255 HSR flows,
// 120 s each) through all three pipelines. Takes tens of seconds; -short
// skips it and the quick-scale test above keeps covering the logic.
func TestDefaultCampaignPipelineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full Default()-scale campaign; run without -short")
	}
	base := CampaignConfig{Seed: 1, FlowDuration: 120 * time.Second}

	want := campaignMetrics(t, base)
	if len(want) != 255 {
		t.Fatalf("Default campaign has %d flows, want 255", len(want))
	}

	mat := base
	mat.Materialize = true
	if got := campaignMetrics(t, mat); !reflect.DeepEqual(want, got) {
		t.Error("materialized Default campaign diverged from streaming")
	}

	cache, err := OpenFlowCacheVersion(t.TempDir(), "test")
	if err != nil {
		t.Fatal(err)
	}
	cached := base
	cached.Cache = cache
	if got := campaignMetrics(t, cached); !reflect.DeepEqual(want, got) {
		t.Error("cold-cache Default campaign diverged from streaming")
	}
	if got := campaignMetrics(t, cached); !reflect.DeepEqual(want, got) {
		t.Error("warm-cache Default campaign diverged from streaming")
	}
	if c := cache.Counters(); c.Hits != 255 || c.Errors != 0 {
		t.Errorf("warm-run counters %+v, want 255 hits / 0 errors", c)
	}
}

// TestRunFlowMetricsAllocs is the CI gate on the streaming pipeline's
// allocation budget: the materialized pipeline costs ~188 allocations per
// 30-second flow (trace slices included); the pooled streaming path measures
// 163 now that the endpoints keep their per-segment state in ring buffers
// instead of maps. The bound leaves a little headroom over the measurement
// without letting the trace arena (or map churn) creep back in.
func TestRunFlowMetricsAllocs(t *testing.T) {
	sc := hsrScenario(t, cellular.ChinaMobileLTE, 0, 30*time.Second)
	n := 0
	run := func() {
		sc.Seed = int64(n) // vary the flow so pooling, not caching, is measured
		n++
		if _, _, err := RunFlowMetrics(sc); err != nil {
			t.Fatal(err)
		}
	}
	// Warm every code path before measuring: the first flows populate the
	// arena pools, and under the race detector the first traversal of each
	// path also allocates one-time shadow state. Measuring only warmed
	// iterations makes the count deterministic in both build modes.
	for i := 0; i < 5; i++ {
		run()
	}
	avg := testing.AllocsPerRun(20, run)
	gate := 168.0
	if raceEnabled {
		// The race runtime adds a bounded per-flow overhead (goroutine
		// shadow stacks and sync-event buffers) on top of the pipeline's own
		// allocations; the warmed count measures a flat 174/flow.
		gate = 180.0
	}
	if avg > gate {
		t.Errorf("RunFlowMetrics allocates %.1f/flow, gate is %.0f (materialized baseline ~188)", avg, gate)
	}
	t.Logf("RunFlowMetrics: %.1f allocs/flow (gate %.0f)", avg, gate)
}
