package dataset

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/cellular"
	"repro/internal/tcp"
)

// cachedScenario is a short flow the cache tests simulate repeatedly.
func cachedScenario(t *testing.T, seed int64) Scenario {
	t.Helper()
	return hsrScenario(t, cellular.ChinaMobileLTE, seed, 5*time.Second)
}

// entryFile returns the path of the single entry a one-flow cache holds.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("cache holds %d entries, want 1", len(paths))
	}
	return paths[0]
}

func TestFlowCacheRoundTrip(t *testing.T) {
	cache, err := OpenFlowCacheVersion(t.TempDir(), "test")
	if err != nil {
		t.Fatal(err)
	}
	sc := cachedScenario(t, 7)
	if _, ok := cache.Get(sc); ok {
		t.Fatal("hit on empty cache")
	}
	want, st, err := RunFlowMetrics(sc)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(sc, want, st)
	ent, ok := cache.Get(sc)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !reflect.DeepEqual(want, ent.Metrics) {
		t.Errorf("metrics changed through the cache:\nput: %+v\ngot: %+v", want, ent.Metrics)
	}
	if st != ent.Stats {
		t.Errorf("stats changed through the cache:\nput: %+v\ngot: %+v", st, ent.Stats)
	}
	c := cache.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Errors != 0 {
		t.Errorf("counters %+v, want 1 hit / 1 miss / 0 errors", c)
	}
	if c.BytesWritten == 0 || c.BytesRead != c.BytesWritten {
		t.Errorf("byte counters %+v, want read == written > 0", c)
	}
}

func TestFlowCacheKeySensitivity(t *testing.T) {
	cache, err := OpenFlowCacheVersion(t.TempDir(), "test")
	if err != nil {
		t.Fatal(err)
	}
	sc := cachedScenario(t, 7)
	m, st, err := RunFlowMetrics(sc)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(sc, m, st)

	other := sc
	other.Seed++
	if _, ok := cache.Get(other); ok {
		t.Error("seed change still hit")
	}
	other = sc
	other.FlowDuration += time.Second
	if _, ok := cache.Get(other); ok {
		t.Error("duration change still hit")
	}
	other = sc
	other.TCP.MSS++
	if _, ok := cache.Get(other); ok {
		t.Error("TCP config change still hit")
	}
	if _, ok := cache.Get(sc); !ok {
		t.Error("unchanged scenario missed")
	}
}

// TestFlowCacheVersionInvalidates covers the automatic invalidation story:
// entries written under one code version are unreachable from a cache
// opened under another, with no explicit flush step.
func TestFlowCacheVersionInvalidates(t *testing.T) {
	dir := t.TempDir()
	v1, err := OpenFlowCacheVersion(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	sc := cachedScenario(t, 7)
	m, st, err := RunFlowMetrics(sc)
	if err != nil {
		t.Fatal(err)
	}
	v1.Put(sc, m, st)
	if _, ok := v1.Get(sc); !ok {
		t.Fatal("same-version miss")
	}
	v2, err := OpenFlowCacheVersion(dir, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v2.Get(sc); ok {
		t.Error("entry written under v1 served under v2")
	}
}

// TestFlowCacheDetectsCorruption flips and truncates stored entries and
// checks the checksum catches both, the bad entry is dropped, and the
// campaign path falls back to simulation with identical results.
func TestFlowCacheDetectsCorruption(t *testing.T) {
	sc := cachedScenario(t, 7)
	want, st, err := RunFlowMetrics(sc)
	if err != nil {
		t.Fatal(err)
	}
	corruptions := map[string]func([]byte) []byte{
		"bit flip in payload": func(raw []byte) []byte {
			raw[len(raw)-2] ^= 0x40
			return raw
		},
		"truncated payload": func(raw []byte) []byte {
			return raw[:len(raw)-7]
		},
		"truncated to partial header": func(raw []byte) []byte {
			return raw[:10]
		},
		"emptied": func([]byte) []byte {
			return nil
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cache, err := OpenFlowCacheVersion(dir, "test")
			if err != nil {
				t.Fatal(err)
			}
			cache.Put(sc, want, st)
			path := entryFile(t, dir)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := cache.Get(sc); ok {
				t.Fatal("corrupt entry served")
			}
			if c := cache.Counters(); c.Errors != 1 {
				t.Errorf("counters %+v, want exactly 1 error", c)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupt entry not removed (stat err %v)", err)
			}
			// The campaign path must recover transparently: simulate, rewrite,
			// then serve the fresh entry.
			got, hit, err := runCampaignFlow(CampaignConfig{Cache: cache}, sc)
			if err != nil {
				t.Fatal(err)
			}
			if hit {
				t.Fatal("corrupt entry reported as campaign hit")
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("fallback simulation diverged:\nwant %+v\ngot  %+v", want, got)
			}
			if ent, ok := cache.Get(sc); !ok {
				t.Error("entry not rewritten after fallback")
			} else if !reflect.DeepEqual(want, ent.Metrics) {
				t.Error("rewritten entry diverged")
			}
		})
	}
}

// TestFlowCacheConcurrentWriters hammers one cache directory from parallel
// goroutines mixing writers and readers of the same keys — the atomic
// temp-file-plus-rename protocol must never expose a torn entry. Run under
// -race in CI.
func TestFlowCacheConcurrentWriters(t *testing.T) {
	cache, err := OpenFlowCacheVersion(t.TempDir(), "test")
	if err != nil {
		t.Fatal(err)
	}
	type flowResult struct {
		metrics *analysis.FlowMetrics
		stats   tcp.Stats
	}
	const flows = 4
	scs := make([]Scenario, flows)
	wants := make([]flowResult, flows)
	for i := range scs {
		scs[i] = cachedScenario(t, int64(100+i))
		m, st, err := RunFlowMetrics(scs[i])
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = flowResult{metrics: m, stats: st}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				idx := (w + i) % flows
				cache.Put(scs[idx], wants[idx].metrics, wants[idx].stats)
				if ent, ok := cache.Get(scs[idx]); ok {
					if !reflect.DeepEqual(wants[idx].metrics, ent.Metrics) {
						t.Errorf("torn or wrong entry for flow %d", idx)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if c := cache.Counters(); c.Errors != 0 {
		t.Errorf("counters %+v, want 0 errors", c)
	}
}

// TestFlowCacheGetOrComputeDeduplicates launches many concurrent misses of
// the same key and checks exactly one computation runs: the leader reports
// shared=false, every follower shares its result (shared=true, counted in
// Dedups), and afterwards the entry is on disk.
func TestFlowCacheGetOrComputeDeduplicates(t *testing.T) {
	cache, err := OpenFlowCacheVersion(t.TempDir(), "test")
	if err != nil {
		t.Fatal(err)
	}
	sc := cachedScenario(t, 7)
	want, st, err := RunFlowMetrics(sc)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 8
	var computes atomic.Int64
	var shareds atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ent, shared, err := cache.GetOrCompute(sc, func() (CachedFlow, error) {
				computes.Add(1)
				<-release // hold every other caller in the in-flight window
				return CachedFlow{Metrics: want, Stats: st}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if shared {
				shareds.Add(1)
			}
			if !reflect.DeepEqual(want, ent.Metrics) {
				t.Error("caller got diverging metrics")
			}
		}()
	}
	// Give every goroutine time to either become the leader or join the
	// flight, then release the leader.
	for computes.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want exactly 1", n)
	}
	if c := cache.Counters(); c.Dedups != shareds.Load() {
		t.Errorf("counters %+v, want dedups == %d shared callers", c, shareds.Load())
	}
	if _, ok := cache.Get(sc); !ok {
		t.Error("entry missing after deduplicated computation")
	}
}

// TestFlowCacheGetOrComputeErrorPropagates checks a failing computation
// reaches the leader and every waiter, and stores nothing.
func TestFlowCacheGetOrComputeErrorPropagates(t *testing.T) {
	cache, err := OpenFlowCacheVersion(t.TempDir(), "test")
	if err != nil {
		t.Fatal(err)
	}
	sc := cachedScenario(t, 7)
	wantErr := errors.New("synthetic failure")
	var wg sync.WaitGroup
	release := make(chan struct{})
	started := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := cache.GetOrCompute(sc, func() (CachedFlow, error) {
				close(started)
				<-release
				return CachedFlow{}, wantErr
			})
			if !errors.Is(err, wantErr) {
				t.Errorf("GetOrCompute error = %v, want %v", err, wantErr)
			}
		}()
	}
	<-started
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if _, ok := cache.Get(sc); ok {
		t.Error("failed computation left an entry behind")
	}
}

// TestFlowCacheEviction fills a size-bounded cache past its limit and
// checks the oldest entries (by mtime) are evicted first, newer entries
// survive, and the evictions are counted.
func TestFlowCacheEviction(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenFlowCacheVersion(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	sc := cachedScenario(t, 7)
	m, st, err := RunFlowMetrics(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Write four entries with strictly increasing mtimes.
	var paths []string
	for i := 0; i < 4; i++ {
		s := sc
		s.Seed = int64(1000 + i)
		cache.Put(s, m, st)
		all, err := filepath.Glob(filepath.Join(dir, "*.json"))
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != i+1 {
			t.Fatalf("after put %d: %d entries on disk", i, len(all))
		}
		for _, p := range all {
			if !slices.Contains(paths, p) {
				paths = append(paths, p)
				mtime := time.Now().Add(time.Duration(i-10) * time.Hour)
				if err := os.Chtimes(p, mtime, mtime); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	entrySize := func(p string) int64 {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		return st.Size()
	}
	one := entrySize(paths[3])
	// Bound to roughly two entries: the two oldest must go.
	if err := cache.SetMaxBytes(2*one + one/2); err != nil {
		t.Fatal(err)
	}
	for i, p := range paths {
		_, err := os.Stat(p)
		gone := os.IsNotExist(err)
		if wantGone := i < 2; gone != wantGone {
			t.Errorf("entry %d gone=%v, want %v", i, gone, wantGone)
		}
	}
	if c := cache.Counters(); c.Evictions != 2 {
		t.Errorf("counters %+v, want 2 evictions", c)
	}
	// A further Put that busts the bound evicts again, oldest-first.
	s := sc
	s.Seed = 2000
	cache.Put(s, m, st)
	left, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, p := range left {
		total += entrySize(p)
	}
	if total > 2*one+one/2 {
		t.Errorf("post-put total %d bytes exceeds the %d bound", total, 2*one+one/2)
	}
	// The freshly written entry must have survived (it is the newest).
	if _, ok := cache.Get(s); !ok {
		t.Error("newest entry evicted")
	}
	// Dropping the bound stops eviction.
	if err := cache.SetMaxBytes(0); err != nil {
		t.Fatal(err)
	}
	before := cache.Counters().Evictions
	s.Seed = 2001
	cache.Put(s, m, st)
	if after := cache.Counters().Evictions; after != before {
		t.Errorf("eviction ran with the bound removed (%d -> %d)", before, after)
	}
}
