package dataset

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/cellular"
	"repro/internal/tcp"
)

// cachedScenario is a short flow the cache tests simulate repeatedly.
func cachedScenario(t *testing.T, seed int64) Scenario {
	t.Helper()
	return hsrScenario(t, cellular.ChinaMobileLTE, seed, 5*time.Second)
}

// entryFile returns the path of the single entry a one-flow cache holds.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("cache holds %d entries, want 1", len(paths))
	}
	return paths[0]
}

func TestFlowCacheRoundTrip(t *testing.T) {
	cache, err := OpenFlowCacheVersion(t.TempDir(), "test")
	if err != nil {
		t.Fatal(err)
	}
	sc := cachedScenario(t, 7)
	if _, ok := cache.Get(sc); ok {
		t.Fatal("hit on empty cache")
	}
	want, st, err := RunFlowMetrics(sc)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(sc, want, st)
	ent, ok := cache.Get(sc)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !reflect.DeepEqual(want, ent.Metrics) {
		t.Errorf("metrics changed through the cache:\nput: %+v\ngot: %+v", want, ent.Metrics)
	}
	if st != ent.Stats {
		t.Errorf("stats changed through the cache:\nput: %+v\ngot: %+v", st, ent.Stats)
	}
	c := cache.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Errors != 0 {
		t.Errorf("counters %+v, want 1 hit / 1 miss / 0 errors", c)
	}
	if c.BytesWritten == 0 || c.BytesRead != c.BytesWritten {
		t.Errorf("byte counters %+v, want read == written > 0", c)
	}
}

func TestFlowCacheKeySensitivity(t *testing.T) {
	cache, err := OpenFlowCacheVersion(t.TempDir(), "test")
	if err != nil {
		t.Fatal(err)
	}
	sc := cachedScenario(t, 7)
	m, st, err := RunFlowMetrics(sc)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(sc, m, st)

	other := sc
	other.Seed++
	if _, ok := cache.Get(other); ok {
		t.Error("seed change still hit")
	}
	other = sc
	other.FlowDuration += time.Second
	if _, ok := cache.Get(other); ok {
		t.Error("duration change still hit")
	}
	other = sc
	other.TCP.MSS++
	if _, ok := cache.Get(other); ok {
		t.Error("TCP config change still hit")
	}
	if _, ok := cache.Get(sc); !ok {
		t.Error("unchanged scenario missed")
	}
}

// TestFlowCacheVersionInvalidates covers the automatic invalidation story:
// entries written under one code version are unreachable from a cache
// opened under another, with no explicit flush step.
func TestFlowCacheVersionInvalidates(t *testing.T) {
	dir := t.TempDir()
	v1, err := OpenFlowCacheVersion(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	sc := cachedScenario(t, 7)
	m, st, err := RunFlowMetrics(sc)
	if err != nil {
		t.Fatal(err)
	}
	v1.Put(sc, m, st)
	if _, ok := v1.Get(sc); !ok {
		t.Fatal("same-version miss")
	}
	v2, err := OpenFlowCacheVersion(dir, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v2.Get(sc); ok {
		t.Error("entry written under v1 served under v2")
	}
}

// TestFlowCacheDetectsCorruption flips and truncates stored entries and
// checks the checksum catches both, the bad entry is dropped, and the
// campaign path falls back to simulation with identical results.
func TestFlowCacheDetectsCorruption(t *testing.T) {
	sc := cachedScenario(t, 7)
	want, st, err := RunFlowMetrics(sc)
	if err != nil {
		t.Fatal(err)
	}
	corruptions := map[string]func([]byte) []byte{
		"bit flip in payload": func(raw []byte) []byte {
			raw[len(raw)-2] ^= 0x40
			return raw
		},
		"truncated payload": func(raw []byte) []byte {
			return raw[:len(raw)-7]
		},
		"truncated to partial header": func(raw []byte) []byte {
			return raw[:10]
		},
		"emptied": func([]byte) []byte {
			return nil
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cache, err := OpenFlowCacheVersion(dir, "test")
			if err != nil {
				t.Fatal(err)
			}
			cache.Put(sc, want, st)
			path := entryFile(t, dir)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := cache.Get(sc); ok {
				t.Fatal("corrupt entry served")
			}
			if c := cache.Counters(); c.Errors != 1 {
				t.Errorf("counters %+v, want exactly 1 error", c)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupt entry not removed (stat err %v)", err)
			}
			// The campaign path must recover transparently: simulate, rewrite,
			// then serve the fresh entry.
			got, hit, err := runCampaignFlow(CampaignConfig{Cache: cache}, sc)
			if err != nil {
				t.Fatal(err)
			}
			if hit {
				t.Fatal("corrupt entry reported as campaign hit")
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("fallback simulation diverged:\nwant %+v\ngot  %+v", want, got)
			}
			if ent, ok := cache.Get(sc); !ok {
				t.Error("entry not rewritten after fallback")
			} else if !reflect.DeepEqual(want, ent.Metrics) {
				t.Error("rewritten entry diverged")
			}
		})
	}
}

// TestFlowCacheConcurrentWriters hammers one cache directory from parallel
// goroutines mixing writers and readers of the same keys — the atomic
// temp-file-plus-rename protocol must never expose a torn entry. Run under
// -race in CI.
func TestFlowCacheConcurrentWriters(t *testing.T) {
	cache, err := OpenFlowCacheVersion(t.TempDir(), "test")
	if err != nil {
		t.Fatal(err)
	}
	type flowResult struct {
		metrics *analysis.FlowMetrics
		stats   tcp.Stats
	}
	const flows = 4
	scs := make([]Scenario, flows)
	wants := make([]flowResult, flows)
	for i := range scs {
		scs[i] = cachedScenario(t, int64(100+i))
		m, st, err := RunFlowMetrics(scs[i])
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = flowResult{metrics: m, stats: st}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				idx := (w + i) % flows
				cache.Put(scs[idx], wants[idx].metrics, wants[idx].stats)
				if ent, ok := cache.Get(scs[idx]); ok {
					if !reflect.DeepEqual(wants[idx].metrics, ent.Metrics) {
						t.Errorf("torn or wrong entry for flow %d", idx)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if c := cache.Counters(); c.Errors != 0 {
		t.Errorf("counters %+v, want 0 errors", c)
	}
}
