package dataset

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/analysis"
	"repro/internal/cellular"
	"repro/internal/railway"
	"repro/internal/tcp"
)

// TestAnalysisMatchesEndpointCounters cross-validates the two independent
// accounting paths: the trace analyzer must reconstruct exactly the same
// counters the endpoints maintained while the simulation ran.
func TestAnalysisMatchesEndpointCounters(t *testing.T) {
	for _, op := range cellular.Operators() {
		op := op
		t.Run(op.Name, func(t *testing.T) {
			sc := hsrScenario(t, op, 13, 45*time.Second)
			ft, st, err := RunFlow(sc)
			if err != nil {
				t.Fatalf("RunFlow: %v", err)
			}
			m, err := analysis.Analyze(ft)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if m.DataSent != st.DataSent {
				t.Errorf("DataSent: analyzer %d vs endpoint %d", m.DataSent, st.DataSent)
			}
			if m.DataLost != st.DataDropped {
				t.Errorf("DataLost: analyzer %d vs endpoint %d", m.DataLost, st.DataDropped)
			}
			if m.UniqueDelivered != st.UniqueDelivered {
				t.Errorf("UniqueDelivered: analyzer %d vs endpoint %d", m.UniqueDelivered, st.UniqueDelivered)
			}
			if m.AcksSent != st.AcksSent {
				t.Errorf("AcksSent: analyzer %d vs endpoint %d", m.AcksSent, st.AcksSent)
			}
			if m.AcksLost != st.AcksDropped {
				t.Errorf("AcksLost: analyzer %d vs endpoint %d", m.AcksLost, st.AcksDropped)
			}
			if int64(m.Timeouts) != st.Timeouts {
				t.Errorf("Timeouts: analyzer %d vs endpoint %d", m.Timeouts, st.Timeouts)
			}
			if int64(m.FastRetransmits) != st.FastRetransmits {
				t.Errorf("FastRetransmits: analyzer %d vs endpoint %d", m.FastRetransmits, st.FastRetransmits)
			}
		})
	}
}

// TestCampaignDeterministic re-runs a small campaign and requires
// bit-identical metrics.
func TestCampaignDeterministic(t *testing.T) {
	run := func() []float64 {
		c, err := RunCampaign(CampaignConfig{Seed: 77, FlowDuration: 15 * time.Second, FlowsPerRow: 1})
		if err != nil {
			t.Fatalf("RunCampaign: %v", err)
		}
		var out []float64
		for _, m := range c.Metrics() {
			out = append(out, m.ThroughputPps, m.DataLossRate, m.AckLossRate, float64(m.TimeoutSequences))
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different result counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("campaign not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: any seed yields a structurally valid flow — trace validates,
// rates are probabilities, delivery never exceeds transmission, and the
// recovery phases nest inside the flow duration.
func TestFlowInvariantsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test runs dozens of simulations")
	}
	f := func(seed int64, opIdx uint8) bool {
		ops := cellular.Operators()
		op := ops[int(opIdx)%len(ops)]
		trip := hsrTripShared
		start, _ := trip.CruiseWindow()
		sc := Scenario{
			ID: "prop", Operator: op, Trip: trip, TripOffset: start,
			FlowDuration: 20 * time.Second, Seed: seed, TCP: tcp.DefaultConfig(), Scenario: "hsr",
		}
		ft, st, err := RunFlow(sc)
		if err != nil {
			return false
		}
		if err := ft.Validate(); err != nil {
			return false
		}
		m, err := analysis.Analyze(ft)
		if err != nil {
			return false
		}
		if m.DataLossRate < 0 || m.DataLossRate > 1 || m.AckLossRate < 0 || m.AckLossRate > 1 {
			return false
		}
		if m.RecoveryLossRate < 0 || m.RecoveryLossRate > 1 {
			return false
		}
		if st.UniqueDelivered > st.DataSent {
			return false
		}
		for _, rec := range m.Recoveries {
			if rec.Start > rec.FirstTimeout || rec.FirstTimeout > rec.End {
				return false
			}
			if rec.End > sc.FlowDuration+time.Minute {
				return false
			}
			if rec.RetransmissionsLost > rec.Retransmissions {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// hsrTripShared avoids rebuilding the trip in the property loop.
var hsrTripShared = func() railway.Trip {
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		panic(err)
	}
	return trip
}()
