package dataset

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/tcp"
	"repro/internal/telemetry"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0, 0, 0}, 0},
		{[]float64{5}, 1},
		{[]float64{3, 3, 3, 3}, 1},
		{[]float64{1, 0, 0, 0}, 0.25}, // maximally unfair: 1/n
	}
	for _, c := range cases {
		if got := JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("JainIndex(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
	// Unequal shares land strictly between 1/n and 1.
	got := JainIndex([]float64{10, 20, 30})
	if got <= 1.0/3 || got >= 1 {
		t.Errorf("JainIndex(10,20,30) = %v, want in (1/3, 1)", got)
	}
}

// contendedFlows builds a small mixed-variant group for the tests.
func contendedFlows(t *testing.T, n int, withTel bool) []Scenario {
	t.Helper()
	variants := tcp.Variants()
	flows := make([]Scenario, n)
	for i := range flows {
		sc := hsrScenario(t, cellular.ChinaMobileLTE, int64(100+i), 10*time.Second)
		sc.ID = "contend-" + variants[i%len(variants)].String()
		sc.TCP.Variant = variants[i%len(variants)]
		sc.TripOffset += time.Duration(i) * 11 * time.Second
		if withTel {
			sc.Telemetry = telemetry.NewFlow()
		}
		flows[i] = sc
	}
	return flows
}

func TestRunContendedDeterministic(t *testing.T) {
	a, err := RunContended(ContendedConfig{Flows: contendedFlows(t, 5, false)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContended(ContendedConfig{Flows: contendedFlows(t, 5, false)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("equal-seed contended runs diverged:\n%+v\n%+v", a, b)
	}
	var delivered int64
	for i, r := range a {
		if r.CC != tcp.Variants()[i].String() {
			t.Errorf("flow %d reports CC %q, want %q", i, r.CC, tcp.Variants()[i])
		}
		delivered += r.Stats.UniqueDelivered
	}
	if delivered == 0 {
		t.Fatal("contended group delivered nothing")
	}
}

func TestRunContendedSharedQueueActuallyContends(t *testing.T) {
	// One flow alone vs the same flow inside a 5-flow group: contention for
	// the shared transmitter must cost it throughput.
	solo, err := RunContended(ContendedConfig{Flows: contendedFlows(t, 1, false)})
	if err != nil {
		t.Fatal(err)
	}
	group, err := RunContended(ContendedConfig{Flows: contendedFlows(t, 5, false)})
	if err != nil {
		t.Fatal(err)
	}
	if group[0].Stats.UniqueDelivered >= solo[0].Stats.UniqueDelivered {
		t.Errorf("flow delivered %d contending with 4 others, %d alone — no contention visible",
			group[0].Stats.UniqueDelivered, solo[0].Stats.UniqueDelivered)
	}
}

func TestRunContendedRejectsMixedOperators(t *testing.T) {
	flows := contendedFlows(t, 2, false)
	flows[1].Operator = cellular.ChinaUnicom3G
	if _, err := RunContended(ContendedConfig{Flows: flows}); err == nil {
		t.Fatal("mixed-operator group accepted")
	}
	if _, err := RunContended(ContendedConfig{}); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestRunContendedTelemetryByCC(t *testing.T) {
	flows := contendedFlows(t, 5, true)
	if _, err := RunContended(ContendedConfig{Flows: flows}); err != nil {
		t.Fatal(err)
	}
	camp := telemetry.NewCampaign()
	ContendedTelemetry(camp, flows)
	_, _, tc, _, _ := camp.Counters()
	if len(tc.ByCC) != len(tcp.Variants()) {
		t.Fatalf("ByCC has %d variants, want %d: %v", len(tc.ByCC), len(tcp.Variants()), tc.ByCC)
	}
	var flowsSeen int64
	for name, cs := range tc.ByCC {
		if cs.Flows != 1 {
			t.Errorf("variant %s counted %d flows, want 1", name, cs.Flows)
		}
		if cs.DataSent == 0 {
			t.Errorf("variant %s reports no data sent", name)
		}
		flowsSeen += cs.Flows
	}
	if flowsSeen != tc.Flows {
		t.Errorf("per-CC flows sum %d != total %d", flowsSeen, tc.Flows)
	}
}

// TestCacheKeyDistinguishesVariants is the no-collision check for the CC
// field of the content address: every variant (same scenario otherwise)
// must map to its own cache entry.
func TestCacheKeyDistinguishesVariants(t *testing.T) {
	cache, err := OpenFlowCacheVersion(t.TempDir(), "test")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, v := range tcp.Variants() {
		sc := cachedScenario(t, 3)
		sc.TCP.Variant = v
		key, err := cache.key(sc)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[key]; dup {
			t.Fatalf("variants %s and %s collide on cache key %s", prev, v, key)
		}
		seen[key] = v.String()
	}
	if len(seen) != len(tcp.Variants()) {
		t.Fatalf("expected %d distinct keys, got %d", len(tcp.Variants()), len(seen))
	}
}
