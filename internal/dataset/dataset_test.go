package dataset

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/railway"
	"repro/internal/tcp"
)

func hsrTrip(t *testing.T) railway.Trip {
	t.Helper()
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		t.Fatalf("NewTrip: %v", err)
	}
	return trip
}

func stationaryTrip(t *testing.T) railway.Trip {
	t.Helper()
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.StationaryProfile)
	if err != nil {
		t.Fatalf("NewTrip: %v", err)
	}
	return trip
}

func hsrScenario(t *testing.T, op cellular.Operator, seed int64, d time.Duration) Scenario {
	t.Helper()
	trip := hsrTrip(t)
	start, _ := trip.CruiseWindow()
	return Scenario{
		ID: "test-flow", Operator: op, Trip: trip, TripOffset: start,
		FlowDuration: d, Seed: seed, TCP: tcp.DefaultConfig(), Scenario: "hsr",
	}
}

func TestScenarioValidate(t *testing.T) {
	sc := hsrScenario(t, cellular.ChinaMobileLTE, 1, 10*time.Second)
	if err := sc.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	bad := sc
	bad.FlowDuration = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero duration accepted")
	}
	bad = sc
	bad.TripOffset = -time.Second
	if err := bad.Validate(); err == nil {
		t.Error("negative offset accepted")
	}
	bad = sc
	bad.Operator.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("invalid operator accepted")
	}
	bad = sc
	bad.TCP.MSS = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid TCP config accepted")
	}
}

func TestRunFlowStationaryIsClean(t *testing.T) {
	trip := stationaryTrip(t)
	ft, st, err := RunFlow(Scenario{
		ID: "stat", Operator: cellular.ChinaMobileLTE, Trip: trip,
		FlowDuration: 30 * time.Second, Seed: 5, TCP: tcp.DefaultConfig(), Scenario: "stationary",
	})
	if err != nil {
		t.Fatalf("RunFlow: %v", err)
	}
	if err := ft.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	// Stationary flows may hit a rare micro-outage, but timeouts must be
	// scarce and throughput high.
	if st.Timeouts > 2 {
		t.Errorf("stationary flow had %d timeouts, want at most the odd micro-outage", st.Timeouts)
	}
	if st.UniqueDelivered < 5000 {
		t.Errorf("stationary throughput too low: %d delivered in 30s", st.UniqueDelivered)
	}
	if ft.Meta.Scenario != "stationary" || ft.Meta.Operator != "China Mobile" {
		t.Errorf("trace meta = %+v", ft.Meta)
	}
}

func TestRunFlowHSRShowsPaperEffects(t *testing.T) {
	m, err := AnalyzeFlow(hsrScenario(t, cellular.ChinaMobileLTE, 7, 90*time.Second))
	if err != nil {
		t.Fatalf("AnalyzeFlow: %v", err)
	}
	if m.TimeoutSequences < 3 {
		t.Errorf("HSR flow had %d timeout sequences, want several", m.TimeoutSequences)
	}
	if m.SpuriousTimeouts == 0 {
		t.Error("HSR flow had no spurious timeouts")
	}
	if m.MeanRecoveryDuration < time.Second {
		t.Errorf("mean recovery = %v, want multi-second", m.MeanRecoveryDuration)
	}
	if m.AckLossRate <= 0.001 {
		t.Errorf("HSR ACK loss rate = %v, want elevated", m.AckLossRate)
	}
	if m.RecoveryLossRate <= 0.05 {
		t.Errorf("recovery loss rate q = %v, want well above lifetime loss", m.RecoveryLossRate)
	}
	if m.ThroughputPps <= 0 {
		t.Error("no throughput")
	}
}

func TestRunFlowDeterministic(t *testing.T) {
	run := func() float64 {
		m, err := AnalyzeFlow(hsrScenario(t, cellular.ChinaUnicom3G, 11, 30*time.Second))
		if err != nil {
			t.Fatalf("AnalyzeFlow: %v", err)
		}
		return m.ThroughputPps
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed gave different throughput: %v vs %v", a, b)
	}
}

func TestRunFlowSeedsDiffer(t *testing.T) {
	a, err := AnalyzeFlow(hsrScenario(t, cellular.ChinaMobileLTE, 1, 30*time.Second))
	if err != nil {
		t.Fatalf("AnalyzeFlow: %v", err)
	}
	b, err := AnalyzeFlow(hsrScenario(t, cellular.ChinaMobileLTE, 2, 30*time.Second))
	if err != nil {
		t.Fatalf("AnalyzeFlow: %v", err)
	}
	if a.ThroughputPps == b.ThroughputPps && a.DataLost == b.DataLost {
		t.Error("different seeds produced identical flows")
	}
}

func TestTableIStructure(t *testing.T) {
	rows := TableI()
	if len(rows) != 4 {
		t.Fatalf("TableI rows = %d, want 4", len(rows))
	}
	totalFlows := 0
	totalGB := 0.0
	for _, r := range rows {
		totalFlows += r.Flows
		totalGB += r.TraceGB
		if err := r.Operator.Validate(); err != nil {
			t.Errorf("row %s operator: %v", r.Month, err)
		}
	}
	if totalFlows != 255 {
		t.Errorf("total flows = %d, want the paper's 255", totalFlows)
	}
	if totalGB < 40.4 || totalGB > 40.5 {
		t.Errorf("total trace size = %.2f GB, want the paper's 40.47", totalGB)
	}
}

func TestRunCampaignSmall(t *testing.T) {
	c, err := RunCampaign(CampaignConfig{
		Seed: 1, FlowDuration: 20 * time.Second, FlowsPerRow: 2,
	})
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if len(c.Results) != 8 {
		t.Fatalf("results = %d, want 8 (2 per row)", len(c.Results))
	}
	names, groups := c.ByOperator()
	if len(names) != 3 {
		t.Fatalf("operators = %v, want 3 distinct", names)
	}
	if len(groups["China Mobile"]) != 4 {
		t.Errorf("Mobile flows = %d, want 4 (two rows)", len(groups["China Mobile"]))
	}
	for _, r := range c.Results {
		if r.Metrics == nil {
			t.Fatal("nil metrics in campaign result")
		}
		if r.Metrics.UniqueDelivered == 0 {
			t.Errorf("flow %s delivered nothing", r.Metrics.Meta.ID)
		}
	}
	if got := len(c.Metrics()); got != 8 {
		t.Errorf("Metrics() = %d entries, want 8", got)
	}
}

func TestCampaignHSRVsStationary(t *testing.T) {
	hsr, err := RunCampaign(CampaignConfig{Seed: 3, FlowDuration: 25 * time.Second, FlowsPerRow: 2})
	if err != nil {
		t.Fatalf("hsr campaign: %v", err)
	}
	stat, err := RunCampaign(CampaignConfig{Seed: 3, FlowDuration: 25 * time.Second, FlowsPerRow: 2, Stationary: true})
	if err != nil {
		t.Fatalf("stationary campaign: %v", err)
	}
	var hsrAck, statAck, hsrTOs, statTOs float64
	for _, r := range hsr.Results {
		hsrAck += r.Metrics.AckLossRate
		hsrTOs += float64(r.Metrics.TimeoutSequences)
	}
	for _, r := range stat.Results {
		statAck += r.Metrics.AckLossRate
		statTOs += float64(r.Metrics.TimeoutSequences)
	}
	if hsrAck <= statAck {
		t.Errorf("HSR ACK loss (%v) should exceed stationary (%v)", hsrAck, statAck)
	}
	if hsrTOs <= statTOs {
		t.Errorf("HSR timeouts (%v) should exceed stationary (%v)", hsrTOs, statTOs)
	}
}

func TestRunCampaignRejectsBadConfig(t *testing.T) {
	if _, err := RunCampaign(CampaignConfig{Seed: 1, FlowDuration: 0}); err == nil {
		t.Error("zero flow duration accepted")
	}
}

func TestFlowOffsetInsideCruise(t *testing.T) {
	trip := hsrTrip(t)
	start, end := trip.CruiseWindow()
	for seed := int64(0); seed < 50; seed++ {
		off := flowOffset(trip, seed, 60*time.Second)
		if off < start || off+60*time.Second > end {
			t.Fatalf("seed %d: offset %v outside cruise window (%v, %v)", seed, off, start, end)
		}
	}
	if off := flowOffset(stationaryTrip(t), 1, time.Minute); off != 0 {
		t.Errorf("stationary offset = %v, want 0", off)
	}
}

func TestBuildPathRejectsInvalidOperator(t *testing.T) {
	sc := hsrScenario(t, cellular.ChinaMobileLTE, 1, 10*time.Second)
	sc.Operator.DownlinkRate = 0
	if _, _, err := RunFlow(sc); err == nil {
		t.Error("invalid operator accepted by RunFlow")
	}
}

func TestRunCampaignParallelismDeterministic(t *testing.T) {
	// Every flow is its own sealed simulation, so the worker count must not
	// change anything: a Parallelism: 8 campaign has to reproduce the
	// sequential campaign exactly, FlowResult by FlowResult, in order.
	seq, err := RunCampaign(CampaignConfig{
		Seed: 7, FlowDuration: 15 * time.Second, FlowsPerRow: 2, Parallelism: 1,
	})
	if err != nil {
		t.Fatalf("sequential campaign: %v", err)
	}
	par, err := RunCampaign(CampaignConfig{
		Seed: 7, FlowDuration: 15 * time.Second, FlowsPerRow: 2, Parallelism: 8,
	})
	if err != nil {
		t.Fatalf("parallel campaign: %v", err)
	}
	if len(par.Results) != len(seq.Results) {
		t.Fatalf("parallel results = %d, sequential = %d", len(par.Results), len(seq.Results))
	}
	for i := range seq.Results {
		if par.Results[i].Row != seq.Results[i].Row {
			t.Errorf("result %d row = %+v, want %+v", i, par.Results[i].Row, seq.Results[i].Row)
		}
		if !reflect.DeepEqual(par.Results[i].Metrics, seq.Results[i].Metrics) {
			t.Errorf("result %d metrics differ between Parallelism 8 and 1 (flow %s)",
				i, seq.Results[i].Metrics.Meta.ID)
		}
	}
}
