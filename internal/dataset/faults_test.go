package dataset

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/faults"
)

func TestFaultedFlowDiffersFromBaseline(t *testing.T) {
	d := 30 * time.Second
	base := hsrScenario(t, cellular.ChinaMobileLTE, 11, d)
	faulted := base
	faulted.Faults = faults.Stress(d)

	mb, err := AnalyzeFlow(base)
	if err != nil {
		t.Fatalf("baseline flow: %v", err)
	}
	mf, err := AnalyzeFlow(faulted)
	if err != nil {
		t.Fatalf("faulted flow: %v", err)
	}
	if reflect.DeepEqual(mb, mf) {
		t.Fatal("stress schedule produced a flow identical to the baseline")
	}
	if mf.ThroughputPps >= mb.ThroughputPps {
		t.Errorf("faulted throughput %.1f pps >= baseline %.1f pps; the stress schedule should hurt",
			mf.ThroughputPps, mb.ThroughputPps)
	}
}

func TestEmptyScheduleIsExactBaseline(t *testing.T) {
	d := 20 * time.Second
	base := hsrScenario(t, cellular.ChinaMobileLTE, 12, d)
	withEmpty := base
	withEmpty.Faults = &faults.Schedule{}

	mb, err := AnalyzeFlow(base)
	if err != nil {
		t.Fatalf("baseline flow: %v", err)
	}
	me, err := AnalyzeFlow(withEmpty)
	if err != nil {
		t.Fatalf("empty-schedule flow: %v", err)
	}
	if !reflect.DeepEqual(mb, me) {
		t.Fatal("an empty fault schedule perturbed the flow; wrapping must be skipped entirely")
	}
}

func TestFaultedCampaignParallelismDeterministic(t *testing.T) {
	sched := faults.Stress(15 * time.Second)
	run := func(par int) *Campaign {
		c, err := RunCampaign(CampaignConfig{
			Seed: 7, FlowDuration: 15 * time.Second, FlowsPerRow: 2,
			Parallelism: par, Faults: sched,
		})
		if err != nil {
			t.Fatalf("faulted campaign (par=%d): %v", par, err)
		}
		return c
	}
	seq, par := run(1), run(4)
	if len(par.Results) != len(seq.Results) {
		t.Fatalf("parallel results = %d, sequential = %d", len(par.Results), len(seq.Results))
	}
	for i := range seq.Results {
		if !reflect.DeepEqual(par.Results[i].Metrics, seq.Results[i].Metrics) {
			t.Errorf("result %d metrics differ between Parallelism 4 and 1 (flow %s)",
				i, seq.Results[i].Metrics.Meta.ID)
		}
	}
}

func TestCampaignCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCampaign(CampaignConfig{
		Seed: 1, FlowDuration: 10 * time.Second, FlowsPerRow: 1, Ctx: ctx,
	})
	if err == nil {
		t.Fatal("cancelled campaign returned no error")
	}
}

func TestScenarioValidateRejectsBadFaults(t *testing.T) {
	sc := hsrScenario(t, cellular.ChinaMobileLTE, 1, 10*time.Second)
	sc.Faults = &faults.Schedule{Episodes: []faults.Episode{
		{Kind: faults.AckBurst, Start: time.Second, Dur: time.Second, P: 7},
	}}
	if err := sc.Validate(); err == nil {
		t.Error("scenario with invalid fault schedule accepted")
	}
}
