package dataset

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/cellular"
	"repro/internal/faults"
	"repro/internal/railway"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// TableRow is one row of the paper's Table I.
type TableRow struct {
	Month    string
	Trips    int
	Phone    string
	Operator cellular.Operator
	Flows    int
	TraceGB  float64 // the paper's captured trace size, for reference
}

// TableI returns the paper's dataset structure: 255 flows over four
// carrier/month groups captured on the Beijing-Tianjin Intercity Railway.
func TableI() []TableRow {
	return []TableRow{
		{Month: "January 2015", Trips: 8, Phone: "Samsung Note 3", Operator: cellular.ChinaMobileLTE, Flows: 52, TraceGB: 7.73},
		{Month: "October 2015", Trips: 24, Phone: "Samsung Note 3", Operator: cellular.ChinaMobileLTE, Flows: 73, TraceGB: 18.9},
		{Month: "October 2015", Trips: 24, Phone: "Samsung Galaxy S4", Operator: cellular.ChinaUnicom3G, Flows: 65, TraceGB: 9.63},
		{Month: "October 2015", Trips: 24, Phone: "Samsung Galaxy S4", Operator: cellular.ChinaTelecom3G, Flows: 65, TraceGB: 4.21},
	}
}

// CampaignConfig controls a synthetic measurement campaign.
type CampaignConfig struct {
	// Seed is the campaign-level base seed; each flow derives its own.
	Seed int64
	// FlowDuration is the simulated length of each flow.
	FlowDuration time.Duration
	// FlowsPerRow overrides the Table I flow counts when positive (smaller
	// campaigns for tests), otherwise the table counts are used.
	FlowsPerRow int
	// Stationary switches the whole campaign to the stationary baseline
	// scenario (no movement: no handoffs, base loss only).
	Stationary bool
	// TCP is the endpoint configuration; zero value means tcp.DefaultConfig.
	TCP *tcp.Config
	// Parallelism bounds concurrent flow simulations; 0 means GOMAXPROCS.
	Parallelism int
	// Faults injects the same fault schedule into every flow of the campaign
	// (each flow draws its fault randomness from its own seed, so results
	// stay deterministic at any Parallelism). Nil or empty injects nothing.
	Faults *faults.Schedule
	// Ctx, when non-nil, cancels the campaign between flows: flows already
	// running finish, no new ones start, and RunCampaign returns the context
	// error. Nil means never cancelled.
	Ctx context.Context
	// Cache, when non-nil, serves flows whose (scenario, seed, version) key
	// it already holds without simulating them, and stores every flow it
	// does simulate. Cached results are bit-identical to simulated ones, so
	// campaign output does not depend on the cache's temperature. Flows
	// served from the cache skip simulation entirely and therefore
	// contribute nothing to the Telemetry campaign totals (the cache's own
	// hit/miss counters record them).
	Cache *FlowCache
	// Materialize forces the legacy materialize-then-analyze pipeline (full
	// event list, batch analyzer) instead of the streaming analyzer, for
	// byte-identity cross-checks; it bypasses the cache.
	Materialize bool
	// Telemetry, when non-nil, aggregates every flow's telemetry bundle into
	// campaign totals. Flows are merged in campaign order after the parallel
	// phase completes, so the totals (including float distributions) are
	// bit-identical at any Parallelism.
	Telemetry *telemetry.Campaign
	// Progress, when non-nil, is invoked after each flow finishes (success
	// or failure) with the number of flows completed so far and the campaign
	// total. It is called from worker goroutines and must be safe for
	// concurrent use.
	Progress func(done, total int)
	// Trace, when non-nil, records one span per flow (wall interval, plus
	// the simulated-time interval when telemetry is attached) under
	// TraceParent. Tracing is strictly host-side observation: it never
	// perturbs seeds, flow order or results.
	Trace       *tracing.Trace
	TraceParent string
}

// FlowResult pairs a flow's metrics with its Table I row.
type FlowResult struct {
	Row     TableRow
	Metrics *analysis.FlowMetrics
}

// Campaign is the outcome of a full synthetic measurement campaign.
type Campaign struct {
	Config  CampaignConfig
	Results []FlowResult
}

// ByOperator groups the campaign's metrics by carrier name, preserving the
// Table I order.
func (c *Campaign) ByOperator() (names []string, groups map[string][]*analysis.FlowMetrics) {
	groups = make(map[string][]*analysis.FlowMetrics)
	for _, r := range c.Results {
		name := r.Row.Operator.Name
		if _, ok := groups[name]; !ok {
			names = append(names, name)
		}
		groups[name] = append(groups[name], r.Metrics)
	}
	return names, groups
}

// Metrics returns all per-flow metrics in campaign order.
func (c *Campaign) Metrics() []*analysis.FlowMetrics {
	out := make([]*analysis.FlowMetrics, len(c.Results))
	for i, r := range c.Results {
		out[i] = r.Metrics
	}
	return out
}

// PlannedFlow is one flow of a campaign's deterministic plan: its position
// in campaign order, its Table I row, and the fully-built scenario. The
// plan is a pure function of the CampaignConfig — every node planning the
// same config derives the same flows with the same seeds, which is what
// lets a coordinator shard a campaign by flow index and workers rebuild
// their assigned scenarios independently.
type PlannedFlow struct {
	Index    int
	Row      TableRow
	Scenario Scenario
}

// PlanCampaign derives the campaign's flow plan without simulating
// anything: the Table I rows expanded to per-flow scenarios with their
// deterministic seeds, IDs and trip offsets, in campaign order.
func PlanCampaign(cfg CampaignConfig) ([]PlannedFlow, error) {
	if cfg.FlowDuration <= 0 {
		return nil, fmt.Errorf("dataset: campaign flow duration %v must be positive", cfg.FlowDuration)
	}
	tcpCfg := tcp.DefaultConfig()
	if cfg.TCP != nil {
		tcpCfg = *cfg.TCP
	}
	profile := railway.DefaultProfile
	scenarioName := "hsr"
	if cfg.Stationary {
		profile = railway.StationaryProfile
		scenarioName = "stationary"
	}
	trip, err := railway.NewTrip(railway.BeijingTianjin, profile)
	if err != nil {
		return nil, err
	}
	var plan []PlannedFlow
	flowIdx := 0
	for rowIdx, row := range TableI() {
		flows := row.Flows
		if cfg.FlowsPerRow > 0 {
			flows = cfg.FlowsPerRow
		}
		for f := 0; f < flows; f++ {
			seed := cfg.Seed*1_000_003 + int64(rowIdx)*10_007 + int64(f)
			sc := Scenario{
				ID:           fmt.Sprintf("%s-%02d-%03d", shortName(row.Operator.Name), rowIdx, f),
				Operator:     row.Operator,
				Trip:         trip,
				TripOffset:   flowOffset(trip, seed, cfg.FlowDuration),
				FlowDuration: cfg.FlowDuration,
				Seed:         seed,
				TCP:          tcpCfg,
				Scenario:     scenarioName,
				Faults:       cfg.Faults,
			}
			plan = append(plan, PlannedFlow{Index: flowIdx, Row: row, Scenario: sc})
			flowIdx++
		}
	}
	return plan, nil
}

// RunCampaign simulates every flow of the campaign (concurrently, each in
// its own deterministic simulation) and reduces the traces to metrics.
func RunCampaign(cfg CampaignConfig) (*Campaign, error) {
	jobs, err := PlanCampaign(cfg)
	if err != nil {
		return nil, err
	}

	results := make([]FlowResult, len(jobs))
	errs := make([]error, len(jobs))
	var flows []*telemetry.Flow
	if cfg.Telemetry != nil {
		flows = make([]*telemetry.Flow, len(jobs))
	}
	var done atomic.Int64
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for _, j := range jobs {
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			errs[j.Index] = fmt.Errorf("flow %s: %w", j.Scenario.ID, cfg.Ctx.Err())
			continue
		}
		j := j
		if flows != nil {
			flows[j.Index] = telemetry.NewFlow()
			j.Scenario.Telemetry = flows[j.Index]
		}
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			var sp *tracing.Span
			if cfg.Trace != nil {
				sp = cfg.Trace.StartSpan(cfg.TraceParent, "flow", j.Scenario.ID)
				sp.SetAttr("index", strconv.Itoa(j.Index))
				sp.SetAttr("operator", j.Row.Operator.Name)
			}
			m, hit, err := runCampaignFlow(cfg, j.Scenario)
			if err != nil {
				errs[j.Index] = fmt.Errorf("flow %s: %w", j.Scenario.ID, err)
				sp.SetAttr("error", err.Error())
			} else {
				results[j.Index] = FlowResult{Row: j.Row, Metrics: m}
				if hit && flows != nil {
					// Served from the cache: no simulation ran, so this
					// flow has no kernel/TCP/link counters to merge.
					flows[j.Index] = nil
				}
			}
			if sp != nil {
				sp.SetAttr("cached", strconv.FormatBool(hit))
				if flows != nil && flows[j.Index] != nil {
					sp.SetVirtual(0, flows[j.Index].Kernel.VirtualNS)
				}
				sp.End()
			}
			if cfg.Progress != nil {
				cfg.Progress(int(done.Add(1)), len(jobs))
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Merge per-flow telemetry strictly in campaign order, after the parallel
	// phase: float aggregates (Dist merges) are order-sensitive, and a fixed
	// order makes the totals bit-identical at any Parallelism.
	if cfg.Telemetry != nil {
		for _, f := range flows {
			if f != nil {
				cfg.Telemetry.AddFlow(f)
			}
		}
	}
	return &Campaign{Config: cfg, Results: results}, nil
}

// RunFlowFull simulates one flow with a fresh telemetry bundle attached and
// returns a telemetry-complete cache entry: metrics, endpoint stats, and the
// flow's exact telemetry state in wire form. It is the compute function for
// distributed work-unit execution, where every flow must contribute its
// kernel/TCP/link counters to the coordinator's campaign totals even when
// the metrics themselves could have been served from a thinner cache entry.
func RunFlowFull(sc Scenario) (CachedFlow, error) {
	tel := telemetry.NewFlow()
	sc.Telemetry = tel
	m, st, err := RunFlowMetrics(sc)
	if err != nil {
		return CachedFlow{}, err
	}
	state := tel.State()
	return CachedFlow{Metrics: m, Stats: st, Telemetry: &state}, nil
}

// runCampaignFlow produces one campaign flow's metrics through the
// configured pipeline: cache lookup first (unless materializing), then the
// streaming (or legacy materialized) simulation, then cache write-back.
// Concurrent campaigns sharing one cache deduplicate identical misses
// through FlowCache.GetOrCompute: the flow simulates once, everyone shares
// the result. hit reports whether the result came from the cache or another
// worker's in-flight simulation (either way, this call simulated nothing
// itself, so its telemetry bundle stays empty).
func runCampaignFlow(cfg CampaignConfig, sc Scenario) (m *analysis.FlowMetrics, hit bool, err error) {
	if cfg.Materialize {
		ft, _, err := RunFlow(sc)
		if err != nil {
			return nil, false, err
		}
		m, err = analysis.Analyze(ft)
		return m, false, err
	}
	if cfg.Cache != nil {
		ent, shared, err := cfg.Cache.GetOrCompute(sc, func() (CachedFlow, error) {
			m, st, err := RunFlowMetrics(sc)
			if err != nil {
				return CachedFlow{}, err
			}
			return CachedFlow{Metrics: m, Stats: st}, nil
		})
		if err != nil {
			return nil, false, err
		}
		return ent.Metrics, shared, nil
	}
	m, _, err = RunFlowMetrics(sc)
	if err != nil {
		return nil, false, err
	}
	return m, false, nil
}

// flowOffset places a flow inside the trip's cruise window (the paper's
// flows were captured at steady ~300 km/h), deterministically from the
// flow seed. Stationary trips always start at zero.
func flowOffset(trip railway.Trip, seed int64, flowDuration time.Duration) time.Duration {
	if trip.Stationary() {
		return 0
	}
	start, end := trip.CruiseWindow()
	usable := end - start - flowDuration
	if usable <= 0 {
		return start
	}
	r := int64(uint64(seed*2654435761) % uint64(usable))
	return start + time.Duration(r)
}

// shortName compresses an operator name for flow IDs.
func shortName(name string) string {
	switch name {
	case cellular.ChinaMobileLTE.Name:
		return "cm"
	case cellular.ChinaUnicom3G.Name:
		return "cu"
	case cellular.ChinaTelecom3G.Name:
		return "ct"
	default:
		return "op"
	}
}
