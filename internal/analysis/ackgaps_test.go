package analysis

import (
	"testing"
	"time"

	"repro/internal/trace"
)

func TestAckGapsHandTrace(t *testing.T) {
	ft := handTrace()
	m, err := Analyze(ft)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	st, err := AckGaps(ft, m, 300*time.Millisecond)
	if err != nil {
		t.Fatalf("AckGaps: %v", err)
	}
	// The hand trace has two long silences ending in timeouts: 136ms->536ms
	// (genuine) and 631ms-ish->1261ms (spurious). Both exceed 300ms.
	if len(st.Gaps) < 2 {
		t.Fatalf("gaps = %d, want >= 2", len(st.Gaps))
	}
	timeoutGaps := 0
	for _, g := range st.Gaps {
		if g.Duration() < 300*time.Millisecond {
			t.Errorf("gap %v shorter than the threshold", g.Duration())
		}
		if g.EndedInTimeout {
			timeoutGaps++
		}
	}
	if timeoutGaps < 2 {
		t.Errorf("timeout gaps = %d, want >= 2", timeoutGaps)
	}
	if st.PerRoundRate <= 0 {
		t.Errorf("PerRoundRate = %v, want positive", st.PerRoundRate)
	}
}

func TestAckGapsNoGapsOnSteadyFlow(t *testing.T) {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	// A steady flow: ack every 60 ms, threshold would be ~90 ms.
	ft := &trace.FlowTrace{Meta: trace.FlowMeta{ID: "steady", MSS: 1000, Duration: time.Second}}
	for i := 0; i < 10; i++ {
		base := i * 60
		ft.Events = append(ft.Events,
			trace.Event{At: ms(base), Type: trace.EvDataSend, Seq: int64(i), Ack: -1, TransmitNo: 1, Cwnd: 2},
			trace.Event{At: ms(base + 30), Type: trace.EvDataRecv, Seq: int64(i), Ack: -1, TransmitNo: 1},
			trace.Event{At: ms(base + 31), Type: trace.EvAckSend, Seq: -1, Ack: int64(i + 1)},
			trace.Event{At: ms(base + 59), Type: trace.EvAckRecv, Seq: -1, Ack: int64(i + 1)},
		)
	}
	m, err := Analyze(ft)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	st, err := AckGaps(ft, m, 0) // default threshold = 1.5 RTT
	if err != nil {
		t.Fatalf("AckGaps: %v", err)
	}
	if len(st.Gaps) != 0 {
		t.Errorf("steady flow reported %d gaps: %+v", len(st.Gaps), st.Gaps)
	}
}

func TestAckGapsValidation(t *testing.T) {
	if _, err := AckGaps(nil, nil, 0); err == nil {
		t.Error("nil inputs accepted")
	}
	ft := &trace.FlowTrace{Meta: trace.FlowMeta{ID: "empty", Duration: time.Second}}
	m, err := Analyze(ft)
	if err != nil {
		t.Fatal(err)
	}
	st, err := AckGaps(ft, m, 0)
	if err != nil {
		t.Fatalf("AckGaps on empty trace: %v", err)
	}
	if len(st.Gaps) != 0 {
		t.Error("empty trace reported gaps")
	}
}
