// Package analysis extracts the paper's transport-layer metrics from packet
// traces: loss rates for data and ACKs, RTT statistics, timeout events and
// their spurious/genuine classification, timeout-recovery phases and the
// loss rate of retransmissions inside them (the paper's q), and per-flow
// throughput. It implements Section III of the paper as code.
package analysis

import (
	"fmt"
	"time"

	"repro/internal/stats"
	"repro/internal/trace"
)

// RecoveryPhase is one timeout sequence: from the stall that precedes the
// first RTO of the sequence to the ACK that restarts transmission (the
// paper's Fig 2).
type RecoveryPhase struct {
	// Start is the last data activity before the first timeout (the end of
	// the preceding congestion-avoidance phase).
	Start time.Duration
	// FirstTimeout is when the first RTO of the sequence fired.
	FirstTimeout time.Duration
	// End is when transmission recovered (new cumulative ACK).
	End time.Duration
	// Timeouts counts the RTO expiries in the sequence (the paper's R).
	Timeouts int
	// Retransmissions counts data transmissions inside [FirstTimeout, End).
	Retransmissions int
	// RetransmissionsLost counts those that the channel dropped.
	RetransmissionsLost int
	// Spurious reports whether the sequence's first timeout fired even
	// though the timed-out segment had already reached the receiver.
	Spurious bool
}

// Duration returns the length of the recovery phase.
func (r RecoveryPhase) Duration() time.Duration { return r.End - r.Start }

// FlowMetrics are the per-flow statistics the experiments consume.
type FlowMetrics struct {
	Meta trace.FlowMeta

	Duration        time.Duration
	UniqueDelivered int64
	ThroughputPps   float64 // unique segments delivered per second
	ThroughputBps   float64 // payload bits per second (MSS * 8 * pps)

	DataSent     int64
	DataLost     int64
	DataLossRate float64 // the paper's p_d
	AcksSent     int64
	AcksLost     int64
	AckLossRate  float64 // the paper's p_a

	MeanRTT    time.Duration
	RTTSamples int

	MeanWindow float64 // mean cwnd over data transmissions (the w in P_a = p_a^w)

	Timeouts         int // individual RTO expiries
	TimeoutSequences int // recovery phases (timeout sequences)
	SpuriousTimeouts int // timeout sequences classified spurious
	FastRetransmits  int

	// TimeoutProbability is the paper's Q: the fraction of loss indications
	// (fast retransmits + timeout sequences) that were timeout sequences.
	TimeoutProbability float64

	Recoveries           []RecoveryPhase
	MeanRecoveryDuration time.Duration
	// RecoveryLossRate is the paper's q: the loss rate of retransmitted
	// packets inside timeout recovery phases.
	RecoveryLossRate float64

	// BaseRTOEstimate is the flow's base retransmission timeout T, estimated
	// from the exponential-backoff structure of consecutive timeouts: the
	// gap between timeout k and k+1 of one sequence equals T * 2^(b+1)
	// (capped), where b is the backoff exponent recorded at timeout k.
	// Zero when the flow had no consecutive timeouts.
	BaseRTOEstimate time.Duration

	// EstimatedRounds approximates how many transmission rounds the flow
	// spent outside timeout recovery: (duration - recovery time) / RTT.
	EstimatedRounds float64
	// AckBurstRate is a direct estimate of the paper's P_a: spurious
	// timeout sequences per transmission round. (The independence formula
	// p_a^w vastly underestimates P_a on bursty channels.)
	AckBurstRate float64
}

// SpuriousFraction returns the fraction of timeout sequences classified as
// spurious, or 0 when there were none.
func (m *FlowMetrics) SpuriousFraction() float64 {
	if m.TimeoutSequences == 0 {
		return 0
	}
	return float64(m.SpuriousTimeouts) / float64(m.TimeoutSequences)
}

// txKey identifies one transmission of one segment.
type txKey struct {
	seq  int64
	txNo int
}

// Analyze derives FlowMetrics from a packet trace.
func Analyze(ft *trace.FlowTrace) (*FlowMetrics, error) {
	if ft == nil {
		return nil, fmt.Errorf("analysis: nil trace")
	}
	if err := ft.Validate(); err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	m := &FlowMetrics{Meta: ft.Meta, Duration: ft.Meta.Duration}

	recvAt := map[txKey]time.Duration{}   // arrival time per transmission
	firstRecv := make([]time.Duration, 0) // earliest arrival per segment, -1 = never
	for _, ev := range ft.Events {
		if ev.Type == trace.EvDataRecv {
			recvAt[txKey{ev.Seq, ev.TransmitNo}] = ev.At
			firstRecv = growNeg(firstRecv, ev.Seq)
			if t := firstRecv[ev.Seq]; t < 0 || ev.At < t {
				firstRecv[ev.Seq] = ev.At
			}
		}
	}

	// pend is the unacked-first-transmission queue (sendRec is shared with
	// the streaming analyzer). First transmissions carry strictly increasing
	// sequence numbers, and cumulative ACKs evict from the front, so a slice
	// with a head index replaces the former map — the per-ACK eviction scan
	// over the whole map dominated Analyze.
	var (
		cwndSum      float64
		rttSum       time.Duration
		pend         []sendRec
		pendHead     int
		delivered    []bool // dense unique-delivery tracker, indexed by seq
		curPhase     *RecoveryPhase
		lastActivity time.Duration // last data send or ACK arrival before a timeout
		prevTOAt     time.Duration
		prevTOBk     int
		rtoSum       time.Duration
		rtoN         int
	)
	// findPend binary-searches the live queue for seq, returning its index
	// or -1 (already evicted or never sent on first transmission).
	findPend := func(seq int64) int {
		lo, hi := pendHead, len(pend)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if pend[mid].seq < seq {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(pend) && pend[lo].seq == seq {
			return lo
		}
		return -1
	}
	for _, ev := range ft.Events {
		switch ev.Type {
		case trace.EvDataSend:
			m.DataSent++
			cwndSum += ev.Cwnd
			if ev.TransmitNo == 1 {
				pend = append(pend, sendRec{seq: ev.Seq, at: ev.At})
			} else if i := findPend(ev.Seq); i >= 0 {
				pend[i].tainted = true
			}
			if curPhase != nil {
				curPhase.Retransmissions++
				if _, arrived := recvAt[txKey{ev.Seq, ev.TransmitNo}]; !arrived {
					curPhase.RetransmissionsLost++
				}
			} else {
				lastActivity = ev.At
			}

		case trace.EvDataDrop:
			m.DataLost++

		case trace.EvDataRecv:
			delivered = growBool(delivered, ev.Seq)
			if !delivered[ev.Seq] {
				delivered[ev.Seq] = true
				m.UniqueDelivered++
			}

		case trace.EvAckSend:
			m.AcksSent++

		case trace.EvAckDrop:
			m.AcksLost++

		case trace.EvAckRecv:
			if i := findPend(ev.Ack - 1); i >= 0 && !pend[i].tainted {
				rttSum += ev.At - pend[i].at
				m.RTTSamples++
			}
			for pendHead < len(pend) && pend[pendHead].seq < ev.Ack {
				pend[pendHead] = sendRec{}
				pendHead++
			}
			if curPhase == nil {
				lastActivity = ev.At
			}

		case trace.EvTimeout:
			m.Timeouts++
			if curPhase == nil {
				curPhase = &RecoveryPhase{
					Start:        lastActivity,
					FirstTimeout: ev.At,
				}
				// Spurious iff the timed-out segment had already arrived
				// (the receiver will see the same payload twice).
				if int(ev.Seq) < len(firstRecv) && firstRecv[ev.Seq] >= 0 && firstRecv[ev.Seq] <= ev.At {
					curPhase.Spurious = true
				}
			} else {
				// Consecutive timeout: the gap from the previous one encodes
				// the base RTO through the backoff exponent.
				shift := uint(prevTOBk + 1)
				if shift > 6 {
					shift = 6
				}
				rtoSum += (ev.At - prevTOAt) >> shift
				rtoN++
			}
			prevTOAt, prevTOBk = ev.At, ev.Backoff
			curPhase.Timeouts++

		case trace.EvFastRetx:
			m.FastRetransmits++

		case trace.EvRecovered:
			if curPhase != nil {
				curPhase.End = ev.At
				m.Recoveries = append(m.Recoveries, *curPhase)
				curPhase = nil
			}
		}
	}
	// A phase still open at the end of the trace never recovered; count it
	// with End at the trace horizon so its duration is not lost.
	if curPhase != nil {
		curPhase.End = ft.Meta.Duration
		if curPhase.End < curPhase.FirstTimeout {
			curPhase.End = curPhase.FirstTimeout
		}
		m.Recoveries = append(m.Recoveries, *curPhase)
	}

	m.TimeoutSequences = len(m.Recoveries)
	var recDur time.Duration
	var retx, retxLost int
	for _, r := range m.Recoveries {
		recDur += r.Duration()
		retx += r.Retransmissions
		retxLost += r.RetransmissionsLost
		if r.Spurious {
			m.SpuriousTimeouts++
		}
	}
	if len(m.Recoveries) > 0 {
		m.MeanRecoveryDuration = recDur / time.Duration(len(m.Recoveries))
	}
	if retx > 0 {
		m.RecoveryLossRate = float64(retxLost) / float64(retx)
	}

	if m.DataSent > 0 {
		m.DataLossRate = float64(m.DataLost) / float64(m.DataSent)
		m.MeanWindow = cwndSum / float64(m.DataSent)
	}
	if m.AcksSent > 0 {
		m.AckLossRate = float64(m.AcksLost) / float64(m.AcksSent)
	}
	if m.RTTSamples > 0 {
		m.MeanRTT = rttSum / time.Duration(m.RTTSamples)
	}
	if rtoN > 0 {
		m.BaseRTOEstimate = rtoSum / time.Duration(rtoN)
	}
	if d := m.Duration.Seconds(); d > 0 {
		m.ThroughputPps = float64(m.UniqueDelivered) / d
		m.ThroughputBps = m.ThroughputPps * float64(ft.Meta.MSS) * 8
	}
	if m.MeanRTT > 0 {
		active := m.Duration - recDur
		if active < m.MeanRTT {
			active = m.MeanRTT
		}
		m.EstimatedRounds = float64(active) / float64(m.MeanRTT)
		m.AckBurstRate = float64(m.SpuriousTimeouts) / m.EstimatedRounds
	}
	if ind := m.TimeoutSequences + m.FastRetransmits; ind > 0 {
		m.TimeoutProbability = float64(m.TimeoutSequences) / float64(ind)
	}
	return m, nil
}

// Summary is a compact aggregate over many flows, used by the campaign
// experiments.
type Summary struct {
	Flows                int
	MeanThroughputPps    float64
	MeanDataLossRate     float64
	MeanAckLossRate      float64
	MeanRecoveryDuration time.Duration
	MeanRecoveryLossRate float64 // mean of per-flow q over flows with recoveries
	SpuriousFraction     float64 // spurious timeout sequences / all sequences
	TotalTimeoutSeqs     int
	TotalSpurious        int
}

// Summarize aggregates per-flow metrics.
func Summarize(ms []*FlowMetrics) Summary {
	var s Summary
	if len(ms) == 0 {
		return s
	}
	var tput, dloss, aloss, qsum stats.Running
	var recDur time.Duration
	var recFlows int
	for _, m := range ms {
		tput.Add(m.ThroughputPps)
		dloss.Add(m.DataLossRate)
		aloss.Add(m.AckLossRate)
		if len(m.Recoveries) > 0 {
			qsum.Add(m.RecoveryLossRate)
			recDur += m.MeanRecoveryDuration
			recFlows++
		}
		s.TotalTimeoutSeqs += m.TimeoutSequences
		s.TotalSpurious += m.SpuriousTimeouts
	}
	s.Flows = len(ms)
	s.MeanThroughputPps = tput.Mean()
	s.MeanDataLossRate = dloss.Mean()
	s.MeanAckLossRate = aloss.Mean()
	if recFlows > 0 {
		s.MeanRecoveryDuration = recDur / time.Duration(recFlows)
		s.MeanRecoveryLossRate = qsum.Mean()
	}
	if s.TotalTimeoutSeqs > 0 {
		s.SpuriousFraction = float64(s.TotalSpurious) / float64(s.TotalTimeoutSeqs)
	}
	return s
}

// seqTableSlackCap bounds the extra capacity the per-sequence tables reserve
// beyond the highest index demanded so far. Doubling keeps growth amortized
// O(1) for the dense sequence spaces real flows produce, while the cap keeps
// a sparse, high-sequence trace (a hostile input or a long-idle flow) from
// reserving twice the high-water mark in one jump. Shared by the batch
// analyzer and the streaming analyzer so both grow identically.
const seqTableSlackCap = 1 << 16

// seqTableCap picks the new capacity for a per-sequence table that must hold
// need entries: geometric (doubling) growth, slack-capped.
func seqTableCap(oldCap, need int) int {
	newCap := 2 * oldCap
	if newCap < need {
		newCap = need
	}
	if newCap > need+seqTableSlackCap {
		newCap = need + seqTableSlackCap
	}
	return newCap
}

// growNeg extends s so index i is valid, filling new slots with -1
// ("never seen"). Sequence numbers are dense, so a slice beats a map here;
// growth is geometric (one allocation per doubling) instead of per-index
// appends, so a sparse high-sequence trace costs one capped allocation
// rather than a reallocation cascade.
func growNeg(s []time.Duration, i int64) []time.Duration {
	need := int(i) + 1
	if need <= len(s) {
		return s
	}
	if need > cap(s) {
		ns := make([]time.Duration, len(s), seqTableCap(cap(s), need))
		copy(ns, s)
		s = ns
	}
	tail := s[len(s):need]
	for j := range tail {
		tail[j] = -1
	}
	return s[:need]
}

// growBool extends s so index i is valid (new slots false), with the same
// capped geometric growth as growNeg.
func growBool(s []bool, i int64) []bool {
	need := int(i) + 1
	if need <= len(s) {
		return s
	}
	if need > cap(s) {
		ns := make([]bool, len(s), seqTableCap(cap(s), need))
		copy(ns, s)
		s = ns
	}
	return s[:need]
}
