package analysis

import (
	"math"
	"testing"
	"time"

	"repro/internal/trace"
)

// handTrace builds a small trace with exactly known metrics:
//   - 10 data transmissions, 2 channel drops (p_d = 0.2)
//   - 8 ACKs, 1 dropped (p_a = 0.125)
//   - 2 timeout sequences: one genuine (seq 2 lost), one spurious (seq 4
//     delivered but its ACK dropped), plus 1 fast retransmit
//   - 7 unique segments delivered
func handTrace() *trace.FlowTrace {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	ev := []trace.Event{
		{At: ms(0), Type: trace.EvDataSend, Seq: 0, Ack: -1, TransmitNo: 1, Cwnd: 2},
		{At: ms(10), Type: trace.EvDataSend, Seq: 1, Ack: -1, TransmitNo: 1, Cwnd: 2},
		{At: ms(30), Type: trace.EvDataRecv, Seq: 0, Ack: -1, TransmitNo: 1},
		{At: ms(31), Type: trace.EvAckSend, Seq: -1, Ack: 1},
		{At: ms(40), Type: trace.EvDataRecv, Seq: 1, Ack: -1, TransmitNo: 1},
		{At: ms(41), Type: trace.EvAckSend, Seq: -1, Ack: 2},
		{At: ms(61), Type: trace.EvAckRecv, Seq: -1, Ack: 1},
		{At: ms(62), Type: trace.EvDataSend, Seq: 2, Ack: -1, TransmitNo: 1, Cwnd: 3},
		{At: ms(62), Type: trace.EvDataDrop, Seq: 2, Ack: -1, TransmitNo: 1},
		{At: ms(71), Type: trace.EvAckRecv, Seq: -1, Ack: 2},
		{At: ms(75), Type: trace.EvDataSend, Seq: 3, Ack: -1, TransmitNo: 1, Cwnd: 3},
		{At: ms(105), Type: trace.EvDataRecv, Seq: 3, Ack: -1, TransmitNo: 1},
		{At: ms(106), Type: trace.EvAckSend, Seq: -1, Ack: 2},
		{At: ms(136), Type: trace.EvAckRecv, Seq: -1, Ack: 2},
		{At: ms(475), Type: trace.EvTimeout, Seq: 2, Ack: -1},
		{At: ms(475), Type: trace.EvDataSend, Seq: 2, Ack: -1, TransmitNo: 2, Cwnd: 1},
		{At: ms(505), Type: trace.EvDataRecv, Seq: 2, Ack: -1, TransmitNo: 2},
		{At: ms(506), Type: trace.EvAckSend, Seq: -1, Ack: 4},
		{At: ms(536), Type: trace.EvAckRecv, Seq: -1, Ack: 4},
		{At: ms(536), Type: trace.EvRecovered, Seq: -1, Ack: 4},
		{At: ms(600), Type: trace.EvDataSend, Seq: 4, Ack: -1, TransmitNo: 1, Cwnd: 2},
		{At: ms(630), Type: trace.EvDataRecv, Seq: 4, Ack: -1, TransmitNo: 1},
		{At: ms(631), Type: trace.EvAckSend, Seq: -1, Ack: 5},
		{At: ms(631), Type: trace.EvAckDrop, Seq: -1, Ack: 5},
		{At: ms(1200), Type: trace.EvTimeout, Seq: 4, Ack: -1},
		{At: ms(1200), Type: trace.EvDataSend, Seq: 4, Ack: -1, TransmitNo: 2, Cwnd: 1},
		{At: ms(1230), Type: trace.EvDataRecv, Seq: 4, Ack: -1, TransmitNo: 2},
		{At: ms(1231), Type: trace.EvAckSend, Seq: -1, Ack: 5},
		{At: ms(1261), Type: trace.EvAckRecv, Seq: -1, Ack: 5},
		{At: ms(1261), Type: trace.EvRecovered, Seq: -1, Ack: 5},
		{At: ms(1300), Type: trace.EvDataSend, Seq: 5, Ack: -1, TransmitNo: 1, Cwnd: 2},
		{At: ms(1310), Type: trace.EvDataSend, Seq: 6, Ack: -1, TransmitNo: 1, Cwnd: 2},
		{At: ms(1310), Type: trace.EvDataDrop, Seq: 6, Ack: -1, TransmitNo: 1},
		{At: ms(1330), Type: trace.EvDataRecv, Seq: 5, Ack: -1, TransmitNo: 1},
		{At: ms(1331), Type: trace.EvAckSend, Seq: -1, Ack: 6},
		{At: ms(1361), Type: trace.EvAckRecv, Seq: -1, Ack: 6},
		{At: ms(1400), Type: trace.EvFastRetx, Seq: 6, Ack: -1},
		{At: ms(1400), Type: trace.EvDataSend, Seq: 6, Ack: -1, TransmitNo: 2, Cwnd: 2},
		{At: ms(1430), Type: trace.EvDataRecv, Seq: 6, Ack: -1, TransmitNo: 2},
		{At: ms(1431), Type: trace.EvAckSend, Seq: -1, Ack: 7},
		{At: ms(1461), Type: trace.EvAckRecv, Seq: -1, Ack: 7},
	}
	return &trace.FlowTrace{
		Meta: trace.FlowMeta{
			ID: "hand", Operator: "Test", Scenario: "hsr",
			MSS: 1000, DelayedAckB: 1, WindowLimit: 64,
			Duration: 10 * time.Second,
		},
		Events: ev,
	}
}

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestAnalyzeHandTrace(t *testing.T) {
	m, err := Analyze(handTrace())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if m.DataSent != 10 {
		t.Errorf("DataSent = %d, want 10", m.DataSent)
	}
	if m.DataLost != 2 || !approx(m.DataLossRate, 0.2, 1e-12) {
		t.Errorf("DataLost = %d rate %v, want 2 / 0.2", m.DataLost, m.DataLossRate)
	}
	if m.AcksSent != 8 || m.AcksLost != 1 || !approx(m.AckLossRate, 0.125, 1e-12) {
		t.Errorf("ACKs = %d lost %d rate %v, want 8 / 1 / 0.125", m.AcksSent, m.AcksLost, m.AckLossRate)
	}
	if m.UniqueDelivered != 7 {
		t.Errorf("UniqueDelivered = %d, want 7", m.UniqueDelivered)
	}
	if m.Timeouts != 2 || m.TimeoutSequences != 2 {
		t.Errorf("Timeouts = %d sequences %d, want 2 / 2", m.Timeouts, m.TimeoutSequences)
	}
	if m.SpuriousTimeouts != 1 {
		t.Errorf("SpuriousTimeouts = %d, want 1", m.SpuriousTimeouts)
	}
	if !approx(m.SpuriousFraction(), 0.5, 1e-12) {
		t.Errorf("SpuriousFraction = %v, want 0.5", m.SpuriousFraction())
	}
	if m.FastRetransmits != 1 {
		t.Errorf("FastRetransmits = %d, want 1", m.FastRetransmits)
	}
	if !approx(m.TimeoutProbability, 2.0/3.0, 1e-12) {
		t.Errorf("TimeoutProbability = %v, want 2/3", m.TimeoutProbability)
	}
	if m.RTTSamples != 4 {
		t.Errorf("RTTSamples = %d, want 4", m.RTTSamples)
	}
	if want := 161 * time.Millisecond; m.MeanRTT != want {
		t.Errorf("MeanRTT = %v, want %v", m.MeanRTT, want)
	}
	if !approx(m.MeanWindow, 2.0, 1e-12) {
		t.Errorf("MeanWindow = %v, want 2.0", m.MeanWindow)
	}
	if !approx(m.ThroughputPps, 0.7, 1e-12) {
		t.Errorf("ThroughputPps = %v, want 0.7", m.ThroughputPps)
	}
	if !approx(m.ThroughputBps, 0.7*8000, 1e-9) {
		t.Errorf("ThroughputBps = %v, want 5600", m.ThroughputBps)
	}
}

func TestAnalyzeRecoveryPhases(t *testing.T) {
	m, err := Analyze(handTrace())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(m.Recoveries) != 2 {
		t.Fatalf("Recoveries = %d, want 2", len(m.Recoveries))
	}
	r1 := m.Recoveries[0]
	if r1.Start != 136*time.Millisecond || r1.FirstTimeout != 475*time.Millisecond || r1.End != 536*time.Millisecond {
		t.Errorf("phase 1 = %+v, want Start 136ms FirstTimeout 475ms End 536ms", r1)
	}
	if r1.Spurious {
		t.Error("phase 1 classified spurious, want genuine (data was lost)")
	}
	if r1.Timeouts != 1 || r1.Retransmissions != 1 || r1.RetransmissionsLost != 0 {
		t.Errorf("phase 1 counters = %+v", r1)
	}
	r2 := m.Recoveries[1]
	if !r2.Spurious {
		t.Error("phase 2 classified genuine, want spurious (data arrived, ACK lost)")
	}
	if r2.Start != 600*time.Millisecond || r2.End != 1261*time.Millisecond {
		t.Errorf("phase 2 = %+v, want Start 600ms End 1261ms", r2)
	}
	wantMean := (400*time.Millisecond + 661*time.Millisecond) / 2
	if m.MeanRecoveryDuration != wantMean {
		t.Errorf("MeanRecoveryDuration = %v, want %v", m.MeanRecoveryDuration, wantMean)
	}
	if m.RecoveryLossRate != 0 {
		t.Errorf("RecoveryLossRate = %v, want 0 (both retransmissions arrived)", m.RecoveryLossRate)
	}
}

func TestAnalyzeLostRetransmissionsCountTowardQ(t *testing.T) {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	ft := &trace.FlowTrace{
		Meta: trace.FlowMeta{ID: "q", MSS: 1000, Duration: 5 * time.Second},
		Events: []trace.Event{
			{At: ms(0), Type: trace.EvDataSend, Seq: 0, Ack: -1, TransmitNo: 1, Cwnd: 1},
			{At: ms(0), Type: trace.EvDataDrop, Seq: 0, Ack: -1, TransmitNo: 1},
			{At: ms(1000), Type: trace.EvTimeout, Seq: 0, Ack: -1},
			{At: ms(1000), Type: trace.EvDataSend, Seq: 0, Ack: -1, TransmitNo: 2, Cwnd: 1},
			{At: ms(1000), Type: trace.EvDataDrop, Seq: 0, Ack: -1, TransmitNo: 2},
			{At: ms(3000), Type: trace.EvTimeout, Seq: 0, Ack: -1},
			{At: ms(3000), Type: trace.EvDataSend, Seq: 0, Ack: -1, TransmitNo: 3, Cwnd: 1},
			{At: ms(3030), Type: trace.EvDataRecv, Seq: 0, Ack: -1, TransmitNo: 3},
			{At: ms(3031), Type: trace.EvAckSend, Seq: -1, Ack: 1},
			{At: ms(3061), Type: trace.EvAckRecv, Seq: -1, Ack: 1},
			{At: ms(3061), Type: trace.EvRecovered, Seq: -1, Ack: 1},
		},
	}
	m, err := Analyze(ft)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(m.Recoveries) != 1 {
		t.Fatalf("Recoveries = %d, want 1 (consecutive timeouts are one sequence)", len(m.Recoveries))
	}
	r := m.Recoveries[0]
	if r.Timeouts != 2 {
		t.Errorf("phase timeouts = %d, want 2", r.Timeouts)
	}
	if r.Retransmissions != 2 || r.RetransmissionsLost != 1 {
		t.Errorf("retx = %d lost %d, want 2 / 1", r.Retransmissions, r.RetransmissionsLost)
	}
	if !approx(m.RecoveryLossRate, 0.5, 1e-12) {
		t.Errorf("q = %v, want 0.5", m.RecoveryLossRate)
	}
}

func TestAnalyzeUnrecoveredPhaseAtCutoff(t *testing.T) {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	ft := &trace.FlowTrace{
		Meta: trace.FlowMeta{ID: "cut", MSS: 1000, Duration: 4 * time.Second},
		Events: []trace.Event{
			{At: ms(0), Type: trace.EvDataSend, Seq: 0, Ack: -1, TransmitNo: 1, Cwnd: 1},
			{At: ms(0), Type: trace.EvDataDrop, Seq: 0, Ack: -1, TransmitNo: 1},
			{At: ms(1000), Type: trace.EvTimeout, Seq: 0, Ack: -1},
			{At: ms(1000), Type: trace.EvDataSend, Seq: 0, Ack: -1, TransmitNo: 2, Cwnd: 1},
			{At: ms(1000), Type: trace.EvDataDrop, Seq: 0, Ack: -1, TransmitNo: 2},
		},
	}
	m, err := Analyze(ft)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(m.Recoveries) != 1 {
		t.Fatalf("Recoveries = %d, want 1 (open phase closed at horizon)", len(m.Recoveries))
	}
	if got := m.Recoveries[0].End; got != 4*time.Second {
		t.Errorf("open phase End = %v, want trace horizon 4s", got)
	}
}

func TestAnalyzeRejectsBadInput(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Error("nil trace accepted")
	}
	bad := handTrace()
	bad.Events[0].At = time.Hour // breaks ordering
	if _, err := Analyze(bad); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	m, err := Analyze(&trace.FlowTrace{Meta: trace.FlowMeta{ID: "empty", Duration: time.Second}})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if m.DataSent != 0 || m.ThroughputPps != 0 || m.TimeoutSequences != 0 {
		t.Errorf("empty trace metrics = %+v", m)
	}
	if m.SpuriousFraction() != 0 {
		t.Error("SpuriousFraction of empty trace should be 0")
	}
}

func TestDeliverySeriesHandTrace(t *testing.T) {
	pts, err := DeliverySeries(handTrace())
	if err != nil {
		t.Fatalf("DeliverySeries: %v", err)
	}
	var data, acks, lostData, lostAcks int
	for _, p := range pts {
		switch p.Kind {
		case DataPacket:
			data++
			if p.Lost {
				lostData++
				if p.Latency != -1 {
					t.Errorf("lost packet has latency %v, want -1", p.Latency)
				}
			} else if p.Latency != 30*time.Millisecond {
				t.Errorf("data latency = %v, want 30ms", p.Latency)
			}
		case AckPacket:
			acks++
			if p.Lost {
				lostAcks++
			} else if p.Latency != 30*time.Millisecond {
				t.Errorf("ack latency = %v, want 30ms", p.Latency)
			}
		}
	}
	if data != 10 || lostData != 2 {
		t.Errorf("data points = %d lost %d, want 10 / 2", data, lostData)
	}
	if acks != 8 || lostAcks != 1 {
		t.Errorf("ack points = %d lost %d, want 8 / 1", acks, lostAcks)
	}
}

func TestDeliverySeriesInFlightAtCutoff(t *testing.T) {
	ft := &trace.FlowTrace{
		Meta: trace.FlowMeta{ID: "inflight", Duration: time.Second},
		Events: []trace.Event{
			{At: 0, Type: trace.EvDataSend, Seq: 0, Ack: -1, TransmitNo: 1},
			// No recv and no drop: the packet is in flight at cutoff.
		},
	}
	pts, err := DeliverySeries(ft)
	if err != nil {
		t.Fatalf("DeliverySeries: %v", err)
	}
	if len(pts) != 1 || !pts[0].Lost {
		t.Errorf("in-flight packet = %+v, want marked lost", pts)
	}
}

func TestDeliverySeriesRejectsInconsistent(t *testing.T) {
	ft := &trace.FlowTrace{
		Meta: trace.FlowMeta{ID: "bad", Duration: time.Second},
		Events: []trace.Event{
			{At: 0, Type: trace.EvDataRecv, Seq: 0, Ack: -1, TransmitNo: 1},
		},
	}
	if _, err := DeliverySeries(ft); err == nil {
		t.Error("recv without send accepted")
	}
}

func TestPacketKindString(t *testing.T) {
	if DataPacket.String() != "data" || AckPacket.String() != "ack" {
		t.Error("PacketKind.String mismatch")
	}
	if got := PacketKind(9).String(); got != "PacketKind(9)" {
		t.Errorf("unknown PacketKind = %q", got)
	}
}

func TestSummarize(t *testing.T) {
	m1, err := Analyze(handTrace())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	s := Summarize([]*FlowMetrics{m1, m1})
	if s.Flows != 2 {
		t.Errorf("Flows = %d, want 2", s.Flows)
	}
	if !approx(s.MeanDataLossRate, 0.2, 1e-12) {
		t.Errorf("MeanDataLossRate = %v, want 0.2", s.MeanDataLossRate)
	}
	if !approx(s.MeanAckLossRate, 0.125, 1e-12) {
		t.Errorf("MeanAckLossRate = %v, want 0.125", s.MeanAckLossRate)
	}
	if s.TotalTimeoutSeqs != 4 || s.TotalSpurious != 2 {
		t.Errorf("timeout totals = %d/%d, want 4/2", s.TotalTimeoutSeqs, s.TotalSpurious)
	}
	if !approx(s.SpuriousFraction, 0.5, 1e-12) {
		t.Errorf("SpuriousFraction = %v, want 0.5", s.SpuriousFraction)
	}
	if s.MeanRecoveryDuration == 0 {
		t.Error("MeanRecoveryDuration = 0, want positive")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Flows != 0 || s.SpuriousFraction != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}
