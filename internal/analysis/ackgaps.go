package analysis

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// AckGap is one interval during which the sender had data outstanding but
// received no acknowledgements for well over a round-trip — the sender-side
// view of the paper's "ACK burst loss": a whole round's ACKs failed to
// arrive (lost or stalled), regardless of what happened to the data.
type AckGap struct {
	Start time.Duration // last ACK arrival before the silence
	End   time.Duration // next ACK arrival (or the trace horizon)
	// EndedInTimeout reports whether an RTO fired inside the gap.
	EndedInTimeout bool
}

// Duration returns the silence length.
func (g AckGap) Duration() time.Duration { return g.End - g.Start }

// AckGapStats summarizes a flow's ACK silences.
type AckGapStats struct {
	// Gaps are the ACK silences longer than the detection threshold.
	Gaps []AckGap
	// Threshold is the silence length that counted as a gap.
	Threshold time.Duration
	// PerRoundRate is gaps per estimated transmission round — a direct,
	// assumption-free estimator of the paper's P_a.
	PerRoundRate float64
}

// AckGaps scans a trace for ACK silences longer than k round-trips (k = 1.5
// by default via threshold <= 0) while data was outstanding. It needs the
// flow's metrics for the mean RTT and round estimate.
func AckGaps(ft *trace.FlowTrace, m *FlowMetrics, threshold time.Duration) (*AckGapStats, error) {
	if ft == nil || m == nil {
		return nil, fmt.Errorf("analysis: AckGaps requires a trace and its metrics")
	}
	if m.MeanRTT <= 0 {
		return &AckGapStats{}, nil
	}
	if threshold <= 0 {
		threshold = m.MeanRTT * 3 / 2
	}
	st := &AckGapStats{Threshold: threshold}

	var lastAck time.Duration
	var lastAckValid bool
	var outstanding int64 // sends minus cumulative-acked, approximate
	var sndUna int64
	var timeoutInWindow bool

	flush := func(now time.Duration) {
		if lastAckValid && outstanding > 0 && now-lastAck >= threshold {
			st.Gaps = append(st.Gaps, AckGap{
				Start:          lastAck,
				End:            now,
				EndedInTimeout: timeoutInWindow,
			})
		}
		timeoutInWindow = false
	}

	var sent int64
	for _, ev := range ft.Events {
		switch ev.Type {
		case trace.EvDataSend:
			if ev.TransmitNo == 1 {
				sent = ev.Seq + 1
				outstanding = sent - sndUna
			}
			if !lastAckValid {
				lastAck = ev.At
				lastAckValid = true
			}
		case trace.EvTimeout:
			timeoutInWindow = true
		case trace.EvAckRecv:
			flush(ev.At)
			if ev.Ack > sndUna {
				sndUna = ev.Ack
				outstanding = sent - sndUna
			}
			lastAck = ev.At
			lastAckValid = true
		}
	}
	flush(ft.Meta.Duration)

	if m.EstimatedRounds > 0 {
		st.PerRoundRate = float64(len(st.Gaps)) / m.EstimatedRounds
	}
	return st, nil
}
