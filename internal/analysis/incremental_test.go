package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// replayCheck runs the batch analyzer and a streaming replay of the same
// trace and fails unless they produce identical metrics — or, for invalid
// traces, identical error strings.
func replayCheck(t *testing.T, ft *trace.FlowTrace) {
	t.Helper()
	want, wantErr := Analyze(ft)
	inc := NewIncremental(ft.Meta)
	for _, ev := range ft.Events {
		inc.Record(ev)
	}
	got, gotErr := inc.Finish()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("error mismatch: batch %v, streaming %v", wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("error text mismatch:\nbatch:     %v\nstreaming: %v", wantErr, gotErr)
		}
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("metrics mismatch:\nbatch:     %+v\nstreaming: %+v", want, got)
	}
}

func TestIncrementalMatchesBatchHandTrace(t *testing.T) {
	replayCheck(t, handTrace())
}

func TestIncrementalMatchesBatchEmptyTrace(t *testing.T) {
	replayCheck(t, &trace.FlowTrace{
		Meta: trace.FlowMeta{ID: "empty", MSS: 1400, Duration: time.Second},
	})
}

// TestIncrementalMatchesBatchInvalidTraces feeds both analyzers traces that
// decode fine but violate event invariants; the streaming analyzer must
// latch exactly the error the batch analyzer's up-front Validate reports.
func TestIncrementalMatchesBatchInvalidTraces(t *testing.T) {
	meta := trace.FlowMeta{ID: "bad", MSS: 1000, Duration: time.Second}
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	cases := map[string][]trace.Event{
		"time going backwards": {
			{At: ms(10), Type: trace.EvDataSend, Seq: 0, Ack: -1, TransmitNo: 1},
			{At: ms(5), Type: trace.EvDataRecv, Seq: 0, Ack: -1, TransmitNo: 1},
		},
		"negative seq": {
			{At: ms(0), Type: trace.EvDataSend, Seq: -3, Ack: -1, TransmitNo: 1},
		},
		"zero transmit number": {
			{At: ms(0), Type: trace.EvDataSend, Seq: 0, Ack: -1, TransmitNo: 0},
		},
		"negative ack": {
			{At: ms(0), Type: trace.EvAckSend, Seq: -1, Ack: -2},
		},
		"invalid mid-stream": {
			{At: ms(0), Type: trace.EvDataSend, Seq: 0, Ack: -1, TransmitNo: 1, Cwnd: 2},
			{At: ms(30), Type: trace.EvDataRecv, Seq: 0, Ack: -1, TransmitNo: 1},
			{At: ms(31), Type: trace.EvAckSend, Seq: -1, Ack: 1},
			{At: ms(40), Type: trace.EvDataSend, Seq: -1, Ack: -1, TransmitNo: 1},
			{At: ms(50), Type: trace.EvDataSend, Seq: 1, Ack: -1, TransmitNo: 1, Cwnd: 2},
		},
	}
	for name, evs := range cases {
		t.Run(name, func(t *testing.T) {
			replayCheck(t, &trace.FlowTrace{Meta: meta, Events: evs})
		})
	}
}

// TestIncrementalMatchesBatchCorpus replays every checked-in hostile input
// under internal/trace/testdata/corpus through both analyzers. Most corpus
// files are rejected by the decoders before any analyzer runs — the test
// then asserts both decode paths agree — and any that do decode must
// analyze identically.
func TestIncrementalMatchesBatchCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "trace", "testdata", "corpus", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("internal/trace/testdata/corpus is empty")
	}
	for _, p := range paths {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			var ft *trace.FlowTrace
			var decErr error
			if strings.HasSuffix(p, ".jsonl") {
				ft, decErr = trace.ReadJSONL(bytes.NewReader(data))
			} else {
				ft, decErr = trace.ReadBinary(bytes.NewReader(data))
			}
			if decErr != nil {
				return // hostile at the codec layer; nothing to analyze
			}
			replayCheck(t, ft)
		})
	}
}

// TestIncrementalPoolReuse checks that a pooled analyzer recycled across
// flows is indistinguishable from a fresh one — in particular that the
// delivered table, whose grow path exposes uncleared capacity, carries no
// state over (a resurrected delivered[seq] would misclassify a genuine
// timeout in the next flow as spurious).
func TestIncrementalPoolReuse(t *testing.T) {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	// First flow delivers seq 4; second flow times out on an undelivered
	// seq 4. Stale delivery state would flip the second flow's phase to
	// spurious.
	second := &trace.FlowTrace{
		Meta: trace.FlowMeta{ID: "second", MSS: 1000, Duration: time.Second},
		Events: []trace.Event{
			{At: ms(0), Type: trace.EvDataSend, Seq: 4, Ack: -1, TransmitNo: 1, Cwnd: 1},
			{At: ms(0), Type: trace.EvDataDrop, Seq: 4, Ack: -1, TransmitNo: 1},
			{At: ms(400), Type: trace.EvTimeout, Seq: 4, Ack: -1},
			{At: ms(400), Type: trace.EvDataSend, Seq: 4, Ack: -1, TransmitNo: 2, Cwnd: 1},
			{At: ms(430), Type: trace.EvDataRecv, Seq: 4, Ack: -1, TransmitNo: 2},
			{At: ms(431), Type: trace.EvAckSend, Seq: -1, Ack: 5},
			{At: ms(461), Type: trace.EvAckRecv, Seq: -1, Ack: 5},
			{At: ms(461), Type: trace.EvRecovered, Seq: -1, Ack: 5},
		},
	}
	want, err := Analyze(second)
	if err != nil {
		t.Fatal(err)
	}
	if want.SpuriousTimeouts != 0 {
		t.Fatalf("batch SpuriousTimeouts = %d, want 0 (test premise)", want.SpuriousTimeouts)
	}

	first := handTrace() // delivers seq 4, among others
	a := AcquireIncremental(first.Meta)
	for _, ev := range first.Events {
		a.Record(ev)
	}
	if _, err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	a.Release()

	b := AcquireIncremental(second.Meta)
	for _, ev := range second.Events {
		b.Record(ev)
	}
	got, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("reused analyzer diverged from batch:\nbatch:  %+v\nreused: %+v", want, got)
	}
}

// TestSeqTableGrowth pins the shared growth policy of the per-segment
// tables: geometric doubling (amortized O(1) appends) with the slack capped
// at seqTableSlackCap so one sparse high sequence number cannot balloon the
// arena.
func TestSeqTableGrowth(t *testing.T) {
	var s []time.Duration
	s = growNeg(s, 0)
	for i := int64(0); i < 100; i++ {
		s = growNeg(s, i)
	}
	for i, v := range s {
		if v != -1 {
			t.Fatalf("growNeg: s[%d] = %v, want -1", i, v)
		}
	}
	// Doubling from a non-trivial base.
	s = growNeg(s, 150)
	if cap(s) < 200 {
		t.Errorf("growNeg: cap %d after doubling from >=100, want >= 200", cap(s))
	}
	// A sparse jump may not over-allocate past need + slack.
	const sparse = 5_000_000
	s = growNeg(s, sparse)
	if len(s) != sparse+1 {
		t.Fatalf("growNeg: len %d, want %d", len(s), sparse+1)
	}
	if got, max := cap(s), sparse+1+seqTableSlackCap; got > max {
		t.Errorf("growNeg: cap %d after sparse jump, want <= %d", got, max)
	}
	if s[sparse] != -1 || s[sparse-1] != -1 {
		t.Errorf("growNeg: sparse tail not initialized to -1")
	}

	var bl []bool
	bl = growBool(bl, 100)
	bl[100] = true
	bl = growBool(bl, sparse)
	if len(bl) != sparse+1 {
		t.Fatalf("growBool: len %d, want %d", len(bl), sparse+1)
	}
	if got, max := cap(bl), sparse+1+seqTableSlackCap; got > max {
		t.Errorf("growBool: cap %d after sparse jump, want <= %d", got, max)
	}
	if !bl[100] {
		t.Errorf("growBool: lost existing element during growth")
	}
}

// TestIncrementalSparseHighSequence is the regression test for the grow
// policy end to end: a trace whose sequence numbers jump to five million
// must analyze identically in both pipelines and must not pin more than
// need+slack table capacity in the streaming analyzer.
func TestIncrementalSparseHighSequence(t *testing.T) {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	const high = 5_000_000
	ft := &trace.FlowTrace{
		Meta: trace.FlowMeta{ID: "sparse", MSS: 1000, Duration: 2 * time.Second},
		Events: []trace.Event{
			{At: ms(0), Type: trace.EvDataSend, Seq: 0, Ack: -1, TransmitNo: 1, Cwnd: 1},
			{At: ms(30), Type: trace.EvDataRecv, Seq: 0, Ack: -1, TransmitNo: 1},
			{At: ms(31), Type: trace.EvAckSend, Seq: -1, Ack: 1},
			{At: ms(61), Type: trace.EvAckRecv, Seq: -1, Ack: 1},
			{At: ms(100), Type: trace.EvDataSend, Seq: high, Ack: -1, TransmitNo: 1, Cwnd: 2},
			{At: ms(130), Type: trace.EvDataRecv, Seq: high, Ack: -1, TransmitNo: 1},
			{At: ms(131), Type: trace.EvAckSend, Seq: -1, Ack: high + 1},
			{At: ms(161), Type: trace.EvAckRecv, Seq: -1, Ack: high + 1},
		},
	}
	replayCheck(t, ft)

	inc := NewIncremental(ft.Meta)
	for _, ev := range ft.Events {
		inc.Record(ev)
	}
	if _, err := inc.Finish(); err != nil {
		t.Fatal(err)
	}
	if got, max := cap(inc.delivered), high+1+seqTableSlackCap; got > max {
		t.Errorf("delivered table cap %d after sparse flow, want <= %d", got, max)
	}
}
