package analysis

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// PacketKind distinguishes the two halves of the paper's Fig 1 scatter.
type PacketKind int

// Packet kinds.
const (
	DataPacket PacketKind = iota + 1
	AckPacket
)

// String implements fmt.Stringer.
func (k PacketKind) String() string {
	switch k {
	case DataPacket:
		return "data"
	case AckPacket:
		return "ack"
	default:
		return fmt.Sprintf("PacketKind(%d)", int(k))
	}
}

// DeliveryPoint is one point of the Fig 1 scatter: when a packet was sent
// and how long it took to arrive. Lost packets have Lost=true and, following
// the paper's plotting convention, a latency of -1.
type DeliveryPoint struct {
	Kind    PacketKind
	SentAt  time.Duration
	Latency time.Duration // -1 when Lost
	Lost    bool
	Seq     int64 // data: segment; ack: cumulative ack value
}

// DeliverySeries reconstructs per-packet delivery latency from a trace. The
// emulated links never reorder, so the k-th non-dropped transmission in each
// direction matches the k-th arrival.
func DeliverySeries(ft *trace.FlowTrace) ([]DeliveryPoint, error) {
	if ft == nil {
		return nil, fmt.Errorf("analysis: nil trace")
	}
	if err := ft.Validate(); err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var out []DeliveryPoint
	// Indices into out of sent-but-not-yet-matched packets, per direction.
	var pendingData, pendingAcks []int

	pop := func(pending *[]int) int {
		idx := (*pending)[0]
		*pending = (*pending)[1:]
		return idx
	}

	for _, ev := range ft.Events {
		switch ev.Type {
		case trace.EvDataSend:
			out = append(out, DeliveryPoint{Kind: DataPacket, SentAt: ev.At, Seq: ev.Seq, Latency: -1})
			pendingData = append(pendingData, len(out)-1)
		case trace.EvDataDrop:
			// Drops are recorded synchronously after their send: the newest
			// pending data packet is the dropped one.
			if len(pendingData) == 0 {
				return nil, fmt.Errorf("analysis: data drop without pending send at %v", ev.At)
			}
			idx := pendingData[len(pendingData)-1]
			pendingData = pendingData[:len(pendingData)-1]
			out[idx].Lost = true
		case trace.EvDataRecv:
			if len(pendingData) == 0 {
				return nil, fmt.Errorf("analysis: data recv without pending send at %v", ev.At)
			}
			idx := pop(&pendingData)
			out[idx].Latency = ev.At - out[idx].SentAt
		case trace.EvAckSend:
			out = append(out, DeliveryPoint{Kind: AckPacket, SentAt: ev.At, Seq: ev.Ack, Latency: -1})
			pendingAcks = append(pendingAcks, len(out)-1)
		case trace.EvAckDrop:
			if len(pendingAcks) == 0 {
				return nil, fmt.Errorf("analysis: ack drop without pending send at %v", ev.At)
			}
			idx := pendingAcks[len(pendingAcks)-1]
			pendingAcks = pendingAcks[:len(pendingAcks)-1]
			out[idx].Lost = true
		case trace.EvAckRecv:
			if len(pendingAcks) == 0 {
				return nil, fmt.Errorf("analysis: ack recv without pending send at %v", ev.At)
			}
			idx := pop(&pendingAcks)
			out[idx].Latency = ev.At - out[idx].SentAt
		}
	}
	// Packets still pending at the trace horizon were in flight at cutoff;
	// mark them lost for plotting purposes (the paper's flows end the same
	// way: trailing packets have no observable arrival).
	for _, idx := range pendingData {
		out[idx].Lost = true
	}
	for _, idx := range pendingAcks {
		out[idx].Lost = true
	}
	return out, nil
}
