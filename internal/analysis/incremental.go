package analysis

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/trace"
)

// sendRec is one unacked first transmission in the pending-send queue,
// shared by the batch and streaming analyzers.
type sendRec struct {
	seq     int64
	at      time.Duration
	tainted bool // segment was retransmitted (Karn: no RTT sample)
}

// spurCheck is a deferred spurious-timeout classification: a recovery phase
// whose first timeout at time at was not (yet) spurious when it fired. A
// data arrival for seq at exactly the same virtual timestamp — which the
// batch analyzer sees in its whole-trace first pass but a streaming consumer
// has not received yet — still counts, so the check stays pending until the
// stream's clock moves past at.
type spurCheck struct {
	phase int32
	seq   int64
	at    time.Duration
}

// Incremental computes FlowMetrics online from a stream of packet events,
// without ever materializing the event list: attach one as the
// trace.Recorder of a running flow (dataset.RunFlowMetrics does this) and
// call Finish when the flow ends. The result is identical to running the
// batch Analyze over the materialized trace of the same stream — equivalence
// is tested event-for-event on the hostile corpus and on whole campaigns —
// for any stream that is causally ordered (a transmission's arrival never
// precedes its send, and no (seq, transmit#) pair is sent twice; every
// simulator-produced trace satisfies both).
//
// Memory is proportional to the flow's sequence-number range (dense
// per-segment tables, like the batch analyzer) plus the live recovery state,
// but never to the event count: a metrics-only campaign holds no event
// slices at all. All internal tables survive Reset, so a pooled Incremental
// (AcquireIncremental / Release) analyzes consecutive flows with near-zero
// steady-state allocation.
//
// The zero value is NOT ready for use; construct with NewIncremental or
// reset an old one with Reset.
type Incremental struct {
	meta trace.FlowMeta
	m    FlowMetrics

	err    error
	evIdx  int
	prevAt time.Duration

	cwndSum  float64
	rttSum   time.Duration
	pend     []sendRec
	pendHead int
	// delivered doubles as the batch analyzer's firstRecv existence check:
	// delivered[seq] is true once any arrival of seq has been processed, and
	// every processed arrival is at or before the stream's current time.
	delivered []bool

	// phases accumulates recovery phases in order; openPhase indexes the
	// currently open one (-1 when transmission is live). Closed phases can
	// still be amended by retxPending refunds and spurPending matches, which
	// is why the slice holds them until Finish.
	phases    []RecoveryPhase
	openPhase int

	lastActivity time.Duration
	prevTOAt     time.Duration
	prevTOBk     int
	rtoSum       time.Duration
	rtoN         int

	// retxPending maps an in-recovery transmission counted as lost to the
	// phase that counted it; the arrival of that exact transmission — always
	// after the send on a causal stream — refunds the loss, reproducing the
	// batch analyzer's whole-trace "did it ever arrive" lookup.
	retxPending map[txKey]int32
	spurPending []spurCheck
}

// NewIncremental returns a streaming analyzer for one flow with the given
// metadata (the analyzer needs Duration and MSS for the epilogue).
func NewIncremental(meta trace.FlowMeta) *Incremental {
	a := &Incremental{}
	a.Reset(meta)
	return a
}

// Reset re-arms the analyzer for a new flow, retaining every internal
// table's capacity so a pooled analyzer's steady state allocates nothing.
func (a *Incremental) Reset(meta trace.FlowMeta) {
	// growBool exposes capacity without clearing, so stale trues from the
	// previous flow must be wiped here; growNeg-style tables self-initialize.
	clear(a.delivered[:cap(a.delivered)])
	a.delivered = a.delivered[:0]
	clear(a.retxPending)
	*a = Incremental{
		meta:        meta,
		delivered:   a.delivered,
		pend:        a.pend[:0],
		phases:      a.phases[:0],
		spurPending: a.spurPending[:0],
		retxPending: a.retxPending,
		openPhase:   -1,
	}
	a.m = FlowMetrics{Meta: meta, Duration: meta.Duration}
}

// findPend binary-searches the live pending-send queue for seq, returning
// its index or -1 (already evicted or never sent on first transmission).
func (a *Incremental) findPend(seq int64) int {
	lo, hi := a.pendHead, len(a.pend)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a.pend[mid].seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a.pend) && a.pend[lo].seq == seq {
		return lo
	}
	return -1
}

// Record implements trace.Recorder: it folds one event into the running
// metrics. Events must arrive in nondecreasing time order; a malformed
// event latches an error that Finish returns (matching what the batch
// analyzer's up-front Validate would have reported) and subsequent events
// are ignored.
func (a *Incremental) Record(ev trace.Event) {
	if a.err != nil {
		return
	}
	if err := trace.ValidateEvent(a.evIdx, ev, a.prevAt); err != nil {
		a.err = err
		return
	}
	a.evIdx++
	a.prevAt = ev.At
	if len(a.spurPending) > 0 {
		a.pruneSpur(ev.At)
	}

	switch ev.Type {
	case trace.EvDataSend:
		a.m.DataSent++
		a.cwndSum += ev.Cwnd
		if ev.TransmitNo == 1 {
			a.pend = append(a.pend, sendRec{seq: ev.Seq, at: ev.At})
		} else if i := a.findPend(ev.Seq); i >= 0 {
			a.pend[i].tainted = true
		}
		if a.openPhase >= 0 {
			ph := &a.phases[a.openPhase]
			ph.Retransmissions++
			// Counted lost until its arrival is observed; on a causal
			// stream the arrival (if any) is still ahead of us.
			ph.RetransmissionsLost++
			if a.retxPending == nil {
				a.retxPending = make(map[txKey]int32)
			}
			a.retxPending[txKey{ev.Seq, ev.TransmitNo}] = int32(a.openPhase)
		} else {
			a.lastActivity = ev.At
		}

	case trace.EvDataDrop:
		a.m.DataLost++

	case trace.EvDataRecv:
		a.delivered = growBool(a.delivered, ev.Seq)
		if !a.delivered[ev.Seq] {
			a.delivered[ev.Seq] = true
			a.m.UniqueDelivered++
		}
		if len(a.retxPending) > 0 {
			k := txKey{ev.Seq, ev.TransmitNo}
			if pi, ok := a.retxPending[k]; ok {
				a.phases[pi].RetransmissionsLost--
				delete(a.retxPending, k)
			}
		}
		for i := 0; i < len(a.spurPending); {
			if a.spurPending[i].seq == ev.Seq {
				a.phases[a.spurPending[i].phase].Spurious = true
				a.spurPending = append(a.spurPending[:i], a.spurPending[i+1:]...)
			} else {
				i++
			}
		}

	case trace.EvAckSend:
		a.m.AcksSent++

	case trace.EvAckDrop:
		a.m.AcksLost++

	case trace.EvAckRecv:
		if i := a.findPend(ev.Ack - 1); i >= 0 && !a.pend[i].tainted {
			a.rttSum += ev.At - a.pend[i].at
			a.m.RTTSamples++
		}
		for a.pendHead < len(a.pend) && a.pend[a.pendHead].seq < ev.Ack {
			a.pend[a.pendHead] = sendRec{}
			a.pendHead++
		}
		// Unlike the batch analyzer, which drops the whole queue with the
		// trace, a streaming run compacts the evicted prefix so the queue's
		// footprint tracks the in-flight window, not the flow length.
		if a.pendHead >= 4096 && a.pendHead >= len(a.pend)/2 {
			n := copy(a.pend, a.pend[a.pendHead:])
			a.pend = a.pend[:n]
			a.pendHead = 0
		}
		if a.openPhase < 0 {
			a.lastActivity = ev.At
		}

	case trace.EvTimeout:
		a.m.Timeouts++
		if a.openPhase < 0 {
			a.phases = append(a.phases, RecoveryPhase{
				Start:        a.lastActivity,
				FirstTimeout: ev.At,
			})
			a.openPhase = len(a.phases) - 1
			// Spurious iff the timed-out segment had already arrived. An
			// arrival at exactly ev.At may still be queued behind this
			// event in the stream, so keep the check pending until the
			// clock moves on.
			if int(ev.Seq) < len(a.delivered) && a.delivered[ev.Seq] {
				a.phases[a.openPhase].Spurious = true
			} else {
				a.spurPending = append(a.spurPending, spurCheck{
					phase: int32(a.openPhase), seq: ev.Seq, at: ev.At,
				})
			}
		} else {
			// Consecutive timeout: the gap from the previous one encodes
			// the base RTO through the backoff exponent.
			shift := uint(a.prevTOBk + 1)
			if shift > 6 {
				shift = 6
			}
			a.rtoSum += (ev.At - a.prevTOAt) >> shift
			a.rtoN++
		}
		a.prevTOAt, a.prevTOBk = ev.At, ev.Backoff
		a.phases[a.openPhase].Timeouts++

	case trace.EvFastRetx:
		a.m.FastRetransmits++

	case trace.EvRecovered:
		if a.openPhase >= 0 {
			a.phases[a.openPhase].End = ev.At
			a.openPhase = -1
		}
	}
}

// pruneSpur drops pending spurious checks whose timestamp the stream has
// moved past: an arrival can no longer land at or before them.
func (a *Incremental) pruneSpur(now time.Duration) {
	kept := a.spurPending[:0]
	for _, p := range a.spurPending {
		if p.at >= now {
			kept = append(kept, p)
		}
	}
	a.spurPending = kept
}

// Finish closes the flow and returns its metrics — a fresh FlowMetrics that
// owns all of its memory, so the analyzer can be Reset or Released
// immediately. It returns the first validation error the stream produced,
// wrapped exactly as the batch Analyze wraps it.
func (a *Incremental) Finish() (*FlowMetrics, error) {
	if a.err != nil {
		return nil, fmt.Errorf("analysis: %w", a.err)
	}
	// A phase still open at the end of the stream never recovered; count it
	// with End at the flow horizon so its duration is not lost.
	if a.openPhase >= 0 {
		ph := &a.phases[a.openPhase]
		ph.End = a.meta.Duration
		if ph.End < ph.FirstTimeout {
			ph.End = ph.FirstTimeout
		}
		a.openPhase = -1
	}
	m := a.m
	if len(a.phases) > 0 {
		m.Recoveries = append([]RecoveryPhase(nil), a.phases...)
	}

	m.TimeoutSequences = len(m.Recoveries)
	var recDur time.Duration
	var retx, retxLost int
	for _, r := range m.Recoveries {
		recDur += r.Duration()
		retx += r.Retransmissions
		retxLost += r.RetransmissionsLost
		if r.Spurious {
			m.SpuriousTimeouts++
		}
	}
	if len(m.Recoveries) > 0 {
		m.MeanRecoveryDuration = recDur / time.Duration(len(m.Recoveries))
	}
	if retx > 0 {
		m.RecoveryLossRate = float64(retxLost) / float64(retx)
	}

	if m.DataSent > 0 {
		m.DataLossRate = float64(m.DataLost) / float64(m.DataSent)
		m.MeanWindow = a.cwndSum / float64(m.DataSent)
	}
	if m.AcksSent > 0 {
		m.AckLossRate = float64(m.AcksLost) / float64(m.AcksSent)
	}
	if m.RTTSamples > 0 {
		m.MeanRTT = a.rttSum / time.Duration(m.RTTSamples)
	}
	if a.rtoN > 0 {
		m.BaseRTOEstimate = a.rtoSum / time.Duration(a.rtoN)
	}
	if d := m.Duration.Seconds(); d > 0 {
		m.ThroughputPps = float64(m.UniqueDelivered) / d
		m.ThroughputBps = m.ThroughputPps * float64(a.meta.MSS) * 8
	}
	if m.MeanRTT > 0 {
		active := m.Duration - recDur
		if active < m.MeanRTT {
			active = m.MeanRTT
		}
		m.EstimatedRounds = float64(active) / float64(m.MeanRTT)
		m.AckBurstRate = float64(m.SpuriousTimeouts) / m.EstimatedRounds
	}
	if ind := m.TimeoutSequences + m.FastRetransmits; ind > 0 {
		m.TimeoutProbability = float64(m.TimeoutSequences) / float64(ind)
	}
	return &m, nil
}

var _ trace.Recorder = (*Incremental)(nil)

// incrementalPool recycles streaming analyzers (and their grown internal
// tables) across flows; campaign workers churn through one analyzer per
// flow, and the arena reuse is what keeps the streaming pipeline's
// allocations per flow flat.
var incrementalPool = sync.Pool{New: func() any { return new(Incremental) }}

// AcquireIncremental returns a pooled streaming analyzer reset for meta.
func AcquireIncremental(meta trace.FlowMeta) *Incremental {
	a := incrementalPool.Get().(*Incremental)
	a.Reset(meta)
	return a
}

// Release returns the analyzer to the pool. The caller must not touch it
// afterwards; metrics returned by Finish remain valid (they share no
// memory with the analyzer).
func (a *Incremental) Release() {
	incrementalPool.Put(a)
}
