package export_test

import (
	"fmt"

	"repro/internal/export"
)

// ExampleTable renders an aligned text table.
func ExampleTable() {
	t := export.NewTable("provider", "Mbps")
	t.AddRow("China Mobile", 1.84)
	t.AddRow("China Telecom", 0.67)
	fmt.Print(t.Render())
	// Output:
	// provider       Mbps
	// -------------  ----
	// China Mobile   1.84
	// China Telecom  0.67
}
