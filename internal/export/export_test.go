package export

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Name", "Value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 42)
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Name") || !strings.Contains(lines[0], "Value") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1.50") {
		t.Errorf("row line = %q", lines[2])
	}
	if !strings.Contains(lines[3], "42") {
		t.Errorf("int row = %q", lines[3])
	}
	// Columns must align: "Value" column starts at the same offset everywhere.
	idx := strings.Index(lines[0], "Value")
	if !strings.HasPrefix(lines[2][idx:], "1.50") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("A")
	tb.AddRow("x", "extra")
	out := tb.Render()
	if !strings.Contains(out, "extra") {
		t.Errorf("ragged cell dropped:\n%s", out)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("1", "two, with comma")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got := buf.String()
	want := "a,b\n1,\"two, with comma\"\n"
	if got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.1234); got != "12.34%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(0); got != "0.00%" {
		t.Errorf("Percent(0) = %q", got)
	}
}

func TestPlotRender(t *testing.T) {
	p := Plot{Title: "test plot", XLabel: "x", YLabel: "y", Width: 40, Height: 10}
	p.Add("up", '*', []XY{{0, 0}, {1, 1}, {2, 2}})
	p.Add("down", 'o', []XY{{0, 2}, {2, 0}})
	out := p.Render()
	if !strings.Contains(out, "test plot") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing glyphs")
	}
	if !strings.Contains(out, "legend: *=up  o=down") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "x: x   y: y") {
		t.Error("missing axis labels")
	}
	// Corner values rendered on the axes.
	if !strings.Contains(out, "0") || !strings.Contains(out, "2") {
		t.Error("missing axis extremes")
	}
}

func TestPlotEmpty(t *testing.T) {
	p := Plot{Title: "empty"}
	out := p.Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty plot = %q", out)
	}
}

func TestPlotIgnoresNaN(t *testing.T) {
	p := Plot{Width: 20, Height: 5}
	p.Add("s", '#', []XY{{math.NaN(), 1}, {1, math.NaN()}, {1, 1}})
	out := p.Render()
	if strings.Contains(out, "(no data)") {
		t.Error("valid point ignored")
	}
}

func TestPlotDegenerateRange(t *testing.T) {
	p := Plot{Width: 20, Height: 5}
	p.Add("s", '#', []XY{{1, 1}, {1, 1}})
	out := p.Render()
	if !strings.Contains(out, "#") {
		t.Errorf("single-point plot missing glyph:\n%s", out)
	}
}

func TestPlotDefaults(t *testing.T) {
	p := Plot{}
	p.Add("s", '.', []XY{{0, 0}, {10, 10}})
	out := p.Render()
	lines := strings.Split(out, "\n")
	// 20 canvas rows + axis + labels + legend.
	if len(lines) < 22 {
		t.Errorf("default-size plot too small: %d lines", len(lines))
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x", "with|pipe")
	md := tb.Markdown()
	want := "| a | b |\n| --- | --- |\n| x | with\\|pipe |\n"
	if md != want {
		t.Errorf("Markdown = %q, want %q", md, want)
	}
}
