// Package export renders experiment results for terminals and files: padded
// ASCII tables, CSV series, and small text plots (scatter and CDF curves)
// used by cmd/hsrbench to "draw" the paper's figures in a terminal.
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given headers.
func NewTable(headers ...string) *Table {
	return &Table{Headers: headers}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the aligned table as a string.
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown returns the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := 0; i < len(t.Headers); i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			b.WriteString(" " + strings.ReplaceAll(cell, "|", "\\|") + " |")
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// WriteCSV writes the table in CSV form.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return fmt.Errorf("export: write csv header: %w", err)
	}
	for i, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("export: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("export: flush csv: %w", err)
	}
	return nil
}

// Percent formats a fraction as a percentage with two decimals.
func Percent(frac float64) string {
	return fmt.Sprintf("%.2f%%", frac*100)
}
