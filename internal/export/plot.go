package export

import (
	"fmt"
	"math"
	"strings"
)

// XY is one point of a 2-D series.
type XY struct {
	X, Y float64
}

// Series is a named point set with a plot glyph.
type Series struct {
	Name   string
	Glyph  rune
	Points []XY
}

// Plot renders one or more series on a shared text canvas with axis labels —
// enough to eyeball the shape of a scatter or a CDF in a terminal.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // canvas columns (default 72)
	Height int // canvas rows (default 20)
	Series []Series
}

// Add appends a series.
func (p *Plot) Add(name string, glyph rune, pts []XY) {
	p.Series = append(p.Series, Series{Name: name, Glyph: glyph, Points: pts})
}

// Render draws the plot.
func (p *Plot) Render() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range p.Series {
		for _, pt := range s.Points {
			if math.IsNaN(pt.X) || math.IsNaN(pt.Y) {
				continue
			}
			total++
			minX, maxX = math.Min(minX, pt.X), math.Max(maxX, pt.X)
			minY, maxY = math.Min(minY, pt.Y), math.Max(maxY, pt.Y)
		}
	}
	var b strings.Builder
	if p.Title != "" {
		b.WriteString(p.Title + "\n")
	}
	if total == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}
	canvas := make([][]rune, h)
	for i := range canvas {
		canvas[i] = make([]rune, w)
		for j := range canvas[i] {
			canvas[i][j] = ' '
		}
	}
	for _, s := range p.Series {
		for _, pt := range s.Points {
			if math.IsNaN(pt.X) || math.IsNaN(pt.Y) {
				continue
			}
			col := int((pt.X - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((pt.Y-minY)/(maxY-minY)*float64(h-1))
			canvas[row][col] = s.Glyph
		}
	}
	for i, line := range canvas {
		label := "          "
		switch i {
		case 0:
			label = leftPad(fmt.Sprintf("%.3g", maxY), 10)
		case h - 1:
			label = leftPad(fmt.Sprintf("%.3g", minY), 10)
		}
		b.WriteString(label + " |" + string(line) + "\n")
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", w) + "\n")
	xAxis := leftPad(fmt.Sprintf("%.3g", minX), 12) +
		strings.Repeat(" ", maxInt(1, w-10)) + fmt.Sprintf("%.3g", maxX)
	b.WriteString(xAxis + "\n")
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "x: %s   y: %s\n", p.XLabel, p.YLabel)
	}
	var legend []string
	for _, s := range p.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Glyph, s.Name))
	}
	if len(legend) > 0 {
		b.WriteString("legend: " + strings.Join(legend, "  ") + "\n")
	}
	return b.String()
}

func leftPad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return strings.Repeat(" ", n-len(s)) + s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
