package export

import (
	"math"
	"strings"
	"testing"
)

func TestPlotAllNaNIsNoData(t *testing.T) {
	p := Plot{Width: 20, Height: 5}
	p.Add("s", '#', []XY{{math.NaN(), math.NaN()}, {1, math.NaN()}})
	out := p.Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("all-NaN series rendered a canvas:\n%s", out)
	}
}

func TestPlotCanvasDimensions(t *testing.T) {
	p := Plot{Width: 30, Height: 7}
	p.Add("s", '#', []XY{{0, 0}, {5, 5}})
	out := p.Render()
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") {
			rows++
			if got := len(line) - strings.Index(line, "|") - 1; got != 30 {
				t.Fatalf("canvas row width = %d, want 30 (%q)", got, line)
			}
		}
	}
	if rows != 7 {
		t.Fatalf("canvas rows = %d, want 7", rows)
	}
}

func TestPlotExtremesLandInCorners(t *testing.T) {
	p := Plot{Width: 10, Height: 4}
	p.Add("s", '#', []XY{{0, 0}, {9, 3}})
	lines := strings.Split(p.Render(), "\n")
	var canvas []string
	for _, line := range lines {
		if i := strings.Index(line, "|"); i >= 0 {
			canvas = append(canvas, line[i+1:])
		}
	}
	if len(canvas) != 4 {
		t.Fatalf("canvas rows = %d, want 4", len(canvas))
	}
	if canvas[0][len(canvas[0])-1] != '#' {
		t.Errorf("max point not in top-right corner:\n%s", strings.Join(canvas, "\n"))
	}
	if canvas[3][0] != '#' {
		t.Errorf("min point not in bottom-left corner:\n%s", strings.Join(canvas, "\n"))
	}
}

func TestPlotNegativeRange(t *testing.T) {
	p := Plot{Width: 20, Height: 5}
	p.Add("s", '#', []XY{{-10, -5}, {-2, -1}})
	out := p.Render()
	if !strings.Contains(out, "#") {
		t.Fatalf("negative-range plot missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "-10") || !strings.Contains(out, "-5") {
		t.Errorf("negative axis extremes missing:\n%s", out)
	}
}
