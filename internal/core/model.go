// Package core implements the paper's primary contribution: the enhanced
// TCP Reno steady-state throughput model for high-speed mobility scenarios
// (Section IV, equations 1-21), alongside its baseline, the full Padhye
// (PFTK) model and the well-known square-root approximation.
//
// The enhanced model adds two parameters to the Padhye framework:
//
//   - P_a, the probability of "ACK burst loss" — all ACKs of one round being
//     lost, which ends a congestion-avoidance phase with a spurious
//     retransmission timeout even without data loss. It is approximated as
//     p_a^w from the per-ACK loss rate p_a and the mean window w
//     (Section IV-A).
//   - q, the loss rate of retransmitted packets inside a timeout recovery
//     phase, which in the paper's traces (~27%) is far above the lifetime
//     data loss rate (~0.75%) and is what makes recoveries take seconds.
//
// Fidelity notes. The formulas follow the paper as printed, including two
// spots where the print is internally inconsistent; both are kept (and
// documented) because the paper's own evaluation used them:
//
//  1. Eq. (4) writes E[W] = (b/2)E[X] - 2 although Eq. (3) solves to
//     E[W] = (2/b)E[X] - 2; the two agree at the evaluated b = 2. The
//     throughput numerator of Eq. (15) is consistent with the printed (b/2)
//     form, which we implement. EnhancedConsistent provides the re-derived
//     variant as an ablation.
//  2. The window-limited branch of Eq. (21) omits the RTT factor on the
//     round count in the denominator; we restore it (as Eq. (8) requires
//     E[A] = RTT*E[X]) — without it the branch is dimensionally wrong.
package core

import (
	"fmt"
	"math"
	"time"
)

// Params are the link/flow parameters the models consume. All probabilities
// are per-packet; windows are in packets.
type Params struct {
	RTT time.Duration // mean round-trip time
	T   time.Duration // base retransmission timeout (Padhye's T0, the paper's T)
	B   int           // b: data packets acknowledged by one ACK
	Wm  int           // receiver advertised window limit W_m

	PData float64 // p_d: data packet loss rate over the flow lifetime
	PAck  float64 // p_a: ACK loss rate
	Q     float64 // q: loss rate of retransmissions during timeout recovery

	MeanWindow float64 // w: mean window size, for P_a = p_a^w

	// AckBurst, when positive, is a directly measured P_a (the per-round
	// probability that every ACK of the round is lost). The paper's
	// p_a^w formula assumes independent ACK losses; on bursty channels
	// (handoff outages) that assumption collapses P_a to ~0, so a measured
	// value — e.g. spurious timeout sequences per round — is preferred when
	// available. Zero means "derive from PAck and MeanWindow".
	AckBurst float64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.RTT <= 0 {
		return fmt.Errorf("core: RTT %v must be positive", p.RTT)
	}
	if p.T <= 0 {
		return fmt.Errorf("core: T %v must be positive", p.T)
	}
	if p.B < 1 {
		return fmt.Errorf("core: b %d must be >= 1", p.B)
	}
	if p.Wm < 1 {
		return fmt.Errorf("core: Wm %d must be >= 1", p.Wm)
	}
	for name, v := range map[string]float64{"PData": p.PData, "PAck": p.PAck, "Q": p.Q} {
		if v < 0 || v >= 1 || math.IsNaN(v) {
			return fmt.Errorf("core: %s %v outside [0, 1)", name, v)
		}
	}
	if p.MeanWindow < 0 || math.IsNaN(p.MeanWindow) {
		return fmt.Errorf("core: MeanWindow %v must be non-negative", p.MeanWindow)
	}
	if p.AckBurst < 0 || p.AckBurst >= 1 || math.IsNaN(p.AckBurst) {
		return fmt.Errorf("core: AckBurst %v outside [0, 1)", p.AckBurst)
	}
	return nil
}

// AckBurstProb returns P_a: the measured AckBurst when set, otherwise the
// paper's independence approximation p_a^w (Section IV-A) with the window
// clamped to at least 1.
func (p Params) AckBurstProb() float64 {
	if p.AckBurst > 0 {
		return p.AckBurst
	}
	if p.PAck <= 0 {
		return 0
	}
	w := p.MeanWindow
	if w < 1 {
		w = 1
	}
	return math.Pow(p.PAck, w)
}

// FP is the paper's Eq. (14) (Padhye's f(p)): the expected backoff-weighted
// duration multiplier of a timeout sequence.
func FP(p float64) float64 {
	return 1 + p + 2*p*p + 4*math.Pow(p, 3) + 8*math.Pow(p, 4) + 16*math.Pow(p, 5) + 32*math.Pow(p, 6)
}

// XP is Eq. (1): the expected round in which data loss first occurs in a
// congestion-avoidance phase, as derived by Padhye. pd must be in (0, 1);
// it returns +Inf for pd = 0.
func XP(pd float64, b int) float64 {
	if pd <= 0 {
		return math.Inf(1)
	}
	c := (2 + float64(b)) / 6
	return c + math.Sqrt(2*float64(b)*(1-pd)/(3*pd)+c*c)
}

// EX is Eq. (2): the expected number of rounds in a CA phase when each round
// survives ACK burst loss with probability 1-Pa and the phase is capped at
// XP+1 rounds by data loss. As Pa -> 0 it approaches XP + 1 (the L'Hopital
// limit, which returns the model to Padhye's).
func EX(pa, xp float64) float64 {
	if math.IsInf(xp, 1) {
		if pa <= 0 {
			return math.Inf(1)
		}
		return 1 / pa
	}
	if pa <= 0 {
		return xp + 1
	}
	// (1 - (1-Pa)^(XP+1)) / Pa computed stably for tiny Pa via
	// -expm1((XP+1) * log1p(-Pa)) / Pa.
	return -math.Expm1((xp+1)*math.Log1p(-pa)) / pa
}

// EW is the expected window at the end of a CA phase as *printed* in
// Eq. (4): E[W] = (b/2)E[X] - 2. See the package comment for the
// inconsistency with Eq. (3); the printed form is what the paper's Eq. (15)
// uses, and the two coincide at b = 2.
func EW(ex float64, b int) float64 {
	return float64(b)/2*ex - 2
}

// EWConsistent is the end-of-phase window implied by Eq. (3):
// E[W] = (2/b)E[X] - 2.
func EWConsistent(ex float64, b int) float64 {
	return 2/float64(b)*ex - 2
}

// QP is Eq. (9): Padhye's probability that a loss indication is a timeout,
// min(1, 3/E[W]).
func QP(ew float64) float64 {
	if ew <= 3 {
		return 1
	}
	return 3 / ew
}

// QProb is Eq. (10): the enhanced probability that a CA phase ends in a
// timeout — either data loss ends it (probability (1-Pa)^XP) and the
// indication is a timeout with probability QP, or ACK burst loss ends it
// first and the timeout is certain.
func QProb(qp, pa, xp float64) float64 {
	if math.IsInf(xp, 1) {
		// Data loss never happens; every phase ends in an ACK-burst timeout
		// (if Pa > 0) or never ends (Pa = 0).
		if pa > 0 {
			return 1
		}
		return 0
	}
	return 1 - (1-qp)*math.Pow(1-pa, xp)
}

// TimeoutPersist returns p = 1 - (1-q)(1-Pa): the probability that one
// retransmission attempt fails to end the timeout sequence (Section IV-C).
func TimeoutPersist(q, pa float64) float64 {
	return 1 - (1-q)*(1-pa)
}

// ER is Eq. (11): the expected number of timeouts in a timeout sequence,
// 1/(1-p).
func ER(p float64) float64 {
	if p >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - p)
}

// EYTO is Eq. (12) as printed: the expected number of packets delivered
// during a timeout sequence, (1-q)^{E[R]}.
func EYTO(q, er float64) float64 {
	return math.Pow(1-q, er)
}

// EATO is Eq. (13): the expected duration of a timeout sequence,
// T * f(p) / (1-p).
func EATO(t time.Duration, p float64) time.Duration {
	if p >= 1 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(float64(t) * FP(p) / (1 - p))
}

// VP is Eq. (17): Padhye's expected number of window-limited rounds before a
// loss indication, (1-pd)/(pd*Wm) + 1 - 3*b*Wm/8.
func VP(pd float64, b, wm int) float64 {
	if pd <= 0 {
		return math.Inf(1)
	}
	return (1-pd)/(pd*float64(wm)) + 1 - 3*float64(b)*float64(wm)/8
}

// EV is Eq. (18): the expected number of window-limited rounds when ACK
// burst loss can also end the phase. As Pa -> 0 it approaches VP.
func EV(pa, vp float64) float64 {
	if vp < 1 {
		vp = 1 // the phase spends at least one round at the limit in this branch
	}
	if math.IsInf(vp, 1) {
		if pa <= 0 {
			return math.Inf(1)
		}
		return 1 / pa
	}
	if pa <= 0 {
		return vp
	}
	return -math.Expm1(vp*math.Log1p(-pa)) / pa
}

// Enhanced evaluates the paper's full model, Eq. (21), returning the
// expected steady-state throughput in packets per second.
func Enhanced(prm Params) (float64, error) {
	if err := prm.Validate(); err != nil {
		return 0, err
	}
	pa := prm.AckBurstProb()
	q := prm.Q
	rtt := prm.RTT.Seconds()
	wm := float64(prm.Wm)

	// Perfectly clean channel: purely window-limited.
	if prm.PData <= 0 && pa <= 0 {
		return wm / rtt, nil
	}

	xp := XP(prm.PData, prm.B)
	ex := EX(pa, xp)
	ew := EW(ex, prm.B)

	p := TimeoutPersist(q, pa)
	er := ER(p)
	eyTO := EYTO(q, er)
	eaTO := EATO(prm.T, p).Seconds()
	qp := QP(ew)
	bigQ := QProb(qp, pa, xp)

	if ew < wm {
		// Unconstrained branch, Eq. (15).
		b := float64(prm.B)
		num := 3*b/8*ex*ex - (6+b)/4*ex - 1 + bigQ*eyTO
		den := rtt*ex + bigQ*eaTO
		if num <= 0 || den <= 0 {
			// Degenerate corner (tiny windows): fall back to one packet per
			// timeout-dominated cycle.
			return math.Max(eyTO/(rtt+eaTO), 1e-9), nil
		}
		return num / den, nil
	}

	// Window-limited branch of Eq. (21) (RTT restored in the denominator).
	vp := VP(prm.PData, prm.B, prm.Wm)
	ev := EV(pa, vp)
	b := float64(prm.B)
	var num, den float64
	if math.IsInf(ev, 1) {
		return wm / rtt, nil
	}
	num = 3*b*wm*wm/8 + wm*(ev-0.5) + bigQ*eyTO
	den = rtt*(b*wm/2+ev) + bigQ*eaTO
	if num <= 0 || den <= 0 {
		return math.Max(eyTO/(rtt+eaTO), 1e-9), nil
	}
	return num / den, nil
}

// EnhancedConsistent is the ablation variant of Enhanced that re-derives the
// CA-phase packet count from Eq. (3)'s consistent window relation
// E[W] = (2/b)E[X] - 2 (see the package comment). At b = 2 it differs from
// the printed model only by the sign of the small constant term in the
// numerator (the paper prints "-1" where the algebra yields "+1"); at other
// b the window forms diverge too.
func EnhancedConsistent(prm Params) (float64, error) {
	if err := prm.Validate(); err != nil {
		return 0, err
	}
	pa := prm.AckBurstProb()
	q := prm.Q
	rtt := prm.RTT.Seconds()
	wm := float64(prm.Wm)
	if prm.PData <= 0 && pa <= 0 {
		return wm / rtt, nil
	}

	xp := XP(prm.PData, prm.B)
	ex := EX(pa, xp)
	ew := EWConsistent(ex, prm.B)

	p := TimeoutPersist(q, pa)
	er := ER(p)
	eyTO := EYTO(q, er)
	eaTO := EATO(prm.T, p).Seconds()
	bigQ := QProb(QP(ew), pa, xp)

	if ew < wm {
		// E[Y] = (E[W]/2)(3E[X]/2 - 1) with the consistent E[W].
		ey := ew / 2 * (3*ex/2 - 1)
		num := ey + bigQ*eyTO
		den := rtt*ex + bigQ*eaTO
		if num <= 0 || den <= 0 {
			return math.Max(eyTO/(rtt+eaTO), 1e-9), nil
		}
		return num / den, nil
	}
	vp := VP(prm.PData, prm.B, prm.Wm)
	ev := EV(pa, vp)
	if math.IsInf(ev, 1) {
		return wm / rtt, nil
	}
	b := float64(prm.B)
	num := 3*b*wm*wm/8 + wm*(ev-0.5) + bigQ*eyTO
	den := rtt*(b*wm/2+ev) + bigQ*eaTO
	if num <= 0 || den <= 0 {
		return math.Max(eyTO/(rtt+eaTO), 1e-9), nil
	}
	return num / den, nil
}

// Deviation is Eq. (22): the absolute relative deviation D between a model
// prediction and the measured throughput (both in the same unit). It
// returns NaN if actual is zero.
func Deviation(model, actual float64) float64 {
	if actual == 0 {
		return math.NaN()
	}
	return math.Abs(model-actual) / actual
}
