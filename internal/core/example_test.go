package core_test

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// ExampleEnhanced evaluates the paper's model for a typical HSR flow.
func ExampleEnhanced() {
	params := core.Params{
		RTT:        60 * time.Millisecond,
		T:          450 * time.Millisecond,
		B:          2,  // delayed ACK every 2 segments
		Wm:         28, // receiver advertised window, packets
		PData:      0.005,
		PAck:       0.006,
		Q:          0.3, // the paper's recommended recovery loss rate
		MeanWindow: 18,
	}
	tp, err := core.Enhanced(params)
	if err != nil {
		panic(err)
	}
	fmt.Printf("enhanced model: %.1f packets/s\n", tp)
	// Output:
	// enhanced model: 159.8 packets/s
}

// ExamplePadhye evaluates the baseline on the same parameters: without the
// q and P_a corrections it predicts more throughput than the HSR channel
// delivers.
func ExamplePadhye() {
	params := core.Params{
		RTT: 60 * time.Millisecond, T: 450 * time.Millisecond,
		B: 2, Wm: 28, PData: 0.005, PAck: 0.006, Q: 0.3, MeanWindow: 18,
	}
	padhye, _ := core.Padhye(params)
	enhanced, _ := core.Enhanced(params)
	fmt.Printf("padhye %.1f pps, enhanced %.1f pps\n", padhye, enhanced)
	// Output:
	// padhye 179.2 pps, enhanced 159.8 pps
}

// ExampleDeviation computes the paper's accuracy metric D (Eq. 22).
func ExampleDeviation() {
	fmt.Printf("D = %.1f%%\n", core.Deviation(120, 100)*100)
	// Output:
	// D = 20.0%
}
