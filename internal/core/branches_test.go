package core

import (
	"math"
	"testing"
	"time"
)

// windowLimitedParams forces the E[W] >= W_m branch of Eq. (21): tiny data
// loss with a small advertised window.
func windowLimitedParams() Params {
	return Params{
		RTT: 60 * time.Millisecond, T: 450 * time.Millisecond,
		B: 2, Wm: 8, PData: 0.0001, PAck: 0.0002,
		Q: 0.3, MeanWindow: 8, AckBurst: 0.001,
	}
}

func TestEnhancedWindowLimitedBranch(t *testing.T) {
	p := windowLimitedParams()
	// Confirm this parameter set really selects the limited branch.
	xp := XP(p.PData, p.B)
	ex := EX(p.AckBurstProb(), xp)
	if EW(ex, p.B) < float64(p.Wm) {
		t.Fatalf("test params do not trigger the window-limited branch (E[W] = %v)", EW(ex, p.B))
	}
	tp, err := Enhanced(p)
	if err != nil {
		t.Fatalf("Enhanced: %v", err)
	}
	ceiling := float64(p.Wm) / p.RTT.Seconds()
	if tp <= 0 || tp > ceiling*1.01 {
		t.Errorf("window-limited throughput = %v, want in (0, %v]", tp, ceiling)
	}
	// The branch must saturate near the ceiling when losses are tiny.
	if tp < ceiling*0.5 {
		t.Errorf("window-limited throughput = %v, want near ceiling %v", tp, ceiling)
	}
}

func TestEnhancedWindowLimitedMonotoneInWm(t *testing.T) {
	p := windowLimitedParams()
	prev := 0.0
	for _, wm := range []int{4, 8, 16, 32} {
		p.Wm = wm
		tp, err := Enhanced(p)
		if err != nil {
			t.Fatalf("Enhanced(Wm=%d): %v", wm, err)
		}
		if tp <= prev {
			t.Errorf("throughput not increasing in Wm at %d: %v after %v", wm, tp, prev)
		}
		prev = tp
	}
}

func TestEnhancedBranchesAgreeNearBoundary(t *testing.T) {
	// Varying Wm across the E[W] boundary must not produce a wild jump:
	// the two branches should agree within a factor of ~1.5 at the switch.
	p := hsrParams()
	p.PData = 0.002 // E[W]_printed ~ 28
	xp := XP(p.PData, p.B)
	ex := EX(p.AckBurstProb(), xp)
	boundary := int(EW(ex, p.B))
	if boundary < 4 {
		t.Skip("boundary too small to straddle")
	}
	p.Wm = boundary + 1 // unconstrained branch
	hi, err := Enhanced(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Wm = boundary - 1 // limited branch
	lo, err := Enhanced(p)
	if err != nil {
		t.Fatal(err)
	}
	ratio := hi / lo
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("branch discontinuity at Wm=%d: unconstrained %v vs limited %v (ratio %v)",
			boundary, hi, lo, ratio)
	}
}

func TestPadhyeWindowLimitedBranch(t *testing.T) {
	p := windowLimitedParams()
	tp, err := Padhye(p)
	if err != nil {
		t.Fatalf("Padhye: %v", err)
	}
	ceiling := float64(p.Wm) / p.RTT.Seconds()
	if tp <= 0 || tp > ceiling*1.01 {
		t.Errorf("Padhye window-limited = %v, want in (0, %v]", tp, ceiling)
	}
}

func TestEnhancedExtremeParams(t *testing.T) {
	// Stress corners: all models should stay finite and positive.
	corners := []Params{
		{RTT: time.Millisecond, T: 10 * time.Millisecond, B: 1, Wm: 2,
			PData: 0.3, PAck: 0.3, Q: 0.9, MeanWindow: 1, AckBurst: 0.3},
		{RTT: 2 * time.Second, T: 30 * time.Second, B: 4, Wm: 1000,
			PData: 1e-9, PAck: 0, Q: 0, MeanWindow: 500},
		{RTT: 100 * time.Millisecond, T: 400 * time.Millisecond, B: 2, Wm: 28,
			PData: 0, PAck: 0.5, Q: 0.5, MeanWindow: 2}, // only ACK loss
	}
	for i, p := range corners {
		for name, model := range map[string]func(Params) (float64, error){
			"Enhanced": Enhanced, "EnhancedConsistent": EnhancedConsistent,
			"Padhye": Padhye, "PadhyeApprox": PadhyeApprox,
		} {
			tp, err := model(p)
			if err != nil {
				t.Errorf("corner %d %s: %v", i, name, err)
				continue
			}
			if math.IsNaN(tp) || math.IsInf(tp, 0) || tp <= 0 {
				t.Errorf("corner %d %s = %v", i, name, tp)
			}
		}
	}
}

func TestEnhancedPureAckLossChannel(t *testing.T) {
	// No data loss at all, but a nonzero ACK-burst probability: the
	// enhanced model must still predict a finite, below-ceiling throughput
	// (every CA phase ends in a spurious timeout), while Padhye — blind to
	// ACK loss — predicts the full window-limited ceiling.
	p := Params{
		RTT: 60 * time.Millisecond, T: 450 * time.Millisecond,
		B: 2, Wm: 28, PData: 0, PAck: 0.01, Q: 0.3,
		MeanWindow: 20, AckBurst: 0.01,
	}
	enh, err := Enhanced(p)
	if err != nil {
		t.Fatalf("Enhanced: %v", err)
	}
	pad, err := Padhye(p)
	if err != nil {
		t.Fatalf("Padhye: %v", err)
	}
	ceiling := float64(p.Wm) / p.RTT.Seconds()
	if math.Abs(pad-ceiling) > 1e-6 {
		t.Errorf("Padhye with zero data loss = %v, want the ceiling %v", pad, ceiling)
	}
	if enh >= pad {
		t.Errorf("enhanced (%v) should sit below Padhye (%v) on a pure-ACK-loss channel", enh, pad)
	}
	if enh <= 0 {
		t.Errorf("enhanced = %v, want positive", enh)
	}
}
