package core

import (
	"time"

	"repro/internal/analysis"
)

// DefaultQ is the paper's recommended q when a trace has too few timeout
// recoveries to measure it ("we recommend a value between 0.25 to 0.4",
// Section IV-A).
const DefaultQ = 0.3

// ParamsFromMetrics estimates the model parameters from measured flow
// metrics, the way the paper's evaluation feeds trace statistics into
// Eq. (21):
//
//   - RTT, p_d, p_a, b, W_m and the mean window come straight from the flow;
//   - T (the base timeout) is estimated as the mean gap between the end of a
//     CA phase and the first RTO of the following timeout sequence, falling
//     back to 3*RTT clamped to at least 400 ms when the flow had no
//     timeouts;
//   - q is the measured recovery-phase retransmission loss rate, falling
//     back to DefaultQ when the flow had no recoveries (and clamped just
//     below 1 to keep Eq. (11) finite);
//   - P_a follows the paper's independence approximation p_a^w (AckBurst is
//     left unset). ParamsFromMetricsMeasuredPa is the ablation variant that
//     instead feeds the directly measured per-round ACK-burst rate.
func ParamsFromMetrics(m *analysis.FlowMetrics) Params {
	prm := Params{
		RTT:        m.MeanRTT,
		B:          m.Meta.DelayedAckB,
		Wm:         m.Meta.WindowLimit,
		PData:      clampProb(m.DataLossRate),
		PAck:       clampProb(m.AckLossRate),
		MeanWindow: m.MeanWindow,
	}
	if prm.RTT <= 0 {
		prm.RTT = 100 * time.Millisecond
	}
	if prm.B < 1 {
		prm.B = 1
	}
	if prm.Wm < 1 {
		prm.Wm = 64
	}
	if prm.MeanWindow < 1 {
		prm.MeanWindow = 1
	}

	switch {
	case m.BaseRTOEstimate > 0:
		// Preferred: T recovered from the backoff structure of consecutive
		// timeouts, which reflects the sender's actual timer.
		prm.T = m.BaseRTOEstimate
	case len(m.Recoveries) > 0:
		// Fallback: the stall before the first timeout of each sequence.
		var gap time.Duration
		for _, r := range m.Recoveries {
			gap += r.FirstTimeout - r.Start
		}
		prm.T = gap / time.Duration(len(m.Recoveries))
	}
	if prm.T <= 0 {
		prm.T = 3 * prm.RTT
		if prm.T < 400*time.Millisecond {
			prm.T = 400 * time.Millisecond
		}
	}

	switch {
	case len(m.Recoveries) > 0 && m.RecoveryLossRate > 0:
		prm.Q = clampProb(m.RecoveryLossRate)
	default:
		prm.Q = DefaultQ
	}
	return prm
}

// ParamsFromMetricsMeasuredPa is ParamsFromMetrics with P_a taken from the
// trace's measured per-round ACK-burst rate instead of the paper's p_a^w
// independence approximation. On bursty channels the two differ by many
// orders of magnitude; the model-ablation experiment contrasts them.
func ParamsFromMetricsMeasuredPa(m *analysis.FlowMetrics) Params {
	prm := ParamsFromMetrics(m)
	prm.AckBurst = clampProb(m.AckBurstRate)
	return prm
}

// clampProb keeps an estimated probability strictly inside [0, 1) so the
// geometric expectations of the model stay finite.
func clampProb(p float64) float64 {
	const maxP = 0.999
	switch {
	case p < 0:
		return 0
	case p > maxP:
		return maxP
	default:
		return p
	}
}
