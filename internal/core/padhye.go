package core

import (
	"math"
)

// Padhye evaluates the full PFTK model (Padhye, Firoiu, Towsley, Kurose,
// "Modeling TCP Reno performance", ToN 2000) — the paper's baseline — and
// returns the expected steady-state throughput in packets per second.
//
// The model assumes ACKs are never lost and that retransmissions during a
// timeout sequence are lost at the same rate p as ordinary data, the two
// assumptions the paper shows fail in high-speed mobility.
func Padhye(prm Params) (float64, error) {
	if err := prm.Validate(); err != nil {
		return 0, err
	}
	p := prm.PData
	rtt := prm.RTT.Seconds()
	t0 := prm.T.Seconds()
	b := float64(prm.B)
	wm := float64(prm.Wm)

	if p <= 0 {
		return wm / rtt, nil
	}

	// Expected window at the first loss indication (PFTK Eq. 13).
	c := (2 + b) / (3 * b)
	ew := c + math.Sqrt(8*(1-p)/(3*b*p)+c*c)

	qhat := func(w float64) float64 {
		if w <= 3 {
			return 1
		}
		return 3 / w
	}
	fp := FP(p)

	if ew < wm {
		// PFTK Eq. 30 (unconstrained window).
		num := (1-p)/p + ew/2 + qhat(ew)
		den := rtt*(b/2*ew+1) + qhat(ew)*t0*fp/(1-p)
		return num / den, nil
	}
	// PFTK Eq. 31 (receiver-window limited).
	num := (1-p)/p + wm/2 + qhat(wm)
	den := rtt*(b/8*wm+(1-p)/(p*wm)+2) + qhat(wm)*t0*fp/(1-p)
	return num / den, nil
}

// PadhyeApprox is the famous closed-form approximation (PFTK Eq. 32):
//
//	B(p) = min( Wm/RTT, 1 / (RTT*sqrt(2bp/3) + T0*min(1, 3*sqrt(3bp/8))*p*(1+32p^2)) )
//
// in packets per second.
func PadhyeApprox(prm Params) (float64, error) {
	if err := prm.Validate(); err != nil {
		return 0, err
	}
	p := prm.PData
	rtt := prm.RTT.Seconds()
	wm := float64(prm.Wm)
	if p <= 0 {
		return wm / rtt, nil
	}
	b := float64(prm.B)
	t0 := prm.T.Seconds()
	den := rtt*math.Sqrt(2*b*p/3) + t0*math.Min(1, 3*math.Sqrt(3*b*p/8))*p*(1+32*p*p)
	bw := 1 / den
	if lim := wm / rtt; bw > lim {
		bw = lim
	}
	return bw, nil
}
