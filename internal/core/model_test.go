package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// hsrParams returns parameters typical of the paper's HSR flows.
func hsrParams() Params {
	return Params{
		RTT:        80 * time.Millisecond,
		T:          600 * time.Millisecond,
		B:          2,
		Wm:         64,
		PData:      0.0075,
		PAck:       0.0066,
		Q:          0.3,
		MeanWindow: 24,
		AckBurst:   0.002,
	}
}

func TestParamsValidate(t *testing.T) {
	if err := hsrParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero RTT", func(p *Params) { p.RTT = 0 }},
		{"zero T", func(p *Params) { p.T = 0 }},
		{"b < 1", func(p *Params) { p.B = 0 }},
		{"Wm < 1", func(p *Params) { p.Wm = 0 }},
		{"PData = 1", func(p *Params) { p.PData = 1 }},
		{"negative PAck", func(p *Params) { p.PAck = -0.1 }},
		{"Q = 1", func(p *Params) { p.Q = 1 }},
		{"NaN window", func(p *Params) { p.MeanWindow = math.NaN() }},
		{"AckBurst = 1", func(p *Params) { p.AckBurst = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := hsrParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("invalid params accepted")
			}
		})
	}
}

func TestAckBurstProb(t *testing.T) {
	p := Params{PAck: 0.1, MeanWindow: 3}
	want := 0.001
	if got := p.AckBurstProb(); math.Abs(got-want) > 1e-15 {
		t.Errorf("p_a^w = %v, want %v", got, want)
	}
	p.AckBurst = 0.05 // measured value takes precedence
	if got := p.AckBurstProb(); got != 0.05 {
		t.Errorf("AckBurstProb with override = %v, want 0.05", got)
	}
	if got := (Params{PAck: 0}).AckBurstProb(); got != 0 {
		t.Errorf("AckBurstProb with no ACK loss = %v, want 0", got)
	}
	// Window below 1 clamps to 1.
	if got := (Params{PAck: 0.1, MeanWindow: 0.5}).AckBurstProb(); got != 0.1 {
		t.Errorf("AckBurstProb with tiny window = %v, want 0.1", got)
	}
}

func TestFP(t *testing.T) {
	if got := FP(0); got != 1 {
		t.Errorf("f(0) = %v, want 1", got)
	}
	if got := FP(1); got != 64 {
		t.Errorf("f(1) = %v, want 64 (1+1+2+4+8+16+32)", got)
	}
	if FP(0.5) <= FP(0.1) {
		t.Error("f(p) should be increasing")
	}
}

func TestXP(t *testing.T) {
	// Known value: pd=0.01, b=1 -> 0.5 + sqrt(2*0.99/0.03 + 0.25).
	want := 0.5 + math.Sqrt(2*0.99/0.03+0.25)
	if got := XP(0.01, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("XP(0.01, 1) = %v, want %v", got, want)
	}
	if !math.IsInf(XP(0, 2), 1) {
		t.Error("XP(0) should be +Inf")
	}
	if XP(0.1, 2) <= XP(0.2, 2) {
		t.Error("XP should decrease with loss rate")
	}
}

func TestEXLimit(t *testing.T) {
	xp := 10.0
	// L'Hopital limit: Pa -> 0 gives XP + 1, restoring the Padhye model.
	if got := EX(0, xp); got != xp+1 {
		t.Errorf("EX(Pa=0) = %v, want %v", got, xp+1)
	}
	// Continuity near zero.
	if got := EX(1e-12, xp); math.Abs(got-(xp+1)) > 1e-6 {
		t.Errorf("EX(Pa=1e-12) = %v, want ~%v", got, xp+1)
	}
	// EX is bounded by both 1/Pa and XP+1.
	if got := EX(0.5, xp); got > 2 || got < 1 {
		t.Errorf("EX(0.5, 10) = %v, want within [1, 2]", got)
	}
	// Infinite XP (no data loss): phase ends only by ACK burst.
	if got := EX(0.1, math.Inf(1)); got != 10 {
		t.Errorf("EX(0.1, Inf) = %v, want 10", got)
	}
	if !math.IsInf(EX(0, math.Inf(1)), 1) {
		t.Error("EX(0, Inf) should be +Inf")
	}
}

func TestEXDecreasingInPa(t *testing.T) {
	xp := 20.0
	prev := EX(0.001, xp)
	for _, pa := range []float64{0.01, 0.05, 0.1, 0.3, 0.6} {
		cur := EX(pa, xp)
		if cur >= prev {
			t.Errorf("EX not decreasing at Pa=%v: %v >= %v", pa, cur, prev)
		}
		prev = cur
	}
}

func TestEWFormsAgreeAtB2(t *testing.T) {
	for _, ex := range []float64{5, 10, 50} {
		if EW(ex, 2) != EWConsistent(ex, 2) {
			t.Errorf("EW forms disagree at b=2 for E[X]=%v", ex)
		}
	}
	if EW(10, 4) == EWConsistent(10, 4) {
		t.Error("EW forms should differ at b=4")
	}
}

func TestQP(t *testing.T) {
	if got := QP(2); got != 1 {
		t.Errorf("QP(2) = %v, want 1 (window <= 3)", got)
	}
	if got := QP(6); got != 0.5 {
		t.Errorf("QP(6) = %v, want 0.5", got)
	}
}

func TestQProb(t *testing.T) {
	// Pa = 0: Q reduces to Padhye's QP.
	if got := QProb(0.4, 0, 10); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("QProb(Pa=0) = %v, want 0.4", got)
	}
	// Huge Pa: timeout nearly certain.
	if got := QProb(0.1, 0.9, 10); got < 0.99 {
		t.Errorf("QProb(Pa=0.9) = %v, want ~1", got)
	}
	// Q is increasing in Pa.
	if QProb(0.3, 0.05, 10) <= QProb(0.3, 0.01, 10) {
		t.Error("QProb should increase with Pa")
	}
	// Infinite XP cases.
	if got := QProb(0.3, 0.1, math.Inf(1)); got != 1 {
		t.Errorf("QProb(Inf, Pa>0) = %v, want 1", got)
	}
	if got := QProb(0.3, 0, math.Inf(1)); got != 0 {
		t.Errorf("QProb(Inf, Pa=0) = %v, want 0", got)
	}
}

func TestTimeoutSequenceQuantities(t *testing.T) {
	p := TimeoutPersist(0.3, 0.1) // 1 - 0.7*0.9 = 0.37
	if math.Abs(p-0.37) > 1e-12 {
		t.Errorf("p = %v, want 0.37", p)
	}
	if got := ER(0.5); got != 2 {
		t.Errorf("ER(0.5) = %v, want 2", got)
	}
	if !math.IsInf(ER(1), 1) {
		t.Error("ER(1) should be +Inf")
	}
	if got := EYTO(0.5, 2); got != 0.25 {
		t.Errorf("EYTO = %v, want 0.25", got)
	}
	// EATO = T * f(p)/(1-p); for p=0 this is exactly T.
	if got := EATO(time.Second, 0); got != time.Second {
		t.Errorf("EATO(p=0) = %v, want 1s", got)
	}
	if got := EATO(time.Second, 0.5); got <= time.Second {
		t.Errorf("EATO(p=0.5) = %v, want > 1s", got)
	}
}

func TestVPAndEV(t *testing.T) {
	if !math.IsInf(VP(0, 2, 64), 1) {
		t.Error("VP(pd=0) should be +Inf")
	}
	vp := VP(0.0001, 2, 8) // large: (0.9999)/(0.0008) + 1 - 6 ~ 1245
	if vp < 1000 {
		t.Errorf("VP = %v, want > 1000", vp)
	}
	if got := EV(0, vp); got != vp {
		t.Errorf("EV(Pa=0) = %v, want VP", got)
	}
	if got := EV(0.1, math.Inf(1)); got != 10 {
		t.Errorf("EV(0.1, Inf) = %v, want 10", got)
	}
	if EV(0.2, vp) >= EV(0.01, vp) {
		t.Error("EV should decrease with Pa")
	}
}

func TestEnhancedCleanChannelIsWindowLimited(t *testing.T) {
	p := hsrParams()
	p.PData, p.PAck, p.AckBurst = 0, 0, 0
	got, err := Enhanced(p)
	if err != nil {
		t.Fatalf("Enhanced: %v", err)
	}
	want := float64(p.Wm) / p.RTT.Seconds()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("clean-channel throughput = %v, want Wm/RTT = %v", got, want)
	}
}

func TestEnhancedMonotonicity(t *testing.T) {
	base := hsrParams()
	tpBase, err := Enhanced(base)
	if err != nil {
		t.Fatalf("Enhanced: %v", err)
	}
	if tpBase <= 0 {
		t.Fatalf("baseline throughput = %v, want positive", tpBase)
	}

	worse := base
	worse.Q = 0.6
	tpQ, _ := Enhanced(worse)
	if tpQ >= tpBase {
		t.Errorf("higher q should lower throughput: %v >= %v", tpQ, tpBase)
	}

	worse = base
	worse.AckBurst = 0.02
	tpPa, _ := Enhanced(worse)
	if tpPa >= tpBase {
		t.Errorf("higher P_a should lower throughput: %v >= %v", tpPa, tpBase)
	}

	worse = base
	worse.PData = 0.03
	tpPd, _ := Enhanced(worse)
	if tpPd >= tpBase {
		t.Errorf("higher p_d should lower throughput: %v >= %v", tpPd, tpBase)
	}

	worse = base
	worse.RTT = 2 * base.RTT
	tpRTT, _ := Enhanced(worse)
	if tpRTT >= tpBase {
		t.Errorf("higher RTT should lower throughput: %v >= %v", tpRTT, tpBase)
	}
}

func TestEnhancedReducesTowardPadhyeWithoutHSREffects(t *testing.T) {
	// With P_a = 0 and q = p_d the enhanced model describes the same network
	// as Padhye's; the two derivations differ slightly, so require agreement
	// within 25% rather than equality.
	p := hsrParams()
	p.AckBurst = 0
	p.PAck = 0
	p.Q = p.PData
	enh, err := Enhanced(p)
	if err != nil {
		t.Fatalf("Enhanced: %v", err)
	}
	pad, err := Padhye(p)
	if err != nil {
		t.Fatalf("Padhye: %v", err)
	}
	ratio := enh / pad
	if ratio < 0.75 || ratio > 1.25 {
		t.Errorf("Enhanced/Padhye without HSR effects = %v, want within [0.75, 1.25] (enh=%v pad=%v)", ratio, enh, pad)
	}
}

func TestEnhancedBelowPadhyeUnderHSRConditions(t *testing.T) {
	// Under HSR conditions (high q, nonzero P_a) the enhanced model must
	// predict lower throughput than Padhye, which ignores both effects —
	// that is the whole point of the paper.
	p := hsrParams()
	enh, err := Enhanced(p)
	if err != nil {
		t.Fatalf("Enhanced: %v", err)
	}
	pad, err := Padhye(p)
	if err != nil {
		t.Fatalf("Padhye: %v", err)
	}
	if enh >= pad {
		t.Errorf("Enhanced (%v) should be below Padhye (%v) under HSR conditions", enh, pad)
	}
}

func TestEnhancedConsistentMatchesAtB2(t *testing.T) {
	// At b = 2 the two window forms coincide and the variants differ only by
	// the paper's "-1" vs the re-derived "+1" constant; they must agree
	// within a few percent.
	p := hsrParams() // b = 2
	a, err := Enhanced(p)
	if err != nil {
		t.Fatalf("Enhanced: %v", err)
	}
	b, err := EnhancedConsistent(p)
	if err != nil {
		t.Fatalf("EnhancedConsistent: %v", err)
	}
	if ratio := a / b; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("variants disagree at b=2 beyond tolerance: %v vs %v", a, b)
	}
	p.B = 4
	a, _ = Enhanced(p)
	b, _ = EnhancedConsistent(p)
	if a == b {
		t.Error("variants should differ at b=4")
	}
}

func TestPadhyeCleanChannel(t *testing.T) {
	p := hsrParams()
	p.PData = 0
	got, err := Padhye(p)
	if err != nil {
		t.Fatalf("Padhye: %v", err)
	}
	want := float64(p.Wm) / p.RTT.Seconds()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Padhye(p=0) = %v, want Wm/RTT = %v", got, want)
	}
}

func TestPadhyeDecreasingInLoss(t *testing.T) {
	p := hsrParams()
	prev := math.Inf(1)
	for _, pd := range []float64{0.0001, 0.001, 0.01, 0.05, 0.2} {
		p.PData = pd
		got, err := Padhye(p)
		if err != nil {
			t.Fatalf("Padhye(%v): %v", pd, err)
		}
		if got >= prev {
			t.Errorf("Padhye not decreasing at pd=%v: %v >= %v", pd, got, prev)
		}
		prev = got
	}
}

func TestPadhyeApproxTracksFullModel(t *testing.T) {
	p := hsrParams()
	for _, pd := range []float64{0.001, 0.005, 0.02, 0.08} {
		p.PData = pd
		full, err := Padhye(p)
		if err != nil {
			t.Fatalf("Padhye: %v", err)
		}
		approx, err := PadhyeApprox(p)
		if err != nil {
			t.Fatalf("PadhyeApprox: %v", err)
		}
		ratio := approx / full
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("approx/full at pd=%v = %v (approx=%v full=%v)", pd, ratio, approx, full)
		}
	}
}

func TestPadhyeApproxWindowCap(t *testing.T) {
	p := hsrParams()
	p.PData = 1e-9
	got, err := PadhyeApprox(p)
	if err != nil {
		t.Fatalf("PadhyeApprox: %v", err)
	}
	want := float64(p.Wm) / p.RTT.Seconds()
	if got > want+1e-9 {
		t.Errorf("PadhyeApprox = %v, want capped at Wm/RTT = %v", got, want)
	}
}

func TestDeviation(t *testing.T) {
	if got := Deviation(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Deviation(110, 100) = %v, want 0.1", got)
	}
	if got := Deviation(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Deviation(90, 100) = %v, want 0.1", got)
	}
	if got := Deviation(1, 0); !math.IsNaN(got) {
		t.Errorf("Deviation with zero actual = %v, want NaN", got)
	}
}

// Property: for random valid parameters, all three models return finite
// positive throughput no greater than the window-limited ceiling (with a
// small numerical tolerance).
func TestModelsBoundedProperty(t *testing.T) {
	f := func(pdSeed, paSeed, qSeed, rttSeed, wmSeed, bSeed uint16) bool {
		prm := Params{
			RTT:        time.Duration(20+rttSeed%400) * time.Millisecond,
			T:          time.Second,
			B:          1 + int(bSeed%4),
			Wm:         4 + int(wmSeed%128),
			PData:      float64(pdSeed%1000) / 10000, // 0 - 0.0999
			PAck:       float64(paSeed%1000) / 10000, // 0 - 0.0999
			Q:          float64(qSeed%90) / 100,      // 0 - 0.89
			MeanWindow: 1 + float64(wmSeed%64),
			AckBurst:   float64(paSeed%50) / 1000, // 0 - 0.049
		}
		ceiling := float64(prm.Wm)/prm.RTT.Seconds()*1.05 + 1
		for _, model := range []func(Params) (float64, error){Enhanced, EnhancedConsistent, Padhye, PadhyeApprox} {
			tp, err := model(prm)
			if err != nil {
				return false
			}
			if math.IsNaN(tp) || math.IsInf(tp, 0) || tp <= 0 || tp > ceiling {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
