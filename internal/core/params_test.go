package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/trace"
)

func metricsFixture() *analysis.FlowMetrics {
	return &analysis.FlowMetrics{
		Meta: trace.FlowMeta{
			ID: "fix", DelayedAckB: 2, WindowLimit: 64, MSS: 1448,
		},
		Duration:         60 * time.Second,
		MeanRTT:          80 * time.Millisecond,
		DataLossRate:     0.008,
		AckLossRate:      0.006,
		MeanWindow:       22,
		AckBurstRate:     0.0015,
		RecoveryLossRate: 0.28,
		Recoveries: []analysis.RecoveryPhase{
			{Start: 10 * time.Second, FirstTimeout: 10*time.Second + 500*time.Millisecond, End: 13 * time.Second},
			{Start: 30 * time.Second, FirstTimeout: 30*time.Second + 700*time.Millisecond, End: 31 * time.Second},
		},
	}
}

func TestParamsFromMetrics(t *testing.T) {
	prm := ParamsFromMetrics(metricsFixture())
	if err := prm.Validate(); err != nil {
		t.Fatalf("derived params invalid: %v", err)
	}
	if prm.RTT != 80*time.Millisecond {
		t.Errorf("RTT = %v, want 80ms", prm.RTT)
	}
	if prm.B != 2 || prm.Wm != 64 {
		t.Errorf("B/Wm = %d/%d, want 2/64", prm.B, prm.Wm)
	}
	if prm.PData != 0.008 || prm.PAck != 0.006 {
		t.Errorf("loss rates = %v/%v", prm.PData, prm.PAck)
	}
	if prm.Q != 0.28 {
		t.Errorf("Q = %v, want measured 0.28", prm.Q)
	}
	// Paper-faithful estimation leaves AckBurst unset (P_a = p_a^w).
	if prm.AckBurst != 0 {
		t.Errorf("AckBurst = %v, want 0 (paper uses p_a^w)", prm.AckBurst)
	}
	measured := ParamsFromMetricsMeasuredPa(metricsFixture())
	if measured.AckBurst != 0.0015 {
		t.Errorf("measured-Pa AckBurst = %v, want 0.0015", measured.AckBurst)
	}
	if err := measured.Validate(); err != nil {
		t.Errorf("measured-Pa params invalid: %v", err)
	}
	// T = mean of (500ms, 700ms) = 600ms (fallback path, no backoff gaps).
	if prm.T != 600*time.Millisecond {
		t.Errorf("T = %v, want 600ms", prm.T)
	}
}

func TestParamsFromMetricsPrefersBackoffRTO(t *testing.T) {
	m := metricsFixture()
	m.BaseRTOEstimate = 450 * time.Millisecond
	prm := ParamsFromMetrics(m)
	if prm.T != 450*time.Millisecond {
		t.Errorf("T = %v, want the backoff-derived 450ms", prm.T)
	}
}

func TestParamsFromMetricsFallbacks(t *testing.T) {
	m := metricsFixture()
	m.Recoveries = nil
	m.RecoveryLossRate = 0
	m.MeanRTT = 0
	m.Meta.DelayedAckB = 0
	m.Meta.WindowLimit = 0
	m.MeanWindow = 0
	prm := ParamsFromMetrics(m)
	if err := prm.Validate(); err != nil {
		t.Fatalf("fallback params invalid: %v", err)
	}
	if prm.Q != DefaultQ {
		t.Errorf("Q fallback = %v, want %v", prm.Q, DefaultQ)
	}
	if prm.RTT != 100*time.Millisecond {
		t.Errorf("RTT fallback = %v, want 100ms", prm.RTT)
	}
	if prm.T < 400*time.Millisecond {
		t.Errorf("T fallback = %v, want >= 400ms", prm.T)
	}
	if prm.B != 1 || prm.Wm != 64 || prm.MeanWindow != 1 {
		t.Errorf("structural fallbacks = %+v", prm)
	}
}

func TestParamsFromMetricsClampsRates(t *testing.T) {
	m := metricsFixture()
	m.DataLossRate = 1.5 // impossible, but the estimator must stay sane
	m.AckLossRate = -0.2
	prm := ParamsFromMetrics(m)
	if prm.PData >= 1 || prm.PData < 0 {
		t.Errorf("PData clamp failed: %v", prm.PData)
	}
	if prm.PAck != 0 {
		t.Errorf("PAck clamp failed: %v", prm.PAck)
	}
	if err := prm.Validate(); err != nil {
		t.Errorf("clamped params invalid: %v", err)
	}
}

func TestParamsFeedModels(t *testing.T) {
	prm := ParamsFromMetrics(metricsFixture())
	for name, model := range map[string]func(Params) (float64, error){
		"Enhanced": Enhanced, "Padhye": Padhye, "PadhyeApprox": PadhyeApprox,
	} {
		tp, err := model(prm)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if math.IsNaN(tp) || tp <= 0 {
			t.Errorf("%s = %v, want positive", name, tp)
		}
	}
}
