package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/mptcp"
	"repro/internal/railway"
	"repro/internal/stats"
)

// DelayedAckPoint is one delayed-ACK receiver setting's outcome.
type DelayedAckPoint struct {
	Label            string // "b=4" or "adaptive<=8"
	B                int
	Adaptive         bool
	MeanTputPps      float64
	MeanAcksPerSec   float64
	TimeoutSequences int
	SpuriousTimeouts int
	MeanAckLoss      float64
}

// DelayedAckResult is the Section V-A study: sweeping the delayed-ACK
// window b on the HSR channel. Fewer ACKs per round make ACK burst loss —
// and therefore spurious timeouts — more likely, which is why the paper
// warns against aggressive delayed ACKs in high-speed mobility.
type DelayedAckResult struct {
	Operator string
	Points   []DelayedAckPoint
	Flows    int
}

// DelayedAck sweeps b over {1, 2, 4, 8} on China Mobile's HSR channel.
func DelayedAck(cfg Config) (*DelayedAckResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		return nil, err
	}
	start, _ := trip.CruiseWindow()
	flows := cfg.PairsPerOperator * 2
	res := &DelayedAckResult{Operator: cellular.ChinaMobileLTE.Name, Flows: flows}
	type setting struct {
		label    string
		b        int
		adaptive bool
	}
	settings := []setting{
		{"b=1", 1, false}, {"b=2", 2, false}, {"b=4", 4, false}, {"b=8", 8, false},
		// The paper's future-work direction: TCP-DCA-style adaptive window
		// that collapses to immediate ACKs whenever the channel looks
		// disturbed.
		{"adaptive<=8", 8, true},
	}
	for _, set := range settings {
		tcpCfg := defaultTCP()
		tcpCfg.DelayedAckB = set.b
		tcpCfg.AdaptiveDelAck = set.adaptive
		var tput, acks, aloss stats.Running
		pt := DelayedAckPoint{Label: set.label, B: set.b, Adaptive: set.adaptive}
		for f := 0; f < flows; f++ {
			sc := dataset.Scenario{
				ID:           fmt.Sprintf("delack-%s-%d", set.label, f),
				Operator:     cellular.ChinaMobileLTE,
				Trip:         trip,
				TripOffset:   start + time.Duration(f)*43*time.Second,
				FlowDuration: cfg.FlowDuration,
				Seed:         cfg.Seed*211 + int64(f), // same seeds across b: paired comparison
				TCP:          tcpCfg,
				Scenario:     "hsr",
			}
			m, err := cfg.analyzeFlow(sc)
			if err != nil {
				return nil, err
			}
			tput.Add(m.ThroughputPps)
			acks.Add(float64(m.AcksSent) / cfg.FlowDuration.Seconds())
			aloss.Add(m.AckLossRate)
			pt.TimeoutSequences += m.TimeoutSequences
			pt.SpuriousTimeouts += m.SpuriousTimeouts
		}
		pt.MeanTputPps = tput.Mean()
		pt.MeanAcksPerSec = acks.Mean()
		pt.MeanAckLoss = aloss.Mean()
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render prints the sweep.
func (r *DelayedAckResult) Render() string {
	t := export.NewTable("receiver", "mean pps", "acks/s", "timeout seqs", "spurious", "p_a")
	for _, p := range r.Points {
		t.AddRow(p.Label, fmt.Sprintf("%.1f", p.MeanTputPps),
			fmt.Sprintf("%.0f", p.MeanAcksPerSec),
			fmt.Sprintf("%d", p.TimeoutSequences), fmt.Sprintf("%d", p.SpuriousTimeouts),
			export.Percent(p.MeanAckLoss))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Section V-A — delayed-ACK window sweep on %s HSR (%d flows per setting)\n", r.Operator, r.Flows)
	b.WriteString(t.Render())
	b.WriteString("fewer ACKs per round (larger b) leave fewer chances for one ACK to survive a burst — ACKs are \"precious\"\n")
	return b.String()
}

// AblationVariant is one model variant's accuracy over the campaign.
type AblationVariant struct {
	Name  string
	MeanD float64
}

// SensitivityPoint is one analytic model evaluation.
type SensitivityPoint struct {
	X   float64
	Pps float64
}

// AblationResult is the Section IV model study: which ingredients of the
// enhanced model buy the accuracy, plus analytic sensitivity curves.
type AblationResult struct {
	Variants []AblationVariant
	// Sensitivity of Eq. (21) to P_a and to q around a typical HSR flow.
	PaSweep []SensitivityPoint
	QSweep  []SensitivityPoint
}

// ModelAblation evaluates model variants on the campaign and computes the
// analytic sensitivity curves.
func ModelAblation(ctx *Context) (*AblationResult, error) {
	type variant struct {
		name string
		eval func(*analysis.FlowMetrics) (float64, error)
	}
	variants := []variant{
		{"Padhye (full)", func(m *analysis.FlowMetrics) (float64, error) {
			return core.Padhye(core.ParamsFromMetrics(m))
		}},
		{"Padhye (sqrt approx)", func(m *analysis.FlowMetrics) (float64, error) {
			return core.PadhyeApprox(core.ParamsFromMetrics(m))
		}},
		{"Enhanced (paper, Pa=p_a^w)", func(m *analysis.FlowMetrics) (float64, error) {
			return core.Enhanced(core.ParamsFromMetrics(m))
		}},
		{"Enhanced (measured Pa)", func(m *analysis.FlowMetrics) (float64, error) {
			return core.Enhanced(core.ParamsFromMetricsMeasuredPa(m))
		}},
		{"Enhanced (consistent Eq.3)", func(m *analysis.FlowMetrics) (float64, error) {
			return core.EnhancedConsistent(core.ParamsFromMetrics(m))
		}},
	}
	res := &AblationResult{}
	for _, v := range variants {
		var ds []float64
		for _, m := range ctx.HSR.Metrics() {
			tp, err := v.eval(m)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s on %s: %w", v.name, m.Meta.ID, err)
			}
			ds = append(ds, core.Deviation(tp, m.ThroughputPps))
		}
		res.Variants = append(res.Variants, AblationVariant{Name: v.name, MeanD: stats.Mean(ds)})
	}

	base := core.Params{
		RTT: 60 * time.Millisecond, T: 450 * time.Millisecond,
		B: 2, Wm: 28, PData: 0.005, PAck: 0.006, Q: 0.3, MeanWindow: 18,
	}
	for pa := 0.0; pa <= 0.051; pa += 0.005 {
		p := base
		p.AckBurst = pa
		tp, err := core.Enhanced(p)
		if err != nil {
			return nil, err
		}
		res.PaSweep = append(res.PaSweep, SensitivityPoint{X: pa, Pps: tp})
	}
	for q := 0.0; q <= 0.81; q += 0.08 {
		p := base
		p.Q = q
		tp, err := core.Enhanced(p)
		if err != nil {
			return nil, err
		}
		res.QSweep = append(res.QSweep, SensitivityPoint{X: q, Pps: tp})
	}
	return res, nil
}

// Render prints the variant table and sensitivity curves.
func (r *AblationResult) Render() string {
	t := export.NewTable("model variant", "mean D")
	for _, v := range r.Variants {
		t.AddRow(v.Name, export.Percent(v.MeanD))
	}
	var b strings.Builder
	b.WriteString("Model ablation — accuracy of model variants over the HSR campaign\n")
	b.WriteString(t.Render())

	toXY := func(pts []SensitivityPoint) []export.XY {
		out := make([]export.XY, len(pts))
		for i, p := range pts {
			out[i] = export.XY{X: p.X, Y: p.Pps}
		}
		return out
	}
	pa := export.Plot{Title: "Eq. 21 sensitivity to P_a (q=0.3 fixed)", XLabel: "P_a", YLabel: "pps", Height: 10}
	pa.Add("TP", '*', toXY(r.PaSweep))
	b.WriteString(pa.Render())
	q := export.Plot{Title: "Eq. 21 sensitivity to q (P_a=p_a^w fixed)", XLabel: "q", YLabel: "pps", Height: 10}
	q.Add("TP", '*', toXY(r.QSweep))
	b.WriteString(q.Render())
	return b.String()
}

// BackupQPoint is one seed's plain-vs-backup comparison.
type BackupQPoint struct {
	PlainQ         float64
	BackupQ        float64
	PlainRecovery  time.Duration
	BackupRecovery time.Duration
	PlainPps       float64
	BackupPps      float64
	BackupRetx     int
}

// BackupQResult is the Section V-B study: MPTCP backup-mode double
// retransmission against the recovery-phase loss rate q.
type BackupQResult struct {
	Operator string
	Points   []BackupQPoint
}

// BackupQ compares plain TCP with backup-mode MPTCP over several seeds.
func BackupQ(cfg Config) (*BackupQResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		return nil, err
	}
	start, _ := trip.CruiseWindow()
	res := &BackupQResult{Operator: cellular.ChinaMobileLTE.Name}
	for i := 0; i < cfg.PairsPerOperator; i++ {
		sc := dataset.Scenario{
			ID:           fmt.Sprintf("backupq-%d", i),
			Operator:     cellular.ChinaMobileLTE,
			Trip:         trip,
			TripOffset:   start + time.Duration(i)*47*time.Second,
			FlowDuration: cfg.FlowDuration,
			Seed:         cfg.Seed*389 + int64(i),
			TCP:          defaultTCP(),
			Scenario:     "hsr",
		}
		plain, err := cfg.analyzeFlow(sc)
		if err != nil {
			return nil, err
		}
		backup, err := mptcp.RunBackup(sc)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, BackupQPoint{
			PlainQ:         plain.RecoveryLossRate,
			BackupQ:        backup.Metrics.RecoveryLossRate,
			PlainRecovery:  plain.MeanRecoveryDuration,
			BackupRecovery: backup.Metrics.MeanRecoveryDuration,
			PlainPps:       plain.ThroughputPps,
			BackupPps:      backup.Metrics.ThroughputPps,
			BackupRetx:     backup.BackupRetransmits,
		})
	}
	return res, nil
}

// Means returns the study's aggregate quantities.
func (r *BackupQResult) Means() (plainQ, backupQ float64, plainRec, backupRec time.Duration) {
	var pq, bq stats.Running
	var pr, br time.Duration
	for _, p := range r.Points {
		pq.Add(p.PlainQ)
		bq.Add(p.BackupQ)
		pr += p.PlainRecovery
		br += p.BackupRecovery
	}
	n := time.Duration(len(r.Points))
	if n == 0 {
		return 0, 0, 0, 0
	}
	return pq.Mean(), bq.Mean(), pr / n, br / n
}

// Render prints the comparison.
func (r *BackupQResult) Render() string {
	t := export.NewTable("seed", "plain q", "backup q", "plain recovery", "backup recovery", "plain pps", "backup pps", "backup retx")
	for i, p := range r.Points {
		t.AddRow(fmt.Sprintf("%d", i),
			export.Percent(p.PlainQ), export.Percent(p.BackupQ),
			fmt.Sprintf("%.2fs", p.PlainRecovery.Seconds()), fmt.Sprintf("%.2fs", p.BackupRecovery.Seconds()),
			fmt.Sprintf("%.1f", p.PlainPps), fmt.Sprintf("%.1f", p.BackupPps),
			fmt.Sprintf("%d", p.BackupRetx))
	}
	pq, bq, pr, br := r.Means()
	var b strings.Builder
	fmt.Fprintf(&b, "Section V-B — MPTCP backup-mode double retransmission (%s HSR)\n", r.Operator)
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "means: q %s -> %s; recovery %.2fs -> %.2fs\n",
		export.Percent(pq), export.Percent(bq), pr.Seconds(), br.Seconds())
	return b.String()
}
