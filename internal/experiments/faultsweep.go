package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/faults"
	"repro/internal/railway"
	"repro/internal/stats"
)

// FaultPoint is one fault-severity level's outcome.
type FaultPoint struct {
	Severity         float64
	MeanTputPps      float64
	MeanAckLoss      float64       // p_a
	MeanRecLoss      float64       // q, the recovery-phase retransmission loss
	TimeoutSequences int           // summed over the level's flows
	SpuriousTimeouts int           // summed over the level's flows
	MeanRecovery     time.Duration // mean timeout-recovery duration
	PadhyeDev        float64       // mean |D| of the Padhye model
	EnhancedDev      float64       // mean |D| of the enhanced model (Eq. 21)
}

// FaultSweepResult is the fault-injection severity sweep: the same carrier
// and seeds under the canonical stress schedule (faults.Stress) scaled from
// benign to beyond-scripted intensity. It is the robustness counterpart of
// the paper's Figure 10 claim — as injected blackouts, handoff storms and
// ACK bursts intensify exactly the q and P_a conditions behind the paper's
// 5.05 s recoveries and 49.24 % spurious RTOs, the enhanced model should
// degrade gracefully where Padhye's diverges.
type FaultSweepResult struct {
	Operator string
	Schedule string // canonical DSL of the severity-1 schedule
	Flows    int    // flows per severity level
	Points   []FaultPoint
}

// faultSeverities are the sweep levels: baseline, half, scripted, and
// beyond-scripted intensity.
var faultSeverities = []float64{0, 0.5, 1, 1.5, 2}

// FaultSweep runs the fault-injection severity sweep on China Mobile LTE.
// All fault randomness derives from the flow seeds on dedicated streams, so
// the sweep is deterministic for a given (seed, schedule) at any
// parallelism.
func FaultSweep(cfg Config) (*FaultSweepResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sched := faults.Stress(cfg.FlowDuration)
	flows := cfg.PairsPerOperator * 2
	res := &FaultSweepResult{
		Operator: cellular.ChinaMobileLTE.Name,
		Schedule: sched.String(),
		Flows:    flows,
	}
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		return nil, err
	}
	offsetBase, _ := trip.CruiseWindow()
	for _, sev := range faultSeverities {
		scaled := sched.Scale(sev)
		pt := FaultPoint{Severity: sev}
		var tput, aloss, rloss, padDev, enhDev stats.Running
		var rec time.Duration
		var recN int
		for i := 0; i < flows; i++ {
			sc := dataset.Scenario{
				ID:           fmt.Sprintf("fault-%.2f-%d", sev, i),
				Operator:     cellular.ChinaMobileLTE,
				Trip:         trip,
				TripOffset:   offsetBase + time.Duration(i)*29*time.Second,
				FlowDuration: cfg.FlowDuration,
				Seed:         cfg.Seed*613 + int64(i),
				TCP:          defaultTCP(),
				Scenario:     "faults",
				Faults:       scaled,
			}
			m, err := cfg.analyzeFlow(sc)
			if err != nil {
				return nil, fmt.Errorf("experiments: fault sweep severity %.2f: %w", sev, err)
			}
			tput.Add(m.ThroughputPps)
			aloss.Add(m.AckLossRate)
			rloss.Add(m.RecoveryLossRate)
			pt.TimeoutSequences += m.TimeoutSequences
			pt.SpuriousTimeouts += m.SpuriousTimeouts
			if len(m.Recoveries) > 0 {
				rec += m.MeanRecoveryDuration
				recN++
			}
			prm := core.ParamsFromMetrics(m)
			if pad, err := core.Padhye(prm); err == nil {
				if d := math.Abs(core.Deviation(pad, m.ThroughputPps)); !math.IsNaN(d) {
					padDev.Add(d)
				}
			}
			if enh, err := core.Enhanced(prm); err == nil {
				if d := math.Abs(core.Deviation(enh, m.ThroughputPps)); !math.IsNaN(d) {
					enhDev.Add(d)
				}
			}
		}
		pt.MeanTputPps = tput.Mean()
		pt.MeanAckLoss = aloss.Mean()
		pt.MeanRecLoss = rloss.Mean()
		pt.PadhyeDev = padDev.Mean()
		pt.EnhancedDev = enhDev.Mean()
		if recN > 0 {
			pt.MeanRecovery = rec / time.Duration(recN)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render prints the sweep.
func (r *FaultSweepResult) Render() string {
	t := export.NewTable("severity", "mean pps", "p_a", "q", "TO seqs", "spurious",
		"mean recovery", "Padhye |D|", "enhanced |D|")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.2f", p.Severity), fmt.Sprintf("%.1f", p.MeanTputPps),
			export.Percent(p.MeanAckLoss), export.Percent(p.MeanRecLoss),
			fmt.Sprintf("%d", p.TimeoutSequences), fmt.Sprintf("%d", p.SpuriousTimeouts),
			fmt.Sprintf("%.2fs", p.MeanRecovery.Seconds()),
			export.Percent(p.PadhyeDev), export.Percent(p.EnhancedDev))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fault-injection severity sweep — %s, %d flows per level\n", r.Operator, r.Flows)
	fmt.Fprintf(&b, "schedule (severity 1): %s\n", r.Schedule)
	b.WriteString(t.Render())
	b.WriteString("injected blackouts/storms/ACK bursts intensify q and P_a; the enhanced model should stay closer than Padhye as severity grows\n")
	return b.String()
}

// CSVTable exports the sweep series.
func (r *FaultSweepResult) CSVTable() *export.Table {
	t := export.NewTable("severity", "mean_pps", "p_a", "q", "timeout_seqs", "spurious",
		"mean_recovery_s", "padhye_dev", "enhanced_dev")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%g", p.Severity), fmt.Sprintf("%g", p.MeanTputPps),
			fmt.Sprintf("%g", p.MeanAckLoss), fmt.Sprintf("%g", p.MeanRecLoss),
			fmt.Sprintf("%d", p.TimeoutSequences), fmt.Sprintf("%d", p.SpuriousTimeouts),
			fmt.Sprintf("%g", p.MeanRecovery.Seconds()),
			fmt.Sprintf("%g", p.PadhyeDev), fmt.Sprintf("%g", p.EnhancedDev))
	}
	return t
}
