package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/railway"
	"repro/internal/stats"
)

// EifelPoint is one seed's plain-vs-Eifel comparison.
type EifelPoint struct {
	PlainPps           float64
	EifelPps           float64
	Timeouts           int
	SpuriousRecoveries int64
}

// EifelResult studies the Eifel-style spurious-RTO response
// (tcp.Config.SpuriousRTORecovery) on the HSR channel: since roughly half
// (in our channel most) timeouts are spurious, undoing the needless window
// collapse should recover part of the throughput the paper shows being
// lost — an experiment the paper's findings directly motivate.
type EifelResult struct {
	Operator  string
	Points    []EifelPoint
	MeanGain  float64 // mean relative throughput gain
	TotalUndo int64   // total recoveries classified spurious and undone
}

// Eifel runs the comparison over several seeds on China Mobile's channel.
func Eifel(cfg Config) (*EifelResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		return nil, err
	}
	start, _ := trip.CruiseWindow()
	res := &EifelResult{Operator: cellular.ChinaMobileLTE.Name}
	var gains []float64
	for i := 0; i < cfg.PairsPerOperator*2; i++ {
		base := dataset.Scenario{
			ID:           fmt.Sprintf("eifel-%d", i),
			Operator:     cellular.ChinaMobileLTE,
			Trip:         trip,
			TripOffset:   start + time.Duration(i)*31*time.Second,
			FlowDuration: cfg.FlowDuration,
			Seed:         cfg.Seed*613 + int64(i),
			TCP:          defaultTCP(),
			Scenario:     "hsr",
		}
		_, plainStats, err := dataset.RunFlow(base)
		if err != nil {
			return nil, err
		}
		withEifel := base
		withEifel.TCP.SpuriousRTORecovery = true
		_, eifelStats, err := dataset.RunFlow(withEifel)
		if err != nil {
			return nil, err
		}
		pt := EifelPoint{
			PlainPps:           plainStats.ThroughputPps(),
			EifelPps:           eifelStats.ThroughputPps(),
			Timeouts:           int(eifelStats.Timeouts),
			SpuriousRecoveries: eifelStats.SpuriousRecoveries,
		}
		res.Points = append(res.Points, pt)
		res.TotalUndo += pt.SpuriousRecoveries
		if pt.PlainPps > 0 {
			gains = append(gains, (pt.EifelPps-pt.PlainPps)/pt.PlainPps)
		}
	}
	res.MeanGain = stats.Mean(gains)
	return res, nil
}

// Render prints the study.
func (r *EifelResult) Render() string {
	t := export.NewTable("flow", "plain pps", "eifel pps", "gain", "timeouts", "undone")
	for i, p := range r.Points {
		gain := 0.0
		if p.PlainPps > 0 {
			gain = (p.EifelPps - p.PlainPps) / p.PlainPps
		}
		t.AddRow(fmt.Sprintf("%d", i),
			fmt.Sprintf("%.1f", p.PlainPps), fmt.Sprintf("%.1f", p.EifelPps),
			export.Percent(gain), fmt.Sprintf("%d", p.Timeouts),
			fmt.Sprintf("%d", p.SpuriousRecoveries))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Eifel-style spurious-RTO response on %s HSR\n", r.Operator)
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "mean throughput gain %s; %d spurious recoveries undone\n",
		export.Percent(r.MeanGain), r.TotalUndo)
	return b.String()
}

// SensitivityLevel is one handoff-duration scale factor's outcome.
type SensitivityLevel struct {
	Scale        float64
	MeanRecovery time.Duration
	MeanDPadhye  float64
	MeanDEnh     float64
	MeanTputPps  float64
}

// ChannelSensitivityResult sweeps the handoff outage duration (the
// mechanism behind the paper's two findings) and shows how the Padhye
// model's error grows with outage length while the enhanced model tracks —
// the dose-response curve behind Fig 10.
type ChannelSensitivityResult struct {
	Operator string
	Levels   []SensitivityLevel
}

// ChannelSensitivity scales China Mobile's handoff windows by 0.5x, 1x and
// 2x and evaluates both models at each level.
func ChannelSensitivity(cfg Config) (*ChannelSensitivityResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		return nil, err
	}
	start, _ := trip.CruiseWindow()
	res := &ChannelSensitivityResult{Operator: cellular.ChinaMobileLTE.Name}
	for _, scale := range []float64{0.5, 1, 2} {
		op := cellular.ChinaMobileLTE
		op.HandoffMin = time.Duration(float64(op.HandoffMin) * scale)
		op.HandoffMax = time.Duration(float64(op.HandoffMax) * scale)
		var rec time.Duration
		var recN int
		var padDs, enhDs, tputs []float64
		for i := 0; i < cfg.PairsPerOperator*2; i++ {
			sc := dataset.Scenario{
				ID:           fmt.Sprintf("sens-%.1f-%d", scale, i),
				Operator:     op,
				Trip:         trip,
				TripOffset:   start + time.Duration(i)*31*time.Second,
				FlowDuration: cfg.FlowDuration,
				Seed:         cfg.Seed*827 + int64(i),
				TCP:          defaultTCP(),
				Scenario:     "hsr",
			}
			m, err := cfg.analyzeFlow(sc)
			if err != nil {
				return nil, err
			}
			prm := core.ParamsFromMetrics(m)
			pad, err := core.Padhye(prm)
			if err != nil {
				return nil, err
			}
			enh, err := core.Enhanced(prm)
			if err != nil {
				return nil, err
			}
			padDs = append(padDs, core.Deviation(pad, m.ThroughputPps))
			enhDs = append(enhDs, core.Deviation(enh, m.ThroughputPps))
			tputs = append(tputs, m.ThroughputPps)
			if len(m.Recoveries) > 0 {
				rec += m.MeanRecoveryDuration
				recN++
			}
		}
		lvl := SensitivityLevel{
			Scale:       scale,
			MeanDPadhye: stats.Mean(padDs),
			MeanDEnh:    stats.Mean(enhDs),
			MeanTputPps: stats.Mean(tputs),
		}
		if recN > 0 {
			lvl.MeanRecovery = rec / time.Duration(recN)
		}
		res.Levels = append(res.Levels, lvl)
	}
	return res, nil
}

// Render prints the sweep.
func (r *ChannelSensitivityResult) Render() string {
	t := export.NewTable("handoff scale", "mean recovery", "mean pps", "mean D Padhye", "mean D enhanced")
	for _, l := range r.Levels {
		t.AddRow(fmt.Sprintf("%.1fx", l.Scale),
			fmt.Sprintf("%.2fs", l.MeanRecovery.Seconds()),
			fmt.Sprintf("%.1f", l.MeanTputPps),
			export.Percent(l.MeanDPadhye), export.Percent(l.MeanDEnh))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Channel ablation — handoff outage duration sweep (%s)\n", r.Operator)
	b.WriteString(t.Render())
	b.WriteString("longer outages lengthen recoveries and widen Padhye's error; the enhanced model tracks\n")
	return b.String()
}
