package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cellular"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/railway"
	"repro/internal/stats"
	"repro/internal/tcp"
)

// VariantOutcome summarizes one congestion-control variant on the HSR
// channel.
type VariantOutcome struct {
	Name             string
	MeanTputPps      float64
	TimeoutSequences int
	SpuriousTimeouts int
	MeanRecovery     time.Duration
}

// VariantsResult compares TCP Reno (the paper's subject) with NewReno on
// the same HSR flows. The paper models Reno "since TCP Reno is the basis of
// the other TCP versions"; this extension quantifies how much of the HSR
// damage NewReno's partial-ACK recovery repairs — and how much remains,
// because handoff outages stall ACKs entirely and no dup-ACK machinery can
// help then.
type VariantsResult struct {
	Operator string
	Outcomes []VariantOutcome
	Flows    int
}

// Variants runs both variants over paired seeds on China Mobile's channel.
func Variants(cfg Config) (*VariantsResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		return nil, err
	}
	start, _ := trip.CruiseWindow()
	flows := cfg.PairsPerOperator * 2
	res := &VariantsResult{Operator: cellular.ChinaMobileLTE.Name, Flows: flows}
	for _, v := range []tcp.Variant{tcp.VariantReno, tcp.VariantNewReno} {
		tcpCfg := defaultTCP()
		tcpCfg.Variant = v
		var tput stats.Running
		var rec time.Duration
		var recN int
		out := VariantOutcome{Name: v.String()}
		for i := 0; i < flows; i++ {
			sc := dataset.Scenario{
				ID:           fmt.Sprintf("variant-%s-%d", v, i),
				Operator:     cellular.ChinaMobileLTE,
				Trip:         trip,
				TripOffset:   start + time.Duration(i)*31*time.Second,
				FlowDuration: cfg.FlowDuration,
				Seed:         cfg.Seed*449 + int64(i), // paired across variants
				TCP:          tcpCfg,
				Scenario:     "hsr",
			}
			m, err := cfg.analyzeFlow(sc)
			if err != nil {
				return nil, err
			}
			tput.Add(m.ThroughputPps)
			out.TimeoutSequences += m.TimeoutSequences
			out.SpuriousTimeouts += m.SpuriousTimeouts
			if len(m.Recoveries) > 0 {
				rec += m.MeanRecoveryDuration
				recN++
			}
		}
		out.MeanTputPps = tput.Mean()
		if recN > 0 {
			out.MeanRecovery = rec / time.Duration(recN)
		}
		res.Outcomes = append(res.Outcomes, out)
	}
	return res, nil
}

// ByName returns the outcome for a variant name.
func (r *VariantsResult) ByName(name string) (VariantOutcome, bool) {
	for _, o := range r.Outcomes {
		if o.Name == name {
			return o, true
		}
	}
	return VariantOutcome{}, false
}

// Render prints the comparison.
func (r *VariantsResult) Render() string {
	t := export.NewTable("variant", "mean pps", "timeout seqs", "spurious", "mean recovery")
	for _, o := range r.Outcomes {
		t.AddRow(o.Name, fmt.Sprintf("%.1f", o.MeanTputPps),
			fmt.Sprintf("%d", o.TimeoutSequences), fmt.Sprintf("%d", o.SpuriousTimeouts),
			fmt.Sprintf("%.2fs", o.MeanRecovery.Seconds()))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Variant comparison — Reno vs NewReno on %s HSR (%d flows each)\n", r.Operator, r.Flows)
	b.WriteString(t.Render())
	b.WriteString("NewReno repairs multi-loss windows but not the ACK-starved handoff timeouts —\n")
	b.WriteString("the paper's HSR bottlenecks are variant-independent\n")
	return b.String()
}
