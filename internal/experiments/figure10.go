package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/stats"
)

// ModelFit is one flow's model-vs-measurement comparison.
type ModelFit struct {
	FlowID     string
	Operator   string
	ActualPps  float64
	PadhyePps  float64
	EnhPps     float64
	DPadhye    float64 // the paper's D, Eq. (22)
	DEnhanced  float64
	Params     core.Params
	WindowCase bool // true when the window-limited branch applied
}

// Figure10Operator aggregates one carrier.
type Figure10Operator struct {
	Name         string
	Flows        []ModelFit
	MeanDPadhye  float64
	MeanDEnh     float64
	MedianDPad   float64
	MedianDEnh   float64
	WorstDPadhye float64
}

// Figure10Result reproduces the model-accuracy comparison (paper Fig 10):
// the absolute deviation D of the Padhye model and of the enhanced model,
// per flow and averaged per carrier. The paper reports mean D dropping from
// 21.96% (Padhye) to 5.66% (enhanced).
type Figure10Result struct {
	Operators   []Figure10Operator
	MeanDPadhye float64
	MeanDEnh    float64
	PaperDPad   float64
	PaperDEnh   float64
	ImprovePts  float64 // percentage-point improvement
}

// Figure10 evaluates both models on every flow of the HSR campaign.
func Figure10(ctx *Context) (*Figure10Result, error) {
	res := &Figure10Result{PaperDPad: 0.2196, PaperDEnh: 0.0566}
	names, groups := ctx.HSR.ByOperator()
	var allPad, allEnh []float64
	for _, name := range names {
		op := Figure10Operator{Name: name}
		var padDs, enhDs []float64
		for _, m := range groups[name] {
			fit, err := fitModels(m)
			if err != nil {
				return nil, err
			}
			op.Flows = append(op.Flows, fit)
			padDs = append(padDs, fit.DPadhye)
			enhDs = append(enhDs, fit.DEnhanced)
			if fit.DPadhye > op.WorstDPadhye {
				op.WorstDPadhye = fit.DPadhye
			}
		}
		op.MeanDPadhye = stats.Mean(padDs)
		op.MeanDEnh = stats.Mean(enhDs)
		op.MedianDPad = stats.Median(padDs)
		op.MedianDEnh = stats.Median(enhDs)
		allPad = append(allPad, padDs...)
		allEnh = append(allEnh, enhDs...)
		res.Operators = append(res.Operators, op)
	}
	res.MeanDPadhye = stats.Mean(allPad)
	res.MeanDEnh = stats.Mean(allEnh)
	res.ImprovePts = res.MeanDPadhye - res.MeanDEnh
	return res, nil
}

// fitModels estimates parameters from one flow and evaluates both models.
func fitModels(m *analysis.FlowMetrics) (ModelFit, error) {
	prm := core.ParamsFromMetrics(m)
	pad, err := core.Padhye(prm)
	if err != nil {
		return ModelFit{}, fmt.Errorf("experiments: padhye on %s: %w", m.Meta.ID, err)
	}
	enh, err := core.Enhanced(prm)
	if err != nil {
		return ModelFit{}, fmt.Errorf("experiments: enhanced on %s: %w", m.Meta.ID, err)
	}
	return ModelFit{
		FlowID:    m.Meta.ID,
		Operator:  m.Meta.Operator,
		ActualPps: m.ThroughputPps,
		PadhyePps: pad,
		EnhPps:    enh,
		DPadhye:   core.Deviation(pad, m.ThroughputPps),
		DEnhanced: core.Deviation(enh, m.ThroughputPps),
		Params:    prm,
	}, nil
}

// Render prints the per-carrier comparison.
func (r *Figure10Result) Render() string {
	t := export.NewTable("provider", "flows", "mean D Padhye", "mean D enhanced", "median D Padhye", "median D enhanced", "worst D Padhye")
	for _, op := range r.Operators {
		t.AddRow(op.Name, fmt.Sprintf("%d", len(op.Flows)),
			export.Percent(op.MeanDPadhye), export.Percent(op.MeanDEnh),
			export.Percent(op.MedianDPad), export.Percent(op.MedianDEnh),
			export.Percent(op.WorstDPadhye))
	}
	var b strings.Builder
	b.WriteString("Fig 10 — model accuracy: deviation D = |TP_model - TP_trace| / TP_trace\n")
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "overall mean D: Padhye %s (paper 21.96%%), enhanced %s (paper 5.66%%), improvement %.1f points (paper 16.3)\n",
		export.Percent(r.MeanDPadhye), export.Percent(r.MeanDEnh), r.ImprovePts*100)
	return b.String()
}
