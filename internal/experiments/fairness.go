package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cellular"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/faults"
	"repro/internal/railway"
	"repro/internal/tcp"
	"repro/internal/telemetry"
)

// fairnessFlowsPerGroup is how many same-variant flows contend for the
// shared cell in each fairness group.
const fairnessFlowsPerGroup = 4

// FairnessGroup is one shared-bottleneck contention group: n flows over one
// emulated cell, with per-flow outcomes and Jain's fairness index.
type FairnessGroup struct {
	Label     string // "<variant>/<condition>" or "mix/<condition>"
	Condition string // "clean" or "storm"
	Jain      float64
	Flows     []dataset.ContendedResult
}

// AggregateTputPps sums the group's per-flow throughputs.
func (g *FairnessGroup) AggregateTputPps() float64 {
	var sum float64
	for _, f := range g.Flows {
		sum += f.ThroughputPps()
	}
	return sum
}

// Retransmissions sums the group's retransmission counts.
func (g *FairnessGroup) Retransmissions() int64 {
	var n int64
	for _, f := range g.Flows {
		n += f.Stats.Retransmissions
	}
	return n
}

// telemetryGroup converts the group to its report form.
func (g *FairnessGroup) telemetryGroup(experiment string) telemetry.CCGroup {
	out := telemetry.CCGroup{Experiment: experiment, Label: g.Label, JainIndex: g.Jain}
	for _, f := range g.Flows {
		out.Flows = append(out.Flows, telemetry.CCFlowResult{
			ID:              f.ID,
			CC:              f.CC,
			ThroughputPps:   f.ThroughputPps(),
			Retransmissions: f.Stats.Retransmissions,
			Timeouts:        f.Stats.Timeouts,
			FastRetransmits: f.Stats.FastRetransmits,
		})
	}
	return out
}

// FairnessResult compares intra-variant fairness: for every congestion-
// control variant, N same-variant flows share one cell, on a clean HSR
// channel and again under a handoff-storm fault schedule.
type FairnessResult struct {
	Operator string
	Groups   []FairnessGroup
}

// fairnessConditions are the channel conditions every group runs under:
// the plain HSR channel, and the same channel with the scripted stress
// schedule (handoff storm, blackout, ACK burst, rate collapse) layered on.
func fairnessConditions(flowDur time.Duration) []struct {
	name     string
	schedule *faults.Schedule
} {
	return []struct {
		name     string
		schedule *faults.Schedule
	}{
		{name: "clean"},
		{name: "storm", schedule: faults.Stress(flowDur)},
	}
}

// contendedGroup runs one shared-bottleneck group of len(variants) flows,
// one per listed variant (repeat a variant to get same-CC contention).
// Seeds are derived from cfg.Seed, the group ordinal and the flow index, so
// every group is reproducible and distinct.
func contendedGroup(cfg Config, trip railway.Trip, start time.Duration,
	groupOrdinal int64, variants []tcp.Variant, schedule *faults.Schedule) ([]dataset.ContendedResult, error) {
	flows := make([]dataset.Scenario, len(variants))
	for i, v := range variants {
		tcpCfg := defaultTCP()
		tcpCfg.Variant = v
		flows[i] = dataset.Scenario{
			ID:           fmt.Sprintf("cc-%d-%s-%d", groupOrdinal, v, i),
			Operator:     cellular.ChinaMobileLTE,
			Trip:         trip,
			TripOffset:   start + time.Duration(i)*17*time.Second,
			FlowDuration: cfg.FlowDuration,
			Seed:         cfg.Seed*700_001 + groupOrdinal*10_007 + int64(i),
			TCP:          tcpCfg,
			Scenario:     "hsr",
			Faults:       schedule,
		}
	}
	return dataset.RunContended(dataset.ContendedConfig{Flows: flows})
}

// Fairness runs the intra-variant shared-bottleneck comparison.
func Fairness(cfg Config) (*FairnessResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		return nil, err
	}
	start, _ := trip.CruiseWindow()
	res := &FairnessResult{Operator: cellular.ChinaMobileLTE.Name}
	ordinal := int64(0)
	for _, v := range tcp.Variants() {
		variants := make([]tcp.Variant, fairnessFlowsPerGroup)
		for i := range variants {
			variants[i] = v
		}
		for _, cond := range fairnessConditions(cfg.FlowDuration) {
			ordinal++
			flows, err := contendedGroup(cfg, trip, start, ordinal, variants, cond.schedule)
			if err != nil {
				return nil, err
			}
			tputs := make([]float64, len(flows))
			for i, f := range flows {
				tputs[i] = f.ThroughputPps()
			}
			res.Groups = append(res.Groups, FairnessGroup{
				Label:     v.String() + "/" + cond.name,
				Condition: cond.name,
				Jain:      dataset.JainIndex(tputs),
				Flows:     flows,
			})
		}
	}
	return res, nil
}

// Render prints the per-variant fairness table.
func (r *FairnessResult) Render() string {
	t := export.NewTable("group", "flows", "sum pps", "jain", "retx", "timeouts", "fast retx")
	for i := range r.Groups {
		g := &r.Groups[i]
		var timeouts, fastRetx int64
		for _, f := range g.Flows {
			timeouts += f.Stats.Timeouts
			fastRetx += f.Stats.FastRetransmits
		}
		t.AddRow(g.Label, fmt.Sprintf("%d", len(g.Flows)),
			fmt.Sprintf("%.1f", g.AggregateTputPps()), fmt.Sprintf("%.4f", g.Jain),
			fmt.Sprintf("%d", g.Retransmissions()),
			fmt.Sprintf("%d", timeouts), fmt.Sprintf("%d", fastRetx))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Shared-bottleneck fairness — %d same-variant flows per group on %s HSR\n",
		fairnessFlowsPerGroup, r.Operator)
	b.WriteString(t.Render())
	b.WriteString("Jain's index over per-flow throughput: 1.0 = perfectly fair.\n")
	b.WriteString("Storm groups layer the scripted stress schedule (handoff storm, blackout,\n")
	b.WriteString("ACK burst, rate collapse) over every contending flow.\n")
	return b.String()
}

// CCMixResult is the heterogeneous counterpart: one flow per variant, all
// five sharing the cell, clean and under the stress schedule — the mixed-CC
// regime of Poojary & Sharma.
type CCMixResult struct {
	Operator string
	Groups   []FairnessGroup
}

// CCMix runs the mixed-variant shared-bottleneck comparison.
func CCMix(cfg Config) (*CCMixResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		return nil, err
	}
	start, _ := trip.CruiseWindow()
	res := &CCMixResult{Operator: cellular.ChinaMobileLTE.Name}
	// Ordinals continue past the fairness groups so the two experiments
	// never share flow seeds.
	ordinal := int64(1000)
	for _, cond := range fairnessConditions(cfg.FlowDuration) {
		ordinal++
		flows, err := contendedGroup(cfg, trip, start, ordinal, tcp.Variants(), cond.schedule)
		if err != nil {
			return nil, err
		}
		tputs := make([]float64, len(flows))
		for i, f := range flows {
			tputs[i] = f.ThroughputPps()
		}
		res.Groups = append(res.Groups, FairnessGroup{
			Label:     "mix/" + cond.name,
			Condition: cond.name,
			Jain:      dataset.JainIndex(tputs),
			Flows:     flows,
		})
	}
	return res, nil
}

// Render prints the per-variant share table for each mixed group.
func (r *CCMixResult) Render() string {
	t := export.NewTable("group", "cc", "pps", "share", "retx", "timeouts", "fast retx")
	for i := range r.Groups {
		g := &r.Groups[i]
		total := g.AggregateTputPps()
		for _, f := range g.Flows {
			share := 0.0
			if total > 0 {
				share = f.ThroughputPps() / total
			}
			t.AddRow(g.Label, f.CC, fmt.Sprintf("%.1f", f.ThroughputPps()),
				fmt.Sprintf("%.1f%%", share*100), fmt.Sprintf("%d", f.Stats.Retransmissions),
				fmt.Sprintf("%d", f.Stats.Timeouts), fmt.Sprintf("%d", f.Stats.FastRetransmits))
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Mixed congestion control — one flow per variant sharing one %s cell\n", r.Operator)
	b.WriteString(t.Render())
	for i := range r.Groups {
		g := &r.Groups[i]
		fmt.Fprintf(&b, "%s: Jain %.4f over %d heterogeneous flows\n", g.Label, g.Jain, len(g.Flows))
	}
	return b.String()
}
