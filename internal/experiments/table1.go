package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/stats"
)

// Table1Row pairs one row of the paper's Table I with the synthetic
// campaign's measurements for that row.
type Table1Row struct {
	Row dataset.TableRow

	SimFlows      int
	SimGB         float64 // payload delivered across the row's flows
	MeanTputMbps  float64
	MeanDataLoss  float64
	MeanAckLoss   float64
	TimeoutSeqSum int
}

// Table1Result reproduces the dataset summary (paper Table I).
type Table1Result struct {
	Rows        []Table1Row
	TotalFlows  int
	TotalSimGB  float64
	PaperFlows  int
	PaperGB     float64
	FlowSeconds float64
}

// Table1 summarizes the HSR campaign in the shape of the paper's Table I.
func Table1(ctx *Context) *Table1Result {
	res := &Table1Result{PaperFlows: 255, PaperGB: 40.47}
	byRow := map[string][]*rowAgg{}
	order := []string{}
	for _, r := range ctx.HSR.Results {
		k := r.Row.Month + "|" + r.Row.Operator.Name
		if _, ok := byRow[k]; !ok {
			order = append(order, k)
		}
		byRow[k] = append(byRow[k], &rowAgg{res: r})
	}
	for _, k := range order {
		aggs := byRow[k]
		row := Table1Row{Row: aggs[0].res.Row, SimFlows: len(aggs)}
		var tput, dloss, aloss stats.Running
		for _, a := range aggs {
			m := a.res.Metrics
			row.SimGB += float64(m.UniqueDelivered) * float64(m.Meta.MSS) / 1e9
			tput.Add(m.ThroughputBps / 1e6)
			dloss.Add(m.DataLossRate)
			aloss.Add(m.AckLossRate)
			row.TimeoutSeqSum += m.TimeoutSequences
		}
		row.MeanTputMbps = tput.Mean()
		row.MeanDataLoss = dloss.Mean()
		row.MeanAckLoss = aloss.Mean()
		res.Rows = append(res.Rows, row)
		res.TotalFlows += row.SimFlows
		res.TotalSimGB += row.SimGB
	}
	res.FlowSeconds = ctx.Cfg.FlowDuration.Seconds() * float64(res.TotalFlows)
	return res
}

type rowAgg struct{ res dataset.FlowResult }

// Render implements the textual table.
func (r *Table1Result) Render() string {
	t := export.NewTable("Month", "Provider", "Paper flows", "Paper GB", "Sim flows", "Sim GB", "Mean Mbps", "p_d", "p_a", "TO seqs")
	for _, row := range r.Rows {
		t.AddRow(
			row.Row.Month, row.Row.Operator.Name,
			fmt.Sprintf("%d", row.Row.Flows), fmt.Sprintf("%.2f", row.Row.TraceGB),
			fmt.Sprintf("%d", row.SimFlows), fmt.Sprintf("%.3f", row.SimGB),
			fmt.Sprintf("%.2f", row.MeanTputMbps),
			export.Percent(row.MeanDataLoss), export.Percent(row.MeanAckLoss),
			fmt.Sprintf("%d", row.TimeoutSeqSum),
		)
	}
	var b strings.Builder
	b.WriteString("Table I — dataset (paper vs synthetic campaign)\n")
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "totals: paper %d flows / %.2f GB; campaign %d flows / %.3f GB simulated payload (%.0f flow-seconds)\n",
		r.PaperFlows, r.PaperGB, r.TotalFlows, r.TotalSimGB, r.FlowSeconds)
	return b.String()
}
