package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// ValidationPoint is one loss-rate level of the static-channel sweep.
type ValidationPoint struct {
	PData     float64
	ActualPps float64
	PadhyePps float64
	EnhPps    float64
	DPadhye   float64
	DEnhanced float64
}

// ValidationResult is the PFTK-style sanity check behind everything else:
// on a *static* channel with independent (Bernoulli) data loss and no ACK
// loss — the world the Padhye model was built for — the simulator, the
// analyzer and the Padhye implementation must agree. This validates the
// reproduction pipeline itself, independent of any mobility modeling.
type ValidationResult struct {
	Points      []ValidationPoint
	MeanDPadhye float64
	MeanDEnh    float64
}

// ModelValidation sweeps the Bernoulli loss rate on a plain fixed-delay
// path and compares the measured steady-state throughput with both models.
func ModelValidation(cfg Config) (*ValidationResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &ValidationResult{}
	var padDs, enhDs []float64
	for _, pd := range []float64{0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.04} {
		actual, metrics, err := runStaticFlow(cfg, pd)
		if err != nil {
			return nil, err
		}
		prm := core.ParamsFromMetrics(metrics)
		pad, err := core.Padhye(prm)
		if err != nil {
			return nil, err
		}
		enh, err := core.Enhanced(prm)
		if err != nil {
			return nil, err
		}
		pt := ValidationPoint{
			PData:     pd,
			ActualPps: actual,
			PadhyePps: pad,
			EnhPps:    enh,
			DPadhye:   core.Deviation(pad, actual),
			DEnhanced: core.Deviation(enh, actual),
		}
		res.Points = append(res.Points, pt)
		padDs = append(padDs, pt.DPadhye)
		enhDs = append(enhDs, pt.DEnhanced)
	}
	res.MeanDPadhye = stats.Mean(padDs)
	res.MeanDEnh = stats.Mean(enhDs)
	return res, nil
}

// runStaticFlow simulates one long bulk flow over a static path with
// independent data loss at rate pd.
func runStaticFlow(cfg Config, pd float64) (float64, *analysis.FlowMetrics, error) {
	s := sim.New()
	fwd := netem.NewLink(s, netem.LinkConfig{
		Delay: netem.NewUniformDelay(28*time.Millisecond, 4*time.Millisecond, sim.NewRand(cfg.Seed, sim.StreamDelay)),
		Loss:  netem.NewBernoulli(pd, sim.NewRand(cfg.Seed, sim.StreamDataLoss)),
	})
	rev := netem.NewLink(s, netem.LinkConfig{
		Delay: netem.NewUniformDelay(28*time.Millisecond, 4*time.Millisecond, sim.NewRand(cfg.Seed+1, sim.StreamDelay)),
	})
	tcpCfg := defaultTCP()
	tcpCfg.WindowLimit = 64 // keep the sweep in the unconstrained regime
	ft := &trace.FlowTrace{Meta: trace.FlowMeta{
		ID: fmt.Sprintf("static-%.4f", pd), Operator: "static", Scenario: "validation",
		MSS: tcpCfg.MSS, DelayedAckB: tcpCfg.DelayedAckB, WindowLimit: tcpCfg.WindowLimit,
		Duration: 3 * cfg.FlowDuration,
	}}
	ft.Grow(int(3*cfg.FlowDuration/time.Second+1) * 1200)
	conn, err := tcp.New(s, netem.NewPath(fwd, rev), tcpCfg, ft)
	if err != nil {
		return 0, nil, err
	}
	if err := conn.Start(3 * cfg.FlowDuration); err != nil {
		return 0, nil, err
	}
	s.RunUntil(3 * cfg.FlowDuration)
	m, err := analysis.Analyze(ft)
	if err != nil {
		return 0, nil, err
	}
	return m.ThroughputPps, m, nil
}

// Render prints the sweep.
func (r *ValidationResult) Render() string {
	t := export.NewTable("p_d", "actual pps", "Padhye pps", "D", "enhanced pps", "D")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.4f", p.PData),
			fmt.Sprintf("%.1f", p.ActualPps),
			fmt.Sprintf("%.1f", p.PadhyePps), export.Percent(p.DPadhye),
			fmt.Sprintf("%.1f", p.EnhPps), export.Percent(p.DEnhanced))
	}
	var b strings.Builder
	b.WriteString("Pipeline validation — static Bernoulli channel (the Padhye model's home turf)\n")
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "mean D: Padhye %s, enhanced %s — both models must fit well here\n",
		export.Percent(r.MeanDPadhye), export.Percent(r.MeanDEnh))
	return b.String()
}
