package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/export"
	"repro/internal/stats"
)

// Figure3Result compares the loss rate of retransmitted packets inside
// timeout recovery phases (the paper's q, ~27.26%) with the lifetime data
// loss rate (~0.7526%) across the HSR campaign's flows (paper Fig 3).
type Figure3Result struct {
	RecoveryLoss []float64 // per flow with >= 1 recovery
	LifetimeLoss []float64 // per flow
	MeanRecovery float64
	MeanLifetime float64
	PaperMeanQ   float64
	PaperMeanPd  float64
}

// Figure3 extracts both loss-rate distributions from the campaign.
func Figure3(ctx *Context) *Figure3Result {
	res := &Figure3Result{PaperMeanQ: 0.2726, PaperMeanPd: 0.007526}
	for _, m := range ctx.HSR.Metrics() {
		res.LifetimeLoss = append(res.LifetimeLoss, m.DataLossRate)
		if len(m.Recoveries) > 0 {
			res.RecoveryLoss = append(res.RecoveryLoss, m.RecoveryLossRate)
		}
	}
	res.MeanRecovery = stats.Mean(res.RecoveryLoss)
	res.MeanLifetime = stats.Mean(res.LifetimeLoss)
	return res
}

// Render draws both CDFs on one canvas.
func (r *Figure3Result) Render() string {
	plot := export.Plot{
		Title:  "Fig 3 — CDF of recovery-phase loss rate q vs lifetime data loss rate",
		XLabel: "loss rate",
		YLabel: "CDF",
		Height: 16,
	}
	plot.Add("q (recovery)", 'q', cdfPoints(r.RecoveryLoss))
	plot.Add("p_d (lifetime)", 'p', cdfPoints(r.LifetimeLoss))
	var b strings.Builder
	b.WriteString(plot.Render())
	fmt.Fprintf(&b, "mean q = %s (paper %s);  mean p_d = %s (paper %s)\n",
		export.Percent(r.MeanRecovery), export.Percent(r.PaperMeanQ),
		export.Percent(r.MeanLifetime), export.Percent(r.PaperMeanPd))
	return b.String()
}

// Figure4Result is the per-flow scatter of ACK loss rate against timeout
// probability with its correlation statistics (paper Fig 4).
type Figure4Result struct {
	AckLoss     []float64
	TimeoutProb []float64
	Pearson     float64
	Spearman    float64
	Fit         stats.Regression
}

// Figure4 computes the correlation across the HSR campaign.
func Figure4(ctx *Context) *Figure4Result {
	res := &Figure4Result{}
	for _, m := range ctx.HSR.Metrics() {
		if m.TimeoutSequences+m.FastRetransmits == 0 {
			continue
		}
		res.AckLoss = append(res.AckLoss, m.AckLossRate)
		res.TimeoutProb = append(res.TimeoutProb, m.TimeoutProbability)
	}
	res.Pearson = stats.Pearson(res.AckLoss, res.TimeoutProb)
	res.Spearman = stats.Spearman(res.AckLoss, res.TimeoutProb)
	res.Fit = stats.LinearFit(res.AckLoss, res.TimeoutProb)
	return res
}

// Render draws the scatter and prints the correlation.
func (r *Figure4Result) Render() string {
	pts := make([]export.XY, len(r.AckLoss))
	for i := range r.AckLoss {
		pts[i] = export.XY{X: r.AckLoss[i], Y: r.TimeoutProb[i]}
	}
	plot := export.Plot{
		Title:  "Fig 4 — ACK loss rate vs probability of timeout events (one point per flow)",
		XLabel: "ACK loss rate p_a",
		YLabel: "P(loss indication is a timeout)",
		Height: 16,
	}
	plot.Add("flow", '*', pts)
	var b strings.Builder
	b.WriteString(plot.Render())
	fmt.Fprintf(&b, "flows=%d  Pearson r=%.3f  Spearman rho=%.3f  fit slope=%.2f (R2=%.3f)\n",
		len(pts), r.Pearson, r.Spearman, r.Fit.Slope, r.Fit.R2)
	b.WriteString("paper: clear positive (though not strong) correlation — timeouts grow with ACK loss\n")
	return b.String()
}

// Figure6Result compares the ACK loss rate distributions of the HSR and
// stationary campaigns (paper Fig 6: 0.661% vs 0.0718% on average).
type Figure6Result struct {
	HSR             []float64
	Stationary      []float64
	MeanHSR         float64
	MeanStationary  float64
	PaperHSR        float64
	PaperStationary float64
}

// Figure6 extracts per-flow ACK loss rates for both scenarios.
func Figure6(ctx *Context) *Figure6Result {
	res := &Figure6Result{PaperHSR: 0.00661, PaperStationary: 0.000718}
	for _, m := range ctx.HSR.Metrics() {
		res.HSR = append(res.HSR, m.AckLossRate)
	}
	for _, m := range ctx.Stationary.Metrics() {
		res.Stationary = append(res.Stationary, m.AckLossRate)
	}
	res.MeanHSR = stats.Mean(res.HSR)
	res.MeanStationary = stats.Mean(res.Stationary)
	return res
}

// Render draws both CDFs.
func (r *Figure6Result) Render() string {
	plot := export.Plot{
		Title:  "Fig 6 — CDF of ACK loss rate: high-speed vs stationary",
		XLabel: "ACK loss rate",
		YLabel: "CDF",
		Height: 16,
	}
	plot.Add("HSR", 'h', cdfPoints(r.HSR))
	plot.Add("stationary", 's', cdfPoints(r.Stationary))
	var b strings.Builder
	b.WriteString(plot.Render())
	fmt.Fprintf(&b, "mean ACK loss: HSR %s (paper %s);  stationary %s (paper %s)\n",
		export.Percent(r.MeanHSR), export.Percent(r.PaperHSR),
		export.Percent(r.MeanStationary), export.Percent(r.PaperStationary))
	return b.String()
}

// cdfPoints converts a sample into CDF curve points for plotting.
func cdfPoints(xs []float64) []export.XY {
	c := stats.NewCDF(xs)
	pts := c.Points(min(64, max(1, len(xs))))
	out := make([]export.XY, len(pts))
	for i, p := range pts {
		out[i] = export.XY{X: p.X, Y: p.P}
	}
	return out
}

// ScalarsResult carries the paper's headline measurement claims.
type ScalarsResult struct {
	MeanRecoveryHSR        time.Duration // paper: 5.05 s
	MeanRecoveryStationary time.Duration // paper: 0.65 s
	SpuriousFraction       float64       // paper: 49.24%
	MeanDataLossHSR        float64       // paper: 0.7526%
	MeanAckLossHSR         float64       // paper: 0.661%
	MeanAckLossStationary  float64       // paper: 0.0718%
	HSRTimeoutSequences    int
	StationaryTimeoutSeqs  int
}

// Scalars aggregates the headline numbers from both campaigns.
func Scalars(ctx *Context) *ScalarsResult {
	h := ctxSummary(ctx, true)
	s := ctxSummary(ctx, false)
	return &ScalarsResult{
		MeanRecoveryHSR:        h.MeanRecoveryDuration,
		MeanRecoveryStationary: s.MeanRecoveryDuration,
		SpuriousFraction:       h.SpuriousFraction,
		MeanDataLossHSR:        h.MeanDataLossRate,
		MeanAckLossHSR:         h.MeanAckLossRate,
		MeanAckLossStationary:  s.MeanAckLossRate,
		HSRTimeoutSequences:    h.TotalTimeoutSeqs,
		StationaryTimeoutSeqs:  s.TotalTimeoutSeqs,
	}
}

func ctxSummary(ctx *Context, hsr bool) analysis.Summary {
	camp := ctx.Stationary
	if hsr {
		camp = ctx.HSR
	}
	return analysis.Summarize(camp.Metrics())
}

// Render prints paper-vs-measured for each claim.
func (r *ScalarsResult) Render() string {
	t := export.NewTable("claim", "paper", "measured")
	t.AddRow("mean timeout recovery, HSR", "5.05 s", fmt.Sprintf("%.2f s", r.MeanRecoveryHSR.Seconds()))
	t.AddRow("mean timeout recovery, stationary", "0.65 s", fmt.Sprintf("%.2f s", r.MeanRecoveryStationary.Seconds()))
	t.AddRow("spurious timeout fraction", "49.24%", export.Percent(r.SpuriousFraction))
	t.AddRow("mean data loss rate, HSR", "0.7526%", export.Percent(r.MeanDataLossHSR))
	t.AddRow("mean ACK loss rate, HSR", "0.661%", export.Percent(r.MeanAckLossHSR))
	t.AddRow("mean ACK loss rate, stationary", "0.0718%", export.Percent(r.MeanAckLossStationary))
	var b strings.Builder
	b.WriteString("Headline measurement claims (Section III)\n")
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "timeout sequences: %d on the train, %d stationary\n",
		r.HSRTimeoutSequences, r.StationaryTimeoutSeqs)
	return b.String()
}
