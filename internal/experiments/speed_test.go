package experiments

import (
	"strings"
	"testing"
)

func TestSpeedSweep(t *testing.T) {
	res, err := SpeedSweep(Quick())
	if err != nil {
		t.Fatalf("SpeedSweep: %v", err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4 (0/100/200/300 km/h)", len(res.Points))
	}
	// Throughput must fall monotonically with speed, and the HSR level must
	// be far below stationary.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].MeanTputPps >= res.Points[i-1].MeanTputPps {
			t.Errorf("throughput not decreasing at %.0f km/h: %v after %v",
				res.Points[i].SpeedKmh, res.Points[i].MeanTputPps, res.Points[i-1].MeanTputPps)
		}
	}
	stationary, hsr := res.Points[0], res.Points[3]
	if hsr.MeanTputPps > stationary.MeanTputPps/2 {
		t.Errorf("300 km/h pps (%v) should be under half of stationary (%v)",
			hsr.MeanTputPps, stationary.MeanTputPps)
	}
	if hsr.TimeoutSequences <= stationary.TimeoutSequences {
		t.Error("HSR should have far more timeout sequences than stationary")
	}
	if !strings.Contains(res.Render(), "Speed sweep") {
		t.Error("render missing title")
	}
}
