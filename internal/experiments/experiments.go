// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the extension studies DESIGN.md calls out. Each
// experiment is a function from a Config (or a shared Context holding the
// synthetic measurement campaigns) to a typed result with a Render method;
// cmd/hsrbench prints the renders and bench_test.go reports the headline
// numbers as benchmark metrics.
//
// Per-experiment index (see DESIGN.md for the full mapping):
//
//	Table1        — the dataset (paper Table I)
//	Figure1       — per-packet delivery latency scatter with losses/timeouts
//	Figure2       — the retransmission process inside one recovery phase
//	Figure3       — CDFs of recovery-phase loss (q) vs lifetime data loss
//	Figure4       — ACK loss rate vs timeout probability correlation
//	Figure6       — CDFs of ACK loss, HSR vs stationary
//	Figure10      — model deviation D: Padhye vs the enhanced model
//	Figure12      — MPTCP (two subflows) vs TCP throughput by carrier
//	Scalars       — headline numbers (5.05 s vs 0.65 s, 49.24% spurious, ...)
//	DelayedAck    — Section V-A: the delayed-ACK window sweep
//	ModelAblation — Section IV ablations (P_a source, consistent variant, sensitivity)
//	BackupQ       — Section V-B: MPTCP backup-mode double retransmission
package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// Config scales the experiments. The zero value is not valid; use Default
// or Quick.
type Config struct {
	// Seed is the base seed for every campaign and flow.
	Seed int64
	// FlowDuration is the simulated duration of duration-bounded flows.
	FlowDuration time.Duration
	// FlowsPerRow overrides Table I's flow counts when positive.
	FlowsPerRow int
	// SizedSegments is the transfer size (in MSS segments) of the fixed-size
	// flows used by the MPTCP comparison.
	SizedSegments int64
	// PairsPerOperator is the number of single-vs-duplex pairs per carrier
	// in the MPTCP comparison.
	PairsPerOperator int
	// Parallelism bounds concurrent flow simulations (0 = GOMAXPROCS).
	Parallelism int
	// Cache, when non-nil, is the flow result cache every campaign and
	// metrics-only sweep consults before simulating a flow and populates
	// afterwards (hsrbench -cache). Results are bit-identical either way;
	// a warm cache only changes the wall clock.
	Cache *dataset.FlowCache
	// Materialize forces the legacy materialize-then-analyze flow pipeline
	// everywhere, for byte-identity cross-checks against the streaming
	// default; it bypasses the cache.
	Materialize bool
	// Telemetry, when non-nil, aggregates telemetry from both shared
	// campaigns (HSR and stationary) into one collector; totals are
	// deterministic for a given seed at any Parallelism.
	Telemetry *telemetry.Campaign
	// Progress, when non-nil, is forwarded to both campaigns; it is invoked
	// per finished flow (per campaign) from worker goroutines and must be
	// safe for concurrent use.
	Progress func(done, total int)
	// Runner, when non-nil, replaces dataset.RunCampaign for the two shared
	// campaigns (HSR and stationary). This is how distributed execution plugs
	// in: a coordinator installs its fan-out runner here and everything
	// downstream of the campaigns — tables, figures, telemetry totals — is
	// oblivious to where the flows actually simulated. A Runner must honor
	// the full CampaignConfig contract, in particular merging telemetry in
	// campaign flow order so its output is byte-identical to the local path.
	Runner CampaignRunner
	// Trace, when non-nil, records the run's span tree (internal/tracing):
	// one task span per catalog task, one campaign span per shared campaign,
	// and whatever the campaign runner records beneath them (per-flow spans
	// locally; unit/attempt/worker spans through a coordinator). TraceParent
	// is the span the tree hangs from. Tracing never perturbs results.
	Trace       *tracing.Trace
	TraceParent string
}

// CampaignRunner executes one synthetic measurement campaign. The default is
// dataset.RunCampaign; internal/dist provides a coordinator-backed one.
type CampaignRunner func(dataset.CampaignConfig) (*dataset.Campaign, error)

// Default is the full-scale configuration: the complete 255-flow Table I
// campaign with 120-second flows. It takes a few CPU-minutes.
func Default() Config {
	return Config{
		Seed:             1,
		FlowDuration:     120 * time.Second,
		SizedSegments:    6000,
		PairsPerOperator: 10,
	}
}

// Quick is a reduced configuration for tests and smoke runs: 4 flows per
// Table I row, 45-second flows.
func Quick() Config {
	return Config{
		Seed:             1,
		FlowDuration:     45 * time.Second,
		FlowsPerRow:      4,
		SizedSegments:    2000,
		PairsPerOperator: 3,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.FlowDuration <= 0 {
		return fmt.Errorf("experiments: FlowDuration %v must be positive", c.FlowDuration)
	}
	if c.SizedSegments < 2 {
		return fmt.Errorf("experiments: SizedSegments %d must be >= 2", c.SizedSegments)
	}
	if c.PairsPerOperator < 1 {
		return fmt.Errorf("experiments: PairsPerOperator %d must be >= 1", c.PairsPerOperator)
	}
	return nil
}

// Context holds the shared synthetic campaigns several experiments consume,
// so a full run simulates the dataset once.
type Context struct {
	Cfg        Config
	HSR        *dataset.Campaign
	Stationary *dataset.Campaign

	fig1Once sync.Once
	fig1     *Figure1Result
	fig1Err  error
}

// Figure1 returns the Context's exemplar cruise-speed flow (the paper's
// Fig 1 trace), simulating it at most once and caching the result so
// Figure 2, the window trace, and the benchmarks can reuse the flow trace
// instead of re-simulating it. Safe for concurrent use.
func (c *Context) Figure1() (*Figure1Result, error) {
	c.fig1Once.Do(func() {
		c.fig1, c.fig1Err = Figure1(c.Cfg)
	})
	return c.fig1, c.fig1Err
}

// NewContext runs the HSR and stationary campaigns for the configuration.
func NewContext(cfg Config) (*Context, error) {
	return NewContextWith(context.Background(), cfg)
}

// NewContextWith is NewContext with cancellation: once ctx is done the
// campaigns stop launching flows and the context error is returned, so a
// deadline on the whole run (hsrbench -timeout) tears the multi-minute
// campaign phase down cleanly.
func NewContextWith(ctx context.Context, cfg Config) (*Context, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	run := cfg.Runner
	if run == nil {
		run = dataset.RunCampaign
	}
	// runTraced wraps one shared campaign in a campaign span; the campaign
	// config inherits the trace so the runner's flow (or unit dispatch)
	// spans parent beneath it.
	runTraced := func(name string, dcfg dataset.CampaignConfig) (*dataset.Campaign, error) {
		sp := cfg.Trace.StartSpan(cfg.TraceParent, "campaign", name)
		if cfg.Trace != nil {
			dcfg.Trace = cfg.Trace
			dcfg.TraceParent = sp.ID()
		}
		camp, err := run(dcfg)
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
		return camp, err
	}
	hsr, err := runTraced("campaign:hsr", dataset.CampaignConfig{
		Seed: cfg.Seed, FlowDuration: cfg.FlowDuration,
		FlowsPerRow: cfg.FlowsPerRow, Parallelism: cfg.Parallelism,
		Ctx: ctx, Telemetry: cfg.Telemetry, Progress: cfg.Progress,
		Cache: cfg.Cache, Materialize: cfg.Materialize,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: hsr campaign: %w", err)
	}
	stat, err := runTraced("campaign:stationary", dataset.CampaignConfig{
		Seed: cfg.Seed + 5000, FlowDuration: cfg.FlowDuration,
		FlowsPerRow: cfg.FlowsPerRow, Parallelism: cfg.Parallelism,
		Stationary: true, Ctx: ctx, Telemetry: cfg.Telemetry, Progress: cfg.Progress,
		Cache: cfg.Cache, Materialize: cfg.Materialize,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: stationary campaign: %w", err)
	}
	return &Context{Cfg: cfg, HSR: hsr, Stationary: stat}, nil
}

// defaultTCP returns the endpoint configuration experiments use.
func defaultTCP() tcp.Config { return tcp.DefaultConfig() }

// analyzeFlow reduces one scenario to metrics through the configured
// pipeline: the shared result cache (if any) and either the streaming
// analyzer (default) or the materialized cross-check path. Every
// metrics-only sweep funnels through here so -cache and -materialize
// apply uniformly.
func (c Config) analyzeFlow(sc dataset.Scenario) (*analysis.FlowMetrics, error) {
	return dataset.AnalyzeFlowOpts(dataset.RunOptions{Cache: c.Cache, Materialize: c.Materialize}, sc)
}
