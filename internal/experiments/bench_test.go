package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestRunBenchSnapshot runs the snapshot at a tiny scale and checks the
// deterministic fields are populated and the JSON round-trips.
func TestRunBenchSnapshot(t *testing.T) {
	snap, err := RunBenchSnapshot(BenchOptions{
		Seed:                 1,
		CampaignFlowDuration: 5 * time.Second,
		CampaignFlowsPerRow:  1,
		FlowDuration:         5 * time.Second,
		FlowRuns:             2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Tool != "hsrbench" || snap.Seed != 1 {
		t.Errorf("snapshot identity = %q seed %d", snap.Tool, snap.Seed)
	}
	if snap.CampaignFlows <= 0 {
		t.Errorf("CampaignFlows = %d, want > 0", snap.CampaignFlows)
	}
	if snap.ColdCampaignWallMS <= 0 || snap.WarmCampaignWallMS <= 0 {
		t.Errorf("campaign walls = %v / %v, want > 0", snap.ColdCampaignWallMS, snap.WarmCampaignWallMS)
	}
	if snap.SingleFlowWallMS <= 0 {
		t.Errorf("SingleFlowWallMS = %v, want > 0", snap.SingleFlowWallMS)
	}
	if snap.KernelEventsPerFlow <= 0 || snap.KernelEventsPerSec <= 0 {
		t.Errorf("kernel rates = %d events, %v/s, want > 0", snap.KernelEventsPerFlow, snap.KernelEventsPerSec)
	}
	if snap.AllocsPerFlow <= 0 {
		t.Errorf("AllocsPerFlow = %v, want > 0", snap.AllocsPerFlow)
	}

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back BenchSnapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.CampaignFlows != snap.CampaignFlows || back.KernelEventsPerFlow != snap.KernelEventsPerFlow {
		t.Errorf("round-trip mismatch: %+v vs %+v", back, snap)
	}
}
