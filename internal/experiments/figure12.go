package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cellular"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/mptcp"
	"repro/internal/railway"
	"repro/internal/stats"
)

// Figure12Pair is one single-flow vs two-subflow comparison (fixed total
// transfer size, the paper's methodology).
type Figure12Pair struct {
	SinglePps   float64
	DuplexPps   float64
	Improvement float64
}

// Figure12Operator aggregates one carrier's pairs.
type Figure12Operator struct {
	Name             string
	Pairs            []Figure12Pair
	MeanImprovement  float64 // mean of pairwise improvements, the paper's statistic
	PaperImprovement float64
}

// Figure12Result reproduces the MPTCP comparison (paper Fig 12): the same
// total payload moved by one TCP flow vs two concurrent subflows with no
// shared bottleneck besides the cell's air interface. Paper improvements:
// China Mobile +42.15%, China Unicom +95.64%, China Telecom +283.33%.
type Figure12Result struct {
	Operators []Figure12Operator
}

// Figure12 runs the sized-flow comparison for every carrier.
func Figure12(cfg Config) (*Figure12Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		return nil, err
	}
	start, _ := trip.CruiseWindow()
	paper := map[string]float64{
		cellular.ChinaMobileLTE.Name: 0.4215,
		cellular.ChinaUnicom3G.Name:  0.9564,
		cellular.ChinaTelecom3G.Name: 2.8333,
	}
	// A generous horizon: dead zones can stall a sized flow for a long time.
	horizon := 10 * cfg.FlowDuration
	if horizon < 5*time.Minute {
		horizon = 5 * time.Minute
	}
	res := &Figure12Result{}
	for _, op := range cellular.Operators() {
		agg := Figure12Operator{Name: op.Name, PaperImprovement: paper[op.Name]}
		var imps []float64
		for pair := 0; pair < cfg.PairsPerOperator; pair++ {
			sc := dataset.Scenario{
				ID:           fmt.Sprintf("fig12-%s-%d", op.Name, pair),
				Operator:     op,
				Trip:         trip,
				TripOffset:   start + time.Duration(pair)*41*time.Second,
				FlowDuration: horizon,
				Seed:         cfg.Seed*977 + int64(pair),
				TCP:          defaultTCP(),
				Scenario:     "hsr",
			}
			single, duplex, imp, err := mptcp.CompareSized(sc, cfg.SizedSegments)
			if err != nil {
				return nil, err
			}
			agg.Pairs = append(agg.Pairs, Figure12Pair{SinglePps: single, DuplexPps: duplex, Improvement: imp})
			imps = append(imps, imp)
		}
		agg.MeanImprovement = stats.Mean(imps)
		res.Operators = append(res.Operators, agg)
	}
	return res, nil
}

// Render prints the per-carrier improvements.
func (r *Figure12Result) Render() string {
	t := export.NewTable("provider", "pairs", "mean TCP pps", "mean MPTCP pps", "improvement", "paper")
	for _, op := range r.Operators {
		var s, d stats.Running
		for _, p := range op.Pairs {
			s.Add(p.SinglePps)
			d.Add(p.DuplexPps)
		}
		t.AddRow(op.Name, fmt.Sprintf("%d", len(op.Pairs)),
			fmt.Sprintf("%.1f", s.Mean()), fmt.Sprintf("%.1f", d.Mean()),
			export.Percent(op.MeanImprovement), export.Percent(op.PaperImprovement))
	}
	var b strings.Builder
	b.WriteString("Fig 12 — MPTCP (two subflows, same total size) vs TCP throughput\n")
	b.WriteString(t.Render())
	b.WriteString("paper ordering Mobile < Unicom < Telecom must hold; absolute factors depend on the synthetic channel\n")
	return b.String()
}
