package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/export"
	"repro/internal/trace"
)

// WindowSample is one point of a congestion-window time series.
type WindowSample struct {
	At   time.Duration
	Cwnd float64
}

// WindowTraceResult is the congestion-window evolution of one flow — the
// live counterpart of the paper's schematic Figs 7-9: linear growth in
// congestion avoidance, halvings at fast retransmits, collapses to one
// segment at timeouts, and the flat stretches pinned at W_m.
type WindowTraceResult struct {
	Meta     trace.FlowMeta
	Samples  []WindowSample
	Timeouts []time.Duration
	FastRetx []time.Duration
	Wm       int
}

// WindowTrace extracts the window evolution from a Figure1 run's trace.
func WindowTrace(fig1 *Figure1Result) (*WindowTraceResult, error) {
	if fig1 == nil || fig1.Trace == nil {
		return nil, fmt.Errorf("experiments: WindowTrace requires a Figure1 result with its trace")
	}
	res := &WindowTraceResult{Meta: fig1.Meta, Wm: fig1.Meta.WindowLimit}
	for _, ev := range fig1.Trace.Events {
		switch ev.Type {
		case trace.EvDataSend:
			res.Samples = append(res.Samples, WindowSample{At: ev.At, Cwnd: ev.Cwnd})
		case trace.EvTimeout:
			res.Timeouts = append(res.Timeouts, ev.At)
		case trace.EvFastRetx:
			res.FastRetx = append(res.FastRetx, ev.At)
		}
	}
	if len(res.Samples) == 0 {
		return nil, fmt.Errorf("experiments: the flow transmitted nothing")
	}
	return res, nil
}

// Render plots the window evolution with the loss indications marked.
func (r *WindowTraceResult) Render() string {
	pts := make([]export.XY, 0, len(r.Samples))
	for _, s := range r.Samples {
		pts = append(pts, export.XY{X: s.At.Seconds(), Y: s.Cwnd})
	}
	marks := func(at []time.Duration, y float64) []export.XY {
		out := make([]export.XY, 0, len(at))
		for _, a := range at {
			out = append(out, export.XY{X: a.Seconds(), Y: y})
		}
		return out
	}
	plot := export.Plot{
		Title:  "Window evolution (the live Figs 7-9): cwnd over time with loss indications",
		XLabel: "time (s)",
		YLabel: "cwnd (packets)",
		Height: 18,
	}
	plot.Add("cwnd", '.', pts)
	plot.Add("timeout", 'T', marks(r.Timeouts, 0))
	plot.Add("fast-retx", 'F', marks(r.FastRetx, float64(r.Wm)))
	var b strings.Builder
	b.WriteString(plot.Render())
	fmt.Fprintf(&b, "flow %s: %d sends, %d fast retransmits (halvings), %d timeouts (collapses to 1), Wm=%d\n",
		r.Meta.ID, len(r.Samples), len(r.FastRetx), len(r.Timeouts), r.Wm)
	return b.String()
}
