package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func faultSweepCfg() Config {
	return Config{
		Seed:             3,
		FlowDuration:     15 * time.Second,
		SizedSegments:    500,
		PairsPerOperator: 1,
	}
}

func TestFaultSweep(t *testing.T) {
	f, err := FaultSweep(faultSweepCfg())
	if err != nil {
		t.Fatalf("FaultSweep: %v", err)
	}
	if len(f.Points) != len(faultSeverities) {
		t.Fatalf("got %d points, want one per severity level", len(f.Points))
	}
	if f.Schedule == "" {
		t.Error("sweep result carries no schedule DSL")
	}
	base, worst := f.Points[0], f.Points[len(f.Points)-1]
	if base.Severity != 0 {
		t.Fatalf("first point severity = %v, want the baseline", base.Severity)
	}
	if worst.MeanTputPps >= base.MeanTputPps {
		t.Errorf("severity-%v throughput %.1f pps >= baseline %.1f pps; injected faults should hurt",
			worst.Severity, worst.MeanTputPps, base.MeanTputPps)
	}
	out := f.Render()
	for _, want := range []string{"severity", "Padhye", "enhanced", f.Operator} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	if got := len(f.CSVTable().Rows); got != len(f.Points) {
		t.Errorf("CSV rows = %d, want %d", got, len(f.Points))
	}
}

func TestFaultSweepDeterministic(t *testing.T) {
	a, err := FaultSweep(faultSweepCfg())
	if err != nil {
		t.Fatalf("FaultSweep: %v", err)
	}
	b, err := FaultSweep(faultSweepCfg())
	if err != nil {
		t.Fatalf("FaultSweep: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two sweeps with the same configuration differ")
	}
}

func TestFaultSweepRejectsBadConfig(t *testing.T) {
	if _, err := FaultSweep(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}
