package experiments

import (
	"strings"
	"testing"
)

func TestVariantsExperiment(t *testing.T) {
	res, err := Variants(Quick())
	if err != nil {
		t.Fatalf("Variants: %v", err)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(res.Outcomes))
	}
	reno, ok := res.ByName("reno")
	if !ok {
		t.Fatal("missing reno outcome")
	}
	newreno, ok := res.ByName("newreno")
	if !ok {
		t.Fatal("missing newreno outcome")
	}
	// NewReno's partial-ACK recovery must not make things worse, and the
	// handoff-driven timeouts must persist for both variants (the paper's
	// bottleneck is not fixable by better dup-ACK machinery).
	if newreno.MeanTputPps < reno.MeanTputPps*0.95 {
		t.Errorf("NewReno pps %v well below Reno %v", newreno.MeanTputPps, reno.MeanTputPps)
	}
	if newreno.TimeoutSequences == 0 || reno.TimeoutSequences == 0 {
		t.Error("handoff timeouts should persist for both variants")
	}
	if _, ok := res.ByName("nope"); ok {
		t.Error("ByName matched a nonexistent variant")
	}
	if !strings.Contains(res.Render(), "NewReno") {
		t.Error("render missing title")
	}
}
