package experiments

import (
	"strings"
	"testing"
)

func TestBuildReport(t *testing.T) {
	ctx := testContext(t)
	md, err := BuildReport(ctx)
	if err != nil {
		t.Fatalf("BuildReport: %v", err)
	}
	for _, want := range []string{
		"# Reproduction report",
		"Section III headline claims",
		"Fig 10 — model accuracy",
		"21.96%", // the paper reference values must appear
		"Fig 12 — MPTCP vs TCP",
		"delayed-ACK sweep",
		"Eifel",
		"| China Mobile |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// It must be plausible markdown: tables have separator rows.
	if !strings.Contains(md, "| --- |") {
		t.Error("no markdown table separators")
	}
}
