package experiments

import (
	"context"
	"testing"
	"time"

	"repro/internal/tracing"
)

// renderCatalog builds and runs a small catalog selection at the given DAG
// width, optionally traced, and returns the concatenated rendered sections.
func renderCatalog(t *testing.T, jobs int, tr *tracing.Trace, parent string) string {
	t.Helper()
	cfg := Quick()
	cfg.FlowsPerRow = 1
	cfg.FlowDuration = 15 * time.Second
	cfg.Trace = tr
	cfg.TraceParent = parent
	cat, err := NewCatalog(context.Background(), cfg, []string{"scalars", "table1"}, CatalogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunDAG(cat.Tasks, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var out string
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("task %s: %v", r.Name, r.Err)
		}
		out += r.Name + "\n" + r.Output + "\n"
	}
	return out
}

// TestCatalogByteIdentityAcrossJobsAndTracing is the determinism acceptance
// check at the DAG layer: rendered outputs must be byte-identical across
// -jobs 1 vs 8 and tracing off vs on, and the traced run must yield a
// well-formed span tree covering run → task → campaign → flow.
func TestCatalogByteIdentityAcrossJobsAndTracing(t *testing.T) {
	ref := renderCatalog(t, 1, nil, "")

	if got := renderCatalog(t, 8, nil, ""); got != ref {
		t.Fatalf("output diverged between -jobs 1 and -jobs 8:\n%s\nvs\n%s", ref, got)
	}

	tr := tracing.New("exp-trace")
	root := tr.StartSpan("", "run", "catalog")
	if got := renderCatalog(t, 8, tr, root.ID()); got != ref {
		t.Fatalf("output diverged with tracing on:\n%s\nvs\n%s", ref, got)
	}
	root.End()

	spans := tr.Spans()
	if err := tracing.Validate(spans); err != nil {
		t.Fatalf("catalog trace not well formed: %v", err)
	}
	byKind := map[string]int{}
	for _, s := range spans {
		byKind[s.Kind]++
	}
	for _, kind := range []string{"run", "task", "campaign", "flow"} {
		if byKind[kind] == 0 {
			t.Fatalf("no %q spans in the catalog trace (kinds: %v)", kind, byKind)
		}
	}
	// Both shared campaigns and all three tasks get spans.
	if byKind["campaign"] < 2 || byKind["task"] < 3 {
		t.Fatalf("span coverage too thin: %v", byKind)
	}
}
