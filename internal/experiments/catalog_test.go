package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestCatalogNamesCanonical(t *testing.T) {
	names := CatalogNames()
	if len(names) == 0 {
		t.Fatal("empty catalog")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate catalog name %q", n)
		}
		seen[n] = true
		if !IsCatalogName(n) {
			t.Errorf("IsCatalogName(%q) = false for a listed name", n)
		}
	}
	for _, want := range []string{"table1", "fig1", "faults", "speed"} {
		if !seen[want] {
			t.Errorf("catalog lacks %q", want)
		}
	}
	if IsCatalogName("doesnotexist") {
		t.Error("IsCatalogName accepted an unknown name")
	}
}

func TestNewCatalogRejectsUnknownName(t *testing.T) {
	_, err := NewCatalog(context.Background(), Quick(), []string{"nope"}, CatalogOptions{})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("NewCatalog(unknown) err = %v", err)
	}
}

// TestCatalogRunsSelection runs a small context-backed selection end to end
// and checks the dependency task ran, the context is exposed, and the
// rendered sections come back in canonical order.
func TestCatalogRunsSelection(t *testing.T) {
	cfg := Quick()
	cfg.FlowsPerRow = 1
	cfg.FlowDuration = 15 * time.Second
	var logged bool
	cat, err := NewCatalog(context.Background(), cfg, []string{"scalars", "table1"}, CatalogOptions{
		Logf: func(string, ...any) { logged = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunDAG(cat.Tasks, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Context() == nil {
		t.Error("Context nil after the campaigns task ran")
	}
	if !logged {
		t.Error("Logf never invoked")
	}
	var order []string
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("task %s: %v", r.Name, r.Err)
		}
		order = append(order, r.Name)
	}
	want := []string{CampaignsTaskName, "table1", "scalars"}
	if len(order) != len(want) {
		t.Fatalf("task order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("task order %v, want %v", order, want)
		}
	}
	if !strings.Contains(results[1].Output, "TABLE I") {
		t.Error("table1 section not rendered")
	}
}

// TestCatalogForceCampaigns schedules the campaigns task with no consumer.
func TestCatalogForceCampaigns(t *testing.T) {
	cat, err := NewCatalog(context.Background(), Quick(), nil, CatalogOptions{ForceCampaigns: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Tasks) != 1 || cat.Tasks[0].Name != CampaignsTaskName {
		names := make([]string, len(cat.Tasks))
		for i, task := range cat.Tasks {
			names[i] = task.Name
		}
		t.Fatalf("tasks = %v, want exactly [%s]", names, CampaignsTaskName)
	}
}
