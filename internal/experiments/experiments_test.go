package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	ctxOnce sync.Once
	ctxVal  *Context
	ctxErr  error
)

// testContext builds one Quick-sized context shared by all tests.
func testContext(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() {
		ctxVal, ctxErr = NewContext(Quick())
	})
	if ctxErr != nil {
		t.Fatalf("NewContext: %v", ctxErr)
	}
	return ctxVal
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("Default config invalid: %v", err)
	}
	if err := Quick().Validate(); err != nil {
		t.Errorf("Quick config invalid: %v", err)
	}
	bad := Quick()
	bad.FlowDuration = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero duration accepted")
	}
	bad = Quick()
	bad.SizedSegments = 1
	if err := bad.Validate(); err == nil {
		t.Error("tiny sized segments accepted")
	}
	bad = Quick()
	bad.PairsPerOperator = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero pairs accepted")
	}
}

func TestTable1(t *testing.T) {
	ctx := testContext(t)
	res := Table1(ctx)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (Table I)", len(res.Rows))
	}
	if res.TotalFlows != 16 {
		t.Errorf("total flows = %d, want 16 in Quick config", res.TotalFlows)
	}
	if res.TotalSimGB <= 0 {
		t.Error("no simulated payload")
	}
	out := res.Render()
	for _, want := range []string{"China Mobile", "China Unicom", "China Telecom", "January 2015", "October 2015"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure1And2(t *testing.T) {
	res, err := Figure1(Quick())
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no delivery points")
	}
	if len(res.Timeouts) == 0 {
		t.Fatal("the Figure1 flow has no timeouts to number")
	}
	var lost int
	for _, p := range res.Points {
		if p.Lost {
			lost++
		}
	}
	if lost == 0 {
		t.Error("no lost packets in the scatter")
	}
	out := res.Render()
	if !strings.Contains(out, "Fig 1") || !strings.Contains(out, "timeout sequences") {
		t.Errorf("Figure1 render incomplete:\n%s", out)
	}

	f2, err := Figure2(res)
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if f2.Phase.Duration() <= 0 {
		t.Error("Figure2 phase has no duration")
	}
	if len(f2.Events) == 0 {
		t.Error("Figure2 has no events")
	}
	out2 := f2.Render()
	if !strings.Contains(out2, "timeout") || !strings.Contains(out2, "backoff") {
		t.Errorf("Figure2 render incomplete:\n%s", out2)
	}
}

func TestFigure2RequiresFigure1(t *testing.T) {
	if _, err := Figure2(nil); err == nil {
		t.Error("Figure2(nil) accepted")
	}
}

func TestFigure3(t *testing.T) {
	ctx := testContext(t)
	res := Figure3(ctx)
	if len(res.RecoveryLoss) == 0 || len(res.LifetimeLoss) == 0 {
		t.Fatal("missing loss distributions")
	}
	// The paper's central observation: q is orders of magnitude above the
	// lifetime data loss rate.
	if res.MeanRecovery < 5*res.MeanLifetime {
		t.Errorf("mean q (%v) should dwarf lifetime loss (%v)", res.MeanRecovery, res.MeanLifetime)
	}
	if !strings.Contains(res.Render(), "Fig 3") {
		t.Error("render missing title")
	}
}

func TestFigure4(t *testing.T) {
	ctx := testContext(t)
	res := Figure4(ctx)
	if len(res.AckLoss) < 8 {
		t.Fatalf("only %d flows in correlation", len(res.AckLoss))
	}
	// Positive correlation between ACK loss and timeout probability.
	if res.Pearson <= 0 {
		t.Errorf("Pearson = %v, want positive", res.Pearson)
	}
	if !strings.Contains(res.Render(), "Pearson") {
		t.Error("render missing statistics")
	}
}

func TestFigure6(t *testing.T) {
	ctx := testContext(t)
	res := Figure6(ctx)
	if res.MeanHSR <= res.MeanStationary {
		t.Errorf("HSR ACK loss (%v) must exceed stationary (%v)", res.MeanHSR, res.MeanStationary)
	}
	// Roughly an order of magnitude apart, like the paper's 0.661% vs 0.0718%.
	if res.MeanHSR < 3*res.MeanStationary {
		t.Errorf("HSR/stationary ACK loss ratio = %v, want >= 3", res.MeanHSR/res.MeanStationary)
	}
	if !strings.Contains(res.Render(), "Fig 6") {
		t.Error("render missing title")
	}
}

func TestFigure10(t *testing.T) {
	ctx := testContext(t)
	res, err := Figure10(ctx)
	if err != nil {
		t.Fatalf("Figure10: %v", err)
	}
	if len(res.Operators) != 3 {
		t.Fatalf("operators = %d, want 3", len(res.Operators))
	}
	// The headline result: the enhanced model beats the Padhye baseline.
	if res.MeanDEnh >= res.MeanDPadhye {
		t.Errorf("enhanced mean D (%v) should beat Padhye (%v)", res.MeanDEnh, res.MeanDPadhye)
	}
	if res.ImprovePts <= 0 {
		t.Error("no improvement in percentage points")
	}
	for _, op := range res.Operators {
		if len(op.Flows) == 0 {
			t.Errorf("operator %s has no flows", op.Name)
		}
		for _, f := range op.Flows {
			if f.ActualPps <= 0 || f.PadhyePps <= 0 || f.EnhPps <= 0 {
				t.Errorf("non-positive throughput in fit %+v", f)
			}
		}
	}
	if !strings.Contains(res.Render(), "Fig 10") {
		t.Error("render missing title")
	}
}

func TestScalars(t *testing.T) {
	ctx := testContext(t)
	res := Scalars(ctx)
	// HSR recoveries are multi-second; stationary ones sub-second-ish.
	if res.MeanRecoveryHSR < 2*time.Second {
		t.Errorf("HSR mean recovery = %v, want multi-second", res.MeanRecoveryHSR)
	}
	if res.StationaryTimeoutSeqs > 0 && res.MeanRecoveryStationary >= res.MeanRecoveryHSR/2 {
		t.Errorf("stationary recovery %v should be far below HSR %v",
			res.MeanRecoveryStationary, res.MeanRecoveryHSR)
	}
	if res.SpuriousFraction <= 0.2 {
		t.Errorf("spurious fraction = %v, want substantial (paper: 49.24%%)", res.SpuriousFraction)
	}
	if res.MeanAckLossHSR <= res.MeanAckLossStationary {
		t.Error("HSR ACK loss must exceed stationary")
	}
	if !strings.Contains(res.Render(), "5.05") {
		t.Error("render missing paper reference values")
	}
}

func TestModelAblation(t *testing.T) {
	ctx := testContext(t)
	res, err := ModelAblation(ctx)
	if err != nil {
		t.Fatalf("ModelAblation: %v", err)
	}
	if len(res.Variants) != 5 {
		t.Fatalf("variants = %d, want 5", len(res.Variants))
	}
	for _, v := range res.Variants {
		if v.MeanD <= 0 {
			t.Errorf("variant %s has mean D %v", v.Name, v.MeanD)
		}
	}
	// Sensitivity curves must be monotone decreasing.
	for i := 1; i < len(res.PaSweep); i++ {
		if res.PaSweep[i].Pps >= res.PaSweep[i-1].Pps {
			t.Errorf("TP not decreasing in P_a at %v", res.PaSweep[i].X)
		}
	}
	for i := 1; i < len(res.QSweep); i++ {
		if res.QSweep[i].Pps >= res.QSweep[i-1].Pps {
			t.Errorf("TP not decreasing in q at %v", res.QSweep[i].X)
		}
	}
	if !strings.Contains(res.Render(), "sensitivity") {
		t.Error("render missing sensitivity plots")
	}
}

func TestNewContextRejectsBadConfig(t *testing.T) {
	if _, err := NewContext(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}
