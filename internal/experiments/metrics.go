package experiments

import (
	"runtime"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/telemetry"
)

// MetricsReport assembles the typed telemetry report for one scheduled run:
// campaign counter totals (deterministic for a seed at any parallelism),
// per-task outcomes and wall/allocation resources, and cache activity. Both
// cmd/hsrbench (-metrics) and the hsrserved job results build their reports
// here, so the two surfaces stay byte-comparable on the deterministic
// sections. camp and cache may be nil; the campaign section is attached only
// when campaign flows actually ran (a fully warm cache run reports none,
// identically on both surfaces).
func MetricsReport(tool string, seed int64, camp *telemetry.Campaign, cache *telemetry.Cache, results []TaskResult, wallStart time.Time) *telemetry.Report {
	rep := &telemetry.Report{
		Tool:    tool,
		Version: buildinfo.Version(),
		Seed:    seed,
	}
	if cache != nil {
		cc := *cache
		rep.Cache = &cc
	}
	if camp != nil {
		if n, _, _, _, _ := camp.Counters(); n > 0 {
			rep.Campaign = camp
		}
	}
	for _, r := range results {
		tr := telemetry.TaskReport{
			Name:       r.Name,
			Status:     "ok",
			WallMS:     float64(r.Wall) / float64(time.Millisecond),
			Mallocs:    r.Mallocs,
			AllocBytes: r.AllocBytes,
		}
		switch {
		case r.Skipped:
			tr.Status = "skipped"
		case r.Err != nil:
			tr.Status = "failed"
		}
		if r.Err != nil {
			tr.Error = r.Err.Error()
		}
		rep.Tasks = append(rep.Tasks, tr)
	}
	wall := time.Since(wallStart)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep.Resources = telemetry.Resources{
		WallMS:          float64(wall) / float64(time.Millisecond),
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		NumGC:           ms.NumGC,
	}
	if camp != nil && wall > 0 {
		_, k, _, _, _ := camp.Counters()
		rep.Resources.VirtualPerWall = float64(k.VirtualNS) / float64(wall.Nanoseconds())
	}
	return rep
}
