package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunDAGResultsInInputOrder(t *testing.T) {
	// Task durations are inverted relative to input order (the first task is
	// the slowest), so completion order differs from input order under
	// parallelism; the results must come back in input order anyway.
	var tasks []Task
	for i := 0; i < 8; i++ {
		i := i
		tasks = append(tasks, Task{
			Name: fmt.Sprintf("t%d", i),
			Run: func() (string, error) {
				for spin := 0; spin < (8-i)*1000; spin++ {
					_ = spin * spin
				}
				return fmt.Sprintf("out%d", i), nil
			},
		})
	}
	res, err := RunDAG(tasks, 4)
	if err != nil {
		t.Fatalf("RunDAG: %v", err)
	}
	for i, r := range res {
		if r.Name != tasks[i].Name || r.Output != fmt.Sprintf("out%d", i) {
			t.Errorf("result %d = {%s %q}, want {%s out%d}", i, r.Name, r.Output, tasks[i].Name, i)
		}
	}
}

func TestRunDAGDependencyHappensBefore(t *testing.T) {
	// A linear chain threaded through shared state: each link appends its
	// letter only if its dependency already appended. Any ordering violation
	// corrupts the string.
	var mu sync.Mutex
	var order string
	link := func(name, prev string) Task {
		deps := []string(nil)
		if prev != "" {
			deps = []string{prev}
		}
		return Task{Name: name, Deps: deps, Run: func() (string, error) {
			mu.Lock()
			defer mu.Unlock()
			order += name
			return "", nil
		}}
	}
	tasks := []Task{
		link("c", "b"), link("a", ""), link("b", "a"), link("d", "c"),
	}
	if _, err := RunDAG(tasks, 8); err != nil {
		t.Fatalf("RunDAG: %v", err)
	}
	if order != "abcd" {
		t.Errorf("execution order = %q, want abcd", order)
	}
}

func TestRunDAGParallelMatchesSequential(t *testing.T) {
	// The hsrbench invariant: for one task set, -jobs N renders byte-identical
	// output to the sequential run. Tasks form a diamond sharing state
	// through their dependency.
	build := func() []Task {
		shared := 0
		return []Task{
			{Name: "base", Run: func() (string, error) { shared = 42; return "base\n", nil }},
			{Name: "left", Deps: []string{"base"}, Run: func() (string, error) {
				return fmt.Sprintf("left %d\n", shared), nil
			}},
			{Name: "right", Deps: []string{"base"}, Run: func() (string, error) {
				return fmt.Sprintf("right %d\n", shared*2), nil
			}},
			{Name: "join", Deps: []string{"left", "right"}, Run: func() (string, error) {
				return "join\n", nil
			}},
			{Name: "solo", Run: func() (string, error) { return "solo\n", nil }},
		}
	}
	seq, err := RunDAG(build(), 1)
	if err != nil {
		t.Fatalf("sequential RunDAG: %v", err)
	}
	for _, jobs := range []int{2, 8, 0} {
		par, err := RunDAG(build(), jobs)
		if err != nil {
			t.Fatalf("RunDAG(jobs=%d): %v", jobs, err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Errorf("jobs=%d results = %+v, want sequential %+v", jobs, par, seq)
		}
	}
}

func TestRunDAGSkipsDependentsOfFailedTask(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	tasks := []Task{
		{Name: "bad", Run: func() (string, error) { return "", boom }},
		{Name: "child", Deps: []string{"bad"}, Run: func() (string, error) {
			ran.Add(1)
			return "", nil
		}},
		{Name: "grandchild", Deps: []string{"child"}, Run: func() (string, error) {
			ran.Add(1)
			return "", nil
		}},
		{Name: "bystander", Run: func() (string, error) { return "ok", nil }},
	}
	res, err := RunDAG(tasks, 4)
	if err != nil {
		t.Fatalf("RunDAG: %v", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d dependents of the failed task ran, want 0", ran.Load())
	}
	if !errors.Is(res[0].Err, boom) || res[0].Skipped {
		t.Errorf("bad result = %+v, want Err=boom, not skipped", res[0])
	}
	for _, i := range []int{1, 2} {
		if !res[i].Skipped || res[i].Err == nil {
			t.Errorf("%s result = %+v, want skipped with error", res[i].Name, res[i])
		}
	}
	if res[3].Err != nil || res[3].Skipped || res[3].Output != "ok" {
		t.Errorf("bystander result = %+v, want clean success", res[3])
	}
}

func TestRunDAGRejectsMalformedGraphs(t *testing.T) {
	noop := func() (string, error) { return "", nil }
	cases := []struct {
		name  string
		tasks []Task
		want  string
	}{
		{"empty name", []Task{{Name: "", Run: noop}}, "empty name"},
		{"nil run", []Task{{Name: "a"}}, "nil Run"},
		{"duplicate", []Task{{Name: "a", Run: noop}, {Name: "a", Run: noop}}, "duplicate"},
		{"unknown dep", []Task{{Name: "a", Deps: []string{"ghost"}, Run: noop}}, "unknown"},
		{"self dep", []Task{{Name: "a", Deps: []string{"a"}, Run: noop}}, "itself"},
		{"cycle", []Task{
			{Name: "a", Deps: []string{"b"}, Run: noop},
			{Name: "b", Deps: []string{"a"}, Run: noop},
		}, "cycle"},
	}
	for _, tc := range cases {
		if _, err := RunDAG(tc.tasks, 1); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: RunDAG error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestRunDAGEmpty(t *testing.T) {
	res, err := RunDAG(nil, 4)
	if err != nil {
		t.Fatalf("RunDAG(nil): %v", err)
	}
	if len(res) != 0 {
		t.Errorf("RunDAG(nil) = %d results, want 0", len(res))
	}
}
