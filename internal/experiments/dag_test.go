package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunDAGResultsInInputOrder(t *testing.T) {
	// Task durations are inverted relative to input order (the first task is
	// the slowest), so completion order differs from input order under
	// parallelism; the results must come back in input order anyway.
	var tasks []Task
	for i := 0; i < 8; i++ {
		i := i
		tasks = append(tasks, Task{
			Name: fmt.Sprintf("t%d", i),
			Run: func() (string, error) {
				for spin := 0; spin < (8-i)*1000; spin++ {
					_ = spin * spin
				}
				return fmt.Sprintf("out%d", i), nil
			},
		})
	}
	res, err := RunDAG(tasks, 4)
	if err != nil {
		t.Fatalf("RunDAG: %v", err)
	}
	for i, r := range res {
		if r.Name != tasks[i].Name || r.Output != fmt.Sprintf("out%d", i) {
			t.Errorf("result %d = {%s %q}, want {%s out%d}", i, r.Name, r.Output, tasks[i].Name, i)
		}
	}
}

func TestRunDAGDependencyHappensBefore(t *testing.T) {
	// A linear chain threaded through shared state: each link appends its
	// letter only if its dependency already appended. Any ordering violation
	// corrupts the string.
	var mu sync.Mutex
	var order string
	link := func(name, prev string) Task {
		deps := []string(nil)
		if prev != "" {
			deps = []string{prev}
		}
		return Task{Name: name, Deps: deps, Run: func() (string, error) {
			mu.Lock()
			defer mu.Unlock()
			order += name
			return "", nil
		}}
	}
	tasks := []Task{
		link("c", "b"), link("a", ""), link("b", "a"), link("d", "c"),
	}
	if _, err := RunDAG(tasks, 8); err != nil {
		t.Fatalf("RunDAG: %v", err)
	}
	if order != "abcd" {
		t.Errorf("execution order = %q, want abcd", order)
	}
}

func TestRunDAGParallelMatchesSequential(t *testing.T) {
	// The hsrbench invariant: for one task set, -jobs N renders byte-identical
	// output to the sequential run. Tasks form a diamond sharing state
	// through their dependency.
	build := func() []Task {
		shared := 0
		return []Task{
			{Name: "base", Run: func() (string, error) { shared = 42; return "base\n", nil }},
			{Name: "left", Deps: []string{"base"}, Run: func() (string, error) {
				return fmt.Sprintf("left %d\n", shared), nil
			}},
			{Name: "right", Deps: []string{"base"}, Run: func() (string, error) {
				return fmt.Sprintf("right %d\n", shared*2), nil
			}},
			{Name: "join", Deps: []string{"left", "right"}, Run: func() (string, error) {
				return "join\n", nil
			}},
			{Name: "solo", Run: func() (string, error) { return "solo\n", nil }},
		}
	}
	// Wall/Mallocs/AllocBytes are resource metrics, documented as never
	// reproducible; only the experiment outcome must match.
	strip := func(rs []TaskResult) []TaskResult {
		out := append([]TaskResult(nil), rs...)
		for i := range out {
			out[i].Wall, out[i].Mallocs, out[i].AllocBytes = 0, 0, 0
		}
		return out
	}
	seq, err := RunDAG(build(), 1)
	if err != nil {
		t.Fatalf("sequential RunDAG: %v", err)
	}
	for _, jobs := range []int{2, 8, 0} {
		par, err := RunDAG(build(), jobs)
		if err != nil {
			t.Fatalf("RunDAG(jobs=%d): %v", jobs, err)
		}
		if !reflect.DeepEqual(strip(par), strip(seq)) {
			t.Errorf("jobs=%d results = %+v, want sequential %+v", jobs, par, seq)
		}
	}
}

func TestRunDAGSkipsDependentsOfFailedTask(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	tasks := []Task{
		{Name: "bad", Run: func() (string, error) { return "", boom }},
		{Name: "child", Deps: []string{"bad"}, Run: func() (string, error) {
			ran.Add(1)
			return "", nil
		}},
		{Name: "grandchild", Deps: []string{"child"}, Run: func() (string, error) {
			ran.Add(1)
			return "", nil
		}},
		{Name: "bystander", Run: func() (string, error) { return "ok", nil }},
	}
	res, err := RunDAG(tasks, 4)
	if err != nil {
		t.Fatalf("RunDAG: %v", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d dependents of the failed task ran, want 0", ran.Load())
	}
	if !errors.Is(res[0].Err, boom) || res[0].Skipped {
		t.Errorf("bad result = %+v, want Err=boom, not skipped", res[0])
	}
	for _, i := range []int{1, 2} {
		if !res[i].Skipped || res[i].Err == nil {
			t.Errorf("%s result = %+v, want skipped with error", res[i].Name, res[i])
		}
	}
	if res[3].Err != nil || res[3].Skipped || res[3].Output != "ok" {
		t.Errorf("bystander result = %+v, want clean success", res[3])
	}
}

func TestRunDAGRejectsMalformedGraphs(t *testing.T) {
	noop := func() (string, error) { return "", nil }
	cases := []struct {
		name  string
		tasks []Task
		want  string
	}{
		{"empty name", []Task{{Name: "", Run: noop}}, "empty name"},
		{"nil run", []Task{{Name: "a"}}, "nil Run"},
		{"duplicate", []Task{{Name: "a", Run: noop}, {Name: "a", Run: noop}}, "duplicate"},
		{"unknown dep", []Task{{Name: "a", Deps: []string{"ghost"}, Run: noop}}, "unknown"},
		{"self dep", []Task{{Name: "a", Deps: []string{"a"}, Run: noop}}, "itself"},
		{"cycle", []Task{
			{Name: "a", Deps: []string{"b"}, Run: noop},
			{Name: "b", Deps: []string{"a"}, Run: noop},
		}, "cycle"},
	}
	for _, tc := range cases {
		if _, err := RunDAG(tc.tasks, 1); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: RunDAG error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestRunDAGEmpty(t *testing.T) {
	res, err := RunDAG(nil, 4)
	if err != nil {
		t.Fatalf("RunDAG(nil): %v", err)
	}
	if len(res) != 0 {
		t.Errorf("RunDAG(nil) = %d results, want 0", len(res))
	}
}

func TestRunDAGRecoversPanickingTask(t *testing.T) {
	var cRan, dRan bool
	tasks := []Task{
		{Name: "a", Run: func() (string, error) { panic("kaboom") }},
		{Name: "b", Deps: []string{"a"}, Run: func() (string, error) { return "b-out", nil }},
		{Name: "c", Run: func() (string, error) { cRan = true; return "c-out", nil }},
		{Name: "d", Deps: []string{"c"}, Run: func() (string, error) { dRan = true; return "d-out", nil }},
	}
	results, err := RunDAG(tasks, 2)
	if err != nil {
		t.Fatalf("RunDAG: %v", err)
	}
	var pe *PanicError
	if !errors.As(results[0].Err, &pe) {
		t.Fatalf("panicking task's Err = %v, want *PanicError", results[0].Err)
	}
	if pe.Value != "kaboom" {
		t.Errorf("PanicError.Value = %v, want the panic value", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Error("PanicError.Stack does not hold a goroutine stack")
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Errorf("PanicError.Error() = %q, want it to name the panic value", pe.Error())
	}
	if !results[1].Skipped {
		t.Error("dependent of the panicking task was not skipped")
	}
	if !cRan || !dRan {
		t.Error("independent branch did not run to completion")
	}
	if results[2].Err != nil || results[3].Err != nil {
		t.Errorf("independent branch reported errors: %v, %v", results[2].Err, results[3].Err)
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if results[i].Name != want {
			t.Fatalf("results out of input order: %v", results)
		}
	}
}

func TestRunDAGContextCancellation(t *testing.T) {
	// The first task cancels the context while running; it must finish
	// normally, and every task that has not started yet must be reported
	// Skipped with the context error (including transitively).
	ctx, cancel := context.WithCancel(context.Background())
	tasks := []Task{
		{Name: "first", Run: func() (string, error) { cancel(); return "first-out", nil }},
		{Name: "second", Deps: []string{"first"}, Run: func() (string, error) {
			t.Error("second ran after cancellation")
			return "", nil
		}},
		{Name: "third", Deps: []string{"second"}, Run: func() (string, error) {
			t.Error("third ran after cancellation")
			return "", nil
		}},
	}
	results, err := RunDAGContext(ctx, tasks, 1)
	if err != nil {
		t.Fatalf("RunDAGContext: %v", err)
	}
	if results[0].Err != nil || results[0].Output != "first-out" {
		t.Errorf("running task's result was disturbed: %+v", results[0])
	}
	for _, r := range results[1:] {
		if !r.Skipped || r.Err == nil {
			t.Errorf("task %s not skipped after cancellation: %+v", r.Name, r)
		}
	}
	// The directly cancelled task carries the context error; its dependents
	// cascade through the normal failed-dependency path.
	if !errors.Is(results[1].Err, context.Canceled) {
		t.Errorf("task second Err = %v, want the context error", results[1].Err)
	}
}

func TestRunDAGContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	results, err := RunDAGContext(ctx, []Task{
		{Name: "only", Run: func() (string, error) { ran = true; return "", nil }},
	}, 4)
	if err != nil {
		t.Fatalf("RunDAGContext: %v", err)
	}
	if ran {
		t.Error("task ran under a pre-cancelled context")
	}
	if !results[0].Skipped || !errors.Is(results[0].Err, context.Canceled) {
		t.Errorf("result = %+v, want skipped with the context error", results[0])
	}
}
