package experiments

import (
	"strings"
	"testing"
)

func TestModelValidationOnStaticChannel(t *testing.T) {
	res, err := ModelValidation(Quick())
	if err != nil {
		t.Fatalf("ModelValidation: %v", err)
	}
	if len(res.Points) != 7 {
		t.Fatalf("points = %d, want 7", len(res.Points))
	}
	// Throughput must fall monotonically with the loss rate.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].ActualPps >= res.Points[i-1].ActualPps {
			t.Errorf("actual pps not decreasing at p_d=%v", res.Points[i].PData)
		}
	}
	// On its home turf the Padhye model must fit reasonably well.
	if res.MeanDPadhye > 0.30 {
		t.Errorf("Padhye mean D on a static Bernoulli channel = %v, want <= 30%%", res.MeanDPadhye)
	}
	// And the enhanced model must not be wildly off either (it reduces to
	// Padhye's world when P_a ~ 0 and q ~ p_d).
	if res.MeanDEnh > 0.35 {
		t.Errorf("enhanced mean D on a static channel = %v, want <= 35%%", res.MeanDEnh)
	}
	if !strings.Contains(res.Render(), "validation") {
		t.Error("render missing title")
	}
}
