package experiments

import (
	"strings"
	"testing"
)

func TestWindowTrace(t *testing.T) {
	fig1, err := Figure1(Quick())
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	res, err := WindowTrace(fig1)
	if err != nil {
		t.Fatalf("WindowTrace: %v", err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no window samples")
	}
	if len(res.Timeouts) == 0 {
		t.Error("no timeout marks on an HSR flow")
	}
	// The window must stay within (0, Wm] and visit both low (post-timeout)
	// and high (near the limit) values.
	var lo, hi float64 = 1e9, 0
	for _, s := range res.Samples {
		if s.Cwnd <= 0 || s.Cwnd > float64(res.Wm)+1e-9 {
			t.Fatalf("cwnd sample %v outside (0, %d]", s.Cwnd, res.Wm)
		}
		if s.Cwnd < lo {
			lo = s.Cwnd
		}
		if s.Cwnd > hi {
			hi = s.Cwnd
		}
	}
	if lo > 2 {
		t.Errorf("window never collapsed (min %v) despite timeouts", lo)
	}
	if hi < float64(res.Wm)/2 {
		t.Errorf("window never grew past Wm/2 (max %v)", hi)
	}
	out := res.Render()
	if !strings.Contains(out, "Window evolution") || !strings.Contains(out, "timeouts") {
		t.Error("render incomplete")
	}
}

func TestWindowTraceValidation(t *testing.T) {
	if _, err := WindowTrace(nil); err == nil {
		t.Error("nil input accepted")
	}
}
