package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVTables(t *testing.T) {
	ctx := testContext(t)
	f3 := Figure3(ctx)
	if tab := f3.CSVTable(); len(tab.Rows) != len(f3.RecoveryLoss)+len(f3.LifetimeLoss) {
		t.Errorf("fig3 csv rows = %d", len(tab.Rows))
	}
	f4 := Figure4(ctx)
	if tab := f4.CSVTable(); len(tab.Rows) != len(f4.AckLoss) {
		t.Errorf("fig4 csv rows = %d, want %d", len(tab.Rows), len(f4.AckLoss))
	}
	f6 := Figure6(ctx)
	if tab := f6.CSVTable(); len(tab.Rows) != len(f6.HSR)+len(f6.Stationary) {
		t.Errorf("fig6 csv rows = %d", len(tab.Rows))
	}
	f10, err := Figure10(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tab := f10.CSVTable()
	var flows int
	for _, op := range f10.Operators {
		flows += len(op.Flows)
	}
	if len(tab.Rows) != flows {
		t.Errorf("fig10 csv rows = %d, want %d", len(tab.Rows), flows)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "flow,operator,actual_pps") {
		t.Errorf("csv header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestWriteCSVCreatesFile(t *testing.T) {
	ctx := testContext(t)
	dir := t.TempDir()
	if err := WriteCSV(dir, "fig4", Figure4(ctx).CSVTable()); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4.csv"))
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !strings.Contains(string(data), "ack_loss_rate") {
		t.Error("csv content missing header")
	}
}
