package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/export"
	"repro/internal/telemetry"
)

// Task names of the shared-state producers every consumer depends on.
// CampaignsTaskName simulates the HSR + stationary Table I campaigns into
// the shared Context; ExemplarTaskName simulates the Figure 1 exemplar flow.
const (
	CampaignsTaskName = "campaigns"
	ExemplarTaskName  = "exemplar-flow"
)

// catalogSections is the canonical experiment catalog: every named
// experiment the CLI and the service can schedule, in render order. needCtx
// marks sections consuming the shared campaigns Context, needFig1 those
// consuming the exemplar flow.
var catalogSections = []struct {
	name     string
	desc     string
	needCtx  bool
	needFig1 bool
	// optIn marks experiments "all" does not expand to: they are scheduled
	// only when named explicitly. The shared-bottleneck contention
	// experiments are opt-in so the default suite's output stays exactly
	// the paper reproduction.
	optIn bool
}{
	{name: "table1", desc: "Table I: per-operator HSR vs stationary campaign summary", needCtx: true},
	{name: "fig1", desc: "Figure 1: exemplar HSR flow delivery timeline", needFig1: true},
	{name: "fig2", desc: "Figure 2: exemplar flow RTT evolution", needFig1: true},
	{name: "window", desc: "Window evolution of the exemplar flow (live Figs 7-9)", needFig1: true},
	{name: "fig3", desc: "Figure 3: packet-loss-rate comparison across campaigns", needCtx: true},
	{name: "fig4", desc: "Figure 4: ACK-loss versus timeout correlation", needCtx: true},
	{name: "fig6", desc: "Figure 6: ACK loss rates by operator and mobility", needCtx: true},
	{name: "fig10", desc: "Figure 10: throughput-model fits against campaign data", needCtx: true},
	{name: "fig12", desc: "Figure 12: MPTCP subflow comparison"},
	{name: "scalars", desc: "Headline scalar claims from the paper's measurement study", needCtx: true},
	{name: "delack", desc: "Delayed-ACK parameter sweep (Section V-A)"},
	{name: "ablation", desc: "Throughput-model term ablation", needCtx: true},
	{name: "backupq", desc: "MPTCP backup-mode handoff mitigation (Section V-B)"},
	{name: "eifel", desc: "Eifel-style spurious-RTO detection and response"},
	{name: "sensitivity", desc: "Channel ablation: handoff-duration sensitivity sweep"},
	{name: "variants", desc: "Reno vs NewReno loss-recovery comparison"},
	{name: "speed", desc: "Train-speed sweep from 0 to 300 km/h"},
	{name: "validation", desc: "Pipeline validation on a static Bernoulli channel"},
	{name: "faults", desc: "Fault-injection severity sweep (storms, blackouts, bursts)"},
	{name: "fairness", desc: "Intra-variant fairness: same-CC flows sharing one bottleneck cell", optIn: true},
	{name: "ccmix", desc: "Mixed congestion control: one flow per variant on a shared cell", optIn: true},
}

// CatalogNames returns every experiment name in canonical render order.
func CatalogNames() []string {
	names := make([]string, len(catalogSections))
	for i, s := range catalogSections {
		names[i] = s.name
	}
	return names
}

// DefaultCatalogNames returns the experiments "all" expands to — the paper
// reproduction suite, excluding the opt-in contention experiments — in
// canonical render order.
func DefaultCatalogNames() []string {
	names := make([]string, 0, len(catalogSections))
	for _, s := range catalogSections {
		if !s.optIn {
			names = append(names, s.name)
		}
	}
	return names
}

// CatalogEntry is one experiment's listing: its schedulable name and a
// one-line description.
type CatalogEntry struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// OptIn marks experiments excluded from the "all" expansion.
	OptIn bool `json:"opt_in,omitempty"`
}

// CatalogList returns every experiment with its description, in canonical
// render order (the -list flag and the /v1/experiments endpoint).
func CatalogList() []CatalogEntry {
	out := make([]CatalogEntry, len(catalogSections))
	for i, s := range catalogSections {
		out[i] = CatalogEntry{Name: s.name, Description: s.desc, OptIn: s.optIn}
	}
	return out
}

// IsCatalogName reports whether name is a known catalog experiment.
func IsCatalogName(name string) bool {
	for _, s := range catalogSections {
		if s.name == name {
			return true
		}
	}
	return false
}

// CatalogOptions customizes a catalog build.
type CatalogOptions struct {
	// WriteCSV, when non-nil, additionally receives each figure experiment's
	// CSV series (name, table) from inside the experiment's task; an error
	// fails that task.
	WriteCSV func(name string, t *export.Table) error
	// ForceCampaigns schedules the shared campaigns task even when no
	// selected experiment consumes it (used by report generation and
	// campaign-only jobs).
	ForceCampaigns bool
	// Logf, when non-nil, receives human-oriented progress notes (campaign
	// start/finish). It may be called from worker goroutines.
	Logf func(format string, args ...any)
}

// Catalog is a buildable schedule over the named experiments: the dependency
// tasks for shared state plus one task per requested experiment, wired
// exactly like cmd/hsrbench's sections. Run the Tasks with RunDAGProgress;
// after the campaigns task completed, Context returns the shared campaigns.
type Catalog struct {
	// Tasks is the dependency-aware schedule, in canonical render order.
	Tasks []Task

	cfg  Config
	opt  CatalogOptions
	ectx *Context
	fig1 *Figure1Result

	ccMu sync.Mutex
	cc   []telemetry.CCGroup
}

// Context returns the shared campaigns Context. It is only non-nil after
// the catalog's campaigns task has run (schedule a dependent task on
// CampaignsTaskName to consume it safely).
func (c *Catalog) Context() *Context { return c.ectx }

// addCCGroups records shared-bottleneck group results from an experiment
// task (tasks may run concurrently under RunDAG).
func (c *Catalog) addCCGroups(groups ...telemetry.CCGroup) {
	c.ccMu.Lock()
	c.cc = append(c.cc, groups...)
	c.ccMu.Unlock()
}

// CCReport returns the congestion-control section collected from the
// fairness/ccmix tasks, sorted by (experiment, label) so the report is
// deterministic at any parallelism; nil when neither experiment ran.
func (c *Catalog) CCReport() *telemetry.CCReport {
	c.ccMu.Lock()
	defer c.ccMu.Unlock()
	if len(c.cc) == 0 {
		return nil
	}
	groups := make([]telemetry.CCGroup, len(c.cc))
	copy(groups, c.cc)
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].Experiment != groups[j].Experiment {
			return groups[i].Experiment < groups[j].Experiment
		}
		return groups[i].Label < groups[j].Label
	})
	return &telemetry.CCReport{Groups: groups}
}

// sectionHeader renders an hsrbench output section heading.
func sectionHeader(s string) string { return strings.Repeat("=", 90) + "\n" + s + "\n\n" }

// NewCatalog builds the experiment schedule for the requested names under
// cfg. Unknown names are an error (callers that want to ignore them filter
// with IsCatalogName first); duplicate names collapse to one task. The
// returned tasks run under ctx: once it is done, unstarted tasks are
// skipped, exactly like RunDAGContext.
func NewCatalog(ctx context.Context, cfg Config, names []string, opt CatalogOptions) (*Catalog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	want := make(map[string]bool, len(names))
	for _, name := range names {
		if !IsCatalogName(name) {
			return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)",
				name, strings.Join(CatalogNames(), ", "))
		}
		want[name] = true
	}
	needCtx := opt.ForceCampaigns
	needFig1 := false
	for _, s := range catalogSections {
		if want[s.name] && s.needCtx {
			needCtx = true
		}
		if want[s.name] && s.needFig1 {
			needFig1 = true
		}
	}

	cat := &Catalog{cfg: cfg, opt: opt}
	// addSpanned registers a task wrapped in a task span (a no-op when
	// cfg.Trace is nil); the task body receives its own span ID so shared-
	// state producers can parent their campaign spans beneath the task.
	addSpanned := func(name string, deps []string, run func(parent string) (string, error)) {
		cat.Tasks = append(cat.Tasks, Task{Name: name, Deps: deps, Run: func() (string, error) {
			sp := cfg.Trace.StartSpan(cfg.TraceParent, "task", name)
			out, err := run(sp.ID())
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
			return out, err
		}})
	}
	add := func(name string, deps []string, run func() (string, error)) {
		addSpanned(name, deps, func(string) (string, error) { return run() })
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var ctxDep, fig1Dep []string
	if needCtx {
		ctxDep = []string{CampaignsTaskName}
		addSpanned(CampaignsTaskName, nil, func(parent string) (string, error) {
			logf("running campaigns (seed=%d, duration=%v, flowsPerRow=%d)...",
				cfg.Seed, cfg.FlowDuration, cfg.FlowsPerRow)
			start := time.Now()
			ccfg := cfg
			if ccfg.Trace != nil {
				ccfg.TraceParent = parent
			}
			var err error
			cat.ectx, err = NewContextWith(ctx, ccfg)
			if err != nil {
				return "", err
			}
			logf("campaigns done in %v", time.Since(start).Round(time.Millisecond))
			return "", nil
		})
	}
	if needFig1 {
		fig1Dep = []string{ExemplarTaskName}
		add(ExemplarTaskName, nil, func() (string, error) {
			var err error
			cat.fig1, err = Figure1(cfg)
			return "", err
		})
	}

	writeCSV := func(name string, t *export.Table) error {
		if opt.WriteCSV == nil {
			return nil
		}
		return opt.WriteCSV(name, t)
	}

	if want["table1"] {
		add("table1", ctxDep, func() (string, error) {
			return sectionHeader("TABLE I") + Table1(cat.ectx).Render() + "\n", nil
		})
	}
	if want["fig1"] {
		add("fig1", fig1Dep, func() (string, error) {
			if err := writeCSV("fig1_delivery", cat.fig1.CSVTable()); err != nil {
				return "", err
			}
			return sectionHeader("FIGURE 1") + cat.fig1.Render() + "\n", nil
		})
	}
	if want["fig2"] {
		add("fig2", fig1Dep, func() (string, error) {
			f2, err := Figure2(cat.fig1)
			if err != nil {
				return "", err
			}
			return sectionHeader("FIGURE 2") + f2.Render() + "\n", nil
		})
	}
	if want["window"] {
		add("window", fig1Dep, func() (string, error) {
			w, err := WindowTrace(cat.fig1)
			if err != nil {
				return "", err
			}
			return sectionHeader("WINDOW EVOLUTION (the live Figs 7-9)") + w.Render() + "\n", nil
		})
	}
	if want["fig3"] {
		add("fig3", ctxDep, func() (string, error) {
			f3 := Figure3(cat.ectx)
			if err := writeCSV("fig3_loss_rates", f3.CSVTable()); err != nil {
				return "", err
			}
			return sectionHeader("FIGURE 3") + f3.Render() + "\n", nil
		})
	}
	if want["fig4"] {
		add("fig4", ctxDep, func() (string, error) {
			f4 := Figure4(cat.ectx)
			if err := writeCSV("fig4_ack_vs_timeouts", f4.CSVTable()); err != nil {
				return "", err
			}
			return sectionHeader("FIGURE 4") + f4.Render() + "\n", nil
		})
	}
	if want["fig6"] {
		add("fig6", ctxDep, func() (string, error) {
			f6 := Figure6(cat.ectx)
			if err := writeCSV("fig6_ack_loss", f6.CSVTable()); err != nil {
				return "", err
			}
			return sectionHeader("FIGURE 6") + f6.Render() + "\n", nil
		})
	}
	if want["fig10"] {
		add("fig10", ctxDep, func() (string, error) {
			f10, err := Figure10(cat.ectx)
			if err != nil {
				return "", err
			}
			if err := writeCSV("fig10_model_fits", f10.CSVTable()); err != nil {
				return "", err
			}
			return sectionHeader("FIGURE 10") + f10.Render() + "\n", nil
		})
	}
	if want["fig12"] {
		add("fig12", nil, func() (string, error) {
			f12, err := Figure12(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("fig12_mptcp", f12.CSVTable()); err != nil {
				return "", err
			}
			return sectionHeader("FIGURE 12") + f12.Render() + "\n", nil
		})
	}
	if want["scalars"] {
		add("scalars", ctxDep, func() (string, error) {
			return sectionHeader("HEADLINE CLAIMS") + Scalars(cat.ectx).Render() + "\n", nil
		})
	}
	if want["delack"] {
		add("delack", nil, func() (string, error) {
			d, err := DelayedAck(cfg)
			if err != nil {
				return "", err
			}
			return sectionHeader("DELAYED-ACK SWEEP (Section V-A)") + d.Render() + "\n", nil
		})
	}
	if want["ablation"] {
		add("ablation", ctxDep, func() (string, error) {
			a, err := ModelAblation(cat.ectx)
			if err != nil {
				return "", err
			}
			return sectionHeader("MODEL ABLATION") + a.Render() + "\n", nil
		})
	}
	if want["backupq"] {
		add("backupq", nil, func() (string, error) {
			bq, err := BackupQ(cfg)
			if err != nil {
				return "", err
			}
			return sectionHeader("MPTCP BACKUP MODE (Section V-B)") + bq.Render() + "\n", nil
		})
	}
	if want["eifel"] {
		add("eifel", nil, func() (string, error) {
			e, err := Eifel(cfg)
			if err != nil {
				return "", err
			}
			return sectionHeader("EIFEL-STYLE SPURIOUS-RTO RESPONSE") + e.Render() + "\n", nil
		})
	}
	if want["sensitivity"] {
		add("sensitivity", nil, func() (string, error) {
			s, err := ChannelSensitivity(cfg)
			if err != nil {
				return "", err
			}
			return sectionHeader("CHANNEL ABLATION — HANDOFF DURATION SWEEP") + s.Render() + "\n", nil
		})
	}
	if want["variants"] {
		add("variants", nil, func() (string, error) {
			v, err := Variants(cfg)
			if err != nil {
				return "", err
			}
			return sectionHeader("VARIANT COMPARISON — RENO VS NEWRENO") + v.Render() + "\n", nil
		})
	}
	if want["speed"] {
		add("speed", nil, func() (string, error) {
			sp, err := SpeedSweep(cfg)
			if err != nil {
				return "", err
			}
			return sectionHeader("SPEED SWEEP — 0 TO 300 KM/H") + sp.Render() + "\n", nil
		})
	}
	if want["validation"] {
		add("validation", nil, func() (string, error) {
			v, err := ModelValidation(cfg)
			if err != nil {
				return "", err
			}
			return sectionHeader("PIPELINE VALIDATION — STATIC BERNOULLI CHANNEL") + v.Render() + "\n", nil
		})
	}
	if want["faults"] {
		add("faults", nil, func() (string, error) {
			f, err := FaultSweep(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("fault_sweep", f.CSVTable()); err != nil {
				return "", err
			}
			return sectionHeader("FAULT-INJECTION SEVERITY SWEEP") + f.Render() + "\n", nil
		})
	}
	if want["fairness"] {
		add("fairness", nil, func() (string, error) {
			r, err := Fairness(cfg)
			if err != nil {
				return "", err
			}
			for i := range r.Groups {
				cat.addCCGroups(r.Groups[i].telemetryGroup("fairness"))
			}
			return sectionHeader("SHARED-BOTTLENECK FAIRNESS") + r.Render() + "\n", nil
		})
	}
	if want["ccmix"] {
		add("ccmix", nil, func() (string, error) {
			r, err := CCMix(cfg)
			if err != nil {
				return "", err
			}
			for i := range r.Groups {
				cat.addCCGroups(r.Groups[i].telemetryGroup("ccmix"))
			}
			return sectionHeader("MIXED CONGESTION CONTROL ON ONE CELL") + r.Render() + "\n", nil
		})
	}
	return cat, nil
}
