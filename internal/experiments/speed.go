package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cellular"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/railway"
	"repro/internal/stats"
)

// SpeedPoint is one cruise-speed level's outcome.
type SpeedPoint struct {
	SpeedKmh         float64
	MeanTputPps      float64
	MeanAckLoss      float64
	TimeoutSequences int
	MeanRecovery     time.Duration
}

// SpeedSweepResult reproduces the premise the paper builds on (its
// Section II cites measurements showing driving at 100 km/h barely hurts
// TCP while 300 km/h devastates it): throughput and timeout behaviour as a
// function of cruise speed on the same carrier. Speed acts through two
// mechanisms — the handoff rate (boundary crossings per second) and the
// Doppler-driven residual loss — both of which scale with velocity in the
// channel model.
type SpeedSweepResult struct {
	Operator string
	Points   []SpeedPoint
	Flows    int
}

// SpeedSweep measures China Mobile flows at 0, 100, 200 and 300 km/h.
func SpeedSweep(cfg Config) (*SpeedSweepResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	flows := cfg.PairsPerOperator * 2
	res := &SpeedSweepResult{Operator: cellular.ChinaMobileLTE.Name, Flows: flows}
	for _, speed := range []float64{0, 100, 200, 300} {
		profile := railway.StationaryProfile
		if speed > 0 {
			profile = railway.SpeedProfile{CruiseKmh: speed, AccelMS2: 0.35}
		}
		trip, err := railway.NewTrip(railway.BeijingTianjin, profile)
		if err != nil {
			return nil, err
		}
		var offsetBase time.Duration
		if !trip.Stationary() {
			offsetBase, _ = trip.CruiseWindow()
		}
		pt := SpeedPoint{SpeedKmh: speed}
		var tput, aloss stats.Running
		var rec time.Duration
		var recN int
		for i := 0; i < flows; i++ {
			offset := offsetBase
			if !trip.Stationary() {
				offset += time.Duration(i) * 23 * time.Second
			}
			sc := dataset.Scenario{
				ID:           fmt.Sprintf("speed-%.0f-%d", speed, i),
				Operator:     cellular.ChinaMobileLTE,
				Trip:         trip,
				TripOffset:   offset,
				FlowDuration: cfg.FlowDuration,
				Seed:         cfg.Seed*271 + int64(i),
				TCP:          defaultTCP(),
				Scenario:     fmt.Sprintf("speed-%.0f", speed),
			}
			m, err := cfg.analyzeFlow(sc)
			if err != nil {
				return nil, err
			}
			tput.Add(m.ThroughputPps)
			aloss.Add(m.AckLossRate)
			pt.TimeoutSequences += m.TimeoutSequences
			if len(m.Recoveries) > 0 {
				rec += m.MeanRecoveryDuration
				recN++
			}
		}
		pt.MeanTputPps = tput.Mean()
		pt.MeanAckLoss = aloss.Mean()
		if recN > 0 {
			pt.MeanRecovery = rec / time.Duration(recN)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render prints the sweep.
func (r *SpeedSweepResult) Render() string {
	t := export.NewTable("speed km/h", "mean pps", "p_a", "timeout seqs", "mean recovery")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.SpeedKmh), fmt.Sprintf("%.1f", p.MeanTputPps),
			export.Percent(p.MeanAckLoss), fmt.Sprintf("%d", p.TimeoutSequences),
			fmt.Sprintf("%.2fs", p.MeanRecovery.Seconds()))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Speed sweep — %s, %d flows per level\n", r.Operator, r.Flows)
	b.WriteString(t.Render())
	b.WriteString("driving speeds dent throughput; 300 km/h collapses it (the premise the paper cites)\n")
	return b.String()
}
