package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/export"
)

// CSVTable renders the Fig 1 scatter as rows of (send time, kind, latency,
// lost, seq) for external plotting.
func (r *Figure1Result) CSVTable() *export.Table {
	t := export.NewTable("sent_s", "kind", "latency_ms", "lost", "seq")
	for _, p := range r.Points {
		lat := "-1"
		if !p.Lost {
			lat = fmt.Sprintf("%.3f", p.Latency.Seconds()*1000)
		}
		t.AddRow(fmt.Sprintf("%.6f", p.SentAt.Seconds()), p.Kind.String(), lat,
			fmt.Sprintf("%v", p.Lost), fmt.Sprintf("%d", p.Seq))
	}
	return t
}

// CSVTable renders the Fig 3 distributions: one row per flow with its
// lifetime loss rate and (when defined) its recovery-phase loss rate.
func (r *Figure3Result) CSVTable() *export.Table {
	t := export.NewTable("series", "loss_rate")
	for _, v := range r.RecoveryLoss {
		t.AddRow("recovery_q", fmt.Sprintf("%.6f", v))
	}
	for _, v := range r.LifetimeLoss {
		t.AddRow("lifetime_pd", fmt.Sprintf("%.6f", v))
	}
	return t
}

// CSVTable renders the Fig 4 scatter.
func (r *Figure4Result) CSVTable() *export.Table {
	t := export.NewTable("ack_loss_rate", "timeout_probability")
	for i := range r.AckLoss {
		t.AddRow(fmt.Sprintf("%.6f", r.AckLoss[i]), fmt.Sprintf("%.6f", r.TimeoutProb[i]))
	}
	return t
}

// CSVTable renders the Fig 6 distributions.
func (r *Figure6Result) CSVTable() *export.Table {
	t := export.NewTable("scenario", "ack_loss_rate")
	for _, v := range r.HSR {
		t.AddRow("hsr", fmt.Sprintf("%.6f", v))
	}
	for _, v := range r.Stationary {
		t.AddRow("stationary", fmt.Sprintf("%.6f", v))
	}
	return t
}

// CSVTable renders the per-flow model fits of Fig 10.
func (r *Figure10Result) CSVTable() *export.Table {
	t := export.NewTable("flow", "operator", "actual_pps", "padhye_pps", "enhanced_pps", "D_padhye", "D_enhanced")
	for _, op := range r.Operators {
		for _, f := range op.Flows {
			t.AddRow(f.FlowID, f.Operator,
				fmt.Sprintf("%.3f", f.ActualPps),
				fmt.Sprintf("%.3f", f.PadhyePps), fmt.Sprintf("%.3f", f.EnhPps),
				fmt.Sprintf("%.5f", f.DPadhye), fmt.Sprintf("%.5f", f.DEnhanced))
		}
	}
	return t
}

// CSVTable renders the Fig 12 pairs.
func (r *Figure12Result) CSVTable() *export.Table {
	t := export.NewTable("operator", "pair", "single_pps", "duplex_pps", "improvement")
	for _, op := range r.Operators {
		for i, p := range op.Pairs {
			t.AddRow(op.Name, fmt.Sprintf("%d", i),
				fmt.Sprintf("%.3f", p.SinglePps), fmt.Sprintf("%.3f", p.DuplexPps),
				fmt.Sprintf("%.5f", p.Improvement))
		}
	}
	return t
}

// WriteCSV writes one experiment's CSV table into dir as <name>.csv.
func WriteCSV(dir, name string, t *export.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: create csv dir: %w", err)
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: create %s: %w", path, err)
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
