package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cellular"
	"repro/internal/dataset"
	"repro/internal/railway"
	"repro/internal/tcp"
	"repro/internal/telemetry"
)

// BenchSnapshot is the machine-readable performance snapshot hsrbench
// -bench-json writes: the wall-clock and allocation numbers the performance
// docs quote, in one JSON object so regressions are diffable across
// commits. Wall-clock fields are machine-dependent; the allocation and
// kernel-event counts are deterministic for a seed.
type BenchSnapshot struct {
	Tool       string `json:"tool"`
	Version    string `json:"version"`
	Seed       int64  `json:"seed"`
	GoMaxProcs int    `json:"gomaxprocs"`

	// Quick-scale Table I campaign (sequential), run twice in-process:
	// cold is the first run on a fresh heap, warm the second with the
	// runtime's caches and pools populated.
	CampaignFlows      int     `json:"campaign_flows"`
	ColdCampaignWallMS float64 `json:"cold_campaign_wall_ms"`
	WarmCampaignWallMS float64 `json:"warm_campaign_wall_ms"`

	// Warmed single-flow measurements (China Mobile LTE, cruise window).
	SingleFlowDurationS float64 `json:"single_flow_duration_s"`
	SingleFlowWallMS    float64 `json:"single_flow_wall_ms"` // best of the measured runs
	AllocsPerFlow       float64 `json:"allocs_per_flow"`
	KernelEventsPerFlow int64   `json:"kernel_events_per_flow"`
	KernelEventsPerSec  float64 `json:"kernel_events_per_sec"`
}

// WriteJSON writes the snapshot as indented JSON.
func (s *BenchSnapshot) WriteJSON(w io.Writer) error {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}

// BenchOptions scales the snapshot campaign; zero fields take the defaults
// noted on each field (the scale the checked-in snapshots use).
type BenchOptions struct {
	Seed                 int64         // campaign and flow base seed
	CampaignFlowDuration time.Duration // default 45s
	CampaignFlowsPerRow  int           // default 4 (quick scale)
	FlowDuration         time.Duration // default 30s single-flow length
	FlowRuns             int           // default 5 measured single-flow runs
}

func (o BenchOptions) withDefaults() BenchOptions {
	if o.CampaignFlowDuration <= 0 {
		o.CampaignFlowDuration = 45 * time.Second
	}
	if o.CampaignFlowsPerRow <= 0 {
		o.CampaignFlowsPerRow = 4
	}
	if o.FlowDuration <= 0 {
		o.FlowDuration = 30 * time.Second
	}
	if o.FlowRuns <= 0 {
		o.FlowRuns = 5
	}
	return o
}

// benchScenario builds the canonical single-flow benchmark scenario: a
// cruise-window China Mobile LTE flow, the same shape the dataset package's
// allocation gate and the kernel profile use.
func benchScenario(seed int64, d time.Duration) (dataset.Scenario, error) {
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		return dataset.Scenario{}, err
	}
	start, _ := trip.CruiseWindow()
	return dataset.Scenario{
		ID:           "bench-flow",
		Operator:     cellular.ChinaMobileLTE,
		Trip:         trip,
		TripOffset:   start,
		FlowDuration: d,
		Seed:         seed,
		TCP:          tcp.DefaultConfig(),
		Scenario:     "hsr",
	}, nil
}

// RunBenchSnapshot measures the snapshot. Call it at process start (as
// hsrbench -bench-json does) so the cold campaign really runs on a cold
// heap; everything after the first campaign is deliberately warmed.
func RunBenchSnapshot(opt BenchOptions) (*BenchSnapshot, error) {
	opt = opt.withDefaults()
	snap := &BenchSnapshot{
		Tool:                "hsrbench",
		Version:             buildinfo.Version(),
		Seed:                opt.Seed,
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		SingleFlowDurationS: opt.FlowDuration.Seconds(),
	}

	// Campaign phase: identical sequential runs, cold then warm.
	campaign := func() (int, time.Duration, error) {
		start := time.Now()
		camp, err := dataset.RunCampaign(dataset.CampaignConfig{
			Seed:         opt.Seed,
			FlowDuration: opt.CampaignFlowDuration,
			FlowsPerRow:  opt.CampaignFlowsPerRow,
			Parallelism:  1,
		})
		if err != nil {
			return 0, 0, err
		}
		return len(camp.Metrics()), time.Since(start), nil
	}
	flows, cold, err := campaign()
	if err != nil {
		return nil, fmt.Errorf("bench: cold campaign: %w", err)
	}
	_, warm, err := campaign()
	if err != nil {
		return nil, fmt.Errorf("bench: warm campaign: %w", err)
	}
	snap.CampaignFlows = flows
	snap.ColdCampaignWallMS = float64(cold) / float64(time.Millisecond)
	snap.WarmCampaignWallMS = float64(warm) / float64(time.Millisecond)

	// Single-flow phase: warm the pipeline's pools, then measure FlowRuns
	// flows with distinct seeds (so the work is real, not cached), tracking
	// the best wall, the exact malloc count, and the kernel event totals.
	runFlow := func(seed int64) (time.Duration, int64, error) {
		sc, err := benchScenario(seed, opt.FlowDuration)
		if err != nil {
			return 0, 0, err
		}
		tel := telemetry.NewFlow()
		sc.Telemetry = tel
		start := time.Now()
		if _, _, err := dataset.RunFlowMetrics(sc); err != nil {
			return 0, 0, err
		}
		return time.Since(start), tel.Kernel.Events, nil
	}
	for i := 0; i < 3; i++ {
		if _, _, err := runFlow(opt.Seed + int64(1000+i)); err != nil {
			return nil, fmt.Errorf("bench: warmup flow: %w", err)
		}
	}
	var ms0, ms1 runtime.MemStats
	var best time.Duration
	var totalWall time.Duration
	var totalEvents int64
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	for i := 0; i < opt.FlowRuns; i++ {
		wall, events, err := runFlow(opt.Seed + int64(2000+i))
		if err != nil {
			return nil, fmt.Errorf("bench: measured flow: %w", err)
		}
		if best == 0 || wall < best {
			best = wall
		}
		totalWall += wall
		totalEvents += events
	}
	runtime.ReadMemStats(&ms1)
	snap.SingleFlowWallMS = float64(best) / float64(time.Millisecond)
	snap.AllocsPerFlow = float64(ms1.Mallocs-ms0.Mallocs) / float64(opt.FlowRuns)
	snap.KernelEventsPerFlow = totalEvents / int64(opt.FlowRuns)
	if totalWall > 0 {
		snap.KernelEventsPerSec = float64(totalEvents) / totalWall.Seconds()
	}
	return snap, nil
}
