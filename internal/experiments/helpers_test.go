package experiments

import (
	"testing"
)

func TestCdfPoints(t *testing.T) {
	pts := cdfPoints([]float64{3, 1, 2})
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y <= pts[i-1].Y || pts[i].X < pts[i-1].X {
			t.Fatalf("CDF points not monotone at %d: %+v", i, pts)
		}
	}
	if last := pts[len(pts)-1]; last.Y != 1 || last.X != 3 {
		t.Errorf("last point = %+v, want (3, 1)", last)
	}
	if got := cdfPoints(nil); len(got) != 0 {
		t.Errorf("cdfPoints(nil) = %v, want nil", got)
	}
}

func TestCtxSummary(t *testing.T) {
	ctx := testContext(t)
	hsr := ctxSummary(ctx, true)
	stat := ctxSummary(ctx, false)
	if hsr.Flows != len(ctx.HSR.Results) || stat.Flows != len(ctx.Stationary.Results) {
		t.Errorf("summaries cover %d/%d flows, want %d/%d",
			hsr.Flows, stat.Flows, len(ctx.HSR.Results), len(ctx.Stationary.Results))
	}
	if hsr.MeanAckLossRate <= stat.MeanAckLossRate {
		t.Error("HSR summary should show higher ACK loss")
	}
}
