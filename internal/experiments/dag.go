package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// Task is one unit of an experiment schedule: a named computation whose Run
// produces rendered terminal output once every named dependency has
// finished. Tasks communicate through state captured by their Run closures
// (e.g. the shared Context built by a "campaigns" task); the scheduler
// guarantees a dependency's Run happens-before its dependents'.
type Task struct {
	Name string
	Deps []string
	Run  func() (string, error)
}

// TaskResult is the outcome of one scheduled Task.
type TaskResult struct {
	Name   string
	Output string
	Err    error
	// Skipped reports that Run never executed because a dependency failed;
	// Err then names the failed dependency.
	Skipped bool
	// Wall is the host wall time spent inside Run (zero for skipped tasks).
	// It is a resource metric, never reproducible.
	Wall time.Duration
	// Mallocs and AllocBytes are process heap-allocation deltas across Run.
	// They are measured only when the schedule runs sequentially (jobs == 1);
	// with several workers the process-global counters cannot be attributed
	// to one task, and both stay zero.
	Mallocs    uint64
	AllocBytes uint64
}

// PanicError is a panic recovered from a Task's Run, reported as that
// task's TaskResult.Err so one crashing experiment cannot abort a whole
// multi-minute campaign. Error renders a single line; Stack holds the full
// goroutine stack captured at the panic site for diagnosis.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// runTask invokes t.Run, converting a panic into a *PanicError.
func runTask(t Task) (out string, err error) {
	defer func() {
		if v := recover(); v != nil {
			out = ""
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return t.Run()
}

// RunDAG executes tasks as a dependency-aware parallel schedule: at most
// jobs tasks run concurrently (jobs <= 0 means GOMAXPROCS), a task starts
// only after all of its Deps completed successfully, and tasks whose
// dependencies failed are skipped. The returned slice is ordered exactly
// like the input regardless of completion order, so rendered output is
// deterministic for any parallelism.
//
// Per-task failures are isolated: a task that returns an error — or panics;
// the panic is recovered into a *PanicError — only skips its dependents,
// and every other branch of the campaign still runs to completion.
//
// RunDAG itself returns an error only for malformed graphs (unknown or
// duplicate names, dependency cycles); per-task failures are reported in
// the results.
func RunDAG(tasks []Task, jobs int) ([]TaskResult, error) {
	return RunDAGContext(context.Background(), tasks, jobs)
}

// RunDAGContext is RunDAG with cancellation: once ctx is done, no further
// task starts — tasks already running finish (their results stand), and
// every task that never started is reported Skipped with the context's
// error. The results keep input order, so even a cancelled campaign renders
// its completed prefix deterministically.
func RunDAGContext(ctx context.Context, tasks []Task, jobs int) ([]TaskResult, error) {
	return RunDAGProgress(ctx, tasks, jobs, nil)
}

// RunDAGProgress is RunDAGContext with completion notification: onDone (if
// non-nil) is invoked once per task, in completion order, with the task's
// result and the running completed count. It runs on the single coordinator
// goroutine — never concurrently with itself — so a progress printer needs
// no locking against other onDone calls.
func RunDAGProgress(ctx context.Context, tasks []Task, jobs int, onDone func(res TaskResult, completed, total int)) ([]TaskResult, error) {
	n := len(tasks)
	idx := make(map[string]int, n)
	for i, t := range tasks {
		if t.Name == "" {
			return nil, fmt.Errorf("experiments: task %d has an empty name", i)
		}
		if t.Run == nil {
			return nil, fmt.Errorf("experiments: task %q has a nil Run", t.Name)
		}
		if _, dup := idx[t.Name]; dup {
			return nil, fmt.Errorf("experiments: duplicate task name %q", t.Name)
		}
		idx[t.Name] = i
	}
	dependents := make([][]int, n)
	indegree := make([]int, n)
	for i, t := range tasks {
		for _, d := range t.Deps {
			j, ok := idx[d]
			if !ok {
				return nil, fmt.Errorf("experiments: task %q depends on unknown task %q", t.Name, d)
			}
			if j == i {
				return nil, fmt.Errorf("experiments: task %q depends on itself", t.Name)
			}
			dependents[j] = append(dependents[j], i)
			indegree[i]++
		}
	}
	if err := checkAcyclic(tasks, dependents, indegree); err != nil {
		return nil, err
	}

	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}

	results := make([]TaskResult, n)
	for i, t := range tasks {
		results[i].Name = t.Name
	}

	// The coordinator below is the only writer of remaining/failedDep and the
	// only sender on ready, so no locking is needed: values flow to workers
	// through the ready channel and back through done.
	// Heap-allocation deltas are only attributable when one worker runs the
	// whole schedule; runtime.MemStats counters are process-global.
	trackAllocs := jobs == 1
	ready := make(chan int, n)
	done := make(chan int, n)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ready {
				r := &results[i]
				if r.Skipped {
					done <- i
					continue
				}
				if err := ctx.Err(); err != nil {
					r.Skipped = true
					r.Err = fmt.Errorf("experiments: not started: %w", err)
					done <- i
					continue
				}
				var m0 runtime.MemStats
				if trackAllocs {
					runtime.ReadMemStats(&m0)
				}
				start := time.Now()
				r.Output, r.Err = runTask(tasks[i])
				r.Wall = time.Since(start)
				if trackAllocs {
					var m1 runtime.MemStats
					runtime.ReadMemStats(&m1)
					r.Mallocs = m1.Mallocs - m0.Mallocs
					r.AllocBytes = m1.TotalAlloc - m0.TotalAlloc
				}
				done <- i
			}
		}()
	}

	remaining := append([]int(nil), indegree...)
	for i := range tasks {
		if remaining[i] == 0 {
			ready <- i
		}
	}
	for completed := 0; completed < n; completed++ {
		i := <-done
		if onDone != nil {
			onDone(results[i], completed+1, n)
		}
		failed := results[i].Err != nil
		for _, d := range dependents[i] {
			if failed && !results[d].Skipped {
				results[d].Skipped = true
				results[d].Err = fmt.Errorf("experiments: skipped, dependency %q failed", tasks[i].Name)
			}
			remaining[d]--
			if remaining[d] == 0 {
				ready <- d
			}
		}
	}
	close(ready)
	wg.Wait()
	return results, nil
}

// checkAcyclic runs Kahn's algorithm on a scratch copy of the indegrees and
// reports the tasks stuck on a cycle, if any.
func checkAcyclic(tasks []Task, dependents [][]int, indegree []int) error {
	deg := append([]int(nil), indegree...)
	queue := make([]int, 0, len(tasks))
	for i := range tasks {
		if deg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, d := range dependents[i] {
			if deg[d]--; deg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if seen == len(tasks) {
		return nil
	}
	var stuck []string
	for i, t := range tasks {
		if deg[i] > 0 {
			stuck = append(stuck, t.Name)
		}
	}
	return fmt.Errorf("experiments: dependency cycle involving %s", strings.Join(stuck, ", "))
}
