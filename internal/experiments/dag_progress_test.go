package experiments

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRunDAGProgressReportsEveryTask(t *testing.T) {
	tasks := []Task{
		{Name: "a", Run: func() (string, error) { return "A", nil }},
		{Name: "b", Deps: []string{"a"}, Run: func() (string, error) { return "", errors.New("boom") }},
		{Name: "c", Deps: []string{"b"}, Run: func() (string, error) { return "C", nil }},
		{Name: "d", Run: func() (string, error) { return "D", nil }},
	}
	seen := map[string]TaskResult{}
	var completedSeq []int
	total := -1
	results, err := RunDAGProgress(context.Background(), tasks, 3,
		func(res TaskResult, completed, tot int) {
			seen[res.Name] = res
			completedSeq = append(completedSeq, completed)
			total = tot
		})
	if err != nil {
		t.Fatalf("RunDAGProgress: %v", err)
	}
	if len(seen) != len(tasks) || total != len(tasks) {
		t.Fatalf("onDone saw %d tasks (total %d), want %d", len(seen), total, len(tasks))
	}
	// onDone runs on the coordinator goroutine, so the completed counter must
	// be strictly monotone 1..n even with parallel workers.
	for i, c := range completedSeq {
		if c != i+1 {
			t.Fatalf("completed sequence = %v, want 1..%d", completedSeq, len(tasks))
		}
	}
	if !seen["c"].Skipped {
		t.Errorf("onDone for skipped task c = %+v, want Skipped", seen["c"])
	}
	if seen["b"].Err == nil {
		t.Errorf("onDone for failed task b carried no error")
	}
	// The returned slice matches what onDone observed.
	for _, r := range results {
		if got := seen[r.Name]; got.Skipped != r.Skipped || (got.Err == nil) != (r.Err == nil) {
			t.Errorf("onDone result for %q (%+v) differs from returned result (%+v)", r.Name, got, r)
		}
	}
}

var allocSink []byte

func TestRunDAGWallAndAllocTracking(t *testing.T) {
	tasks := []Task{
		{Name: "work", Run: func() (string, error) {
			time.Sleep(2 * time.Millisecond)
			allocSink = make([]byte, 1<<16)
			return "ok", nil
		}},
		{Name: "fail", Run: func() (string, error) { return "", errors.New("no") }},
		{Name: "skipped", Deps: []string{"fail"}, Run: func() (string, error) { return "", nil }},
	}
	// Sequential run: wall time and allocation deltas are both attributable.
	results, err := RunDAG(tasks, 1)
	if err != nil {
		t.Fatalf("RunDAG: %v", err)
	}
	if results[0].Wall <= 0 {
		t.Errorf("completed task Wall = %v, want > 0", results[0].Wall)
	}
	if results[0].Mallocs == 0 || results[0].AllocBytes < 1<<16 {
		t.Errorf("jobs=1 alloc tracking: Mallocs=%d AllocBytes=%d", results[0].Mallocs, results[0].AllocBytes)
	}
	if results[2].Wall != 0 || results[2].Mallocs != 0 {
		t.Errorf("skipped task has resource metrics: %+v", results[2])
	}

	// Parallel run: wall is still tracked, allocation deltas are not (the
	// process-global counters cannot be attributed to one task).
	results, err = RunDAG(tasks, 2)
	if err != nil {
		t.Fatalf("RunDAG(jobs=2): %v", err)
	}
	if results[0].Wall <= 0 {
		t.Errorf("jobs=2 completed task Wall = %v, want > 0", results[0].Wall)
	}
	if results[0].Mallocs != 0 || results[0].AllocBytes != 0 {
		t.Errorf("jobs=2 tracked allocs anyway: %+v", results[0])
	}
}
