package experiments

import (
	"strings"
	"testing"
)

func TestFigure12(t *testing.T) {
	cfg := Quick()
	res, err := Figure12(cfg)
	if err != nil {
		t.Fatalf("Figure12: %v", err)
	}
	if len(res.Operators) != 3 {
		t.Fatalf("operators = %d, want 3", len(res.Operators))
	}
	byName := map[string]Figure12Operator{}
	for _, op := range res.Operators {
		byName[op.Name] = op
		if len(op.Pairs) != cfg.PairsPerOperator {
			t.Errorf("%s pairs = %d, want %d", op.Name, len(op.Pairs), cfg.PairsPerOperator)
		}
		if op.MeanImprovement <= 0 {
			t.Errorf("%s: MPTCP should improve throughput, got %v", op.Name, op.MeanImprovement)
		}
	}
	// The paper's ordering: Telecom gains the most, Mobile the least.
	mobile := byName["China Mobile"].MeanImprovement
	telecom := byName["China Telecom"].MeanImprovement
	if telecom <= mobile {
		t.Errorf("Telecom improvement (%v) should exceed Mobile's (%v)", telecom, mobile)
	}
	if !strings.Contains(res.Render(), "Fig 12") {
		t.Error("render missing title")
	}
}

func TestBackupQExperiment(t *testing.T) {
	cfg := Quick()
	res, err := BackupQ(cfg)
	if err != nil {
		t.Fatalf("BackupQ: %v", err)
	}
	if len(res.Points) != cfg.PairsPerOperator {
		t.Fatalf("points = %d, want %d", len(res.Points), cfg.PairsPerOperator)
	}
	_, _, plainRec, backupRec := res.Means()
	if backupRec >= plainRec {
		t.Errorf("backup recovery %v not below plain %v", backupRec, plainRec)
	}
	used := 0
	for _, p := range res.Points {
		used += p.BackupRetx
	}
	if used == 0 {
		t.Error("backup path never used")
	}
	if !strings.Contains(res.Render(), "Section V-B") {
		t.Error("render missing title")
	}
}

func TestDelayedAckExperiment(t *testing.T) {
	cfg := Quick()
	res, err := DelayedAck(cfg)
	if err != nil {
		t.Fatalf("DelayedAck: %v", err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %d, want 5 (b in 1,2,4,8 + adaptive)", len(res.Points))
	}
	fixed := res.Points[:4]
	adaptive := res.Points[4]
	if !adaptive.Adaptive {
		t.Fatal("last point should be the adaptive receiver")
	}
	// ACK rate must fall monotonically with the fixed b.
	for i := 1; i < len(fixed); i++ {
		if fixed[i].MeanAcksPerSec >= fixed[i-1].MeanAcksPerSec {
			t.Errorf("acks/s not decreasing at b=%d: %v after %v",
				fixed[i].B, fixed[i].MeanAcksPerSec, fixed[i-1].MeanAcksPerSec)
		}
	}
	// The Section V-A effect: aggressive delayed ACKs (b=8) must produce at
	// least as many spurious timeouts as immediate ACKs (b=1).
	b1, b8 := fixed[0], fixed[3]
	if b8.SpuriousTimeouts < b1.SpuriousTimeouts {
		t.Errorf("spurious timeouts fell from %d (b=1) to %d (b=8); expected the delayed-ACK penalty",
			b1.SpuriousTimeouts, b8.SpuriousTimeouts)
	}
	// The future-work fix: the adaptive receiver must beat the static b=8
	// receiver on throughput while using fewer ACKs than b=1.
	if adaptive.MeanTputPps <= b8.MeanTputPps {
		t.Errorf("adaptive pps %v not above static b=8 %v", adaptive.MeanTputPps, b8.MeanTputPps)
	}
	if adaptive.MeanAcksPerSec >= b1.MeanAcksPerSec {
		t.Errorf("adaptive acks/s %v not below b=1 %v", adaptive.MeanAcksPerSec, b1.MeanAcksPerSec)
	}
	if !strings.Contains(res.Render(), "delayed-ACK") {
		t.Error("render missing title")
	}
}
