package experiments

import (
	"strings"
	"testing"
)

func TestEifelExperiment(t *testing.T) {
	res, err := Eifel(Quick())
	if err != nil {
		t.Fatalf("Eifel: %v", err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	if res.TotalUndo == 0 {
		t.Error("Eifel response never triggered on the HSR channel")
	}
	if res.MeanGain <= 0 {
		t.Errorf("mean gain = %v, want positive (most HSR timeouts are spurious)", res.MeanGain)
	}
	if !strings.Contains(res.Render(), "Eifel") {
		t.Error("render missing title")
	}
}

func TestChannelSensitivityExperiment(t *testing.T) {
	res, err := ChannelSensitivity(Quick())
	if err != nil {
		t.Fatalf("ChannelSensitivity: %v", err)
	}
	if len(res.Levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(res.Levels))
	}
	// Longer outages must lengthen recoveries and depress throughput.
	for i := 1; i < len(res.Levels); i++ {
		if res.Levels[i].MeanRecovery <= res.Levels[i-1].MeanRecovery {
			t.Errorf("recovery not increasing with outage scale at %vx", res.Levels[i].Scale)
		}
		if res.Levels[i].MeanTputPps >= res.Levels[i-1].MeanTputPps {
			t.Errorf("throughput not decreasing with outage scale at %vx", res.Levels[i].Scale)
		}
	}
	// At every level the enhanced model must fit no worse than Padhye does
	// at the harshest level; the headline comparison is covered by Fig 10.
	last := res.Levels[len(res.Levels)-1]
	if last.MeanDEnh >= last.MeanDPadhye {
		t.Errorf("at 2x outages enhanced D (%v) should beat Padhye (%v)",
			last.MeanDEnh, last.MeanDPadhye)
	}
	if !strings.Contains(res.Render(), "handoff") {
		t.Error("render missing title")
	}
}
