package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/tcp"
)

// quickCC is a short configuration for the contention experiments.
func quickCC() Config {
	cfg := Quick()
	cfg.FlowDuration = 15 * time.Second
	return cfg
}

func TestFairnessDeterministicAndComplete(t *testing.T) {
	a, err := Fairness(quickCC())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fairness(quickCC())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal-seed fairness runs diverged")
	}
	// One clean and one storm group per variant, in variant order.
	if want := 2 * len(tcp.Variants()); len(a.Groups) != want {
		t.Fatalf("%d groups, want %d", len(a.Groups), want)
	}
	for i, v := range tcp.Variants() {
		for j, cond := range []string{"clean", "storm"} {
			g := a.Groups[2*i+j]
			if g.Label != v.String()+"/"+cond {
				t.Fatalf("group %d label %q, want %s/%s", 2*i+j, g.Label, v, cond)
			}
			if len(g.Flows) != fairnessFlowsPerGroup {
				t.Fatalf("group %s has %d flows, want %d", g.Label, len(g.Flows), fairnessFlowsPerGroup)
			}
			if g.Jain <= 0 || g.Jain > 1 {
				t.Fatalf("group %s Jain index %v out of (0, 1]", g.Label, g.Jain)
			}
			for _, f := range g.Flows {
				if f.CC != v.String() {
					t.Fatalf("group %s flow %s reports CC %q", g.Label, f.ID, f.CC)
				}
			}
		}
	}
	out := a.Render()
	for _, want := range []string{"jain", "reno/clean", "bbr/storm"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestCCMixCoversEveryVariant(t *testing.T) {
	r, err := CCMix(quickCC())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Groups) != 2 {
		t.Fatalf("%d groups, want 2 (clean + storm)", len(r.Groups))
	}
	for _, g := range r.Groups {
		seen := map[string]bool{}
		for _, f := range g.Flows {
			seen[f.CC] = true
		}
		for _, v := range tcp.Variants() {
			if !seen[v.String()] {
				t.Errorf("group %s lacks variant %s", g.Label, v)
			}
		}
	}
	if out := r.Render(); !strings.Contains(out, "Jain") {
		t.Error("render missing the Jain index")
	}
}

func TestCatalogListAndDefaultNames(t *testing.T) {
	list := CatalogList()
	if len(list) != len(CatalogNames()) {
		t.Fatalf("CatalogList has %d entries, CatalogNames %d", len(list), len(CatalogNames()))
	}
	byName := map[string]CatalogEntry{}
	for _, e := range list {
		if e.Description == "" {
			t.Errorf("experiment %q has no description", e.Name)
		}
		byName[e.Name] = e
	}
	for _, name := range []string{"fairness", "ccmix"} {
		e, ok := byName[name]
		if !ok {
			t.Fatalf("catalog lacks %q", name)
		}
		if !e.OptIn {
			t.Errorf("%q must be opt-in", name)
		}
	}
	// The default expansion is exactly the non-opt-in catalog, in order.
	defaults := DefaultCatalogNames()
	for _, name := range defaults {
		if byName[name].OptIn {
			t.Errorf("opt-in experiment %q in the default expansion", name)
		}
	}
	if len(defaults) != len(list)-2 {
		t.Fatalf("%d default names, want %d", len(defaults), len(list)-2)
	}
}

// TestCatalogFairnessTaskPopulatesCCReport runs the two contention
// experiments through the catalog scheduler and checks the collected CC
// report is sorted and complete.
func TestCatalogFairnessTaskPopulatesCCReport(t *testing.T) {
	cat, err := NewCatalog(context.Background(), quickCC(), []string{"ccmix", "fairness"}, CatalogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cat.CCReport() != nil {
		t.Fatal("CC report non-nil before any task ran")
	}
	results, err := RunDAG(cat.Tasks, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("task %s: %v", r.Name, r.Err)
		}
	}
	rep := cat.CCReport()
	if rep == nil {
		t.Fatal("no CC report after fairness and ccmix ran")
	}
	if want := 2*len(tcp.Variants()) + 2; len(rep.Groups) != want {
		t.Fatalf("%d CC groups, want %d", len(rep.Groups), want)
	}
	for i := 1; i < len(rep.Groups); i++ {
		a, b := rep.Groups[i-1], rep.Groups[i]
		if a.Experiment > b.Experiment || (a.Experiment == b.Experiment && a.Label >= b.Label) {
			t.Fatalf("CC groups not sorted: %s/%s before %s/%s",
				a.Experiment, a.Label, b.Experiment, b.Label)
		}
	}
}
