package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/cellular"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/railway"
	"repro/internal/trace"
)

// Figure1Result is the per-packet delivery-latency scatter of one HSR flow
// at cruise speed (paper Fig 1): data packets below, ACKs above, lost
// packets plotted at -1, timeout events numbered along the time axis.
type Figure1Result struct {
	Meta     trace.FlowMeta
	Points   []analysis.DeliveryPoint
	Timeouts []time.Duration // first timeout of each recovery sequence
	Metrics  *analysis.FlowMetrics

	// The flow's trace, retained so Figure2 can zoom into one recovery.
	Trace *trace.FlowTrace
}

// Figure1 runs one cruise-speed flow with full trace retention and
// reconstructs the delivery scatter. The seed is scanned deterministically
// until a flow with at least minTimeouts timeout sequences is found, like
// the paper's chosen example flow with its 10 numbered timeouts.
func Figure1(cfg Config) (*Figure1Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	trip, err := railway.NewTrip(railway.BeijingTianjin, railway.DefaultProfile)
	if err != nil {
		return nil, err
	}
	start, _ := trip.CruiseWindow()
	const minTimeouts = 6
	var best *Figure1Result
	for attempt := int64(0); attempt < 16; attempt++ {
		sc := dataset.Scenario{
			ID:           fmt.Sprintf("fig1-%d", attempt),
			Operator:     cellular.ChinaMobileLTE,
			Trip:         trip,
			TripOffset:   start + time.Duration(attempt)*37*time.Second,
			FlowDuration: cfg.FlowDuration,
			Seed:         cfg.Seed*131 + attempt,
			TCP:          defaultTCP(),
			Scenario:     "hsr",
		}
		ft, _, err := dataset.RunFlow(sc)
		if err != nil {
			return nil, err
		}
		m, err := analysis.Analyze(ft)
		if err != nil {
			return nil, err
		}
		pts, err := analysis.DeliverySeries(ft)
		if err != nil {
			return nil, err
		}
		res := &Figure1Result{Meta: ft.Meta, Points: pts, Metrics: m, Trace: ft}
		for _, rec := range m.Recoveries {
			res.Timeouts = append(res.Timeouts, rec.FirstTimeout)
		}
		if best == nil || len(res.Timeouts) > len(best.Timeouts) {
			best = res
		}
		if len(res.Timeouts) >= minTimeouts {
			return res, nil
		}
	}
	return best, nil
}

// Render draws the scatter: x = send time (s), y = delivery latency (ms),
// lost packets at y = -1 following the paper's plotting convention (ACK
// latencies negated so ACKs sit in the upper half and data in the lower,
// mirroring the paper's two bands).
func (r *Figure1Result) Render() string {
	var dataOK, dataLost, ackOK, ackLost []export.XY
	for _, p := range r.Points {
		x := p.SentAt.Seconds()
		switch {
		case p.Kind == analysis.DataPacket && p.Lost:
			dataLost = append(dataLost, export.XY{X: x, Y: -1})
		case p.Kind == analysis.DataPacket:
			dataOK = append(dataOK, export.XY{X: x, Y: -p.Latency.Seconds() * 1000})
		case p.Lost:
			ackLost = append(ackLost, export.XY{X: x, Y: 1})
		default:
			ackOK = append(ackOK, export.XY{X: x, Y: p.Latency.Seconds() * 1000})
		}
	}
	plot := export.Plot{
		Title:  "Fig 1 — time for ACKs (top) and data (bottom) to arrive; losses on the +-1 lines",
		XLabel: "send time (s)",
		YLabel: "arrival latency (ms; data negated)",
		Height: 24,
	}
	plot.Add("ack", '\'', ackOK)
	plot.Add("data", '.', dataOK)
	plot.Add("lost-ack", 'X', ackLost)
	plot.Add("lost-data", 'x', dataLost)

	var b strings.Builder
	b.WriteString(plot.Render())
	fmt.Fprintf(&b, "flow %s (%s, %s): %d data pkts, %d acks, %d timeout sequences at:",
		r.Meta.ID, r.Meta.Operator, r.Meta.Tech,
		len(dataOK)+len(dataLost), len(ackOK)+len(ackLost), len(r.Timeouts))
	for i, to := range r.Timeouts {
		fmt.Fprintf(&b, " %d:%.1fs", i+1, to.Seconds())
	}
	b.WriteString("\n")
	return b.String()
}

// Figure2Result zooms into one timeout recovery phase of the Figure 1 flow
// (paper Fig 2): the cautious single-packet retransmissions, their fates,
// and the exponential backoff.
type Figure2Result struct {
	Phase  analysis.RecoveryPhase
	Events []trace.Event // the phase's packet events
}

// Figure2 extracts the longest recovery phase from a Figure1 run.
func Figure2(fig1 *Figure1Result) (*Figure2Result, error) {
	if fig1 == nil || fig1.Metrics == nil {
		return nil, fmt.Errorf("experiments: Figure2 requires a Figure1 result")
	}
	if len(fig1.Metrics.Recoveries) == 0 {
		return nil, fmt.Errorf("experiments: the Figure1 flow has no recovery phases")
	}
	longest := fig1.Metrics.Recoveries[0]
	for _, r := range fig1.Metrics.Recoveries[1:] {
		if r.Duration() > longest.Duration() {
			longest = r
		}
	}
	res := &Figure2Result{Phase: longest}
	lo, hi := longest.Start, longest.End+time.Second
	for _, ev := range fig1.Trace.Events {
		if ev.At < lo || ev.At > hi {
			continue
		}
		switch ev.Type {
		case trace.EvDataSend, trace.EvDataRecv, trace.EvDataDrop,
			trace.EvTimeout, trace.EvRecovered:
			res.Events = append(res.Events, ev)
		}
	}
	return res, nil
}

// Render prints the recovery timeline.
func (r *Figure2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2 — retransmission process in a timeout recovery phase\n")
	fmt.Fprintf(&b, "phase: CA ended %.2fs, first RTO %.2fs, recovered %.2fs (duration %.2fs, %d timeouts, spurious=%v)\n",
		r.Phase.Start.Seconds(), r.Phase.FirstTimeout.Seconds(), r.Phase.End.Seconds(),
		r.Phase.Duration().Seconds(), r.Phase.Timeouts, r.Phase.Spurious)
	t := export.NewTable("t (s)", "event", "seq", "tx#", "note")
	for _, ev := range r.Events {
		note := ""
		switch ev.Type {
		case trace.EvTimeout:
			note = fmt.Sprintf("backoff 2^%d", ev.Backoff)
		case trace.EvDataSend:
			if ev.TransmitNo > 1 {
				note = "retransmission"
			}
		case trace.EvDataDrop:
			note = "lost on channel"
		}
		seq := fmt.Sprintf("%d", ev.Seq)
		if ev.Seq < 0 {
			seq = "-"
		}
		txno := fmt.Sprintf("%d", ev.TransmitNo)
		if ev.TransmitNo == 0 {
			txno = "-"
		}
		t.AddRow(fmt.Sprintf("%.3f", ev.At.Seconds()), ev.Type.String(), seq, txno, note)
	}
	b.WriteString(t.Render())
	return b.String()
}
