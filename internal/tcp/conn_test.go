package tcp

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// testHarness bundles a simulator, a path with scriptable per-direction loss
// windows, a connection and its trace.
type testHarness struct {
	sim  *sim.Simulator
	conn *Conn
	ft   *trace.FlowTrace

	dataOutages  []window      // drop all data packets inside these windows
	ackOutages   []window      // drop all ACKs inside these windows
	ackLossRate  float64       // random per-ACK loss
	ackLossAfter time.Duration // random ACK loss only applies from this time
	dropDataNth  map[int]bool
	dataCount    int
}

type window struct{ from, to time.Duration }

func (h *testHarness) dataLossProb(now time.Duration) float64 {
	h.dataCount++
	if h.dropDataNth[h.dataCount] {
		return 1
	}
	for _, w := range h.dataOutages {
		if now >= w.from && now < w.to {
			return 1
		}
	}
	return 0
}

func (h *testHarness) ackLossProb(now time.Duration) float64 {
	for _, w := range h.ackOutages {
		if now >= w.from && now < w.to {
			return 1
		}
	}
	if now >= h.ackLossAfter {
		return h.ackLossRate
	}
	return 0
}

// newHarness builds a 30ms+30ms path (RTT 60ms) with infinite line rate and
// the harness's scriptable loss.
func newHarness(t *testing.T, cfg Config) *testHarness {
	t.Helper()
	h := &testHarness{sim: sim.New(), dropDataNth: map[int]bool{}}
	rng := sim.NewRand(1, sim.StreamDataLoss)
	fwd := netem.NewLink(h.sim, netem.LinkConfig{
		Delay: netem.FixedDelay(30 * time.Millisecond),
		Loss:  netem.NewLossFunc(h.dataLossProb, rng),
	})
	// ACK loss applies at the send epoch only (the radio sits at the start
	// of an ACK's journey), matching the cellular channel's semantics.
	rev := netem.NewLink(h.sim, netem.LinkConfig{
		Delay: netem.FixedDelay(30 * time.Millisecond),
		Loss: netem.NewTransitLossFunc(func(sent, _ time.Duration) float64 {
			return h.ackLossProb(sent)
		}, rng),
	})
	h.ft = &trace.FlowTrace{Meta: trace.FlowMeta{ID: "test"}}
	conn, err := New(h.sim, netem.NewPath(fwd, rev), cfg, h.ft)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h.conn = conn
	return h
}

func (h *testHarness) run(t *testing.T, d time.Duration) Stats {
	t.Helper()
	if err := h.conn.Start(d); err != nil {
		t.Fatalf("Start: %v", err)
	}
	h.sim.RunUntil(d)
	if err := h.ft.Validate(); err != nil {
		t.Fatalf("trace invalid after run: %v", err)
	}
	return h.conn.Stats()
}

func countEvents(ft *trace.FlowTrace, et trace.EventType) int {
	n := 0
	for _, ev := range ft.Events {
		if ev.Type == et {
			n++
		}
	}
	return n
}

func TestBulkTransferCleanPath(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	st := h.run(t, 10*time.Second)
	if st.Timeouts != 0 || st.Retransmissions != 0 || st.FastRetransmits != 0 {
		t.Errorf("clean path saw recovery events: %+v", st)
	}
	if st.UniqueDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Steady state: window-limited at Wm=28 packets per 60ms RTT ~ 466 pps.
	pps := st.ThroughputPps()
	if pps < 390 || pps > 480 {
		t.Errorf("throughput = %.0f pps, want ~466 (window-limited)", pps)
	}
	if st.DupDelivered != 0 {
		t.Errorf("clean path delivered %d duplicates", st.DupDelivered)
	}
}

func TestWindowNeverExceedsLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowLimit = 16
	h := newHarness(t, cfg)
	h.run(t, 5*time.Second)
	// Reconstruct outstanding data from the trace: sends minus cumulative acks.
	var sndUna, maxOut int64
	outstanding := func(nextSeq int64) int64 { return nextSeq - sndUna }
	var nextSeq int64
	for _, ev := range h.ft.Events {
		switch ev.Type {
		case trace.EvDataSend:
			if ev.TransmitNo == 1 {
				nextSeq = ev.Seq + 1
			}
			if o := outstanding(nextSeq); o > maxOut {
				maxOut = o
			}
		case trace.EvAckRecv:
			if ev.Ack > sndUna {
				sndUna = ev.Ack
			}
		}
	}
	if maxOut > 16 {
		t.Errorf("max outstanding = %d, want <= WindowLimit 16", maxOut)
	}
	if h.conn.Cwnd() > 16 {
		t.Errorf("cwnd = %v, want <= 16", h.conn.Cwnd())
	}
}

func TestSingleLossTriggersFastRetransmit(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.dropDataNth[30] = true
	st := h.run(t, 10*time.Second)
	if st.FastRetransmits < 1 {
		t.Errorf("FastRetransmits = %d, want >= 1", st.FastRetransmits)
	}
	if st.Timeouts != 0 {
		t.Errorf("Timeouts = %d, want 0 (fast retransmit should recover)", st.Timeouts)
	}
	if got := countEvents(h.ft, trace.EvFastRetx); got < 1 {
		t.Errorf("trace has %d fast-retx events, want >= 1", got)
	}
	if st.Retransmissions < 1 {
		t.Error("no retransmission recorded")
	}
}

func TestDataOutageTriggersTimeoutAndRecovery(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	// Total blackout of the data direction for 2 s starting at 2 s.
	h.dataOutages = []window{{from: 2 * time.Second, to: 4 * time.Second}}
	st := h.run(t, 10*time.Second)
	if st.Timeouts < 1 {
		t.Fatalf("Timeouts = %d, want >= 1", st.Timeouts)
	}
	if got := countEvents(h.ft, trace.EvRecovered); got < 1 {
		t.Errorf("trace has %d recovered events, want >= 1", got)
	}
	// Delivery must resume after the outage: expect deliveries in the last
	// 3 seconds of the run.
	var lastRecv time.Duration
	for _, ev := range h.ft.Events {
		if ev.Type == trace.EvDataRecv {
			lastRecv = ev.At
		}
	}
	if lastRecv < 7*time.Second {
		t.Errorf("last delivery at %v, want after outage recovery", lastRecv)
	}
}

func TestAckBurstLossCausesSpuriousTimeout(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	// Block only the ACK direction for 3 s: data keeps arriving, all ACKs
	// die, the sender must eventually time out spuriously.
	h.ackOutages = []window{{from: 2 * time.Second, to: 5 * time.Second}}
	st := h.run(t, 10*time.Second)
	if st.Timeouts < 1 {
		t.Fatalf("Timeouts = %d, want >= 1 from pure ACK loss", st.Timeouts)
	}
	if st.DupDelivered < 1 {
		t.Errorf("DupDelivered = %d, want >= 1 (spurious retransmission reaches receiver twice)", st.DupDelivered)
	}
	// The trace must show a segment received at txNo 1 AND at txNo >= 2 —
	// the paper's criterion for classifying a timeout as spurious.
	first := map[int64]bool{}
	spurious := false
	for _, ev := range h.ft.Events {
		if ev.Type != trace.EvDataRecv {
			continue
		}
		if ev.TransmitNo == 1 {
			first[ev.Seq] = true
		} else if first[ev.Seq] {
			spurious = true
		}
	}
	if !spurious {
		t.Error("no segment was received both as original and retransmission")
	}
}

func TestExponentialBackoffDoubles(t *testing.T) {
	cfg := DefaultConfig()
	h := newHarness(t, cfg)
	// Blackout both directions long enough for several consecutive RTOs.
	h.dataOutages = []window{{from: time.Second, to: 25 * time.Second}}
	h.ackOutages = h.dataOutages
	h.run(t, 30*time.Second)
	var timeouts []trace.Event
	for _, ev := range h.ft.Events {
		if ev.Type == trace.EvTimeout {
			timeouts = append(timeouts, ev)
		}
	}
	if len(timeouts) < 4 {
		t.Fatalf("observed %d timeouts, want >= 4 for backoff check", len(timeouts))
	}
	// Backoff exponent recorded on successive timeouts must increase by 1.
	for i := 1; i < len(timeouts); i++ {
		if timeouts[i].Backoff != timeouts[i-1].Backoff+1 && timeouts[i-1].Backoff < cfg.MaxBackoff {
			t.Errorf("timeout %d backoff = %d after %d", i, timeouts[i].Backoff, timeouts[i-1].Backoff)
		}
	}
	// Inter-timeout gaps should roughly double while below the cap.
	for i := 2; i < len(timeouts) && timeouts[i-1].Backoff < cfg.MaxBackoff; i++ {
		g1 := timeouts[i-1].At - timeouts[i-2].At
		g2 := timeouts[i].At - timeouts[i-1].At
		ratio := float64(g2) / float64(g1)
		if ratio < 1.8 || ratio > 2.2 {
			t.Errorf("backoff gap ratio %d = %.2f, want ~2", i, ratio)
		}
	}
}

func TestBackoffCapsAt64T(t *testing.T) {
	cfg := DefaultConfig()
	h := newHarness(t, cfg)
	h.dataOutages = []window{{from: time.Second, to: 10 * time.Minute}}
	h.ackOutages = h.dataOutages
	h.run(t, 10*time.Minute)
	maxBackoff := 0
	for _, ev := range h.ft.Events {
		if ev.Type == trace.EvTimeout && ev.Backoff > maxBackoff {
			maxBackoff = ev.Backoff
		}
	}
	if maxBackoff != cfg.MaxBackoff {
		t.Errorf("max observed backoff = %d, want cap %d", maxBackoff, cfg.MaxBackoff)
	}
}

func TestDelayedAckReducesAckCount(t *testing.T) {
	cfgB1 := DefaultConfig()
	cfgB1.DelayedAckB = 1
	h1 := newHarness(t, cfgB1)
	st1 := h1.run(t, 5*time.Second)

	cfgB2 := DefaultConfig()
	cfgB2.DelayedAckB = 2
	h2 := newHarness(t, cfgB2)
	st2 := h2.run(t, 5*time.Second)

	if st1.AcksSent != st1.UniqueDelivered {
		t.Errorf("b=1: AcksSent = %d, want one per delivered segment (%d)", st1.AcksSent, st1.UniqueDelivered)
	}
	ratio := float64(st2.AcksSent) / float64(st2.UniqueDelivered)
	if ratio < 0.45 || ratio > 0.62 {
		t.Errorf("b=2: ACK ratio = %.2f, want ~0.5", ratio)
	}
}

func TestDelAckTimerFiresAtLowRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DelayedAckB = 8
	cfg.InitialCwnd = 1
	cfg.InitialSSThresh = 2
	h := newHarness(t, cfg)
	st := h.run(t, 3*time.Second)
	// With one packet per RTT at the start, the receiver can never fill an
	// 8-segment delayed-ACK window; only the 200 ms timer keeps the flow
	// alive.
	if st.UniqueDelivered < 5 {
		t.Errorf("delivered %d segments, want flow to make progress via delack timer", st.UniqueDelivered)
	}
	if st.Timeouts != 0 {
		t.Errorf("Timeouts = %d, want 0 (delack timer should prevent RTO)", st.Timeouts)
	}
}

func TestRecoveredEventAfterTimeout(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.dataOutages = []window{{from: time.Second, to: 2500 * time.Millisecond}}
	h.run(t, 8*time.Second)
	var sawTimeout bool
	var recoveredAfterTimeout bool
	for _, ev := range h.ft.Events {
		switch ev.Type {
		case trace.EvTimeout:
			sawTimeout = true
		case trace.EvRecovered:
			if sawTimeout {
				recoveredAfterTimeout = true
			}
		}
	}
	if !sawTimeout {
		t.Fatal("no timeout observed")
	}
	if !recoveredAfterTimeout {
		t.Error("no recovered event after the timeout")
	}
	if h.conn.InTimeoutRecovery() {
		t.Error("connection still in timeout recovery at end of run")
	}
}

func TestCumulativeAckMonotone(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.dataOutages = []window{{from: time.Second, to: 2 * time.Second}, {from: 4 * time.Second, to: 5 * time.Second}}
	h.ackOutages = []window{{from: 6 * time.Second, to: 7 * time.Second}}
	h.run(t, 10*time.Second)
	var lastSent int64 = -1
	for _, ev := range h.ft.Events {
		if ev.Type == trace.EvAckSend {
			if ev.Ack < lastSent {
				t.Fatalf("receiver ACK went backwards: %d after %d", ev.Ack, lastSent)
			}
			lastSent = ev.Ack
		}
	}
}

func TestStatsInvariants(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.dataOutages = []window{{from: 2 * time.Second, to: 3 * time.Second}}
	h.ackOutages = []window{{from: 5 * time.Second, to: 5500 * time.Millisecond}}
	st := h.run(t, 10*time.Second)
	if st.UniqueDelivered > st.DataSent {
		t.Errorf("delivered %d > sent %d", st.UniqueDelivered, st.DataSent)
	}
	if st.Retransmissions > st.DataSent {
		t.Error("retransmissions exceed total sends")
	}
	if st.AcksReceived > st.AcksSent {
		t.Errorf("acks received %d > sent %d", st.AcksReceived, st.AcksSent)
	}
	if st.AcksSent-st.AcksDropped < st.AcksReceived {
		t.Errorf("ack conservation violated: sent %d dropped %d received %d",
			st.AcksSent, st.AcksDropped, st.AcksReceived)
	}
	sends := countEvents(h.ft, trace.EvDataSend)
	if int64(sends) != st.DataSent {
		t.Errorf("trace sends %d != stats %d", sends, st.DataSent)
	}
	recvs := countEvents(h.ft, trace.EvDataRecv)
	if int64(recvs) != st.UniqueDelivered+st.DupDelivered {
		t.Errorf("trace recvs %d != unique %d + dup %d", recvs, st.UniqueDelivered, st.DupDelivered)
	}
	if got := st.ThroughputPps(); got <= 0 {
		t.Errorf("throughput = %v, want positive", got)
	}
}

func TestDataConservation(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.dataOutages = []window{{from: time.Second, to: 3 * time.Second}}
	st := h.run(t, 6*time.Second)
	recvs := countEvents(h.ft, trace.EvDataRecv)
	drops := countEvents(h.ft, trace.EvDataDrop)
	// Every send is either received, dropped, or still in flight at cutoff.
	diff := int(st.DataSent) - recvs - drops
	if diff < 0 || diff > 70 { // at most a window's worth in flight
		t.Errorf("send/recv/drop mismatch: sent %d recv %d drop %d", st.DataSent, recvs, drops)
	}
}

func TestConnLifecycleErrors(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	if err := h.conn.Start(0); err == nil {
		t.Error("Start(0) accepted")
	}
	if err := h.conn.Start(time.Second); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := h.conn.Start(time.Second); err == nil {
		t.Error("double Start accepted")
	}
	h.sim.RunUntil(time.Second)
}

func TestNewValidation(t *testing.T) {
	s := sim.New()
	link := netem.NewLink(s, netem.LinkConfig{Delay: netem.FixedDelay(0)})
	path := netem.NewPath(link, link)
	if _, err := New(nil, path, DefaultConfig(), nil); err == nil {
		t.Error("nil simulator accepted")
	}
	if _, err := New(s, nil, DefaultConfig(), nil); err == nil {
		t.Error("nil path accepted")
	}
	bad := DefaultConfig()
	bad.MSS = 0
	if _, err := New(s, path, bad, nil); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := New(s, path, DefaultConfig(), nil); err != nil {
		t.Errorf("nil recorder rejected: %v", err)
	}
}

func TestConfigValidateTable(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero MSS", func(c *Config) { c.MSS = 0 }},
		{"negative header", func(c *Config) { c.HeaderBytes = -1 }},
		{"cwnd < 1", func(c *Config) { c.InitialCwnd = 0.5 }},
		{"ssthresh < 2", func(c *Config) { c.InitialSSThresh = 1 }},
		{"b < 1", func(c *Config) { c.DelayedAckB = 0 }},
		{"delack timeout", func(c *Config) { c.DelayedAckB = 2; c.DelAckTimeout = 0 }},
		{"window < 2", func(c *Config) { c.WindowLimit = 1 }},
		{"rto bounds", func(c *Config) { c.MaxRTO = c.MinRTO - 1 }},
		{"backoff range", func(c *Config) { c.MaxBackoff = 17 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestSlowStartGrowth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialCwnd = 2
	cfg.InitialSSThresh = 1000 // never leave slow start
	cfg.WindowLimit = 2000
	h := newHarness(t, cfg)
	if err := h.conn.Start(time.Minute); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// After k RTTs of clean slow start with b=2, cwnd grows ~1.5x per RTT.
	h.sim.RunUntil(600 * time.Millisecond) // ~10 RTTs
	if got := h.conn.Cwnd(); got < 50 {
		t.Errorf("cwnd after 10 RTTs of slow start = %v, want exponential growth (>= 50)", got)
	}
}

func TestCongestionAvoidanceLinearGrowth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialCwnd = 10
	cfg.InitialSSThresh = 10 // start in CA
	cfg.WindowLimit = 1000
	h := newHarness(t, cfg)
	if err := h.conn.Start(time.Minute); err != nil {
		t.Fatalf("Start: %v", err)
	}
	h.sim.RunUntil(60 * time.Millisecond) // 1 RTT
	c1 := h.conn.Cwnd()
	h.sim.RunUntil(1260 * time.Millisecond) // +20 RTTs
	c2 := h.conn.Cwnd()
	perRTT := (c2 - c1) / 20
	// With b=2 the window should grow by ~1/b = 0.5 per RTT.
	if perRTT < 0.3 || perRTT > 0.8 {
		t.Errorf("CA growth = %.2f packets/RTT, want ~0.5 (1/b)", perRTT)
	}
}

func TestSRTTTracksPathRTT(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.run(t, 5*time.Second)
	srtt := h.conn.SRTT()
	if srtt < 55*time.Millisecond || srtt > 70*time.Millisecond {
		t.Errorf("SRTT = %v, want ~60ms path RTT", srtt)
	}
}

func TestHooks(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	var retx []int64
	var acks []int64
	h.conn.SetRetransmitHook(func(seq int64) { retx = append(retx, seq) })
	h.conn.SetAckSendHook(func(ack int64) { acks = append(acks, ack) })
	h.dataOutages = []window{{from: time.Second, to: 3 * time.Second}}
	h.run(t, 6*time.Second)
	if len(retx) == 0 {
		t.Error("retransmit hook never fired despite timeouts")
	}
	if len(acks) == 0 {
		t.Error("ack hook never fired")
	}
}

func TestInjectAckAdvancesWindow(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	// Block everything so the sender stalls with inflight data.
	h.dataOutages = []window{{from: 500 * time.Millisecond, to: time.Minute}}
	h.ackOutages = h.dataOutages
	if err := h.conn.Start(time.Minute); err != nil {
		t.Fatalf("Start: %v", err)
	}
	h.sim.RunUntil(5 * time.Second)
	st := h.conn.Stats()
	if st.Timeouts == 0 {
		t.Fatal("expected the sender to be stuck in timeouts")
	}
	before := h.conn.snd.sndUna
	h.conn.InjectAck(before + 5)
	if h.conn.snd.sndUna != before+5 {
		t.Errorf("sndUna = %d after InjectAck, want %d", h.conn.snd.sndUna, before+5)
	}
	// A stale inject must be ignored.
	h.conn.InjectAck(before)
	if h.conn.snd.sndUna != before+5 {
		t.Error("stale InjectAck moved the window")
	}
	h.sim.RunUntil(6 * time.Second)
}

func TestDeliverDataInjectsSegment(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	if err := h.conn.Start(time.Minute); err != nil {
		t.Fatalf("Start: %v", err)
	}
	h.sim.RunUntil(100 * time.Millisecond)
	before := h.conn.rcv.rcvNxt
	h.conn.DeliverData(before, 2) // inject the next expected segment
	if h.conn.rcv.rcvNxt != before+1 {
		t.Errorf("rcvNxt = %d, want %d", h.conn.rcv.rcvNxt, before+1)
	}
	if h.conn.LastTransmitNo(before+1000) != 0 {
		t.Error("LastTransmitNo for unsent segment should be 0")
	}
}
