package tcp

import "time"

// rtoEstimator implements the RFC 6298 retransmission-timeout calculation:
// SRTT/RTTVAR smoothing with the standard gains, clamped to [min, max].
// Samples from retransmitted segments must not be fed in (Karn's rule); the
// sender enforces that.
type rtoEstimator struct {
	srtt    time.Duration
	rttvar  time.Duration
	hasRTT  bool
	minRTO  time.Duration
	maxRTO  time.Duration
	current time.Duration
}

// newRTOEstimator returns an estimator that reports min(maxRTO, max(minRTO,
// 1s)) before the first sample, per RFC 6298's 1-second initial RTO.
func newRTOEstimator(minRTO, maxRTO time.Duration) *rtoEstimator {
	initial := time.Second
	if initial < minRTO {
		initial = minRTO
	}
	if initial > maxRTO {
		initial = maxRTO
	}
	return &rtoEstimator{minRTO: minRTO, maxRTO: maxRTO, current: initial}
}

// Sample folds one round-trip measurement into the estimator.
func (e *rtoEstimator) Sample(rtt time.Duration) {
	if rtt <= 0 {
		rtt = time.Nanosecond
	}
	if !e.hasRTT {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.hasRTT = true
	} else {
		diff := e.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		e.rttvar = (3*e.rttvar + diff) / 4
		e.srtt = (7*e.srtt + rtt) / 8
	}
	rto := e.srtt + 4*e.rttvar
	if rto < e.minRTO {
		rto = e.minRTO
	}
	if rto > e.maxRTO {
		rto = e.maxRTO
	}
	e.current = rto
}

// RTO returns the current base retransmission timeout (before backoff).
func (e *rtoEstimator) RTO() time.Duration { return e.current }

// SRTT returns the smoothed RTT, or 0 before the first sample.
func (e *rtoEstimator) SRTT() time.Duration {
	if !e.hasRTT {
		return 0
	}
	return e.srtt
}

// BackedOff returns the timer value after backoff doublings, capped at
// 2^maxBackoff times the base RTO and at maxRTO.
func (e *rtoEstimator) BackedOff(backoff, maxBackoff int) time.Duration {
	if backoff > maxBackoff {
		backoff = maxBackoff
	}
	rto := e.current << uint(backoff)
	if rto > e.maxRTO {
		rto = e.maxRTO
	}
	return rto
}
