package tcp

import "time"

// BBR-style model parameters. The variant is "in the spirit of" BBR v1:
// it keeps the bottleneck-bandwidth / propagation-RTT model and the
// startup/drain/probe state machine, but applies the result purely as a
// congestion-window cap (no pacing — the simulator's links already
// serialize transmission), which is the form the window-limited paper
// scenarios can express.
const (
	// bbrStartupGain is 2/ln2: fills the pipe in the same doublings as
	// slow start while the bandwidth estimate still grows.
	bbrStartupGain = 2.885
	// bbrDrainGain empties the queue startup built.
	bbrDrainGain = 0.75
	// bbrBwRounds is the bandwidth max-filter window in packet-timed
	// round trips; bbrRTTWindow the propagation-RTT min-filter window.
	bbrBwRounds  = 10
	bbrRTTWindow = 10 * time.Second
	// bbrProbeRTTDuration holds the window at bbrMinCwnd long enough for
	// the queue to drain and expose the propagation RTT.
	bbrProbeRTTDuration = 200 * time.Millisecond
	bbrMinCwnd          = 4.0
)

// bbrProbeGains is the PROBE_BW gain cycle: probe above the estimated BDP
// for one round, drain for one, then cruise. The cycle always starts at
// the probing phase — deterministically, where the reference
// implementation randomizes — so equal-seed runs stay byte-identical.
var bbrProbeGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

const (
	bbrStartup = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

// bbrControl estimates the path's delivery rate and propagation RTT from
// the ACK stream and sets cwnd = gain * estimated BDP. Loss barely moves
// it: recovery episodes re-evaluate the model rather than halving, and
// only an RTO collapses the window while the model rebuilds.
type bbrControl struct {
	cfg Config

	state int

	// Delivery-rate sampling: segments acknowledged per unit virtual time
	// between consecutive new ACKs, max-filtered over bbrBwRounds
	// packet-timed rounds.
	lastAckAt  time.Duration
	bwSamples  [bbrBwRounds]float64
	roundBw    float64
	roundCount int64
	roundEnd   int64 // sndNxt when the current round started

	// Propagation estimate: min-filtered RTT with a bbrRTTWindow expiry.
	minRTT      time.Duration
	minRTTAt    time.Duration
	probeRTTEnd time.Duration
	priorCwnd   float64

	// Startup full-pipe detection: bandwidth must keep growing >= 25% per
	// round or the pipe is declared full after three flat rounds.
	fullBw      float64
	fullBwCount int

	cycleIdx int
	cycleAt  time.Duration
}

func newBBRControl(cfg Config) *bbrControl {
	return &bbrControl{cfg: cfg}
}

func (b *bbrControl) Name() string { return "bbr" }

// btlBw returns the max-filtered bottleneck bandwidth estimate in
// packets per second.
func (b *bbrControl) btlBw() float64 {
	best := b.roundBw
	for _, s := range b.bwSamples {
		if s > best {
			best = s
		}
	}
	return best
}

// bdp returns the estimated bandwidth-delay product in packets, or 0
// while either half of the model is still empty.
func (b *bbrControl) bdp() float64 {
	if b.minRTT <= 0 {
		return 0
	}
	return b.btlBw() * b.minRTT.Seconds()
}

func (b *bbrControl) observe(a Ack) (newRound bool) {
	// Packet-timed rounds: a round ends when the ACK stream passes the
	// sndNxt recorded at its start.
	if a.AckNo > b.roundEnd {
		b.bwSamples[b.roundCount%bbrBwRounds] = b.roundBw
		b.roundBw = 0
		b.roundCount++
		b.roundEnd = a.NextSeq
		newRound = true
	}
	if b.lastAckAt > 0 && a.Now > b.lastAckAt && a.Acked > 0 {
		rate := float64(a.Acked) / (a.Now - b.lastAckAt).Seconds()
		if rate > b.roundBw {
			b.roundBw = rate
		}
	}
	b.lastAckAt = a.Now
	if a.RTT > 0 && (b.minRTT == 0 || a.RTT <= b.minRTT || a.Now-b.minRTTAt > bbrRTTWindow) {
		b.minRTT = a.RTT
		b.minRTTAt = a.Now
	}
	return newRound
}

func (b *bbrControl) OnNewAck(w *Window, a Ack) {
	newRound := b.observe(a)
	bdp := b.bdp()

	switch b.state {
	case bbrStartup:
		// Exponential fill: grow by the acknowledged count (slow-start
		// shape) until the bandwidth estimate stops improving.
		w.Cwnd += float64(a.Acked)
		if newRound {
			if bw := b.btlBw(); bw >= b.fullBw*1.25 {
				b.fullBw = bw
				b.fullBwCount = 0
			} else {
				b.fullBwCount++
				if b.fullBwCount >= 3 && bdp > 0 {
					b.state = bbrDrain
				}
			}
		}
	case bbrDrain:
		w.Cwnd = clampMin(bbrDrainGain*bbrStartupGain*bdp, bbrMinCwnd)
		if float64(a.Inflight) <= clampMin(bdp, bbrMinCwnd) {
			b.state = bbrProbeBW
			b.cycleIdx = 0
			b.cycleAt = a.Now
		}
	case bbrProbeBW:
		if b.minRTT > 0 && a.Now-b.cycleAt >= b.minRTT {
			b.cycleIdx = (b.cycleIdx + 1) % len(bbrProbeGains)
			b.cycleAt = a.Now
		}
		w.Cwnd = clampMin(bbrProbeGains[b.cycleIdx]*bdp, bbrMinCwnd)
	case bbrProbeRTT:
		w.Cwnd = bbrMinCwnd
		if a.Now >= b.probeRTTEnd {
			b.minRTTAt = a.Now
			b.state = bbrProbeBW
			b.cycleIdx = 0
			b.cycleAt = a.Now
			w.Cwnd = clampMin(max(b.priorCwnd, bdp), bbrMinCwnd)
		}
	}

	// Periodically surrender the window so the queue drains and the
	// propagation RTT becomes observable again.
	if b.state != bbrProbeRTT && b.state != bbrStartup &&
		b.minRTT > 0 && a.Now-b.minRTTAt > bbrRTTWindow {
		b.state = bbrProbeRTT
		b.priorCwnd = w.Cwnd
		b.probeRTTEnd = a.Now + bbrProbeRTTDuration
		w.Cwnd = bbrMinCwnd
	}

	if w.Cwnd < 1 {
		w.Cwnd = 1
	}
	if wm := float64(b.cfg.WindowLimit); w.Cwnd > wm {
		w.Cwnd = wm
	}
}

func (b *bbrControl) OnPartialAck(w *Window, a Ack) bool {
	// Stay in recovery so the hole is retransmitted immediately; the
	// window keeps tracking the model rather than deflating.
	return true
}

func (b *bbrControl) OnExitRecovery(w *Window, a Ack) {
	if bdp := b.bdp(); bdp > 0 {
		w.Cwnd = clampMin(bdp, bbrMinCwnd)
		if wm := float64(b.cfg.WindowLimit); w.Cwnd > wm {
			w.Cwnd = wm
		}
	}
}

func (b *bbrControl) OnDupAck(w *Window, a Ack) {}

func (b *bbrControl) OnEnterRecovery(w *Window, a Ack) {
	// Bookkeeping only: the ssthresh convention keeps the invariant suite
	// uniform, but the window stays model-driven.
	w.SSThresh = halfInflight(a.Inflight)
}

func (b *bbrControl) OnRTO(w *Window, a Ack) {
	// Conservation on timeout, like the reference implementation: one
	// packet in flight until ACKs restart the model.
	w.SSThresh = halfInflight(a.Inflight)
	w.Cwnd = 1
}

func (b *bbrControl) OnSpuriousTimeout(w *Window, a Ack) {}

func (b *bbrControl) SendWindow(w *Window) float64 { return w.Cwnd }

func clampMin(v, lo float64) float64 {
	if v < lo {
		return lo
	}
	return v
}
