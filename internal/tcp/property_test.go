package tcp

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Property: under arbitrary random loss on both directions, the connection
// preserves its core invariants — the trace validates, cumulative ACKs are
// monotone, delivery never exceeds transmission, every segment below the
// receiver's cumulative point was delivered exactly once as new data, and
// the sender never exceeds its window.
func TestConnInvariantsUnderRandomLoss(t *testing.T) {
	f := func(seed int64, dataLossPct, ackLossPct uint8) bool {
		dataLoss := float64(dataLossPct%30) / 100 // 0 - 0.29
		ackLoss := float64(ackLossPct%30) / 100
		s := sim.New()
		fwd := netem.NewLink(s, netem.LinkConfig{
			Delay: netem.NewUniformDelay(20*time.Millisecond, 10*time.Millisecond, sim.NewRand(seed, sim.StreamDelay)),
			Loss:  netem.NewBernoulli(dataLoss, sim.NewRand(seed, sim.StreamDataLoss)),
		})
		rev := netem.NewLink(s, netem.LinkConfig{
			Delay: netem.NewUniformDelay(20*time.Millisecond, 10*time.Millisecond, sim.NewRand(seed+1, sim.StreamDelay)),
			Loss:  netem.NewBernoulli(ackLoss, sim.NewRand(seed, sim.StreamAckLoss)),
		})
		ft := &trace.FlowTrace{Meta: trace.FlowMeta{ID: "prop", Duration: 10 * time.Second}}
		conn, err := New(s, netem.NewPath(fwd, rev), DefaultConfig(), ft)
		if err != nil {
			return false
		}
		if err := conn.Start(10 * time.Second); err != nil {
			return false
		}
		s.RunUntil(10 * time.Second)

		if err := ft.Validate(); err != nil {
			return false
		}
		st := conn.Stats()
		if st.UniqueDelivered > st.DataSent || st.Retransmissions > st.DataSent {
			return false
		}
		if st.AcksReceived > st.AcksSent {
			return false
		}
		// Receiver-side cumulative ACK monotone, and its final value covered
		// by in-order deliveries.
		var lastAck int64 = -1
		delivered := map[int64]bool{}
		for _, ev := range ft.Events {
			switch ev.Type {
			case trace.EvAckSend:
				if ev.Ack < lastAck {
					return false
				}
				lastAck = ev.Ack
			case trace.EvDataRecv:
				delivered[ev.Seq] = true
			}
		}
		for seq := int64(0); seq < lastAck; seq++ {
			if !delivered[seq] {
				return false // receiver acknowledged data it never got
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: sized flows either complete with exactly the requested segment
// count acknowledged, or hit the horizon without overshooting.
func TestSizedFlowProperty(t *testing.T) {
	f := func(seed int64, segs uint16, lossPct uint8) bool {
		segments := int64(segs%500) + 1
		loss := float64(lossPct%20) / 100
		s := sim.New()
		fwd := netem.NewLink(s, netem.LinkConfig{
			Delay: netem.FixedDelay(25 * time.Millisecond),
			Loss:  netem.NewBernoulli(loss, sim.NewRand(seed, sim.StreamDataLoss)),
		})
		rev := netem.NewLink(s, netem.LinkConfig{Delay: netem.FixedDelay(25 * time.Millisecond)})
		conn, err := New(s, netem.NewPath(fwd, rev), DefaultConfig(), trace.Nop{})
		if err != nil {
			return false
		}
		const horizon = 2 * time.Minute
		if err := conn.StartSized(segments, horizon); err != nil {
			return false
		}
		s.RunUntil(horizon)
		st := conn.Stats()
		if st.UniqueDelivered > segments {
			return false
		}
		at, done := conn.Completed()
		if done {
			// ACK-only loss is absent, so completion implies full delivery.
			return st.UniqueDelivered == segments && at <= horizon
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
