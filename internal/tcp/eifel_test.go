package tcp

import (
	"testing"
	"time"
)

// eifelScenario builds an ACK-blackout harness: data flows, ACKs die for a
// while — the canonical spurious-timeout situation.
func eifelScenario(t *testing.T, enable bool) (*testHarness, Stats) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SpuriousRTORecovery = enable
	h := newHarness(t, cfg)
	for at := 2 * time.Second; at < 20*time.Second; at += 5 * time.Second {
		h.ackOutages = append(h.ackOutages, window{from: at, to: at + 1500*time.Millisecond})
	}
	st := h.run(t, 20*time.Second)
	return h, st
}

func TestEifelDetectsSpuriousTimeouts(t *testing.T) {
	_, st := eifelScenario(t, true)
	if st.Timeouts == 0 {
		t.Fatal("scenario produced no timeouts")
	}
	if st.SpuriousRecoveries == 0 {
		t.Fatal("Eifel response never triggered despite pure-ACK-loss timeouts")
	}
	if st.SpuriousRecoveries > st.Timeouts {
		t.Errorf("spurious recoveries %d exceed timeouts %d", st.SpuriousRecoveries, st.Timeouts)
	}
}

func TestEifelDisabledByDefault(t *testing.T) {
	_, st := eifelScenario(t, false)
	if st.SpuriousRecoveries != 0 {
		t.Errorf("SpuriousRecoveries = %d with the response disabled", st.SpuriousRecoveries)
	}
}

func TestEifelImprovesThroughputUnderSpuriousRTOs(t *testing.T) {
	_, plain := eifelScenario(t, false)
	_, eifel := eifelScenario(t, true)
	if eifel.UniqueDelivered <= plain.UniqueDelivered {
		t.Errorf("Eifel delivered %d, plain %d — expected a gain from undoing spurious timeouts",
			eifel.UniqueDelivered, plain.UniqueDelivered)
	}
	// After a pure ACK blackout the recovery-ending cumulative ACK covers
	// everything, so both variants retransmit only the RTO probes; Eifel
	// must never retransmit more.
	if eifel.Retransmissions > plain.Retransmissions {
		t.Errorf("Eifel retransmitted %d, plain %d — expected no extra duplicates",
			eifel.Retransmissions, plain.Retransmissions)
	}
}

func TestEifelDoesNotTriggerOnGenuineLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpuriousRTORecovery = true
	h := newHarness(t, cfg)
	// Pure data blackout: the timed-out segments really are lost, the
	// recovery-ending ACK acknowledges fresh (retransmitted) data, not a
	// duplicate — no Eifel response.
	h.dataOutages = []window{{from: 2 * time.Second, to: 4 * time.Second}}
	st := h.run(t, 8*time.Second)
	if st.Timeouts == 0 {
		t.Fatal("no timeouts in genuine-loss scenario")
	}
	if st.SpuriousRecoveries != 0 {
		t.Errorf("Eifel fired %d times on genuine loss", st.SpuriousRecoveries)
	}
}

func TestEifelHarmlessOnCleanPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpuriousRTORecovery = true
	h := newHarness(t, cfg)
	st := h.run(t, 5*time.Second)
	if st.Timeouts != 0 || st.SpuriousRecoveries != 0 {
		t.Errorf("clean path: timeouts=%d spurious=%d", st.Timeouts, st.SpuriousRecoveries)
	}
}
