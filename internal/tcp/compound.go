package tcp

import "math"

// TCP Compound parameters (Tan et al., with the exponent/gain pair used in
// Poojary & Sharma's asymptotic analysis): the delay window grows
// binomially as alpha*win^k per RTT, backs off by zeta per packet of
// estimated queue, and the whole window halves on loss (beta = 0.5).
const (
	compoundAlpha = 0.125
	compoundBeta  = 0.5
	compoundK     = 0.75
	compoundZeta  = 0.5
	// compoundGamma is the queue estimate (in packets) above which the
	// delay component treats the path as congested and retreats.
	compoundGamma = 30.0
)

// compoundControl implements TCP Compound: the send window is the sum of a
// Reno-style loss window (Window.Cwnd) and a delay-based window dwnd that
// grows aggressively while the bottleneck queue is empty and retreats as
// queueing delay builds, leaving loss behaviour Reno-compatible.
type compoundControl struct {
	cfg  Config
	dwnd float64
}

func newCompoundControl(cfg Config) *compoundControl {
	return &compoundControl{cfg: cfg}
}

func (c *compoundControl) Name() string { return "compound" }

func (c *compoundControl) OnNewAck(w *Window, a Ack) {
	win := w.Cwnd + c.dwnd
	if win < w.SSThresh {
		// Slow start on the loss window, delay component dormant.
		w.Cwnd++
		if w.Cwnd > w.SSThresh {
			w.Cwnd = w.SSThresh
		}
	} else {
		// The loss window grows at the Reno rate of the *total* window:
		// one packet per window of ACKs.
		w.Cwnd += 1 / win
		// Delay window: estimate the standing queue from the RTT inflation
		// over the propagation floor, diff = win * (1 - baseRTT/RTT).
		rtt, base := a.SRTT, a.MinRTT
		if rtt > 0 && base > 0 {
			diff := win * (1 - float64(base)/float64(rtt))
			if diff < compoundGamma {
				// Queue empty enough: binomial increase, spread per ACK.
				c.dwnd += (compoundAlpha*math.Pow(win, compoundK) - 1) / win
				if c.dwnd < 0 {
					c.dwnd = 0
				}
			} else {
				// Early congestion: retreat proportionally to the queue.
				c.dwnd -= compoundZeta * diff / win
				if c.dwnd < 0 {
					c.dwnd = 0
				}
			}
		}
	}
	c.clamp(w)
}

// clamp bounds the combined window to the receiver limit by trimming the
// delay component first (it is the speculative half).
func (c *compoundControl) clamp(w *Window) {
	wm := float64(c.cfg.WindowLimit)
	if w.Cwnd > wm {
		w.Cwnd = wm
	}
	if w.Cwnd+c.dwnd > wm {
		c.dwnd = wm - w.Cwnd
		if c.dwnd < 0 {
			c.dwnd = 0
		}
	}
}

func (c *compoundControl) OnPartialAck(w *Window, a Ack) bool {
	w.Cwnd -= float64(a.Acked) - 1
	if w.Cwnd < 1 {
		w.Cwnd = 1
	}
	return true
}

func (c *compoundControl) OnExitRecovery(w *Window, a Ack) {
	w.Cwnd = w.SSThresh
}

func (c *compoundControl) OnDupAck(w *Window, a Ack) {
	w.Cwnd++
}

func (c *compoundControl) OnEnterRecovery(w *Window, a Ack) {
	// Loss halves the *combined* window (beta = 0.5) and folds the delay
	// component back into the loss window for the recovery episode.
	win := w.Cwnd + c.dwnd
	w.SSThresh = win * (1 - compoundBeta)
	if w.SSThresh < 2 {
		w.SSThresh = 2
	}
	c.dwnd = 0
	w.Cwnd = w.SSThresh + 3
}

func (c *compoundControl) OnRTO(w *Window, a Ack) {
	win := w.Cwnd + c.dwnd
	w.SSThresh = win * (1 - compoundBeta)
	if w.SSThresh < 2 {
		w.SSThresh = 2
	}
	c.dwnd = 0
	w.Cwnd = 1
}

func (c *compoundControl) OnSpuriousTimeout(w *Window, a Ack) {
	// The restored window is the loss component; the delay window restarts
	// from zero and re-probes.
	c.dwnd = 0
}

func (c *compoundControl) SendWindow(w *Window) float64 { return w.Cwnd + c.dwnd }
