package tcp

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// TestOutOfOrderBufferCumulativeJump verifies the receiver buffers
// out-of-order segments and jumps its cumulative ACK once the hole fills.
func TestOutOfOrderBufferCumulativeJump(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.dropDataNth[20] = true // one hole; subsequent segments arrive OOO
	h.run(t, 5*time.Second)
	// Find the ACK jump: an EvAckSend whose Ack advances by more than one
	// segment over its predecessor (the hole filling releases the buffer).
	var prev int64 = -1
	jumped := false
	for _, ev := range h.ft.Events {
		if ev.Type != trace.EvAckSend {
			continue
		}
		if prev >= 0 && ev.Ack > prev+2 {
			jumped = true
		}
		if ev.Ack > prev {
			prev = ev.Ack
		}
	}
	if !jumped {
		t.Error("cumulative ACK never jumped over the filled hole")
	}
}

// TestStaleAcksIgnored injects an ACK below sndUna and checks nothing moves.
func TestStaleAcksIgnored(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	if err := h.conn.Start(time.Minute); err != nil {
		t.Fatal(err)
	}
	h.sim.RunUntil(time.Second)
	una := h.conn.snd.sndUna
	cwnd := h.conn.Cwnd()
	h.conn.snd.onAck(una-5, 0, false) // stale
	if h.conn.snd.sndUna != una || h.conn.Cwnd() != cwnd {
		t.Error("stale ACK changed sender state")
	}
}

// TestAdaptiveAndEifelCompose runs both opt-in features together on a
// disturbed channel: they must not interfere (no panics, positive
// throughput, spurious recoveries detected).
func TestAdaptiveAndEifelCompose(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AdaptiveDelAck = true
	cfg.DelayedAckB = 4
	cfg.SpuriousRTORecovery = true
	h := newHarness(t, cfg)
	for at := 2 * time.Second; at < 15*time.Second; at += 4 * time.Second {
		h.ackOutages = append(h.ackOutages, window{from: at, to: at + 1200*time.Millisecond})
	}
	st := h.run(t, 15*time.Second)
	if st.UniqueDelivered == 0 {
		t.Fatal("no progress with both features enabled")
	}
	if st.Timeouts == 0 {
		t.Fatal("scenario produced no timeouts")
	}
	if st.SpuriousRecoveries == 0 {
		t.Error("Eifel never fired despite spurious timeouts")
	}
}

// TestNewRenoWithEifel composes NewReno and the Eifel response.
func TestNewRenoWithEifel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Variant = VariantNewReno
	cfg.SpuriousRTORecovery = true
	h := newHarness(t, cfg)
	h.ackOutages = []window{{from: 2 * time.Second, to: 4 * time.Second}}
	h.dropDataNth[100] = true
	h.dropDataNth[104] = true
	st := h.run(t, 10*time.Second)
	if st.UniqueDelivered == 0 {
		t.Fatal("no progress")
	}
	if err := h.ft.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
}

// TestReceiverDuplicateOfBufferedSegment: a duplicate of an out-of-order
// buffered segment must be acknowledged immediately and counted as a dup.
func TestReceiverDuplicateOfBufferedSegment(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	if err := h.conn.Start(time.Minute); err != nil {
		t.Fatal(err)
	}
	h.sim.RunUntil(500 * time.Millisecond)
	next := h.conn.rcv.rcvNxt
	h.conn.DeliverData(next+3, 1) // buffers out of order
	before := h.conn.rcv.dups
	h.conn.DeliverData(next+3, 2) // duplicate of the buffered segment
	if h.conn.rcv.dups != before+1 {
		t.Errorf("dups = %d, want %d", h.conn.rcv.dups, before+1)
	}
	if h.conn.rcv.rcvNxt != next {
		t.Error("cumulative point moved on out-of-order data")
	}
}
