package tcp

import "testing"

func TestRingCapPowerOfTwoAboveWindow(t *testing.T) {
	for _, tc := range []struct{ w, want int }{
		{2, 4}, {3, 4}, {4, 8}, {28, 32}, {31, 32}, {32, 64}, {100, 128},
	} {
		if got := ringCap(tc.w); got != int64(tc.want) {
			t.Errorf("ringCap(%d) = %d, want %d", tc.w, got, tc.want)
		}
	}
}

func TestSendRingLifecycle(t *testing.T) {
	r := newSendRing(28)
	if got := r.txNo(5); got != 0 {
		t.Fatalf("txNo of unsent = %d, want 0", got)
	}
	r.set(5, 100, 1)
	r.set(5, 200, 2) // retransmission overwrites in place
	if info, ok := r.get(5); !ok || info.txNo != 2 || info.at != 200 {
		t.Fatalf("get(5) = %+v, %v", info, ok)
	}
	r.clear(5)
	if _, ok := r.get(5); ok {
		t.Fatal("get after clear still live")
	}
	// The slot is free again: a far-future sequence mapping to it may claim it.
	r.set(5+32, 300, 1)
	if got := r.txNo(5); got != 0 {
		t.Fatalf("foreign occupant leaked txNo %d for seq 5", got)
	}
}

func TestSendRingCollisionPanics(t *testing.T) {
	r := newSendRing(28)
	r.set(1, 100, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("aliasing write did not panic")
		}
	}()
	r.set(1+32, 200, 1) // same slot, different live sequence
}

func TestSeqSetLifecycle(t *testing.T) {
	s := newSeqSet(28)
	if s.contains(7) {
		t.Fatal("empty set contains 7")
	}
	s.add(7)
	s.add(7) // idempotent
	if !s.contains(7) {
		t.Fatal("set lost 7")
	}
	s.remove(7)
	if s.contains(7) {
		t.Fatal("remove left 7")
	}
	s.remove(7) // idempotent on empty
}

func TestSeqSetCollisionPanics(t *testing.T) {
	s := newSeqSet(28)
	s.add(3)
	defer func() {
		if recover() == nil {
			t.Fatal("aliasing add did not panic")
		}
	}()
	s.add(3 + 32)
}
