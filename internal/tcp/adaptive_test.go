package tcp

import (
	"testing"
	"time"
)

func TestAdaptiveDelAckRampsUpOnCleanPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DelayedAckB = 8
	cfg.AdaptiveDelAck = true
	h := newHarness(t, cfg)
	st := h.run(t, 10*time.Second)
	// After thousands of clean arrivals the window should sit at the
	// configured maximum, so the overall ACK ratio approaches 1/8 (it
	// starts at 1/1, hence "well below 1/4" rather than exactly 1/8).
	ratio := float64(st.AcksSent) / float64(st.UniqueDelivered)
	if ratio > 0.25 {
		t.Errorf("adaptive ACK ratio = %.3f, want well below 0.25 after ramp-up", ratio)
	}
	if h.conn.rcv.curB != 8 {
		t.Errorf("effective b = %d, want ramped to 8", h.conn.rcv.curB)
	}
	if st.Timeouts != 0 {
		t.Errorf("clean path had %d timeouts", st.Timeouts)
	}
}

func TestAdaptiveDelAckCollapsesOnDisturbance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DelayedAckB = 8
	cfg.AdaptiveDelAck = true
	h := newHarness(t, cfg)
	if err := h.conn.Start(time.Minute); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Let it ramp up cleanly...
	h.sim.RunUntil(5 * time.Second)
	if h.conn.rcv.curB <= 1 {
		t.Fatalf("window did not ramp before disturbance: b = %d", h.conn.rcv.curB)
	}
	// ...then lose one data packet: the resulting out-of-order arrival must
	// collapse the window to immediate ACKs.
	h.dropDataNth[h.dataCount+5] = true
	// Check shortly after the disturbance: the window collapsed to 1 and
	// has had time for at most a few +1 regrowth steps (one per 32 clean
	// arrivals), so it must still be below the maximum.
	h.sim.RunUntil(5*time.Second + 300*time.Millisecond)
	if h.conn.rcv.curB >= 8 {
		t.Errorf("effective b = %d after disturbance, want collapsed below max", h.conn.rcv.curB)
	}
	h.sim.RunUntil(6 * time.Second)
}

func TestAdaptiveDisabledKeepsStaticWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DelayedAckB = 4
	h := newHarness(t, cfg)
	st := h.run(t, 3*time.Second)
	if h.conn.rcv.curB != 4 {
		t.Errorf("static receiver changed its window: %d", h.conn.rcv.curB)
	}
	ratio := float64(st.AcksSent) / float64(st.UniqueDelivered)
	if ratio < 0.2 || ratio > 0.35 {
		t.Errorf("static b=4 ACK ratio = %.3f, want ~0.25", ratio)
	}
}

func TestAdaptiveBeatsStaticOnHSRLikeChannel(t *testing.T) {
	// On a disturbed channel (periodic data outages), the adaptive receiver
	// should deliver at least as much as an aggressive static b=8 receiver:
	// it falls back to immediate ACKs whenever retransmissions appear.
	run := func(adaptive bool) Stats {
		cfg := DefaultConfig()
		cfg.DelayedAckB = 8
		cfg.AdaptiveDelAck = adaptive
		h := newHarness(t, cfg)
		for at := 2 * time.Second; at < 20*time.Second; at += 4 * time.Second {
			h.dataOutages = append(h.dataOutages, window{from: at, to: at + time.Second})
			h.ackOutages = append(h.ackOutages, window{from: at, to: at + 1200*time.Millisecond})
		}
		return h.run(t, 20*time.Second)
	}
	static := run(false)
	adaptive := run(true)
	if adaptive.UniqueDelivered < static.UniqueDelivered {
		t.Errorf("adaptive delivered %d < static %d", adaptive.UniqueDelivered, static.UniqueDelivered)
	}
}
