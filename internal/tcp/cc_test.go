package tcp

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// referenceRenoControl is a verbatim transcription of the window arithmetic
// that lived inline in sender before the CongestionControl extraction (the
// onNewAck / onDupAck / onRTO bodies of the pre-interface conn.go). It is
// deliberately written from that code, not from renoControl, so the
// differential test below pins the production controller against the
// original semantics rather than against itself.
type referenceRenoControl struct {
	cfg     Config
	newReno bool
}

func (r *referenceRenoControl) Name() string { return "reference" }

func (r *referenceRenoControl) OnNewAck(w *Window, a Ack) {
	if w.Cwnd < w.SSThresh {
		w.Cwnd++
		if w.Cwnd > w.SSThresh {
			w.Cwnd = w.SSThresh
		}
	} else {
		w.Cwnd += 1 / w.Cwnd
	}
	if wm := float64(r.cfg.WindowLimit); w.Cwnd > wm {
		w.Cwnd = wm
	}
}

func (r *referenceRenoControl) OnPartialAck(w *Window, a Ack) bool {
	if !r.newReno {
		return false
	}
	w.Cwnd -= float64(a.Acked) - 1
	if w.Cwnd < 1 {
		w.Cwnd = 1
	}
	return true
}

func (r *referenceRenoControl) OnExitRecovery(w *Window, a Ack) {
	w.Cwnd = w.SSThresh
}

func (r *referenceRenoControl) OnDupAck(w *Window, a Ack) {
	w.Cwnd++
}

func (r *referenceRenoControl) OnEnterRecovery(w *Window, a Ack) {
	w.SSThresh = halfInflight(a.Inflight)
	w.Cwnd = w.SSThresh + 3
}

func (r *referenceRenoControl) OnRTO(w *Window, a Ack) {
	w.SSThresh = halfInflight(a.Inflight)
	w.Cwnd = 1
}

func (r *referenceRenoControl) OnSpuriousTimeout(w *Window, a Ack) {}

func (r *referenceRenoControl) SendWindow(w *Window) float64 { return w.Cwnd }

// hostileConn builds a connection over a lossy, jittery path and runs it for
// dur, returning its trace. Install a controller before Start via mutate.
func hostileConn(t *testing.T, cfg Config, seed int64, dataLoss, ackLoss float64,
	dur time.Duration, mutate func(*Conn)) *trace.FlowTrace {
	t.Helper()
	s := sim.New()
	fwd := netem.NewLink(s, netem.LinkConfig{
		Rate:     2e6,
		MaxQueue: 40,
		Delay:    netem.NewUniformDelay(30*time.Millisecond, 25*time.Millisecond, sim.NewRand(seed, sim.StreamDelay)),
		Loss:     netem.NewBernoulli(dataLoss, sim.NewRand(seed, sim.StreamDataLoss)),
	})
	rev := netem.NewLink(s, netem.LinkConfig{
		Rate:     1e6,
		MaxQueue: 40,
		Delay:    netem.NewUniformDelay(30*time.Millisecond, 25*time.Millisecond, sim.NewRand(seed+1, sim.StreamDelay)),
		Loss:     netem.NewBernoulli(ackLoss, sim.NewRand(seed, sim.StreamAckLoss)),
	})
	ft := &trace.FlowTrace{Meta: trace.FlowMeta{ID: "cc-diff", Duration: dur}}
	conn, err := New(s, netem.NewPath(fwd, rev), cfg, ft)
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(conn)
	}
	if err := conn.Start(dur); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(dur)
	return ft
}

// TestRenoBehindInterfaceMatchesReference runs Reno and NewReno through a
// hostile corpus (loss on both directions, delay jitter strong enough to
// reorder, queue overflow) twice — once with the production controller, once
// with the verbatim pre-refactor arithmetic injected — and requires the two
// traces to agree event for event, including every recorded cwnd.
func TestRenoBehindInterfaceMatchesReference(t *testing.T) {
	corpus := []struct {
		seed               int64
		dataLoss, ackLoss  float64
	}{
		{1, 0, 0},
		{2, 0.05, 0},
		{3, 0, 0.20},
		{4, 0.15, 0.15},
		{5, 0.29, 0.05},
		{6, 0.02, 0.29},
		{7, 0.25, 0.25},
	}
	for _, newReno := range []bool{false, true} {
		for _, c := range corpus {
			cfg := DefaultConfig()
			if newReno {
				cfg.Variant = VariantNewReno
			} else {
				cfg.Variant = VariantReno
			}
			name := fmt.Sprintf("%s/seed=%d/loss=%.2f-%.2f", cfg.Variant, c.seed, c.dataLoss, c.ackLoss)
			got := hostileConn(t, cfg, c.seed, c.dataLoss, c.ackLoss, 30*time.Second, nil)
			want := hostileConn(t, cfg, c.seed, c.dataLoss, c.ackLoss, 30*time.Second, func(conn *Conn) {
				conn.snd.cc = &referenceRenoControl{cfg: cfg, newReno: newReno}
			})
			if len(got.Events) != len(want.Events) {
				t.Fatalf("%s: %d events with production controller, %d with reference",
					name, len(got.Events), len(want.Events))
			}
			for i := range got.Events {
				if got.Events[i] != want.Events[i] {
					t.Fatalf("%s: event %d diverged:\n  production: %+v\n  reference:  %+v",
						name, i, got.Events[i], want.Events[i])
				}
			}
		}
	}
}

// invariantCheckControl wraps a controller and asserts the window invariants
// after every hook: cwnd never below 1 (except transiently inside recovery
// entry, where the post-hook value is ssthresh+3 anyway), ssthresh never
// below 2, and neither ever NaN or infinite.
type invariantCheckControl struct {
	inner CongestionControl
	fail  func(format string, args ...any)
}

func (c *invariantCheckControl) check(hook string, w *Window) {
	if !(w.Cwnd >= 1) || w.Cwnd != w.Cwnd {
		c.fail("%s/%s: cwnd %v < 1", c.inner.Name(), hook, w.Cwnd)
	}
	if !(w.SSThresh >= 2) || w.SSThresh != w.SSThresh {
		c.fail("%s/%s: ssthresh %v < 2", c.inner.Name(), hook, w.SSThresh)
	}
	if sw := c.inner.SendWindow(w); !(sw >= 1) {
		c.fail("%s/%s: send window %v < 1", c.inner.Name(), hook, sw)
	}
}

func (c *invariantCheckControl) Name() string { return c.inner.Name() }
func (c *invariantCheckControl) OnNewAck(w *Window, a Ack) {
	c.inner.OnNewAck(w, a)
	c.check("OnNewAck", w)
}
func (c *invariantCheckControl) OnPartialAck(w *Window, a Ack) bool {
	ok := c.inner.OnPartialAck(w, a)
	c.check("OnPartialAck", w)
	return ok
}
func (c *invariantCheckControl) OnExitRecovery(w *Window, a Ack) {
	c.inner.OnExitRecovery(w, a)
	c.check("OnExitRecovery", w)
}
func (c *invariantCheckControl) OnDupAck(w *Window, a Ack) {
	c.inner.OnDupAck(w, a)
	c.check("OnDupAck", w)
}
func (c *invariantCheckControl) OnEnterRecovery(w *Window, a Ack) {
	c.inner.OnEnterRecovery(w, a)
	c.check("OnEnterRecovery", w)
}
func (c *invariantCheckControl) OnRTO(w *Window, a Ack) {
	c.inner.OnRTO(w, a)
	c.check("OnRTO", w)
}
func (c *invariantCheckControl) OnSpuriousTimeout(w *Window, a Ack) {
	c.inner.OnSpuriousTimeout(w, a)
	c.check("OnSpuriousTimeout", w)
}
func (c *invariantCheckControl) SendWindow(w *Window) float64 { return c.inner.SendWindow(w) }

// TestControllerInvariantsFuzzed drives every variant through random hostile
// scenarios with an invariant-checking shim around the controller, so the
// window rules are verified after every single hook invocation rather than
// only at flow end.
func TestControllerInvariantsFuzzed(t *testing.T) {
	for _, v := range Variants() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			f := func(seed int64, dataLossPct, ackLossPct uint8) bool {
				cfg := DefaultConfig()
				cfg.Variant = v
				ok := true
				hostileConn(t, cfg, seed, float64(dataLossPct%30)/100, float64(ackLossPct%30)/100,
					15*time.Second, func(conn *Conn) {
						conn.snd.cc = &invariantCheckControl{
							inner: conn.snd.cc,
							fail: func(format string, args ...any) {
								ok = false
								t.Errorf(format, args...)
							},
						}
					})
				return ok
			}
			cfg := &quick.Config{MaxCount: 12}
			if testing.Short() {
				cfg.MaxCount = 3
			}
			if err := quick.Check(f, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestParseVariant covers the round trip between names and enum values.
func TestParseVariant(t *testing.T) {
	for _, v := range Variants() {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Fatalf("ParseVariant(%q) = %v, %v", v.String(), got, err)
		}
	}
	if _, err := ParseVariant("vegas"); err == nil {
		t.Fatal("ParseVariant accepted an unknown variant")
	}
}

// TestVariantsRunAndDeliver sanity-checks that every variant actually moves
// data under mild loss and reports its own name.
func TestVariantsRunAndDeliver(t *testing.T) {
	for _, v := range Variants() {
		cfg := DefaultConfig()
		cfg.Variant = v
		s := sim.New()
		fwd := netem.NewLink(s, netem.LinkConfig{
			Rate: 5e6, MaxQueue: 60,
			Delay: netem.FixedDelay(25 * time.Millisecond),
			Loss:  netem.NewBernoulli(0.02, sim.NewRand(7, sim.StreamDataLoss)),
		})
		rev := netem.NewLink(s, netem.LinkConfig{Delay: netem.FixedDelay(25 * time.Millisecond)})
		conn, err := New(s, netem.NewPath(fwd, rev), cfg, trace.Nop{})
		if err != nil {
			t.Fatal(err)
		}
		if got := conn.CC(); got != v.String() {
			t.Fatalf("CC() = %q, want %q", got, v.String())
		}
		if err := conn.Start(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		s.RunUntil(20 * time.Second)
		st := conn.Stats()
		if st.UniqueDelivered < 100 {
			t.Fatalf("%s delivered only %d segments in 20s", v, st.UniqueDelivered)
		}
	}
}

// TestCubicReduction checks the RFC 8312 multiplicative decrease and fast
// convergence: a loss at a window below the previous plateau aims the next
// plateau below the current window.
func TestCubicReduction(t *testing.T) {
	cfg := DefaultConfig()
	c := newCubicControl(cfg)
	w := &Window{Cwnd: 100, SSThresh: 50}
	c.OnEnterRecovery(w, Ack{Inflight: 100})
	if want := 100 * cubicBeta; w.SSThresh != want {
		t.Fatalf("ssthresh after loss = %v, want %v", w.SSThresh, want)
	}
	if w.Cwnd != w.SSThresh+3 {
		t.Fatalf("cwnd after loss = %v, want ssthresh+3", w.Cwnd)
	}
	if c.wMax != 100 {
		t.Fatalf("wMax = %v, want 100", c.wMax)
	}
	// Second loss from a smaller window: fast convergence aims below it.
	w2 := &Window{Cwnd: 80, SSThresh: 70}
	c.OnEnterRecovery(w2, Ack{Inflight: 80})
	if want := 80 * (1 + cubicBeta) / 2; c.wMax != want {
		t.Fatalf("fast convergence wMax = %v, want %v", c.wMax, want)
	}
}

// TestCubicGrowthConcaveThenConvex verifies the curve shape: below the
// plateau the per-ACK increment shrinks as the window approaches wMax, and
// beyond it growth accelerates again.
func TestCubicGrowthConcaveThenConvex(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowLimit = 1 << 20
	c := newCubicControl(cfg)
	w := &Window{Cwnd: 30, SSThresh: 2}
	c.wMax = 60
	rtt := 50 * time.Millisecond
	now := time.Second
	var prev float64 = w.Cwnd
	var increments []float64
	for i := 0; i < 20000 && w.Cwnd < 100; i++ {
		now += time.Millisecond
		c.OnNewAck(w, Ack{Now: now, RTT: rtt, SRTT: rtt})
		increments = append(increments, w.Cwnd-prev)
		prev = w.Cwnd
	}
	if w.Cwnd < 100 {
		t.Fatalf("window never climbed past the plateau (cwnd=%v)", w.Cwnd)
	}
	// Concave approach: growth at the start outpaces growth near the
	// plateau. Convex escape: growth past the plateau outpaces the trough.
	early, mid, late := increments[0], 0.0, increments[len(increments)-1]
	for _, inc := range increments {
		if mid == 0 || inc < mid {
			mid = inc
		}
	}
	if !(early > mid) || !(late > mid) {
		t.Fatalf("not concave-then-convex: early %v, min %v, late %v", early, mid, late)
	}
}

// TestCompoundDelayWindow checks the delay-window law: with RTT at the
// floor the binomial increase raises dwnd, and queueing delay past gamma
// drains it back toward zero.
func TestCompoundDelayWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowLimit = 1 << 20
	c := newCompoundControl(cfg)
	w := &Window{Cwnd: 40, SSThresh: 2}
	base := 50 * time.Millisecond
	// No queueing: diff = 0, dwnd should grow.
	for i := 0; i < 200; i++ {
		c.OnNewAck(w, Ack{RTT: base, SRTT: base, MinRTT: base})
	}
	if c.dwnd <= 0 {
		t.Fatalf("dwnd = %v after 200 uncongested ACKs, want > 0", c.dwnd)
	}
	grown := c.dwnd
	// Heavy queueing: RTT at 4x base makes diff large, dwnd must shrink.
	for i := 0; i < 400; i++ {
		c.OnNewAck(w, Ack{RTT: 4 * base, SRTT: 4 * base, MinRTT: base})
	}
	if c.dwnd >= grown {
		t.Fatalf("dwnd = %v after congestion, want < %v", c.dwnd, grown)
	}
	if c.dwnd < 0 {
		t.Fatalf("dwnd went negative: %v", c.dwnd)
	}
	// Loss zeroes the delay component entirely.
	c.OnEnterRecovery(w, Ack{Inflight: int64(w.Cwnd)})
	if c.dwnd != 0 {
		t.Fatalf("dwnd = %v after loss, want 0", c.dwnd)
	}
}

// TestBBRStateMachine walks the probe state machine with a synthetic ACK
// clock: startup doubles toward the bandwidth estimate, a full pipe drains,
// and steady state settles into the probe-bandwidth cycle.
func TestBBRStateMachine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowLimit = 1 << 20
	b := newBBRControl(cfg)
	if b.state != bbrStartup {
		t.Fatalf("initial state = %v, want startup", b.state)
	}
	w := &Window{Cwnd: cfg.InitialCwnd, SSThresh: cfg.InitialSSThresh}
	rtt := 40 * time.Millisecond
	now := time.Second
	var seq int64
	// Deliver steady 250 pkt/s for many rounds: the bandwidth filter
	// saturates, growth flattens, and startup must end.
	for i := 0; i < 600 && b.state == bbrStartup; i++ {
		now += 4 * time.Millisecond
		seq += 10
		b.OnNewAck(w, Ack{Now: now, RTT: rtt, SRTT: rtt, MinRTT: rtt,
			Acked: 1, AckNo: seq, NextSeq: seq + 20, Inflight: 20})
	}
	if b.state == bbrStartup {
		t.Fatal("startup never detected a full pipe")
	}
	// Drain: the collapsed window lets inflight fall to the BDP, at which
	// point the machine must move on to the probe-bandwidth cycle.
	for i := 0; i < 2000 && b.state != bbrProbeBW; i++ {
		now += 4 * time.Millisecond
		seq += 10
		b.OnNewAck(w, Ack{Now: now, RTT: rtt, SRTT: rtt, MinRTT: rtt,
			Acked: 1, AckNo: seq, NextSeq: seq + 20, Inflight: 4})
	}
	if b.state != bbrProbeBW {
		t.Fatalf("never reached probe-bw (state %v)", b.state)
	}
	if b.btlBw() <= 0 {
		t.Fatal("no bandwidth estimate after startup")
	}
	// RTO collapses the window to 1 but keeps the model.
	b.OnRTO(w, Ack{Inflight: 20})
	if w.Cwnd != 1 {
		t.Fatalf("cwnd after RTO = %v, want 1", w.Cwnd)
	}
}
