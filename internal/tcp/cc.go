package tcp

import "time"

// Window is the congestion state a CongestionControl owns: the congestion
// window and slow-start threshold, both in packets. The sender's
// loss-recovery machinery (dup-ACK counting, fast-recovery bookkeeping,
// go-back-N, the Eifel response) stays in the sender; every change to the
// two window variables goes through a controller hook, so a variant is
// exactly its window arithmetic.
type Window struct {
	Cwnd     float64
	SSThresh float64
}

// Ack carries the per-event facts a controller may consult. Fields the
// triggering event cannot supply are zero (RTT on ACKs that produced no
// Karn-valid sample, Acked outside new-ACK hooks).
type Ack struct {
	// Now is the current virtual time.
	Now time.Duration
	// RTT is the round-trip sample taken from this ACK under Karn's rule,
	// or 0 when the ACK produced none.
	RTT time.Duration
	// SRTT is the smoothed RTT estimate (0 before the first sample).
	SRTT time.Duration
	// MinRTT is the lowest Karn-valid sample seen on this connection so
	// far (0 before the first sample) — the delay-based variants' estimate
	// of the propagation delay.
	MinRTT time.Duration
	// Acked is how many segments this ACK newly acknowledged (new-ACK and
	// partial-ACK hooks only).
	Acked int64
	// Inflight is the current number of window-occupying segments.
	Inflight int64
	// AckNo is the cumulative acknowledgement number.
	AckNo int64
	// NextSeq is the sender's next sequence number to transmit.
	NextSeq int64
}

// CongestionControl is the pluggable window-arithmetic half of a sender.
// One controller instance serves one connection; implementations may keep
// state but must be deterministic functions of the hook sequence (no
// wall-clock or randomness), since campaign results are byte-compared
// across process and worker topologies.
//
// Hook contract (see docs/CONGESTION.md for the full narrative):
//
//   - OnNewAck: a cumulative ACK advanced the window outside any recovery;
//     grow the window (slow start below SSThresh, the variant's avoidance
//     law above it).
//   - OnPartialAck: a new ACK arrived during fast recovery without
//     covering the recovery point. Return true to stay in fast recovery
//     (the sender then retransmits the next hole); false hands the ACK to
//     OnExitRecovery. Classic Reno returns false.
//   - OnExitRecovery: fast recovery completed; deflate the window.
//   - OnDupAck: a duplicate ACK arrived while already in fast recovery
//     (window inflation — each dup signals a departure).
//   - OnEnterRecovery: the third duplicate ACK arrived; the fast
//     retransmission has already been sent. Set the new threshold and the
//     in-recovery window.
//   - OnRTO: the retransmission timer fired (before the go-back-N rewind,
//     so Ack.Inflight still reflects the stalled window).
//   - OnSpuriousTimeout: the sender's Eifel response just restored the
//     pre-timeout Window; reset any epoch state derived from the bogus
//     collapse.
//   - SendWindow: the window the transmit path should respect right now,
//     in packets; the sender clamps it to the receiver-advertised limit.
type CongestionControl interface {
	Name() string
	OnNewAck(w *Window, a Ack)
	OnPartialAck(w *Window, a Ack) bool
	OnExitRecovery(w *Window, a Ack)
	OnDupAck(w *Window, a Ack)
	OnEnterRecovery(w *Window, a Ack)
	OnRTO(w *Window, a Ack)
	OnSpuriousTimeout(w *Window, a Ack)
	SendWindow(w *Window) float64
}

// newController builds the controller for cfg.Variant. cfg has been
// validated, so unknown variants cannot reach here.
func newController(cfg Config) CongestionControl {
	switch cfg.Variant {
	case VariantNewReno:
		return &renoControl{cfg: cfg, newReno: true}
	case VariantCUBIC:
		return newCubicControl(cfg)
	case VariantCompound:
		return newCompoundControl(cfg)
	case VariantBBR:
		return newBBRControl(cfg)
	default:
		return &renoControl{cfg: cfg}
	}
}

// renoControl implements classic Reno and, with newReno set, the RFC 6582
// partial-ACK variant. Its arithmetic is the paper's model: +1 per ACK in
// slow start, +1/cwnd in congestion avoidance, halving on loss.
type renoControl struct {
	cfg     Config
	newReno bool
}

func (r *renoControl) Name() string {
	if r.newReno {
		return "newreno"
	}
	return "reno"
}

func (r *renoControl) OnNewAck(w *Window, a Ack) {
	// Per-ACK window growth (RFC 5681 without byte counting): +1 in slow
	// start, +1/cwnd in congestion avoidance. With delayed ACKs every b
	// segments this yields the 1-packet-per-b-rounds CA growth the paper's
	// model assumes.
	if w.Cwnd < w.SSThresh {
		w.Cwnd++
		if w.Cwnd > w.SSThresh {
			w.Cwnd = w.SSThresh
		}
	} else {
		w.Cwnd += 1 / w.Cwnd
	}
	if wm := float64(r.cfg.WindowLimit); w.Cwnd > wm {
		w.Cwnd = wm
	}
}

func (r *renoControl) OnPartialAck(w *Window, a Ack) bool {
	if !r.newReno {
		return false
	}
	// NewReno partial ACK (RFC 6582): deflate by the amount acknowledged
	// (keeping one segment's worth for the hole retransmission) and stay
	// in fast recovery.
	w.Cwnd -= float64(a.Acked) - 1
	if w.Cwnd < 1 {
		w.Cwnd = 1
	}
	return true
}

func (r *renoControl) OnExitRecovery(w *Window, a Ack) {
	w.Cwnd = w.SSThresh
}

func (r *renoControl) OnDupAck(w *Window, a Ack) {
	// Window inflation: each further dup ACK signals one segment left the
	// network.
	w.Cwnd++
}

func (r *renoControl) OnEnterRecovery(w *Window, a Ack) {
	w.SSThresh = halfInflight(a.Inflight)
	w.Cwnd = w.SSThresh + 3
}

func (r *renoControl) OnRTO(w *Window, a Ack) {
	w.SSThresh = halfInflight(a.Inflight)
	w.Cwnd = 1
}

func (r *renoControl) OnSpuriousTimeout(w *Window, a Ack) {}

func (r *renoControl) SendWindow(w *Window) float64 { return w.Cwnd }
