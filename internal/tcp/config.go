// Package tcp implements a packet-granular TCP Reno endpoint pair (data
// sender and ACK-generating receiver) running over an emulated netem.Path
// inside a discrete-event simulation. It models exactly the mechanisms the
// paper's analysis and model depend on:
//
//   - slow start, congestion avoidance, triple-duplicate-ACK fast
//     retransmit + fast recovery,
//   - an RFC 6298 retransmission timer with exponential backoff capped at
//     64·T (the paper's timeout-sequence behaviour),
//   - cumulative acknowledgements with the delayed-ACK window b, so that a
//     whole round's worth of lost ACKs — and only that — can produce a
//     spurious retransmission timeout (the paper's "ACK burst loss"),
//   - a static receiver advertised window W_m (the paper's window
//     limitation).
//
// The sender transmits an infinite data stream of MSS-sized segments, the
// steady-state workload assumed by both the Padhye model and the paper's
// enhanced model.
package tcp

import (
	"fmt"
	"time"
)

// Variant selects the sender's loss-recovery behaviour.
type Variant int

// Supported congestion-control variants.
const (
	// VariantReno is classic Reno: any new ACK terminates fast recovery, so
	// windows with multiple losses usually end in a retransmission timeout.
	// This is the variant the paper models.
	VariantReno Variant = iota + 1
	// VariantNewReno implements RFC 6582-style partial-ACK handling: a new
	// ACK that does not cover the recovery point retransmits the next hole
	// and stays in fast recovery, often avoiding the timeout entirely.
	VariantNewReno
	// VariantCUBIC grows the window along the RFC 8312 cubic curve
	// W(t) = C(t-K)^3 + Wmax with a TCP-friendly region, reducing by the
	// factor 0.7 on loss. Loss recovery is NewReno-style.
	VariantCUBIC
	// VariantCompound adds a delay-based window (TCP Compound's dwnd,
	// binomial increase alpha*win^k with k = 0.75) on top of a Reno loss
	// window, backing the delay component off as queueing delay builds —
	// the mixed-CC regime analyzed by Poojary & Sharma.
	VariantCompound
	// VariantBBR is a model-based variant in the BBR spirit: it estimates
	// the bottleneck bandwidth and propagation RTT from the ACK stream and
	// caps the congestion window at a gain times the estimated BDP,
	// cycling probe gains instead of reacting to individual losses.
	VariantBBR
)

// Variants lists every supported congestion-control variant in enum order.
func Variants() []Variant {
	return []Variant{VariantReno, VariantNewReno, VariantCUBIC, VariantCompound, VariantBBR}
}

// ParseVariant maps a variant name (as produced by String) back to its
// enum value.
func ParseVariant(name string) (Variant, error) {
	for _, v := range Variants() {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("tcp: unknown variant %q", name)
}

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantReno:
		return "reno"
	case VariantNewReno:
		return "newreno"
	case VariantCUBIC:
		return "cubic"
	case VariantCompound:
		return "compound"
	case VariantBBR:
		return "bbr"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config holds the tunables of one TCP connection.
type Config struct {
	// Variant selects Reno (the paper's subject) or NewReno loss recovery.
	Variant Variant
	// MSS is the segment payload size in bytes.
	MSS int
	// HeaderBytes models TCP/IP header overhead added to every data segment
	// on the wire; pure ACKs are HeaderBytes long.
	HeaderBytes int
	// InitialCwnd is the initial congestion window in packets.
	InitialCwnd float64
	// InitialSSThresh is the initial slow-start threshold in packets.
	InitialSSThresh float64
	// DelayedAckB is the paper's b: the number of in-order data packets the
	// receiver accumulates before emitting one cumulative ACK. 1 disables
	// delayed ACKs.
	DelayedAckB int
	// AdaptiveDelAck enables a TCP-DCA-style receiver (the adaptive
	// delayed-ACK direction the paper marks as future work, Section V-A):
	// the effective delayed-ACK window starts at 1 and grows toward
	// DelayedAckB after streaks of clean in-order delivery, collapsing back
	// to 1 the moment the receiver sees out-of-order or duplicate data — a
	// disturbed channel is exactly when ACKs are "precious".
	AdaptiveDelAck bool
	// DelAckTimeout bounds how long the receiver may hold a delayed ACK.
	DelAckTimeout time.Duration
	// WindowLimit is the paper's W_m: the receiver advertised window in
	// packets; the sender's effective window is min(cwnd, WindowLimit).
	WindowLimit int
	// MinRTO and MaxRTO clamp the RFC 6298 retransmission timeout before
	// backoff is applied.
	MinRTO time.Duration
	MaxRTO time.Duration
	// MaxBackoff caps the exponential backoff: the timer doubles up to
	// 2^MaxBackoff times the base RTO (6 gives the classic 64·T cap).
	MaxBackoff int
	// SpuriousRTORecovery enables an Eifel-style response (RFC 3522/4015
	// spirit) to the spurious timeouts the paper measures: the receiver
	// marks ACKs triggered by duplicate payload (a DSACK-like signal), and
	// when such an ACK ends a timeout recovery the sender knows the timeout
	// was spurious — the original data had arrived — so it restores the
	// pre-timeout congestion state and skips the go-back-N resend instead
	// of slow-starting from one segment.
	SpuriousRTORecovery bool
}

// DefaultConfig returns the configuration used across the experiments: a
// 1448-byte MSS, delayed ACKs every 2 segments, a 64-packet advertised
// window, and a 400 ms minimum RTO (between the RFC 6298 1 s floor and the
// 200 ms of Linux, matching the sub-second stationary recoveries in the
// paper's traces).
func DefaultConfig() Config {
	return Config{
		Variant:         VariantReno,
		MSS:             1448,
		HeaderBytes:     52,
		InitialCwnd:     2,
		InitialSSThresh: 32,
		DelayedAckB:     2,
		DelAckTimeout:   200 * time.Millisecond,
		WindowLimit:     28,
		MinRTO:          400 * time.Millisecond,
		MaxRTO:          60 * time.Second,
		MaxBackoff:      6,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.Variant < VariantReno || c.Variant > VariantBBR {
		return fmt.Errorf("tcp: unknown variant %v", c.Variant)
	}
	if c.MSS <= 0 {
		return fmt.Errorf("tcp: MSS %d must be positive", c.MSS)
	}
	if c.HeaderBytes < 0 {
		return fmt.Errorf("tcp: HeaderBytes %d must be non-negative", c.HeaderBytes)
	}
	if c.InitialCwnd < 1 {
		return fmt.Errorf("tcp: InitialCwnd %v must be >= 1", c.InitialCwnd)
	}
	if c.InitialSSThresh < 2 {
		return fmt.Errorf("tcp: InitialSSThresh %v must be >= 2", c.InitialSSThresh)
	}
	if c.DelayedAckB < 1 {
		return fmt.Errorf("tcp: DelayedAckB %d must be >= 1", c.DelayedAckB)
	}
	if c.DelayedAckB > 1 && c.DelAckTimeout <= 0 {
		return fmt.Errorf("tcp: DelAckTimeout must be positive when delayed ACKs are on")
	}
	if c.WindowLimit < 2 {
		return fmt.Errorf("tcp: WindowLimit %d must be >= 2", c.WindowLimit)
	}
	if c.MinRTO <= 0 || c.MaxRTO < c.MinRTO {
		return fmt.Errorf("tcp: RTO bounds [%v, %v] invalid", c.MinRTO, c.MaxRTO)
	}
	if c.MaxBackoff < 0 || c.MaxBackoff > 16 {
		return fmt.Errorf("tcp: MaxBackoff %d outside [0, 16]", c.MaxBackoff)
	}
	return nil
}
