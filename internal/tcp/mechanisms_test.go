package tcp

// Tests for the paper's schematic figures (5, 7-9, 11): the packet-level
// mechanisms behind the model. Each test reconstructs one of the paper's
// drawn scenarios and checks the behaviour the figure illustrates.

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// Fig 5(a): all ACKs of one round are lost — the sender mistakes ACK loss
// for data loss and a (spurious) timeout fires after T.
func TestFig5aAckBurstLossTriggersTimeout(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	// One long ACK blackout guarantees at least one full round's ACKs die.
	h.ackOutages = []window{{from: time.Second, to: 3 * time.Second}}
	st := h.run(t, 6*time.Second)
	if st.Timeouts == 0 {
		t.Fatal("ACK burst loss did not trigger a timeout")
	}
	if st.DataDropped != 0 {
		t.Fatal("test setup leaked data loss; timeout not attributable to ACKs")
	}
}

// Fig 5(b) / Fig 11: if even one cumulative ACK of the round survives, the
// sliding window advances and no timeout fires — "ACKs are precious".
func TestFig11OneSurvivingAckPreventsTimeout(t *testing.T) {
	cfg := DefaultConfig()
	h := newHarness(t, cfg)
	// Drop every second ACK at random once the window has grown: with ~14
	// ACKs per round the chance of losing a whole round is 2^-14, so
	// cumulative acknowledgement keeps the window sliding and no timeout
	// should fire — losing many individual ACKs is harmless, unlike a
	// single data loss. (During the first slow-start rounds a window has
	// only 1-2 ACKs, so loss starts after the ramp.)
	h.ackLossRate = 0.5
	h.ackLossAfter = time.Second
	st := h.run(t, 6*time.Second)
	if st.AcksDropped == 0 {
		t.Fatal("test setup dropped no ACKs")
	}
	if st.Timeouts != 0 {
		t.Errorf("timeouts = %d despite surviving cumulative ACKs each round", st.Timeouts)
	}
	if st.UniqueDelivered == 0 {
		t.Error("no progress")
	}
}

// Fig 7: the evolution of the window in a CA phase — after a loss
// indication the window halves and then grows linearly.
func TestFig7WindowSawtooth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialCwnd = 20
	cfg.InitialSSThresh = 20 // start in congestion avoidance
	cfg.WindowLimit = 1000
	h := newHarness(t, cfg)
	h.dropDataNth[400] = true // one mid-flow loss
	h.run(t, 8*time.Second)

	// Find the cwnd at the fast retransmit and the post-deflation floor:
	// during fast recovery the window is inflated by dup ACKs, so the
	// halving shows up as the minimum cwnd among sends within the second
	// after the loss indication.
	var before, floor float64
	var retxAt time.Duration = -1
	for _, ev := range h.ft.Events {
		switch ev.Type {
		case trace.EvFastRetx:
			if retxAt < 0 {
				before = ev.Cwnd
				retxAt = ev.At
			}
		case trace.EvDataSend:
			if retxAt >= 0 && ev.At > retxAt && ev.At <= retxAt+time.Second {
				if floor == 0 || ev.Cwnd < floor {
					floor = ev.Cwnd
				}
			}
		}
	}
	if retxAt < 0 {
		t.Fatal("no fast retransmit observed")
	}
	// Reno halves: the deflated window must be close to half the pre-loss
	// window, then grow linearly again.
	if floor < before*0.4 || floor > before*0.65 {
		t.Errorf("window floor after loss = %.1f, want ~half of %.1f", floor, before)
	}
}

// Fig 8: a cycle consists of CA phases ended by fast retransmits and a
// timeout sequence ended by a recovery — both visible in one lossy flow.
func TestFig8CyclesContainBothLossIndications(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.dropDataNth[120] = true // isolated loss -> fast retransmit
	h.dataOutages = []window{{from: 4 * time.Second, to: 6 * time.Second}}
	st := h.run(t, 10*time.Second)
	if st.FastRetransmits == 0 {
		t.Error("no fast retransmit (triple-dup-ACK indication)")
	}
	if st.Timeouts == 0 {
		t.Error("no timeout indication")
	}
	if got := countEvents(h.ft, trace.EvRecovered); got == 0 {
		t.Error("no recovery closing the timeout sequence")
	}
}

// Fig 9: with a small advertised window the flow is window-limited — cwnd
// saturates at W_m and throughput matches W_m/RTT.
func TestFig9WindowLimitation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowLimit = 8
	h := newHarness(t, cfg)
	st := h.run(t, 5*time.Second)
	if got := h.conn.Cwnd(); got != 8 {
		t.Errorf("cwnd = %v, want pinned at Wm = 8", got)
	}
	want := 8.0 / 0.06 // Wm / RTT
	pps := st.ThroughputPps()
	if pps < want*0.85 || pps > want*1.05 {
		t.Errorf("throughput = %.1f pps, want ~Wm/RTT = %.1f", pps, want)
	}
}

// The retransmission timer doubles per consecutive timeout (Fig 2's T, 2T,
// 4T ... 64T schedule) — verified here end-to-end through the trace of a
// single uninterrupted timeout sequence.
func TestFig2TimerSchedule(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.dataOutages = []window{{from: time.Second, to: 90 * time.Second}}
	h.ackOutages = h.dataOutages
	h.run(t, 100*time.Second)
	var at []time.Duration
	for _, ev := range h.ft.Events {
		if ev.Type == trace.EvTimeout {
			at = append(at, ev.At)
		}
	}
	if len(at) < 6 {
		t.Fatalf("only %d timeouts", len(at))
	}
	base := at[1].Seconds() - at[0].Seconds() // 2T
	for i := 2; i < 6; i++ {
		gap := at[i].Seconds() - at[i-1].Seconds()
		want := base * float64(int(1)<<(i-1))
		if gap < want*0.95 || gap > want*1.05 {
			t.Errorf("gap %d = %.2fs, want ~%.2fs (doubling schedule)", i, gap, want)
		}
	}
}
