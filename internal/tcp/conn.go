package tcp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Stats aggregates endpoint counters for one connection. The analyzer works
// from the packet trace; Stats exists for quick summaries and invariant
// checks in tests.
type Stats struct {
	Start time.Duration
	End   time.Duration

	DataSent        int64 // data transmissions, including retransmissions
	Retransmissions int64
	Timeouts        int64
	FastRetransmits int64
	// SpuriousRecoveries counts timeout recoveries the Eifel response
	// (Config.SpuriousRTORecovery) classified as spurious and undid.
	SpuriousRecoveries int64
	DataDropped        int64 // ground truth channel/queue drops, data direction
	UniqueDelivered    int64 // distinct segments that reached the receiver
	DupDelivered       int64 // duplicate segment arrivals at the receiver
	AcksSent           int64
	AcksReceived       int64
	AcksDropped        int64 // ground truth drops, ACK direction
}

// Duration returns the observed flow duration.
func (s Stats) Duration() time.Duration { return s.End - s.Start }

// ThroughputPps returns delivered unique segments per second.
func (s Stats) ThroughputPps() float64 {
	d := s.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(s.UniqueDelivered) / d
}

// Conn is one simulated TCP Reno connection: a bulk-data sender, a receiver,
// and the path between them. Create with New, call Start, then run the
// simulator; the connection stops offering new data at its deadline.
type Conn struct {
	simulator *sim.Simulator
	path      *netem.Path
	cfg       Config
	rec       trace.Recorder

	// fwdLink is path.Forward downcast once at New: when the forward
	// direction is a plain Link, the sender's window fill submits its
	// segments through one netem.Burst instead of per-packet Sends. Nil for
	// chained or fault-staged paths, which keep the per-packet interface.
	fwdLink *netem.Link

	// tel is the optional per-flow telemetry sink; nil (the default) keeps
	// every instrumented path at a single predictable branch with zero
	// allocations and no behavioural change.
	tel *telemetry.TCP

	start       time.Duration
	deadline    time.Duration
	started     bool
	segLimit    int64 // 0 = unlimited (duration-bounded bulk flow)
	completed   bool
	completedAt time.Duration

	snd sender
	rcv receiver

	// Free lists of the pooled per-packet callback events. One event object
	// per in-flight packet direction is live at a time; fired (and
	// synchronously dropped) events return here, so steady-state transmission
	// allocates nothing per packet. Single-threaded by construction: the
	// whole connection runs inside one Simulator.
	dataFree *dataEvent
	ackFree  *ackEvent
}

// dataEvent is a pooled data-segment delivery callback (the closure
// replacement for "deliver seq/txNo to the receiver").
type dataEvent struct {
	c    *Conn
	seq  int64
	txNo int
	next *dataEvent
}

// Fire implements netem.Handler.
func (e *dataEvent) Fire() {
	c, seq, txNo := e.c, e.seq, e.txNo
	c.putDataEvent(e)
	c.rcv.onData(seq, txNo)
}

func (c *Conn) getDataEvent(seq int64, txNo int) *dataEvent {
	e := c.dataFree
	if e == nil {
		e = &dataEvent{c: c}
	} else {
		c.dataFree = e.next
		e.next = nil
	}
	e.seq, e.txNo = seq, txNo
	return e
}

func (c *Conn) putDataEvent(e *dataEvent) {
	e.next = c.dataFree
	c.dataFree = e
}

// ackEvent is a pooled ACK delivery callback.
type ackEvent struct {
	c     *Conn
	ackNo int64
	trig  int
	dup   bool
	next  *ackEvent
}

// Fire implements netem.Handler.
func (e *ackEvent) Fire() {
	c, ackNo, trig, dup := e.c, e.ackNo, e.trig, e.dup
	c.putAckEvent(e)
	c.snd.onAck(ackNo, trig, dup)
}

func (c *Conn) getAckEvent(ackNo int64, trig int, dup bool) *ackEvent {
	e := c.ackFree
	if e == nil {
		e = &ackEvent{c: c}
	} else {
		c.ackFree = e.next
		e.next = nil
	}
	e.ackNo, e.trig, e.dup = ackNo, trig, dup
	return e
}

func (c *Conn) putAckEvent(e *ackEvent) {
	e.next = c.ackFree
	c.ackFree = e
}

// New builds a connection over path. Events are reported to rec (use
// trace.Nop{} to discard them).
func New(simulator *sim.Simulator, path *netem.Path, cfg Config, rec trace.Recorder) (*Conn, error) {
	if simulator == nil || path == nil {
		return nil, fmt.Errorf("tcp: New requires a simulator and a path")
	}
	if rec == nil {
		rec = trace.Nop{}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Conn{simulator: simulator, path: path, cfg: cfg, rec: rec}
	if l, ok := path.Forward.(*netem.Link); ok {
		c.fwdLink = l
	}
	c.snd = sender{
		c:    c,
		wnd:  Window{Cwnd: cfg.InitialCwnd, SSThresh: cfg.InitialSSThresh},
		cc:   newController(cfg),
		rto:  newRTOEstimator(cfg.MinRTO, cfg.MaxRTO),
		sent: newSendRing(cfg.WindowLimit),
	}
	c.rcv = receiver{c: c, ooo: newSeqSet(cfg.WindowLimit), curB: cfg.DelayedAckB}
	if cfg.AdaptiveDelAck {
		c.rcv.curB = 1
	}
	return c, nil
}

// Start begins bulk transmission now and stops offering new data after d of
// virtual time. It may be called once.
func (c *Conn) Start(d time.Duration) error {
	return c.startFlow(0, d)
}

// StartSized begins transmission of exactly segments data segments; the
// flow completes when all of them are acknowledged (or after maxDur of
// virtual time, whichever comes first). This is the paper's fixed-size flow
// shape used in the MPTCP comparison of Fig 12.
func (c *Conn) StartSized(segments int64, maxDur time.Duration) error {
	if segments <= 0 {
		return fmt.Errorf("tcp: segment count %d must be positive", segments)
	}
	return c.startFlow(segments, maxDur)
}

func (c *Conn) startFlow(segments int64, d time.Duration) error {
	if c.started {
		return fmt.Errorf("tcp: connection already started")
	}
	if d <= 0 {
		return fmt.Errorf("tcp: flow duration %v must be positive", d)
	}
	c.started = true
	c.segLimit = segments
	c.start = c.simulator.Now()
	c.deadline = c.start + d
	c.snd.trySend()
	return nil
}

// Completed reports whether a sized flow has delivered and acknowledged all
// of its segments, and at what virtual time.
func (c *Conn) Completed() (time.Duration, bool) {
	return c.completedAt, c.completed
}

// Deadline returns the time after which the sender offers no new data.
func (c *Conn) Deadline() time.Duration { return c.deadline }

// Stats returns a snapshot of the endpoint counters. End is the current
// simulation time (or the deadline, if the simulation ran past it).
func (c *Conn) Stats() Stats {
	st := c.snd.stats
	st.UniqueDelivered = c.rcv.unique
	st.DupDelivered = c.rcv.dups
	st.AcksSent = c.rcv.acksSent
	st.AcksDropped = c.rcv.acksDropped
	st.Start = c.start
	st.End = c.simulator.Now()
	if st.End > c.deadline {
		st.End = c.deadline
	}
	if c.completed && c.completedAt < st.End {
		st.End = c.completedAt
	}
	return st
}

// SetTelemetry attaches a per-flow TCP telemetry sink (nil detaches).
// Counters the endpoint already tracks in Stats are copied into the sink by
// FlushTelemetry at the end of the flow; only quantities Stats cannot
// express (cwnd samples, recovery-phase timing, recovery retransmission
// loss, RTO backoff histogram) are instrumented live — each behind one nil
// check, allocation-free.
func (c *Conn) SetTelemetry(t *telemetry.TCP) { c.tel = t }

// FlushTelemetry finalizes the attached telemetry sink at the end of a
// flow: an open timeout-recovery phase is closed at the current virtual
// time and the endpoint counters are folded in. Call it once, after the
// simulation has run; it is a no-op without a sink.
func (c *Conn) FlushTelemetry() {
	if c.tel == nil {
		return
	}
	if c.snd.inTimeoutRecovery {
		c.tel.RecoveryNS += int64(c.snd.now() - c.snd.recoveryStart)
		c.snd.recoveryStart = c.snd.now()
	}
	st := c.Stats()
	c.tel.Flows++
	c.tel.DataSent += st.DataSent
	c.tel.Retransmissions += st.Retransmissions
	c.tel.DataDropped += st.DataDropped
	c.tel.UniqueDelivered += st.UniqueDelivered
	c.tel.DupDelivered += st.DupDelivered
	c.tel.AcksSent += st.AcksSent
	c.tel.AcksReceived += st.AcksReceived
	c.tel.AcksDropped += st.AcksDropped
	c.tel.Timeouts += st.Timeouts
	c.tel.FastRetransmits += st.FastRetransmits
	c.tel.SpuriousRecoveries += st.SpuriousRecoveries
	// Per-variant breakdown. The sink holds exactly this flow's data at
	// flush time (dataset attaches a fresh bundle per flow), so folding the
	// flow's cwnd histogram into the variant bucket labels every sample
	// with the connection's controller.
	cs := c.tel.CC(c.snd.cc.Name())
	cs.Flows++
	cs.DataSent += st.DataSent
	cs.Retransmissions += st.Retransmissions
	cs.UniqueDelivered += st.UniqueDelivered
	cs.Timeouts += st.Timeouts
	cs.FastRetransmits += st.FastRetransmits
	cs.SpuriousRecoveries += st.SpuriousRecoveries
	cs.RecoveryPhases += c.tel.RecoveryPhases
	cs.CwndHist.Merge(&c.tel.CwndHist)
}

// Cwnd returns the sender's current congestion window in packets.
func (c *Conn) Cwnd() float64 { return c.snd.wnd.Cwnd }

// CC returns the name of the congestion-control variant driving the
// sender's window ("reno", "cubic", ...).
func (c *Conn) CC() string { return c.snd.cc.Name() }

// SRTT returns the sender's smoothed RTT estimate.
func (c *Conn) SRTT() time.Duration { return c.snd.rto.SRTT() }

// InTimeoutRecovery reports whether the sender is currently inside a
// timeout recovery phase (between an RTO and the ACK that recovers it).
func (c *Conn) InTimeoutRecovery() bool { return c.snd.inTimeoutRecovery }

// SetRetransmitHook registers fn to be invoked for every RTO retransmission
// with the retransmitted segment number. The MPTCP backup mode uses it to
// duplicate the segment over an alternate subflow (Section V-B of the
// paper).
func (c *Conn) SetRetransmitHook(fn func(seq int64)) { c.snd.retxHook = fn }

// SetAckSendHook registers fn to be invoked whenever the receiver emits a
// cumulative ACK; the MPTCP backup mode mirrors the ACK over the alternate
// subflow's return path.
func (c *Conn) SetAckSendHook(fn func(ackNo int64)) { c.rcv.ackHook = fn }

// DeliverData injects a data-segment arrival at the receiver, as if it had
// arrived over another subflow. txNo identifies the transmission (>= 1).
func (c *Conn) DeliverData(seq int64, txNo int) { c.rcv.onData(seq, txNo) }

// InjectAck delivers data-level acknowledgement obtained out of band (over
// another subflow). It only acts when it advances the sender's window, so
// duplicate copies are harmless.
func (c *Conn) InjectAck(ackNo int64) {
	if ackNo > c.snd.sndUna {
		c.snd.onNewAck(ackNo)
	}
}

// LastTransmitNo returns how many times segment seq has been transmitted so
// far (0 if never or already acknowledged).
func (c *Conn) LastTransmitNo(seq int64) int { return c.snd.sent.txNo(seq) }

// sendInfo tracks the latest transmission of one segment.
type sendInfo struct {
	at   time.Duration // time of the most recent transmission
	txNo int           // transmission count: 1 = original
}

// sender is the data-sending half of the connection.
type sender struct {
	c *Conn

	sndUna int64 // oldest unacknowledged segment
	sndNxt int64 // next segment to transmit (rewound to sndUna after an RTO: go-back-N)
	sndMax int64 // highest segment ever transmitted + 1

	// wnd is the congestion state owned by cc: every change to it goes
	// through a CongestionControl hook, so the sender's recovery machinery
	// is variant-agnostic.
	wnd Window
	cc  CongestionControl

	// minRTT is the lowest Karn-valid RTT sample seen so far; the
	// delay-based controllers read it through Ack.MinRTT.
	minRTT time.Duration

	dupAcks           int
	fastRecovery      bool
	recoverPoint      int64
	inTimeoutRecovery bool
	backoff           int
	// recoveryStart is the virtual time the current timeout-recovery phase
	// began; only meaningful while inTimeoutRecovery and telemetry is on.
	recoveryStart time.Duration

	rto      *rtoEstimator
	rtoTimer *sim.Timer

	// sent is the retransmission state of the in-window segments: a dense
	// ring indexed by sequence number (the window bounds live occupancy).
	sent sendRing

	// spuriousSignal marks that the ACK currently being processed proves an
	// original transmission arrived (duplicate payload or an original-
	// transmission echo); preTO is the congestion state saved at the first
	// timeout of the current sequence for the Eifel response
	// (Config.SpuriousRTORecovery).
	spuriousSignal bool
	preTO          preTimeoutState

	// retxHook, when set, is invoked for every RTO retransmission; the
	// MPTCP backup mode uses it to duplicate the retransmitted segment on
	// an alternate subflow.
	retxHook func(seq int64)

	stats Stats
}

func (s *sender) now() time.Duration { return s.c.simulator.Now() }

// inflight returns the number of window-occupying segments: everything
// between the oldest unacknowledged segment and the send pointer.
func (s *sender) inflight() int64 { return s.sndNxt - s.sndUna }

// effWindow returns min(controller window, W_m) in packets.
func (s *sender) effWindow() float64 {
	w := s.cc.SendWindow(&s.wnd)
	if wm := float64(s.c.cfg.WindowLimit); w > wm {
		w = wm
	}
	return w
}

// ackInfo assembles the controller's view of the current event. acked is
// the newly acknowledged segment count where the hook has one (0 for
// dup-ACK and RTO hooks); rtt is this ACK's Karn-valid sample, or 0.
func (s *sender) ackInfo(acked int64, rtt time.Duration, ackNo int64) Ack {
	return Ack{
		Now:      s.now(),
		RTT:      rtt,
		SRTT:     s.rto.SRTT(),
		MinRTT:   s.minRTT,
		Acked:    acked,
		Inflight: s.inflight(),
		AckNo:    ackNo,
		NextSeq:  s.sndNxt,
	}
}

// sendable returns how many segments the window fill will transmit right
// now: the iterations the per-segment loop would run before the effective
// window closes or availability ends. Segments below sndMax are go-back-N
// retransmissions and are always allowed; new data is only offered before
// the flow deadline and under the segment limit. Nothing in the count's
// inputs changes while the segments go out (transmission is synchronous and
// advances no virtual time), so it can be computed up front and the whole
// run submitted as one burst.
func (s *sender) sendable() int64 {
	w := s.effWindow()
	if float64(s.inflight()) >= w {
		return 0
	}
	n := int64(math.Ceil(w)) - s.inflight()
	avail := s.sndMax - s.sndNxt
	if s.now() < s.c.deadline && (s.c.segLimit == 0 || s.sndMax < s.c.segLimit) {
		fresh := n - avail
		if s.c.segLimit > 0 {
			if lim := s.c.segLimit - s.sndMax; fresh > lim {
				fresh = lim
			}
		}
		if fresh > 0 {
			avail += fresh
		}
	}
	if n > avail {
		n = avail
	}
	return n
}

// trySend transmits segments while the effective window allows. On a plain
// forward link the whole window fill is submitted through one netem.Burst,
// amortizing per-packet admission arithmetic; the per-segment bookkeeping,
// trace events and RTO arming are unchanged either way.
func (s *sender) trySend() {
	n := s.sendable()
	if n <= 0 {
		return
	}
	var burst netem.Burst
	var b *netem.Burst
	if link := s.c.fwdLink; link != nil {
		// The fill size is known up front, so the burst's queue admission
		// and delay/loss draws are sampled in one vectorized pass; the
		// per-segment loop below consumes exactly n outcomes.
		burst = link.BeginBurstN(s.c.cfg.MSS+s.c.cfg.HeaderBytes, int(n))
		b = &burst
	}
	for ; n > 0; n-- {
		s.transmitVia(b, s.sndNxt)
		s.sndNxt++
		if s.sndNxt > s.sndMax {
			s.sndMax = s.sndNxt
		}
	}
}

// transmit puts one segment on the forward link and arms the RTO timer if it
// is not running.
func (s *sender) transmit(seq int64) {
	s.transmitVia(nil, seq)
}

// transmitVia is transmit with an optional open burst to submit through.
func (s *sender) transmitVia(b *netem.Burst, seq int64) {
	txNo := s.sent.txNo(seq) + 1
	s.sent.set(seq, s.now(), txNo)
	s.stats.DataSent++
	if txNo > 1 {
		s.stats.Retransmissions++
	}
	s.c.rec.Record(trace.Event{
		At: s.now(), Type: trace.EvDataSend,
		Seq: seq, Ack: -1, TransmitNo: txNo, Cwnd: s.wnd.Cwnd,
	})
	ev := s.c.getDataEvent(seq, txNo)
	var ok bool
	if b != nil {
		ok, _ = b.Send(ev)
	} else {
		ok, _ = s.c.path.Forward.Send(s.c.cfg.MSS+s.c.cfg.HeaderBytes, ev)
	}
	if s.c.tel != nil && s.inTimeoutRecovery && txNo > 1 {
		s.c.tel.RecoveryRetransmits++
		if !ok {
			s.c.tel.RecoveryRetxDrops++
		}
	}
	if !ok {
		s.c.putDataEvent(ev)
		s.stats.DataDropped++
		s.c.rec.Record(trace.Event{
			At: s.now(), Type: trace.EvDataDrop,
			Seq: seq, Ack: -1, TransmitNo: txNo,
		})
	}
	if s.rtoTimer == nil || !s.rtoTimer.Active() {
		s.armTimer()
	}
}

// armTimer (re)schedules the retransmission timer if data is outstanding.
// The timer object is created once per connection and then rescheduled in
// place, so per-ACK rearming does not allocate.
func (s *sender) armTimer() {
	if s.inflight() <= 0 {
		if s.rtoTimer != nil {
			s.rtoTimer.Stop()
		}
		return
	}
	d := s.rto.BackedOff(s.backoff, s.c.cfg.MaxBackoff)
	if s.rtoTimer == nil {
		s.rtoTimer = s.c.simulator.Schedule(d, s.onRTO)
	} else {
		s.rtoTimer.Reschedule(d)
	}
}

// onAck processes one cumulative acknowledgement (ackNo = next expected
// segment at the receiver). trigTxNo echoes the transmission number of the
// data segment that triggered the ACK (the moral equivalent of the Eifel
// timestamp echo, RFC 3522), and dsack reports that the triggering segment
// was a duplicate the receiver already had. Either signal on the ACK that
// ends a timeout recovery proves the timeout was spurious: the original
// transmission reached the receiver.
func (s *sender) onAck(ackNo int64, trigTxNo int, dsack bool) {
	s.stats.AcksReceived++
	s.c.rec.Record(trace.Event{
		At: s.now(), Type: trace.EvAckRecv, Seq: -1, Ack: ackNo, Cwnd: s.wnd.Cwnd,
	})
	if dsack || trigTxNo == 1 {
		s.spuriousSignal = true
	}
	switch {
	case ackNo > s.sndUna:
		s.onNewAck(ackNo)
	case ackNo == s.sndUna && s.inflight() > 0:
		s.onDupAck()
	}
	s.spuriousSignal = false
	// ACKs below sndUna are stale and ignored.
	if s.c.tel != nil {
		// Per-ACK cwnd sampling: the window evolution the paper's Fig 3/4
		// plots, summarized as a running distribution plus a coarse
		// histogram. Sampled at this single post-update point — after the
		// variant hooks and their clamps have run, on every ACK path alike
		// (growth, dup-ACK, partial ACK, Eifel restore) — so all variants
		// report identically-placed samples.
		s.c.tel.Cwnd.Add(s.wnd.Cwnd)
		s.c.tel.CwndHist.Add(s.wnd.Cwnd)
	}
}

func (s *sender) onNewAck(ackNo int64) {
	acked := ackNo - s.sndUna
	// RTT sampling per Karn's rule: only from segments acked on their first
	// transmission. Use the newest acked segment, the one that most likely
	// triggered this ACK.
	var rttSample time.Duration
	if info, ok := s.sent.get(ackNo - 1); ok && info.txNo == 1 {
		rttSample = s.now() - info.at
		s.rto.Sample(rttSample)
		if s.minRTT == 0 || rttSample < s.minRTT {
			s.minRTT = rttSample
		}
	}
	for seq := s.sndUna; seq < ackNo; seq++ {
		s.sent.clear(seq)
	}
	s.sndUna = ackNo
	if s.sndNxt < s.sndUna {
		s.sndNxt = s.sndUna
	}
	s.dupAcks = 0
	s.backoff = 0
	if s.c.segLimit > 0 && !s.c.completed && s.sndUna >= s.c.segLimit {
		s.c.completed = true
		s.c.completedAt = s.now()
	}

	a := s.ackInfo(acked, rttSample, ackNo)

	if s.inTimeoutRecovery {
		// Leaving the timeout recovery phase: the paper's "recovered"
		// boundary, after which the sender slow-starts.
		s.inTimeoutRecovery = false
		if s.c.tel != nil {
			s.c.tel.RecoveryNS += int64(s.now() - s.recoveryStart)
		}
		s.c.rec.Record(trace.Event{
			At: s.now(), Type: trace.EvRecovered, Seq: -1, Ack: ackNo, Cwnd: s.wnd.Cwnd,
		})
		if s.c.cfg.SpuriousRTORecovery && s.spuriousSignal && s.preTO.valid {
			// Eifel response: the recovery-ending ACK carries the duplicate
			// signal, so the timeout was spurious — the original data had
			// arrived and the window reduction was unwarranted. Restore the
			// pre-timeout congestion state and cancel the go-back-N resend.
			s.stats.SpuriousRecoveries++
			// Conservative variant (RFC 4015 spirit): restore ssthresh and
			// resume congestion avoidance at half the pre-timeout window
			// rather than the full one — the channel that delayed the ACKs
			// may not be fully healthy yet.
			s.wnd.SSThresh = s.preTO.ssthresh
			s.wnd.Cwnd = s.preTO.cwnd / 2
			if s.wnd.Cwnd < 2 {
				s.wnd.Cwnd = 2
			}
			if wm := float64(s.c.cfg.WindowLimit); s.wnd.Cwnd > wm {
				s.wnd.Cwnd = wm
			}
			s.cc.OnSpuriousTimeout(&s.wnd, a)
			// The send pointer is intentionally NOT restored: the go-back-N
			// resend still runs (at the restored window's pace) because
			// packets that straddled the outage may genuinely be missing,
			// and Reno without SACK recovers multiple holes poorly.
			s.preTO.valid = false
			s.armTimer()
			s.trySend()
			return
		}
	}
	s.preTO.valid = false

	if s.fastRecovery {
		if ackNo < s.recoverPoint && s.cc.OnPartialAck(&s.wnd, a) {
			// Partial ACK with a variant that stays in fast recovery: the
			// ACK uncovered the next hole — retransmit it immediately at
			// the deflated window the controller chose.
			s.transmit(s.sndUna)
			s.armTimer()
			s.trySend()
			return
		}
		// Full ACK (or a variant that terminates recovery on any new ACK):
		// leave fast recovery and let the controller deflate the window.
		s.fastRecovery = false
		s.cc.OnExitRecovery(&s.wnd, a)
	} else {
		s.cc.OnNewAck(&s.wnd, a)
	}

	s.armTimer()
	s.trySend()
}

func (s *sender) onDupAck() {
	s.dupAcks++
	switch {
	case s.fastRecovery:
		s.cc.OnDupAck(&s.wnd, s.ackInfo(0, 0, s.sndUna))
		s.trySend()
	case s.dupAcks == 3:
		s.stats.FastRetransmits++
		s.c.rec.Record(trace.Event{
			At: s.now(), Type: trace.EvFastRetx,
			Seq: s.sndUna, Ack: -1, Cwnd: s.wnd.Cwnd,
		})
		a := s.ackInfo(0, 0, s.sndUna)
		s.recoverPoint = s.sndMax
		s.fastRecovery = true
		// The fast retransmission goes out before the controller reduces
		// the window, so its trace event carries the pre-loss cwnd.
		s.transmit(s.sndUna)
		s.cc.OnEnterRecovery(&s.wnd, a)
	}
}

// onRTO handles a retransmission-timer expiry: cautious single-segment
// retransmission with exponential backoff (the paper's timeout sequence).
func (s *sender) onRTO() {
	if s.inflight() <= 0 {
		return
	}
	s.stats.Timeouts++
	s.c.rec.Record(trace.Event{
		At: s.now(), Type: trace.EvTimeout,
		Seq: s.sndUna, Ack: -1, Cwnd: s.wnd.Cwnd, Backoff: s.backoff,
	})
	if !s.inTimeoutRecovery {
		// Remember the congestion state the timeout destroys, so an
		// Eifel-style response can restore it if the timeout turns out to
		// have been spurious.
		s.preTO = preTimeoutState{
			cwnd: s.wnd.Cwnd, ssthresh: s.wnd.SSThresh, sndNxt: s.sndNxt, valid: true,
		}
		if s.c.tel != nil {
			s.c.tel.RecoveryPhases++
			s.recoveryStart = s.now()
		}
	}
	if s.c.tel != nil {
		s.c.tel.BackoffHist.Add(float64(s.backoff))
	}
	s.inTimeoutRecovery = true
	s.fastRecovery = false
	s.dupAcks = 0
	s.cc.OnRTO(&s.wnd, s.ackInfo(0, 0, s.sndUna))
	// Go-back-N: rewind the send pointer so slow start resends everything
	// unacknowledged; with cwnd = 1 only the oldest segment goes out now
	// (the paper's "only one packet is retransmitted after a timeout").
	s.sndNxt = s.sndUna
	s.trySend()
	if s.retxHook != nil {
		s.retxHook(s.sndUna)
	}
	if s.backoff < s.c.cfg.MaxBackoff {
		s.backoff++
	}
	s.armTimer()
}

// preTimeoutState is the congestion state saved when a timeout sequence
// begins, restorable by the Eifel response.
type preTimeoutState struct {
	cwnd     float64
	ssthresh float64
	sndNxt   int64
	valid    bool
}

// halfInflight is the standard ssthresh update max(inflight/2, 2).
func halfInflight(inflight int64) float64 {
	h := float64(inflight) / 2
	if h < 2 {
		h = 2
	}
	return h
}

// receiver is the ACK-generating half of the connection.
type receiver struct {
	c *Conn

	rcvNxt int64
	// ooo is the out-of-order segment set: a dense ring indexed by sequence
	// number (every held segment lies within one window of rcvNxt).
	ooo     seqSet
	pending int // in-order segments not yet acknowledged (delayed ACK)
	delack  *sim.Timer
	ackHook func(ackNo int64)

	// Adaptive delayed-ACK state (Config.AdaptiveDelAck): curB is the
	// effective window, streak counts clean in-order arrivals since the
	// last disturbance.
	curB   int
	streak int

	// trigTxNo remembers the transmission number of the latest data
	// arrival; it is echoed on the next ACK (the Eifel timestamp stand-in).
	trigTxNo int

	unique      int64
	dups        int64
	acksSent    int64
	acksDropped int64
}

func (r *receiver) now() time.Duration { return r.c.simulator.Now() }

// onData processes one arriving data segment.
func (r *receiver) onData(seq int64, txNo int) {
	r.c.rec.Record(trace.Event{
		At: r.now(), Type: trace.EvDataRecv,
		Seq: seq, Ack: -1, TransmitNo: txNo,
	})
	r.trigTxNo = txNo
	switch {
	case seq < r.rcvNxt || r.ooo.contains(seq):
		// Duplicate payload (e.g. a spurious retransmission after ACK burst
		// loss): acknowledge immediately so the sender resynchronizes.
		r.dups++
		r.disturbed()
		r.sendAckNow(true)
	case seq == r.rcvNxt:
		r.unique++
		r.rcvNxt++
		for r.ooo.contains(r.rcvNxt) {
			r.ooo.remove(r.rcvNxt)
			r.rcvNxt++
		}
		r.adapt()
		r.pending++
		if r.pending >= r.curB {
			r.sendAckNow(false)
		} else if r.delack == nil {
			r.delack = r.c.simulator.Schedule(r.c.cfg.DelAckTimeout, r.onDelAckTimeout)
		} else if !r.delack.Active() {
			r.delack.Reschedule(r.c.cfg.DelAckTimeout)
		}
	default: // out of order: immediate duplicate ACK
		r.unique++
		r.ooo.add(seq)
		r.disturbed()
		r.sendAckNow(false)
	}
}

// adaptStreak is how many consecutive clean in-order arrivals the adaptive
// receiver waits for before widening its delayed-ACK window by one.
const adaptStreak = 32

// adapt grows the adaptive delayed-ACK window after a clean streak.
func (r *receiver) adapt() {
	if !r.c.cfg.AdaptiveDelAck {
		return
	}
	r.streak++
	if r.streak >= adaptStreak && r.curB < r.c.cfg.DelayedAckB {
		r.curB++
		r.streak = 0
	}
}

// disturbed collapses the adaptive window to immediate ACKs: duplicates and
// reordering signal loss or spurious retransmissions, exactly when every
// ACK matters.
func (r *receiver) disturbed() {
	if !r.c.cfg.AdaptiveDelAck {
		return
	}
	r.curB = 1
	r.streak = 0
}

func (r *receiver) onDelAckTimeout() {
	if r.pending > 0 {
		r.sendAckNow(false)
	}
}

// sendAckNow emits a cumulative ACK for rcvNxt and clears delayed-ACK
// state. dup marks ACKs triggered by duplicate payload (the DSACK-like
// signal); the triggering transmission number rides along as the Eifel
// timestamp stand-in.
func (r *receiver) sendAckNow(dup bool) {
	r.pending = 0
	if r.delack != nil {
		r.delack.Stop()
	}
	ackNo := r.rcvNxt
	r.acksSent++
	r.c.rec.Record(trace.Event{
		At: r.now(), Type: trace.EvAckSend, Seq: -1, Ack: ackNo,
	})
	ev := r.c.getAckEvent(ackNo, r.trigTxNo, dup)
	ok, _ := r.c.path.Reverse.Send(r.c.cfg.HeaderBytes, ev)
	if !ok {
		r.c.putAckEvent(ev)
		r.acksDropped++
		r.c.rec.Record(trace.Event{
			At: r.now(), Type: trace.EvAckDrop, Seq: -1, Ack: ackNo,
		})
	}
	if r.ackHook != nil {
		r.ackHook(ackNo)
	}
}
