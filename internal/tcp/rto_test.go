package tcp

import (
	"testing"
	"time"
)

func TestRTOInitialValue(t *testing.T) {
	e := newRTOEstimator(400*time.Millisecond, 60*time.Second)
	if got := e.RTO(); got != time.Second {
		t.Errorf("initial RTO = %v, want 1s (RFC 6298)", got)
	}
	if got := e.SRTT(); got != 0 {
		t.Errorf("SRTT before samples = %v, want 0", got)
	}
	// Min floor above 1s raises the initial value.
	e = newRTOEstimator(2*time.Second, 60*time.Second)
	if got := e.RTO(); got != 2*time.Second {
		t.Errorf("initial RTO with 2s floor = %v, want 2s", got)
	}
}

func TestRTOFirstSample(t *testing.T) {
	e := newRTOEstimator(time.Millisecond, 60*time.Second)
	e.Sample(100 * time.Millisecond)
	// RFC 6298: SRTT = R, RTTVAR = R/2, RTO = SRTT + 4*RTTVAR = 3R.
	if got := e.SRTT(); got != 100*time.Millisecond {
		t.Errorf("SRTT = %v, want 100ms", got)
	}
	if got := e.RTO(); got != 300*time.Millisecond {
		t.Errorf("RTO = %v, want 300ms", got)
	}
}

func TestRTOConvergesOnSteadyRTT(t *testing.T) {
	e := newRTOEstimator(time.Millisecond, 60*time.Second)
	for i := 0; i < 100; i++ {
		e.Sample(80 * time.Millisecond)
	}
	if got := e.SRTT(); got < 79*time.Millisecond || got > 81*time.Millisecond {
		t.Errorf("SRTT after steady samples = %v, want ~80ms", got)
	}
	// RTTVAR decays toward 0, so RTO approaches SRTT (but min floor holds).
	if got := e.RTO(); got > 100*time.Millisecond {
		t.Errorf("RTO after steady samples = %v, want <= 100ms", got)
	}
}

func TestRTOMinimumFloor(t *testing.T) {
	e := newRTOEstimator(400*time.Millisecond, 60*time.Second)
	for i := 0; i < 50; i++ {
		e.Sample(10 * time.Millisecond)
	}
	if got := e.RTO(); got != 400*time.Millisecond {
		t.Errorf("RTO = %v, want clamped to 400ms floor", got)
	}
}

func TestRTOMaximumCeiling(t *testing.T) {
	e := newRTOEstimator(time.Millisecond, 2*time.Second)
	e.Sample(10 * time.Second)
	if got := e.RTO(); got != 2*time.Second {
		t.Errorf("RTO = %v, want clamped to 2s ceiling", got)
	}
}

func TestRTOBackedOffDoubling(t *testing.T) {
	e := newRTOEstimator(100*time.Millisecond, time.Hour)
	e.Sample(100 * time.Millisecond) // RTO = 300ms
	base := e.RTO()
	for k := 0; k <= 6; k++ {
		want := base << uint(k)
		if got := e.BackedOff(k, 6); got != want {
			t.Errorf("BackedOff(%d) = %v, want %v", k, got, want)
		}
	}
	// Beyond maxBackoff the timer stays at 64x (the paper's 64T cap).
	if got := e.BackedOff(10, 6); got != base<<6 {
		t.Errorf("BackedOff(10) = %v, want cap %v", got, base<<6)
	}
}

func TestRTOBackedOffRespectsMaxRTO(t *testing.T) {
	e := newRTOEstimator(time.Second, 5*time.Second)
	if got := e.BackedOff(6, 6); got != 5*time.Second {
		t.Errorf("BackedOff = %v, want maxRTO 5s", got)
	}
}

func TestRTONonPositiveSample(t *testing.T) {
	e := newRTOEstimator(time.Millisecond, time.Hour)
	e.Sample(0) // must not panic or poison the estimator
	if got := e.SRTT(); got <= 0 {
		t.Errorf("SRTT after zero sample = %v, want > 0", got)
	}
}
