package tcp

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// multiLossHarness drops several packets of one window: the scenario where
// Reno and NewReno diverge.
func multiLossHarness(t *testing.T, variant Variant) (*testHarness, Stats) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Variant = variant
	h := newHarness(t, cfg)
	// Three losses within one window's worth of packets, mid-flow.
	h.dropDataNth[300] = true
	h.dropDataNth[305] = true
	h.dropDataNth[310] = true
	st := h.run(t, 15*time.Second)
	return h, st
}

func TestNewRenoSurvivesMultiLossWindow(t *testing.T) {
	_, reno := multiLossHarness(t, VariantReno)
	_, newreno := multiLossHarness(t, VariantNewReno)
	// Classic Reno typically needs an RTO for a triple-loss window; NewReno
	// must recover without any timeout.
	if newreno.Timeouts != 0 {
		t.Errorf("NewReno timeouts = %d, want 0 (partial ACKs recover the holes)", newreno.Timeouts)
	}
	if newreno.UniqueDelivered < reno.UniqueDelivered {
		t.Errorf("NewReno delivered %d < Reno %d", newreno.UniqueDelivered, reno.UniqueDelivered)
	}
}

func TestNewRenoPartialAckRetransmitsHole(t *testing.T) {
	h, st := multiLossHarness(t, VariantNewReno)
	if st.FastRetransmits == 0 {
		t.Fatal("no fast retransmit")
	}
	// Each dropped segment must have been retransmitted exactly once (no
	// go-back-N storm, no duplicates).
	retx := map[int64]int{}
	for _, ev := range h.ft.Events {
		if ev.Type == trace.EvDataSend && ev.TransmitNo > 1 {
			retx[ev.Seq]++
		}
	}
	if len(retx) != 3 {
		t.Errorf("retransmitted %d distinct segments, want the 3 holes", len(retx))
	}
	for seq, n := range retx {
		if n != 1 {
			t.Errorf("segment %d retransmitted %d times, want 1", seq, n)
		}
	}
}

func TestRenoNeedsTimeoutForMultiLossWindow(t *testing.T) {
	_, reno := multiLossHarness(t, VariantReno)
	// The classic Reno pathology the paper's model assumes: multiple losses
	// in one window usually cost a timeout.
	if reno.Timeouts == 0 {
		t.Skip("this seed recovered without RTO; the NewReno comparison above still holds")
	}
	if reno.Timeouts < 1 {
		t.Errorf("Reno timeouts = %d", reno.Timeouts)
	}
}

func TestVariantValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Variant = Variant(99)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown variant accepted")
	}
	if VariantReno.String() != "reno" || VariantNewReno.String() != "newreno" {
		t.Error("Variant.String mismatch")
	}
	if got := Variant(99).String(); got != "Variant(99)" {
		t.Errorf("unknown Variant.String = %q", got)
	}
}

func TestNewRenoCleanPathIdenticalToReno(t *testing.T) {
	cfgA := DefaultConfig()
	hA := newHarness(t, cfgA)
	a := hA.run(t, 5*time.Second)
	cfgB := DefaultConfig()
	cfgB.Variant = VariantNewReno
	hB := newHarness(t, cfgB)
	b := hB.run(t, 5*time.Second)
	if a.UniqueDelivered != b.UniqueDelivered || a.DataSent != b.DataSent {
		t.Errorf("variants diverge on a lossless path: %+v vs %+v", a, b)
	}
}
