package tcp

import (
	"math"
	"time"
)

// RFC 8312 constants: beta is the multiplicative decrease factor applied to
// the window on loss, c the scaling constant of the cubic growth curve.
const (
	cubicBeta = 0.7
	cubicC    = 0.4
)

// cubicControl implements the RFC 8312 CUBIC window law. The window grows
// along W(t) = C(t-K)^3 + Wmax, where t is the time since the congestion
// epoch began and K the time the curve takes to climb back to the
// pre-reduction plateau Wmax; a parallel Reno-rate estimate (the
// TCP-friendly region) floors the window where cubic growth would lose to
// standard TCP. Loss recovery is NewReno-style: partial ACKs deflate and
// stay in fast recovery.
type cubicControl struct {
	cfg Config

	// wMax is the plateau the curve aims back at; epochStart anchors t,
	// and k is the curve's plateau-crossing time in seconds. epochStart 0
	// means the next congestion-avoidance ACK starts a fresh epoch.
	wMax       float64
	k          float64
	epochStart time.Duration

	// wEst is the TCP-friendly Reno-rate estimate for the current epoch.
	wEst float64
}

func newCubicControl(cfg Config) *cubicControl {
	return &cubicControl{cfg: cfg}
}

func (c *cubicControl) Name() string { return "cubic" }

func (c *cubicControl) OnNewAck(w *Window, a Ack) {
	if w.Cwnd < w.SSThresh {
		// Slow start is unchanged from Reno.
		w.Cwnd++
		if w.Cwnd > w.SSThresh {
			w.Cwnd = w.SSThresh
		}
	} else {
		rtt := a.SRTT
		if rtt <= 0 {
			rtt = a.RTT
		}
		if rtt <= 0 {
			// Congestion avoidance before any RTT sample (tiny initial
			// ssthresh): fall back to Reno growth for this ACK.
			w.Cwnd += 1 / w.Cwnd
		} else {
			if c.epochStart == 0 {
				c.epochStart = a.Now
				if c.wMax < w.Cwnd {
					// The window grew past the old plateau without a loss:
					// restart the curve from here (K = 0, pure convex probing).
					c.wMax = w.Cwnd
					c.k = 0
				} else {
					c.k = math.Cbrt((c.wMax - w.Cwnd) / cubicC)
				}
				c.wEst = w.Cwnd
			}
			// Aim one RTT ahead on the curve and close the gap at 1/cwnd
			// per ACK, per RFC 8312's per-ACK approximation.
			t := (a.Now - c.epochStart + rtt).Seconds()
			target := c.wMax + cubicC*math.Pow(t-c.k, 3)
			if target > w.Cwnd {
				w.Cwnd += (target - w.Cwnd) / w.Cwnd
			} else {
				// In the plateau region the curve is flat; keep a token
				// growth so the window is never fully frozen.
				w.Cwnd += 0.01 / w.Cwnd
			}
			// TCP-friendly region: a Reno flow would gain
			// 3(1-beta)/(1+beta) packets per RTT after the same reduction;
			// never run slower than that.
			c.wEst += 3 * (1 - cubicBeta) / (1 + cubicBeta) / w.Cwnd
			if c.wEst > w.Cwnd {
				w.Cwnd = c.wEst
			}
		}
	}
	if wm := float64(c.cfg.WindowLimit); w.Cwnd > wm {
		w.Cwnd = wm
		if c.wEst > wm {
			c.wEst = wm
		}
	}
}

func (c *cubicControl) OnPartialAck(w *Window, a Ack) bool {
	w.Cwnd -= float64(a.Acked) - 1
	if w.Cwnd < 1 {
		w.Cwnd = 1
	}
	return true
}

func (c *cubicControl) OnExitRecovery(w *Window, a Ack) {
	w.Cwnd = w.SSThresh
}

func (c *cubicControl) OnDupAck(w *Window, a Ack) {
	w.Cwnd++
}

// reduce applies the multiplicative decrease and starts a new congestion
// epoch, with RFC 8312 fast convergence: a flow whose window shrank since
// the last loss releases extra bandwidth by aiming below the old plateau.
func (c *cubicControl) reduce(w *Window) {
	if w.Cwnd < c.wMax {
		c.wMax = w.Cwnd * (1 + cubicBeta) / 2
	} else {
		c.wMax = w.Cwnd
	}
	w.SSThresh = w.Cwnd * cubicBeta
	if w.SSThresh < 2 {
		w.SSThresh = 2
	}
	c.epochStart = 0
}

func (c *cubicControl) OnEnterRecovery(w *Window, a Ack) {
	c.reduce(w)
	w.Cwnd = w.SSThresh + 3
}

func (c *cubicControl) OnRTO(w *Window, a Ack) {
	c.reduce(w)
	w.Cwnd = 1
}

func (c *cubicControl) OnSpuriousTimeout(w *Window, a Ack) {
	// The collapse was bogus; re-anchor the curve at the restored window
	// on the next avoidance ACK.
	c.epochStart = 0
}

func (c *cubicControl) SendWindow(w *Window) float64 { return w.Cwnd }
