package tcp

import (
	"testing"
	"time"
)

func TestSizedFlowCompletes(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	if err := h.conn.StartSized(100, time.Minute); err != nil {
		t.Fatalf("StartSized: %v", err)
	}
	h.sim.RunUntil(time.Minute)
	at, ok := h.conn.Completed()
	if !ok {
		t.Fatal("sized flow did not complete on a clean path")
	}
	if at <= 0 || at > 10*time.Second {
		t.Errorf("completion time = %v, want quick completion", at)
	}
	st := h.conn.Stats()
	if st.UniqueDelivered != 100 {
		t.Errorf("delivered %d, want exactly 100", st.UniqueDelivered)
	}
	if st.End != at {
		t.Errorf("Stats.End = %v, want completion time %v", st.End, at)
	}
	if st.DataSent != 100 {
		t.Errorf("sent %d, want exactly 100 on a lossless path", st.DataSent)
	}
}

func TestSizedFlowSurvivesLoss(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.dropDataNth[10] = true
	h.dropDataNth[50] = true
	if err := h.conn.StartSized(200, time.Minute); err != nil {
		t.Fatalf("StartSized: %v", err)
	}
	h.sim.RunUntil(time.Minute)
	if _, ok := h.conn.Completed(); !ok {
		t.Fatal("sized flow with recoverable losses did not complete")
	}
	st := h.conn.Stats()
	if st.UniqueDelivered != 200 {
		t.Errorf("delivered %d, want 200", st.UniqueDelivered)
	}
	if st.Retransmissions < 2 {
		t.Errorf("retransmissions = %d, want >= 2", st.Retransmissions)
	}
}

func TestSizedFlowHorizonCutoff(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	// Permanent blackout: the flow can never finish.
	h.dataOutages = []window{{from: 100 * time.Millisecond, to: time.Hour}}
	if err := h.conn.StartSized(1000, 5*time.Second); err != nil {
		t.Fatalf("StartSized: %v", err)
	}
	h.sim.RunUntil(5 * time.Second)
	if _, ok := h.conn.Completed(); ok {
		t.Error("blacked-out flow reported completion")
	}
	st := h.conn.Stats()
	if st.UniqueDelivered >= 1000 {
		t.Error("blacked-out flow delivered everything")
	}
}

func TestSizedFlowDoesNotOversend(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	if err := h.conn.StartSized(50, time.Minute); err != nil {
		t.Fatalf("StartSized: %v", err)
	}
	h.sim.RunUntil(time.Minute)
	// No segment index at or beyond the limit may ever be transmitted.
	for _, ev := range h.ft.Events {
		if ev.Seq >= 50 {
			t.Fatalf("segment %d transmitted beyond the 50-segment limit", ev.Seq)
		}
	}
}

func TestStartSizedValidation(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	if err := h.conn.StartSized(0, time.Minute); err == nil {
		t.Error("zero segments accepted")
	}
	if err := h.conn.StartSized(10, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	if err := h.conn.StartSized(10, time.Minute); err != nil {
		t.Fatalf("StartSized: %v", err)
	}
	if err := h.conn.Start(time.Minute); err == nil {
		t.Error("Start after StartSized accepted")
	}
	h.sim.RunUntil(time.Minute)
}

func TestUnsizedFlowNeverCompletes(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	h.run(t, 2*time.Second)
	if _, ok := h.conn.Completed(); ok {
		t.Error("duration-bounded flow reported completion")
	}
}
