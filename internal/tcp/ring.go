package tcp

import (
	"fmt"
	"time"
)

// This file holds the dense hot-path state of the endpoints: window-sized
// ring buffers indexed by sequence number, replacing the
// map[int64]sendInfo / map[int64]bool the sender and receiver used before.
// The congestion window bounds live occupancy — the sender never has more
// than WindowLimit unacknowledged segments (effWindow = min(cwnd, W_m) and
// sendable() caps the fill), and every out-of-order segment the receiver
// holds lies in (rcvNxt, rcvNxt+WindowLimit) — so a power-of-two ring of
// capacity > WindowLimit can never alias two live sequence numbers. Each
// slot remembers which sequence owns it; a write finding a live foreign
// occupant is a broken window invariant and panics rather than silently
// corrupting state.

// ringCap returns the power-of-two capacity for a window of w packets: at
// least w+1 so two live in-window sequences never share a slot.
func ringCap(w int) int64 {
	c := int64(2)
	for c < int64(w)+1 {
		c <<= 1
	}
	return c
}

// sendRing is the sender's retransmission state, indexed by segment number.
type sendRing struct {
	slots []sendSlot
	mask  int64
}

type sendSlot struct {
	seq  int64 // owning segment, -1 when empty
	at   time.Duration
	txNo int
}

func newSendRing(window int) sendRing {
	n := ringCap(window)
	slots := make([]sendSlot, n)
	for i := range slots {
		slots[i].seq = -1
	}
	return sendRing{slots: slots, mask: n - 1}
}

// txNo returns how many times seq has been transmitted (0 if not live).
func (r *sendRing) txNo(seq int64) int {
	if s := &r.slots[seq&r.mask]; s.seq == seq {
		return s.txNo
	}
	return 0
}

// get returns the live transmission record for seq.
func (r *sendRing) get(seq int64) (sendInfo, bool) {
	if s := &r.slots[seq&r.mask]; s.seq == seq {
		return sendInfo{at: s.at, txNo: s.txNo}, true
	}
	return sendInfo{}, false
}

// set records a transmission of seq.
func (r *sendRing) set(seq int64, at time.Duration, txNo int) {
	s := &r.slots[seq&r.mask]
	if s.seq != seq && s.seq != -1 {
		panic(fmt.Sprintf("tcp: send ring slot collision: %d vs live %d (window invariant broken)", seq, s.seq))
	}
	s.seq, s.at, s.txNo = seq, at, txNo
}

// clear releases seq's slot (on cumulative acknowledgement).
func (r *sendRing) clear(seq int64) {
	if s := &r.slots[seq&r.mask]; s.seq == seq {
		s.seq = -1
	}
}

// seqSet is the receiver's out-of-order segment set.
type seqSet struct {
	slots []int64
	mask  int64
}

func newSeqSet(window int) seqSet {
	n := ringCap(window)
	slots := make([]int64, n)
	for i := range slots {
		slots[i] = -1
	}
	return seqSet{slots: slots, mask: n - 1}
}

func (r *seqSet) contains(seq int64) bool { return r.slots[seq&r.mask] == seq }

func (r *seqSet) add(seq int64) {
	s := &r.slots[seq&r.mask]
	if *s != seq && *s != -1 {
		panic(fmt.Sprintf("tcp: ooo ring slot collision: %d vs live %d (window invariant broken)", seq, *s))
	}
	*s = seq
}

func (r *seqSet) remove(seq int64) {
	if s := &r.slots[seq&r.mask]; *s == seq {
		*s = -1
	}
}
