// Package railway models the physical substrate of the paper's measurement
// campaign: the Beijing-Tianjin Intercity Railway (BTR) line geometry and a
// trapezoidal train speed profile. A Trip maps virtual time to track
// position and instantaneous speed; the cellular layer turns positions into
// serving cells and speeds into channel quality.
package railway

import (
	"fmt"
	"time"
)

// Track describes a rail line as a straight segment of the given length.
// Cell towers in internal/cellular are indexed by track kilometre, so a 1-D
// abstraction is sufficient.
type Track struct {
	Name     string
	LengthKm float64
}

// BeijingTianjin is the line the paper measured on: ~120 km, one-way trip of
// about 33 minutes at a steady peak speed of 300 km/h.
var BeijingTianjin = Track{Name: "Beijing-Tianjin Intercity Railway", LengthKm: 120}

// SpeedProfile is a symmetric trapezoidal velocity profile: constant
// acceleration up to the cruise speed, cruise, constant deceleration to a
// stop at the far end.
type SpeedProfile struct {
	CruiseKmh float64 // steady cruise speed, km/h
	AccelMS2  float64 // acceleration and deceleration magnitude, m/s^2
}

// DefaultProfile reproduces the paper's BTR service: 300 km/h cruise with a
// gentle 0.35 m/s^2 ramp, giving a one-way time of roughly half an hour.
var DefaultProfile = SpeedProfile{CruiseKmh: 300, AccelMS2: 0.35}

// StationaryProfile models the baseline scenario (phone not moving); used by
// the stationary measurement campaign.
var StationaryProfile = SpeedProfile{CruiseKmh: 0, AccelMS2: 0}

// Trip is one run over a track with a speed profile.
type Trip struct {
	Track   Track
	Profile SpeedProfile
}

// NewTrip validates the configuration and returns a Trip.
func NewTrip(track Track, profile SpeedProfile) (Trip, error) {
	if track.LengthKm <= 0 {
		return Trip{}, fmt.Errorf("railway: track length %v km must be positive", track.LengthKm)
	}
	if profile.CruiseKmh < 0 || profile.AccelMS2 < 0 {
		return Trip{}, fmt.Errorf("railway: negative speed profile %+v", profile)
	}
	if profile.CruiseKmh > 0 && profile.AccelMS2 == 0 {
		return Trip{}, fmt.Errorf("railway: cruise speed %v km/h with zero acceleration is unreachable", profile.CruiseKmh)
	}
	if profile.CruiseKmh > 0 {
		// The trapezoid degenerates to a triangle if the track is too short
		// to reach cruise speed; we reject that rather than silently
		// changing the profile because the paper's line cruises for most of
		// the trip.
		v := profile.CruiseKmh / 3.6 // m/s
		rampM := v * v / (2 * profile.AccelMS2)
		if 2*rampM >= track.LengthKm*1000 {
			return Trip{}, fmt.Errorf("railway: track %v km too short to reach %v km/h at %v m/s^2",
				track.LengthKm, profile.CruiseKmh, profile.AccelMS2)
		}
	}
	return Trip{Track: track, Profile: profile}, nil
}

// cruiseMS returns the cruise speed in metres per second.
func (t Trip) cruiseMS() float64 { return t.Profile.CruiseKmh / 3.6 }

// rampTime returns the duration of the acceleration (= deceleration) ramp.
func (t Trip) rampTime() time.Duration {
	if t.Profile.CruiseKmh == 0 {
		return 0
	}
	sec := t.cruiseMS() / t.Profile.AccelMS2
	return time.Duration(sec * float64(time.Second))
}

// rampDistM returns the distance covered by one ramp, in metres.
func (t Trip) rampDistM() float64 {
	v := t.cruiseMS()
	if v == 0 {
		return 0
	}
	return v * v / (2 * t.Profile.AccelMS2)
}

// Duration returns the one-way travel time. A stationary trip has infinite
// duration conceptually; we return 0 and Position stays at the origin.
func (t Trip) Duration() time.Duration {
	if t.Profile.CruiseKmh == 0 {
		return 0
	}
	cruiseDistM := t.Track.LengthKm*1000 - 2*t.rampDistM()
	cruiseSec := cruiseDistM / t.cruiseMS()
	return 2*t.rampTime() + time.Duration(cruiseSec*float64(time.Second))
}

// Geometry is the trip's trapezoid compiled down to its breakpoints and
// constants: the ramp and total durations, the ramp distance, and the
// acceleration, each computed once. Position and speed lookups then reduce to
// one branch on the phase breakpoints plus a couple of multiplies — no
// per-call sqrt/div geometry. Geometry methods are the single implementation
// of the trip kinematics (Trip.PositionKm and Trip.SpeedKmh delegate here),
// so a held memo is bit-identical to querying the Trip directly.
type Geometry struct {
	stationary bool
	lengthKm   float64
	cruiseKmh  float64
	a          float64       // acceleration magnitude, m/s^2
	v          float64       // cruise speed, m/s
	ramp       time.Duration // duration of one ramp
	total      time.Duration // one-way trip duration
	rampSec    float64       // ramp.Seconds(), precomputed
	rampM      float64       // distance covered by one ramp, metres
}

// Geometry compiles the trip's kinematic constants. Hot paths that query
// position or speed per packet should hold the returned memo instead of
// calling the Trip methods, which recompute the trapezoid on every call.
func (t Trip) Geometry() Geometry {
	g := Geometry{
		stationary: t.Profile.CruiseKmh == 0,
		lengthKm:   t.Track.LengthKm,
		cruiseKmh:  t.Profile.CruiseKmh,
		a:          t.Profile.AccelMS2,
	}
	if g.stationary {
		return g
	}
	g.v = t.cruiseMS()
	g.ramp = t.rampTime()
	g.total = t.Duration()
	g.rampSec = g.ramp.Seconds()
	g.rampM = t.rampDistM()
	return g
}

// Duration returns the one-way travel time (0 for a stationary trip).
func (g *Geometry) Duration() time.Duration { return g.total }

// RampTime returns the duration of the acceleration (= deceleration) ramp.
func (g *Geometry) RampTime() time.Duration { return g.ramp }

// Stationary reports whether the underlying trip never moves.
func (g *Geometry) Stationary() bool { return g.stationary }

// PositionKm is Trip.PositionKm evaluated against the precomputed constants.
func (g *Geometry) PositionKm(at time.Duration) float64 {
	if g.stationary || at <= 0 {
		return 0
	}
	if at >= g.total {
		return g.lengthKm
	}
	sec := at.Seconds()
	switch {
	case at < g.ramp:
		return 0.5 * g.a * sec * sec / 1000
	case at < g.total-g.ramp:
		cruiseSec := sec - g.rampSec
		return (g.rampM + g.v*cruiseSec) / 1000
	default:
		// Decelerating: symmetric to the acceleration ramp from the far end.
		remain := (g.total - at).Seconds()
		return g.lengthKm - 0.5*g.a*remain*remain/1000
	}
}

// SpeedKmh is Trip.SpeedKmh evaluated against the precomputed constants.
func (g *Geometry) SpeedKmh(at time.Duration) float64 {
	if g.stationary || at <= 0 {
		return 0
	}
	if at >= g.total {
		return 0
	}
	switch {
	case at < g.ramp:
		return g.a * at.Seconds() * 3.6
	case at < g.total-g.ramp:
		return g.cruiseKmh
	default:
		return g.a * (g.total - at).Seconds() * 3.6
	}
}

// PositionKm returns the train's track position (km from the origin
// station) at the given time into the trip. Times past the arrival clamp to
// the track end; a stationary trip is always at km 0.
func (t Trip) PositionKm(at time.Duration) float64 {
	g := t.Geometry()
	return g.PositionKm(at)
}

// SpeedKmh returns the instantaneous speed at the given time into the trip.
func (t Trip) SpeedKmh(at time.Duration) float64 {
	g := t.Geometry()
	return g.SpeedKmh(at)
}

// CruiseWindow returns the time interval [start, end) during which the train
// is at full cruise speed. Experiments that need "constant speed around
// 300 km/h" (e.g. the paper's Fig 1 flow) sample flows inside this window.
func (t Trip) CruiseWindow() (start, end time.Duration) {
	if t.Profile.CruiseKmh == 0 {
		return 0, 0
	}
	ramp := t.rampTime()
	return ramp, t.Duration() - ramp
}

// Stationary reports whether this trip never moves.
func (t Trip) Stationary() bool { return t.Profile.CruiseKmh == 0 }
