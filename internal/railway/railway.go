// Package railway models the physical substrate of the paper's measurement
// campaign: the Beijing-Tianjin Intercity Railway (BTR) line geometry and a
// trapezoidal train speed profile. A Trip maps virtual time to track
// position and instantaneous speed; the cellular layer turns positions into
// serving cells and speeds into channel quality.
package railway

import (
	"fmt"
	"time"
)

// Track describes a rail line as a straight segment of the given length.
// Cell towers in internal/cellular are indexed by track kilometre, so a 1-D
// abstraction is sufficient.
type Track struct {
	Name     string
	LengthKm float64
}

// BeijingTianjin is the line the paper measured on: ~120 km, one-way trip of
// about 33 minutes at a steady peak speed of 300 km/h.
var BeijingTianjin = Track{Name: "Beijing-Tianjin Intercity Railway", LengthKm: 120}

// SpeedProfile is a symmetric trapezoidal velocity profile: constant
// acceleration up to the cruise speed, cruise, constant deceleration to a
// stop at the far end.
type SpeedProfile struct {
	CruiseKmh float64 // steady cruise speed, km/h
	AccelMS2  float64 // acceleration and deceleration magnitude, m/s^2
}

// DefaultProfile reproduces the paper's BTR service: 300 km/h cruise with a
// gentle 0.35 m/s^2 ramp, giving a one-way time of roughly half an hour.
var DefaultProfile = SpeedProfile{CruiseKmh: 300, AccelMS2: 0.35}

// StationaryProfile models the baseline scenario (phone not moving); used by
// the stationary measurement campaign.
var StationaryProfile = SpeedProfile{CruiseKmh: 0, AccelMS2: 0}

// Trip is one run over a track with a speed profile.
type Trip struct {
	Track   Track
	Profile SpeedProfile
}

// NewTrip validates the configuration and returns a Trip.
func NewTrip(track Track, profile SpeedProfile) (Trip, error) {
	if track.LengthKm <= 0 {
		return Trip{}, fmt.Errorf("railway: track length %v km must be positive", track.LengthKm)
	}
	if profile.CruiseKmh < 0 || profile.AccelMS2 < 0 {
		return Trip{}, fmt.Errorf("railway: negative speed profile %+v", profile)
	}
	if profile.CruiseKmh > 0 && profile.AccelMS2 == 0 {
		return Trip{}, fmt.Errorf("railway: cruise speed %v km/h with zero acceleration is unreachable", profile.CruiseKmh)
	}
	if profile.CruiseKmh > 0 {
		// The trapezoid degenerates to a triangle if the track is too short
		// to reach cruise speed; we reject that rather than silently
		// changing the profile because the paper's line cruises for most of
		// the trip.
		v := profile.CruiseKmh / 3.6 // m/s
		rampM := v * v / (2 * profile.AccelMS2)
		if 2*rampM >= track.LengthKm*1000 {
			return Trip{}, fmt.Errorf("railway: track %v km too short to reach %v km/h at %v m/s^2",
				track.LengthKm, profile.CruiseKmh, profile.AccelMS2)
		}
	}
	return Trip{Track: track, Profile: profile}, nil
}

// cruiseMS returns the cruise speed in metres per second.
func (t Trip) cruiseMS() float64 { return t.Profile.CruiseKmh / 3.6 }

// rampTime returns the duration of the acceleration (= deceleration) ramp.
func (t Trip) rampTime() time.Duration {
	if t.Profile.CruiseKmh == 0 {
		return 0
	}
	sec := t.cruiseMS() / t.Profile.AccelMS2
	return time.Duration(sec * float64(time.Second))
}

// rampDistM returns the distance covered by one ramp, in metres.
func (t Trip) rampDistM() float64 {
	v := t.cruiseMS()
	if v == 0 {
		return 0
	}
	return v * v / (2 * t.Profile.AccelMS2)
}

// Duration returns the one-way travel time. A stationary trip has infinite
// duration conceptually; we return 0 and Position stays at the origin.
func (t Trip) Duration() time.Duration {
	if t.Profile.CruiseKmh == 0 {
		return 0
	}
	cruiseDistM := t.Track.LengthKm*1000 - 2*t.rampDistM()
	cruiseSec := cruiseDistM / t.cruiseMS()
	return 2*t.rampTime() + time.Duration(cruiseSec*float64(time.Second))
}

// PositionKm returns the train's track position (km from the origin
// station) at the given time into the trip. Times past the arrival clamp to
// the track end; a stationary trip is always at km 0.
func (t Trip) PositionKm(at time.Duration) float64 {
	if t.Profile.CruiseKmh == 0 || at <= 0 {
		return 0
	}
	total := t.Duration()
	if at >= total {
		return t.Track.LengthKm
	}
	ramp := t.rampTime()
	v := t.cruiseMS()
	a := t.Profile.AccelMS2
	sec := at.Seconds()
	switch {
	case at < ramp:
		return 0.5 * a * sec * sec / 1000
	case at < total-ramp:
		cruiseSec := sec - ramp.Seconds()
		return (t.rampDistM() + v*cruiseSec) / 1000
	default:
		// Decelerating: symmetric to the acceleration ramp from the far end.
		remain := (total - at).Seconds()
		return t.Track.LengthKm - 0.5*a*remain*remain/1000
	}
}

// SpeedKmh returns the instantaneous speed at the given time into the trip.
func (t Trip) SpeedKmh(at time.Duration) float64 {
	if t.Profile.CruiseKmh == 0 || at <= 0 {
		return 0
	}
	total := t.Duration()
	if at >= total {
		return 0
	}
	ramp := t.rampTime()
	a := t.Profile.AccelMS2
	switch {
	case at < ramp:
		return a * at.Seconds() * 3.6
	case at < total-ramp:
		return t.Profile.CruiseKmh
	default:
		return a * (total - at).Seconds() * 3.6
	}
}

// CruiseWindow returns the time interval [start, end) during which the train
// is at full cruise speed. Experiments that need "constant speed around
// 300 km/h" (e.g. the paper's Fig 1 flow) sample flows inside this window.
func (t Trip) CruiseWindow() (start, end time.Duration) {
	if t.Profile.CruiseKmh == 0 {
		return 0, 0
	}
	ramp := t.rampTime()
	return ramp, t.Duration() - ramp
}

// Stationary reports whether this trip never moves.
func (t Trip) Stationary() bool { return t.Profile.CruiseKmh == 0 }
